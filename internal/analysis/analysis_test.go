package analysis

import (
	"math"
	"testing"

	"goldfinger/internal/combin"
	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
)

func TestSampleEstimatorValidation(t *testing.T) {
	if _, err := SampleEstimator(combin.Params{B: 0}, 10, 1); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := SampleEstimator(combin.Params{B: 8}, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestSampleEstimatorRange(t *testing.T) {
	samples, err := SampleEstimator(combin.Params{Alpha: 5, Gamma1: 10, Gamma2: 10, B: 64}, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range samples {
		if v < 0 || v > 1 {
			t.Fatalf("sample %g out of [0,1]", v)
		}
	}
}

func TestSampleEstimatorIdenticalProfiles(t *testing.T) {
	samples, err := SampleEstimator(combin.Params{Alpha: 20, B: 64}, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range samples {
		if v != 1 {
			t.Fatalf("identical profiles estimated %g, want 1", v)
		}
	}
}

func TestSampleEstimatorDisjointSmall(t *testing.T) {
	// Disjoint profiles, huge b: estimates almost always 0.
	samples, err := SampleEstimator(combin.Params{Gamma1: 5, Gamma2: 5, B: 65536}, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, v := range samples {
		if v > 0 {
			nonZero++
		}
	}
	if nonZero > 10 {
		t.Errorf("%d of 500 disjoint samples non-zero with b=65536", nonZero)
	}
}

// TestMonteCarloMatchesTheorem1 is the cross-validation promised in
// DESIGN.md: the sampled mean must match the exact expectation from the
// Theorem 1 distribution.
func TestMonteCarloMatchesTheorem1(t *testing.T) {
	for _, p := range []combin.Params{
		{Alpha: 2, Gamma1: 3, Gamma2: 3, B: 16},
		{Alpha: 4, Gamma1: 4, Gamma2: 4, B: 32},
		{Alpha: 1, Gamma1: 5, Gamma2: 2, B: 8},
	} {
		exact, err := combin.Mean(p)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := SampleEstimator(p, 200000, 5)
		if err != nil {
			t.Fatal(err)
		}
		if mc := Summarize(samples).Mean; math.Abs(mc-exact) > 0.005 {
			t.Errorf("params %+v: MC mean %.4f vs exact %.4f", p, mc, exact)
		}
	}
}

func TestSummarizeAndQuantile(t *testing.T) {
	samples := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	s := Summarize(samples)
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Errorf("mean = %g", s.Mean)
	}
	if s.Min != 0.1 || s.Max != 0.9 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	if s.Q01 != 0.1 || s.Q99 != 0.9 {
		t.Errorf("q01/q99 = %g/%g for a 5-sample set", s.Q01, s.Q99)
	}
	if got := Summarize(nil); got.Mean != 0 {
		t.Error("empty summary not zero")
	}
	sorted := []float64{1, 2, 3, 4}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not 0")
	}
}

// TestPaperFig3Bias reproduces the paper's headline estimator number: for
// |P1| = |P2| = 100, J = 0.25 and b = 1024, the mean of Ĵ is ≈ 0.286.
func TestPaperFig3Bias(t *testing.T) {
	// J = 0.25 with |P1|=|P2|=100 → α = 40, γ1 = γ2 = 60.
	p := combin.Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024}
	samples, err := SampleEstimator(p, 100000, 6)
	if err != nil {
		t.Fatal(err)
	}
	mean := Summarize(samples).Mean
	if math.Abs(mean-0.286) > 0.01 {
		t.Errorf("mean Ĵ = %.4f, paper reports ≈0.286", mean)
	}
}

// TestPaperFig4Misordering checks the companion claim: a profile with true
// similarity 0.17 has < 2% probability of overtaking one at 0.25.
func TestPaperFig4Misordering(t *testing.T) {
	pA := combin.Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024} // J = 0.25
	// J = 0.17 with |P1|=|P2|=100: α/(200−α) = 0.17 → α ≈ 29.
	pB := combin.Params{Alpha: 29, Gamma1: 71, Gamma2: 71, B: 1024}
	a, err := SampleEstimator(pA, 50000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleEstimator(pB, 50000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p := MisorderProbability(a, b, 9); p > 0.02 {
		t.Errorf("misordering probability = %.4f, paper says < 2%%", p)
	}
}

// TestSpreadGrowsAsBShrinks reproduces Fig 5: smaller fingerprints spread
// the estimator wider.
func TestSpreadGrowsAsBShrinks(t *testing.T) {
	spread := func(b int) float64 {
		s, err := SampleEstimator(combin.Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: b}, 20000, 10)
		if err != nil {
			t.Fatal(err)
		}
		sum := Summarize(s)
		return sum.Q99 - sum.Q01
	}
	s256, s512, s1024 := spread(256), spread(512), spread(1024)
	if !(s256 > s512 && s512 > s1024) {
		t.Errorf("spread not decreasing in b: 256→%.4f 512→%.4f 1024→%.4f", s256, s512, s1024)
	}
}

func TestMisorderProbabilityEdges(t *testing.T) {
	if MisorderProbability(nil, []float64{1}, 1) != 0 {
		t.Error("empty sample should give 0")
	}
	// B always above A → probability 1.
	if p := MisorderProbability([]float64{0.1}, []float64{0.9}, 1); p != 1 {
		t.Errorf("dominating B gives %g, want 1", p)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.05, 0.15, 0.15, 0.95, -1, 2}, 0, 1, 10)
	if h[0] != 2 || h[1] != 2 || h[9] != 2 {
		t.Errorf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 6 {
		t.Errorf("histogram lost samples: %d of 6", total)
	}
	if got := Histogram(nil, 1, 0, 5); len(got) != 5 {
		t.Error("degenerate range should still return bins")
	}
}

func TestComputeHeatmapValidation(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.01, 1)
	s := core.MustScheme(256, 1)
	if _, err := ComputeHeatmap(d.Profiles[:1], s, 10, 10, 1); err == nil {
		t.Error("single profile accepted")
	}
	if _, err := ComputeHeatmap(d.Profiles, s, 0, 10, 1); err == nil {
		t.Error("0 pairs accepted")
	}
	if _, err := ComputeHeatmap(d.Profiles, s, 10, 0, 1); err == nil {
		t.Error("0 bins accepted")
	}
}

func TestComputeHeatmapMassConcentratesWithLargeB(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 11)
	small, err := ComputeHeatmap(d.Profiles, core.MustScheme(256, 2), 20000, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ComputeHeatmap(d.Profiles, core.MustScheme(8192, 2), 20000, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	mSmall, mLarge := small.DiagonalMass(0.05), large.DiagonalMass(0.05)
	if mLarge < mSmall {
		t.Errorf("diagonal mass with b=8192 (%.3f) below b=256 (%.3f)", mLarge, mSmall)
	}
	if mLarge < 0.9 {
		t.Errorf("diagonal mass with b=8192 = %.3f, want ≥ 0.9", mLarge)
	}
	if small.Pairs != 20000 {
		t.Errorf("Pairs = %d, want 20000", small.Pairs)
	}
}

func TestHeatmapAtClamping(t *testing.T) {
	h := &Heatmap{Bins: 10}
	r, e := h.At(1.0, -0.1)
	if r != 9 || e != 0 {
		t.Errorf("At(1,-0.1) = (%d,%d), want (9,0)", r, e)
	}
}

func TestSampleEstimatorDeterministicBySeed(t *testing.T) {
	p := combin.Params{Alpha: 3, Gamma1: 3, Gamma2: 3, B: 32}
	a, _ := SampleEstimator(p, 100, 42)
	b, _ := SampleEstimator(p, 100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}
