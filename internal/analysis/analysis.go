// Package analysis studies the SHF Jaccard estimator empirically: the
// Monte-Carlo distribution of Ĵ for a given profile-overlap structure
// (Figs 3–5 of the paper), the probability of misordering two candidate
// neighbors, and the real-vs-estimated similarity heatmaps of Fig 11. The
// Monte-Carlo sampler is validated against the exact Theorem 1 distribution
// (package combin) in the tests.
package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"goldfinger/internal/combin"
	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// SampleEstimator draws trials independent values of Ĵ(P1, P2) where
// |P1∩P2| = α, |P1\P2| = γ1, |P2\P1| = γ2 and each item's bit is a fresh
// uniform draw in [0, b) — exactly the random-hash model of Theorem 1.
func SampleEstimator(p combin.Params, trials int, seed int64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("analysis: trials must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, trials)
	occ := make([]byte, p.B) // bit 0: hit by P1, bit 1: hit by P2
	for t := 0; t < trials; t++ {
		for i := range occ {
			occ[i] = 0
		}
		for i := 0; i < p.Alpha; i++ {
			occ[rng.Intn(p.B)] |= 3
		}
		for i := 0; i < p.Gamma1; i++ {
			occ[rng.Intn(p.B)] |= 1
		}
		for i := 0; i < p.Gamma2; i++ {
			occ[rng.Intn(p.B)] |= 2
		}
		inter, c1, c2 := 0, 0, 0
		for _, o := range occ {
			switch o {
			case 3:
				inter++
				c1++
				c2++
			case 1:
				c1++
			case 2:
				c2++
			}
		}
		if union := c1 + c2 - inter; union > 0 {
			out[t] = float64(inter) / float64(union)
		}
	}
	return out, nil
}

// Summary are the statistics Fig 3 plots: the mean and the 1%–99%
// interquantile range of the estimator.
type Summary struct {
	Mean float64
	Q01  float64
	Q99  float64
	Min  float64
	Max  float64
}

// Summarize computes the Fig 3 statistics of a sample.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Mean: sum / float64(len(sorted)),
		Q01:  Quantile(sorted, 0.01),
		Q99:  Quantile(sorted, 0.99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using the nearest-rank method.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MisorderProbability estimates P(Ĵ_B ≥ Ĵ_A) from independent samples of
// the two estimators — the probability that a KNN algorithm prefers the
// truly-less-similar profile B over A (paper Fig 4). Samples are paired
// randomly.
func MisorderProbability(a, b []float64, seed int64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	const draws = 100000
	bad := 0
	for i := 0; i < draws; i++ {
		if b[rng.Intn(len(b))] >= a[rng.Intn(len(a))] {
			bad++
		}
	}
	return float64(bad) / draws
}

// Histogram bins samples into equal-width bins over [lo, hi); values
// outside the range are clamped into the boundary bins (paper Figs 4–5 use
// 0.0025-wide bins).
func Histogram(samples []float64, lo, hi float64, bins int) []int {
	out := make([]int, bins)
	if bins == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(bins)
	for _, v := range samples {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	return out
}

// Heatmap is the Fig 11 data: counts of user pairs binned by (real
// similarity, estimated similarity).
type Heatmap struct {
	Bins  int
	Count [][]int64 // Count[realBin][estBin]
	Pairs int64
}

// At returns the bin indices of a (real, estimated) similarity pair.
func (h *Heatmap) At(real, est float64) (int, int) {
	clampBin := func(v float64) int {
		i := int(v * float64(h.Bins))
		if i < 0 {
			i = 0
		}
		if i >= h.Bins {
			i = h.Bins - 1
		}
		return i
	}
	return clampBin(real), clampBin(est)
}

// DiagonalMass returns the fraction of pairs whose estimate differs from
// the real similarity by at most delta, computed from the binned data (the
// paper reports 52% within 0.01, 75% within 0.02, 94% within 0.05 and 99%
// within 0.1 on ml10M with b = 1024).
func (h *Heatmap) DiagonalMass(delta float64) float64 {
	if h.Pairs == 0 {
		return 0
	}
	band := int(delta*float64(h.Bins) + 0.5)
	var in int64
	for r, row := range h.Count {
		for e, c := range row {
			d := r - e
			if d < 0 {
				d = -d
			}
			if d <= band {
				in += c
			}
		}
	}
	return float64(in) / float64(h.Pairs)
}

// ComputeHeatmap samples nPairs random user pairs and bins their real
// Jaccard against the SHF estimate under the scheme.
func ComputeHeatmap(profiles []profile.Profile, scheme *core.Scheme, nPairs, bins int, seed int64) (*Heatmap, error) {
	n := len(profiles)
	if n < 2 {
		return nil, fmt.Errorf("analysis: need at least 2 profiles, got %d", n)
	}
	if bins <= 0 || nPairs <= 0 {
		return nil, fmt.Errorf("analysis: bins (%d) and pairs (%d) must be positive", bins, nPairs)
	}
	fps := scheme.FingerprintAll(profiles)
	h := &Heatmap{Bins: bins, Count: make([][]int64, bins)}
	for i := range h.Count {
		h.Count[i] = make([]int64, bins)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nPairs; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			i--
			continue
		}
		real := profile.Jaccard(profiles[u], profiles[v])
		est := core.Jaccard(fps[u], fps[v])
		r, e := h.At(real, est)
		h.Count[r][e]++
		h.Pairs++
	}
	return h, nil
}
