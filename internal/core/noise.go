package core

import (
	"fmt"
	"math"
	"math/rand"

	"goldfinger/internal/bitset"
)

// Flip applies BLIP-style randomized response to a fingerprint: every bit is
// flipped independently with probability 1/(1+e^ε). The paper (§2.5) notes
// that SHFs provide k-anonymity and ℓ-diversity natively and that
// differential privacy "can be easily obtained by inserting random noise to
// the SHF"; Flip is that extension. The returned fingerprint satisfies
// ε-differential privacy at the bit level and remains a valid operand of the
// Jaccard estimator (with extra, quantifiable noise).
func Flip(f Fingerprint, epsilon float64, rng *rand.Rand) (Fingerprint, error) {
	if epsilon <= 0 {
		return Fingerprint{}, fmt.Errorf("core: epsilon must be positive, got %g", epsilon)
	}
	p := 1 / (1 + math.Exp(epsilon))
	b := f.bits.Clone()
	for i := 0; i < b.Len(); i++ {
		if rng.Float64() < p {
			if b.Test(i) {
				b.Clear(i)
			} else {
				b.Set(i)
			}
		}
	}
	return Fingerprint{bits: b, card: b.Count()}, nil
}

// FlipProbability returns the per-bit flip probability used by Flip for a
// given ε: 1/(1+e^ε).
func FlipProbability(epsilon float64) float64 {
	return 1 / (1 + math.Exp(epsilon))
}

// DenoisedJaccard estimates Jaccard's index between the *original* profiles
// from two ε-flipped fingerprints by inverting the expected effect of the
// noise on the AND-count. With flip probability p, a bit pair contributes to
// the observed intersection with probability depending on its true state;
// solving the linear system yields an unbiased estimate of the true counts.
func DenoisedJaccard(f1, f2 Fingerprint, epsilon float64) float64 {
	p := FlipProbability(epsilon)
	q := 1 - p
	b := float64(f1.NumBits())
	obsInter := float64(bitset.AndCount(f1.bits, f2.bits))
	obsC1 := float64(f1.card)
	obsC2 := float64(f2.card)

	// E[obsC] = q·c + p·(b−c)  ⇒  c = (obsC − p·b)/(q−p).
	denom := q - p
	if denom <= 0 {
		return 0 // ε→0: no signal survives.
	}
	c1 := (obsC1 - p*b) / denom
	c2 := (obsC2 - p*b) / denom

	// E[obsInter] over the four true states (11,10,01,00) of a bit pair:
	// q²·x + qp·(c1−x) + pq·(c2−x) + p²·(b−c1−c2+x)
	// where x is the true intersection count.
	x := (obsInter - q*p*c1 - p*q*c2 - p*p*(b-c1-c2)) / (q*q - 2*q*p + p*p)
	x = clamp(x, 0, math.Min(c1, c2))
	union := c1 + c2 - x
	if union <= 0 {
		return 0
	}
	return clamp(x/union, 0, 1)
}

func clamp(v, lo, hi float64) float64 {
	if hi < lo {
		return lo
	}
	return math.Max(lo, math.Min(hi, v))
}
