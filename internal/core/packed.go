package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"goldfinger/internal/bitset"
	"goldfinger/internal/profile"
)

// PackedCorpus stores n fingerprints as one contiguous []uint64 with a fixed
// words-per-row stride, plus a flat cardinality array. Per-pair similarity
// over []Fingerprint chases a heap pointer per fingerprint (each *bitset.Set
// is a separate allocation); the packed layout lets the brute-force scan and
// the query path stream one sequential buffer instead, which is what the
// blocked kernels (bitset.AndCountInto) are written against.
//
// Memory layout: row i occupies words[i*stride : (i+1)*stride] with
// stride = ceil(bits/64); at the paper's default b = 1024 a row is 16 words
// (128 bytes, two cache lines) and rows are naturally 8-byte aligned by Go's
// allocator. Cardinalities live in a separate int32 array so the denominator
// of Eq. 4 is one flat load, not a struct field behind a pointer.
//
// A PackedCorpus is immutable after construction and safe for concurrent
// reads.
type PackedCorpus struct {
	bits   int
	stride int      // words per row, ceil(bits/64)
	words  []uint64 // n*stride words, row-major
	cards  []int32  // n cardinalities
}

// NewPackedCorpus packs existing fingerprints into one contiguous corpus.
// Every fingerprint must have exactly the given length; zero-value
// fingerprints are rejected (they have no bit array to copy).
func NewPackedCorpus(bits int, fps []Fingerprint) (*PackedCorpus, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("core: fingerprint length must be positive, got %d", bits)
	}
	stride := bitset.WordsFor(bits)
	c := &PackedCorpus{
		bits:   bits,
		stride: stride,
		words:  make([]uint64, len(fps)*stride),
		cards:  make([]int32, len(fps)),
	}
	for i, f := range fps {
		if f.bits == nil {
			return nil, fmt.Errorf("core: fingerprint %d is a zero value", i)
		}
		if f.NumBits() != bits {
			return nil, fmt.Errorf("core: fingerprint %d has %d bits, corpus uses %d", i, f.NumBits(), bits)
		}
		copy(c.words[i*stride:], f.bits.Words())
		c.cards[i] = int32(f.card)
	}
	return c, nil
}

// PackProfiles fingerprints every profile directly into a packed corpus,
// spread over workers goroutines (0 means GOMAXPROCS). Unlike
// FingerprintAll, no per-user *bitset.Set is ever allocated: each worker
// sets bits straight into its slice of the shared row-major array (rows are
// disjoint, so no synchronization beyond the final join is needed).
func (s *Scheme) PackProfiles(profiles []profile.Profile, workers int) *PackedCorpus {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(profiles)
	stride := bitset.WordsFor(s.bits)
	c := &PackedCorpus{
		bits:   s.bits,
		stride: stride,
		words:  make([]uint64, n*stride),
		cards:  make([]int32, n),
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				row := c.words[i*stride : (i+1)*stride]
				for _, item := range profiles[i] {
					pos := s.BitOf(item)
					row[pos>>6] |= 1 << uint(pos&63)
				}
				c.cards[i] = int32(bitset.AndCountWords4(row, row))
			}
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// NumUsers returns the number of fingerprints in the corpus.
func (c *PackedCorpus) NumUsers() int { return len(c.cards) }

// NumBits returns b, the fingerprint length in bits.
func (c *PackedCorpus) NumBits() int { return c.bits }

// Stride returns the number of 64-bit words per row.
func (c *PackedCorpus) Stride() int { return c.stride }

// Row returns fingerprint i's bit-array words as a slice of the shared
// storage. Callers must not mutate it.
func (c *PackedCorpus) Row(i int) []uint64 {
	return c.words[i*c.stride : (i+1)*c.stride : (i+1)*c.stride]
}

// Cardinality returns c_i, the number of set bits of fingerprint i.
func (c *PackedCorpus) Cardinality(i int) int { return int(c.cards[i]) }

// Fingerprint returns a zero-copy Fingerprint view of row i, usable with
// every per-pair API (Jaccard, the codec, the service). The view shares the
// corpus storage; since the corpus is immutable this is safe.
func (c *PackedCorpus) Fingerprint(i int) Fingerprint {
	return Fingerprint{bits: bitset.View(c.Row(i), c.bits), card: int(c.cards[i])}
}

// SizeBytes returns the in-memory footprint of the packed payload.
func (c *PackedCorpus) SizeBytes() int { return len(c.words)*8 + len(c.cards)*4 }

// Gather copies the given rows, in order, into a new contiguous corpus.
// The cluster-and-conquer builder uses it to turn a cluster's scattered
// member rows into a dense mini-corpus the one-vs-many kernels can
// stream; out-of-range ids panic like any slice index.
func (c *PackedCorpus) Gather(ids []int32) *PackedCorpus {
	g := &PackedCorpus{
		bits:   c.bits,
		stride: c.stride,
		words:  make([]uint64, len(ids)*c.stride),
		cards:  make([]int32, len(ids)),
	}
	for i, id := range ids {
		copy(g.words[i*c.stride:(i+1)*c.stride], c.Row(int(id)))
		g.cards[i] = c.cards[id]
	}
	return g
}

// Jaccard estimates Jaccard's index between rows u and v (paper Eq. 4).
// It is bit-for-bit identical to core.Jaccard on the unpacked fingerprints.
func (c *PackedCorpus) Jaccard(u, v int) float64 {
	inter := bitset.AndCountWords4(c.Row(u), c.Row(v))
	union := int(c.cards[u]) + int(c.cards[v]) - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine estimates the binary cosine similarity between rows u and v,
// bit-for-bit identical to core.Cosine on the unpacked fingerprints.
func (c *PackedCorpus) Cosine(u, v int) float64 {
	if c.cards[u] == 0 || c.cards[v] == 0 {
		return 0
	}
	inter := bitset.AndCountWords4(c.Row(u), c.Row(v))
	return float64(inter) / math.Sqrt(float64(c.cards[u])*float64(c.cards[v]))
}

// packTile is the number of rows each blocked-kernel call covers before the
// intersection counts are converted to similarities: 256 rows × 128 bytes
// (at b=1024) streams 32 KB per tile — L1-resident — while the int32
// scratch stays on the stack.
const packTile = 256

// jaccardInto writes Ĵ(query, row v) for v in [lo, hi) into out[0:hi-lo].
func (c *PackedCorpus) jaccardInto(query []uint64, qcard int32, lo, hi int, out []float64) {
	var inter [packTile]int32
	for start := lo; start < hi; start += packTile {
		end := min(start+packTile, hi)
		bitset.AndCountInto(query, c.words[start*c.stride:end*c.stride], c.stride, inter[:end-start])
		for j := 0; j < end-start; j++ {
			in := int(inter[j])
			union := int(qcard) + int(c.cards[start+j]) - in
			if union <= 0 {
				out[start-lo+j] = 0
			} else {
				out[start-lo+j] = float64(in) / float64(union)
			}
		}
	}
}

// cosineInto is jaccardInto for the binary cosine estimator.
func (c *PackedCorpus) cosineInto(query []uint64, qcard int32, lo, hi int, out []float64) {
	if qcard == 0 {
		for j := lo; j < hi; j++ {
			out[j-lo] = 0
		}
		return
	}
	var inter [packTile]int32
	for start := lo; start < hi; start += packTile {
		end := min(start+packTile, hi)
		bitset.AndCountInto(query, c.words[start*c.stride:end*c.stride], c.stride, inter[:end-start])
		for j := 0; j < end-start; j++ {
			if card := c.cards[start+j]; card == 0 {
				out[start-lo+j] = 0
			} else {
				out[start-lo+j] = float64(inter[j]) / math.Sqrt(float64(qcard)*float64(card))
			}
		}
	}
}

// JaccardRangeInto writes Ĵ(u, v) for v in [lo, hi) into out[0:hi-lo],
// streaming the corpus once — the one-vs-many kernel behind BatchProvider.
func (c *PackedCorpus) JaccardRangeInto(u, lo, hi int, out []float64) {
	c.jaccardInto(c.Row(u), c.cards[u], lo, hi, out)
}

// JaccardGatherInto estimates Ĵ(u, ids[i]) into out[i] for a scattered
// candidate list, bit-for-bit identical to per-pair Jaccard. It feeds the
// gather kernel (bitset.AndCountGather) in tile-sized chunks so the
// intersection scratch stays on the stack.
func (c *PackedCorpus) JaccardGatherInto(u int, ids []int32, out []float64) {
	var inter [packTile]int32
	row, cu := c.Row(u), int(c.cards[u])
	for start := 0; start < len(ids); start += packTile {
		end := min(start+packTile, len(ids))
		chunk := ids[start:end]
		bitset.AndCountGather(row, c.words, c.stride, chunk, inter[:len(chunk)])
		for j, id := range chunk {
			in := int(inter[j])
			union := cu + int(c.cards[id]) - in
			if union <= 0 {
				out[start+j] = 0
			} else {
				out[start+j] = float64(in) / float64(union)
			}
		}
	}
}

// JaccardQueryInto is JaccardRangeInto for an external query fingerprint
// (the service's /query path). It panics if the query length differs from
// the corpus length, matching core.Jaccard's mixed-scheme behavior.
func (c *PackedCorpus) JaccardQueryInto(q Fingerprint, lo, hi int, out []float64) {
	if q.NumBits() != c.bits {
		panic(fmt.Sprintf("core: query has %d bits, corpus uses %d", q.NumBits(), c.bits))
	}
	c.jaccardInto(q.bits.Words(), int32(q.card), lo, hi, out)
}

// CosineRangeInto writes the cosine estimate of (u, v) for v in [lo, hi)
// into out[0:hi-lo].
func (c *PackedCorpus) CosineRangeInto(u, lo, hi int, out []float64) {
	c.cosineInto(c.Row(u), c.cards[u], lo, hi, out)
}

// QueryScorer scores individual corpus rows against one external query
// fingerprint — the per-node distance oracle of the graph-navigated search
// path, where candidates arrive one at a time (by graph edge) instead of as
// a contiguous range. Construction precomputes the query's suffix
// popcounts once so every ScoreAbove call can abandon a row mid-scan the
// moment the prefix-popcount bound proves the similarity cannot reach the
// caller's floor. A QueryScorer is read-only and safe for concurrent use.
type QueryScorer struct {
	c      *PackedCorpus
	words  []uint64
	card   int32
	suffix []int32 // suffix[i] = popcount(words[i:])
}

// NewQueryScorer builds the per-node oracle for q against the corpus. It
// panics if the query length differs from the corpus length, matching
// JaccardQueryInto.
func (c *PackedCorpus) NewQueryScorer(q Fingerprint) *QueryScorer {
	if q.NumBits() != c.bits {
		panic(fmt.Sprintf("core: query has %d bits, corpus uses %d", q.NumBits(), c.bits))
	}
	words := q.bits.Words()
	return &QueryScorer{c: c, words: words, card: int32(q.card), suffix: bitset.SuffixCounts(words)}
}

// NumUsers returns the number of scorable rows.
func (s *QueryScorer) NumUsers() int { return s.c.NumUsers() }

// Score returns Ĵ(query, v), bit-for-bit identical to JaccardQueryInto on
// the same row.
func (s *QueryScorer) Score(v int32) float64 {
	inter := bitset.AndCountWords4(s.words, s.c.Row(int(v)))
	union := int(s.card) + int(s.c.cards[v]) - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ScoreAbove returns Ĵ(query, v) when it might reach floor. ok=false means
// the similarity is provably below floor and was not computed exactly (the
// returned value is meaningless); ok=true returns the exact estimate, which
// can still be below floor — the bounds prove impossibility, not
// attainment. Two bounds apply before and during the row scan:
//
//   - cardinality prefilter: the intersection can never exceed
//     min(|query|, |row|), so rows whose cardinality caps the similarity
//     under floor are rejected without touching their words;
//   - prefix-popcount abandon: mid-scan, the remaining intersection is
//     bounded by the query bits not yet scanned (bitset.AndCountAbandon).
//
// Both derive from Ĵ ≥ floor ⟺ inter ≥ floor·(|q|+|v|)/(1+floor).
func (s *QueryScorer) ScoreAbove(v int32, floor float64) (float64, bool) {
	cv := s.c.cards[v]
	if floor <= 0 {
		return s.Score(v), true
	}
	// Smallest integer intersection that reaches floor.
	need := int32(math.Ceil(floor * float64(int(s.card)+int(cv)) / (1 + floor)))
	if need < 1 {
		need = 1 // floor > 0 needs at least one common bit
	}
	if s.card < need || cv < need {
		return 0, false
	}
	inter, done := bitset.AndCountAbandon(s.words, s.c.Row(int(v)), s.suffix, need)
	if !done {
		return 0, false
	}
	union := int(s.card) + int(cv) - int(inter)
	if union <= 0 {
		return 0, false // zero-similarity convention; floor > 0 here
	}
	return float64(inter) / float64(union), true
}
