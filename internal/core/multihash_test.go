package core

import (
	"math"
	"testing"

	"goldfinger/internal/profile"
)

func TestNewMultiHashSchemeValidation(t *testing.T) {
	if _, err := NewMultiHashScheme(0, 1, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := NewMultiHashScheme(64, 0, 0); err == nil {
		t.Error("hashes=0 accepted")
	}
	s, err := NewMultiHashScheme(256, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBits() != 256 || s.NumHashes() != 3 {
		t.Errorf("got bits=%d hashes=%d", s.NumBits(), s.NumHashes())
	}
}

func TestMultiHashSetsMoreBits(t *testing.T) {
	p := profile.New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	s1, _ := NewMultiHashScheme(1024, 1, 5)
	s4, _ := NewMultiHashScheme(1024, 4, 5)
	c1 := s1.Fingerprint(p).Cardinality()
	c4 := s4.Fingerprint(p).Cardinality()
	if c4 <= c1 {
		t.Errorf("k=4 cardinality %d not above k=1 cardinality %d", c4, c1)
	}
	if c4 > 4*len(p) {
		t.Errorf("k=4 cardinality %d exceeds k·|P| = %d", c4, 4*len(p))
	}
}

func TestMultiHashSingleEqualsBehaviour(t *testing.T) {
	// With k=1 the multi-hash fingerprint must have the same cardinality
	// profile-size relationship as the plain scheme (identical algorithm).
	p := profile.New(3, 14, 159, 2653)
	m, _ := NewMultiHashScheme(512, 1, 0)
	fp := m.Fingerprint(p)
	if fp.Cardinality() == 0 || fp.Cardinality() > len(p) {
		t.Errorf("k=1 cardinality %d out of (0,%d]", fp.Cardinality(), len(p))
	}
}

// TestMultiHashDegradesEstimator reproduces the paper's §2.3 claim: for
// fixed b, increasing the number of hash functions worsens the Jaccard
// approximation on mid-similarity pairs.
func TestMultiHashDegradesEstimator(t *testing.T) {
	var items1, items2 []profile.ItemID
	for i := 0; i < 80; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+40))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2)

	meanAbsErr := func(k int) float64 {
		var sum float64
		const trials = 200
		for seed := uint64(0); seed < trials; seed++ {
			s, _ := NewMultiHashScheme(512, k, seed)
			est := Jaccard(s.Fingerprint(p1), s.Fingerprint(p2))
			sum += math.Abs(est - truth)
		}
		return sum / trials
	}

	e1, e4 := meanAbsErr(1), meanAbsErr(4)
	if e4 <= e1 {
		t.Errorf("k=4 error %.4f not above k=1 error %.4f; multi-hash should degrade SHFs", e4, e1)
	}
}

func TestMultiHashFingerprintAll(t *testing.T) {
	s, _ := NewMultiHashScheme(128, 2, 1)
	fps := s.FingerprintAll([]profile.Profile{profile.New(1, 2, 3), nil})
	if len(fps) != 2 {
		t.Fatalf("got %d fingerprints", len(fps))
	}
	if fps[1].Cardinality() != 0 {
		t.Error("empty profile produced non-empty fingerprint")
	}
}
