package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goldfinger/internal/profile"
)

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme(0, 1); err == nil {
		t.Error("NewScheme(0) accepted")
	}
	if _, err := NewScheme(-64, 1); err == nil {
		t.Error("NewScheme(-64) accepted")
	}
	s, err := NewScheme(1024, 1)
	if err != nil || s.NumBits() != 1024 {
		t.Errorf("NewScheme(1024) = %v, %v", s, err)
	}
}

func TestMustSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustScheme(0,0) did not panic")
		}
	}()
	MustScheme(0, 0)
}

func TestBitOfInRange(t *testing.T) {
	for _, bits := range []int{64, 100, 1024, 8192} {
		s := MustScheme(bits, 7)
		for item := profile.ItemID(0); item < 5000; item++ {
			b := s.BitOf(item)
			if b < 0 || b >= bits {
				t.Fatalf("BitOf(%d) = %d out of [0,%d)", item, b, bits)
			}
		}
	}
}

func TestFingerprintCardinalityInvariant(t *testing.T) {
	f := func(items []int32) bool {
		p := profile.New(items...)
		fp := MustScheme(256, 3).Fingerprint(p)
		return fp.Cardinality() == fp.Bits().Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFingerprintCardinalityBounds(t *testing.T) {
	// 1 ≤ c ≤ min(|P|, b) for non-empty profiles; c=0 iff P empty.
	f := func(items []int32) bool {
		p := profile.New(items...)
		fp := MustScheme(128, 3).Fingerprint(p)
		c := fp.Cardinality()
		if len(p) == 0 {
			return c == 0
		}
		return c >= 1 && c <= len(p) && c <= 128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	p := profile.New(1, 5, 9, 1000, 424242)
	s := MustScheme(512, 9)
	if !s.Fingerprint(p).Bits().Equal(s.Fingerprint(p).Bits()) {
		t.Error("same scheme+profile produced different fingerprints")
	}
}

func TestDifferentSeedsDifferentFingerprints(t *testing.T) {
	p := profile.New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	f1 := MustScheme(1024, 1).Fingerprint(p)
	f2 := MustScheme(1024, 2).Fingerprint(p)
	if f1.Bits().Equal(f2.Bits()) {
		t.Error("different seeds produced identical fingerprints")
	}
}

func TestJaccardIdenticalProfiles(t *testing.T) {
	p := profile.New(10, 20, 30, 40, 50)
	s := MustScheme(1024, 4)
	if got := Jaccard(s.Fingerprint(p), s.Fingerprint(p)); got != 1 {
		t.Errorf("Ĵ(P,P) = %g, want 1", got)
	}
}

func TestJaccardDisjointLargeB(t *testing.T) {
	// With b much larger than the profiles, disjoint profiles should
	// estimate near 0 (collisions are rare but possible).
	p := profile.New(1, 2, 3, 4, 5)
	q := profile.New(100, 200, 300, 400, 500)
	s := MustScheme(65536, 4)
	if got := Jaccard(s.Fingerprint(p), s.Fingerprint(q)); got > 0.2 {
		t.Errorf("Ĵ(disjoint) = %g, want ≈0", got)
	}
}

func TestJaccardEmpty(t *testing.T) {
	s := MustScheme(64, 1)
	e := s.Fingerprint(nil)
	p := s.Fingerprint(profile.New(1, 2, 3))
	if got := Jaccard(e, e); got != 0 {
		t.Errorf("Ĵ(∅,∅) = %g, want 0", got)
	}
	if got := Jaccard(e, p); got != 0 {
		t.Errorf("Ĵ(∅,P) = %g, want 0", got)
	}
}

func TestJaccardRangeAndSymmetry(t *testing.T) {
	s := MustScheme(128, 5)
	f := func(a, b []int32) bool {
		fa := s.Fingerprint(profile.New(a...))
		fb := s.Fingerprint(profile.New(b...))
		j1, j2 := Jaccard(fa, fb), Jaccard(fb, fa)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectionUnionEstimates(t *testing.T) {
	s := MustScheme(256, 6)
	f := func(a, b []int32) bool {
		fa := s.Fingerprint(profile.New(a...))
		fb := s.Fingerprint(profile.New(b...))
		inter := IntersectionEstimate(fa, fb)
		union := UnionEstimate(fa, fb)
		// Inclusion-exclusion on the bit arrays themselves.
		return inter >= 0 &&
			inter <= minInt(fa.Cardinality(), fb.Cardinality()) &&
			union == fa.Cardinality()+fb.Cardinality()-inter &&
			union >= maxInt(fa.Cardinality(), fb.Cardinality())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupersetNeverLowersIntersection(t *testing.T) {
	// B(P∩Q) ⊆ B(P)∧B(Q): the AND of fingerprints contains at least the
	// bits of the true intersection, so the estimate ≥ true-intersection
	// fingerprint cardinality (paper: collisions only ever inflate Ĵ of
	// the intersection).
	s := MustScheme(512, 8)
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		a := randomProfile(r, 60, 10000)
		b := randomProfile(r, 60, 10000)
		inter := profile.Intersection(a, b)
		fInter := s.Fingerprint(inter)
		fa, fb := s.Fingerprint(a), s.Fingerprint(b)
		and := fa.Bits().Clone()
		and.And(fb.Bits())
		if !fInter.Bits().SubsetOf(and) {
			t.Fatal("B(P∩Q) not a subset of B(P)∧B(Q)")
		}
	}
}

func TestEstimatorConcentratesWithLargeB(t *testing.T) {
	// The paper's core claim (Figs 3–5): with b large relative to the
	// profiles, Ĵ is close to J. Build overlapping profiles with known
	// Jaccard and check the estimate with b=8192.
	s := MustScheme(8192, 10)
	// |P1|=|P2|=100, overlap 50 → J = 50/150 = 1/3.
	var items1, items2 []profile.ItemID
	for i := 0; i < 100; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+50))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2)
	got := Jaccard(s.Fingerprint(p1), s.Fingerprint(p2))
	if math.Abs(got-truth) > 0.05 {
		t.Errorf("Ĵ = %g, J = %g; |diff| > 0.05 with b=8192", got, truth)
	}
}

func TestEstimatorBiasIsPositiveForSmallB(t *testing.T) {
	// Collisions inflate the intersection: averaged over many seeds, the
	// estimate of a moderate similarity with small b overshoots (paper:
	// Ĵ mean 0.286 when J = 0.25 at b=1024 with |P|=100).
	var items1, items2 []profile.ItemID
	for i := 0; i < 100; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+60))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2) // 40/160 = 0.25
	var sum float64
	const trials = 300
	for seed := uint64(0); seed < trials; seed++ {
		s := MustScheme(512, seed)
		sum += Jaccard(s.Fingerprint(p1), s.Fingerprint(p2))
	}
	mean := sum / trials
	if mean <= truth {
		t.Errorf("mean Ĵ = %g not above J = %g (positive bias expected)", mean, truth)
	}
	if mean > truth+0.15 {
		t.Errorf("mean Ĵ = %g too far above J = %g", mean, truth)
	}
}

func TestCosineEstimate(t *testing.T) {
	s := MustScheme(8192, 3)
	p1 := profile.New(1, 2, 3, 4)
	p2 := profile.New(3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
	truth := profile.Cosine(p1, p2)
	got := Cosine(s.Fingerprint(p1), s.Fingerprint(p2))
	if math.Abs(got-truth) > 0.1 {
		t.Errorf("estimated cosine %g, true %g", got, truth)
	}
	if Cosine(s.Fingerprint(nil), s.Fingerprint(p1)) != 0 {
		t.Error("cosine with empty fingerprint should be 0")
	}
}

func TestFingerprintAll(t *testing.T) {
	s := MustScheme(128, 2)
	ps := []profile.Profile{profile.New(1, 2), profile.New(3), nil}
	fps := s.FingerprintAll(ps)
	if len(fps) != 3 {
		t.Fatalf("FingerprintAll returned %d fingerprints", len(fps))
	}
	for i, fp := range fps {
		want := s.Fingerprint(ps[i])
		if !fp.Bits().Equal(want.Bits()) || fp.Cardinality() != want.Cardinality() {
			t.Errorf("fingerprint %d differs from direct construction", i)
		}
	}
}

func TestNewSchemeWithHashValidation(t *testing.T) {
	if _, err := NewSchemeWithHash(64, 1, HashKind(99)); err == nil {
		t.Error("unknown hash kind accepted")
	}
	s, err := NewSchemeWithHash(1024, 1, HashJenkins)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBits() != 1024 {
		t.Errorf("bits = %d", s.NumBits())
	}
}

func TestJenkinsSchemeEquivalentQuality(t *testing.T) {
	// The paper fingerprints with Jenkins' hash; our default is a 64-bit
	// mixer. Both must estimate equally well (they differ only in which
	// random-looking bit each item sets).
	var items1, items2 []profile.ItemID
	for i := 0; i < 100; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+50))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2)

	meanAbsErr := func(kind HashKind) float64 {
		var sum float64
		const trials = 200
		for seed := uint64(0); seed < trials; seed++ {
			s, err := NewSchemeWithHash(1024, seed, kind)
			if err != nil {
				t.Fatal(err)
			}
			est := Jaccard(s.Fingerprint(p1), s.Fingerprint(p2))
			sum += math.Abs(est - truth)
		}
		return sum / trials
	}
	eMix, eJen := meanAbsErr(HashMix64), meanAbsErr(HashJenkins)
	if diff := math.Abs(eMix - eJen); diff > 0.01 {
		t.Errorf("hash kinds differ in estimator error: mix %.4f vs jenkins %.4f", eMix, eJen)
	}
}

func TestJenkinsSchemeBitRange(t *testing.T) {
	s, _ := NewSchemeWithHash(100, 3, HashJenkins)
	for item := profile.ItemID(0); item < 2000; item++ {
		b := s.BitOf(item)
		if b < 0 || b >= 100 {
			t.Fatalf("BitOf(%d) = %d out of range", item, b)
		}
	}
}

func TestFingerprintAllParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	profiles := make([]profile.Profile, 500)
	for i := range profiles {
		profiles[i] = randomProfile(r, 1+r.Intn(50), 5000)
	}
	s := MustScheme(512, 31)
	serial := s.FingerprintAll(profiles)
	for _, workers := range []int{0, 1, 3, 16, 1000} {
		parallel := s.FingerprintAllParallel(profiles, workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: length %d, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if !parallel[i].Bits().Equal(serial[i].Bits()) {
				t.Fatalf("workers=%d: fingerprint %d differs from serial", workers, i)
			}
		}
	}
}

func TestFingerprintAllParallelEmpty(t *testing.T) {
	s := MustScheme(64, 0)
	if got := s.FingerprintAllParallel(nil, 4); len(got) != 0 {
		t.Errorf("empty input produced %d fingerprints", len(got))
	}
}

func TestSizeBytes(t *testing.T) {
	s := MustScheme(1024, 0)
	fp := s.Fingerprint(profile.New(1))
	if got := fp.SizeBytes(); got != 1024/8+8 {
		t.Errorf("SizeBytes = %d, want %d", got, 1024/8+8)
	}
}

func randomProfile(r *rand.Rand, n, universe int) profile.Profile {
	items := make([]profile.ItemID, n)
	for i := range items {
		items[i] = profile.ItemID(r.Intn(universe))
	}
	return profile.New(items...)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
