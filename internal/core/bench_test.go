package core

import (
	"fmt"
	"math/rand"
	"testing"

	"goldfinger/internal/profile"
)

func benchProfile(n int) profile.Profile {
	r := rand.New(rand.NewSource(int64(n)))
	items := make([]profile.ItemID, n)
	for i := range items {
		items[i] = profile.ItemID(r.Intn(100000))
	}
	return profile.New(items...)
}

func BenchmarkFingerprintBuild(b *testing.B) {
	s := MustScheme(1024, 1)
	for _, size := range []int{20, 80, 320} {
		p := benchProfile(size)
		b.Run(fmt.Sprintf("profile=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Fingerprint(p)
			}
		})
	}
}

func BenchmarkJaccardEstimate(b *testing.B) {
	for _, bits := range []int{64, 1024, 8192} {
		s := MustScheme(bits, 2)
		f1 := s.Fingerprint(benchProfile(80))
		f2 := s.Fingerprint(benchProfile(80))
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Jaccard(f1, f2)
			}
			_ = sink
		})
	}
}

func BenchmarkFingerprintAllParallel(b *testing.B) {
	s := MustScheme(1024, 3)
	profiles := make([]profile.Profile, 2000)
	for i := range profiles {
		profiles[i] = benchProfile(80)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.FingerprintAllParallel(profiles, workers)
			}
		})
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	s := MustScheme(1024, 4)
	fp := s.Fingerprint(benchProfile(80))
	b.Run("write", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			var buf discardCounter
			if err := WriteFingerprint(&buf, fp); err != nil {
				b.Fatal(err)
			}
			sink += buf.n
		}
		_ = sink
	})
}

type discardCounter struct{ n int }

func (d *discardCounter) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}
