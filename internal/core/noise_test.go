package core

import (
	"math"
	"math/rand"
	"testing"

	"goldfinger/internal/profile"
)

func TestFlipValidation(t *testing.T) {
	s := MustScheme(64, 0)
	fp := s.Fingerprint(profile.New(1, 2))
	rng := rand.New(rand.NewSource(1))
	if _, err := Flip(fp, 0, rng); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := Flip(fp, -1, rng); err == nil {
		t.Error("ε<0 accepted")
	}
}

func TestFlipProbability(t *testing.T) {
	// ε → ∞ gives p → 0; ε → 0 gives p → 1/2.
	if p := FlipProbability(50); p > 1e-10 {
		t.Errorf("FlipProbability(50) = %g, want ≈0", p)
	}
	if p := FlipProbability(1e-9); math.Abs(p-0.5) > 1e-6 {
		t.Errorf("FlipProbability(≈0) = %g, want ≈0.5", p)
	}
	// Monotone decreasing in ε.
	if FlipProbability(1) <= FlipProbability(2) {
		t.Error("FlipProbability not decreasing in ε")
	}
}

func TestFlipKeepsLengthAndCardinalityConsistency(t *testing.T) {
	s := MustScheme(1024, 3)
	fp := s.Fingerprint(profile.New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	rng := rand.New(rand.NewSource(2))
	noisy, err := Flip(fp, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.NumBits() != fp.NumBits() {
		t.Error("Flip changed fingerprint length")
	}
	if noisy.Cardinality() != noisy.Bits().Count() {
		t.Error("cardinality cache inconsistent after Flip")
	}
}

func TestFlipDoesNotMutateOriginal(t *testing.T) {
	s := MustScheme(256, 3)
	fp := s.Fingerprint(profile.New(5, 6, 7))
	before := fp.Bits().Clone()
	rng := rand.New(rand.NewSource(3))
	if _, err := Flip(fp, 0.1, rng); err != nil {
		t.Fatal(err)
	}
	if !fp.Bits().Equal(before) {
		t.Error("Flip mutated its input")
	}
}

func TestFlipHighEpsilonIsNearIdentity(t *testing.T) {
	s := MustScheme(2048, 4)
	fp := s.Fingerprint(profile.New(1, 2, 3, 4, 5))
	rng := rand.New(rand.NewSource(4))
	noisy, err := Flip(fp, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !noisy.Bits().Equal(fp.Bits()) {
		t.Error("ε=30 flipped bits (p ≈ 1e-13, should not happen)")
	}
}

func TestFlipLowEpsilonScrambles(t *testing.T) {
	s := MustScheme(2048, 4)
	fp := s.Fingerprint(profile.New(1, 2, 3, 4, 5))
	rng := rand.New(rand.NewSource(5))
	noisy, err := Flip(fp, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	// p ≈ 0.4975: roughly half the 2048 bits flip.
	flips := 0
	for i := 0; i < 2048; i++ {
		if noisy.Bits().Test(i) != fp.Bits().Test(i) {
			flips++
		}
	}
	if flips < 800 || flips > 1250 {
		t.Errorf("ε=0.01 flipped %d of 2048 bits, expected ≈1024", flips)
	}
}

func TestDenoisedJaccardRecoversSignal(t *testing.T) {
	// With moderate noise (ε=3 → p≈4.7%) and many trials, the denoised
	// estimator should land near the true Jaccard while the raw estimator
	// on noisy fingerprints is biased.
	var items1, items2 []profile.ItemID
	for i := 0; i < 100; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+50))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2) // 1/3

	const eps = 3.0
	rng := rand.New(rand.NewSource(6))
	var sum float64
	const trials = 100
	for i := 0; i < trials; i++ {
		s := MustScheme(4096, uint64(i))
		f1, err := Flip(s.Fingerprint(p1), eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := Flip(s.Fingerprint(p2), eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += DenoisedJaccard(f1, f2, eps)
	}
	mean := sum / trials
	if math.Abs(mean-truth) > 0.08 {
		t.Errorf("denoised mean = %g, true = %g", mean, truth)
	}
}

func TestDenoisedJaccardStaysInRange(t *testing.T) {
	s := MustScheme(128, 9)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomProfile(rng, 1+rng.Intn(40), 500)
		q := randomProfile(rng, 1+rng.Intn(40), 500)
		f1, _ := Flip(s.Fingerprint(p), 1, rng)
		f2, _ := Flip(s.Fingerprint(q), 1, rng)
		j := DenoisedJaccard(f1, f2, 1)
		if j < 0 || j > 1 {
			t.Fatalf("DenoisedJaccard = %g out of [0,1]", j)
		}
	}
}
