package core

import (
	"math/rand"
	"testing"

	"goldfinger/internal/profile"
)

// TestQueryScorerMatchesQueryInto asserts the per-node oracle is
// bit-for-bit identical to the batched query kernel on every row, for
// lengths that are and are not word multiples and corpora with empty
// fingerprints.
func TestQueryScorerMatchesQueryInto(t *testing.T) {
	for _, bits := range []int{64, 100, 1024} {
		_, _, packed, _ := packedFixture(t, bits, int64(bits), 63)
		s := MustScheme(bits, uint64(bits))
		rng := rand.New(rand.NewSource(int64(bits) + 1))
		for _, q := range []Fingerprint{
			s.Fingerprint(profile.New()),
			s.Fingerprint(randomProfile(rng, 80, 2000)),
		} {
			scorer := packed.NewQueryScorer(q)
			if scorer.NumUsers() != packed.NumUsers() {
				t.Fatalf("NumUsers = %d, want %d", scorer.NumUsers(), packed.NumUsers())
			}
			want := make([]float64, packed.NumUsers())
			packed.JaccardQueryInto(q, 0, packed.NumUsers(), want)
			for v := range want {
				if got := scorer.Score(int32(v)); got != want[v] {
					t.Fatalf("bits=%d row %d: Score = %v, JaccardQueryInto = %v", bits, v, got, want[v])
				}
			}
		}
	}
}

// TestQueryScorerScoreAbove asserts the early-abandon contract against
// exhaustively computed similarities: ok=true returns the exact estimate,
// ok=false only ever fires when the exact estimate is strictly below the
// floor.
func TestQueryScorerScoreAbove(t *testing.T) {
	_, _, packed, _ := packedFixture(t, 1024, 29, 200)
	s := MustScheme(1024, 29)
	rng := rand.New(rand.NewSource(30))
	q := s.Fingerprint(randomProfile(rng, 60, 2000))
	scorer := packed.NewQueryScorer(q)

	abandoned := 0
	for v := 0; v < packed.NumUsers(); v++ {
		exact := scorer.Score(int32(v))
		for _, floor := range []float64{-1, 0, exact / 2, exact, exact * 1.5, 0.99} {
			got, ok := scorer.ScoreAbove(int32(v), floor)
			if ok {
				if got != exact {
					t.Fatalf("row %d floor %g: ScoreAbove = %v, exact %v", v, floor, got, exact)
				}
			} else {
				abandoned++
				if exact >= floor {
					t.Fatalf("row %d floor %g: abandoned but exact %v >= floor", v, floor, exact)
				}
			}
		}
	}
	if abandoned == 0 {
		t.Error("no candidate was ever abandoned; the bound is not engaging")
	}
}

func TestQueryScorerLengthMismatchPanics(t *testing.T) {
	_, _, packed, _ := packedFixture(t, 1024, 31, 8)
	defer func() {
		if recover() == nil {
			t.Error("mismatched query length did not panic")
		}
	}()
	packed.NewQueryScorer(MustScheme(512, 1).Fingerprint(profile.New(1, 2)))
}
