package core

import (
	"fmt"

	"goldfinger/internal/bitset"
	"goldfinger/internal/hashing"
	"goldfinger/internal/profile"
)

// MultiHashScheme is the Bloom-filter-style variant in which every item sets
// k bits instead of one. The paper (§2.3) argues this *degrades* the SHF
// similarity estimator — multiple hash functions increase single-bit
// collisions — and this type exists to reproduce that ablation: GoldFinger
// proper always uses k = 1.
type MultiHashScheme struct {
	bits   int
	hashes int
	seed   uint64
}

// NewMultiHashScheme returns a scheme setting hashes bits per item.
func NewMultiHashScheme(bits, hashes int, seed uint64) (*MultiHashScheme, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("core: fingerprint length must be positive, got %d", bits)
	}
	if hashes <= 0 {
		return nil, fmt.Errorf("core: hash count must be positive, got %d", hashes)
	}
	return &MultiHashScheme{bits: bits, hashes: hashes, seed: seed}, nil
}

// NumBits returns b.
func (s *MultiHashScheme) NumBits() int { return s.bits }

// NumHashes returns k, the bits set per item.
func (s *MultiHashScheme) NumHashes() int { return s.hashes }

// Fingerprint builds a k-hash fingerprint of p. The cardinality field keeps
// its meaning (set bits), so Eq. 4 still applies mechanically — its accuracy
// is what the ablation measures.
func (s *MultiHashScheme) Fingerprint(p profile.Profile) Fingerprint {
	b := bitset.New(s.bits)
	for _, item := range p {
		for h := 0; h < s.hashes; h++ {
			pos := hashing.Seeded(uint64(uint32(item)), s.seed+uint64(h)*0x9e37) % uint64(s.bits)
			b.Set(int(pos))
		}
	}
	return Fingerprint{bits: b, card: b.Count()}
}

// FingerprintAll fingerprints every profile.
func (s *MultiHashScheme) FingerprintAll(profiles []profile.Profile) []Fingerprint {
	out := make([]Fingerprint, len(profiles))
	for i, p := range profiles {
		out[i] = s.Fingerprint(p)
	}
	return out
}
