package core

import (
	"bytes"
	"math/rand"
	"testing"

	"goldfinger/internal/profile"
)

// packedFixture builds a corpus three ways — explicit fingerprints, a pack
// of those fingerprints, and a direct parallel pack from the profiles — so
// the tests can assert all three agree.
func packedFixture(t *testing.T, bits int, seed int64, n int) ([]profile.Profile, []Fingerprint, *PackedCorpus, *PackedCorpus) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := MustScheme(bits, uint64(seed))
	profiles := make([]profile.Profile, n)
	for i := range profiles {
		switch rng.Intn(5) {
		case 0: // empty profile → empty fingerprint
			profiles[i] = profile.New()
		case 1: // singleton
			profiles[i] = profile.New(profile.ItemID(rng.Intn(1000)))
		default:
			profiles[i] = randomProfile(rng, 1+rng.Intn(120), 2000)
		}
	}
	fps := s.FingerprintAll(profiles)
	packed, err := NewPackedCorpus(bits, fps)
	if err != nil {
		t.Fatal(err)
	}
	direct := s.PackProfiles(profiles, 4)
	return profiles, fps, packed, direct
}

// TestPackedJaccardEquivalence is the core correctness property of the
// packed layout: every similarity computed through the packed kernels is
// bit-for-bit identical to core.Jaccard / core.Cosine on the unpacked
// fingerprints, for lengths that are and are not multiples of 64 and for
// corpora containing empty fingerprints.
func TestPackedJaccardEquivalence(t *testing.T) {
	for _, bits := range []int{64, 100, 1000, 1024} {
		_, fps, packed, direct := packedFixture(t, bits, int64(bits), 47)
		n := packed.NumUsers()
		out := make([]float64, n)
		for u := 0; u < n; u++ {
			packed.JaccardRangeInto(u, 0, n, out)
			for v := 0; v < n; v++ {
				want := Jaccard(fps[u], fps[v])
				if got := packed.Jaccard(u, v); got != want {
					t.Fatalf("bits=%d (%d,%d): packed %v, core %v", bits, u, v, got, want)
				}
				if got := direct.Jaccard(u, v); got != want {
					t.Fatalf("bits=%d (%d,%d): direct-pack %v, core %v", bits, u, v, got, want)
				}
				if out[v] != want {
					t.Fatalf("bits=%d (%d,%d): JaccardRangeInto %v, core %v", bits, u, v, out[v], want)
				}
				if got, want := packed.Cosine(u, v), Cosine(fps[u], fps[v]); got != want {
					t.Fatalf("bits=%d (%d,%d): packed cosine %v, core %v", bits, u, v, got, want)
				}
			}
			packed.CosineRangeInto(u, 0, n, out)
			for v := 0; v < n; v++ {
				if want := Cosine(fps[u], fps[v]); out[v] != want {
					t.Fatalf("bits=%d (%d,%d): CosineRangeInto %v, core %v", bits, u, v, out[v], want)
				}
			}
		}
	}
}

// TestPackedMatchesEstimatorSemantics pins the estimator conventions: two
// empty fingerprints estimate 0 through every path, exactly like
// profile.Jaccard on two empty profiles.
func TestPackedMatchesEstimatorSemantics(t *testing.T) {
	s := MustScheme(100, 9)
	empty, other := profile.New(), profile.New(1, 2, 3)
	if got := profile.Jaccard(empty, empty); got != 0 {
		t.Fatalf("profile.Jaccard(∅,∅) = %v", got)
	}
	c := s.PackProfiles([]profile.Profile{empty, empty, other}, 0)
	if got := c.Jaccard(0, 1); got != 0 {
		t.Fatalf("packed Jaccard(∅,∅) = %v, want 0", got)
	}
	if got := c.Cosine(0, 2); got != 0 {
		t.Fatalf("packed Cosine(∅,P) = %v, want 0", got)
	}
	out := make([]float64, 3)
	c.JaccardQueryInto(s.Fingerprint(empty), 0, 3, out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("empty query sim[%d] = %v, want 0", i, v)
		}
	}
}

func TestPackedQueryIntoMatchesPerPair(t *testing.T) {
	for _, bits := range []int{100, 1024} {
		rng := rand.New(rand.NewSource(int64(bits) + 1))
		s := MustScheme(bits, 11)
		_, fps, packed, _ := packedFixture(t, bits, 3, 33)
		for trial := 0; trial < 10; trial++ {
			q := s.Fingerprint(randomProfile(rng, 1+rng.Intn(80), 2000))
			// Sub-ranges exercise the tile boundaries of the blocked kernel.
			lo := rng.Intn(packed.NumUsers())
			hi := lo + rng.Intn(packed.NumUsers()-lo)
			out := make([]float64, hi-lo)
			packed.JaccardQueryInto(q, lo, hi, out)
			for v := lo; v < hi; v++ {
				if want := Jaccard(q, fps[v]); out[v-lo] != want {
					t.Fatalf("bits=%d v=%d: query-into %v, core %v", bits, v, out[v-lo], want)
				}
			}
		}
	}
}

func TestPackedGatherIntoMatchesPerPair(t *testing.T) {
	for _, bits := range []int{100, 1024} {
		rng := rand.New(rand.NewSource(int64(bits) + 7))
		_, _, packed, _ := packedFixture(t, bits, 3, 400)
		n := packed.NumUsers()
		for trial := 0; trial < 10; trial++ {
			u := rng.Intn(n)
			// Scattered, unordered, with repeats; lengths cross the tile
			// boundary of the chunked kernel.
			ids := make([]int32, 1+rng.Intn(300))
			for i := range ids {
				ids[i] = int32(rng.Intn(n))
			}
			out := make([]float64, len(ids))
			packed.JaccardGatherInto(u, ids, out)
			for i, id := range ids {
				if want := packed.Jaccard(u, int(id)); out[i] != want {
					t.Fatalf("bits=%d u=%d id=%d: gather %v, per-pair %v", bits, u, id, out[i], want)
				}
			}
		}
	}
}

// TestPackedFingerprintViews checks the zero-copy views: they compare,
// serialize, and measure exactly like the fingerprints they were packed
// from.
func TestPackedFingerprintViews(t *testing.T) {
	_, fps, packed, _ := packedFixture(t, 1000, 5, 20)
	for i, orig := range fps {
		view := packed.Fingerprint(i)
		if view.Cardinality() != orig.Cardinality() || view.NumBits() != orig.NumBits() {
			t.Fatalf("view %d metadata mismatch", i)
		}
		if !view.Bits().Equal(orig.Bits()) {
			t.Fatalf("view %d bits differ from original", i)
		}
		var a, b bytes.Buffer
		if err := WriteFingerprint(&a, view); err != nil {
			t.Fatal(err)
		}
		if err := WriteFingerprint(&b, orig); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("view %d serializes differently from original", i)
		}
		if got := Jaccard(view, orig); got != 1 && orig.Cardinality() > 0 {
			t.Fatalf("view %d vs original Jaccard = %v", i, got)
		}
	}
}

func TestPackedCorpusValidation(t *testing.T) {
	s := MustScheme(128, 1)
	f := s.Fingerprint(profile.New(1, 2, 3))
	if _, err := NewPackedCorpus(0, nil); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := NewPackedCorpus(64, []Fingerprint{f}); err == nil {
		t.Error("mixed lengths accepted")
	}
	if _, err := NewPackedCorpus(128, []Fingerprint{{}}); err == nil {
		t.Error("zero-value fingerprint accepted")
	}
	c, err := NewPackedCorpus(128, nil)
	if err != nil || c.NumUsers() != 0 {
		t.Fatalf("empty corpus: %v, n=%d", err, c.NumUsers())
	}
}

func TestPackedQueryLengthMismatchPanics(t *testing.T) {
	_, _, packed, _ := packedFixture(t, 1024, 7, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-scheme query accepted")
		}
	}()
	q := MustScheme(512, 7).Fingerprint(profile.New(1))
	packed.JaccardQueryInto(q, 0, 4, make([]float64, 4))
}

func TestPackProfilesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := MustScheme(1024, 8)
	profiles := make([]profile.Profile, 201)
	for i := range profiles {
		profiles[i] = randomProfile(rng, 1+rng.Intn(60), 3000)
	}
	serial := s.PackProfiles(profiles, 1)
	parallel := s.PackProfiles(profiles, 7)
	for i := range profiles {
		if serial.Cardinality(i) != parallel.Cardinality(i) {
			t.Fatalf("row %d cardinality differs", i)
		}
		if !serial.Fingerprint(i).Bits().Equal(parallel.Fingerprint(i).Bits()) {
			t.Fatalf("row %d bits differ between worker counts", i)
		}
	}
}

// FuzzPackedJaccard feeds arbitrary item bytes through both the packed and
// the per-pair estimator and requires bitwise agreement, at a length that
// is not a multiple of 64.
func FuzzPackedJaccard(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 254, 253, 1, 1, 1}, []byte{})
	f.Fuzz(func(t *testing.T, raw1, raw2 []byte) {
		toProfile := func(raw []byte) profile.Profile {
			items := make([]profile.ItemID, len(raw))
			for i, b := range raw {
				items[i] = profile.ItemID(b)
			}
			return profile.New(items...)
		}
		s := MustScheme(100, 99)
		p1, p2 := toProfile(raw1), toProfile(raw2)
		f1, f2 := s.Fingerprint(p1), s.Fingerprint(p2)
		c, err := NewPackedCorpus(100, []Fingerprint{f1, f2})
		if err != nil {
			t.Fatal(err)
		}
		direct := s.PackProfiles([]profile.Profile{p1, p2}, 2)
		want := Jaccard(f1, f2)
		if got := c.Jaccard(0, 1); got != want {
			t.Fatalf("packed %v, core %v", got, want)
		}
		if got := direct.Jaccard(0, 1); got != want {
			t.Fatalf("direct %v, core %v", got, want)
		}
		var out [2]float64
		c.JaccardQueryInto(f1, 0, 2, out[:])
		if out[1] != want {
			t.Fatalf("query-into %v, core %v", out[1], want)
		}
	})
}
