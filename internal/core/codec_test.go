package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"goldfinger/internal/profile"
)

func TestFingerprintRoundTrip(t *testing.T) {
	s := MustScheme(1024, 5)
	for _, p := range []profile.Profile{
		nil,
		profile.New(1),
		profile.New(1, 2, 3, 1000, 424242),
	} {
		fp := s.Fingerprint(p)
		var buf bytes.Buffer
		if err := WriteFingerprint(&buf, fp); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFingerprint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Bits().Equal(fp.Bits()) || got.Cardinality() != fp.Cardinality() {
			t.Errorf("round trip changed fingerprint of %v", p)
		}
	}
}

func TestFingerprintRoundTripProperty(t *testing.T) {
	s := MustScheme(256, 6)
	f := func(items []int32) bool {
		fp := s.Fingerprint(profile.New(items...))
		var buf bytes.Buffer
		if err := WriteFingerprint(&buf, fp); err != nil {
			return false
		}
		got, err := ReadFingerprint(&buf)
		if err != nil {
			return false
		}
		if !got.Bits().Equal(fp.Bits()) {
			return false
		}
		// Non-empty fingerprints must keep self-similarity 1 across the
		// wire; empty ones estimate 0 by convention.
		return fp.Cardinality() == 0 || Jaccard(got, fp) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteZeroFingerprintRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFingerprint(&buf, Fingerprint{}); err == nil {
		t.Error("zero Fingerprint serialized")
	}
}

func TestReadFingerprintErrors(t *testing.T) {
	s := MustScheme(128, 7)
	fp := s.Fingerprint(profile.New(1, 2, 3))
	var ok bytes.Buffer
	if err := WriteFingerprint(&ok, fp); err != nil {
		t.Fatal(err)
	}
	good := ok.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-3],
	}
	for name, data := range cases {
		if _, err := ReadFingerprint(bytes.NewReader(data)); err == nil {
			t.Errorf("%s input accepted", name)
		}
	}

	// Corrupt the cardinality: must be detected.
	corrupt := append([]byte(nil), good...)
	corrupt[8]++ // low byte of cardinality
	if _, err := ReadFingerprint(bytes.NewReader(corrupt)); err == nil ||
		!strings.Contains(err.Error(), "cardinality mismatch") {
		t.Errorf("cardinality corruption not detected: %v", err)
	}

	// Implausible length.
	huge := append([]byte(nil), good...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadFingerprint(bytes.NewReader(huge)); err == nil {
		t.Error("implausible length accepted")
	}
}

func TestFingerprintSetRoundTrip(t *testing.T) {
	s := MustScheme(512, 8)
	fps := s.FingerprintAll([]profile.Profile{
		profile.New(1, 2),
		profile.New(3, 4, 5),
		nil,
	})
	var buf bytes.Buffer
	if err := WriteFingerprintSet(&buf, fps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFingerprintSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fps) {
		t.Fatalf("got %d fingerprints, want %d", len(got), len(fps))
	}
	for i := range fps {
		if !got[i].Bits().Equal(fps[i].Bits()) {
			t.Errorf("fingerprint %d changed", i)
		}
	}
}

func TestFingerprintSetEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFingerprintSet(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFingerprintSet(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty set round trip: %v, %v", got, err)
	}
}

func TestFingerprintSetMixedLengthsRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFingerprint(&buf, MustScheme(64, 1).Fingerprint(profile.New(1))); err != nil {
		t.Fatal(err)
	}
	if err := WriteFingerprint(&buf, MustScheme(128, 1).Fingerprint(profile.New(1))); err != nil {
		t.Fatal(err)
	}
	// Prepend a count of 2 manually.
	data := append([]byte{2, 0, 0, 0}, buf.Bytes()...)
	if _, err := ReadFingerprintSet(bytes.NewReader(data)); err == nil {
		t.Error("mixed-length set accepted")
	}
}

// TestCodecPreservesSimilarity is the deployment scenario end to end:
// fingerprints serialized by clients and deserialized by the server give
// the same estimates as the originals.
func TestCodecPreservesSimilarity(t *testing.T) {
	s := MustScheme(1024, 9)
	p1 := profile.New(1, 2, 3, 4, 5, 6, 7, 8)
	p2 := profile.New(5, 6, 7, 8, 9, 10, 11, 12)
	f1, f2 := s.Fingerprint(p1), s.Fingerprint(p2)
	var buf bytes.Buffer
	if err := WriteFingerprintSet(&buf, []Fingerprint{f1, f2}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFingerprintSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Jaccard(got[0], got[1]) != Jaccard(f1, f2) {
		t.Error("similarity changed across the wire")
	}
}

func TestFingerprintSetForgedCountCapsAllocation(t *testing.T) {
	// A 4-byte header claiming 2^28 entries followed by no data must fail
	// on the first missing entry without reserving entry-count capacity up
	// front (2^28 Fingerprints would be multiple GiB).
	data := []byte{0, 0, 0, 0x10} // count = 1<<28, little-endian
	if _, err := ReadFingerprintSet(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated set with forged count accepted")
	}

	// A large-but-plausible claimed count with one valid entry still
	// parses what is actually present before hitting the truncation.
	var buf bytes.Buffer
	if err := WriteFingerprint(&buf, MustScheme(64, 1).Fingerprint(profile.New(1))); err != nil {
		t.Fatal(err)
	}
	data = append([]byte{0, 0, 0x10, 0}, buf.Bytes()...) // count = 1<<20
	if _, err := ReadFingerprintSet(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated set accepted")
	}
}
