package core

import (
	"bytes"
	"testing"

	"goldfinger/internal/profile"
)

// FuzzReadFingerprint asserts the codec rejects arbitrary bytes without
// panicking, and that any accepted payload is internally consistent.
func FuzzReadFingerprint(f *testing.F) {
	// Seed with a valid fingerprint and some mutations.
	s := MustScheme(128, 1)
	var valid bytes.Buffer
	if err := WriteFingerprint(&valid, s.Fingerprint(profile.New(1, 2, 3))); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("SHF1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := ReadFingerprint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fp.Cardinality() != fp.Bits().Count() {
			t.Fatal("accepted fingerprint with inconsistent cardinality")
		}
		if fp.NumBits() <= 0 {
			t.Fatal("accepted fingerprint with non-positive length")
		}
		// Round trip must be stable.
		var buf bytes.Buffer
		if err := WriteFingerprint(&buf, fp); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		fp2, err := ReadFingerprint(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !fp2.Bits().Equal(fp.Bits()) {
			t.Fatal("round trip changed bits")
		}
	})
}

// FuzzReadFingerprintSet exercises the set reader the same way.
func FuzzReadFingerprintSet(f *testing.F) {
	s := MustScheme(64, 2)
	var valid bytes.Buffer
	if err := WriteFingerprintSet(&valid, s.FingerprintAll([]profile.Profile{profile.New(1), profile.New(2, 3)})); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fps, err := ReadFingerprintSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 1; i < len(fps); i++ {
			if fps[i].NumBits() != fps[0].NumBits() {
				t.Fatal("accepted mixed-length set")
			}
		}
	})
}
