package core

import (
	"bytes"
	"testing"

	"goldfinger/internal/profile"
)

// FuzzReadFingerprint asserts the codec rejects arbitrary bytes without
// panicking, and that any accepted payload is internally consistent.
func FuzzReadFingerprint(f *testing.F) {
	// Seed with a valid fingerprint and some mutations.
	s := MustScheme(128, 1)
	var valid bytes.Buffer
	if err := WriteFingerprint(&valid, s.Fingerprint(profile.New(1, 2, 3))); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("SHF1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := ReadFingerprint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fp.Cardinality() != fp.Bits().Count() {
			t.Fatal("accepted fingerprint with inconsistent cardinality")
		}
		if fp.NumBits() <= 0 {
			t.Fatal("accepted fingerprint with non-positive length")
		}
		// Round trip must be stable.
		var buf bytes.Buffer
		if err := WriteFingerprint(&buf, fp); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		fp2, err := ReadFingerprint(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !fp2.Bits().Equal(fp.Bits()) {
			t.Fatal("round trip changed bits")
		}
	})
}

// FuzzReadFingerprintSet exercises the set reader the same way, and pins
// down the round-trip property: any accepted set must re-serialize and
// re-parse to bit-identical fingerprints. The corpus seeds cover the
// capped-prealloc path of the count header (counts above the 1024-entry
// allocation cap, both honest and forged), so a regression there — e.g.
// an append bug past the cap, or the cap being dropped — is caught even
// in a 10-second short-fuzz run.
func FuzzReadFingerprintSet(f *testing.F) {
	s := MustScheme(64, 2)
	var valid bytes.Buffer
	if err := WriteFingerprintSet(&valid, s.FingerprintAll([]profile.Profile{profile.New(1), profile.New(2, 3)})); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	// Honest large set: 1030 entries crosses the 1024-entry prealloc cap,
	// so parsing must grow the slice past the capped hint and still return
	// every entry.
	bigProfiles := make([]profile.Profile, 1030)
	for i := range bigProfiles {
		bigProfiles[i] = profile.New(profile.ItemID(i), profile.ItemID(i+7))
	}
	var big bytes.Buffer
	if err := WriteFingerprintSet(&big, s.FingerprintAll(bigProfiles)); err != nil {
		f.Fatal(err)
	}
	f.Add(big.Bytes())

	// Forged count: a header promising 2000 entries backed by only two.
	// The cap keeps the prealloc small; the parse must fail cleanly at the
	// truncation, never allocate for the promised count.
	forged := append([]byte{0xd0, 0x07, 0x00, 0x00}, valid.Bytes()[4:]...)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		fps, err := ReadFingerprintSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 1; i < len(fps); i++ {
			if fps[i].NumBits() != fps[0].NumBits() {
				t.Fatal("accepted mixed-length set")
			}
		}
		// Round trip must be stable: serialize the accepted set and parse
		// it back to bit-identical fingerprints.
		var buf bytes.Buffer
		if err := WriteFingerprintSet(&buf, fps); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		fps2, err := ReadFingerprintSet(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(fps2) != len(fps) {
			t.Fatalf("round trip changed count: %d → %d", len(fps), len(fps2))
		}
		for i := range fps {
			if !fps2[i].Bits().Equal(fps[i].Bits()) || fps2[i].Cardinality() != fps[i].Cardinality() {
				t.Fatalf("round trip changed fingerprint %d", i)
			}
		}
	})
}
