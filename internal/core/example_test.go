package core_test

import (
	"fmt"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// ExampleScheme_Fingerprint shows the basic fingerprint-and-estimate flow.
func ExampleScheme_Fingerprint() {
	scheme := core.MustScheme(1024, 42)
	alice := profile.New(1, 2, 3, 4, 5, 6, 7, 8)
	bob := profile.New(5, 6, 7, 8, 9, 10, 11, 12)

	fpA := scheme.Fingerprint(alice)
	fpB := scheme.Fingerprint(bob)

	fmt.Printf("exact    J = %.3f\n", profile.Jaccard(alice, bob))
	fmt.Printf("estimate Ĵ = %.3f\n", core.Jaccard(fpA, fpB))
	// Output:
	// exact    J = 0.333
	// estimate Ĵ = 0.333
}

// ExampleJaccard_identical shows that identical profiles always estimate 1,
// whatever the collisions.
func ExampleJaccard_identical() {
	scheme := core.MustScheme(64, 1) // tiny b: many collisions
	p := profile.New(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	fp := scheme.Fingerprint(p)
	fmt.Println(core.Jaccard(fp, fp))
	// Output: 1
}

// ExampleFingerprint_EstimatedProfileSize shows Eq. 5: the cardinality
// approximates the profile size from the fingerprint alone.
func ExampleFingerprint_EstimatedProfileSize() {
	scheme := core.MustScheme(4096, 7)
	p := profile.New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	fp := scheme.Fingerprint(p)
	fmt.Println(fp.EstimatedProfileSize())
	// Output: 10
}
