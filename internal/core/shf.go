// Package core implements the paper's primary contribution: Single Hash
// Fingerprints (SHFs) and the GoldFinger technique built on them.
//
// An SHF is a pair (B, c): a b-bit array B in which every item of a profile
// sets exactly one bit through a single uniform hash function, plus the
// cardinality c = |B| (number of set bits). Jaccard's index between two
// profiles is estimated from fingerprints alone as
//
//	Ĵ(P1, P2) = |B1 ∧ B2| / (c1 + c2 − |B1 ∧ B2|)   (paper Eq. 4)
//
// which costs one AND+popcount pass over b/64 words, independent of the
// explicit profile sizes. GoldFinger is the drop-in use of this estimator
// inside any Jaccard-based KNN graph construction algorithm.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"goldfinger/internal/bitset"
	"goldfinger/internal/hashing"
	"goldfinger/internal/profile"
)

// DefaultBits is the fingerprint length used throughout the paper's
// evaluation (§3.3): 1024-bit SHFs.
const DefaultBits = 1024

// Fingerprint is a Single Hash Fingerprint: the bit array and its cached
// cardinality. Fingerprints are immutable once built; the cached cardinality
// is what makes the denominator of Eq. 4 free.
type Fingerprint struct {
	bits *bitset.Set
	card int
}

// Bits returns the underlying bit array. Callers must not mutate it.
func (f Fingerprint) Bits() *bitset.Set { return f.bits }

// Cardinality returns c, the number of set bits (the L1 norm of B).
func (f Fingerprint) Cardinality() int { return f.card }

// NumBits returns b, the fingerprint length in bits.
func (f Fingerprint) NumBits() int { return f.bits.Len() }

// EstimatedProfileSize estimates |P| from the fingerprint alone (paper
// Eq. 5): with few collisions, |P| ≈ c.
func (f Fingerprint) EstimatedProfileSize() int { return f.card }

// SizeBytes returns the in-memory footprint of the fingerprint payload
// (bit array words plus the cardinality), used by the memory-traffic model.
func (f Fingerprint) SizeBytes() int { return len(f.bits.Words())*8 + 8 }

// HashKind selects the item-to-bit hash function of a Scheme.
type HashKind int

const (
	// HashMix64 uses the SplitMix64-style finalizer: the fastest option
	// and the default.
	HashMix64 HashKind = iota
	// HashJenkins uses Bob Jenkins' lookup3 over the item's 4-byte
	// little-endian encoding — the hash function the paper's
	// implementation uses. Slightly slower, statistically equivalent for
	// this purpose (see BenchmarkAblationHashFunction).
	HashJenkins
)

// Scheme fixes the fingerprinting parameters: the length b and the hash
// function mapping items to bit positions. Every fingerprint compared with
// another must come from the same Scheme.
type Scheme struct {
	bits int
	seed uint64
	kind HashKind
}

// NewScheme returns a Scheme producing fingerprints of the given length.
// The paper uses lengths from 64 to 8192 bits, 1024 by default. Length must
// be positive; powers of two are typical but not required.
func NewScheme(bits int, seed uint64) (*Scheme, error) {
	return NewSchemeWithHash(bits, seed, HashMix64)
}

// NewSchemeWithHash is NewScheme with an explicit hash function choice.
func NewSchemeWithHash(bits int, seed uint64, kind HashKind) (*Scheme, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("core: fingerprint length must be positive, got %d", bits)
	}
	if kind != HashMix64 && kind != HashJenkins {
		return nil, fmt.Errorf("core: unknown hash kind %d", kind)
	}
	return &Scheme{bits: bits, seed: seed, kind: kind}, nil
}

// MustScheme is NewScheme for static configurations; it panics on error.
func MustScheme(bits int, seed uint64) *Scheme {
	s, err := NewScheme(bits, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// NumBits returns b.
func (s *Scheme) NumBits() int { return s.bits }

// BitOf returns the bit position h(item) ∈ [0, b) that item sets.
func (s *Scheme) BitOf(item profile.ItemID) int {
	if s.kind == HashJenkins {
		var key [4]byte
		key[0] = byte(item)
		key[1] = byte(item >> 8)
		key[2] = byte(item >> 16)
		key[3] = byte(item >> 24)
		return int(uint64(hashing.Lookup3(key[:], uint32(s.seed))) % uint64(s.bits))
	}
	return int(hashing.Seeded(uint64(uint32(item)), s.seed) % uint64(s.bits))
}

// Fingerprint builds the SHF of a profile: each item hashes to one bit.
func (s *Scheme) Fingerprint(p profile.Profile) Fingerprint {
	b := bitset.New(s.bits)
	for _, item := range p {
		b.Set(s.BitOf(item))
	}
	return Fingerprint{bits: b, card: b.Count()}
}

// FingerprintAll fingerprints every profile of a dataset. This is the whole
// preparation cost of GoldFinger (Table 3): one hash per rating.
func (s *Scheme) FingerprintAll(profiles []profile.Profile) []Fingerprint {
	out := make([]Fingerprint, len(profiles))
	for i, p := range profiles {
		out[i] = s.Fingerprint(p)
	}
	return out
}

// FingerprintAllParallel is FingerprintAll spread over workers goroutines
// (0 means GOMAXPROCS). Fingerprinting is embarrassingly parallel — users
// are independent — so preparation of very large datasets scales linearly.
func (s *Scheme) FingerprintAllParallel(profiles []profile.Profile, workers int) []Fingerprint {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Fingerprint, len(profiles))
	var wg sync.WaitGroup
	chunk := (len(profiles) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(profiles) {
			break
		}
		hi := lo + chunk
		if hi > len(profiles) {
			hi = len(profiles)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = s.Fingerprint(profiles[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Jaccard estimates Jaccard's index from two fingerprints (paper Eq. 4).
// Two empty fingerprints estimate 0, matching profile.Jaccard's convention.
// It panics if the fingerprints have different lengths (mixed schemes).
func Jaccard(f1, f2 Fingerprint) float64 {
	inter := bitset.AndCount(f1.bits, f2.bits)
	union := f1.card + f2.card - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine estimates the binary cosine similarity |P1∩P2|/√(|P1||P2|) from
// fingerprints, using the same intersection approximation as Jaccard.
func Cosine(f1, f2 Fingerprint) float64 {
	if f1.card == 0 || f2.card == 0 {
		return 0
	}
	inter := bitset.AndCount(f1.bits, f2.bits)
	return float64(inter) / math.Sqrt(float64(f1.card)*float64(f2.card))
}

// IntersectionEstimate returns |B1 ∧ B2|, the estimator of |P1 ∩ P2|
// (paper Eq. 6).
func IntersectionEstimate(f1, f2 Fingerprint) int {
	return bitset.AndCount(f1.bits, f2.bits)
}

// UnionEstimate returns c1 + c2 − |B1 ∧ B2| = |B1 ∨ B2|, the estimator of
// |P1 ∪ P2|.
func UnionEstimate(f1, f2 Fingerprint) int {
	return f1.card + f2.card - bitset.AndCount(f1.bits, f2.bits)
}
