package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"goldfinger/internal/bitset"
)

// The wire format matches the paper's deployment story (§2.5): a client
// fingerprints its profile locally and uploads only the SHF to an
// untrusted KNN-construction service. A fingerprint serializes as:
//
//	magic "SHF1" | uint32 bits | uint32 cardinality | bit-array words (LE)
//
// and a set of fingerprints as a uint32 count followed by each entry. All
// integers are little-endian.

var codecMagic = [4]byte{'S', 'H', 'F', '1'}

// WriteFingerprint serializes one fingerprint to w.
func WriteFingerprint(w io.Writer, f Fingerprint) error {
	if f.bits == nil {
		return fmt.Errorf("core: cannot serialize a zero Fingerprint")
	}
	if _, err := w.Write(codecMagic[:]); err != nil {
		return fmt.Errorf("core: writing magic: %w", err)
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(f.bits.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(f.card))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("core: writing header: %w", err)
	}
	buf := make([]byte, 8*len(f.bits.Words()))
	for i, word := range f.bits.Words() {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("core: writing bit array: %w", err)
	}
	return nil
}

// ReadFingerprint deserializes one fingerprint from r, validating the
// magic, the cardinality and the spare-bit invariant so corrupted inputs
// are rejected rather than silently producing wrong similarities.
func ReadFingerprint(r io.Reader) (Fingerprint, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Fingerprint{}, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != codecMagic {
		return Fingerprint{}, fmt.Errorf("core: bad magic %q", magic)
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Fingerprint{}, fmt.Errorf("core: reading header: %w", err)
	}
	bits := int(binary.LittleEndian.Uint32(hdr[0:4]))
	card := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if bits <= 0 || bits > 1<<24 {
		return Fingerprint{}, fmt.Errorf("core: implausible fingerprint length %d", bits)
	}
	words := (bits + 63) / 64
	buf := make([]byte, 8*words)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Fingerprint{}, fmt.Errorf("core: reading bit array: %w", err)
	}
	raw := make([]uint64, words)
	for i := range raw {
		raw[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	b := bitset.FromWords(raw, bits)
	if got := b.Count(); got != card {
		return Fingerprint{}, fmt.Errorf("core: cardinality mismatch: header says %d, bit array has %d", card, got)
	}
	return Fingerprint{bits: b, card: card}, nil
}

// WriteFingerprintSet serializes a set of fingerprints.
func WriteFingerprintSet(w io.Writer, fps []Fingerprint) error {
	var count [4]byte
	binary.LittleEndian.PutUint32(count[:], uint32(len(fps)))
	if _, err := w.Write(count[:]); err != nil {
		return fmt.Errorf("core: writing count: %w", err)
	}
	for i, f := range fps {
		if err := WriteFingerprint(w, f); err != nil {
			return fmt.Errorf("core: fingerprint %d: %w", i, err)
		}
	}
	return nil
}

// maxUserIDBytes bounds one serialized user id. External ids are short
// opaque strings; anything longer in a snapshot or WAL payload is corruption
// (or an attack) and is rejected before allocation.
const maxUserIDBytes = 1 << 12

// WriteUserTable serializes a dense user table (index → external id) as a
// uint32 count followed by length-prefixed ids. It is the snapshot-payload
// companion of WriteFingerprintSet: entry i of the table names the owner of
// fingerprint i.
func WriteUserTable(w io.Writer, ids []string) error {
	var count [4]byte
	binary.LittleEndian.PutUint32(count[:], uint32(len(ids)))
	if _, err := w.Write(count[:]); err != nil {
		return fmt.Errorf("core: writing user count: %w", err)
	}
	var hdr [4]byte
	for i, id := range ids {
		if len(id) > maxUserIDBytes {
			return fmt.Errorf("core: user id %d is %d bytes, max %d", i, len(id), maxUserIDBytes)
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(id)))
		if _, err := w.Write(hdr[:]); err != nil {
			return fmt.Errorf("core: writing user id %d length: %w", i, err)
		}
		if _, err := io.WriteString(w, id); err != nil {
			return fmt.Errorf("core: writing user id %d: %w", i, err)
		}
	}
	return nil
}

// ReadUserTable deserializes a user table written by WriteUserTable. Like
// ReadFingerprintSet it treats the count as untrusted: the initial
// allocation is capped and grows only as entries actually parse.
func ReadUserTable(r io.Reader) ([]string, error) {
	var count [4]byte
	if _, err := io.ReadFull(r, count[:]); err != nil {
		return nil, fmt.Errorf("core: reading user count: %w", err)
	}
	n := binary.LittleEndian.Uint32(count[:])
	if n > 1<<28 {
		return nil, fmt.Errorf("core: implausible user count %d", n)
	}
	capHint := n
	if capHint > 1024 {
		capHint = 1024
	}
	out := make([]string, 0, capHint)
	var hdr [4]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("core: reading user id %d length: %w", i, err)
		}
		l := binary.LittleEndian.Uint32(hdr[:])
		if l > maxUserIDBytes {
			return nil, fmt.Errorf("core: user id %d is %d bytes, max %d", i, l, maxUserIDBytes)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("core: reading user id %d: %w", i, err)
		}
		out = append(out, string(buf))
	}
	return out, nil
}

// ReadFingerprintSet deserializes a set of fingerprints and verifies that
// all entries share one length (mixed schemes cannot be compared).
func ReadFingerprintSet(r io.Reader) ([]Fingerprint, error) {
	var count [4]byte
	if _, err := io.ReadFull(r, count[:]); err != nil {
		return nil, fmt.Errorf("core: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint32(count[:])
	if n > 1<<28 {
		return nil, fmt.Errorf("core: implausible fingerprint count %d", n)
	}
	// The count is attacker-controlled: cap the initial allocation and let
	// append grow as entries actually parse, so a forged header cannot
	// reserve gigabytes up front.
	capHint := n
	if capHint > 1024 {
		capHint = 1024
	}
	out := make([]Fingerprint, 0, capHint)
	for i := uint32(0); i < n; i++ {
		f, err := ReadFingerprint(r)
		if err != nil {
			return nil, fmt.Errorf("core: fingerprint %d: %w", i, err)
		}
		if len(out) > 0 && f.NumBits() != out[0].NumBits() {
			return nil, fmt.Errorf("core: fingerprint %d has %d bits, set uses %d", i, f.NumBits(), out[0].NumBits())
		}
		out = append(out, f)
	}
	return out, nil
}
