// Package eval is the experiment harness: one function per table or figure
// of the paper's evaluation (§3–§5), each returning typed rows and able to
// render itself as text. The cmd/goldfinger binary and the repository-level
// benchmarks are thin wrappers around this package.
package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
)

// Config selects the experimental setup. The zero value reproduces the
// paper's parameters (§3.3) at a laptop-friendly dataset scale.
type Config struct {
	// Scale shrinks the six datasets' user/item counts (1.0 = the paper's
	// full sizes). 0 means the default of 0.05.
	Scale float64
	// Bits is the SHF length; 0 means the paper's 1024.
	Bits int
	// K is the neighborhood size; 0 means the paper's 30.
	K int
	// Seed drives dataset generation and the randomized algorithms.
	Seed int64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// Datasets restricts the evaluated presets; nil means all six.
	Datasets []dataset.Preset
}

func (c Config) scale() float64 {
	if c.Scale == 0 {
		return 0.05
	}
	return c.Scale
}

func (c Config) bits() int {
	if c.Bits == 0 {
		return 1024
	}
	return c.Bits
}

func (c Config) k() int {
	if c.K == 0 {
		return 30
	}
	return c.K
}

func (c Config) datasets() []dataset.Preset {
	if len(c.Datasets) == 0 {
		return dataset.Presets()
	}
	return c.Datasets
}

func (c Config) knnOptions() knn.Options {
	return knn.Options{Workers: c.Workers, Seed: c.Seed}
}

// Algorithm is one KNN construction algorithm wired for the harness.
type Algorithm struct {
	Name string
	// Run builds the graph for d using similarity provider p. d is passed
	// because LSH buckets on the explicit profiles regardless of provider.
	Run func(d *dataset.Dataset, p knn.Provider, k int, cfg Config) (*knn.Graph, knn.Stats)
}

// Algorithms returns the paper's four algorithms in Table 4 order.
func Algorithms() []Algorithm {
	return []Algorithm{
		{Name: "Brute Force", Run: func(d *dataset.Dataset, p knn.Provider, k int, cfg Config) (*knn.Graph, knn.Stats) {
			return knn.BruteForce(p, k, cfg.knnOptions())
		}},
		{Name: "Hyrec", Run: func(d *dataset.Dataset, p knn.Provider, k int, cfg Config) (*knn.Graph, knn.Stats) {
			return knn.Hyrec(p, k, cfg.knnOptions())
		}},
		{Name: "NNDescent", Run: func(d *dataset.Dataset, p knn.Provider, k int, cfg Config) (*knn.Graph, knn.Stats) {
			return knn.NNDescent(p, k, cfg.knnOptions())
		}},
		{Name: "LSH", Run: func(d *dataset.Dataset, p knn.Provider, k int, cfg Config) (*knn.Graph, knn.Stats) {
			// NumItems selects the paper's explicit-permutation bucketing,
			// whose O(hashes·m) setup explains LSH's limited GoldFinger
			// gains on sparse datasets (§4.1).
			return knn.LSH(d.Profiles, p, k, knn.LSHOptions{
				Workers: cfg.Workers, Seed: cfg.Seed, NumItems: d.NumItems,
			})
		}},
	}
}

// datasetFor generates a preset at the configured scale.
func datasetFor(cfg Config, p dataset.Preset) *dataset.Dataset {
	return dataset.Generate(p, cfg.scale(), cfg.Seed)
}

func datasetPresetML10M() dataset.Preset { return dataset.ML10M }

// timeIt runs f once and returns its wall-clock duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// timeOp measures the mean duration of op by running it repeatedly until
// minDuration has elapsed (at least minIters times).
func timeOp(op func(), minIters int, minDuration time.Duration) time.Duration {
	iters := 0
	start := time.Now()
	for time.Since(start) < minDuration || iters < minIters {
		op()
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

// gainPct returns the paper's "gain %": how much faster b is than a.
func gainPct(native, goldfinger time.Duration) float64 {
	if native == 0 {
		return 0
	}
	return 100 * (1 - float64(goldfinger)/float64(native))
}

// newTable starts a tabwriter with the house style.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// seconds renders a duration as the paper's seconds-with-one-decimal.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}
