package eval

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// Fig1Row is one point of Fig 1: the cost of one explicit Jaccard
// computation as a function of profile size.
type Fig1Row struct {
	ProfileSize int
	PerOp       time.Duration
}

// Fig1 measures explicit Jaccard cost for profile sizes 10..200 over a
// 1000-item universe, the setup of the paper's Fig 1.
func Fig1(sizes []int, seed int64) []Fig1Row {
	if len(sizes) == 0 {
		sizes = []int{10, 20, 40, 80, 120, 160, 200}
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Fig1Row, 0, len(sizes))
	for _, size := range sizes {
		p1 := randomProfileOfSize(rng, size, 1000)
		p2 := randomProfileOfSize(rng, size, 1000)
		var sink float64
		// Batch the kernel to amortize timer and closure overhead.
		per := timeOp(func() {
			for i := 0; i < microBatch; i++ {
				sink += profile.Jaccard(p1, p2)
			}
		}, 100, 20*time.Millisecond) / microBatch
		_ = sink
		rows = append(rows, Fig1Row{ProfileSize: size, PerOp: per})
	}
	return rows
}

// microBatch is how many kernel invocations each timed operation batches;
// without it, closure-call overhead (~40 ns) would dominate the fastest
// fingerprint comparisons (~5 ns).
const microBatch = 64

// RenderFig1 writes the Fig 1 series.
func RenderFig1(w io.Writer, rows []Fig1Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 1 — explicit Jaccard cost vs profile size")
	fmt.Fprintln(tw, "|P|\tns/op")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\n", r.ProfileSize, r.PerOp.Nanoseconds())
	}
	tw.Flush()
}

// Table1Row is one line of Table 1: SHF Jaccard cost and its speedup over
// the explicit computation on 80-item profiles.
type Table1Row struct {
	Bits     int
	PerOp    time.Duration
	Explicit time.Duration
	Speedup  float64
}

// Table1 reproduces the paper's Table 1 with profile size 80 (its |P|) and
// SHF lengths 64..4096.
func Table1(bitSizes []int, seed int64) []Table1Row {
	if len(bitSizes) == 0 {
		bitSizes = []int{64, 256, 1024, 4096}
	}
	rng := rand.New(rand.NewSource(seed))
	p1 := randomProfileOfSize(rng, 80, 1000)
	p2 := randomProfileOfSize(rng, 80, 1000)
	var sink float64
	explicit := timeOp(func() {
		for i := 0; i < microBatch; i++ {
			sink += profile.Jaccard(p1, p2)
		}
	}, 100, 20*time.Millisecond) / microBatch

	rows := make([]Table1Row, 0, len(bitSizes))
	for _, bits := range bitSizes {
		s := core.MustScheme(bits, uint64(seed))
		f1, f2 := s.Fingerprint(p1), s.Fingerprint(p2)
		per := timeOp(func() {
			for i := 0; i < microBatch; i++ {
				sink += core.Jaccard(f1, f2)
			}
		}, 100, 20*time.Millisecond) / microBatch
		rows = append(rows, Table1Row{
			Bits:     bits,
			PerOp:    per,
			Explicit: explicit,
			Speedup:  float64(explicit) / float64(per),
		})
	}
	_ = sink
	return rows
}

// RenderTable1 writes Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Table 1 — SHF Jaccard cost vs length (|P| = 80)")
	fmt.Fprintln(tw, "SHF bits\tns/op\texplicit ns/op\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f×\n", r.Bits, r.PerOp.Nanoseconds(), r.Explicit.Nanoseconds(), r.Speedup)
	}
	tw.Flush()
}

// Fig9Row is one point of Fig 9: SHF similarity cost and speedup vs b on an
// ml10M-shaped workload.
type Fig9Row struct {
	Bits     int
	PerOp    time.Duration
	Explicit time.Duration
	Speedup  float64
}

// Fig9 measures one-similarity cost for SHF sizes 64..8192 against profiles
// drawn from an ml10M-shaped dataset (the paper samples user pairs from
// ml10M).
func Fig9(cfg Config) []Fig9Row {
	d := datasetFor(cfg, datasetPresetML10M())
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// Sample pairs once; reuse for every b so the comparison is paired.
	const pairs = 256
	us := make([]int, pairs)
	vs := make([]int, pairs)
	for i := range us {
		us[i] = rng.Intn(d.NumUsers())
		vs[i] = rng.Intn(d.NumUsers())
	}

	var sink float64
	explicit := timeOp(func() {
		for i := range us {
			sink += profile.Jaccard(d.Profiles[us[i]], d.Profiles[vs[i]])
		}
	}, 10, 50*time.Millisecond) / pairs

	bitSizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	rows := make([]Fig9Row, 0, len(bitSizes))
	for _, bits := range bitSizes {
		s := core.MustScheme(bits, uint64(cfg.Seed))
		fps := s.FingerprintAll(d.Profiles)
		per := timeOp(func() {
			for i := range us {
				sink += core.Jaccard(fps[us[i]], fps[vs[i]])
			}
		}, 10, 50*time.Millisecond) / pairs
		rows = append(rows, Fig9Row{Bits: bits, PerOp: per, Explicit: explicit,
			Speedup: float64(explicit) / float64(per)})
	}
	_ = sink
	return rows
}

// RenderFig9 writes the Fig 9 series.
func RenderFig9(w io.Writer, rows []Fig9Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 9 — similarity cost vs SHF size (ml10M-shaped pairs)")
	fmt.Fprintln(tw, "SHF bits\tns/op\texplicit ns/op\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f×\n", r.Bits, r.PerOp.Nanoseconds(), r.Explicit.Nanoseconds(), r.Speedup)
	}
	tw.Flush()
}

func randomProfileOfSize(rng *rand.Rand, size, universe int) profile.Profile {
	picked := map[profile.ItemID]bool{}
	for len(picked) < size && len(picked) < universe {
		picked[profile.ItemID(rng.Intn(universe))] = true
	}
	items := make([]profile.ItemID, 0, len(picked))
	for it := range picked {
		items = append(items, it)
	}
	return profile.New(items...)
}
