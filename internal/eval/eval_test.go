package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"goldfinger/internal/dataset"
)

// tinyCfg keeps every experiment fast enough for the unit-test suite.
func tinyCfg() Config {
	return Config{Scale: 0.015, K: 5, Seed: 3, Datasets: []dataset.Preset{dataset.ML1M, dataset.DBLP}}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.scale() != 0.05 || c.bits() != 1024 || c.k() != 30 {
		t.Errorf("defaults: scale=%g bits=%d k=%d", c.scale(), c.bits(), c.k())
	}
	if len(c.datasets()) != 6 {
		t.Errorf("default datasets = %d, want 6", len(c.datasets()))
	}
}

func TestAlgorithmsOrder(t *testing.T) {
	algos := Algorithms()
	want := []string{"Brute Force", "Hyrec", "NNDescent", "LSH"}
	if len(algos) != len(want) {
		t.Fatalf("got %d algorithms", len(algos))
	}
	for i, a := range algos {
		if a.Name != want[i] {
			t.Errorf("algorithm %d = %q, want %q", i, a.Name, want[i])
		}
	}
}

func TestGainPct(t *testing.T) {
	if g := gainPct(100*time.Millisecond, 25*time.Millisecond); g != 75 {
		t.Errorf("gainPct = %g, want 75", g)
	}
	if gainPct(0, time.Second) != 0 {
		t.Error("zero native should give 0")
	}
}

func TestFig1(t *testing.T) {
	rows := Fig1([]int{10, 80}, 1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Bigger profiles cost more.
	if rows[1].PerOp <= rows[0].PerOp/4 {
		t.Errorf("80-item cost %v suspiciously below 10-item cost %v", rows[1].PerOp, rows[0].PerOp)
	}
	var buf bytes.Buffer
	RenderFig1(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 1") {
		t.Error("render missing header")
	}
}

func TestTable1SpeedupShape(t *testing.T) {
	rows := Table1([]int{64, 4096}, 1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The paper's Table 1: smaller fingerprints are faster; every size
	// beats the explicit computation on 80-item profiles.
	if rows[0].PerOp >= rows[1].PerOp {
		t.Errorf("64-bit op (%v) not faster than 4096-bit op (%v)", rows[0].PerOp, rows[1].PerOp)
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("b=%d: speedup %.1f ≤ 1", r.Bits, r.Speedup)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("render missing header")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(tinyCfg())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "ml1M" || rows[1].Name != "DBLP" {
		t.Errorf("row names: %s, %s", rows[0].Name, rows[1].Name)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "ml1M") {
		t.Error("render missing dataset")
	}
}

func TestTable3MinHashSlower(t *testing.T) {
	rows, err := Table3(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's claim: MinHash preparation is far slower than
		// GoldFinger's (orders of magnitude at full scale).
		if r.MinHash <= r.GoldFinger {
			t.Errorf("%s: MinHash prep %v not above GoldFinger %v", r.Dataset, r.MinHash, r.GoldFinger)
		}
		if r.SpeedupVsMinHash <= 1 {
			t.Errorf("%s: speedup %.1f ≤ 1", r.Dataset, r.SpeedupVsMinHash)
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("render missing header")
	}
}

func TestTable4Shape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Datasets = []dataset.Preset{dataset.ML1M}
	rows := Table4(cfg)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 algorithms", len(rows))
	}
	for _, r := range rows {
		if r.Algorithm == "Brute Force" && r.NativeQuality != 1 {
			t.Errorf("native Brute Force quality = %g, want exactly 1", r.NativeQuality)
		}
		if r.GoldFingerQuality < 0.5 {
			t.Errorf("%s GoldFinger quality %.2f below 0.5", r.Algorithm, r.GoldFingerQuality)
		}
		if r.NativeStats.Comparisons == 0 || r.GoldFingerStats.Comparisons == 0 {
			t.Errorf("%s: zero comparisons recorded", r.Algorithm)
		}
	}
	var buf bytes.Buffer
	RenderTable4(&buf, rows)
	if !strings.Contains(buf.String(), "Brute Force") {
		t.Error("render missing algorithm")
	}
}

func TestTable4AvgMatchesStructure(t *testing.T) {
	cfg := tinyCfg()
	cfg.Datasets = []dataset.Preset{dataset.ML1M}
	rows := Table4Avg(cfg, 2)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.GoldFingerQuality <= 0 || r.GoldFingerQuality > 1.001 {
			t.Errorf("%s: averaged quality %g out of range", r.Algorithm, r.GoldFingerQuality)
		}
		if r.QualityLoss != r.NativeQuality-r.GoldFingerQuality {
			t.Errorf("%s: loss not recomputed after averaging", r.Algorithm)
		}
	}
	// repeats ≤ 1 degrades to the plain run.
	single := Table4Avg(cfg, 1)
	if len(single) != 4 {
		t.Fatalf("repeats=1 returned %d rows", len(single))
	}
}

func TestTable5Shape(t *testing.T) {
	cfg := tinyCfg()
	rows := Table5(cfg)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.NativeLoads <= 0 || r.GoldFingerLoads <= 0 {
			t.Errorf("%s: non-positive loads", r.Algorithm)
		}
		if r.Algorithm != "LSH" && r.LoadReductionPct <= 0 {
			t.Errorf("%s: no load reduction (%f%%)", r.Algorithm, r.LoadReductionPct)
		}
	}
	var buf bytes.Buffer
	RenderTable5(&buf, rows)
	if !strings.Contains(buf.String(), "Table 5") {
		t.Error("render missing header")
	}
}

func TestFig3Through5(t *testing.T) {
	rows3, err := Fig3(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) == 0 {
		t.Fatal("Fig3 empty")
	}
	for _, r := range rows3 {
		if r.Summary.Mean < r.TrueJ-0.05 {
			t.Errorf("Fig3 %+v: mean below truth (bias should be positive)", r.Params)
		}
		// Monte Carlo must agree with the exact Theorem 1 evaluation.
		if diff := r.Summary.Mean - r.ExactMean; diff > 0.02 || diff < -0.02 {
			t.Errorf("Fig3 %+v: MC mean %.4f vs exact %.4f", r.Params, r.Summary.Mean, r.ExactMean)
		}
	}

	r4, err := Fig4(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r4.MisorderingPct > 3 {
		t.Errorf("Fig4 misordering = %.2f%%, paper says < 2%%", r4.MisorderingPct)
	}

	rows5, err := Fig5(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) != 3 {
		t.Fatalf("Fig5: got %d rows", len(rows5))
	}
	spread := func(r EstimatorRow) float64 { return r.Summary.Q99 - r.Summary.Q01 }
	if !(spread(rows5[0]) > spread(rows5[2])) {
		t.Error("Fig5: spread should shrink as b grows")
	}

	var buf bytes.Buffer
	RenderFig3(&buf, rows3)
	RenderFig4(&buf, r4)
	RenderFig5(&buf, rows5)
	for _, want := range []string{"Fig 3", "Fig 4", "Fig 5"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %s", want)
		}
	}
}

func TestFig8RecallParity(t *testing.T) {
	cfg := tinyCfg()
	cfg.Datasets = []dataset.Preset{dataset.ML1M}
	rows, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 algorithms", len(rows))
	}
	for _, r := range rows {
		if r.NativeRecall <= 0 {
			t.Errorf("%s: native recall %g not positive", r.Algorithm, r.NativeRecall)
		}
		if r.GoldFingerRecall < r.NativeRecall*0.6 {
			t.Errorf("%s: GoldFinger recall %.4f far below native %.4f", r.Algorithm, r.GoldFingerRecall, r.NativeRecall)
		}
	}
	var buf bytes.Buffer
	RenderFig8(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 8") {
		t.Error("render missing header")
	}
}

func TestFig10Sweep(t *testing.T) {
	cfg := tinyCfg()
	rows := Fig10(cfg, []int{128, 2048})
	if len(rows) != 4 { // 2 algorithms × 2 sizes
		t.Fatalf("got %d rows", len(rows))
	}
	// Quality improves with b for Brute Force.
	if rows[0].Quality > rows[1].Quality {
		t.Errorf("Brute Force quality at 128 bits (%.3f) above 2048 bits (%.3f)", rows[0].Quality, rows[1].Quality)
	}
	var buf bytes.Buffer
	RenderFig10(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 10") {
		t.Error("render missing header")
	}
}

func TestFig11Distortion(t *testing.T) {
	cfg := tinyCfg()
	results, err := Fig11(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	// More bits → more mass near the diagonal.
	if results[1].Within[0.05] < results[0].Within[0.05] {
		t.Errorf("4096-bit within-0.05 (%.3f) below 1024-bit (%.3f)",
			results[1].Within[0.05], results[0].Within[0.05])
	}
	var buf bytes.Buffer
	RenderFig11(&buf, results)
	if !strings.Contains(buf.String(), "Fig 11") {
		t.Error("render missing header")
	}
}

func TestFig12Convergence(t *testing.T) {
	cfg := tinyCfg()
	rows := Fig12(cfg, []int{128, 1024})
	if len(rows) != 3 { // native + 2 sizes
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Bits != 0 {
		t.Error("first row should be the native reference")
	}
	for _, r := range rows {
		if r.Iterations <= 0 {
			t.Errorf("b=%d: no iterations", r.Bits)
		}
		if r.ScanRate <= 0 {
			t.Errorf("b=%d: zero scanrate", r.Bits)
		}
	}
	var buf bytes.Buffer
	RenderFig12(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 12") {
		t.Error("render missing header")
	}
}

func TestPrivacyReport(t *testing.T) {
	cfg := tinyCfg()
	rows := PrivacyReport(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.KAnonymityBits <= 0 || r.LDiversity <= 0 {
			t.Errorf("%s: degenerate privacy accounting %+v", r.Dataset, r)
		}
	}
	var buf bytes.Buffer
	RenderPrivacy(&buf, cfg, rows)
	if !strings.Contains(buf.String(), "171356") {
		t.Error("render missing the paper's full-size reference")
	}
}

func TestFig9Speedups(t *testing.T) {
	cfg := tinyCfg()
	rows := Fig9(cfg)
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Cost grows with b; small fingerprints beat explicit profiles.
	if rows[0].PerOp >= rows[len(rows)-1].PerOp {
		t.Errorf("64-bit cost %v not below 8192-bit cost %v", rows[0].PerOp, rows[len(rows)-1].PerOp)
	}
	if rows[0].Speedup <= 1 {
		t.Errorf("64-bit speedup %.1f ≤ 1", rows[0].Speedup)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 9") {
		t.Error("render missing header")
	}
}
