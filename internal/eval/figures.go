package eval

import (
	"fmt"
	"io"
	"time"

	"goldfinger/internal/analysis"
	"goldfinger/internal/combin"
	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/privacy"
	"goldfinger/internal/recommend"
)

// EstimatorRow is one configuration of the Fig 3–5 study: the distribution
// of Ĵ for a given overlap structure and fingerprint size.
type EstimatorRow struct {
	Params    combin.Params
	TrueJ     float64
	Summary   analysis.Summary
	ExactMean float64 // from Theorem 1 when tractable, else NaN
}

// Fig3 reproduces the paper's estimator study: a 100-item profile against
// profiles of 25, 100 and 300 items at several true similarities, b = 1024.
// The mean and 1–99% interquantile of the Monte-Carlo distribution are the
// plotted quantities.
func Fig3(trials int, seed int64) ([]EstimatorRow, error) {
	if trials <= 0 {
		trials = 50000
	}
	// |P1| = 100 against |P2| ∈ {25, 100, 300}; the overlap sweeps 20–80%
	// of the smaller profile so the true Jaccard spans the figure's x axis.
	var rows []EstimatorRow
	for _, size2 := range []int{25, 100, 300} {
		smaller := size2
		if smaller > 100 {
			smaller = 100
		}
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
			alpha := int(frac * float64(smaller))
			if alpha < 1 {
				continue
			}
			p := combin.Params{Alpha: alpha, Gamma1: 100 - alpha, Gamma2: size2 - alpha, B: 1024}
			samples, err := analysis.SampleEstimator(p, trials, seed)
			if err != nil {
				return nil, err
			}
			// The paper computes Fig 3 exactly from Theorem 1; the
			// occupancy DP makes that tractable here too, and the
			// Monte-Carlo column cross-checks it.
			exact, err := combin.SummarizeDP(p, nil)
			if err != nil {
				return nil, err
			}
			rows = append(rows, EstimatorRow{
				Params:    p,
				TrueJ:     p.Jaccard(),
				Summary:   analysis.Summarize(samples),
				ExactMean: exact.Mean,
			})
		}
	}
	return rows, nil
}

// RenderFig3 writes the Fig 3 series.
func RenderFig3(w io.Writer, rows []EstimatorRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 3 — Ĵ distribution (b = 1024, |P1| = 100; exact = Theorem 1 via occupancy DP)")
	fmt.Fprintln(tw, "|P2|\tJ\tmean Ĵ (MC)\texact mean\tQ1%\tQ99%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Params.Alpha+r.Params.Gamma2, r.TrueJ, r.Summary.Mean, r.ExactMean, r.Summary.Q01, r.Summary.Q99)
	}
	tw.Flush()
}

// Fig4Result is the misordering study of Fig 4.
type Fig4Result struct {
	JHigh, JLow    float64
	MeanHigh       float64
	MeanLow        float64
	MisorderingPct float64
	// ExactPct is the misordering probability computed exactly from the
	// two Theorem 1 distributions (no sampling error).
	ExactPct float64
}

// Fig4 reproduces the paper's misordering experiment: two 100-item profiles
// with true similarities 0.25 and 0.17 to the same reference, b = 1024;
// the probability of preferring the wrong one stays under 2%.
func Fig4(trials int, seed int64) (Fig4Result, error) {
	if trials <= 0 {
		trials = 50000
	}
	pHigh := combin.Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024} // J = 0.25
	pLow := combin.Params{Alpha: 29, Gamma1: 71, Gamma2: 71, B: 1024}  // J ≈ 0.17
	high, err := analysis.SampleEstimator(pHigh, trials, seed)
	if err != nil {
		return Fig4Result{}, err
	}
	low, err := analysis.SampleEstimator(pLow, trials, seed+1)
	if err != nil {
		return Fig4Result{}, err
	}
	exact, err := combin.MisorderExact(pHigh, pLow)
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{
		JHigh: pHigh.Jaccard(), JLow: pLow.Jaccard(),
		MeanHigh:       analysis.Summarize(high).Mean,
		MeanLow:        analysis.Summarize(low).Mean,
		MisorderingPct: 100 * analysis.MisorderProbability(high, low, seed+2),
		ExactPct:       100 * exact,
	}, nil
}

// RenderFig4 writes the misordering result.
func RenderFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintf(w, "Fig 4 — misordering: J=%.2f (mean Ĵ %.3f) vs J=%.2f (mean Ĵ %.3f): P(misorder) = %.2f%% (MC), %.2f%% (exact)\n",
		r.JHigh, r.MeanHigh, r.JLow, r.MeanLow, r.MisorderingPct, r.ExactPct)
}

// Fig5 reproduces the spread-vs-b study: the same J = 0.25 pair summarized
// for decreasing fingerprint sizes.
func Fig5(trials int, seed int64) ([]EstimatorRow, error) {
	if trials <= 0 {
		trials = 50000
	}
	var rows []EstimatorRow
	for _, b := range []int{256, 512, 1024} {
		p := combin.Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: b}
		samples, err := analysis.SampleEstimator(p, trials, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EstimatorRow{Params: p, TrueJ: p.Jaccard(), Summary: analysis.Summarize(samples)})
	}
	return rows, nil
}

// RenderFig5 writes the Fig 5 series.
func RenderFig5(w io.Writer, rows []EstimatorRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 5 — Ĵ spread vs SHF size (J = 0.25, |P1| = |P2| = 100)")
	fmt.Fprintln(tw, "b\tmean Ĵ\tQ1%\tQ99%\tspread")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Params.B, r.Summary.Mean, r.Summary.Q01, r.Summary.Q99, r.Summary.Q99-r.Summary.Q01)
	}
	tw.Flush()
}

// Fig8Row is the recommendation recall of one algorithm on one dataset.
type Fig8Row struct {
	Dataset          string
	Algorithm        string
	NativeRecall     float64
	GoldFingerRecall float64
}

// Fig8 reproduces the recommender case study: 30 recommendations per user,
// 5-fold cross-validation, recall of native vs GoldFinger graphs. Only the
// three algorithms shown in the figure are run (LSH is excluded there).
func Fig8(cfg Config) ([]Fig8Row, error) {
	var rows []Fig8Row
	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	for _, preset := range cfg.datasets() {
		d := datasetFor(cfg, preset)
		for _, algo := range Algorithms()[:3] { // Brute Force, Hyrec, NNDescent
			native, err := recommend.CrossValidate(d, 5, cfg.Seed, recommend.DefaultN,
				func(train *dataset.Dataset) *knn.Graph {
					g, _ := algo.Run(train, knn.NewExplicitProvider(train.Profiles), cfg.k(), cfg)
					return g
				})
			if err != nil {
				return nil, err
			}
			golfi, err := recommend.CrossValidate(d, 5, cfg.Seed, recommend.DefaultN,
				func(train *dataset.Dataset) *knn.Graph {
					g, _ := algo.Run(train, knn.NewSHFProvider(scheme, train.Profiles), cfg.k(), cfg)
					return g
				})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{Dataset: d.Name, Algorithm: algo.Name,
				NativeRecall: native, GoldFingerRecall: golfi})
		}
	}
	return rows, nil
}

// RenderFig8 writes the recall comparison.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 8 — recommendation recall (30 recs, 5-fold CV)")
	fmt.Fprintln(tw, "Dataset\tAlgorithm\tnative\tGolFi\tΔ")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.4f\t%+.4f\n",
			r.Dataset, r.Algorithm, r.NativeRecall, r.GoldFingerRecall, r.GoldFingerRecall-r.NativeRecall)
	}
	tw.Flush()
}

// Fig10Row is one point of the time/quality trade-off sweep.
type Fig10Row struct {
	Algorithm string
	Bits      int
	Time      time.Duration
	Quality   float64
}

// Fig10 sweeps the SHF size for Brute Force and Hyrec on the ml10M-shaped
// dataset, reporting execution time and quality per size (the paper's
// trade-off curves).
func Fig10(cfg Config, bitSizes []int) []Fig10Row {
	if len(bitSizes) == 0 {
		bitSizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	}
	d := datasetFor(cfg, dataset.ML10M)
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, cfg.k(), cfg.knnOptions())

	var rows []Fig10Row
	for _, algo := range []Algorithm{Algorithms()[0], Algorithms()[1]} { // Brute Force, Hyrec
		for _, bits := range bitSizes {
			scheme := core.MustScheme(bits, uint64(cfg.Seed))
			shfP := knn.NewSHFProvider(scheme, d.Profiles)
			var g *knn.Graph
			t := timeIt(func() { g, _ = algo.Run(d, shfP, cfg.k(), cfg) })
			rows = append(rows, Fig10Row{Algorithm: algo.Name, Bits: bits,
				Time: t, Quality: knn.Quality(g, exact, exactP)})
		}
	}
	return rows
}

// RenderFig10 writes the trade-off sweep.
func RenderFig10(w io.Writer, rows []Fig10Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 10 — time vs quality per SHF size (ml10M-shaped)")
	fmt.Fprintln(tw, "Algorithm\tb\ttime\tquality")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.3f\n", r.Algorithm, r.Bits, seconds(r.Time), r.Quality)
	}
	tw.Flush()
}

// Fig11Result is the similarity-distortion heatmap study.
type Fig11Result struct {
	Bits    int
	Heatmap *analysis.Heatmap
	// Within[d] is the fraction of pairs with |Ĵ−J| ≤ d, the paper's
	// headline distortion numbers.
	Within map[float64]float64
}

// Fig11 samples user pairs of the ml10M-shaped dataset and bins real vs
// estimated similarity for b = 1024 and 4096.
func Fig11(cfg Config, pairs int) ([]Fig11Result, error) {
	if pairs <= 0 {
		pairs = 200000
	}
	d := datasetFor(cfg, dataset.ML10M)
	var out []Fig11Result
	for _, bits := range []int{1024, 4096} {
		h, err := analysis.ComputeHeatmap(d.Profiles, core.MustScheme(bits, uint64(cfg.Seed)), pairs, 100, cfg.Seed)
		if err != nil {
			return nil, err
		}
		within := map[float64]float64{}
		for _, delta := range []float64{0.01, 0.02, 0.05, 0.1} {
			within[delta] = h.DiagonalMass(delta)
		}
		out = append(out, Fig11Result{Bits: bits, Heatmap: h, Within: within})
	}
	return out, nil
}

// RenderFig11 writes the distortion summary.
func RenderFig11(w io.Writer, results []Fig11Result) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 11 — similarity distortion (ml10M-shaped pairs)")
	fmt.Fprintln(tw, "b\t≤0.01\t≤0.02\t≤0.05\t≤0.10")
	for _, r := range results {
		fmt.Fprintf(tw, "%d\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\n",
			r.Bits, 100*r.Within[0.01], 100*r.Within[0.02], 100*r.Within[0.05], 100*r.Within[0.1])
	}
	tw.Flush()
}

// Fig12Row is one point of the Hyrec convergence sweep.
type Fig12Row struct {
	Bits       int
	Iterations int
	ScanRate   float64
}

// Fig12 sweeps the SHF size and reports Hyrec's iterations and scanrate on
// the ml10M-shaped dataset, plus the native reference as Bits = 0.
func Fig12(cfg Config, bitSizes []int) []Fig12Row {
	if len(bitSizes) == 0 {
		bitSizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	}
	d := datasetFor(cfg, dataset.ML10M)
	n := d.NumUsers()

	var rows []Fig12Row
	_, sNat := knn.Hyrec(knn.NewExplicitProvider(d.Profiles), cfg.k(), cfg.knnOptions())
	rows = append(rows, Fig12Row{Bits: 0, Iterations: sNat.Iterations, ScanRate: sNat.ScanRate(n)})
	for _, bits := range bitSizes {
		shfP := knn.NewSHFProvider(core.MustScheme(bits, uint64(cfg.Seed)), d.Profiles)
		_, s := knn.Hyrec(shfP, cfg.k(), cfg.knnOptions())
		rows = append(rows, Fig12Row{Bits: bits, Iterations: s.Iterations, ScanRate: s.ScanRate(n)})
	}
	return rows
}

// RenderFig12 writes the convergence sweep.
func RenderFig12(w io.Writer, rows []Fig12Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Fig 12 — Hyrec convergence vs SHF size (b = 0 is native)")
	fmt.Fprintln(tw, "b\titerations\tscanrate")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\n", r.Bits, r.Iterations, r.ScanRate)
	}
	tw.Flush()
}

// PrivacyReport produces the §2.5 accounting for every dataset.
func PrivacyReport(cfg Config) []privacy.Report {
	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	var rows []privacy.Report
	for _, preset := range cfg.datasets() {
		d := datasetFor(cfg, preset)
		r := privacy.Assess(d.Name, d.Profiles, d.NumItems, scheme)
		// Also report the full-size universe the paper quotes (m is not
		// scaled down by the synthetic generator in the privacy sense).
		rows = append(rows, r)
	}
	return rows
}

// RenderPrivacy writes the privacy accounting, including the paper's
// full-size numbers for reference.
func RenderPrivacy(w io.Writer, cfg Config, rows []privacy.Report) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Privacy (§2.5) — k-anonymity and ℓ-diversity, b =", cfg.bits())
	fmt.Fprintln(tw, "Dataset\tm\tmean c\tk-anonymity\tℓ-diversity")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t2^%.0f\t%.0f\n", r.Dataset, r.Items, r.MeanCard, r.KAnonymityBits, r.LDiversity)
	}
	tw.Flush()
	// The paper's reference point at full size.
	full := privacy.KAnonymityLog2(171356, cfg.bits(), 1)
	fmt.Fprintf(w, "(full-size AmazonMovies: m=171356 → 2^%.0f-anonymity per set bit, %.0f-diversity)\n",
		full, privacy.LDiversity(171356, cfg.bits()))
}
