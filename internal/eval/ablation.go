package eval

import (
	"fmt"
	"io"
	"math"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/minhash"
	"goldfinger/internal/profile"
	"goldfinger/internal/sampling"
)

// CompactionRow compares one profile-compaction strategy on the same
// workload: Brute Force construction time and quality versus the exact
// graph, plus the per-user representation size.
type CompactionRow struct {
	Representation string
	BytesPerUser   float64
	Time           time.Duration
	Quality        float64
}

// AblationCompaction runs the §6 comparison the paper argues from: exact
// profiles, GoldFinger SHFs, b-bit minwise sketches and least-popular
// truncation, all driving the same Brute Force construction on the
// ml1M-shaped dataset.
func AblationCompaction(cfg Config) ([]CompactionRow, error) {
	d := datasetFor(cfg, dataset.ML1M)
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, cfg.k(), cfg.knnOptions())

	var meanProfile float64
	for _, p := range d.Profiles {
		meanProfile += float64(p.Len())
	}
	meanProfile /= float64(len(d.Profiles))

	var rows []CompactionRow
	measure := func(name string, bytesPerUser float64, p knn.Provider) {
		var g *knn.Graph
		t := timeIt(func() { g, _ = knn.BruteForce(p, cfg.k(), cfg.knnOptions()) })
		rows = append(rows, CompactionRow{
			Representation: name,
			BytesPerUser:   bytesPerUser,
			Time:           t,
			Quality:        knn.Quality(g, exact, exactP),
		})
	}

	measure("native (exact)", meanProfile*4, exactP)

	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	measure(fmt.Sprintf("GoldFinger %d-bit", cfg.bits()), float64(cfg.bits())/8+8,
		knn.NewSHFProvider(scheme, d.Profiles))

	mhCfg := minhash.Config{Permutations: 256, Bits: 4, Mode: minhash.PermutationHashed, Seed: cfg.Seed}
	sk, err := minhash.NewSketcher(mhCfg, d.NumItems)
	if err != nil {
		return nil, err
	}
	measure("b-bit MinHash 256×4", 256*4.0/8, minhash.NewProvider(sk, d.Profiles))

	maxItems := int(math.Round(float64(cfg.bits()) / 8 / 4)) // same byte budget as the SHF
	if maxItems < 1 {
		maxItems = 1
	}
	trP, err := sampling.NewProvider(d.Profiles, maxItems)
	if err != nil {
		return nil, err
	}
	measure(fmt.Sprintf("least-popular top-%d", maxItems), float64(maxItems)*4, trP)

	return rows, nil
}

// RenderAblationCompaction writes the comparison.
func RenderAblationCompaction(w io.Writer, rows []CompactionRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Ablation — profile compaction strategies (Brute Force, ml1M-shaped)")
	fmt.Fprintln(tw, "Representation\tbytes/user\ttime\tquality")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%.3f\n", r.Representation, r.BytesPerUser, seconds(r.Time), r.Quality)
	}
	tw.Flush()
}

// MultiHashRow reports the estimator error and end-to-end quality of a
// k-hash fingerprint.
type MultiHashRow struct {
	Hashes     int
	MeanAbsErr float64
	Quality    float64
}

// AblationMultiHash quantifies §2.3's argument that SHFs must use a single
// hash function: for fixed b, more hashes per item degrade both the raw
// estimator and the KNN graph built from it.
func AblationMultiHash(cfg Config) ([]MultiHashRow, error) {
	d := datasetFor(cfg, dataset.ML1M)
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, cfg.k(), cfg.knnOptions())

	var rows []MultiHashRow
	for _, k := range []int{1, 2, 4, 8} {
		s, err := core.NewMultiHashScheme(cfg.bits(), k, uint64(cfg.Seed))
		if err != nil {
			return nil, err
		}
		fps := s.FingerprintAll(d.Profiles)

		// Estimator error over sampled pairs.
		var errSum float64
		pairs := 0
		for u := 0; u < d.NumUsers(); u += 3 {
			for v := u + 1; v < d.NumUsers(); v += 17 {
				est := core.Jaccard(fps[u], fps[v])
				truth := profile.Jaccard(d.Profiles[u], d.Profiles[v])
				errSum += math.Abs(est - truth)
				pairs++
			}
		}

		g, _ := knn.BruteForce(&knn.SHFProvider{Fingerprints: fps}, cfg.k(), cfg.knnOptions())
		rows = append(rows, MultiHashRow{
			Hashes:     k,
			MeanAbsErr: errSum / float64(pairs),
			Quality:    knn.Quality(g, exact, exactP),
		})
	}
	return rows, nil
}

// RenderAblationMultiHash writes the multi-hash study.
func RenderAblationMultiHash(w io.Writer, rows []MultiHashRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Ablation — hash functions per item (fixed b, ml1M-shaped)")
	fmt.Fprintln(tw, "hashes\tmean |Ĵ−J|\tKNN quality")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.3f\n", r.Hashes, r.MeanAbsErr, r.Quality)
	}
	tw.Flush()
}

// KIFFRow compares KIFF with the paper's four algorithms on one dataset.
type KIFFRow struct {
	Dataset           string
	NativeTime        time.Duration
	GoldFingerTime    time.Duration
	NativeQuality     float64
	GoldFingerQuality float64
	ScanRate          float64
}

// AblationKIFF runs the KIFF extension (related work §6) on a dense and a
// sparse dataset in both modes, showing where candidate filtering shines.
func AblationKIFF(cfg Config) []KIFFRow {
	var rows []KIFFRow
	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	for _, preset := range []dataset.Preset{dataset.ML1M, dataset.DBLP} {
		d := datasetFor(cfg, preset)
		exactP := knn.NewExplicitProvider(d.Profiles)
		exact, _ := knn.BruteForce(exactP, cfg.k(), cfg.knnOptions())

		var gNat *knn.Graph
		var sNat knn.Stats
		tNat := timeIt(func() {
			gNat, sNat = knn.KIFF(d.Profiles, exactP, cfg.k(), knn.KIFFOptions{Workers: cfg.Workers})
		})
		shfP := knn.NewSHFProvider(scheme, d.Profiles)
		var gGF *knn.Graph
		tGF := timeIt(func() {
			gGF, _ = knn.KIFF(d.Profiles, shfP, cfg.k(), knn.KIFFOptions{Workers: cfg.Workers})
		})
		rows = append(rows, KIFFRow{
			Dataset:           d.Name,
			NativeTime:        tNat,
			GoldFingerTime:    tGF,
			NativeQuality:     knn.Quality(gNat, exact, exactP),
			GoldFingerQuality: knn.Quality(gGF, exact, exactP),
			ScanRate:          sNat.ScanRate(d.NumUsers()),
		})
	}
	return rows
}

// RenderAblationKIFF writes the KIFF study.
func RenderAblationKIFF(w io.Writer, rows []KIFFRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Extension — KIFF (candidate filtering, §6) native vs GoldFinger")
	fmt.Fprintln(tw, "Dataset\tnative\tGolFi\tq.nat\tq.GolFi\tscanrate")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.2f\t%.3f\n",
			r.Dataset, seconds(r.NativeTime), seconds(r.GoldFingerTime),
			r.NativeQuality, r.GoldFingerQuality, r.ScanRate)
	}
	tw.Flush()
}
