package eval

import (
	"bytes"
	"strings"
	"testing"

	"goldfinger/internal/dataset"
)

func TestAblationCompaction(t *testing.T) {
	cfg := tinyCfg()
	rows, err := AblationCompaction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 representations", len(rows))
	}
	if rows[0].Quality != 1 {
		t.Errorf("native quality = %g, want 1", rows[0].Quality)
	}
	for _, r := range rows[1:] {
		if r.Quality <= 0.3 || r.Quality > 1+1e-9 {
			t.Errorf("%s quality = %.3f out of plausible range", r.Representation, r.Quality)
		}
		if r.BytesPerUser <= 0 {
			t.Errorf("%s has non-positive size", r.Representation)
		}
	}
	var buf bytes.Buffer
	RenderAblationCompaction(&buf, rows)
	if !strings.Contains(buf.String(), "GoldFinger") {
		t.Error("render missing GoldFinger row")
	}
}

func TestAblationMultiHashDegrades(t *testing.T) {
	cfg := tinyCfg()
	rows, err := AblationMultiHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Hashes != 1 {
		t.Fatal("first row should be the single-hash SHF")
	}
	// §2.3: error grows with the hash count; quality at k=8 clearly below
	// k=1.
	if rows[3].MeanAbsErr <= rows[0].MeanAbsErr {
		t.Errorf("8-hash error %.4f not above 1-hash error %.4f", rows[3].MeanAbsErr, rows[0].MeanAbsErr)
	}
	if rows[3].Quality >= rows[0].Quality {
		t.Errorf("8-hash quality %.3f not below 1-hash %.3f", rows[3].Quality, rows[0].Quality)
	}
	var buf bytes.Buffer
	RenderAblationMultiHash(&buf, rows)
	if !strings.Contains(buf.String(), "hashes") {
		t.Error("render missing header")
	}
}

func TestAblationKIFF(t *testing.T) {
	cfg := tinyCfg()
	cfg.Datasets = []dataset.Preset{dataset.ML1M, dataset.DBLP}
	rows := AblationKIFF(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.NativeQuality < 0.7 {
			t.Errorf("%s: KIFF native quality %.3f suspiciously low", r.Dataset, r.NativeQuality)
		}
		if r.ScanRate <= 0 || r.ScanRate > 1.5 {
			t.Errorf("%s: scanrate %.3f out of range", r.Dataset, r.ScanRate)
		}
	}
	var buf bytes.Buffer
	RenderAblationKIFF(&buf, rows)
	if !strings.Contains(buf.String(), "KIFF") {
		t.Error("render missing header")
	}
}
