package eval

import (
	"fmt"
	"io"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/gossip"
	"goldfinger/internal/knn"
)

// GossipRow is one convergence point of the decentralized experiment.
type GossipRow struct {
	Mode              string
	Round             int
	AvgViewSimilarity float64
	Quality           float64
	Messages          int64
}

// Gossip runs the decentralized Gossple-style protocol on the ml1M-shaped
// dataset in both modes and reports convergence (the paper's motivating
// deployment: profiles never leave the device; only fingerprints are
// gossiped).
func Gossip(cfg Config, rounds int) ([]GossipRow, error) {
	if rounds <= 0 {
		rounds = 15
	}
	d := datasetFor(cfg, dataset.ML1M)
	exactP := knn.NewExplicitProvider(d.Profiles)
	k := cfg.k()
	exact, _ := knn.BruteForce(exactP, k, cfg.knnOptions())

	var rows []GossipRow
	run := func(mode string, p knn.Provider) error {
		// Re-run the protocol for increasing round counts so quality can
		// be measured per round without exposing internal state.
		for _, r := range []int{1, rounds / 3, rounds} {
			if r < 1 {
				r = 1
			}
			g, stats, err := gossip.Simulate(p, gossip.Config{K: k, Rounds: r, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			last := stats[len(stats)-1]
			rows = append(rows, GossipRow{
				Mode:              mode,
				Round:             last.Round,
				AvgViewSimilarity: last.AvgViewSimilarity,
				Quality:           knn.Quality(g, exact, exactP),
				Messages:          last.Messages,
			})
		}
		return nil
	}
	if err := run("native", exactP); err != nil {
		return nil, err
	}
	shfP := knn.NewSHFProvider(core.MustScheme(cfg.bits(), uint64(cfg.Seed)), d.Profiles)
	if err := run("goldfinger", shfP); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderGossip writes the convergence table.
func RenderGossip(w io.Writer, rows []GossipRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Extension — decentralized gossip KNN (ml1M-shaped)")
	fmt.Fprintln(tw, "mode\trounds\tavg view sim\tquality\tmessages")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.3f\t%d\n", r.Mode, r.Round, r.AvgViewSimilarity, r.Quality, r.Messages)
	}
	tw.Flush()
}

// DynamicRow reports the incremental-maintenance experiment.
type DynamicRow struct {
	Updates            int
	RepairComparisons  int
	RebuildComparisons int64
	MaintainedQuality  float64
	RebuildQuality     float64
	RepairTime         time.Duration
	RebuildTime        time.Duration
}

// Dynamic measures incremental KNN maintenance (the §6 dynamic-data
// setting): apply a stream of new ratings through the local-repair
// maintainer and compare its cost and quality against rebuilding from
// scratch after every batch.
func Dynamic(cfg Config, updates int) (DynamicRow, error) {
	if updates <= 0 {
		updates = 100
	}
	d := datasetFor(cfg, dataset.ML1M)
	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	k := cfg.k()

	dyn, err := knn.NewDynamic(scheme, d.Profiles, k, cfg.knnOptions())
	if err != nil {
		return DynamicRow{}, err
	}

	repairs := 0
	var repairTime time.Duration
	for i := 0; i < updates; i++ {
		u := (i * 7) % d.NumUsers()
		src := (u + 13) % d.NumUsers()
		item := d.Profiles[src][i%d.Profiles[src].Len()]
		start := time.Now()
		c, err := dyn.AddRating(u, item)
		if err != nil {
			return DynamicRow{}, err
		}
		repairTime += time.Since(start)
		repairs += c
	}

	// Rebuild from the maintainer's current profiles for comparison.
	currentProfiles := dyn.Profiles()
	exactP := knn.NewExplicitProvider(currentProfiles)
	exact, _ := knn.BruteForce(exactP, k, cfg.knnOptions())

	var rebuilt *knn.Graph
	var rebuildStats knn.Stats
	rebuildTime := timeIt(func() {
		rebuilt, rebuildStats = knn.BruteForce(knn.NewSHFProvider(scheme, currentProfiles), k, cfg.knnOptions())
	})

	return DynamicRow{
		Updates:            updates,
		RepairComparisons:  repairs,
		RebuildComparisons: rebuildStats.Comparisons,
		MaintainedQuality:  knn.Quality(dyn.Graph(), exact, exactP),
		RebuildQuality:     knn.Quality(rebuilt, exact, exactP),
		RepairTime:         repairTime,
		RebuildTime:        rebuildTime,
	}, nil
}

// ScalingRow is one point of the gain-vs-scale study.
type ScalingRow struct {
	Scale          float64
	Users          int
	NativeTime     time.Duration
	GoldFingerTime time.Duration
	GainPct        float64
	Quality        float64
}

// Scaling runs Brute Force natively and with GoldFinger on ml1M-shaped
// datasets of growing scale: both are O(n²), so the paper's per-comparison
// speedup should appear as a scale-independent gain — the evidence that
// laptop-scale results extrapolate.
func Scaling(cfg Config, scales []float64) []ScalingRow {
	if len(scales) == 0 {
		scales = []float64{0.02, 0.05, 0.1}
	}
	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	var rows []ScalingRow
	for _, scale := range scales {
		runCfg := cfg
		runCfg.Scale = scale
		d := datasetFor(runCfg, dataset.ML1M)
		exactP := knn.NewExplicitProvider(d.Profiles)
		var exact *knn.Graph
		tNat := timeIt(func() { exact, _ = knn.BruteForce(exactP, cfg.k(), cfg.knnOptions()) })
		shfP := knn.NewSHFProvider(scheme, d.Profiles)
		var g *knn.Graph
		tGF := timeIt(func() { g, _ = knn.BruteForce(shfP, cfg.k(), cfg.knnOptions()) })
		rows = append(rows, ScalingRow{
			Scale:          scale,
			Users:          d.NumUsers(),
			NativeTime:     tNat,
			GoldFingerTime: tGF,
			GainPct:        gainPct(tNat, tGF),
			Quality:        knn.Quality(g, exact, exactP),
		})
	}
	return rows
}

// RenderScaling writes the gain-vs-scale table.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Extension — GoldFinger gain vs dataset scale (Brute Force, ml1M-shaped)")
	fmt.Fprintln(tw, "scale\tusers\tnative\tGolFi\tgain%\tquality")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%d\t%s\t%s\t%.1f\t%.3f\n",
			r.Scale, r.Users, seconds(r.NativeTime), seconds(r.GoldFingerTime), r.GainPct, r.Quality)
	}
	tw.Flush()
}

// RenderDynamic writes the maintenance comparison.
func RenderDynamic(w io.Writer, r DynamicRow) {
	fmt.Fprintf(w, "Extension — dynamic maintenance (ml1M-shaped, %d rating updates)\n", r.Updates)
	fmt.Fprintf(w, "incremental repair: %d comparisons, %v, quality %.3f\n",
		r.RepairComparisons, r.RepairTime.Round(time.Millisecond), r.MaintainedQuality)
	fmt.Fprintf(w, "full rebuild:       %d comparisons, %v, quality %.3f\n",
		r.RebuildComparisons, r.RebuildTime.Round(time.Millisecond), r.RebuildQuality)
}
