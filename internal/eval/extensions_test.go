package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestGossipExperiment(t *testing.T) {
	cfg := tinyCfg()
	rows, err := Gossip(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 round counts × 2 modes
		t.Fatalf("got %d rows", len(rows))
	}
	byMode := map[string][]GossipRow{}
	for _, r := range rows {
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	for mode, mrows := range byMode {
		if len(mrows) != 3 {
			t.Fatalf("%s: %d rows", mode, len(mrows))
		}
		// Quality improves (or holds) with more rounds.
		if mrows[2].Quality < mrows[0].Quality-0.02 {
			t.Errorf("%s: quality fell from %.3f (round %d) to %.3f (round %d)",
				mode, mrows[0].Quality, mrows[0].Round, mrows[2].Quality, mrows[2].Round)
		}
		if mrows[2].Messages <= mrows[0].Messages {
			t.Errorf("%s: message count not growing", mode)
		}
	}
	// GoldFinger parity at the final round.
	if gf, nat := byMode["goldfinger"][2].Quality, byMode["native"][2].Quality; gf < nat-0.2 {
		t.Errorf("gossip GoldFinger quality %.3f far below native %.3f", gf, nat)
	}
	var buf bytes.Buffer
	RenderGossip(&buf, rows)
	if !strings.Contains(buf.String(), "gossip") {
		t.Error("render missing header")
	}
}

func TestDynamicExperiment(t *testing.T) {
	cfg := tinyCfg()
	row, err := Dynamic(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if row.Updates != 40 {
		t.Errorf("updates = %d", row.Updates)
	}
	if row.RepairComparisons <= 0 {
		t.Error("no repair comparisons recorded")
	}
	// The point of incremental maintenance: far fewer comparisons than a
	// rebuild, at nearly the same quality.
	if int64(row.RepairComparisons) >= row.RebuildComparisons {
		t.Errorf("repair (%d) not cheaper than rebuild (%d)", row.RepairComparisons, row.RebuildComparisons)
	}
	if row.MaintainedQuality < row.RebuildQuality-0.05 {
		t.Errorf("maintained quality %.3f fell more than 0.05 below rebuild %.3f",
			row.MaintainedQuality, row.RebuildQuality)
	}
	var buf bytes.Buffer
	RenderDynamic(&buf, row)
	if !strings.Contains(buf.String(), "dynamic maintenance") {
		t.Error("render missing header")
	}
}

func TestScalingExperiment(t *testing.T) {
	cfg := tinyCfg()
	rows := Scaling(cfg, []float64{0.01, 0.02})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Users <= rows[0].Users {
		t.Error("user count not growing with scale")
	}
	for _, r := range rows {
		if r.GainPct <= 0 {
			t.Errorf("scale %.2f: no GoldFinger gain (%.1f%%)", r.Scale, r.GainPct)
		}
		if r.Quality < 0.8 {
			t.Errorf("scale %.2f: quality %.3f", r.Scale, r.Quality)
		}
	}
	var buf bytes.Buffer
	RenderScaling(&buf, rows)
	if !strings.Contains(buf.String(), "scale") {
		t.Error("render missing header")
	}
}
