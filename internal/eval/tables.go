package eval

import (
	"fmt"
	"io"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/memtrack"
	"goldfinger/internal/minhash"
)

// Table2 returns the dataset statistics (one row per preset, paper Table 2).
func Table2(cfg Config) []dataset.Stats {
	rows := make([]dataset.Stats, 0, len(cfg.datasets()))
	for _, p := range cfg.datasets() {
		rows = append(rows, datasetFor(cfg, p).ComputeStats())
	}
	return rows
}

// RenderTable2 writes the dataset statistics.
func RenderTable2(w io.Writer, rows []dataset.Stats) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Table 2 — datasets (synthetic, scaled; see DESIGN.md §3)")
	fmt.Fprintln(tw, "Dataset\tUsers\tItems\tRatings>3\t|Pu|\t|Pi|\tDensity")
	for _, s := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.3f%%\n",
			s.Name, s.Users, s.Items, s.Ratings, s.MeanProfile, s.MeanItemDeg, s.DensityPct)
	}
	tw.Flush()
}

// Table3Row is one line of Table 3: preparation time of the three dataset
// representations.
type Table3Row struct {
	Dataset          string
	Native           time.Duration
	MinHash          time.Duration
	GoldFinger       time.Duration
	SpeedupVsMinHash float64
}

// Table3 measures preparation time per representation: native builds the
// profiles from a raw rating stream; MinHash additionally materializes 256
// explicit permutations of the item universe and sketches every profile
// (b-bit minwise, the paper's configuration); GoldFinger fingerprints every
// profile with 1024-bit SHFs.
func Table3(cfg Config) ([]Table3Row, error) {
	rows := make([]Table3Row, 0, len(cfg.datasets()))
	for _, p := range cfg.datasets() {
		ratings := dataset.GenerateRatings(p, cfg.scale(), cfg.Seed)

		var d *dataset.Dataset
		native := timeIt(func() {
			d = dataset.FromRatings(p.Name, ratings, dataset.Options{})
		})

		mhCfg := minhash.DefaultConfig()
		mhCfg.Seed = cfg.Seed
		var mhErr error
		mh := timeIt(func() {
			sk, err := minhash.NewSketcher(mhCfg, d.NumItems)
			if err != nil {
				mhErr = err
				return
			}
			sk.SketchAll(d.Profiles)
		})
		if mhErr != nil {
			return nil, mhErr
		}

		scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
		golfi := timeIt(func() { scheme.FingerprintAll(d.Profiles) })
		// GoldFinger preparation includes building the profiles.
		golfi += native

		rows = append(rows, Table3Row{
			Dataset:          p.Name,
			Native:           native,
			MinHash:          native + mh,
			GoldFinger:       golfi,
			SpeedupVsMinHash: float64(native+mh) / float64(golfi),
		})
	}
	return rows, nil
}

// RenderTable3 writes Table 3.
func RenderTable3(w io.Writer, rows []Table3Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Table 3 — dataset preparation time")
	fmt.Fprintln(tw, "Dataset\tNative\tMinHash\tGoldFinger\tspeedup vs MinHash")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.1f×\n",
			r.Dataset, seconds(r.Native), seconds(r.MinHash), seconds(r.GoldFinger), r.SpeedupVsMinHash)
	}
	tw.Flush()
}

// Table4Row is one line of Table 4 (and the bars of Figs 6–7): computation
// time and KNN quality for one algorithm on one dataset, native vs
// GoldFinger.
type Table4Row struct {
	Dataset           string
	Algorithm         string
	NativeTime        time.Duration
	GoldFingerTime    time.Duration
	GainPct           float64
	NativeQuality     float64
	GoldFingerQuality float64
	QualityLoss       float64
	NativeStats       knn.Stats
	GoldFingerStats   knn.Stats
}

// Table4 runs every algorithm on every dataset in both modes. The native
// Brute Force graph doubles as the exact reference for quality (Eq. 3).
func Table4(cfg Config) []Table4Row {
	var rows []Table4Row
	for _, preset := range cfg.datasets() {
		d := datasetFor(cfg, preset)
		exactP := knn.NewExplicitProvider(d.Profiles)
		scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))

		var shfP *knn.SHFProvider
		prepGF := timeIt(func() { shfP = knn.NewSHFProvider(scheme, d.Profiles) })
		_ = prepGF // preparation is Table 3's business; Table 4 times the algorithms

		// The native Brute Force graph is the exact reference (Eq. 3);
		// build it once up front and reuse it for its own Table 4 row.
		var exact *knn.Graph
		var exactStats knn.Stats
		exactTime := timeIt(func() {
			exact, exactStats = knn.BruteForce(exactP, cfg.k(), cfg.knnOptions())
		})

		for _, algo := range Algorithms() {
			var gNat, gGF *knn.Graph
			var sNat, sGF knn.Stats
			var tNat time.Duration
			if algo.Name == "Brute Force" {
				gNat, sNat, tNat = exact, exactStats, exactTime
			} else {
				tNat = timeIt(func() { gNat, sNat = algo.Run(d, exactP, cfg.k(), cfg) })
			}
			tGF := timeIt(func() { gGF, sGF = algo.Run(d, shfP, cfg.k(), cfg) })
			qNat := knn.Quality(gNat, exact, exactP)
			qGF := knn.Quality(gGF, exact, exactP)
			rows = append(rows, Table4Row{
				Dataset:           d.Name,
				Algorithm:         algo.Name,
				NativeTime:        tNat,
				GoldFingerTime:    tGF,
				GainPct:           gainPct(tNat, tGF),
				NativeQuality:     qNat,
				GoldFingerQuality: qGF,
				QualityLoss:       qNat - qGF,
				NativeStats:       sNat,
				GoldFingerStats:   sGF,
			})
		}
	}
	return rows
}

// Table4Avg averages Table4 over repeats runs with distinct seeds — the
// paper averages every Table 4 number over its 5 cross-validation runs;
// this is the analogous noise reduction for the synthetic datasets.
func Table4Avg(cfg Config, repeats int) []Table4Row {
	if repeats <= 1 {
		return Table4(cfg)
	}
	var acc []Table4Row
	for r := 0; r < repeats; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(r)*1000
		rows := Table4(runCfg)
		if acc == nil {
			acc = rows
			continue
		}
		for i := range rows {
			acc[i].NativeTime += rows[i].NativeTime
			acc[i].GoldFingerTime += rows[i].GoldFingerTime
			acc[i].NativeQuality += rows[i].NativeQuality
			acc[i].GoldFingerQuality += rows[i].GoldFingerQuality
		}
	}
	for i := range acc {
		acc[i].NativeTime /= time.Duration(repeats)
		acc[i].GoldFingerTime /= time.Duration(repeats)
		acc[i].NativeQuality /= float64(repeats)
		acc[i].GoldFingerQuality /= float64(repeats)
		acc[i].GainPct = gainPct(acc[i].NativeTime, acc[i].GoldFingerTime)
		acc[i].QualityLoss = acc[i].NativeQuality - acc[i].GoldFingerQuality
	}
	return acc
}

// RenderTable4 writes Table 4.
func RenderTable4(w io.Writer, rows []Table4Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Table 4 — computation time and KNN quality (native vs GoldFinger)")
	fmt.Fprintln(tw, "Dataset\tAlgorithm\tnative\tGolFi\tgain%\tq.nat\tq.GolFi\tloss")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.1f\t%.2f\t%.2f\t%+.2f\n",
			r.Dataset, r.Algorithm, seconds(r.NativeTime), seconds(r.GoldFingerTime),
			r.GainPct, r.NativeQuality, r.GoldFingerQuality, r.QualityLoss)
	}
	tw.Flush()
}

// Table5 models the memory traffic of every algorithm on the ml10M-shaped
// dataset, native vs GoldFinger (see internal/memtrack for the substitution
// of the paper's hardware counters).
func Table5(cfg Config) []memtrack.Row {
	d := datasetFor(cfg, dataset.ML10M)
	exactP := knn.NewExplicitProvider(d.Profiles)
	scheme := core.MustScheme(cfg.bits(), uint64(cfg.Seed))
	shfP := knn.NewSHFProvider(scheme, d.Profiles)

	nativeModel := memtrack.ExplicitModel(d.Profiles)
	gfModel := memtrack.SHFModel(cfg.bits())

	var rows []memtrack.Row
	for _, algo := range Algorithms() {
		_, sNat := algo.Run(d, exactP, cfg.k(), cfg)
		_, sGF := algo.Run(d, shfP, cfg.k(), cfg)
		rows = append(rows, memtrack.NewRow(algo.Name, nativeModel.ForRun(sNat), gfModel.ForRun(sGF)))
	}
	return rows
}

// RenderTable5 writes Table 5.
func RenderTable5(w io.Writer, rows []memtrack.Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Table 5 — modeled memory traffic on ml10M (loads/stores, 4-byte ops)")
	fmt.Fprintln(tw, "Algorithm\tnat.loads\tGolFi.loads\tgain%\tnat.stores\tGolFi.stores\tgain%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\t%.1f\n",
			r.Algorithm, r.NativeLoads, r.GoldFingerLoads, r.LoadReductionPct,
			r.NativeStores, r.GoldFingerStores, r.StoreReductionPct)
	}
	tw.Flush()
}
