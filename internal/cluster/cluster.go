// Package cluster buckets users into small overlapping clusters using
// cheap hashes derived from their fingerprint bit rows — the grouping
// stage of Cluster-and-Conquer KNN construction (Giakkoupis, Kermarrec,
// Ruas, arXiv:2010.11497). Each of t independent views assigns every user
// to exactly one cluster via a min-wise hash of the user's set bits: two
// users whose SHFs share set bits collide with probability close to the
// Jaccard similarity of their bit sets, so a similar pair lands in the
// same cluster in at least one view with high probability while cluster
// sizes stay bounded. The per-view all-pairs work is then
// Σ cᵢ²/2 ≈ n·maxSize/2 instead of n²/2 — near-linear in n.
//
// Hashes read only the packed bit rows (no pass over raw profiles), so
// assignment costs O(n · set bits) per view and is trivially parallel.
// Buckets larger than the configured maximum are split recursively with
// fresh hash functions; buckets whose members are indistinguishable (bit
// identical or empty rows) fall back to deterministic chunking so the
// size bound always holds.
package cluster

import (
	"context"
	"math/bits"
	"runtime"
	"sort"
	"sync"
)

// Source is the bit-row view hashes are derived from. core.PackedCorpus
// implements it directly; rows must not be mutated while Assign runs.
type Source interface {
	NumUsers() int
	NumBits() int
	// Row returns user i's packed bit row. Only bit positions below
	// NumBits() may be set.
	Row(i int) []uint64
}

// Config tunes Assign. The zero value selects the defaults the
// Cluster-and-Conquer builder ships with.
type Config struct {
	// Views is t, the number of independent cluster views; every user is
	// assigned to one cluster per view. 0 means DefaultViews.
	Views int
	// MaxSize bounds every cluster's member count; oversized buckets are
	// split recursively. 0 means DefaultMaxSize.
	MaxSize int
	// Buckets is the number of top-level buckets per view: min-hash
	// positions are folded modulo Buckets, so it controls the expected
	// cluster occupancy n/Buckets. 0 derives it from the corpus size as
	// clamp(n/(MaxSize/4), 1, NumBits()) — tiny corpora collapse into a
	// single (exact) cluster, large ones target an average occupancy of
	// MaxSize/4 with the oversize split absorbing the skew.
	Buckets int
	// Seed derives every hash function. Assignments are fully
	// deterministic for a fixed (Source, Config) regardless of Workers.
	Seed int64
	// Workers parallelizes the per-user key computation; 0 means
	// GOMAXPROCS.
	Workers int
	// Ctx cancels an assignment in progress: it is polled between views
	// and between key-computation chunks, and a canceled Assign returns
	// only the views that finished completely — each returned view is
	// still a full partition of the users. Nil means never cancel.
	Ctx context.Context
}

// DefaultViews is the default number of independent cluster views (t).
// Six views tuned against the synthetic ML10M shape at n=100k: going
// 4 → 6 buys ~0.07 recall for ~30% more (near-linear) scan work, still
// ~4× faster end to end than NNDescent at that scale; past 6 the views
// mostly rediscover the same pairs.
const DefaultViews = 6

// DefaultMaxSize is the default cluster size cap.
const DefaultMaxSize = 512

func (c Config) views() int {
	if c.Views <= 0 {
		return DefaultViews
	}
	return c.Views
}

func (c Config) maxSize() int {
	if c.MaxSize <= 0 {
		return DefaultMaxSize
	}
	return c.MaxSize
}

// buckets resolves the per-view top-level bucket count for n users over
// nbits-bit rows.
func (c Config) buckets(n, nbits int) int {
	if c.Buckets > 0 {
		return c.Buckets
	}
	target := c.maxSize() / 4
	if target < 1 {
		target = 1
	}
	b := n / target
	if b < 1 {
		b = 1
	}
	if nbits >= 1 && b > nbits {
		b = nbits
	}
	return b
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// View is one independent clustering: a partition of all users into
// clusters of at most MaxSize members each.
type View struct {
	// Clusters lists every cluster's members in ascending user order.
	// Each user appears in exactly one cluster.
	Clusters [][]int32
	// ClustersOfKey maps a top-level bucket key (see Key) to the indices
	// of the clusters split from that bucket. Length NumBuckets()+1; key
	// NumBuckets() collects users with empty rows.
	ClustersOfKey [][]int32

	hash    mixer
	bits    int
	buckets int
}

// NumBuckets returns the view's top-level bucket count.
func (v *View) NumBuckets() int { return v.buckets }

// Key returns the view's top-level bucket key for an arbitrary packed bit
// row of the same length the view was built over: the set-bit position
// that minimizes the view's hash, folded modulo NumBuckets(), or
// NumBuckets() for an empty row. Rows that collide here were bucketed
// together before any oversize split — the cheap lookup query seeding
// uses.
func (v *View) Key(row []uint64) int {
	pos := v.hash.key(row, v.bits)
	if int(pos) == v.bits {
		return v.buckets
	}
	return int(pos) % v.buckets
}

// Assignment is the result of Assign: t independent views over one
// corpus.
type Assignment struct {
	// Bits is the row length the hashes were derived over.
	Bits  int
	Views []View
}

// Seeds returns up to max member ids drawn from the clusters the row's
// per-view bucket keys map to — the users most likely to be similar to
// the row under the same hashes that built the clustering. Results are
// deduplicated and deterministic; the slice is empty when every mapped
// bucket is empty (e.g. an empty row in a corpus with no empty rows).
func (a *Assignment) Seeds(row []uint64, max int) []int32 {
	if max <= 0 || len(a.Views) == 0 {
		return nil
	}
	out := make([]int32, 0, max)
	seen := make(map[int32]bool, max)
	perView := (max + len(a.Views) - 1) / len(a.Views)
	for vi := range a.Views {
		v := &a.Views[vi]
		key := v.Key(row)
		if key < 0 || key >= len(v.ClustersOfKey) {
			continue
		}
		took := 0
		// Round-robin across the key's clusters so seeds spread over the
		// split pieces instead of all landing in the first chunk.
		for rank := 0; took < perView; rank++ {
			advanced := false
			for _, ci := range v.ClustersOfKey[key] {
				members := v.Clusters[ci]
				if rank >= len(members) {
					continue
				}
				advanced = true
				id := members[rank]
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
					took++
					if took >= perView || len(out) >= max {
						break
					}
				}
			}
			if !advanced || len(out) >= max {
				break
			}
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// mixer is one cheap min-wise hash over set-bit positions: the key of a
// row is the set position whose mixed value is smallest. Two rows agree
// on the key with probability ≈ Jaccard of their bit sets (the classic
// min-hash argument), which is exactly the locality the clustering needs.
type mixer struct{ seed uint64 }

// mix64 is the splitmix64 finalizer — cheap, and avalanches every input
// bit into every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// key returns the min-hash bucket of row: a set-bit position in
// [0, bits), or bits when the row is empty.
func (m mixer) key(row []uint64, nbits int) int32 {
	best := ^uint64(0)
	pos := int32(nbits)
	for w, word := range row {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			p := base + b
			if v := mix64(m.seed ^ (uint64(p) * 0x9e3779b97f4a7c15)); v < best {
				best = v
				pos = int32(p)
			}
		}
	}
	return pos
}

// table materializes the mixer's hash of every bit position: tab[p] is the
// value key compares at position p. A position's hash never changes under
// a fixed mixer, and the bucket pass keys t·n rows with hundreds of set
// bits each — one b-entry table (8 KB at b=1024, L1-resident) replaces a
// splitmix round per set bit per row with a load.
func (m mixer) table(nbits int) []uint64 {
	tab := make([]uint64, nbits)
	for p := range tab {
		tab[p] = mix64(m.seed ^ (uint64(p) * 0x9e3779b97f4a7c15))
	}
	return tab
}

// keyTable is mixer.key evaluated against a precomputed table; it must
// agree with key bit for bit.
func keyTable(tab []uint64, row []uint64, nbits int) int32 {
	best := ^uint64(0)
	pos := int32(nbits)
	for w, word := range row {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			p := base + b
			if v := tab[p]; v < best {
				best = v
				pos = int32(p)
			}
		}
	}
	return pos
}

// viewMixer derives the hash for (view, level, attempt): level 0 is the
// top-level bucketing, deeper levels re-key oversized buckets.
func viewMixer(seed int64, view, level, attempt int) mixer {
	return mixer{seed: mix64(uint64(seed) ^
		uint64(view)<<40 ^ uint64(level)<<16 ^ uint64(attempt) ^ 0xc2b2ae3d27d4eb4f)}
}

// maxSplitLevels bounds the recursive re-hashing depth; a bucket still
// oversized after this many fresh hashes is chunked deterministically.
const maxSplitLevels = 64

// splitAttempts is how many fresh hash functions one level tries before
// concluding the members are indistinguishable and chunking them.
const splitAttempts = 4

// Assign buckets every user of src into one cluster per view. The result
// is deterministic for a fixed (src, cfg) and independent of
// cfg.Workers. A canceled cfg.Ctx returns the fully-finished views only.
func Assign(src Source, cfg Config) *Assignment {
	n := src.NumUsers()
	nbits := src.NumBits()
	t := cfg.views()
	maxSize := cfg.maxSize()
	nbuckets := cfg.buckets(n, nbits)
	workers := cfg.workers()
	ctx := cfg.ctx()

	a := &Assignment{Bits: nbits}
	keys := make([]int32, n)
	for vi := 0; vi < t; vi++ {
		if ctx.Err() != nil {
			return a
		}
		top := viewMixer(cfg.Seed, vi, 0, 0)
		tab := top.table(nbits)

		// Key every user under the view's top-level hash, in parallel
		// chunks; a canceled context abandons the view before grouping so
		// a returned view is never a partial partition.
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= n {
				break
			}
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for u := lo; u < hi; u++ {
					if u&1023 == 0 && ctx.Err() != nil {
						return
					}
					if pos := keyTable(tab, src.Row(u), nbits); int(pos) == nbits {
						keys[u] = int32(nbuckets)
					} else {
						keys[u] = pos % int32(nbuckets)
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		if ctx.Err() != nil {
			return a
		}

		// Group by key (ascending user order falls out of the scan), then
		// split oversized buckets.
		byKey := make([][]int32, nbuckets+1)
		for u := 0; u < n; u++ {
			byKey[keys[u]] = append(byKey[keys[u]], int32(u))
		}
		v := View{hash: top, bits: nbits, buckets: nbuckets, ClustersOfKey: make([][]int32, nbuckets+1)}
		sp := splitter{src: src, seed: cfg.Seed, view: vi, maxSize: maxSize, nbits: nbits}
		for key, members := range byKey {
			if len(members) == 0 {
				continue
			}
			start := len(v.Clusters)
			v.Clusters = sp.split(v.Clusters, members, 1)
			for ci := start; ci < len(v.Clusters); ci++ {
				v.ClustersOfKey[key] = append(v.ClustersOfKey[key], int32(ci))
			}
		}
		a.Views = append(a.Views, v)
	}
	return a
}

// splitter recursively splits oversized buckets with fresh hashes.
type splitter struct {
	src     Source
	seed    int64
	view    int
	maxSize int
	nbits   int
}

// split appends members to out as one or more clusters of at most
// maxSize users each, re-hashing oversized groups. Members must be in
// ascending order; every emitted cluster preserves it.
func (s *splitter) split(out [][]int32, members []int32, level int) [][]int32 {
	if len(members) <= s.maxSize {
		return append(out, members)
	}
	if level < maxSplitLevels {
		for attempt := 0; attempt < splitAttempts; attempt++ {
			h := viewMixer(s.seed, s.view, level, attempt)
			tab := h.table(s.nbits)
			groups := map[int32][]int32{}
			for _, u := range members {
				k := keyTable(tab, s.src.Row(int(u)), s.nbits)
				groups[k] = append(groups[k], u)
			}
			if len(groups) < 2 {
				continue // indistinguishable under this hash; try a fresh one
			}
			keys := make([]int32, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				out = s.split(out, groups[k], level+1)
			}
			return out
		}
	}
	// Members are bit-identical (or the level budget ran out): no hash
	// can separate them, so chunk deterministically. All-pairs work
	// inside such a bucket would be wasted anyway — identical rows score
	// identically against everything.
	for lo := 0; lo < len(members); lo += s.maxSize {
		out = append(out, members[lo:min(lo+s.maxSize, len(members))])
	}
	return out
}
