package cluster

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// testSource is an in-memory Source over explicit rows.
type testSource struct {
	bits int
	rows [][]uint64
}

func (s *testSource) NumUsers() int      { return len(s.rows) }
func (s *testSource) NumBits() int       { return s.bits }
func (s *testSource) Row(i int) []uint64 { return s.rows[i] }

// randomSource builds n rows of the given bit length with ~density set
// bits each.
func randomSource(n, bits int, density float64, seed int64) *testSource {
	rng := rand.New(rand.NewSource(seed))
	words := (bits + 63) / 64
	s := &testSource{bits: bits, rows: make([][]uint64, n)}
	for i := range s.rows {
		row := make([]uint64, words)
		for b := 0; b < bits; b++ {
			if rng.Float64() < density {
				row[b>>6] |= 1 << uint(b&63)
			}
		}
		s.rows[i] = row
	}
	return s
}

// checkPartition verifies that every view is a partition of all users
// with clusters no larger than maxSize and members in ascending order.
func checkPartition(t *testing.T, a *Assignment, n, views, maxSize int) {
	t.Helper()
	if len(a.Views) != views {
		t.Fatalf("got %d views, want %d", len(a.Views), views)
	}
	for vi, v := range a.Views {
		seen := make([]bool, n)
		total := 0
		for ci, members := range v.Clusters {
			if len(members) == 0 {
				t.Fatalf("view %d cluster %d is empty", vi, ci)
			}
			if len(members) > maxSize {
				t.Fatalf("view %d cluster %d has %d members, max %d", vi, ci, len(members), maxSize)
			}
			for i, u := range members {
				if u < 0 || int(u) >= n {
					t.Fatalf("view %d cluster %d member %d out of range", vi, ci, u)
				}
				if seen[u] {
					t.Fatalf("view %d assigns user %d twice", vi, u)
				}
				seen[u] = true
				if i > 0 && members[i-1] >= u {
					t.Fatalf("view %d cluster %d members not ascending", vi, ci)
				}
				total++
			}
		}
		if total != n {
			t.Fatalf("view %d covers %d of %d users", vi, total, n)
		}
		// ClustersOfKey must index every cluster exactly once.
		indexed := make([]bool, len(v.Clusters))
		for _, cis := range v.ClustersOfKey {
			for _, ci := range cis {
				if indexed[ci] {
					t.Fatalf("view %d cluster %d indexed twice in ClustersOfKey", vi, ci)
				}
				indexed[ci] = true
			}
		}
		for ci, ok := range indexed {
			if !ok {
				t.Fatalf("view %d cluster %d missing from ClustersOfKey", vi, ci)
			}
		}
	}
}

func TestAssignPartition(t *testing.T) {
	src := randomSource(500, 256, 0.2, 1)
	cfg := Config{Views: 3, MaxSize: 64, Seed: 42}
	a := Assign(src, cfg)
	checkPartition(t, a, 500, 3, 64)
}

func TestAssignDeterministicAcrossWorkers(t *testing.T) {
	src := randomSource(300, 128, 0.15, 2)
	cfg := Config{Views: 4, MaxSize: 32, Seed: 7}
	var ref *Assignment
	for _, workers := range []int{1, 2, 5} {
		cfg.Workers = workers
		a := Assign(src, cfg)
		if ref == nil {
			ref = a
			continue
		}
		if !reflect.DeepEqual(a.Views[0].Clusters, ref.Views[0].Clusters) {
			t.Fatalf("workers=%d changed view 0 clustering", workers)
		}
		for vi := range a.Views {
			if !reflect.DeepEqual(a.Views[vi].ClustersOfKey, ref.Views[vi].ClustersOfKey) {
				t.Fatalf("workers=%d changed view %d key index", workers, vi)
			}
		}
	}
}

func TestAssignSeedChangesClustering(t *testing.T) {
	src := randomSource(400, 256, 0.2, 3)
	a := Assign(src, Config{Views: 1, MaxSize: 64, Seed: 1})
	b := Assign(src, Config{Views: 1, MaxSize: 64, Seed: 2})
	if reflect.DeepEqual(a.Views[0].Clusters, b.Views[0].Clusters) {
		t.Fatal("different seeds produced identical clusterings")
	}
}

func TestAssignViewsAreIndependent(t *testing.T) {
	src := randomSource(400, 256, 0.2, 4)
	a := Assign(src, Config{Views: 2, MaxSize: 64, Seed: 5})
	if reflect.DeepEqual(a.Views[0].Clusters, a.Views[1].Clusters) {
		t.Fatal("two views produced identical clusterings")
	}
}

// TestAssignSplitsOversized is the recursive-split property test: a
// corpus whose rows collide heavily at the top level must still respect
// MaxSize, including groups of bit-identical rows that no hash can
// separate (chunk fallback) and fully empty rows (sentinel bucket).
func TestAssignSplitsOversized(t *testing.T) {
	const n, bits = 600, 192
	src := &testSource{bits: bits, rows: make([][]uint64, n)}
	words := (bits + 63) / 64
	shared := make([]uint64, words)
	shared[0] = 0xff // identical rows: chunk fallback path
	for i := 0; i < n/3; i++ {
		src.rows[i] = shared
	}
	for i := n / 3; i < 2*n/3; i++ {
		row := make([]uint64, words)
		row[0] = 0xff // same top-level min-hash candidates, plus one extra bit
		row[(i%words+words)%words] |= 1 << uint(i%64)
		src.rows[i] = row
	}
	for i := 2 * n / 3; i < n; i++ {
		src.rows[i] = make([]uint64, words) // empty: sentinel bucket
	}
	for _, maxSize := range []int{7, 16, 50} {
		a := Assign(src, Config{Views: 2, MaxSize: maxSize, Seed: 9, Buckets: 1})
		checkPartition(t, a, n, 2, maxSize)
	}
}

func TestAssignSingleBucketWhenTiny(t *testing.T) {
	// n far below MaxSize/4 × 1 bucket: everything must land in one
	// cluster per view, making downstream builds exact.
	src := randomSource(50, 256, 0.2, 6)
	a := Assign(src, Config{Views: 2, MaxSize: 512, Seed: 1})
	for vi, v := range a.Views {
		if len(v.Clusters) != 1 {
			t.Fatalf("view %d has %d clusters, want 1 for n=50", vi, len(v.Clusters))
		}
	}
}

func TestAssignCancellation(t *testing.T) {
	src := randomSource(200, 128, 0.2, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := Assign(src, Config{Views: 3, MaxSize: 64, Seed: 1, Ctx: ctx})
	if len(a.Views) != 0 {
		t.Fatalf("pre-canceled Assign returned %d views, want 0", len(a.Views))
	}
}

func TestSeedsComeFromMatchingBuckets(t *testing.T) {
	src := randomSource(500, 256, 0.2, 10)
	a := Assign(src, Config{Views: 3, MaxSize: 64, Seed: 11})
	for _, u := range []int{0, 123, 499} {
		seeds := a.Seeds(src.Row(u), 8)
		if len(seeds) == 0 {
			t.Fatalf("no seeds for user %d", u)
		}
		if len(seeds) > 8 {
			t.Fatalf("got %d seeds, max 8", len(seeds))
		}
		seen := map[int32]bool{}
		for _, s := range seeds {
			if seen[s] {
				t.Fatalf("duplicate seed %d", s)
			}
			seen[s] = true
		}
		// Every seed must share a top-level bucket with u in some view.
		for _, s := range seeds {
			ok := false
			for vi := range a.Views {
				if a.Views[vi].Key(src.Row(u)) == a.Views[vi].Key(src.Row(int(s))) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d shares no bucket with user %d", s, u)
			}
		}
	}
}

func TestKeyMatchesAssignment(t *testing.T) {
	src := randomSource(300, 256, 0.2, 12)
	a := Assign(src, Config{Views: 2, MaxSize: 64, Seed: 13})
	for vi := range a.Views {
		v := &a.Views[vi]
		for key, cis := range v.ClustersOfKey {
			for _, ci := range cis {
				for _, u := range v.Clusters[ci] {
					if got := v.Key(src.Row(int(u))); got != key {
						t.Fatalf("view %d user %d: Key=%d but assigned under %d", vi, u, got, key)
					}
				}
			}
		}
	}
}
