// Package gossip implements a decentralized KNN graph construction protocol
// in the style of Gossple (Bertier et al., Middleware 2010), the setting
// that motivates the paper's privacy story: every user keeps their profile
// on their own device, exchanges only fingerprints with peers, and
// converges to their k nearest neighbors by greedy gossiping — no central
// service ever holds the clear-text data.
//
// The simulation is synchronous: in every round, each node gossips with one
// peer from its clustering view and one from a random-peer-sampling (RPS)
// layer, merges the peer's view into its candidate set, and keeps the k
// most similar nodes. Similarities go through a knn.Provider, so the native
// and GoldFinger variants are the same protocol — the paper's drop-in claim
// in a decentralized deployment.
package gossip

import (
	"fmt"
	"math/rand"

	"goldfinger/internal/knn"
)

// Config parametrizes the protocol.
type Config struct {
	// K is the view (neighborhood) size. Must be positive.
	K int
	// Rounds is the number of synchronous gossip rounds. 0 means 15.
	Rounds int
	// RPSSize is how many uniform random peers the RPS layer serves each
	// round. 0 means 3.
	RPSSize int
	// Seed drives view initialization, peer selection and the RPS layer.
	Seed int64
}

func (c Config) rounds() int {
	if c.Rounds == 0 {
		return 15
	}
	return c.Rounds
}

func (c Config) rpsSize() int {
	if c.RPSSize == 0 {
		return 3
	}
	return c.RPSSize
}

// RoundStats reports the network state after one gossip round.
type RoundStats struct {
	Round int
	// AvgViewSimilarity is the mean similarity of all view edges — the
	// convergence signal a deployment can observe without ground truth.
	AvgViewSimilarity float64
	// Messages is the cumulative number of view exchanges so far.
	Messages int64
	// Comparisons is the cumulative number of similarity computations.
	Comparisons int64
}

// Simulate runs the protocol and returns the final KNN graph along with
// per-round convergence statistics.
func Simulate(p knn.Provider, cfg Config) (*knn.Graph, []RoundStats, error) {
	n := p.NumUsers()
	if cfg.K <= 0 {
		return nil, nil, fmt.Errorf("gossip: view size K must be positive, got %d", cfg.K)
	}
	if n == 0 {
		return &knn.Graph{K: cfg.K, Neighbors: nil}, nil, nil
	}

	cp := knn.NewCountingProvider(p)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// views[u] holds u's current neighbors, unordered, no duplicates.
	views := make([][]knn.Neighbor, n)
	for u := 0; u < n; u++ {
		views[u] = randomView(cp, rng, u, n, cfg.K)
	}

	var messages int64
	stats := make([]RoundStats, 0, cfg.rounds())
	for round := 1; round <= cfg.rounds(); round++ {
		// Synchronous round: every node gossips once, reading the views
		// of the previous round (copy-on-read keeps it well-defined).
		prev := make([][]knn.Neighbor, n)
		for u := range views {
			prev[u] = append([]knn.Neighbor(nil), views[u]...)
		}
		for u := 0; u < n; u++ {
			cands := map[int32]float64{}
			for _, nb := range prev[u] {
				cands[nb.ID] = nb.Sim
			}

			// Gossip with the most similar peer of the view (Gossple's
			// clustering heuristic) and merge its view.
			if len(prev[u]) > 0 {
				peer := bestPeer(prev[u])
				messages++
				for _, nb := range prev[peer] {
					if int(nb.ID) != u {
						if _, ok := cands[nb.ID]; !ok {
							cands[nb.ID] = cp.Similarity(u, int(nb.ID))
						}
					}
				}
			}

			// RPS layer: a few uniform random peers keep the network
			// connected and let isolated nodes escape local optima.
			for i := 0; i < cfg.rpsSize(); i++ {
				v := rng.Intn(n)
				if v == u {
					continue
				}
				messages++
				if _, ok := cands[int32(v)]; !ok {
					cands[int32(v)] = cp.Similarity(u, v)
				}
			}

			views[u] = topK(cands, cfg.K)
		}

		stats = append(stats, RoundStats{
			Round:             round,
			AvgViewSimilarity: avgSim(views),
			Messages:          messages,
			Comparisons:       cp.Comparisons(),
		})
	}

	g := &knn.Graph{K: cfg.K, Neighbors: make([][]knn.Neighbor, n)}
	for u := range views {
		g.Neighbors[u] = topK(toMap(views[u]), cfg.K)
	}
	return g, stats, nil
}

// randomView draws up to k distinct random peers with their similarities.
func randomView(cp *knn.CountingProvider, rng *rand.Rand, u, n, k int) []knn.Neighbor {
	if n < 2 {
		return nil
	}
	picked := map[int]bool{}
	view := make([]knn.Neighbor, 0, k)
	for len(view) < k && len(picked) < n-1 {
		v := rng.Intn(n)
		if v == u || picked[v] {
			continue
		}
		picked[v] = true
		view = append(view, knn.Neighbor{ID: int32(v), Sim: cp.Similarity(u, v)})
	}
	return view
}

// bestPeer returns the index (into the global user space) of the most
// similar node in the view.
func bestPeer(view []knn.Neighbor) int {
	best := 0
	for i := 1; i < len(view); i++ {
		if view[i].Sim > view[best].Sim {
			best = i
		}
	}
	return int(view[best].ID)
}

// topK selects the k best candidates, sorted by decreasing similarity with
// IDs as ties.
func topK(cands map[int32]float64, k int) []knn.Neighbor {
	out := make([]knn.Neighbor, 0, len(cands))
	for id, sim := range cands {
		out = append(out, knn.Neighbor{ID: id, Sim: sim})
	}
	// Insertion sort is fine at view sizes.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j-1], out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func less(a, b knn.Neighbor) bool {
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.ID > b.ID
}

func toMap(view []knn.Neighbor) map[int32]float64 {
	m := make(map[int32]float64, len(view))
	for _, nb := range view {
		m[nb.ID] = nb.Sim
	}
	return m
}

func avgSim(views [][]knn.Neighbor) float64 {
	var sum float64
	edges := 0
	for _, view := range views {
		for _, nb := range view {
			sum += nb.Sim
			edges++
		}
	}
	if edges == 0 {
		return 0
	}
	return sum / float64(edges)
}
