package gossip

import (
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
)

func TestSimulateValidation(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.01, 1)
	p := knn.NewExplicitProvider(d.Profiles)
	if _, _, err := Simulate(p, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestSimulateEmptyNetwork(t *testing.T) {
	g, stats, err := Simulate(knn.NewExplicitProvider(nil), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 0 || len(stats) != 0 {
		t.Errorf("empty network produced %d users, %d stats", g.NumUsers(), len(stats))
	}
}

func TestSimulateConvergesTowardExact(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 2)
	p := knn.NewExplicitProvider(d.Profiles)
	const k = 8
	exact, _ := knn.BruteForce(p, k, knn.Options{})

	g, stats, err := Simulate(p, Config{K: k, Rounds: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if q := knn.Quality(g, exact, p); q < 0.85 {
		t.Errorf("gossip quality after 20 rounds = %.3f, want ≥ 0.85", q)
	}
	// Convergence signal: late rounds beat early rounds.
	if stats[len(stats)-1].AvgViewSimilarity <= stats[0].AvgViewSimilarity {
		t.Errorf("no convergence: round 1 avg %.4f, final %.4f",
			stats[0].AvgViewSimilarity, stats[len(stats)-1].AvgViewSimilarity)
	}
}

func TestSimulateStatsMonotone(t *testing.T) {
	d := dataset.Generate(dataset.DBLP, 0.02, 3)
	p := knn.NewExplicitProvider(d.Profiles)
	_, stats, err := Simulate(p, Config{K: 5, Rounds: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 8 {
		t.Fatalf("got %d rounds of stats", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Messages < stats[i-1].Messages {
			t.Error("message counter decreased")
		}
		if stats[i].Comparisons < stats[i-1].Comparisons {
			t.Error("comparison counter decreased")
		}
		if stats[i].Round != i+1 {
			t.Errorf("round numbering off: %d at index %d", stats[i].Round, i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.015, 4)
	p := knn.NewExplicitProvider(d.Profiles)
	g1, _, err := Simulate(p, Config{K: 5, Rounds: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := Simulate(p, Config{K: 5, Rounds: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for u := range g1.Neighbors {
		if len(g1.Neighbors[u]) != len(g2.Neighbors[u]) {
			t.Fatal("same seed, different view sizes")
		}
		for i := range g1.Neighbors[u] {
			if g1.Neighbors[u][i] != g2.Neighbors[u][i] {
				t.Fatal("same seed, different views")
			}
		}
	}
}

// TestSimulateGoldFingerParity is the decentralized version of the paper's
// claim: gossiping fingerprints converges to nearly the same quality as
// gossiping explicit profiles — with the privacy benefits of never sending
// the profile.
func TestSimulateGoldFingerParity(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 5)
	exactP := knn.NewExplicitProvider(d.Profiles)
	const k = 8
	exact, _ := knn.BruteForce(exactP, k, knn.Options{})

	gNat, _, err := Simulate(exactP, Config{K: k, Rounds: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	shfP := knn.NewSHFProvider(core.MustScheme(1024, 5), d.Profiles)
	gGF, _, err := Simulate(shfP, Config{K: k, Rounds: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	qNat := knn.Quality(gNat, exact, exactP)
	qGF := knn.Quality(gGF, exact, exactP)
	if qGF < qNat-0.15 {
		t.Errorf("gossip GoldFinger quality %.3f fell more than 0.15 below native %.3f", qGF, qNat)
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	cands := map[int32]float64{1: 0.5, 2: 0.9, 3: 0.5, 4: 0.1}
	out := topK(cands, 3)
	if len(out) != 3 || out[0].ID != 2 {
		t.Fatalf("topK = %v", out)
	}
	// Ties broken by smaller ID first.
	if out[1].ID != 1 || out[2].ID != 3 {
		t.Errorf("tie order = %v, want 1 before 3", out)
	}
}

func TestSimulateTinyNetworks(t *testing.T) {
	for n := 1; n <= 3; n++ {
		profiles := dataset.Generate(dataset.ML1M, 0.01, 6).Profiles[:n]
		p := knn.NewExplicitProvider(profiles)
		g, _, err := Simulate(p, Config{K: 5, Rounds: 3, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}
