package gossip

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Membership generalizes the package's peer-sampling machinery from the
// KNN simulation to operational cluster membership: the shard router seeds
// it with its static peer list, feeds it liveness transitions from the
// health prober and breaker state, and reads versioned snapshots from it
// to decide when the placement ring must change. Every mutation bumps a
// monotonically increasing version, which the router uses as the source of
// ring epochs — two observers holding the same version hold the same
// member list.
//
// The layer is deliberately hub-and-spoke in this deployment (the router
// is the membership authority and shards learn the ring from it); the
// interface is what a future symmetric anti-entropy exchange would gossip.

// PeerState is a member's liveness as judged by the failure detector.
type PeerState int

const (
	// PeerAlive: the peer answers probes (or has not failed one yet).
	PeerAlive PeerState = iota
	// PeerSuspect: the peer failed recently and is being re-probed.
	PeerSuspect
	// PeerDead: the peer has been failing past the suspicion window.
	PeerDead
	// PeerLeft: the peer announced a clean departure.
	PeerLeft
)

func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	case PeerLeft:
		return "left"
	default:
		return fmt.Sprintf("PeerState(%d)", int(s))
	}
}

// Peer is one member of the shard cluster.
type Peer struct {
	Name        string    `json:"name"`
	URL         string    `json:"url"`
	State       PeerState `json:"-"`
	StateName   string    `json:"state"`
	Incarnation uint64    `json:"incarnation"` // bumped on every (re)join
	JoinedAt    time.Time `json:"joined_at"`
	LastSeen    time.Time `json:"last_seen"` // last successful probe or join
}

// Membership is a versioned, concurrency-safe member table.
type Membership struct {
	mu      sync.Mutex
	peers   map[string]*Peer
	version uint64
	now     func() time.Time
}

// NewMembership returns an empty table. now == nil uses time.Now.
func NewMembership(now func() time.Time) *Membership {
	if now == nil {
		now = time.Now
	}
	return &Membership{peers: make(map[string]*Peer), now: now}
}

// Join adds a member, or refreshes it on rejoin. A rejoin with a changed
// URL (a replacement process for the same shard name) bumps the
// incarnation. It reports whether the member set or a URL changed — the
// signal that the placement ring may need to move.
func (m *Membership) Join(name, url string) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	p, ok := m.peers[name]
	if !ok {
		m.peers[name] = &Peer{Name: name, URL: url, State: PeerAlive, Incarnation: 1, JoinedAt: now, LastSeen: now}
		m.version++
		return true
	}
	changed = p.URL != url || p.State == PeerLeft
	p.URL = url
	p.State = PeerAlive
	p.Incarnation++
	p.LastSeen = now
	if changed {
		m.version++
	}
	return changed
}

// Leave marks a clean departure. Reports whether the peer was a member.
func (m *Membership) Leave(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[name]
	if !ok || p.State == PeerLeft {
		return false
	}
	p.State = PeerLeft
	m.version++
	return true
}

// Remove forgets a member entirely.
func (m *Membership) Remove(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.peers[name]; !ok {
		return false
	}
	delete(m.peers, name)
	m.version++
	return true
}

// Observe records a failure-detector verdict for name. State transitions
// bump the version; refreshing an unchanged state only updates LastSeen
// (on success) so observers polling Version see real changes, not probes.
func (m *Membership) Observe(name string, state PeerState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[name]
	if !ok || p.State == PeerLeft {
		return
	}
	if state == PeerAlive {
		p.LastSeen = m.now()
	}
	if p.State != state {
		p.State = state
		m.version++
	}
}

// Version returns the current membership version. It increases on every
// member-set, URL, or liveness change.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Snapshot returns the members sorted by name, with StateName filled for
// JSON rendering, plus the version the snapshot corresponds to.
func (m *Membership) Snapshot() ([]Peer, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Peer, 0, len(m.peers))
	for _, p := range m.peers {
		cp := *p
		cp.StateName = cp.State.String()
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, m.version
}

// Members returns the names of the peers that are part of the ring:
// everything not departed. Dead peers stay on the ring — a crash-restart
// must not churn placement — until an explicit Leave/Remove.
func (m *Membership) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.peers))
	for _, p := range m.peers {
		if p.State != PeerLeft {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Get returns a copy of one member.
func (m *Membership) Get(name string) (Peer, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[name]
	if !ok {
		return Peer{}, false
	}
	cp := *p
	cp.StateName = cp.State.String()
	return cp, true
}
