package gossip

import (
	"testing"
	"time"
)

func TestMembershipJoinLeaveVersions(t *testing.T) {
	clock := time.Unix(1000, 0)
	m := NewMembership(func() time.Time { return clock })

	if !m.Join("shard-0", "http://a") {
		t.Fatal("first join reported no change")
	}
	v1 := m.Version()
	if m.Join("shard-0", "http://a") {
		t.Fatal("idempotent rejoin reported a change")
	}
	if m.Version() != v1 {
		t.Fatal("idempotent rejoin bumped version")
	}
	p, ok := m.Get("shard-0")
	if !ok || p.Incarnation != 2 {
		t.Fatalf("rejoin incarnation = %d, want 2", p.Incarnation)
	}

	// A replacement process for the same name (new URL) is a change.
	if !m.Join("shard-0", "http://b") {
		t.Fatal("URL change reported no change")
	}
	if m.Version() <= v1 {
		t.Fatal("URL change did not bump version")
	}

	m.Join("shard-1", "http://c")
	if got := m.Members(); len(got) != 2 || got[0] != "shard-0" || got[1] != "shard-1" {
		t.Fatalf("Members() = %v", got)
	}
	if !m.Leave("shard-1") {
		t.Fatal("leave of a member failed")
	}
	if got := m.Members(); len(got) != 1 || got[0] != "shard-0" {
		t.Fatalf("Members() after leave = %v", got)
	}
	if m.Leave("shard-1") {
		t.Fatal("double leave reported a change")
	}
}

func TestMembershipObserve(t *testing.T) {
	m := NewMembership(nil)
	m.Join("shard-0", "http://a")
	v := m.Version()

	m.Observe("shard-0", PeerDead)
	if m.Version() == v {
		t.Fatal("alive->dead did not bump version")
	}
	// Dead peers stay on the ring: crash-restarts must not churn placement.
	if got := m.Members(); len(got) != 1 {
		t.Fatalf("dead peer dropped from Members(): %v", got)
	}
	v = m.Version()
	m.Observe("shard-0", PeerDead)
	if m.Version() != v {
		t.Fatal("repeated dead observation bumped version")
	}
	m.Observe("shard-0", PeerAlive)
	if m.Version() == v {
		t.Fatal("dead->alive did not bump version")
	}
	// Observations of unknown peers are ignored.
	m.Observe("nope", PeerDead)

	snap, _ := m.Snapshot()
	if len(snap) != 1 || snap[0].StateName != "alive" {
		t.Fatalf("snapshot = %+v", snap)
	}
}
