// Package knn implements K-Nearest-Neighbor graph construction: the exact
// Brute Force baseline and the three approximate algorithms the paper
// evaluates (Hyrec, NNDescent, LSH), each over a pluggable similarity
// Provider so that the native (explicit profiles) and GoldFinger (SHF)
// versions are the same code — exactly the drop-in property the paper
// claims for fingerprints.
package knn

import (
	"sync/atomic"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// Provider computes the similarity between two users identified by dense
// indices in [0, NumUsers()). Implementations must be safe for concurrent
// use.
type Provider interface {
	NumUsers() int
	Similarity(u, v int) float64
}

// ExplicitProvider computes exact Jaccard similarities on explicit profiles
// (the paper's "native" mode).
type ExplicitProvider struct {
	Profiles []profile.Profile
}

// NewExplicitProvider wraps profiles in a Provider.
func NewExplicitProvider(profiles []profile.Profile) *ExplicitProvider {
	return &ExplicitProvider{Profiles: profiles}
}

// NumUsers returns the number of users.
func (p *ExplicitProvider) NumUsers() int { return len(p.Profiles) }

// Similarity returns the exact Jaccard index of the two profiles.
func (p *ExplicitProvider) Similarity(u, v int) float64 {
	return profile.Jaccard(p.Profiles[u], p.Profiles[v])
}

// SHFProvider estimates Jaccard similarities from Single Hash Fingerprints
// (the GoldFinger mode).
type SHFProvider struct {
	Fingerprints []core.Fingerprint
}

// NewSHFProvider fingerprints all profiles under the scheme and wraps the
// result in a Provider.
func NewSHFProvider(scheme *core.Scheme, profiles []profile.Profile) *SHFProvider {
	return &SHFProvider{Fingerprints: scheme.FingerprintAll(profiles)}
}

// NumUsers returns the number of users.
func (p *SHFProvider) NumUsers() int { return len(p.Fingerprints) }

// Similarity returns the SHF Jaccard estimate (paper Eq. 4).
func (p *SHFProvider) Similarity(u, v int) float64 {
	return core.Jaccard(p.Fingerprints[u], p.Fingerprints[v])
}

// FuncProvider computes similarities on explicit profiles with an
// arbitrary set-similarity function — the paper's fsim requirement covers
// any function positively correlated with common items (e.g. cosine,
// overlap), and the KNN algorithms are agnostic to the choice.
type FuncProvider struct {
	Profiles []profile.Profile
	Sim      func(p, q profile.Profile) float64
}

// NewCosineProvider wraps profiles with the exact binary cosine similarity.
func NewCosineProvider(profiles []profile.Profile) *FuncProvider {
	return &FuncProvider{Profiles: profiles, Sim: profile.Cosine}
}

// NumUsers returns the number of users.
func (p *FuncProvider) NumUsers() int { return len(p.Profiles) }

// Similarity applies the configured similarity function.
func (p *FuncProvider) Similarity(u, v int) float64 {
	return p.Sim(p.Profiles[u], p.Profiles[v])
}

// SHFCosineProvider estimates binary cosine similarities from fingerprints.
type SHFCosineProvider struct {
	Fingerprints []core.Fingerprint
}

// NewSHFCosineProvider fingerprints all profiles for cosine estimation.
func NewSHFCosineProvider(scheme *core.Scheme, profiles []profile.Profile) *SHFCosineProvider {
	return &SHFCosineProvider{Fingerprints: scheme.FingerprintAll(profiles)}
}

// NumUsers returns the number of users.
func (p *SHFCosineProvider) NumUsers() int { return len(p.Fingerprints) }

// Similarity returns the SHF cosine estimate.
func (p *SHFCosineProvider) Similarity(u, v int) float64 {
	return core.Cosine(p.Fingerprints[u], p.Fingerprints[v])
}

// CountingProvider wraps a Provider and counts similarity computations.
// The scanrate reported in Fig. 12 and the memory-traffic model of Table 5
// both derive from these counters.
type CountingProvider struct {
	Inner       Provider
	comparisons atomic.Int64
}

// NewCountingProvider wraps inner.
func NewCountingProvider(inner Provider) *CountingProvider {
	return &CountingProvider{Inner: inner}
}

// NumUsers returns the number of users of the wrapped provider.
func (p *CountingProvider) NumUsers() int { return p.Inner.NumUsers() }

// Similarity delegates to the wrapped provider, counting the call.
func (p *CountingProvider) Similarity(u, v int) float64 {
	p.comparisons.Add(1)
	return p.Inner.Similarity(u, v)
}

// Comparisons returns the number of similarity computations so far.
func (p *CountingProvider) Comparisons() int64 { return p.comparisons.Load() }

// Reset zeroes the counter.
func (p *CountingProvider) Reset() { p.comparisons.Store(0) }
