// Package knn implements K-Nearest-Neighbor graph construction: the exact
// Brute Force baseline and the three approximate algorithms the paper
// evaluates (Hyrec, NNDescent, LSH), each over a pluggable similarity
// Provider so that the native (explicit profiles) and GoldFinger (SHF)
// versions are the same code — exactly the drop-in property the paper
// claims for fingerprints.
package knn

import (
	"sync"
	"sync/atomic"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// Provider computes the similarity between two users identified by dense
// indices in [0, NumUsers()). Implementations must be safe for concurrent
// use.
type Provider interface {
	NumUsers() int
	Similarity(u, v int) float64
}

// BatchProvider is the blocked extension of Provider: one call computes a
// whole row range, so an implementation backed by a packed corpus
// (core.PackedCorpus) can stream contiguous rows through the AND+popcount
// kernel instead of dispatching an interface call per pair. Graph builders
// type-assert for it and fall back to per-pair Similarity when absent, so
// providers without a batched layout (explicit profiles, custom functions)
// keep working unchanged.
type BatchProvider interface {
	Provider
	// SimilarityRange computes Similarity(u, v) for every v in [lo, hi)
	// into out[0 : hi-lo]. The results must be bit-for-bit identical to
	// per-pair Similarity calls.
	SimilarityRange(u, lo, hi int, out []float64)
}

// GatherProvider is the scattered extension of Provider: one call scores a
// user against an arbitrary id list, so a packed-corpus implementation can
// keep the user's row in registers across the whole list (the gather
// kernel) instead of dispatching an interface call per candidate. The
// refinement sweep of the cluster builder — whose candidates are
// neighbors-of-neighbors, never a contiguous range — type-asserts for it
// and falls back to per-pair Similarity when absent.
type GatherProvider interface {
	Provider
	// SimilarityGather computes Similarity(u, ids[i]) into out[i]. The
	// results must be bit-for-bit identical to per-pair Similarity calls;
	// out must have at least len(ids) entries.
	SimilarityGather(u int, ids []int32, out []float64)
}

// SubsetProvider is the restriction extension of Provider: Subset returns a
// provider over only the given users, reindexed densely — Subset(ids)
// .Similarity(i, j) equals Similarity(ids[i], ids[j]) bit-for-bit. The
// cluster-and-conquer builder uses it to hand each cluster a dense
// mini-provider whose batched kernel streams contiguous gathered rows; ids
// must be valid indices and must not be mutated afterwards.
type SubsetProvider interface {
	Provider
	Subset(ids []int32) Provider
}

// subsetOf restricts p to ids, preferring the provider's own Subset (which
// can preserve batching) and falling back to a per-pair index remap.
func subsetOf(p Provider, ids []int32) Provider {
	if s, ok := p.(SubsetProvider); ok {
		return s.Subset(ids)
	}
	return &indexedSubset{inner: p, ids: ids}
}

// indexedSubset is the generic Subset fallback: a per-pair index remap over
// an arbitrary provider.
type indexedSubset struct {
	inner Provider
	ids   []int32
}

func (p *indexedSubset) NumUsers() int { return len(p.ids) }

func (p *indexedSubset) Similarity(u, v int) float64 {
	return p.inner.Similarity(int(p.ids[u]), int(p.ids[v]))
}

// ExplicitProvider computes exact Jaccard similarities on explicit profiles
// (the paper's "native" mode).
type ExplicitProvider struct {
	Profiles []profile.Profile
}

// NewExplicitProvider wraps profiles in a Provider.
func NewExplicitProvider(profiles []profile.Profile) *ExplicitProvider {
	return &ExplicitProvider{Profiles: profiles}
}

// NumUsers returns the number of users.
func (p *ExplicitProvider) NumUsers() int { return len(p.Profiles) }

// Similarity returns the exact Jaccard index of the two profiles.
func (p *ExplicitProvider) Similarity(u, v int) float64 {
	return profile.Jaccard(p.Profiles[u], p.Profiles[v])
}

// Subset implements SubsetProvider by gathering the profile slices.
func (p *ExplicitProvider) Subset(ids []int32) Provider {
	return &ExplicitProvider{Profiles: gatherProfiles(p.Profiles, ids)}
}

func gatherProfiles(profiles []profile.Profile, ids []int32) []profile.Profile {
	out := make([]profile.Profile, len(ids))
	for i, id := range ids {
		out[i] = profiles[id]
	}
	return out
}

// SHFProvider estimates Jaccard similarities from Single Hash Fingerprints
// (the GoldFinger mode). It implements BatchProvider: the first batched
// call packs the fingerprints into a contiguous corpus (once, concurrently
// safe), after which both the batched and the per-pair paths run on flat
// rows instead of pointer-chasing separately allocated bit arrays.
type SHFProvider struct {
	Fingerprints []core.Fingerprint

	packOnce sync.Once
	packed   atomic.Pointer[core.PackedCorpus]
}

// NewSHFProvider fingerprints all profiles under the scheme and wraps the
// result in a Provider. The fingerprints are packed eagerly — construction
// already walks every profile, so the corpus layout is free here.
func NewSHFProvider(scheme *core.Scheme, profiles []profile.Profile) *SHFProvider {
	p := &SHFProvider{Fingerprints: scheme.FingerprintAll(profiles)}
	if c, err := core.NewPackedCorpus(scheme.NumBits(), p.Fingerprints); err == nil {
		p.packOnce.Do(func() {}) // mark packed; corpus is published below
		p.packed.Store(c)
	}
	return p
}

// NewPackedSHFProvider wraps an already-packed corpus directly; per-pair
// and batched similarities both read the corpus, and no []Fingerprint
// copy is materialized.
func NewPackedSHFProvider(c *core.PackedCorpus) *SHFProvider {
	p := &SHFProvider{}
	p.packOnce.Do(func() {})
	p.packed.Store(c)
	return p
}

// corpus returns the packed corpus, packing the fingerprint slice on first
// use. It returns nil when packing is impossible (no fingerprints, or
// mixed lengths), in which case callers fall back to the per-pair path.
func (p *SHFProvider) corpus() *core.PackedCorpus {
	p.packOnce.Do(func() {
		if len(p.Fingerprints) == 0 {
			return
		}
		if c, err := core.NewPackedCorpus(p.Fingerprints[0].NumBits(), p.Fingerprints); err == nil {
			p.packed.Store(c)
		}
	})
	return p.packed.Load()
}

// NumUsers returns the number of users.
func (p *SHFProvider) NumUsers() int {
	if p.Fingerprints != nil {
		return len(p.Fingerprints)
	}
	if c := p.packed.Load(); c != nil {
		return c.NumUsers()
	}
	return 0
}

// Similarity returns the SHF Jaccard estimate (paper Eq. 4).
func (p *SHFProvider) Similarity(u, v int) float64 {
	if c := p.packed.Load(); c != nil {
		return c.Jaccard(u, v)
	}
	return core.Jaccard(p.Fingerprints[u], p.Fingerprints[v])
}

// SimilarityRange implements BatchProvider on the packed corpus.
func (p *SHFProvider) SimilarityRange(u, lo, hi int, out []float64) {
	if c := p.corpus(); c != nil {
		c.JaccardRangeInto(u, lo, hi, out)
		return
	}
	for v := lo; v < hi; v++ {
		out[v-lo] = p.Similarity(u, v)
	}
}

// SimilarityGather implements GatherProvider on the packed corpus.
func (p *SHFProvider) SimilarityGather(u int, ids []int32, out []float64) {
	if c := p.corpus(); c != nil {
		c.JaccardGatherInto(u, ids, out)
		return
	}
	for i, id := range ids {
		out[i] = p.Similarity(u, int(id))
	}
}

// Subset implements SubsetProvider: the selected rows are gathered into a
// dense mini-corpus, so the subset keeps the batched kernel path.
func (p *SHFProvider) Subset(ids []int32) Provider {
	if c := p.corpus(); c != nil {
		return NewPackedSHFProvider(c.Gather(ids))
	}
	return &indexedSubset{inner: p, ids: ids}
}

// FuncProvider computes similarities on explicit profiles with an
// arbitrary set-similarity function — the paper's fsim requirement covers
// any function positively correlated with common items (e.g. cosine,
// overlap), and the KNN algorithms are agnostic to the choice.
type FuncProvider struct {
	Profiles []profile.Profile
	Sim      func(p, q profile.Profile) float64
}

// NewCosineProvider wraps profiles with the exact binary cosine similarity.
func NewCosineProvider(profiles []profile.Profile) *FuncProvider {
	return &FuncProvider{Profiles: profiles, Sim: profile.Cosine}
}

// NumUsers returns the number of users.
func (p *FuncProvider) NumUsers() int { return len(p.Profiles) }

// Similarity applies the configured similarity function.
func (p *FuncProvider) Similarity(u, v int) float64 {
	return p.Sim(p.Profiles[u], p.Profiles[v])
}

// Subset implements SubsetProvider by gathering the profile slices.
func (p *FuncProvider) Subset(ids []int32) Provider {
	return &FuncProvider{Profiles: gatherProfiles(p.Profiles, ids), Sim: p.Sim}
}

// SHFCosineProvider estimates binary cosine similarities from fingerprints.
// Like SHFProvider it implements BatchProvider over a lazily packed corpus.
type SHFCosineProvider struct {
	Fingerprints []core.Fingerprint

	packOnce sync.Once
	packed   atomic.Pointer[core.PackedCorpus]
}

// NewSHFCosineProvider fingerprints all profiles for cosine estimation.
func NewSHFCosineProvider(scheme *core.Scheme, profiles []profile.Profile) *SHFCosineProvider {
	return &SHFCosineProvider{Fingerprints: scheme.FingerprintAll(profiles)}
}

// NewPackedSHFCosineProvider wraps an already-packed corpus directly,
// mirroring NewPackedSHFProvider for the cosine estimator.
func NewPackedSHFCosineProvider(c *core.PackedCorpus) *SHFCosineProvider {
	p := &SHFCosineProvider{}
	p.packOnce.Do(func() {})
	p.packed.Store(c)
	return p
}

// NumUsers returns the number of users.
func (p *SHFCosineProvider) NumUsers() int {
	if p.Fingerprints != nil {
		return len(p.Fingerprints)
	}
	if c := p.packed.Load(); c != nil {
		return c.NumUsers()
	}
	return 0
}

// corpus returns the packed corpus, packing the fingerprint slice on first
// use, exactly like (*SHFProvider).corpus.
func (p *SHFCosineProvider) corpus() *core.PackedCorpus {
	p.packOnce.Do(func() {
		if len(p.Fingerprints) == 0 {
			return
		}
		if c, err := core.NewPackedCorpus(p.Fingerprints[0].NumBits(), p.Fingerprints); err == nil {
			p.packed.Store(c)
		}
	})
	return p.packed.Load()
}

// Similarity returns the SHF cosine estimate.
func (p *SHFCosineProvider) Similarity(u, v int) float64 {
	if c := p.packed.Load(); c != nil {
		return c.Cosine(u, v)
	}
	return core.Cosine(p.Fingerprints[u], p.Fingerprints[v])
}

// SimilarityRange implements BatchProvider on the packed corpus.
func (p *SHFCosineProvider) SimilarityRange(u, lo, hi int, out []float64) {
	if c := p.corpus(); c != nil {
		c.CosineRangeInto(u, lo, hi, out)
		return
	}
	for v := lo; v < hi; v++ {
		out[v-lo] = p.Similarity(u, v)
	}
}

// Subset implements SubsetProvider via a gathered mini-corpus, keeping the
// batched kernel path like (*SHFProvider).Subset.
func (p *SHFCosineProvider) Subset(ids []int32) Provider {
	if c := p.corpus(); c != nil {
		return NewPackedSHFCosineProvider(c.Gather(ids))
	}
	return &indexedSubset{inner: p, ids: ids}
}

// CountingProvider wraps a Provider and counts similarity computations.
// The scanrate reported in Fig. 12 and the memory-traffic model of Table 5
// both derive from these counters.
type CountingProvider struct {
	Inner       Provider
	comparisons atomic.Int64
}

// NewCountingProvider wraps inner.
func NewCountingProvider(inner Provider) *CountingProvider {
	return &CountingProvider{Inner: inner}
}

// NumUsers returns the number of users of the wrapped provider.
func (p *CountingProvider) NumUsers() int { return p.Inner.NumUsers() }

// Similarity delegates to the wrapped provider, counting the call.
func (p *CountingProvider) Similarity(u, v int) float64 {
	p.comparisons.Add(1)
	return p.Inner.Similarity(u, v)
}

// AddComparisons folds a batch of n comparisons into the counter at once.
// Hot loops that process whole row blocks accumulate a worker-local count
// and fold it here once per block, avoiding one contended atomic.Add per
// pair.
func (p *CountingProvider) AddComparisons(n int64) { p.comparisons.Add(n) }

// SimilarityRange implements BatchProvider: the wrapped provider's batched
// kernel is used when it has one, and either way the whole range counts as
// one AddComparisons fold instead of hi-lo contended per-pair increments —
// wrapping a provider in a counter no longer destroys its batching.
func (p *CountingProvider) SimilarityRange(u, lo, hi int, out []float64) {
	if b, ok := p.Inner.(BatchProvider); ok {
		b.SimilarityRange(u, lo, hi, out)
	} else {
		for v := lo; v < hi; v++ {
			out[v-lo] = p.Inner.Similarity(u, v)
		}
	}
	p.AddComparisons(int64(hi - lo))
}

// SimilarityGather implements GatherProvider, delegating to the wrapped
// provider's gather kernel when it has one and folding the whole list into
// the counter at once, mirroring SimilarityRange.
func (p *CountingProvider) SimilarityGather(u int, ids []int32, out []float64) {
	if g, ok := p.Inner.(GatherProvider); ok {
		g.SimilarityGather(u, ids, out)
	} else {
		for i, id := range ids {
			out[i] = p.Inner.Similarity(u, int(id))
		}
	}
	p.AddComparisons(int64(len(ids)))
}

// Subset implements SubsetProvider: the subset delegates to the wrapped
// provider's subset while folding its comparisons into this counter, so
// per-cluster scans stay visible in the totals.
func (p *CountingProvider) Subset(ids []int32) Provider {
	return &countingSubset{parent: p, inner: subsetOf(p.Inner, ids)}
}

// countingSubset is a restricted view whose comparisons count toward the
// parent CountingProvider.
type countingSubset struct {
	parent *CountingProvider
	inner  Provider
}

func (p *countingSubset) NumUsers() int { return p.inner.NumUsers() }

func (p *countingSubset) Similarity(u, v int) float64 {
	p.parent.comparisons.Add(1)
	return p.inner.Similarity(u, v)
}

func (p *countingSubset) SimilarityRange(u, lo, hi int, out []float64) {
	if b, ok := p.inner.(BatchProvider); ok {
		b.SimilarityRange(u, lo, hi, out)
	} else {
		for v := lo; v < hi; v++ {
			out[v-lo] = p.inner.Similarity(u, v)
		}
	}
	p.parent.AddComparisons(int64(hi - lo))
}

// Comparisons returns the number of similarity computations so far.
func (p *CountingProvider) Comparisons() int64 { return p.comparisons.Load() }

// Reset zeroes the counter.
func (p *CountingProvider) Reset() { p.comparisons.Store(0) }
