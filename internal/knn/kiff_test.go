package knn

import (
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func TestKIFFQuality(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, stats := KIFF(d.Profiles, p, k, KIFFOptions{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Comparisons == 0 || stats.Updates == 0 {
		t.Errorf("KIFF stats look dead: %+v", stats)
	}
	if q := Quality(g, exact, p); q < 0.85 {
		t.Errorf("KIFF quality = %.3f, want ≥ 0.85", q)
	}
}

func TestKIFFSparseAdvantage(t *testing.T) {
	// On a sparse DBLP-shaped dataset, KIFF's candidate filter must
	// examine far fewer pairs than brute force.
	d := dataset.Generate(dataset.DBLP, 0.03, 19)
	p := NewExplicitProvider(d.Profiles)
	_, stats := KIFF(d.Profiles, p, 10, KIFFOptions{})
	if sr := stats.ScanRate(d.NumUsers()); sr >= 0.6 {
		t.Errorf("KIFF scanrate = %.2f on sparse data, want well below brute force", sr)
	}
}

func TestKIFFOnlyComparesCoRatedUsers(t *testing.T) {
	// Two disconnected components: KIFF must never link across them.
	ps := []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(2, 3, 4),
		profile.New(100, 101),
		profile.New(101, 102),
	}
	p := NewExplicitProvider(ps)
	g, _ := KIFF(ps, p, 3, KIFFOptions{})
	for u, nbrs := range g.Neighbors {
		for _, nb := range nbrs {
			if profile.IntersectionSize(ps[u], ps[nb.ID]) == 0 {
				t.Errorf("user %d linked to non-co-rating user %d", u, nb.ID)
			}
		}
	}
	if len(g.Neighbors[0]) != 1 || g.Neighbors[0][0].ID != 1 {
		t.Errorf("user 0 neighbors = %v, want just user 1", g.Neighbors[0])
	}
}

func TestKIFFMaxItemDegree(t *testing.T) {
	// A hub item shared by everyone; capping its degree must remove it
	// from candidate generation, disconnecting users who share only it.
	ps := []profile.Profile{
		profile.New(1, 10),
		profile.New(1, 20),
		profile.New(1, 10, 30),
	}
	p := NewExplicitProvider(ps)
	g, _ := KIFF(ps, p, 2, KIFFOptions{MaxItemDegree: 2})
	// Item 1 (degree 3) is skipped; only item 10 links users 0 and 2.
	if len(g.Neighbors[1]) != 0 {
		t.Errorf("user 1 should be isolated with the hub capped, got %v", g.Neighbors[1])
	}
	if len(g.Neighbors[0]) != 1 || g.Neighbors[0][0].ID != 2 {
		t.Errorf("user 0 neighbors = %v, want just user 2", g.Neighbors[0])
	}
}

func TestKIFFCandidateFactorCapsWork(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	_, tight := KIFF(d.Profiles, p, 5, KIFFOptions{CandidateFactor: 1})
	_, loose := KIFF(d.Profiles, p, 5, KIFFOptions{CandidateFactor: 10})
	if tight.Comparisons >= loose.Comparisons {
		t.Errorf("factor 1 compared %d, factor 10 compared %d; cap has no effect",
			tight.Comparisons, loose.Comparisons)
	}
}

func TestKIFFWithGoldFinger(t *testing.T) {
	d := smallDataset(t)
	exactP := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(exactP, k, Options{})
	shfP := NewSHFProvider(core.MustScheme(1024, 20), d.Profiles)
	g, _ := KIFF(d.Profiles, shfP, k, KIFFOptions{})
	if q := Quality(g, exact, exactP); q < 0.75 {
		t.Errorf("KIFF+GoldFinger quality = %.3f, want ≥ 0.75", q)
	}
}

func TestKIFFProviderMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched provider accepted")
		}
	}()
	KIFF(fourUsers(), NewExplicitProvider(fourUsers()[:2]), 2, KIFFOptions{})
}
