package knn

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// NNDescent constructs an approximate KNN graph with the local search of
// Dong, Moses and Li (WWW 2011). Each iteration compares, for every user u,
// the pairs among u's neighbors and reverse neighbors, updating both sides
// of each pair. The implementation keeps the paper's optimizations: "new"
// flags so a pair is only examined when at least one side changed since the
// last iteration, the user-ID order to avoid examining a new-new pair
// twice, and the reversed graph to widen the search. Termination follows
// the δ·k·n rule or MaxIterations.
//
// Cancellation (Options.Ctx) is checked before every iteration and once
// per user inside the comparison phase; a canceled build returns the
// partial graph promptly (callers inspect Options.Ctx.Err() to tell).
func NNDescent(p Provider, k int, opts Options) (*Graph, Stats) {
	n := p.NumUsers()
	cp := NewCountingProvider(p)
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}
	ctx := opts.ctx()
	m := opts.metrics()
	m.startProgress(int64(opts.maxIterations()))
	rng := rand.New(rand.NewSource(opts.Seed))
	initHist := m.phase("init")
	initStart := time.Now()
	randomInit(ctx, cp, nhs, k, rng)
	initHist.ObserveSince(initStart)

	stats := Stats{}
	threshold := int64(opts.delta() * float64(k) * float64(n))
	workers := opts.workers()
	iterHist := m.phase("iterate")

	for iter := 0; iter < opts.maxIterations() && ctx.Err() == nil; iter++ {
		stats.Iterations++
		iterStart := time.Now()

		// Phase 1: split every neighborhood into new/old and build the
		// reverse lists.
		fresh := make([][]int32, n)
		old := make([][]int32, n)
		rFresh := make([][]int32, n)
		rOld := make([][]int32, n)
		for u := 0; u < n; u++ {
			f, o := nhs[u].snapshotFlags()
			for _, nb := range f {
				fresh[u] = append(fresh[u], nb.ID)
				rFresh[nb.ID] = append(rFresh[nb.ID], int32(u))
			}
			for _, nb := range o {
				old[u] = append(old[u], nb.ID)
				rOld[nb.ID] = append(rOld[nb.ID], int32(u))
			}
		}

		// Phase 2: reverse lists can be long for popular users; sample
		// them down to k as in the original algorithm (ρ = 1).
		for u := 0; u < n; u++ {
			fresh[u] = append(fresh[u], sampleIDs(rFresh[u], k, rng)...)
			old[u] = append(old[u], sampleIDs(rOld[u], k, rng)...)
			fresh[u] = dedupIDs(fresh[u])
			old[u] = dedupIDs(old[u])
		}

		// Phase 3: compare new×new (ordered pairs once, by ID) and
		// new×old for every user, updating both endpoints.
		var updates atomic.Int64
		var wg sync.WaitGroup
		next := make(chan int, workers)
		go feedUsers(ctx, next, n)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range next {
					if ctx.Err() != nil {
						continue // drain without working once canceled
					}
					f, o := fresh[u], old[u]
					for i, a := range f {
						for _, b := range f[i+1:] {
							if a == b {
								continue
							}
							comparePair(cp, nhs, a, b, &updates)
						}
						for _, b := range o {
							if a == b {
								continue
							}
							comparePair(cp, nhs, a, b, &updates)
						}
					}
				}
			}()
		}
		wg.Wait()

		iterHist.ObserveSince(iterStart)
		m.progressDone.Set(int64(iter + 1))
		stats.Updates += updates.Load()
		if updates.Load() <= threshold {
			break
		}
	}

	stats.Comparisons = cp.Comparisons()
	m.comparisons.Add(stats.Comparisons)
	return finalize(k, nhs), stats
}

func comparePair(cp *CountingProvider, nhs []*neighborhood, a, b int32, updates *atomic.Int64) {
	s := cp.Similarity(int(a), int(b))
	if nhs[a].insert(b, s) {
		updates.Add(1)
	}
	if nhs[b].insert(a, s) {
		updates.Add(1)
	}
}

// sampleIDs returns up to k elements of ids (without replacement); when
// len(ids) ≤ k it returns ids unchanged.
func sampleIDs(ids []int32, k int, rng *rand.Rand) []int32 {
	if len(ids) <= k {
		return ids
	}
	out := make([]int32, k)
	perm := rng.Perm(len(ids))
	for i := 0; i < k; i++ {
		out[i] = ids[perm[i]]
	}
	return out
}

// dedupIDs removes duplicates in place, preserving first occurrences.
func dedupIDs(ids []int32) []int32 {
	seen := make(map[int32]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
