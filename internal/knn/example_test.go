package knn_test

import (
	"fmt"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

// ExampleBruteForce builds the exact KNN graph of four users.
func ExampleBruteForce() {
	profiles := []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(2, 3, 4),
		profile.New(1, 2, 3, 4),
		profile.New(100, 200),
	}
	g, stats := knn.BruteForce(knn.NewExplicitProvider(profiles), 1, knn.Options{})
	fmt.Printf("user 0's nearest neighbor: u%d (J=%.2f)\n", g.Neighbors[0][0].ID, g.Neighbors[0][0].Sim)
	fmt.Printf("comparisons: %d\n", stats.Comparisons)
	// Output:
	// user 0's nearest neighbor: u2 (J=0.75)
	// comparisons: 6
}

// ExampleHyrec shows the GoldFinger drop-in: the same algorithm runs on
// fingerprints by swapping the provider.
func ExampleHyrec() {
	profiles := []profile.Profile{
		profile.New(1, 2, 3, 4, 5),
		profile.New(1, 2, 3, 4, 6),
		profile.New(50, 60, 70, 80, 90),
		profile.New(50, 60, 70, 80, 91),
	}
	scheme := core.MustScheme(1024, 1)
	g, _ := knn.Hyrec(knn.NewSHFProvider(scheme, profiles), 1, knn.Options{Seed: 1})
	fmt.Printf("u0 ↔ u%d, u2 ↔ u%d\n", g.Neighbors[0][0].ID, g.Neighbors[2][0].ID)
	// Output: u0 ↔ u1, u2 ↔ u3
}

// ExampleQuality scores an approximation against the exact graph.
func ExampleQuality() {
	profiles := []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(1, 2, 4),
		profile.New(1, 5, 6),
	}
	p := knn.NewExplicitProvider(profiles)
	exact, _ := knn.BruteForce(p, 1, knn.Options{})
	fmt.Printf("exact vs itself: %.2f\n", knn.Quality(exact, exact, p))
	// Output: exact vs itself: 1.00
}
