package knn

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/hashing"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
)

// DefaultLSHHashes is the number of min-wise hash functions the paper uses
// for LSH (§3.3).
const DefaultLSHHashes = 10

// LSHOptions configures the LSH construction.
type LSHOptions struct {
	// Hashes is the number of min-wise hash functions (buckets per user);
	// 0 means the paper's 10.
	Hashes int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Seed derives the hash functions.
	Seed int64
	// NumItems is the size of the item universe. When positive, bucketing
	// uses explicit min-wise permutations of the universe, as the paper's
	// LSH does — an O(Hashes·NumItems) setup cost that dominates on
	// sparse datasets and explains why GoldFinger speeds LSH up less
	// there (§4.1). When 0, permutations are simulated by hashing and
	// the setup cost disappears.
	NumItems int
	// Ctx cancels a running build; checked once per user in both the
	// bucketing and the scan phase. Nil means never cancel.
	Ctx context.Context
	// Obs, when non-nil, receives build instrumentation (see
	// Options.Obs).
	Obs *obs.Registry
}

func (o LSHOptions) hashes() int {
	if o.Hashes <= 0 {
		return DefaultLSHHashes
	}
	return o.Hashes
}

// LSH constructs an approximate KNN graph with Locality-Sensitive Hashing
// (Indyk–Motwani): every user is hashed into one bucket per min-wise
// permutation of the item universe, and neighbors are selected among users
// sharing a bucket. Bucketing always runs on the explicit profiles — that
// preparation is proportional to the item universe, which is why GoldFinger
// speeds LSH up less on sparse datasets (paper §4.1) — while candidate
// similarities go through the provider (native or SHF).
func LSH(profiles []profile.Profile, p Provider, k int, opts LSHOptions) (*Graph, Stats) {
	n := len(profiles)
	if p.NumUsers() != n {
		panic("knn: LSH provider and profiles disagree on user count")
	}
	numHashes := opts.hashes()
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	m := Options{Obs: opts.Obs}.metrics()
	m.startProgress(int64(2 * n)) // bucketing pass + scan pass, one unit per user each
	bucketHist := m.phase("bucket")
	bucketStart := time.Now()

	// Min-wise bucketing: bucket key = the minimum rank of the profile's
	// items under each permutation. With NumItems set, the permutations
	// are materialized over the whole item universe (the paper's
	// implementation); otherwise they are simulated with universal
	// hashing.
	var perms [][]uint32
	var funcs []hashing.Universal
	if opts.NumItems > 0 {
		rng := rand.New(rand.NewSource(opts.Seed))
		perms = make([][]uint32, numHashes)
		for i := range perms {
			perm := make([]uint32, opts.NumItems)
			for j := range perm {
				perm[j] = uint32(j)
			}
			rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			perms[i] = perm
		}
	} else {
		funcs = make([]hashing.Universal, numHashes)
		for i := range funcs {
			funcs[i] = hashing.NewUniversal(uint64(opts.Seed) + uint64(i)*0x51_7c_c1_b7)
		}
	}
	rank := func(i int, it profile.ItemID) uint64 {
		if perms != nil {
			return uint64(perms[i][int(it)%opts.NumItems])
		}
		return funcs[i].Hash(uint64(uint32(it)))
	}

	type bucketKey struct {
		fn  int8
		min uint64
	}
	buckets := map[bucketKey][]int32{}
	keysOf := make([][]bucketKey, n)
	for u, prof := range profiles {
		if ctx.Err() != nil {
			break
		}
		m.progressDone.Add(1)
		if prof.Len() == 0 {
			continue
		}
		for i := 0; i < numHashes; i++ {
			minV := ^uint64(0)
			for _, it := range prof {
				if v := rank(i, it); v < minV {
					minV = v
				}
			}
			key := bucketKey{fn: int8(i), min: minV}
			buckets[key] = append(buckets[key], int32(u))
			keysOf[u] = append(keysOf[u], key)
		}
	}

	bucketHist.ObserveSince(bucketStart)

	cp := NewCountingProvider(p)
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	scanHist := m.phase("scan")
	scanStart := time.Now()
	var updates atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go feedUsers(ctx, next, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cand := map[int32]bool{}
			for u := range next {
				if ctx.Err() != nil {
					continue // drain without working once canceled
				}
				m.progressDone.Add(1)
				clear(cand)
				cand[int32(u)] = true
				for _, key := range keysOf[u] {
					for _, v := range buckets[key] {
						if cand[v] {
							continue
						}
						cand[v] = true
						if nhs[u].insert(v, cp.Similarity(u, int(v))) {
							updates.Add(1)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	scanHist.ObserveSince(scanStart)

	m.comparisons.Add(cp.Comparisons())
	return finalize(k, nhs), Stats{Comparisons: cp.Comparisons(), Updates: updates.Load()}
}
