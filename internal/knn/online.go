package knn

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"goldfinger/internal/core"
)

// This file implements online KNN graph maintenance: mutations (insert,
// overwrite, delete) become visible in the served graph immediately, with
// cost proportional to the touched neighborhood instead of a rebuild —
// the approach of Debatty et al., "Fast Online k-nn Graph Building"
// (arXiv:1602.06819), adapted to the SHF setting where a profile event
// changes one fingerprint bit and similarity is a cheap popcount.
//
// An insert runs GraphSearch over the current navigable adjacency to find
// the new user's neighbors, then propagates reverse edges through the
// discovered neighborhood (the neighbors-of-neighbors locality the batch
// builders already exploit). A delete tombstones the node and lazily
// repairs only the neighborhoods that pointed at it; an overwrite is a
// detach + reconnect at the same index. Readers see immutable snapshots,
// materialized lazily: a mutation only bumps a generation counter, and the
// first Snapshot call after a mutation batch pays the one O(n) top-level
// copy that every subsequent reader then shares — so mutation cost stays
// proportional to the touched neighborhood, and back-to-back mutations
// coalesce into a single copy instead of one each.

// OnlineSnapshot is one immutable published state of an Online maintainer.
// All fields are safe for concurrent use and never mutated after publish.
type OnlineSnapshot struct {
	// Graph is the current directed KNN graph over all nodes ever
	// inserted; tombstoned nodes have empty neighbor lists, and live lists
	// may still carry edges to tombstoned nodes (stale in-edges are purged
	// lazily) — readers filter with Dead.
	Graph *Graph
	// Nav is the incrementally-maintained navigable adjacency (mirrored,
	// diversity-pruned, degree-capped) GraphSearch descends.
	Nav *Graph
	// Dead marks tombstoned node indices.
	Dead []bool
	// Seq is the mutation sequence number this snapshot reflects.
	Seq uint64
	// Live is the number of non-tombstoned nodes.
	Live int
}

// NumNodes returns the total node count, tombstones included.
func (s *OnlineSnapshot) NumNodes() int { return len(s.Graph.Neighbors) }

// TouchedNode reports the full post-mutation KNN adjacency of one node a
// mutation modified — the unit the durable graph-delta WAL records
// persist, chosen so replay is verbatim assignment (no re-scoring, no
// divergence between a warm recovery and a cold replay).
type TouchedNode struct {
	ID        int32
	Neighbors []Neighbor
}

// MutationResult describes one applied mutation.
type MutationResult struct {
	// Seq is the maintainer's sequence number after the mutation.
	Seq uint64
	// Comparisons is the number of similarity computations spent.
	Comparisons int
	// Touched holds the new KNN adjacency of every modified node, the
	// mutated node first. Slices are shared with the maintainer's
	// immutable state: read-only.
	Touched []TouchedNode
}

// Online maintains a KNN graph under live mutations. All mutations
// serialize on an internal lock; Snapshot is one atomic load when no
// mutation intervened since the last call, and otherwise materializes a
// fresh snapshot under the mutation lock. The maintainer is fully
// deterministic: the same initial state and mutation sequence always
// produce the same graph.
type Online struct {
	k      int
	maxDeg int

	mu   sync.Mutex
	fps  []core.Fingerprint
	adj  [][]Neighbor // KNN lists, sorted by (sim desc, id asc), len ≤ k
	nav  [][]Neighbor // navigable lists, sorted best-first, len ≤ maxDeg(+slack)
	dead []bool
	live int

	// seq is the mutation generation. Mutations bump it (under mu, after
	// all state writes); Snapshot compares it against the cached
	// snapshot's Seq to decide whether a rematerialization is due.
	seq atomic.Uint64

	snap atomic.Pointer[OnlineSnapshot]
}

// navSlack is how far a navigable list may overshoot maxDeg before the
// diversity prune re-runs: pruning on every reverse append would make hub
// updates quadratic, pruning with slack amortizes it.
const navSlack = 16

// onlineMaxDegree mirrors Navigable's degree cap.
func onlineMaxDegree(k int) int { return max(64, 4*k) }

// NewOnline wraps an existing graph (typically a fresh batch build or a
// recovered epoch) in an online maintainer. nav must be g.Navigable(...)
// (or nil to compute it here from the fingerprints); dead marks already-
// tombstoned nodes (nil means none); fps must hold one fingerprint per
// node; seq seeds the mutation sequence. The maintainer takes ownership of
// the fps and dead slices and of the graphs' top-level arrays; the
// per-node neighbor slices are shared and never mutated in place.
func NewOnline(g, nav *Graph, fps []core.Fingerprint, dead []bool, k int, seq uint64) (*Online, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: online k must be positive, got %d", k)
	}
	if g == nil {
		return nil, fmt.Errorf("knn: online needs an initial graph")
	}
	n := len(g.Neighbors)
	if len(fps) != n {
		return nil, fmt.Errorf("knn: online has %d nodes but %d fingerprints", n, len(fps))
	}
	if dead == nil {
		dead = make([]bool, n)
	}
	if len(dead) != n {
		return nil, fmt.Errorf("knn: online has %d nodes but %d tombstone flags", n, len(dead))
	}
	if nav == nil {
		nav = g.Navigable(&SHFProvider{Fingerprints: fps})
	}
	if len(nav.Neighbors) != n {
		return nil, fmt.Errorf("knn: navigable graph has %d nodes, base graph %d", len(nav.Neighbors), n)
	}
	o := &Online{
		k:      k,
		maxDeg: onlineMaxDegree(k),
		fps:    fps,
		adj:    append([][]Neighbor(nil), g.Neighbors...),
		nav:    append([][]Neighbor(nil), nav.Neighbors...),
		dead:   dead,
	}
	o.seq.Store(seq)
	for _, d := range dead {
		if !d {
			o.live++
		}
	}
	o.Snapshot() // materialize eagerly so Snapshot never returns nil
	return o, nil
}

// Snapshot returns the current state as an immutable snapshot. The fast
// path — no mutation since the last call — is one atomic load. Otherwise
// the snapshot is materialized under the mutation lock: one O(n) copy of
// the top-level arrays, shared by every reader until the next mutation.
// The per-node slices are immutable by discipline (every mutation
// allocates fresh lists for the nodes it changes), so sharing them with
// the maintainer is safe.
func (o *Online) Snapshot() *OnlineSnapshot {
	if s := o.snap.Load(); s != nil && s.Seq == o.seq.Load() {
		return s
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if s := o.snap.Load(); s != nil && s.Seq == o.seq.Load() {
		return s // someone else materialized while we waited
	}
	s := &OnlineSnapshot{
		Graph: &Graph{K: o.k, Neighbors: append([][]Neighbor(nil), o.adj...)},
		Nav:   &Graph{K: o.k, Neighbors: append([][]Neighbor(nil), o.nav...)},
		Dead:  append([]bool(nil), o.dead...),
		Seq:   o.seq.Load(),
		Live:  o.live,
	}
	o.snap.Store(s)
	return s
}

// sim estimates the similarity of two current nodes.
func (o *Online) sim(u, v int32) float64 {
	return core.Jaccard(o.fps[u], o.fps[v])
}

// Insert adds a new node with the given fingerprint and connects it: a
// graph search over the navigable adjacency finds its neighbors, then
// reverse edges propagate through the discovered neighborhood. Returns the
// new node's index (always the current node count — indices are
// append-only and align with the caller's user table).
func (o *Online) Insert(fp core.Fingerprint) (int32, MutationResult) {
	o.mu.Lock()
	defer o.mu.Unlock()
	u := int32(len(o.fps))
	o.fps = append(o.fps, fp)
	o.adj = append(o.adj, nil)
	o.nav = append(o.nav, nil)
	o.dead = append(o.dead, false)
	o.live++
	res := o.connect(u)
	res.Seq = o.seq.Add(1) // after all state writes: readers at the old seq see the old snapshot
	return u, res
}

// Overwrite replaces node id's fingerprint and rewires its neighborhood:
// the node is detached from the graph (its out-edges dropped, holders of
// the edges repaired) and reconnected from a fresh search, exactly as an
// insert at its existing index. Overwriting a tombstoned node revives it.
func (o *Online) Overwrite(id int32, fp core.Fingerprint) (MutationResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) < 0 || int(id) >= len(o.fps) {
		return MutationResult{}, fmt.Errorf("knn: overwrite of node %d out of range [0,%d)", id, len(o.fps))
	}
	touched := newTouchSet()
	var comparisons int
	if o.dead[id] {
		o.dead[id] = false
		o.live++
	} else {
		// Tombstone for the duration of the detach so the repairs it
		// triggers cannot re-adopt the node at its stale position.
		o.dead[id] = true
		comparisons += o.detach(id, touched)
		o.dead[id] = false
	}
	o.fps[id] = fp
	res := o.connect(id)
	res.Comparisons += comparisons
	// connect's touched set already leads with id; fold in the detach
	// repairs it did not re-touch.
	res.Touched = mergeTouched(res.Touched, touched.emit(o, -1))
	res.Seq = o.seq.Add(1)
	return res, nil
}

// Delete tombstones node id: its out-edges are dropped, every neighborhood
// that pointed at it through them is repaired, and searches stop returning
// it immediately (stale in-edges from nodes outside its adjacency are
// purged lazily as those nodes are touched). Deleting a tombstoned node is
// a no-op mutation (the sequence still advances, so callers stay aligned).
func (o *Online) Delete(id int32) (MutationResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) < 0 || int(id) >= len(o.fps) {
		return MutationResult{}, fmt.Errorf("knn: delete of node %d out of range [0,%d)", id, len(o.fps))
	}
	var res MutationResult
	touched := newTouchSet()
	touched.mark(id)
	if !o.dead[id] {
		// Tombstone first: the repairs detach triggers must not re-adopt
		// the node they are being repaired around.
		o.dead[id] = true
		o.live--
		res.Comparisons += o.detach(id, touched)
	}
	res.Touched = touched.emit(o, id)
	res.Seq = o.seq.Add(1)
	return res, nil
}

// connect wires node u (whose adjacency must be empty) into the graph and
// returns the mutation result with u's touched set, u first.
func (o *Online) connect(u int32) MutationResult {
	touched := newTouchSet()
	touched.mark(u)
	cands, comparisons := o.candidates(u)

	// u's KNN list: the best k candidates. cands is sorted best-first.
	kn := min(o.k, len(cands))
	o.adj[u] = append([]Neighbor(nil), cands[:kn]...)

	// u's navigable list: a diverse selection of up to maxDeg candidates.
	kept, c := o.diversePrune(cands, o.maxDeg)
	comparisons += c
	o.nav[u] = kept

	// Reverse propagation through the discovered neighborhood: every kept
	// neighbor learns about u — its KNN list if u qualifies, its navigable
	// list for future searches.
	for _, nb := range kept {
		v := nb.ID
		if next, changed := o.insertRanked(o.adj[v], Neighbor{ID: u, Sim: nb.Sim}, o.k); changed {
			o.adj[v] = next
			touched.mark(v)
		}
		nn := cloneWithout(o.nav[v], u)
		nn = append(nn, Neighbor{ID: u, Sim: nb.Sim})
		if len(nn) > o.maxDeg+navSlack {
			sort.Slice(nn, func(i, j int) bool { return ranksAbove(nn[i], nn[j]) })
			nn, c = o.diversePrune(nn, o.maxDeg)
			comparisons += c
		}
		o.nav[v] = nn
	}
	return MutationResult{Comparisons: comparisons, Touched: touched.emit(o, u)}
}

// candidates finds the connection candidates for node u, sorted
// best-first: a full scan of the live nodes while the graph is small, a
// graph search over the navigable adjacency once it is not.
func (o *Online) candidates(u int32) ([]Neighbor, int) {
	if o.live-1 <= 2*o.maxDeg {
		var cands []Neighbor
		comparisons := 0
		for v := int32(0); int(v) < len(o.fps); v++ {
			if v == u || o.dead[v] {
				continue
			}
			cands = append(cands, Neighbor{ID: v, Sim: o.sim(u, v)})
			comparisons++
		}
		sort.Slice(cands, func(i, j int) bool { return ranksAbove(cands[i], cands[j]) })
		return cands, comparisons
	}
	nav := &Graph{K: o.k, Neighbors: o.nav}
	oracle := OracleFunc(func(v int32) float64 { return o.sim(u, v) })
	// Overfetch past the degree cap so the diversity prune has rejected
	// candidates to refill from instead of keeping the top-maxDeg verbatim.
	// Beam of 4×maxDeg: wide enough that the prune has real choice, far
	// cheaper than GraphSearch's query default of 16×k — an insert runs
	// on the write path, where latency is the budget.
	cands, stats, _ := GraphSearch(nav, oracle, o.maxDeg+o.maxDeg/2, SearchOptions{
		Ef:      4 * o.maxDeg,
		Exclude: func(v int32) bool { return v == u || o.dead[v] },
	})
	return cands, stats.Scored
}

// detach removes node id's out-edges and repairs every neighborhood those
// edges made aware of id. The caller updates tombstone state.
func (o *Online) detach(id int32, touched *touchSet) int {
	holders := neighborIDs(o.adj[id], o.nav[id], id)
	o.adj[id] = nil
	o.nav[id] = nil
	touched.mark(id)

	comparisons := 0
	var short []int32
	for _, v := range holders {
		if o.dead[v] {
			continue
		}
		if next, changed := removeRanked(o.adj[v], id); changed {
			o.adj[v] = next
			touched.mark(v)
			if len(next) < o.k {
				short = append(short, v)
			}
		}
		if next, changed := removeRanked(o.nav[v], id); changed {
			o.nav[v] = next
		}
	}
	for _, v := range short {
		comparisons += o.repair(v, touched)
	}
	return comparisons
}

// repair rebuilds node v's KNN list from its live two-hop neighborhood —
// the lazy local repair a delete triggers on the neighborhoods it
// shortened. New edges also refresh v's navigable list.
func (o *Online) repair(v int32, touched *touchSet) int {
	seen := map[int32]bool{v: true}
	var ids []int32
	add := func(w int32) {
		if !seen[w] && !o.dead[w] {
			seen[w] = true
			ids = append(ids, w)
		}
	}
	for _, nb := range o.adj[v] {
		add(nb.ID)
	}
	for _, nb := range o.nav[v] {
		add(nb.ID)
	}
	// Second hop expands through KNN lists only: the navigable lists are
	// 4-6x wider, and repairing through them makes a delete storm
	// quadratic in the degree cap for marginal quality.
	for _, w := range append([]int32(nil), ids...) {
		for _, nb := range o.adj[w] {
			add(nb.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	cands := make([]Neighbor, 0, len(ids))
	for _, w := range ids {
		cands = append(cands, Neighbor{ID: w, Sim: o.sim(v, w)})
	}
	sort.Slice(cands, func(i, j int) bool { return ranksAbove(cands[i], cands[j]) })
	kn := min(o.k, len(cands))
	o.adj[v] = append([]Neighbor(nil), cands[:kn]...)
	touched.mark(v)

	// Newly discovered edges serve navigation too.
	nn := o.nav[v]
	for _, nb := range o.adj[v] {
		if !containsID(nn, nb.ID) {
			nn = append(cloneWithout(nn, -1), nb)
		}
	}
	if len(nn) > o.maxDeg+navSlack {
		sort.Slice(nn, func(i, j int) bool { return ranksAbove(nn[i], nn[j]) })
		nn, _ = o.diversePrune(nn, o.maxDeg)
	}
	o.nav[v] = nn
	return len(cands)
}

// diversePrune reduces a best-first sorted candidate list to at most cap
// entries with the HNSW/Vamana diversity heuristic Navigable uses: an edge
// is kept only if its endpoint is closer to the node than to every
// already-kept neighbor; remaining capacity refills with the best
// rejected. Returns the kept list (fresh allocation, sorted best-first)
// and the comparisons spent.
func (o *Online) diversePrune(cands []Neighbor, cap int) ([]Neighbor, int) {
	if len(cands) <= cap {
		return append([]Neighbor(nil), cands...), 0
	}
	comparisons := 0
	kept := make([]Neighbor, 0, cap)
	var rejected []Neighbor
	for _, nb := range cands {
		if len(kept) == cap {
			break
		}
		diverse := true
		for _, w := range kept {
			comparisons++
			if o.sim(nb.ID, w.ID) > nb.Sim {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, nb)
		} else {
			rejected = append(rejected, nb)
		}
	}
	for _, nb := range rejected {
		if len(kept) == cap {
			break
		}
		kept = append(kept, nb)
	}
	sort.Slice(kept, func(i, j int) bool { return ranksAbove(kept[i], kept[j]) })
	return kept, comparisons
}

// insertRanked returns nbrs with nb inserted in rank order (replacing any
// existing entry for the same ID, purging tombstoned entries, trimming to
// k) as a fresh slice, and whether the list changed. The input is never
// mutated.
func (o *Online) insertRanked(nbrs []Neighbor, nb Neighbor, k int) ([]Neighbor, bool) {
	out := make([]Neighbor, 0, min(len(nbrs)+1, k))
	inserted := false
	changed := false
	push := func(e Neighbor) {
		if len(out) < k {
			out = append(out, e)
		}
	}
	for _, e := range nbrs {
		if e.ID == nb.ID || o.dead[e.ID] {
			changed = true // replaced or purged
			continue
		}
		if !inserted && ranksAbove(nb, e) {
			push(nb)
			inserted = true
		}
		push(e)
	}
	if !inserted && len(out) < k {
		push(nb)
		inserted = true
	}
	if !inserted && !changed {
		return nbrs, false
	}
	if !inserted {
		// Purges made room behind nb's rank — retry once on the purged list.
		return o.insertRanked(out, nb, k)
	}
	if len(out) == len(nbrs) && !changed {
		// Same length and nothing purged: changed only if nb is new or its
		// similarity moved.
		for i := range out {
			if out[i] != nbrs[i] {
				return out, true
			}
		}
		return nbrs, false
	}
	return out, true
}

// removeRanked returns nbrs without id (fresh slice) and whether it was
// present. The input is never mutated.
func removeRanked(nbrs []Neighbor, id int32) ([]Neighbor, bool) {
	if !containsID(nbrs, id) {
		return nbrs, false
	}
	out := make([]Neighbor, 0, len(nbrs)-1)
	for _, e := range nbrs {
		if e.ID != id {
			out = append(out, e)
		}
	}
	return out, true
}

func containsID(nbrs []Neighbor, id int32) bool {
	for _, e := range nbrs {
		if e.ID == id {
			return true
		}
	}
	return false
}

// cloneWithout copies nbrs into a fresh slice, skipping id (pass -1 to
// skip nothing). Mutations append to the clone, never to a published
// slice's backing array.
func cloneWithout(nbrs []Neighbor, id int32) []Neighbor {
	out := make([]Neighbor, 0, len(nbrs)+1)
	for _, e := range nbrs {
		if e.ID != id {
			out = append(out, e)
		}
	}
	return out
}

// neighborIDs returns the deduplicated, sorted union of the IDs in both
// adjacency lists, excluding self.
func neighborIDs(a, b []Neighbor, self int32) []int32 {
	seen := make(map[int32]bool, len(a)+len(b))
	out := make([]int32, 0, len(a)+len(b))
	for _, list := range [2][]Neighbor{a, b} {
		for _, e := range list {
			if e.ID != self && !seen[e.ID] {
				seen[e.ID] = true
				out = append(out, e.ID)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// touchSet accumulates the nodes a mutation modified, in deterministic
// order.
type touchSet struct {
	seen map[int32]bool
	ids  []int32
}

func newTouchSet() *touchSet { return &touchSet{seen: map[int32]bool{}} }

func (t *touchSet) mark(id int32) {
	if !t.seen[id] {
		t.seen[id] = true
		t.ids = append(t.ids, id)
	}
}

// emit materializes the touched set with current adjacencies, `first`
// leading (pass -1 for plain sorted order). The remaining IDs are sorted
// so the emitted order — and with it the delta WAL byte stream — is
// deterministic.
func (t *touchSet) emit(o *Online, first int32) []TouchedNode {
	rest := make([]int32, 0, len(t.ids))
	for _, id := range t.ids {
		if id != first {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	out := make([]TouchedNode, 0, len(rest)+1)
	if first >= 0 && t.seen[first] {
		out = append(out, TouchedNode{ID: first, Neighbors: o.adj[first]})
	}
	for _, id := range rest {
		out = append(out, TouchedNode{ID: id, Neighbors: o.adj[id]})
	}
	return out
}

// mergeTouched folds extra touched nodes into base, keeping base's order
// and entries (they are newer) and appending entries for nodes base does
// not cover.
func mergeTouched(base, extra []TouchedNode) []TouchedNode {
	seen := make(map[int32]bool, len(base))
	for _, tn := range base {
		seen[tn.ID] = true
	}
	for _, tn := range extra {
		if !seen[tn.ID] {
			base = append(base, tn)
		}
	}
	return base
}

// ApplyTouched sets the graph's adjacency verbatim from a touched-node
// list — the replay half of the delta protocol. An ID equal to the current
// node count grows the graph by one node; IDs beyond that are rejected
// (deltas apply in mutation order, so growth is one node at a time).
// Neighbor entries must reference existing or just-grown nodes.
func ApplyTouched(g *Graph, touched []TouchedNode) error {
	for _, tn := range touched {
		n := len(g.Neighbors)
		switch {
		case int(tn.ID) < 0 || int(tn.ID) > n:
			return fmt.Errorf("knn: touched node %d out of range [0,%d]", tn.ID, n)
		case int(tn.ID) == n:
			g.Neighbors = append(g.Neighbors, nil)
			n++
		}
		for _, nb := range tn.Neighbors {
			if int(nb.ID) < 0 || int(nb.ID) >= n {
				return fmt.Errorf("knn: touched node %d references node %d out of range [0,%d)", tn.ID, nb.ID, n)
			}
			if nb.ID == tn.ID {
				return fmt.Errorf("knn: touched node %d has a self-loop", tn.ID)
			}
		}
		g.Neighbors[tn.ID] = tn.Neighbors
	}
	return nil
}
