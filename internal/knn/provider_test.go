package knn

import (
	"math"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func TestFuncProviderCosine(t *testing.T) {
	ps := fourUsers()
	p := NewCosineProvider(ps)
	if p.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d", p.NumUsers())
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if got, want := p.Similarity(u, v), profile.Cosine(ps[u], ps[v]); got != want {
				t.Errorf("cosine(%d,%d) = %g, want %g", u, v, got, want)
			}
		}
	}
}

func TestFuncProviderCustomSim(t *testing.T) {
	p := &FuncProvider{Profiles: fourUsers(), Sim: profile.Overlap}
	if got, want := p.Similarity(0, 2), 1.0; got != want {
		t.Errorf("overlap(0,2) = %g, want %g (u0 ⊂ u2)", got, want)
	}
}

func TestSHFCosineProviderAccuracy(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 5)
	scheme := core.MustScheme(8192, 5)
	est := NewSHFCosineProvider(scheme, d.Profiles)
	exact := NewCosineProvider(d.Profiles)
	if est.NumUsers() != exact.NumUsers() {
		t.Fatal("user count mismatch")
	}
	var errSum float64
	pairs := 0
	for u := 0; u < est.NumUsers(); u += 3 {
		for v := u + 1; v < est.NumUsers(); v += 7 {
			errSum += math.Abs(est.Similarity(u, v) - exact.Similarity(u, v))
			pairs++
		}
	}
	if mean := errSum / float64(pairs); mean > 0.05 {
		t.Errorf("mean |Ĉ−C| = %.4f with b=8192, want ≤ 0.05", mean)
	}
}

// TestGoldFingerCosineEndToEnd confirms the paper's claim that fsim is
// pluggable: a cosine-based KNN graph built on SHFs stays close to the
// exact cosine graph.
func TestGoldFingerCosineEndToEnd(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 6)
	exactP := NewCosineProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(exactP, k, Options{})
	shfP := NewSHFCosineProvider(core.MustScheme(1024, 6), d.Profiles)
	g, _ := BruteForce(shfP, k, Options{})
	if q := Quality(g, exact, exactP); q < 0.8 {
		t.Errorf("cosine GoldFinger quality = %.3f, want ≥ 0.8", q)
	}
}

func TestCountingProviderSimilarityRange(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 61)
	shf := NewSHFProvider(core.MustScheme(1024, 61), d.Profiles)
	n := shf.NumUsers()

	// Batched inner: results must match the inner kernel and the whole
	// range must count as hi-lo comparisons.
	cp := NewCountingProvider(shf)
	got := make([]float64, n)
	want := make([]float64, n)
	cp.SimilarityRange(0, 1, n, got[:n-1])
	shf.SimilarityRange(0, 1, n, want[:n-1])
	for i := range want[:n-1] {
		if got[i] != want[i] {
			t.Fatalf("counted batch diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if c := cp.Comparisons(); c != int64(n-1) {
		t.Errorf("batched range counted %d comparisons, want %d", c, n-1)
	}

	// Per-pair inner (no BatchProvider): fallback loop, same counting.
	cpExplicit := NewCountingProvider(NewExplicitProvider(d.Profiles))
	cpExplicit.SimilarityRange(2, 0, 5, got[:5])
	for v := 0; v < 5; v++ {
		if want := profile.Jaccard(d.Profiles[2], d.Profiles[v]); got[v] != want {
			t.Fatalf("fallback range diverges at %d: %v vs %v", v, got[v], want)
		}
	}
	if c := cpExplicit.Comparisons(); c != 5 {
		t.Errorf("fallback range counted %d comparisons, want 5", c)
	}
}
