package knn

import (
	"math"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func TestFuncProviderCosine(t *testing.T) {
	ps := fourUsers()
	p := NewCosineProvider(ps)
	if p.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d", p.NumUsers())
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if got, want := p.Similarity(u, v), profile.Cosine(ps[u], ps[v]); got != want {
				t.Errorf("cosine(%d,%d) = %g, want %g", u, v, got, want)
			}
		}
	}
}

func TestFuncProviderCustomSim(t *testing.T) {
	p := &FuncProvider{Profiles: fourUsers(), Sim: profile.Overlap}
	if got, want := p.Similarity(0, 2), 1.0; got != want {
		t.Errorf("overlap(0,2) = %g, want %g (u0 ⊂ u2)", got, want)
	}
}

func TestSHFCosineProviderAccuracy(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 5)
	scheme := core.MustScheme(8192, 5)
	est := NewSHFCosineProvider(scheme, d.Profiles)
	exact := NewCosineProvider(d.Profiles)
	if est.NumUsers() != exact.NumUsers() {
		t.Fatal("user count mismatch")
	}
	var errSum float64
	pairs := 0
	for u := 0; u < est.NumUsers(); u += 3 {
		for v := u + 1; v < est.NumUsers(); v += 7 {
			errSum += math.Abs(est.Similarity(u, v) - exact.Similarity(u, v))
			pairs++
		}
	}
	if mean := errSum / float64(pairs); mean > 0.05 {
		t.Errorf("mean |Ĉ−C| = %.4f with b=8192, want ≤ 0.05", mean)
	}
}

// TestGoldFingerCosineEndToEnd confirms the paper's claim that fsim is
// pluggable: a cosine-based KNN graph built on SHFs stays close to the
// exact cosine graph.
func TestGoldFingerCosineEndToEnd(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 6)
	exactP := NewCosineProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(exactP, k, Options{})
	shfP := NewSHFCosineProvider(core.MustScheme(1024, 6), d.Profiles)
	g, _ := BruteForce(shfP, k, Options{})
	if q := Quality(g, exact, exactP); q < 0.8 {
		t.Errorf("cosine GoldFinger quality = %.3f, want ≥ 0.8", q)
	}
}
