package knn

import (
	"fmt"
	"math/rand"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
)

// hideBatch wraps a provider so only the generic per-pair interface is
// visible, forcing BruteForce onto its fallback path.
type hideBatch struct{ inner Provider }

func (h hideBatch) NumUsers() int              { return h.inner.NumUsers() }
func (h hideBatch) Similarity(u, v int) float64 { return h.inner.Similarity(u, v) }

func graphsIdentical(t *testing.T, a, b *Graph, label string) {
	t.Helper()
	if len(a.Neighbors) != len(b.Neighbors) {
		t.Fatalf("%s: node counts differ (%d vs %d)", label, len(a.Neighbors), len(b.Neighbors))
	}
	for u := range a.Neighbors {
		if len(a.Neighbors[u]) != len(b.Neighbors[u]) {
			t.Fatalf("%s: user %d has %d vs %d neighbors", label, u, len(a.Neighbors[u]), len(b.Neighbors[u]))
		}
		for i := range a.Neighbors[u] {
			if a.Neighbors[u][i] != b.Neighbors[u][i] {
				t.Fatalf("%s: user %d rank %d: %+v vs %+v", label, u, i,
					a.Neighbors[u][i], b.Neighbors[u][i])
			}
		}
	}
}

// graphsEquivalentUpToTies asserts a and b select the same neighborhoods
// modulo legitimate tie ambiguity: per node, the sorted similarity
// sequences must be identical, and any edge present in one graph but not
// the other must sit exactly at that node's k-th-place (boundary)
// similarity — the only place where two correct top-k selections may
// differ.
func graphsEquivalentUpToTies(t *testing.T, a, b *Graph, label string) {
	t.Helper()
	if len(a.Neighbors) != len(b.Neighbors) {
		t.Fatalf("%s: node counts differ", label)
	}
	for u := range a.Neighbors {
		na, nb := a.Neighbors[u], b.Neighbors[u]
		if len(na) != len(nb) {
			t.Fatalf("%s: user %d has %d vs %d neighbors", label, u, len(na), len(nb))
		}
		if len(na) == 0 {
			continue
		}
		for i := range na {
			if na[i].Sim != nb[i].Sim {
				t.Fatalf("%s: user %d rank %d: sims %v vs %v", label, u, i, na[i].Sim, nb[i].Sim)
			}
		}
		boundary := na[len(na)-1].Sim
		inA := map[int32]bool{}
		for _, e := range na {
			inA[e.ID] = true
		}
		simA := map[int32]float64{}
		for _, e := range na {
			simA[e.ID] = e.Sim
		}
		for _, e := range nb {
			if inA[e.ID] {
				if simA[e.ID] != e.Sim {
					t.Fatalf("%s: user %d edge %d has sims %v vs %v", label, u, e.ID, simA[e.ID], e.Sim)
				}
				continue
			}
			if e.Sim != boundary {
				t.Fatalf("%s: user %d: edge %d (sim %v) differs away from the boundary %v",
					label, u, e.ID, e.Sim, boundary)
			}
		}
	}
}

// TestBruteForceBatchMatchesGenericByteForByte is the acceptance criterion:
// the BatchProvider path and the per-pair fallback must produce the same
// graph — same edges, same order after finalize — and the same
// Stats.Comparisons.
func TestBruteForceBatchMatchesGenericByteForByte(t *testing.T) {
	for _, seed := range []int64{17, 23, 51} {
		d := dataset.Generate(dataset.ML1M, 0.03, seed)
		shf := NewSHFProvider(core.MustScheme(1024, uint64(seed)), d.Profiles)
		for _, workers := range []int{1, 2, 7} {
			const k = 10
			gBatch, sBatch := BruteForce(shf, k, Options{Workers: workers})
			gGeneric, sGeneric := BruteForce(hideBatch{shf}, k, Options{Workers: workers})
			label := fmt.Sprintf("seed=%d workers=%d", seed, workers)
			graphsIdentical(t, gBatch, gGeneric, label)
			if sBatch.Comparisons != sGeneric.Comparisons {
				t.Fatalf("%s: comparisons %d vs %d", label, sBatch.Comparisons, sGeneric.Comparisons)
			}
		}
	}
}

// TestBruteForceDeterministicAcrossWorkerCounts: the tiled implementation's
// total-order selection makes the graph identical for every worker count,
// byte for byte — stronger than the sims-only guarantee of the seed.
func TestBruteForceDeterministicAcrossWorkerCounts(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 5)
	shf := NewSHFProvider(core.MustScheme(1024, 5), d.Profiles)
	base, baseStats := BruteForce(shf, 7, Options{Workers: 1})
	for _, workers := range []int{2, 3, 8} {
		g, stats := BruteForce(shf, 7, Options{Workers: workers})
		graphsIdentical(t, base, g, fmt.Sprintf("workers=%d", workers))
		if stats.Comparisons != baseStats.Comparisons {
			t.Fatalf("workers=%d: comparisons %d vs %d", workers, stats.Comparisons, baseStats.Comparisons)
		}
	}
}

// TestBruteForceMatchesLegacy runs the tiled implementation against the
// retained seed implementation (LegacyBruteForce) across several dataset
// seeds and worker counts. Run under -race via `make check`, this is also
// the concurrency regression test for the per-worker-local design.
func TestBruteForceMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{3, 29, 71} {
		d := dataset.Generate(dataset.ML1M, 0.03, seed)
		exact := NewExplicitProvider(d.Profiles)
		shf := NewSHFProvider(core.MustScheme(1024, uint64(seed)), d.Profiles)
		for _, p := range []struct {
			name string
			prov Provider
		}{{"explicit", exact}, {"shf", shf}} {
			for _, workers := range []int{1, 4} {
				const k = 6
				g, stats := BruteForce(p.prov, k, Options{Workers: workers})
				lg, lstats := LegacyBruteForce(p.prov, k, Options{Workers: workers})
				label := fmt.Sprintf("seed=%d %s workers=%d", seed, p.name, workers)
				graphsEquivalentUpToTies(t, g, lg, label)
				if stats.Comparisons != lstats.Comparisons {
					t.Fatalf("%s: comparisons %d vs legacy %d", label, stats.Comparisons, lstats.Comparisons)
				}
				if stats.Updates == 0 || lstats.Updates == 0 {
					t.Fatalf("%s: zero updates recorded (%d / %d)", label, stats.Updates, lstats.Updates)
				}
			}
		}
	}
}

// TestBruteForcePackedProviderMatchesFingerprintProvider: a provider built
// straight from a packed corpus (the service's build path) must produce the
// identical graph to one built from the fingerprint slice.
func TestBruteForcePackedProviderMatchesFingerprintProvider(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 13)
	scheme := core.MustScheme(1024, 13)
	fromFps := NewSHFProvider(scheme, d.Profiles)
	corpus := scheme.PackProfiles(d.Profiles, 0)
	fromCorpus := NewPackedSHFProvider(corpus)
	if fromFps.NumUsers() != fromCorpus.NumUsers() {
		t.Fatalf("user counts differ: %d vs %d", fromFps.NumUsers(), fromCorpus.NumUsers())
	}
	g1, s1 := BruteForce(fromFps, 9, Options{})
	g2, s2 := BruteForce(fromCorpus, 9, Options{})
	graphsIdentical(t, g1, g2, "fps-vs-corpus")
	if s1.Comparisons != s2.Comparisons {
		t.Fatalf("comparisons %d vs %d", s1.Comparisons, s2.Comparisons)
	}
}

// TestSHFProviderBatchAgreesWithPerPair: SimilarityRange must be bitwise
// identical to per-pair Similarity for both SHF providers, including ranges
// that straddle kernel tile boundaries.
func TestSHFProviderBatchAgreesWithPerPair(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.04, 37) // > 256 users spans tiles
	scheme := core.MustScheme(1000, 37)           // non-multiple-of-64 length
	rng := rand.New(rand.NewSource(37))
	for _, bp := range []BatchProvider{
		NewSHFProvider(scheme, d.Profiles),
		NewSHFCosineProvider(scheme, d.Profiles),
	} {
		n := bp.NumUsers()
		out := make([]float64, n)
		for trial := 0; trial < 5; trial++ {
			u := rng.Intn(n)
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			bp.SimilarityRange(u, lo, hi, out[:hi-lo])
			for v := lo; v < hi; v++ {
				if want := bp.Similarity(u, v); out[v-lo] != want {
					t.Fatalf("%T u=%d v=%d: batch %v, per-pair %v", bp, u, v, out[v-lo], want)
				}
			}
		}
	}
}
