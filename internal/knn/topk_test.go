package knn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func bruteTopK(sims []float64, k int) []Neighbor {
	all := make([]Neighbor, len(sims))
	for i, s := range sims {
		all[i] = Neighbor{ID: int32(i), Sim: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Sim != all[j].Sim {
			return all[i].Sim > all[j].Sim
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		sims := make([]float64, n)
		for i := range sims {
			// Coarse quantization produces plenty of exact ties.
			sims[i] = float64(rng.Intn(8)) / 8
		}
		want := bruteTopK(sims, k)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := TopK(n, k, workers, func(i int) float64 { return sims[i] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d workers=%d: got %v, want %v", n, k, workers, got, want)
			}
		}
	}
}

func TestTopKAllTies(t *testing.T) {
	// Every candidate has the same similarity: the k lowest ids must win,
	// in id order, for any worker count.
	const n, k = 100, 7
	for _, workers := range []int{0, 1, 4, 13} {
		got := TopK(n, k, workers, func(int) float64 { return 0.5 })
		if len(got) != k {
			t.Fatalf("workers=%d: got %d entries, want %d", workers, len(got), k)
		}
		for i, nb := range got {
			if nb.ID != int32(i) || nb.Sim != 0.5 {
				t.Errorf("workers=%d: entry %d = %+v, want id %d", workers, i, nb, i)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK(0, 5, 2, func(int) float64 { return 0 }); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	if got := TopK(5, 0, 2, func(int) float64 { return 0 }); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
	// k larger than n returns all candidates, sorted.
	got := TopK(3, 10, 8, func(i int) float64 { return float64(i) })
	if len(got) != 3 || got[0].ID != 2 || got[2].ID != 0 {
		t.Errorf("k>n: got %v", got)
	}
}

// TestTopKRangeMatchesTopK: the range-batched kernel form must reproduce
// TopK exactly — ties, boundaries, worker counts, and tile-straddling
// shards included.
func TestTopKRangeMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		// n above topkColTile exercises multi-tile shards.
		n := 1 + rng.Intn(700)
		k := 1 + rng.Intn(20)
		sims := make([]float64, n)
		for i := range sims {
			sims[i] = float64(rng.Intn(8)) / 8
		}
		want := bruteTopK(sims, k)
		for _, workers := range []int{1, 3, 16} {
			got := TopKRange(n, k, workers, func(lo, hi int, out []float64) {
				copy(out, sims[lo:hi])
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d workers=%d: got %v, want %v", n, k, workers, got, want)
			}
		}
	}
}

func TestTopKHugeKDoesNotPanic(t *testing.T) {
	// k flows in from an attacker-controlled query parameter: an absurd
	// value must be clamped to n, not preallocated (makeslice panic).
	got := TopK(3, math.MaxInt, 2, func(i int) float64 { return float64(i) })
	if len(got) != 3 || got[0].ID != 2 || got[2].ID != 0 {
		t.Errorf("huge k: got %v", got)
	}
}

// TestTopKCtxMatchesTopK pins the ctx variants to the plain ones on a live
// context: same input, bit-identical output, nil error.
func TestTopKCtxMatchesTopK(t *testing.T) {
	const n, k = 1000, 7
	rng := rand.New(rand.NewSource(11))
	sims := make([]float64, n)
	for i := range sims {
		sims[i] = rng.Float64()
	}
	want := TopK(n, k, 3, func(i int) float64 { return sims[i] })
	got, err := TopKCtx(context.Background(), n, k, 3, func(i int) float64 { return sims[i] })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopKCtx diverged: got %v, want %v", got, want)
	}
	gotR, err := TopKRangeCtx(context.Background(), n, k, 3, func(lo, hi int, out []float64) {
		copy(out, sims[lo:hi])
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotR, want) {
		t.Errorf("TopKRangeCtx diverged: got %v, want %v", gotR, want)
	}
}

// TestTopKRangeCtxPreCanceled: a context that is already dead must refuse
// the scan before a single kernel call runs.
func TestTopKRangeCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	got, err := TopKRangeCtx(ctx, 1000, 5, 2, func(lo, hi int, out []float64) { called = true })
	if !errors.Is(err, context.Canceled) || got != nil {
		t.Fatalf("pre-canceled scan: got %v, err %v", got, err)
	}
	if called {
		t.Error("kernel ran under a dead context")
	}
}

// TestTopKRangeCtxCancelMidScan cancels after the first tile: the scan
// must stop within a bounded number of further kernel calls (one in-flight
// tile per worker) and report the cancellation, not a partial result.
func TestTopKRangeCtxCancelMidScan(t *testing.T) {
	const n = 64 * topkColTile
	ctx, cancel := context.WithCancel(context.Background())
	var tiles atomic.Int64
	got, err := TopKRangeCtx(ctx, n, 5, 2, func(lo, hi int, out []float64) {
		if tiles.Add(1) == 1 {
			cancel()
		}
		for i := range out {
			out[i] = float64(lo + i)
		}
	})
	if !errors.Is(err, context.Canceled) || got != nil {
		t.Fatalf("mid-scan cancel: got %v, err %v", got, err)
	}
	// 2 workers × 32 tiles each; after the cancel each worker may finish
	// the tile it is in plus start at most the one it dequeued before the
	// flag flipped. Anything close to the full 64 means polling is broken.
	if c := tiles.Load(); c > 8 {
		t.Errorf("scan ran %d tiles after cancellation, want ≤ 8", c)
	}
}

// TestTopKRangeCtxDeadline: an expiring deadline aborts the scan with
// context.DeadlineExceeded even when the kernel itself never checks time.
func TestTopKRangeCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	const n = 1024 * topkColTile
	got, err := TopKRangeCtx(ctx, n, 3, 1, func(lo, hi int, out []float64) {
		time.Sleep(time.Millisecond) // ~1s total scan without the deadline
		for i := range out {
			out[i] = 0.5
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) || got != nil {
		t.Fatalf("deadline scan: got %v, err %v", got, err)
	}
}

// BenchmarkTopK measures the parallel sharded top-k scan the service's
// /query endpoint rides on, across worker counts.
func BenchmarkTopK(b *testing.B) {
	const n, k = 100000, 10
	sims := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range sims {
		sims[i] = rng.Float64()
	}
	for _, workers := range []int{1, 4, 0} {
		name := "workers=gomaxprocs"
		if workers > 0 {
			name = "workers=" + string(rune('0'+workers))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := TopK(n, k, workers, func(i int) float64 { return sims[i] }); len(got) != k {
					b.Fatal("short result")
				}
			}
		})
	}
}
