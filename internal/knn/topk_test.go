package knn

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func bruteTopK(sims []float64, k int) []Neighbor {
	all := make([]Neighbor, len(sims))
	for i, s := range sims {
		all[i] = Neighbor{ID: int32(i), Sim: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Sim != all[j].Sim {
			return all[i].Sim > all[j].Sim
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		sims := make([]float64, n)
		for i := range sims {
			// Coarse quantization produces plenty of exact ties.
			sims[i] = float64(rng.Intn(8)) / 8
		}
		want := bruteTopK(sims, k)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := TopK(n, k, workers, func(i int) float64 { return sims[i] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d workers=%d: got %v, want %v", n, k, workers, got, want)
			}
		}
	}
}

func TestTopKAllTies(t *testing.T) {
	// Every candidate has the same similarity: the k lowest ids must win,
	// in id order, for any worker count.
	const n, k = 100, 7
	for _, workers := range []int{0, 1, 4, 13} {
		got := TopK(n, k, workers, func(int) float64 { return 0.5 })
		if len(got) != k {
			t.Fatalf("workers=%d: got %d entries, want %d", workers, len(got), k)
		}
		for i, nb := range got {
			if nb.ID != int32(i) || nb.Sim != 0.5 {
				t.Errorf("workers=%d: entry %d = %+v, want id %d", workers, i, nb, i)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK(0, 5, 2, func(int) float64 { return 0 }); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	if got := TopK(5, 0, 2, func(int) float64 { return 0 }); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
	// k larger than n returns all candidates, sorted.
	got := TopK(3, 10, 8, func(i int) float64 { return float64(i) })
	if len(got) != 3 || got[0].ID != 2 || got[2].ID != 0 {
		t.Errorf("k>n: got %v", got)
	}
}

// TestTopKRangeMatchesTopK: the range-batched kernel form must reproduce
// TopK exactly — ties, boundaries, worker counts, and tile-straddling
// shards included.
func TestTopKRangeMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		// n above topkColTile exercises multi-tile shards.
		n := 1 + rng.Intn(700)
		k := 1 + rng.Intn(20)
		sims := make([]float64, n)
		for i := range sims {
			sims[i] = float64(rng.Intn(8)) / 8
		}
		want := bruteTopK(sims, k)
		for _, workers := range []int{1, 3, 16} {
			got := TopKRange(n, k, workers, func(lo, hi int, out []float64) {
				copy(out, sims[lo:hi])
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d workers=%d: got %v, want %v", n, k, workers, got, want)
			}
		}
	}
}

func TestTopKHugeKDoesNotPanic(t *testing.T) {
	// k flows in from an attacker-controlled query parameter: an absurd
	// value must be clamped to n, not preallocated (makeslice panic).
	got := TopK(3, math.MaxInt, 2, func(i int) float64 { return float64(i) })
	if len(got) != 3 || got[0].ID != 2 || got[2].ID != 0 {
		t.Errorf("huge k: got %v", got)
	}
}

// BenchmarkTopK measures the parallel sharded top-k scan the service's
// /query endpoint rides on, across worker counts.
func BenchmarkTopK(b *testing.B) {
	const n, k = 100000, 10
	sims := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range sims {
		sims[i] = rng.Float64()
	}
	for _, workers := range []int{1, 4, 0} {
		name := "workers=gomaxprocs"
		if workers > 0 {
			name = "workers=" + string(rune('0'+workers))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := TopK(n, k, workers, func(i int) float64 { return sims[i] }); len(got) != k {
					b.Fatal("short result")
				}
			}
		})
	}
}
