package knn

import (
	"fmt"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func TestRecursiveBisectionQuality(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, stats := RecursiveBisection(d.Profiles, p, k, BisectionOptions{LeafSize: 40, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Comparisons == 0 {
		t.Fatal("no comparisons recorded")
	}
	if q := Quality(g, exact, p); q < 0.8 {
		t.Errorf("bisection quality = %.3f, want ≥ 0.8", q)
	}
}

func TestRecursiveBisectionScanRateBelowBruteForce(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.08, 2)
	p := NewExplicitProvider(d.Profiles)
	_, stats := RecursiveBisection(d.Profiles, p, 10, BisectionOptions{LeafSize: 60, Seed: 2})
	if sr := stats.ScanRate(d.NumUsers()); sr >= 1 {
		t.Errorf("scanrate = %.3f, want < 1 (that is the point of bisecting)", sr)
	}
}

func TestRecursiveBisectionLeafOnly(t *testing.T) {
	// A block below LeafSize degenerates to exact brute force.
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 5
	exact, _ := BruteForce(p, k, Options{})
	g, stats := RecursiveBisection(d.Profiles, p, k, BisectionOptions{LeafSize: d.NumUsers() + 1})
	if q := Quality(g, exact, p); q != 1 {
		t.Errorf("leaf-only bisection quality = %g, want exactly 1", q)
	}
	n := int64(d.NumUsers())
	if want := n * (n - 1) / 2; stats.Comparisons != want {
		t.Errorf("comparisons = %d, want %d", stats.Comparisons, want)
	}
}

func TestRecursiveBisectionOverlapImprovesQuality(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.08, 3)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	avg := func(overlap float64) float64 {
		var sum float64
		for seed := int64(0); seed < 3; seed++ {
			g, _ := RecursiveBisection(d.Profiles, p, k, BisectionOptions{
				LeafSize: 50, Overlap: overlap, Seed: seed,
			})
			sum += Quality(g, exact, p)
		}
		return sum / 3
	}
	qNone, qSome := avg(-1), avg(0.3)
	if qSome < qNone {
		t.Errorf("overlap 0.3 quality %.3f below no-overlap %.3f", qSome, qNone)
	}
}

func TestRecursiveBisectionDegenerateProfiles(t *testing.T) {
	// All-empty profiles: the power iteration has no signal; must still
	// terminate and produce a valid (zero-similarity) graph.
	ps := make([]profile.Profile, 50)
	p := NewExplicitProvider(ps)
	g, _ := RecursiveBisection(ps, p, 3, BisectionOptions{LeafSize: 10, Seed: 4})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveBisectionTinyInputs(t *testing.T) {
	for n := 0; n <= 3; n++ {
		ps := make([]profile.Profile, n)
		for i := range ps {
			ps[i] = profile.New(profile.ItemID(i), profile.ItemID(i+1))
		}
		g, _ := RecursiveBisection(ps, NewExplicitProvider(ps), 5, BisectionOptions{})
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRecursiveBisectionWithGoldFinger(t *testing.T) {
	d := smallDataset(t)
	exactP := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(exactP, k, Options{})
	shfP := NewSHFProvider(core.MustScheme(1024, 5), d.Profiles)
	g, _ := RecursiveBisection(d.Profiles, shfP, k, BisectionOptions{LeafSize: 40, Seed: 5})
	if q := Quality(g, exact, exactP); q < 0.7 {
		t.Errorf("bisection+GoldFinger quality = %.3f, want ≥ 0.7", q)
	}
}

func TestRecursiveBisectionProviderMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched provider accepted")
		}
	}()
	RecursiveBisection(fourUsers(), NewExplicitProvider(fourUsers()[:2]), 2, BisectionOptions{})
}

func TestBisectionOptionsDefaults(t *testing.T) {
	o := BisectionOptions{}
	if o.leafSize() != 200 || o.powerIterations() != 12 {
		t.Errorf("defaults: leaf=%d iters=%d", o.leafSize(), o.powerIterations())
	}
	if o.overlap() != 0.15 {
		t.Errorf("default overlap = %g", o.overlap())
	}
	if (BisectionOptions{Overlap: -1}).overlap() != 0 {
		t.Error("negative overlap should clamp to 0")
	}
	if (BisectionOptions{Overlap: 0.9}).overlap() != 0.5 {
		t.Error("huge overlap should clamp to 0.5")
	}
}

func ExampleRecursiveBisection() {
	ps := []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(1, 2, 4),
		profile.New(100, 101, 102),
		profile.New(100, 101, 103),
	}
	g, _ := RecursiveBisection(ps, NewExplicitProvider(ps), 1, BisectionOptions{LeafSize: 2, Seed: 42})
	fmt.Println(len(g.Neighbors))
	// Output: 4
}
