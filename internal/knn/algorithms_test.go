package knn

import (
	"math/rand"
	"sort"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

// naiveKNN computes the exact graph by sorting all similarities, as an
// oracle independent of the neighborhood machinery.
func naiveKNN(p Provider, k int) *Graph {
	n := p.NumUsers()
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	for u := 0; u < n; u++ {
		all := make([]Neighbor, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u {
				all = append(all, Neighbor{ID: int32(v), Sim: p.Similarity(u, v)})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Sim != all[j].Sim {
				return all[i].Sim > all[j].Sim
			}
			return all[i].ID < all[j].ID
		})
		if len(all) > k {
			all = all[:k]
		}
		g.Neighbors[u] = all
	}
	return g
}

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.ML1M, 0.03, 17) // ≈181 users
}

func TestBruteForceMatchesNaiveTopK(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 5
	g, stats := BruteForce(p, k, Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	oracle := naiveKNN(p, k)
	n := p.NumUsers()
	if want := int64(n) * int64(n-1) / 2; stats.Comparisons != want {
		t.Errorf("Comparisons = %d, want %d", stats.Comparisons, want)
	}
	// Neighbor sets can legitimately differ on ties, so compare the
	// similarity multisets, which must be identical.
	for u := 0; u < n; u++ {
		if len(g.Neighbors[u]) != len(oracle.Neighbors[u]) {
			t.Fatalf("user %d: %d neighbors, oracle has %d", u, len(g.Neighbors[u]), len(oracle.Neighbors[u]))
		}
		for i := range g.Neighbors[u] {
			if got, want := g.Neighbors[u][i].Sim, oracle.Neighbors[u][i].Sim; got != want {
				t.Fatalf("user %d rank %d: sim %g, oracle %g", u, i, got, want)
			}
		}
	}
}

func TestBruteForceSingleWorkerMatchesParallel(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	g1, _ := BruteForce(p, 4, Options{Workers: 1})
	g8, _ := BruteForce(p, 4, Options{Workers: 8})
	for u := range g1.Neighbors {
		for i := range g1.Neighbors[u] {
			if g1.Neighbors[u][i].Sim != g8.Neighbors[u][i].Sim {
				t.Fatalf("user %d rank %d: similarities differ between worker counts", u, i)
			}
		}
	}
}

func TestBruteForceTinyGraphs(t *testing.T) {
	// n = 0, 1, 2 and k ≥ n−1 must all work.
	for _, n := range []int{0, 1, 2, 3} {
		ps := make([]profile.Profile, n)
		for i := range ps {
			ps[i] = profile.New(profile.ItemID(i), profile.ItemID(i+1))
		}
		g, _ := BruteForce(NewExplicitProvider(ps), 5, Options{})
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if g.NumUsers() != n {
			t.Errorf("n=%d: graph has %d users", n, g.NumUsers())
		}
		for u, nbrs := range g.Neighbors {
			if len(nbrs) != max(0, n-1) {
				t.Errorf("n=%d user %d: %d neighbors, want %d", n, u, len(nbrs), max(0, n-1))
			}
		}
	}
}

func TestApproxAlgorithmsTinyGraphs(t *testing.T) {
	// Every approximate algorithm must handle n ∈ {0,1,2,3} and k ≥ n−1
	// without panics or invalid graphs.
	for _, n := range []int{0, 1, 2, 3} {
		ps := make([]profile.Profile, n)
		for i := range ps {
			ps[i] = profile.New(profile.ItemID(i), profile.ItemID(i+1))
		}
		p := NewExplicitProvider(ps)
		graphs := map[string]func() *Graph{
			"hyrec":     func() *Graph { g, _ := Hyrec(p, 5, Options{Seed: 1}); return g },
			"nndescent": func() *Graph { g, _ := NNDescent(p, 5, Options{Seed: 1}); return g },
			"lsh":       func() *Graph { g, _ := LSH(ps, p, 5, LSHOptions{Seed: 1}); return g },
			"kiff":      func() *Graph { g, _ := KIFF(ps, p, 5, KIFFOptions{}); return g },
		}
		for name, build := range graphs {
			g := build()
			if err := g.Validate(); err != nil {
				t.Errorf("n=%d %s: %v", n, name, err)
			}
			if g.NumUsers() != n {
				t.Errorf("n=%d %s: graph has %d users", n, name, g.NumUsers())
			}
		}
	}
}

func TestHyrecQuality(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, stats := Hyrec(p, k, Options{Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 0 {
		t.Error("Hyrec did no iterations")
	}
	if q := Quality(g, exact, p); q < 0.9 {
		t.Errorf("Hyrec quality = %.3f, want ≥ 0.9 on a small clustered dataset", q)
	}
}

func TestHyrecTerminates(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	_, stats := Hyrec(p, 5, Options{Seed: 2, MaxIterations: 30})
	if stats.Iterations >= 30 {
		t.Errorf("Hyrec used all %d iterations on a tiny dataset (δ-rule broken?)", stats.Iterations)
	}
}

func TestHyrecScanRateBelowBruteForce(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.08, 23) // bigger so greedy pays off
	p := NewExplicitProvider(d.Profiles)
	_, stats := Hyrec(p, 10, Options{Seed: 3})
	if sr := stats.ScanRate(p.NumUsers()); sr >= 1 {
		t.Errorf("Hyrec scanrate = %.2f, want < 1", sr)
	}
}

func TestNNDescentQuality(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, stats := NNDescent(p, k, Options{Seed: 4})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 0 || stats.Updates == 0 {
		t.Errorf("NNDescent stats look dead: %+v", stats)
	}
	if q := Quality(g, exact, p); q < 0.9 {
		t.Errorf("NNDescent quality = %.3f, want ≥ 0.9", q)
	}
}

func TestNNDescentBeatsRandomInit(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 8
	exact, _ := BruteForce(p, k, Options{})
	// One-iteration run approximates "random + a bit"; full run must beat
	// a random graph clearly.
	g, _ := NNDescent(p, k, Options{Seed: 5})
	random := randomGraph(p, k, 5)
	if qg, qr := Quality(g, exact, p), Quality(random, exact, p); qg <= qr {
		t.Errorf("NNDescent quality %.3f not above random graph %.3f", qg, qr)
	}
}

func randomGraph(p Provider, k int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := p.NumUsers()
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	for u := 0; u < n; u++ {
		picked := map[int]bool{}
		for len(picked) < k && len(picked) < n-1 {
			v := rng.Intn(n)
			if v == u || picked[v] {
				continue
			}
			picked[v] = true
			g.Neighbors[u] = append(g.Neighbors[u], Neighbor{ID: int32(v), Sim: p.Similarity(u, v)})
		}
		sort.Slice(g.Neighbors[u], func(i, j int) bool { return g.Neighbors[u][i].Sim > g.Neighbors[u][j].Sim })
	}
	return g
}

func TestLSHQuality(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, stats := LSH(d.Profiles, p, k, LSHOptions{Seed: 6})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Comparisons == 0 {
		t.Error("LSH compared nothing")
	}
	if q := Quality(g, exact, p); q < 0.7 {
		t.Errorf("LSH quality = %.3f, want ≥ 0.7", q)
	}
}

func TestLSHMoreHashesImproveQuality(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g1, _ := LSH(d.Profiles, p, k, LSHOptions{Hashes: 1, Seed: 7})
	g16, _ := LSH(d.Profiles, p, k, LSHOptions{Hashes: 16, Seed: 7})
	q1, q16 := Quality(g1, exact, p), Quality(g16, exact, p)
	if q16 < q1 {
		t.Errorf("16 hashes (%.3f) worse than 1 hash (%.3f)", q16, q1)
	}
}

func TestLSHEmptyProfilesSkipped(t *testing.T) {
	ps := []profile.Profile{profile.New(1, 2), nil, profile.New(1, 3)}
	p := NewExplicitProvider(ps)
	g, _ := LSH(ps, p, 2, LSHOptions{Seed: 8})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Neighbors[1]) != 0 {
		t.Errorf("empty-profile user got neighbors: %v", g.Neighbors[1])
	}
}

func TestLSHExplicitPermutationsMatchQuality(t *testing.T) {
	// The paper-faithful explicit-permutation bucketing must produce
	// comparable quality to hashed permutations — it only changes the
	// setup cost profile, not the candidate semantics.
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	numItems := d.NumItems
	gExp, sExp := LSH(d.Profiles, p, k, LSHOptions{Seed: 6, NumItems: numItems})
	if err := gExp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sExp.Comparisons == 0 {
		t.Error("explicit-permutation LSH compared nothing")
	}
	qExp := Quality(gExp, exact, p)
	gHash, _ := LSH(d.Profiles, p, k, LSHOptions{Seed: 6})
	qHash := Quality(gHash, exact, p)
	if qExp < qHash-0.15 {
		t.Errorf("explicit-permutation quality %.3f far below hashed %.3f", qExp, qHash)
	}
}

func TestLSHUpdatesCounted(t *testing.T) {
	d := smallDataset(t)
	p := NewExplicitProvider(d.Profiles)
	_, stats := LSH(d.Profiles, p, 5, LSHOptions{Seed: 7})
	if stats.Updates == 0 {
		t.Error("LSH recorded no neighborhood updates")
	}
	_, bfStats := BruteForce(p, 5, Options{})
	if bfStats.Updates == 0 {
		t.Error("BruteForce recorded no neighborhood updates")
	}
}

func TestLSHProviderMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched provider accepted")
		}
	}()
	LSH(fourUsers(), NewExplicitProvider(fourUsers()[:2]), 2, LSHOptions{})
}

// TestGoldFingerEndToEnd is the paper's headline result in miniature: every
// algorithm run over SHFs must produce a graph whose quality (measured with
// exact similarities) stays close to the native run.
func TestGoldFingerEndToEnd(t *testing.T) {
	d := smallDataset(t)
	exactP := NewExplicitProvider(d.Profiles)
	scheme := core.MustScheme(1024, 42)
	shfP := NewSHFProvider(scheme, d.Profiles)
	const k = 10
	exact, _ := BruteForce(exactP, k, Options{})

	runs := map[string]func() *Graph{
		"bruteforce": func() *Graph { g, _ := BruteForce(shfP, k, Options{}); return g },
		"hyrec":      func() *Graph { g, _ := Hyrec(shfP, k, Options{Seed: 9}); return g },
		"nndescent":  func() *Graph { g, _ := NNDescent(shfP, k, Options{Seed: 9}); return g },
		"lsh":        func() *Graph { g, _ := LSH(d.Profiles, shfP, k, LSHOptions{Seed: 9}); return g },
	}
	for name, run := range runs {
		g := run()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		q := Quality(g, exact, exactP)
		if q < 0.75 {
			t.Errorf("%s with GoldFinger: quality = %.3f, want ≥ 0.75", name, q)
		}
	}
}
