package knn

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

// clusteredProfiles generates community-structured profiles via the
// repo's synthetic dataset generator — the similarity topology real
// datasets have and the one graph navigation needs: random flat profiles
// give the greedy descent no gradient to follow, while fully disjoint
// clusters shatter the KNN graph into unreachable components. The Zipf
// global pool keeps communities overlapping enough to navigate between.
// extra profiles past n are held-out query users from the same
// distribution.
func clusteredProfiles(n, extra int, seed int64) []profile.Profile {
	total := n + extra
	scale := float64(total+2) / float64(dataset.ML10M.Users)
	ds := dataset.Generate(dataset.ML10M, scale, seed)
	if len(ds.Profiles) < total {
		panic("clusteredProfiles: generator produced too few users")
	}
	return ds.Profiles[:total]
}

// searchFixture packs n clustered users, builds their exact KNN graph
// (already symmetrized for navigation) and returns held-out query
// fingerprints.
func searchFixture(t testing.TB, n, k, queries int) (*core.PackedCorpus, *Graph, []core.Fingerprint) {
	t.Helper()
	profiles := clusteredProfiles(n, queries, 11)
	scheme := core.MustScheme(1024, 11)
	corpus := scheme.PackProfiles(profiles[:n], 0)
	provider := NewPackedSHFProvider(corpus)
	g, _ := BruteForce(provider, k, Options{})
	qs := make([]core.Fingerprint, queries)
	for i := range qs {
		qs[i] = scheme.Fingerprint(profiles[n+i])
	}
	return corpus, g.Navigable(provider), qs
}

// scanTopK is the ground truth: the exact linear scan the graph search is
// judged against.
func scanTopK(corpus *core.PackedCorpus, q core.Fingerprint, k int) []Neighbor {
	return TopKRange(corpus.NumUsers(), k, 1, func(lo, hi int, out []float64) {
		corpus.JaccardQueryInto(q, lo, hi, out)
	})
}

func recallAt(got, want []Neighbor) float64 {
	if len(want) == 0 {
		return 1
	}
	in := map[int32]bool{}
	for _, nb := range got {
		in[nb.ID] = true
	}
	hits := 0
	for _, nb := range want {
		if in[nb.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}

func TestNavigable(t *testing.T) {
	if (*Graph)(nil).Navigable(nil) != nil {
		t.Error("nil graph must symmetrize to nil")
	}
	g := &Graph{K: 2, Neighbors: [][]Neighbor{
		{{ID: 1, Sim: 0.5}, {ID: 2, Sim: 0.25}},
		{{ID: 0, Sim: 0.5}},
		{},
	}}
	nav := g.Navigable(nil)
	want := [][]Neighbor{
		{{ID: 1, Sim: 0.5}, {ID: 2, Sim: 0.25}}, // mutual 0↔1 deduplicated
		{{ID: 0, Sim: 0.5}},
		{{ID: 0, Sim: 0.25}}, // reverse edge of 0→2
	}
	for u := range want {
		if len(nav.Neighbors[u]) != len(want[u]) {
			t.Fatalf("node %d: %+v, want %+v", u, nav.Neighbors[u], want[u])
		}
		for i := range want[u] {
			if nav.Neighbors[u][i] != want[u][i] {
				t.Fatalf("node %d: %+v, want %+v", u, nav.Neighbors[u], want[u])
			}
		}
	}
	// The original graph must be untouched.
	if len(g.Neighbors[2]) != 0 || len(g.Neighbors[0]) != 2 {
		t.Error("Navigable mutated its receiver")
	}
}

// navTestProvider serves a fixed similarity function; only the pairs the
// diversity heuristic consults need to be defined.
type navTestProvider struct {
	n   int
	sim func(u, v int) float64
}

func (p navTestProvider) NumUsers() int               { return p.n }
func (p navTestProvider) Similarity(u, v int) float64 { return p.sim(u, v) }

// TestNavigableDiversity: over the degree cap, a best-first cap keeps only
// the strongest (mutually near-duplicate) edges, while the diversity
// heuristic must sacrifice one of them to retain the weak long-range edge
// that keeps distant regions reachable.
func TestNavigableDiversity(t *testing.T) {
	const n = 100
	const far = int32(99)
	g := &Graph{K: 2, Neighbors: make([][]Neighbor, n)}
	// Hub 0: 70 near-duplicate neighbors (sims 0.80 down to 0.11) plus one
	// distant neighbor at 0.1 — 71 candidates against the cap of 64.
	for i := int32(1); i <= 70; i++ {
		g.Neighbors[0] = append(g.Neighbors[0], Neighbor{ID: i, Sim: 0.80 - float64(i-1)*0.01})
	}
	g.Neighbors[0] = append(g.Neighbors[0], Neighbor{ID: far, Sim: 0.1})

	p := navTestProvider{n: n, sim: func(u, v int) float64 {
		if u == int(far) || v == int(far) {
			return 0 // the far node resembles nothing else
		}
		return 0.9 // the near-duplicates resemble each other
	}}

	hasFar := func(nav *Graph) bool {
		for _, nb := range nav.Neighbors[0] {
			if nb.ID == far {
				return true
			}
		}
		return false
	}
	if hasFar(g.Navigable(nil)) {
		t.Fatal("best-first cap kept the weakest edge; the fixture does not exercise the cap")
	}
	nav := g.Navigable(p)
	if len(nav.Neighbors[0]) != 64 {
		t.Fatalf("hub degree %d, want the cap 64", len(nav.Neighbors[0]))
	}
	if !hasFar(nav) {
		t.Error("diversity selection dropped the long-range edge the cap exists to protect")
	}
	for i := 1; i < len(nav.Neighbors[0]); i++ {
		if ranksAbove(nav.Neighbors[0][i], nav.Neighbors[0][i-1]) {
			t.Fatalf("adjacency not sorted best-first at %d", i)
		}
	}
}

func TestGraphSearchFindsScanNeighbors(t *testing.T) {
	const n, k = 2000, 10
	corpus, g, qs := searchFixture(t, n, k, 20)
	var recall float64
	for _, q := range qs {
		want := scanTopK(corpus, q, k)
		got, stats, err := GraphSearch(g, corpus.NewQueryScorer(q), k, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("result has %d neighbors, want %d", len(got), k)
		}
		for i := 1; i < len(got); i++ {
			if ranksAbove(got[i], got[i-1]) {
				t.Fatalf("result not sorted at %d: %+v", i, got)
			}
		}
		if stats.Scored >= n {
			t.Errorf("scored %d of %d nodes; the search degenerated into a scan", stats.Scored, n)
		}
		recall += recallAt(got, want)
	}
	recall /= float64(len(qs))
	if recall < 0.9 {
		t.Errorf("mean recall@%d = %.3f, want >= 0.9", k, recall)
	}
}

func TestGraphSearchDeterministic(t *testing.T) {
	corpus, g, qs := searchFixture(t, 400, 5, 1)
	scorer := corpus.NewQueryScorer(qs[0])
	first, stats1, err := GraphSearch(g, scorer, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		got, stats, err := GraphSearch(g, scorer, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d results vs %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: result diverged at %d: %+v vs %+v", trial, i, got[i], first[i])
			}
		}
		if stats != stats1 {
			t.Fatalf("trial %d: stats diverged: %+v vs %+v", trial, stats, stats1)
		}
	}
}

// TestGraphSearchKGreaterThanN: k beyond the node count must clamp, not
// panic or return duplicates.
func TestGraphSearchKGreaterThanN(t *testing.T) {
	corpus, g, qs := searchFixture(t, 30, 5, 1)
	got, _, err := GraphSearch(g, corpus.NewQueryScorer(qs[0]), 100, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 30 {
		t.Fatalf("got %d results from a 30-node graph", len(got))
	}
	seen := map[int32]bool{}
	for _, nb := range got {
		if seen[nb.ID] {
			t.Fatalf("duplicate neighbor %d", nb.ID)
		}
		seen[nb.ID] = true
	}
}

func TestGraphSearchDegenerateInputs(t *testing.T) {
	corpus, g, qs := searchFixture(t, 30, 5, 1)
	oracle := corpus.NewQueryScorer(qs[0])
	for name, tc := range map[string]struct {
		g *Graph
		k int
	}{
		"nil graph":   {nil, 5},
		"empty graph": {&Graph{K: 5}, 5},
		"k=0":         {g, 0},
		"k<0":         {g, -3},
	} {
		got, _, err := GraphSearch(tc.g, oracle, tc.k, SearchOptions{})
		if err != nil || got != nil {
			t.Errorf("%s: got (%v, %v), want (nil, nil)", name, got, err)
		}
	}
}

// TestGraphSearchIsolatedNodesReturnShort: when the descent cannot reach k
// distinct nodes (edgeless graph, seeds only), the result must come back
// short — the signal the service uses to fall back to a scan — never
// padded or fabricated.
func TestGraphSearchIsolatedNodesReturnShort(t *testing.T) {
	corpus, _, qs := searchFixture(t, 100, 5, 1)
	edgeless := &Graph{K: 5, Neighbors: make([][]Neighbor, 100)}
	got, stats, err := GraphSearch(edgeless, corpus.NewQueryScorer(qs[0]), 20, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 8 default seeds are reachable.
	if len(got) >= 20 {
		t.Fatalf("edgeless graph returned %d results for k=20", len(got))
	}
	if len(got) == 0 {
		t.Fatal("seeds themselves must still be scored")
	}
	if stats.Hops != len(got) {
		// Every scored seed is expanded once (empty neighbor list).
		t.Logf("hops=%d scored=%d", stats.Hops, stats.Scored)
	}
}

// TestGraphSearchCancellation: a context canceled before or during the
// search must surface ctx.Err() with no partial result.
func TestGraphSearchCancellation(t *testing.T) {
	_, g, _ := searchFixture(t, 400, 5, 1)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	got, _, err := GraphSearch(g, OracleFunc(func(int32) float64 { return 0 }), 5, SearchOptions{Ctx: pre})
	if err != context.Canceled || got != nil {
		t.Fatalf("pre-canceled: got (%v, %v), want (nil, context.Canceled)", got, err)
	}

	// Cancel mid-search, at several depths: after `stop` oracle calls the
	// context dies, and the search must return ctx.Err() within one hop.
	for _, stop := range []int{1, 3, 20} {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		oracle := OracleFunc(func(v int32) float64 {
			calls++
			if calls == stop {
				cancel()
			}
			return 1 / float64(v+2)
		})
		got, _, err := GraphSearch(g, oracle, 5, SearchOptions{Ctx: ctx})
		cancel()
		if err != context.Canceled {
			t.Fatalf("stop=%d: err = %v, want context.Canceled", stop, err)
		}
		if got != nil {
			t.Fatalf("stop=%d: partial result %v returned alongside ctx.Err()", stop, got)
		}
	}
}

// TestGraphSearchPooledScratch guards the sync.Pool: steady-state queries
// must allocate O(k) (the returned slice and the sort), never O(n) visited
// arrays or heaps.
func TestGraphSearchPooledScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unmeasurable under -race: sync.Pool deliberately drops a fraction of Puts there to flush out lifetime bugs")
	}
	corpus, g, qs := searchFixture(t, 600, 10, 1)
	scorer := corpus.NewQueryScorer(qs[0])
	// A GC cycle clears sync.Pool victim caches, so a collection landing
	// inside the measured loop re-charges the scratch to the pool's
	// fresh-allocation path and inflates the count — that is pool
	// semantics, not a pooling bug. Park the heap first and hold GC off
	// for the measurement so the guard sees the steady state.
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm the pool so the first-use scratch growth is not measured.
	if _, _, err := GraphSearch(g, scorer, 10, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := GraphSearch(g, scorer, 10, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("GraphSearch allocates %.1f objects per query; scratch is not being pooled", allocs)
	}
}

// TestGraphScanParity10k is the scan-vs-graph parity floor of `make
// racecheck`: at n=10k on an NNDescent-built graph (the builder the query
// bench and the serving recommendation use), graph-mode recall@10 against
// the exact scan must stay at or above 0.9 while touching a small
// fraction of the corpus.
func TestGraphScanParity10k(t *testing.T) {
	const n, k, queries = 10000, 10, 30
	profiles := clusteredProfiles(n, queries, 23)
	scheme := core.MustScheme(1024, 23)
	corpus := scheme.PackProfiles(profiles[:n], 0)
	provider := NewPackedSHFProvider(corpus)
	built, _ := NNDescent(provider, k, Options{Seed: 23})
	g := built.Navigable(provider)

	var recall, frac float64
	for i := 0; i < queries; i++ {
		q := scheme.Fingerprint(profiles[n+i])
		want := scanTopK(corpus, q, k)
		got, stats, err := GraphSearch(g, corpus.NewQueryScorer(q), k, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		recall += recallAt(got, want)
		frac += float64(stats.Scored) / float64(n)
	}
	recall /= queries
	frac /= queries
	t.Logf("n=%d: recall@%d = %.3f, %.1f%% of corpus scored per query", n, k, recall, 100*frac)
	if recall < 0.9 {
		t.Errorf("graph-mode recall@%d = %.3f, below the 0.9 parity floor", k, recall)
	}
	if frac > 0.5 {
		t.Errorf("graph search scored %.0f%% of the corpus per query; not sublinear", 100*frac)
	}
}
