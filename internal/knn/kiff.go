package knn

import (
	"sort"
	"sync"
	"sync/atomic"

	"goldfinger/internal/profile"
)

// KIFFOptions configures the KIFF construction.
type KIFFOptions struct {
	// CandidateFactor bounds the candidates evaluated per user to
	// CandidateFactor·k (ranked by co-rated item count). 0 means 5.
	CandidateFactor int
	// MaxItemDegree skips items rated by more than this many users when
	// building candidate sets (hub items dominate cost and carry little
	// similarity signal). 0 means no limit.
	MaxItemDegree int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
}

func (o KIFFOptions) candidateFactor() int {
	if o.CandidateFactor <= 0 {
		return 5
	}
	return o.CandidateFactor
}

// KIFF constructs an approximate KNN graph with the candidate-filtering
// strategy of Boutet, Kermarrec, Mittal and Taïani (ICDE 2016), which the
// paper discusses as the sparse-dataset specialist (§6): exploit the
// bipartite structure and compute similarities only between users who
// share at least one item, ranked by how many items they co-rate. On
// sparse datasets candidate sets are tiny and KIFF flies; on dense ones
// almost every pair co-rates something and the filter loses its bite —
// exactly the behaviour the paper reports. Like the other algorithms it
// takes a similarity Provider, so GoldFinger applies to it unchanged.
func KIFF(profiles []profile.Profile, p Provider, k int, opts KIFFOptions) (*Graph, Stats) {
	n := len(profiles)
	if p.NumUsers() != n {
		panic("knn: KIFF provider and profiles disagree on user count")
	}

	// Inverted index: item → users who rated it.
	index := map[profile.ItemID][]int32{}
	for u, prof := range profiles {
		for _, it := range prof {
			index[it] = append(index[it], int32(u))
		}
	}

	cp := NewCountingProvider(p)
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}

	maxCandidates := opts.candidateFactor() * k
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}

	var updates atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for u := 0; u < n; u++ {
			next <- u
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := map[int32]int{}
			for u := range next {
				clear(counts)
				for _, it := range profiles[u] {
					users := index[it]
					if opts.MaxItemDegree > 0 && len(users) > opts.MaxItemDegree {
						continue
					}
					for _, v := range users {
						if int(v) != u {
							counts[v]++
						}
					}
				}

				// Rank candidates by co-rated count, descending.
				type cand struct {
					id    int32
					count int
				}
				cands := make([]cand, 0, len(counts))
				for v, c := range counts {
					cands = append(cands, cand{id: v, count: c})
				}
				sort.Slice(cands, func(i, j int) bool {
					if cands[i].count != cands[j].count {
						return cands[i].count > cands[j].count
					}
					return cands[i].id < cands[j].id
				})
				if len(cands) > maxCandidates {
					cands = cands[:maxCandidates]
				}
				for _, c := range cands {
					s := cp.Similarity(u, int(c.id))
					if nhs[u].insert(c.id, s) {
						updates.Add(1)
					}
					// The pair is paid for; the candidate benefits too.
					if nhs[c.id].insert(int32(u), s) {
						updates.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	return finalize(k, nhs), Stats{Comparisons: cp.Comparisons(), Updates: updates.Load()}
}
