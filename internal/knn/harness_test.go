package knn

// Cross-algorithm correctness harness: every approximate builder is held
// to a fixed quality floor against the exact BruteForce graph on a seeded
// synthetic dataset, in both native and GoldFinger (SHF) mode; the two
// brute-force implementations are held to tie-tolerant equivalence; and
// every builder must honor context cancellation promptly. The whole file
// runs under -race via `make check` / `make racecheck`.

import (
	"context"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/obs"
)

// harnessDataset is the fixed corpus every harness case runs on: seeded,
// so thresholds are deterministic, and clustered like ML-1M so the greedy
// builders have structure to exploit.
func harnessDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.ML1M, 0.03, 171) // ≈180 users
}

// TestHarnessApproximateQualityFloors is the quality half of the harness:
// for each approximate algorithm × provider mode, Quality (the paper's
// Eq. 3 avg-similarity ratio vs the exact BruteForce graph, measured with
// exact similarities) must clear a fixed floor. The floors are set a few
// points under steady observed values so a real regression trips them but
// seed jitter does not.
func TestHarnessApproximateQualityFloors(t *testing.T) {
	d := harnessDataset(t)
	exactP := NewExplicitProvider(d.Profiles)
	scheme := core.MustScheme(1024, 99)
	shfP := NewSHFProvider(scheme, d.Profiles)
	const k = 10
	exact, exactStats := BruteForce(exactP, k, Options{})
	n := exactP.NumUsers()
	if want := int64(n) * int64(n-1) / 2; exactStats.Comparisons != want {
		t.Fatalf("exact baseline did %d comparisons, want %d", exactStats.Comparisons, want)
	}

	providers := map[string]Provider{"native": exactP, "goldfinger": shfP}
	cases := []struct {
		algo  string
		build func(p Provider) (*Graph, Stats)
		// floor per provider mode: SHF estimation noise costs a few points.
		floor map[string]float64
	}{
		{
			algo:  "hyrec",
			build: func(p Provider) (*Graph, Stats) { return Hyrec(p, k, Options{Seed: 1}) },
			floor: map[string]float64{"native": 0.90, "goldfinger": 0.85},
		},
		{
			algo:  "nndescent",
			build: func(p Provider) (*Graph, Stats) { return NNDescent(p, k, Options{Seed: 1}) },
			floor: map[string]float64{"native": 0.90, "goldfinger": 0.85},
		},
		{
			algo: "lsh",
			build: func(p Provider) (*Graph, Stats) {
				return LSH(d.Profiles, p, k, LSHOptions{Seed: 1})
			},
			floor: map[string]float64{"native": 0.70, "goldfinger": 0.70},
		},
		{
			// At harness scale every view collapses to one cluster, so the
			// scan is exact and quality should effectively match BruteForce.
			algo:  "cluster",
			build: func(p Provider) (*Graph, Stats) { return ClusterConquer(p, k, Options{Seed: 1}) },
			floor: map[string]float64{"native": 0.95, "goldfinger": 0.90},
		},
	}
	for _, tc := range cases {
		for mode, p := range providers {
			t.Run(tc.algo+"/"+mode, func(t *testing.T) {
				g, stats := tc.build(p)
				if err := g.Validate(); err != nil {
					t.Fatal(err)
				}
				if stats.Comparisons == 0 {
					t.Fatal("builder did no comparisons")
				}
				if q := Quality(g, exact, exactP); q < tc.floor[mode] {
					t.Errorf("%s/%s quality = %.3f, floor %.2f", tc.algo, mode, q, tc.floor[mode])
				}
			})
		}
	}
}

// TestHarnessBruteForceLegacyEquivalence is the exact half: the blocked
// row-tile BruteForce and the retained LegacyBruteForce baseline must
// produce equivalent graphs. Neighbor identity may legitimately differ on
// similarity ties, so equivalence is per-user equality of the sorted
// similarity sequences plus identical comparison counts.
func TestHarnessBruteForceLegacyEquivalence(t *testing.T) {
	d := harnessDataset(t)
	for name, p := range map[string]Provider{
		"native":     NewExplicitProvider(d.Profiles),
		"goldfinger": NewSHFProvider(core.MustScheme(1024, 99), d.Profiles),
	} {
		t.Run(name, func(t *testing.T) {
			const k = 7
			g, stats := BruteForce(p, k, Options{})
			lg, lstats := LegacyBruteForce(p, k, Options{})
			if stats.Comparisons != lstats.Comparisons {
				t.Errorf("comparisons: blocked %d, legacy %d", stats.Comparisons, lstats.Comparisons)
			}
			if g.NumUsers() != lg.NumUsers() {
				t.Fatalf("user counts differ: %d vs %d", g.NumUsers(), lg.NumUsers())
			}
			for u := range g.Neighbors {
				a, b := g.Neighbors[u], lg.Neighbors[u]
				if len(a) != len(b) {
					t.Fatalf("user %d: %d neighbors vs legacy %d", u, len(a), len(b))
				}
				for i := range a {
					if a[i].Sim != b[i].Sim {
						t.Fatalf("user %d rank %d: sim %g vs legacy %g", u, i, a[i].Sim, b[i].Sim)
					}
				}
			}
		})
	}
}

// TestHarnessCancellationIsPrompt: with an already-canceled context every
// builder must return almost immediately — well under the work of a full
// build — and still hand back a structurally valid graph.
func TestHarnessCancellationIsPrompt(t *testing.T) {
	d := harnessDataset(t)
	p := NewExplicitProvider(d.Profiles)
	n := p.NumUsers()
	full := int64(n) * int64(n-1) / 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	const k = 10
	cases := map[string]func() (*Graph, Stats){
		"bruteforce": func() (*Graph, Stats) { return BruteForce(p, k, Options{Ctx: ctx}) },
		"hyrec":      func() (*Graph, Stats) { return Hyrec(p, k, Options{Seed: 1, Ctx: ctx}) },
		"nndescent":  func() (*Graph, Stats) { return NNDescent(p, k, Options{Seed: 1, Ctx: ctx}) },
		"lsh": func() (*Graph, Stats) {
			return LSH(d.Profiles, p, k, LSHOptions{Seed: 1, Ctx: ctx})
		},
		"cluster": func() (*Graph, Stats) { return ClusterConquer(p, k, Options{Seed: 1, Ctx: ctx}) },
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			g, stats := build()
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.NumUsers() != n {
				t.Errorf("canceled build returned %d users, want %d", g.NumUsers(), n)
			}
			// A canceled build must do almost none of the full scan's work.
			// BruteForce may finish the blocks already claimed; everything
			// else stops at the init/bucket boundary.
			if stats.Comparisons >= full/4 {
				t.Errorf("canceled %s still did %d of %d comparisons", name, stats.Comparisons, full)
			}
		})
	}
}

// TestHarnessMidBuildCancellationStopsIterations: canceling between
// iterations must stop the iterative builders early without corrupting the
// graph (the service-level "stops within one block" contract, exercised at
// the library layer).
func TestHarnessMidBuildCancellationStopsIterations(t *testing.T) {
	d := harnessDataset(t)
	p := NewExplicitProvider(d.Profiles)
	ctx, cancel := context.WithCancel(context.Background())
	counted := &cancelAfterProvider{Provider: p, cancel: cancel, after: 2000}
	g, stats := Hyrec(counted, 10, Options{Seed: 1, Ctx: ctx, Delta: -1, MaxIterations: 50})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Iterations >= 50 {
		t.Errorf("cancellation did not stop iterations: ran all %d", stats.Iterations)
	}
}

// cancelAfterProvider cancels its context after a fixed number of
// similarity calls — a deterministic way to cancel mid-build.
type cancelAfterProvider struct {
	Provider
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (c *cancelAfterProvider) Similarity(u, v int) float64 {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.Provider.Similarity(u, v)
}

// TestHarnessObsInstrumentation: a builder handed a registry must publish
// comparison counts matching its Stats and per-phase duration histograms.
func TestHarnessObsInstrumentation(t *testing.T) {
	d := harnessDataset(t)
	p := NewExplicitProvider(d.Profiles)
	const k = 5

	cases := []struct {
		name   string
		build  func(reg *obs.Registry) Stats
		phases []string
	}{
		{
			name: "bruteforce",
			build: func(reg *obs.Registry) Stats {
				_, s := BruteForce(p, k, Options{Obs: reg})
				return s
			},
			phases: []string{"scan", "merge"},
		},
		{
			name: "hyrec",
			build: func(reg *obs.Registry) Stats {
				_, s := Hyrec(p, k, Options{Seed: 1, Obs: reg})
				return s
			},
			phases: []string{"init", "iterate"},
		},
		{
			name: "nndescent",
			build: func(reg *obs.Registry) Stats {
				_, s := NNDescent(p, k, Options{Seed: 1, Obs: reg})
				return s
			},
			phases: []string{"init", "iterate"},
		},
		{
			name: "lsh",
			build: func(reg *obs.Registry) Stats {
				_, s := LSH(d.Profiles, p, k, LSHOptions{Seed: 1, Obs: reg})
				return s
			},
			phases: []string{"bucket", "scan"},
		},
		{
			name: "cluster",
			build: func(reg *obs.Registry) Stats {
				_, s := ClusterConquer(p, k, Options{Seed: 1, Obs: reg})
				return s
			},
			phases: []string{"bucket", "scan", "merge", "refine"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			stats := tc.build(reg)
			if got := reg.Counter(MetricComparisons).Value(); got != stats.Comparisons {
				t.Errorf("registry comparisons = %d, stats say %d", got, stats.Comparisons)
			}
			for _, phase := range tc.phases {
				h := reg.Histogram("build.phase."+phase+".seconds", nil)
				if h.Count() == 0 {
					t.Errorf("phase %s recorded no duration", phase)
				}
			}
			if done, total := reg.Gauge(MetricProgressDone).Value(), reg.Gauge(MetricProgressTotal).Value(); done == 0 || total == 0 {
				t.Errorf("progress gauges dead: done=%d total=%d", done, total)
			}
		})
	}
}

// TestHarnessOnlineChurnTracksBatchBuild is the online-maintenance half of
// the harness: an Online maintainer absorbs ≥10k interleaved inserts,
// deletes and overwrites, and the resulting live graph must match a
// from-scratch ClusterConquer build over the exact same final corpus —
// quality and recall within a small ε. This is the correctness bar for
// serving mutations without a rebuild.
func TestHarnessOnlineChurnTracksBatchBuild(t *testing.T) {
	scheme := core.MustScheme(1024, 99)
	pool := dataset.Generate(dataset.ML1M, 0.65, 171) // ≈3900 users
	fps := scheme.FingerprintAllParallel(pool.Profiles, 0)
	const (
		k         = 10
		base      = 400
		mutations = 10000
		epsilon   = 0.05
	)

	// Seed epoch: a batch build over the first `base` users, exactly how
	// the service hands a built epoch to the maintainer.
	baseFPs := append([]core.Fingerprint(nil), fps[:base]...)
	seedGraph, _ := ClusterConquer(&SHFProvider{Fingerprints: baseFPs}, k, Options{Seed: 1})
	o, err := NewOnline(seedGraph, nil, baseFPs, nil, k, 0)
	if err != nil {
		t.Fatal(err)
	}

	// cur mirrors the maintainer's per-node fingerprints so the final
	// corpus can be rebuilt from scratch for the comparison build.
	cur := append([]core.Fingerprint(nil), fps[:base]...)
	rng := rand.New(rand.NewSource(20260808))
	pickLive := func() int32 {
		s := o.Snapshot()
		for {
			id := int32(rng.Intn(len(cur)))
			if !s.Dead[id] {
				return id
			}
		}
	}
	overwrite := func() {
		id := pickLive()
		fp := fps[rng.Intn(len(fps))]
		if _, err := o.Overwrite(id, fp); err != nil {
			t.Fatal(err)
		}
		cur[id] = fp
	}
	next := base
	var inserts, deletes, overwrites int
	for m := 0; m < mutations; m++ {
		r := rng.Float64()
		switch {
		case r < 0.35: // insert; once the pool drains, mutate in place
			if next < len(fps) {
				id, _ := o.Insert(fps[next])
				if int(id) != len(cur) {
					t.Fatalf("insert %d got node id %d, want %d", m, id, len(cur))
				}
				cur = append(cur, fps[next])
				next++
				inserts++
			} else {
				overwrite()
				overwrites++
			}
		case r < 0.50 && o.Snapshot().Live > 50:
			if _, err := o.Delete(pickLive()); err != nil {
				t.Fatal(err)
			}
			deletes++
		default:
			overwrite()
			overwrites++
		}
	}
	s := o.Snapshot()
	if s.Seq != mutations {
		t.Fatalf("snapshot seq = %d after %d mutations", s.Seq, mutations)
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}

	liveG, liveFPs := liveSubgraph(s, cur)
	if len(liveFPs) != s.Live {
		t.Fatalf("live projection has %d nodes, snapshot says %d", len(liveFPs), s.Live)
	}
	p := &SHFProvider{Fingerprints: liveFPs}
	exact, _ := BruteForce(p, k, Options{})
	batch, _ := ClusterConquer(p, k, Options{Seed: 1})

	qOnline, qBatch := Quality(liveG, exact, p), Quality(batch, exact, p)
	rOnline, rBatch := Recall(liveG, exact), Recall(batch, exact)
	t.Logf("churn: %d inserts / %d deletes / %d overwrites → %d live; quality online %.3f batch %.3f; recall online %.3f batch %.3f",
		inserts, deletes, overwrites, s.Live, qOnline, qBatch, rOnline, rBatch)
	if qOnline < qBatch-epsilon {
		t.Errorf("online quality %.3f more than ε=%.2f below batch %.3f", qOnline, epsilon, qBatch)
	}
	if rOnline < rBatch-epsilon {
		t.Errorf("online recall %.3f more than ε=%.2f below batch %.3f", rOnline, epsilon, rBatch)
	}
}

// TestOnlineInsertLatencyFloor pins the serving-path cost of one online
// insert at realistic scale: against a 10k-node base graph, the p99 insert
// latency must stay in single-digit milliseconds. The graph search plus
// bounded reverse-edge repair is O(ef·k) per insert, independent of n —
// this floor catches an accidental O(n) scan sneaking into the mutation
// path. BENCH_knn.json's online_insert section tracks the n=100k number;
// this is the cheap every-`make onlinecheck` guard.
func TestOnlineInsertLatencyFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full 10k base graph")
	}
	scheme := core.MustScheme(1024, 99)
	d := dataset.Generate(dataset.ML1M, 1.70, 29) // ≈10.3k users
	fps := scheme.FingerprintAllParallel(d.Profiles, 0)
	const (
		k       = 10
		base    = 10000
		inserts = 200
	)
	if len(fps) < base+inserts {
		t.Fatalf("fixture has %d users, need %d", len(fps), base+inserts)
	}
	baseFPs := append([]core.Fingerprint(nil), fps[:base]...)
	g, _ := ClusterConquer(&SHFProvider{Fingerprints: baseFPs}, k, Options{Seed: 3})
	o, err := NewOnline(g, nil, baseFPs, nil, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	lat := make([]time.Duration, 0, inserts)
	for _, fp := range fps[base : base+inserts] {
		start := time.Now()
		o.Insert(fp)
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[len(lat)/2], lat[len(lat)*99/100]
	t.Logf("online insert at n=%d: p50 %v, p99 %v", base, p50, p99)
	if p99 > 25*time.Millisecond {
		t.Errorf("p99 insert latency %v at n=%d, want < 25ms", p99, base)
	}
}
