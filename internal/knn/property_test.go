package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"goldfinger/internal/dataset"
)

// TestNeighborhoodKeepsTopK: after an arbitrary insert sequence, the
// neighborhood holds exactly the k best distinct candidates. The
// similarity is a function of the candidate ID, as it is in every real
// use (the same pair always has the same similarity).
func TestNeighborhoodKeepsTopK(t *testing.T) {
	simOf := func(id int32) float64 {
		return float64((uint32(id)*2654435761)%1000) / 1000
	}
	f := func(ids []uint16, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		nh := newNeighborhood(k)
		seen := map[int32]float64{}
		for _, idRaw := range ids {
			id := int32(idRaw % 100)
			sim := simOf(id)
			seen[id] = sim
			nh.insert(id, sim)
		}
		// Model: top-k of the distinct candidates by similarity.
		want := make([]float64, 0, len(seen))
		for _, s := range seen {
			want = append(want, s)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if len(want) > k {
			want = want[:k]
		}
		got := make([]float64, 0, k)
		for _, nb := range nh.snapshot() {
			got = append(got, nb.Sim)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(got)))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQualityBounds: any valid graph's quality against the exact graph is
// in (0, 1] — the exact graph maximizes average similarity by definition.
func TestQualityBounds(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 31)
	p := NewExplicitProvider(d.Profiles)
	const k = 5
	exact, _ := BruteForce(p, k, Options{})
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(p, k, rng.Int63())
		q := Quality(g, exact, p)
		if q <= 0 || q > 1+1e-9 {
			t.Fatalf("random graph quality %g out of (0,1]", q)
		}
	}
}

// TestApproxAlgorithmsNeverExceedExactAvgSim: the exact graph's average
// similarity upper-bounds every approximation (per-user top-k maximality).
func TestApproxAlgorithmsNeverExceedExactAvgSim(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 32)
	p := NewExplicitProvider(d.Profiles)
	const k = 8
	exact, _ := BruteForce(p, k, Options{})
	bound := exact.AvgSimilarity(p) + 1e-9
	graphs := map[string]*Graph{}
	graphs["hyrec"], _ = Hyrec(p, k, Options{Seed: 32})
	graphs["nndescent"], _ = NNDescent(p, k, Options{Seed: 32})
	graphs["lsh"], _ = LSH(d.Profiles, p, k, LSHOptions{Seed: 32})
	graphs["kiff"], _ = KIFF(d.Profiles, p, k, KIFFOptions{})
	graphs["bisection"], _ = RecursiveBisection(d.Profiles, p, k, BisectionOptions{LeafSize: 50, Seed: 32})
	for name, g := range graphs {
		if avg := g.AvgSimilarity(p); avg > bound {
			t.Errorf("%s: avg similarity %.6f exceeds exact bound %.6f", name, avg, bound)
		}
	}
}

// TestStoredSimsMatchProvider: the similarity stored on each edge equals
// the provider's value (no stale or corrupted caching anywhere).
func TestStoredSimsMatchProvider(t *testing.T) {
	d := dataset.Generate(dataset.DBLP, 0.02, 33)
	p := NewExplicitProvider(d.Profiles)
	const k = 6
	graphs := map[string]*Graph{}
	graphs["bruteforce"], _ = BruteForce(p, k, Options{})
	graphs["hyrec"], _ = Hyrec(p, k, Options{Seed: 33})
	graphs["nndescent"], _ = NNDescent(p, k, Options{Seed: 33})
	graphs["lsh"], _ = LSH(d.Profiles, p, k, LSHOptions{Seed: 33})
	graphs["kiff"], _ = KIFF(d.Profiles, p, k, KIFFOptions{})
	for name, g := range graphs {
		for u, nbrs := range g.Neighbors {
			for _, nb := range nbrs {
				if want := p.Similarity(u, int(nb.ID)); math.Abs(nb.Sim-want) > 1e-12 {
					t.Fatalf("%s: edge (%d,%d) stores %g, provider says %g", name, u, nb.ID, nb.Sim, want)
				}
			}
		}
	}
}

// TestDeterministicGivenSeed: all seeded algorithms reproduce identical
// graphs for identical seeds (single worker removes scheduling races in
// update order).
func TestDeterministicGivenSeed(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 34)
	p := NewExplicitProvider(d.Profiles)
	const k = 5
	builders := map[string]func() *Graph{
		"hyrec": func() *Graph {
			g, _ := Hyrec(p, k, Options{Seed: 34, Workers: 1})
			return g
		},
		"lsh": func() *Graph {
			g, _ := LSH(d.Profiles, p, k, LSHOptions{Seed: 34, Workers: 1})
			return g
		},
	}
	for name, build := range builders {
		a, b := build(), build()
		for u := range a.Neighbors {
			if len(a.Neighbors[u]) != len(b.Neighbors[u]) {
				t.Fatalf("%s: user %d neighborhood size differs across runs", name, u)
			}
			for i := range a.Neighbors[u] {
				if a.Neighbors[u][i] != b.Neighbors[u][i] {
					t.Fatalf("%s: user %d differs across identical-seed runs", name, u)
				}
			}
		}
	}
}
