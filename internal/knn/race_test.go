//go:build race

package knn

// raceEnabled lets heavyweight tests skip themselves under the race
// detector, where their similarity-kernel inner loops run an order of
// magnitude slower without exercising any additional synchronization.
const raceEnabled = true
