package knn

import (
	"sort"
	"sync"
)

// ranksBelow is the strict (sim desc, id asc) total order of TopK: a ranks
// below b when its similarity is lower, or equal with a higher id. Unlike
// neighborhood.insert — whose tie handling is free to be arbitrary because
// the graph builders only need *some* top-k set — a total order makes the
// selected set unique, so TopK is deterministic at the k-th-place boundary.
func ranksBelow(a, b Neighbor) bool {
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.ID > b.ID
}

// TopK returns the (at most) k candidates among 0..n-1 with the highest
// similarity under sim, using the same bounded linear-scan selection as
// the graph builders' neighborhoods (O(k) per candidate, allocation-free
// per shard). Candidates are scanned by `workers` goroutines (0 means
// GOMAXPROCS) over contiguous index shards, so sim must be safe for
// concurrent use.
//
// The result is sorted by decreasing similarity with ties broken by
// increasing id, and the selection at the k-th-place boundary also prefers
// lower ids — the output is therefore fully deterministic and independent
// of the worker count.
func TopK(n, k, workers int, sim func(i int) float64) []Neighbor {
	return TopKRange(n, k, workers, func(lo, hi int, out []float64) {
		for i := lo; i < hi; i++ {
			out[i-lo] = sim(i)
		}
	})
}

// topkColTile is the candidate-range width per batched kernel call; it
// matches the packed-corpus tile so one call streams an L1-resident block.
const topkColTile = 256

// TopKRange is TopK over a range-batched similarity kernel: sim fills
// out[0:hi-lo] with the similarities of candidates [lo, hi). A kernel
// backed by core.PackedCorpus (e.g. JaccardQueryInto) streams one
// contiguous buffer per tile instead of dispatching a closure per
// candidate. Selection, tie rules, and determinism are identical to TopK —
// the two return the same result whenever the kernels agree pointwise.
func TopKRange(n, k, workers int, sim func(lo, hi int, out []float64)) []Neighbor {
	if n <= 0 || k <= 0 {
		return nil
	}
	// At most n results are possible, so clamping is behavior-preserving —
	// and it keeps a caller-supplied huge k (e.g. straight from a query
	// parameter) from panicking the cap-k preallocations below.
	if k > n {
		k = n
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}

	// Each worker selects its shard-local top-k under the total order;
	// the union of shard winners contains every global winner.
	locals := make([][]Neighbor, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			nh := make([]Neighbor, 0, k)
			// worst caches the index of nh's minimum under the total order
			// (valid once nh is full), so the common reject is one compare
			// and the O(k) rescan only runs on an accepted candidate.
			worst := 0
			buf := make([]float64, topkColTile)
			for tlo := lo; tlo < hi; tlo += topkColTile {
				thi := min(tlo+topkColTile, hi)
				tile := buf[:thi-tlo]
				sim(tlo, thi, tile)
				for i := tlo; i < thi; i++ {
					cand := Neighbor{ID: int32(i), Sim: tile[i-tlo]}
					if len(nh) < k {
						nh = append(nh, cand)
						if len(nh) == k {
							worst = findWorst(nh)
						}
						continue
					}
					if ranksBelow(nh[worst], cand) {
						nh[worst] = cand
						worst = findWorst(nh)
					}
				}
			}
			locals[w] = nh
		}(w, lo, hi)
	}
	wg.Wait()

	merged := make([]Neighbor, 0, workers*k)
	for _, l := range locals {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Sim != merged[j].Sim {
			return merged[i].Sim > merged[j].Sim
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
