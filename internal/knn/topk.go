package knn

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// ranksBelow is the strict (sim desc, id asc) total order of TopK: a ranks
// below b when its similarity is lower, or equal with a higher id. Unlike
// neighborhood.insert — whose tie handling is free to be arbitrary because
// the graph builders only need *some* top-k set — a total order makes the
// selected set unique, so TopK is deterministic at the k-th-place boundary.
func ranksBelow(a, b Neighbor) bool {
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.ID > b.ID
}

// TopK returns the (at most) k candidates among 0..n-1 with the highest
// similarity under sim, using the same bounded linear-scan selection as
// the graph builders' neighborhoods (O(k) per candidate, allocation-free
// per shard). Candidates are scanned by `workers` goroutines (0 means
// GOMAXPROCS) over contiguous index shards, so sim must be safe for
// concurrent use.
//
// The result is sorted by decreasing similarity with ties broken by
// increasing id, and the selection at the k-th-place boundary also prefers
// lower ids — the output is therefore fully deterministic and independent
// of the worker count.
func TopK(n, k, workers int, sim func(i int) float64) []Neighbor {
	return TopKRange(n, k, workers, func(lo, hi int, out []float64) {
		for i := lo; i < hi; i++ {
			out[i-lo] = sim(i)
		}
	})
}

// TopKCtx is TopK under a context: the scan polls ctx once per tile
// (topkColTile candidates) and aborts within one tile of a cancellation,
// returning ctx.Err() and no result. A disconnected or deadline-expired
// caller therefore stops burning the corpus almost immediately instead of
// finishing a full scan whose answer nobody reads.
func TopKCtx(ctx context.Context, n, k, workers int, sim func(i int) float64) ([]Neighbor, error) {
	return TopKRangeCtx(ctx, n, k, workers, func(lo, hi int, out []float64) {
		for i := lo; i < hi; i++ {
			out[i-lo] = sim(i)
		}
	})
}

// topkColTile is the candidate-range width per batched kernel call; it
// matches the packed-corpus tile so one call streams an L1-resident block.
const topkColTile = 256

// TopKRange is TopK over a range-batched similarity kernel: sim fills
// out[0:hi-lo] with the similarities of candidates [lo, hi). A kernel
// backed by core.PackedCorpus (e.g. JaccardQueryInto) streams one
// contiguous buffer per tile instead of dispatching a closure per
// candidate. Selection, tie rules, and determinism are identical to TopK —
// the two return the same result whenever the kernels agree pointwise.
func TopKRange(n, k, workers int, sim func(lo, hi int, out []float64)) []Neighbor {
	// nil ctx: the workers skip the per-tile poll entirely, so the
	// uncancellable path pays nothing for cancellability existing.
	res, _ := topKRange(nil, n, k, workers, sim)
	return res
}

// TopKRangeCtx is TopKRange under a context, polled once per tile; see
// TopKCtx for the cancellation contract. Returns (nil, ctx.Err()) on
// cancellation — partial selections are discarded, never returned.
func TopKRangeCtx(ctx context.Context, n, k, workers int, sim func(lo, hi int, out []float64)) ([]Neighbor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Refuse work that is already dead — the common case for a request
	// whose deadline expired in the admission queue.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return topKRange(ctx, n, k, workers, sim)
}

func topKRange(ctx context.Context, n, k, workers int, sim func(lo, hi int, out []float64)) ([]Neighbor, error) {
	if n <= 0 || k <= 0 {
		return nil, nil
	}
	// At most n results are possible, so clamping is behavior-preserving —
	// and it keeps a caller-supplied huge k (e.g. straight from a query
	// parameter) from panicking the cap-k preallocations below.
	if k > n {
		k = n
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}

	// Each worker selects its shard-local top-k under the total order;
	// the union of shard winners contains every global winner. A canceled
	// context flips stopped once; the other workers see the cheap atomic
	// and bail at their next tile without each re-checking the context.
	locals := make([][]Neighbor, workers)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			nh := make([]Neighbor, 0, k)
			// worst caches the index of nh's minimum under the total order
			// (valid once nh is full), so the common reject is one compare
			// and the O(k) rescan only runs on an accepted candidate.
			worst := 0
			buf := make([]float64, topkColTile)
			for tlo := lo; tlo < hi; tlo += topkColTile {
				if ctx != nil {
					if stopped.Load() {
						return
					}
					if ctx.Err() != nil {
						stopped.Store(true)
						return
					}
				}
				thi := min(tlo+topkColTile, hi)
				tile := buf[:thi-tlo]
				sim(tlo, thi, tile)
				for i := tlo; i < thi; i++ {
					cand := Neighbor{ID: int32(i), Sim: tile[i-tlo]}
					if len(nh) < k {
						nh = append(nh, cand)
						if len(nh) == k {
							worst = findWorst(nh)
						}
						continue
					}
					if ranksBelow(nh[worst], cand) {
						nh[worst] = cand
						worst = findWorst(nh)
					}
				}
			}
			locals[w] = nh
		}(w, lo, hi)
	}
	wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	merged := make([]Neighbor, 0, workers*k)
	for _, l := range locals {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Sim != merged[j].Sim {
			return merged[i].Sim > merged[j].Sim
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}
