package knn

import "runtime"

// Options configures the approximate KNN algorithms. The zero value selects
// the paper's parameters (§3.3): δ = 0.001 and at most 30 iterations.
type Options struct {
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Seed drives the random initial graph and all sampling.
	Seed int64
	// Delta is the termination threshold: an iteration performing fewer
	// than Delta·k·n updates ends the algorithm. 0 means 0.001.
	Delta float64
	// MaxIterations bounds the number of refinement iterations. 0 means 30.
	MaxIterations int
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return defaultWorkers()
	}
	return o.Workers
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o Options) delta() float64 {
	if o.Delta == 0 {
		return 0.001
	}
	return o.Delta
}

func (o Options) maxIterations() int {
	if o.MaxIterations == 0 {
		return 30
	}
	return o.MaxIterations
}

// Stats reports how an algorithm run unfolded.
type Stats struct {
	// Iterations is the number of refinement iterations performed (0 for
	// one-shot algorithms such as Brute Force and LSH).
	Iterations int
	// Comparisons is the number of similarity computations.
	Comparisons int64
	// Updates is the number of successful neighborhood improvements.
	Updates int64
}

// ScanRate returns Comparisons normalized by the n(n−1)/2 comparisons of an
// exhaustive search — the metric of the paper's Fig. 12.
func (s Stats) ScanRate(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(s.Comparisons) / (float64(n) * float64(n-1) / 2)
}
