package knn

import (
	"context"
	"runtime"

	"goldfinger/internal/obs"
)

// Options configures the approximate KNN algorithms. The zero value selects
// the paper's parameters (§3.3): δ = 0.001 and at most 30 iterations.
type Options struct {
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Seed drives the random initial graph and all sampling.
	Seed int64
	// Delta is the termination threshold: an iteration performing fewer
	// than Delta·k·n updates ends the algorithm. 0 means 0.001.
	Delta float64
	// MaxIterations bounds the number of refinement iterations. 0 means 30.
	MaxIterations int
	// Ctx cancels a running build. Builders check it between scan blocks
	// (Brute Force) or refinement units (Hyrec, NNDescent), so a
	// cancellation takes effect within one block, and return the partial —
	// still structurally valid — graph accumulated so far; callers decide
	// whether to keep it by inspecting Ctx.Err(). Nil means never cancel.
	Ctx context.Context
	// Obs, when non-nil, receives build instrumentation: per-phase
	// durations (histograms under "build.phase.<name>.seconds"), progress
	// gauges, the current-phase text, and the comparison counter. Nil
	// disables instrumentation at the cost of one nil check per event.
	Obs *obs.Registry
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return defaultWorkers()
	}
	return o.Workers
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o Options) delta() float64 {
	if o.Delta == 0 {
		return 0.001
	}
	return o.Delta
}

func (o Options) maxIterations() int {
	if o.MaxIterations == 0 {
		return 30
	}
	return o.MaxIterations
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Metric names the builders publish into Options.Obs. The service's
// /metrics endpoint exports them verbatim and /stats reads the progress
// gauges and phase text while a build runs.
const (
	// MetricComparisons counts similarity computations across all builds;
	// it matches the sum of the per-build Stats.Comparisons values.
	MetricComparisons = "build.comparisons.total"
	// MetricProgressDone / MetricProgressTotal gauge the current build's
	// progress in algorithm-specific units: scan blocks for Brute Force,
	// iterations for Hyrec and NNDescent, users for LSH.
	MetricProgressDone  = "build.progress.done"
	MetricProgressTotal = "build.progress.total"
	// MetricPhase is the text value holding the current build phase
	// ("pack", "init", "scan", "iterate", "merge", "bucket", "refine",
	// "idle").
	MetricPhase = "build.phase"
)

// buildMetrics caches the obs handles a builder touches, so the hot path
// never goes through the registry's mutex. All handles are nil (and their
// methods no-ops) when Options.Obs is nil.
type buildMetrics struct {
	reg           *obs.Registry
	comparisons   *obs.Counter
	progressDone  *obs.Gauge
	progressTotal *obs.Gauge
}

func (o Options) metrics() buildMetrics {
	return buildMetrics{
		reg:           o.Obs,
		comparisons:   o.Obs.Counter(MetricComparisons),
		progressDone:  o.Obs.Gauge(MetricProgressDone),
		progressTotal: o.Obs.Gauge(MetricProgressTotal),
	}
}

// startProgress resets the progress gauges for a new build.
func (m buildMetrics) startProgress(total int64) {
	m.progressTotal.Set(total)
	m.progressDone.Set(0)
}

// phase flips the current-phase text and returns the histogram the phase's
// duration should be observed into.
func (m buildMetrics) phase(name string) *obs.Histogram {
	m.reg.SetText(MetricPhase, name)
	return m.reg.Histogram("build.phase."+name+".seconds", obs.DefTimeBuckets)
}

// Stats reports how an algorithm run unfolded.
type Stats struct {
	// Iterations is the number of refinement iterations performed (0 for
	// one-shot algorithms such as Brute Force and LSH).
	Iterations int
	// Comparisons is the number of similarity computations.
	Comparisons int64
	// Updates is the number of successful neighborhood improvements.
	Updates int64
}

// ScanRate returns Comparisons normalized by the n(n−1)/2 comparisons of an
// exhaustive search — the metric of the paper's Fig. 12.
func (s Stats) ScanRate(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(s.Comparisons) / (float64(n) * float64(n-1) / 2)
}
