package knn

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/cluster"
	"goldfinger/internal/core"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
)

// ClusterConfig tunes the Cluster-and-Conquer builder beyond the shared
// Options. The zero value selects the defaults.
type ClusterConfig struct {
	// Views is t, the number of independent cluster views; 0 means
	// cluster.DefaultViews.
	Views int
	// MaxClusterSize bounds every cluster; 0 means cluster.DefaultMaxSize.
	MaxClusterSize int
	// RefineSweeps bounds the neighbors-of-neighbors refinement sweeps
	// that follow the merge; 0 means defaultRefineSweeps. Sweeps stop
	// early under the same δ·k·n rule as NNDescent (Options.Delta), so
	// the bound only matters on data where refinement keeps finding work.
	RefineSweeps int
	// NoRefine skips the refinement sweeps entirely.
	NoRefine bool
}

// defaultRefineSweeps caps the refinement loop. The cluster scan already
// starts the graph close to converged — three reverse-augmented sweeps
// recover the cross-cluster edges (measured recall at n=100k matches
// NNDescent's, see BENCH_knn.json) — so unlike NNDescent's 30-iteration
// default from a random start, a small cap is the speed lever here:
// further sweeps buy tenths of a percent for ~15% more build time each.
const defaultRefineSweeps = 3

// ClusterConquer builds an approximate KNN graph with the
// Cluster-and-Conquer strategy (Giakkoupis, Kermarrec, Ruas,
// arXiv:2010.11497): bucket users into t overlapping cluster views with
// cheap fingerprint-derived min-wise hashes (internal/cluster), run the
// packed-corpus brute-force kernel independently inside every cluster,
// merge the t per-view candidate sets per user, and finish with
// NNDescent-style refinement sweeps over neighbors-of-neighbors until
// the graph goes update-dry (the δ·k·n rule). Total
// similarity work is near-linear — Σ clusterSize²/2 per view instead of
// n²/2 — which is what makes it the first builder here that keeps
// scaling past the quadratic wall at n=100k+.
//
// Phases and contract match the other builders: "bucket", "scan",
// "merge", "refine" duration histograms plus progress gauges via
// Options.Obs; cancellation via Options.Ctx between work units with a
// partial-but-valid graph returned; fully deterministic output for a
// fixed (provider, k, Seed, config) regardless of worker count.
func ClusterConquer(p Provider, k int, opts Options) (*Graph, Stats) {
	g, _, st := ClusterConquerWith(p, k, opts, ClusterConfig{})
	return g, st
}

// ClusterConquerWith is ClusterConquer with explicit tuning, additionally
// returning the cluster assignment so callers (the service's query path)
// can reuse the same hashes for search entry-point seeding.
func ClusterConquerWith(p Provider, k int, opts Options, cfg ClusterConfig) (*Graph, *cluster.Assignment, Stats) {
	n := p.NumUsers()
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	if n == 0 {
		return g, &cluster.Assignment{}, Stats{}
	}
	kCap := min(k, n-1)
	if kCap <= 0 {
		for u := range g.Neighbors {
			g.Neighbors[u] = []Neighbor{}
		}
		return g, &cluster.Assignment{}, Stats{}
	}

	workers := opts.workers()
	ctx := opts.ctx()
	m := opts.metrics()

	bucketHist := m.phase("bucket")
	bucketStart := time.Now()
	asn := cluster.Assign(clusterSource(p, workers), cluster.Config{
		Views:   cfg.Views,
		MaxSize: cfg.MaxClusterSize,
		Seed:    opts.Seed,
		Workers: workers,
		Ctx:     ctx,
	})
	bucketHist.ObserveSince(bucketStart)

	// Flatten the (view, cluster) pairs into one work list; singleton
	// clusters contribute no pairs and are skipped outright.
	type workItem struct{ view, cl int32 }
	var items []workItem
	for vi := range asn.Views {
		for ci, members := range asn.Views[vi].Clusters {
			if len(members) >= 2 {
				items = append(items, workItem{int32(vi), int32(ci)})
			}
		}
	}
	sweeps := cfg.RefineSweeps
	if sweeps <= 0 {
		sweeps = defaultRefineSweeps
	}
	if cfg.NoRefine {
		sweeps = 0
	}
	// Progress total is an upper bound: refinement usually converges and
	// stops before exhausting its sweep budget, exactly like NNDescent's
	// iteration gauge.
	refineBlocks := (n + refineRowBlock - 1) / refineRowBlock
	m.startProgress(int64(len(items) + sweeps*refineBlocks))

	// One candidate array per view. Within a view every user belongs to
	// exactly one cluster, and every cluster is scanned by exactly one
	// work item, so concurrent items of the same view touch disjoint rows
	// of the view's array — no locks, no atomics, and the per-row insert
	// order is fixed by the cluster's single scanner, which is what makes
	// the output worker-count independent.
	locals := make([]*bruteLocal, len(asn.Views))
	for vi := range locals {
		locals[vi] = &bruteLocal{
			nbrs:     make([]Neighbor, n*kCap),
			cnt:      make([]int32, n),
			worstPos: make([]int32, n),
			kCap:     kCap,
		}
	}

	scanHist := m.phase("scan")
	scanStart := time.Now()
	// Workers accumulate each cluster into a dense scratch sized to the
	// largest cluster (≤ MaxSize rows — L2-resident) and fold the finished
	// rows into the view's n-row array once per cluster: the per-pair
	// inserts all hit the small scratch instead of scattering across a
	// multi-megabyte array, which is where the scan's cache misses were.
	maxClusterLen := 0
	for _, it := range items {
		if l := len(asn.Views[it.view].Clusters[it.cl]); l > maxClusterLen {
			maxClusterLen = l
		}
	}
	var comparisons, updates atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	scanWorkers := min(workers, max(len(items), 1))
	for w := 0; w < scanWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float64, bruteColTile)
			dense := &bruteLocal{
				nbrs:     make([]Neighbor, maxClusterLen*kCap),
				cnt:      make([]int32, maxClusterLen),
				worstPos: make([]int32, maxClusterLen),
				kCap:     kCap,
			}
			lc := obs.Local{C: m.comparisons}
			defer lc.Flush()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				comps, ups := scanCluster(p, asn.Views[it.view].Clusters[it.cl], locals[it.view], dense, buf)
				comparisons.Add(comps)
				updates.Add(ups)
				lc.Add(comps)
				lc.Flush()
				m.progressDone.Add(1)
			}
		}()
	}
	wg.Wait()
	scanHist.ObserveSince(scanStart)

	mergeHist := m.phase("merge")
	mergeStart := time.Now()
	mergeViews(g, locals, kCap, workers)
	mergeHist.ObserveSince(mergeStart)

	st := Stats{Comparisons: comparisons.Load(), Updates: updates.Load()}
	if sweeps > 0 && ctx.Err() == nil {
		refineHist := m.phase("refine")
		refineStart := time.Now()
		threshold := int64(opts.delta() * float64(kCap) * float64(n))
		var changed []bool
		for s := 0; s < sweeps && ctx.Err() == nil; s++ {
			var rc, ru int64
			rc, ru, changed = refineSweep(p, g, kCap, workers, opts, m, changed)
			st.Comparisons += rc
			st.Updates += ru
			st.Iterations++
			if ru <= threshold {
				break
			}
		}
		refineHist.ObserveSince(refineStart)
	}
	return g, asn, st
}

// scanCluster runs the tiled lower-triangle brute-force scan over one
// cluster's members. The subset provider keeps the batched one-vs-many
// kernel: for SHF providers the members' rows are gathered into a dense
// mini-corpus first, so the inner loop streams contiguous memory exactly
// like the full BruteForce does. Pairs are inserted under *dense* cluster
// indices into the worker's scratch — small enough to stay in cache across
// the whole O(size²) scan — and the finished rows are remapped to global
// user ids and copied into the view's array once at the end. The copy is
// safe lock-free: within a view every user belongs to exactly one cluster,
// so no other work item touches these rows.
func scanCluster(p Provider, members []int32, l, dense *bruteLocal, buf []float64) (comps, ups int64) {
	sub := subsetOf(p, members)
	batch, _ := sub.(BatchProvider)
	mn := len(members)
	clear(dense.cnt[:mn])
	for i := 0; i < mn; i++ {
		for jlo := i + 1; jlo < mn; jlo += bruteColTile {
			jhi := min(jlo+bruteColTile, mn)
			tile := buf[:jhi-jlo]
			if batch != nil {
				batch.SimilarityRange(i, jlo, jhi, tile)
			} else {
				for j := jlo; j < jhi; j++ {
					tile[j-jlo] = sub.Similarity(i, j)
				}
			}
			for j := jlo; j < jhi; j++ {
				s := tile[j-jlo]
				if dense.insert(i, int32(j), s) {
					ups++
				}
				if dense.insert(j, int32(i), s) {
					ups++
				}
			}
		}
		comps += int64(mn - i - 1)
	}
	kCap := dense.kCap
	for i := 0; i < mn; i++ {
		c := int(dense.cnt[i])
		src := dense.nbrs[i*kCap : i*kCap+c]
		dst := l.nbrs[int(members[i])*kCap:]
		for x, e := range src {
			dst[x] = Neighbor{ID: members[e.ID], Sim: e.Sim}
		}
		l.cnt[members[i]] = int32(c)
	}
	return comps, ups
}

// mergeViews folds the t per-view candidate arrays into final sorted
// neighbor lists. Unlike mergeLocals, the same pair can appear in several
// views, so candidates already selected are skipped by id; a candidate
// whose duplicate was previously evicted re-ranks identically (same sim,
// same id under the strict total order) and is rejected by the worst-entry
// comparison, so the output carries no duplicates either way.
func mergeViews(g *Graph, locals []*bruteLocal, kCap, workers int) {
	n := len(g.Neighbors)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sel := make([]Neighbor, 0, kCap)
			for x := lo; x < hi; x++ {
				sel = sel[:0]
				worst := 0
				for _, l := range locals {
					base := x * kCap
					for _, cand := range l.nbrs[base : base+int(l.cnt[x])] {
						if hasNeighborID(sel, cand.ID) {
							continue
						}
						if len(sel) < kCap {
							sel = append(sel, cand)
							if len(sel) == kCap {
								worst = findWorst(sel)
							}
							continue
						}
						if ranksBelow(sel[worst], cand) {
							sel[worst] = cand
							worst = findWorst(sel)
						}
					}
				}
				out := make([]Neighbor, len(sel))
				copy(out, sel)
				sortNeighbors(out)
				g.Neighbors[x] = out
			}
		}(lo, hi)
	}
	wg.Wait()
}

// hasNeighborID reports whether id already occurs in nb. Linear — nb is
// at most k entries.
func hasNeighborID(nb []Neighbor, id int32) bool {
	for i := range nb {
		if nb[i].ID == id {
			return true
		}
	}
	return false
}

// sortNeighbors orders a neighbor list by the strict (sim desc, id asc)
// total order every builder's output uses.
func sortNeighbors(nb []Neighbor) {
	sort.Slice(nb, func(i, j int) bool {
		if nb[i].Sim != nb[j].Sim {
			return nb[i].Sim > nb[j].Sim
		}
		return nb[i].ID < nb[j].ID
	})
}

// refineRowBlock is the number of users a refine worker claims per cursor
// bump.
const refineRowBlock = 256

// refineMaxReverse returns the cap on the reverse-neighbor list a refine
// sweep considers per user (2k): Zipf hub users accumulate thousands of
// in-edges, and scoring all of them would turn one hub row into a partial
// scan. Oversized lists are stride-sampled deterministically, mirroring
// NNDescent's ρ-sampling of reverse lists (but without its RNG, to keep
// the sweep worker-count independent).
func refineMaxReverse(kCap int) int { return 2 * kCap }

// refineSweep runs one NNDescent-style pass over the graph: every user
// rescores the union of its neighbors, its reverse neighbors, and both
// sets' neighbors against itself, and keeps the top k. The reverse lists
// matter: sweep workers write only their own users' rows (that is what
// keeps the sweep lock-free), so a true edge u→v whose reverse v→u the
// cluster scan missed can only ever be found by v looking *backwards* —
// forward-only expansion would never converge past the clusters' blind
// spots. Workers read an immutable snapshot of the pre-sweep rows, so
// the sweep is deterministic; cancellation between row blocks leaves the
// untouched users on their previous rows — still valid.
//
// changedPrev (nil on the first sweep) marks the rows the previous sweep
// rewrote: a user whose row and whose candidate sources' rows are all
// unchanged cannot select differently and is skipped outright, which is
// what makes the convergence tail cheap. Returns this sweep's changed
// marks for the next one.
func refineSweep(p Provider, g *Graph, kCap, workers int, opts Options, m buildMetrics, changedPrev []bool) (int64, int64, []bool) {
	n := len(g.Neighbors)
	// Rows are never mutated in place (each refined row is a fresh
	// slice), so copying the headers snapshots the pre-sweep graph.
	base := make([][]Neighbor, n)
	copy(base, g.Neighbors)
	ctx := opts.ctx()

	// Reverse adjacency of the snapshot, built sequentially so list order
	// (and with it the stride sample and the output) is deterministic.
	rev := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, nb := range base[u] {
			rev[nb.ID] = append(rev[nb.ID], int32(u))
		}
	}
	maxRev := refineMaxReverse(kCap)
	for v := range rev {
		if len(rev[v]) > maxRev {
			sampled := make([]int32, maxRev)
			for i := range sampled {
				sampled[i] = rev[v][i*len(rev[v])/maxRev]
			}
			rev[v] = sampled
		}
	}

	changed := make([]bool, n)
	numBlocks := (n + refineRowBlock - 1) / refineRowBlock
	// The candidate list is scattered by construction (neighbors of
	// neighbors), so the batched range kernel never applies here — the
	// gather kernel is what keeps u's row in registers across the list.
	gather, hasGather := p.(GatherProvider)
	var comparisons, updates atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(workers, numBlocks); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lc := obs.Local{C: m.comparisons}
			defer lc.Flush()
			// Epoch-stamped visited marks: one int32 per user beats a
			// map rebuild per row, and a worker processes at most n rows
			// so the epoch cannot wrap.
			stamp := make([]int32, n)
			epoch := int32(0)
			sel := make([]Neighbor, 0, kCap)
			cands := make([]int32, 0, (kCap+maxRev)*(kCap+1))
			sims := make([]float64, 0, cap(cands))
			for {
				if ctx.Err() != nil {
					return
				}
				b := int(cursor.Add(1)) - 1
				lo := b * refineRowBlock
				if lo >= n {
					return
				}
				hi := min(lo+refineRowBlock, n)
				var comps, ups int64
				for u := lo; u < hi; u++ {
					if len(base[u]) == 0 {
						continue
					}
					if changedPrev != nil && !refineRowDirty(u, base, rev, changedPrev) {
						continue
					}
					epoch++
					stamp[u] = epoch
					cands = cands[:0]
					for _, nb := range base[u] {
						if stamp[nb.ID] != epoch {
							stamp[nb.ID] = epoch
							cands = append(cands, nb.ID)
						}
						for _, nb2 := range base[nb.ID] {
							if stamp[nb2.ID] != epoch {
								stamp[nb2.ID] = epoch
								cands = append(cands, nb2.ID)
							}
						}
					}
					for _, r := range rev[u] {
						if stamp[r] != epoch {
							stamp[r] = epoch
							cands = append(cands, r)
						}
						for _, nb2 := range base[r] {
							if stamp[nb2.ID] != epoch {
								stamp[nb2.ID] = epoch
								cands = append(cands, nb2.ID)
							}
						}
					}
					if hasGather {
						if cap(sims) < len(cands) {
							sims = make([]float64, 0, len(cands)*2)
						}
						sims = sims[:len(cands)]
						gather.SimilarityGather(u, cands, sims)
					}
					sel = sel[:0]
					worst := 0
					for x, id := range cands {
						var cand Neighbor
						if hasGather {
							cand = Neighbor{ID: id, Sim: sims[x]}
						} else {
							cand = Neighbor{ID: id, Sim: p.Similarity(u, int(id))}
						}
						comps++
						if len(sel) < kCap {
							sel = append(sel, cand)
							if len(sel) == kCap {
								worst = findWorst(sel)
							}
							continue
						}
						if ranksBelow(sel[worst], cand) {
							sel[worst] = cand
							worst = findWorst(sel)
						}
					}
					out := make([]Neighbor, len(sel))
					copy(out, sel)
					sortNeighbors(out)
					rowUps := int64(0)
					for i := range out {
						if !hasNeighborID(base[u], out[i].ID) {
							rowUps++
						}
					}
					ups += rowUps
					if rowUps > 0 || !sameNeighborIDs(out, base[u]) {
						changed[u] = true
					}
					g.Neighbors[u] = out
				}
				comparisons.Add(comps)
				updates.Add(ups)
				lc.Add(comps)
				lc.Flush()
				m.progressDone.Add(1)
			}
		}()
	}
	wg.Wait()
	return comparisons.Load(), updates.Load(), changed
}

// refineRowDirty reports whether u's refine inputs moved since the last
// sweep: its own row, a forward neighbor's row, or a reverse neighbor's
// row. (A reverse neighbor's row change also covers the second-hop lists
// it contributes, because the contribution itself changed.)
func refineRowDirty(u int, base [][]Neighbor, rev [][]int32, changedPrev []bool) bool {
	if changedPrev[u] {
		return true
	}
	for _, nb := range base[u] {
		if changedPrev[nb.ID] {
			return true
		}
	}
	for _, r := range rev[u] {
		if changedPrev[r] {
			return true
		}
	}
	return false
}

// sameNeighborIDs reports whether two sorted neighbor lists select the
// same id set.
func sameNeighborIDs(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// clusterSignatureBits is the fingerprint length of the signature corpus
// derived for providers that do not already carry packed SHF rows.
const clusterSignatureBits = 256

// clusterSource picks the bit rows the clustering hashes read. SHF
// providers expose their packed corpus directly — deriving the hashes
// costs no extra pass over raw profiles. Profile-backed providers get a
// one-off small signature corpus (the bucketing only needs a locality
// signal, not the full similarity estimator), and unknown providers fall
// back to index-derived pseudo-random rows, which degrades the clustering
// to random buckets but keeps the builder's contract intact.
func clusterSource(p Provider, workers int) cluster.Source {
	switch q := p.(type) {
	case *SHFProvider:
		if c := q.corpus(); c != nil {
			return c
		}
	case *SHFCosineProvider:
		if c := q.corpus(); c != nil {
			return c
		}
	case *CountingProvider:
		return clusterSource(q.Inner, workers)
	case *ExplicitProvider:
		return profileSource(q.Profiles, workers)
	case *FuncProvider:
		return profileSource(q.Profiles, workers)
	}
	return newIndexSource(p.NumUsers())
}

// profileSource fingerprints profiles into a small signature corpus under
// a fixed scheme, so explicit-profile builds cluster by real profile
// locality. The scheme seed is a constant: the clustering hashes are
// already seeded per build (Options.Seed), and a fixed scheme keeps
// signatures reproducible across builds of the same data.
func profileSource(profiles []profile.Profile, workers int) cluster.Source {
	return core.MustScheme(clusterSignatureBits, 0x5f1c_a99e).PackProfiles(profiles, workers)
}

// indexSource supplies pseudo-random 64-bit rows for providers with no
// inspectable profile or fingerprint data.
type indexSource struct{ words []uint64 }

func newIndexSource(n int) *indexSource {
	s := &indexSource{words: make([]uint64, n)}
	x := uint64(0x9e3779b97f4a7c15)
	for i := range s.words {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		s.words[i] = z | 1 // nonzero so no row hits the empty-row sentinel
	}
	return s
}

func (s *indexSource) NumUsers() int { return len(s.words) }
func (s *indexSource) NumBits() int  { return 64 }
func (s *indexSource) Row(i int) []uint64 {
	return s.words[i : i+1 : i+1]
}
