package knn

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
)

// clusterDataset is a corpus large enough that the default clustering
// produces many clusters per view (unlike the harness corpus, which
// collapses into one), so these tests exercise the real multi-cluster
// scan/merge/refine machinery.
func clusterDataset(t testing.TB, users int) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.ML10M, float64(users)/float64(dataset.ML10M.Users), 7)
}

// TestClusterConquerDeterministic: a fixed (provider, k, seed, config)
// must produce the identical graph regardless of worker count — the
// property that makes the builder safe to run under -shuffle=on and to
// compare across machines.
func TestClusterConquerDeterministic(t *testing.T) {
	d := clusterDataset(t, 2000)
	scheme := core.MustScheme(1024, 99)
	p := NewSHFProvider(scheme, d.Profiles)
	cfg := ClusterConfig{Views: 3, MaxClusterSize: 64}
	var ref *Graph
	for _, workers := range []int{1, 3, 8} {
		g, _, _ := ClusterConquerWith(p, 10, Options{Seed: 5, Workers: workers}, cfg)
		if err := g.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = g
			continue
		}
		if !reflect.DeepEqual(g.Neighbors, ref.Neighbors) {
			t.Fatalf("workers=%d produced a different graph", workers)
		}
	}
	// And a different seed must actually change something: the clustering
	// is seed-derived, so identical output would mean the seed is ignored.
	g2, _, _ := ClusterConquerWith(p, 10, Options{Seed: 6}, cfg)
	if reflect.DeepEqual(g2.Neighbors, ref.Neighbors) {
		t.Error("seed change did not affect the graph")
	}
}

// TestClusterBruteParity holds ClusterConquer to a quality floor against
// the exact BruteForce graph on a multi-cluster corpus. This is the
// `make benchcluster` smoke: small enough to run in seconds, real enough
// to catch a broken scan, merge, or refine.
func TestClusterBruteParity(t *testing.T) {
	d := clusterDataset(t, 2000)
	scheme := core.MustScheme(1024, 99)
	p := NewSHFProvider(scheme, d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, asn, stats := ClusterConquerWith(p, k, Options{Seed: 1}, ClusterConfig{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(asn.Views) == 0 {
		t.Fatal("no cluster views returned")
	}
	n := int64(p.NumUsers())
	if full := n * (n - 1) / 2; stats.Comparisons >= full {
		t.Errorf("cluster build did %d comparisons, not sub-quadratic (full scan = %d)", stats.Comparisons, full)
	}
	if q := Quality(g, exact, p); q < 0.90 {
		t.Errorf("quality vs exact = %.3f, floor 0.90", q)
	}
	if r := Recall(g, exact); r < 0.60 {
		t.Errorf("recall vs exact = %.3f, floor 0.60", r)
	}
}

// TestClusterConquerQualityFloor10k is the n=10k cross-check against
// BruteForce. Skipped under -race: the scan kernels dominate and run far
// too slowly there to add signal.
func TestClusterConquerQualityFloor10k(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy kernel test adds no signal under -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	d := clusterDataset(t, 10000)
	p := NewSHFProvider(core.MustScheme(1024, 99), d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	g, _ := ClusterConquer(p, k, Options{Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if q := Quality(g, exact, p); q < 0.90 {
		t.Errorf("n=10k quality vs exact = %.3f, floor 0.90", q)
	}
	if r := Recall(g, exact); r < 0.60 {
		t.Errorf("n=10k recall vs exact = %.3f, floor 0.60", r)
	}
}

// TestClusterConquerMidBuildCancellation: canceling while the per-cluster
// scan is in flight must stop promptly and still return a structurally
// valid graph covering every user.
func TestClusterConquerMidBuildCancellation(t *testing.T) {
	d := clusterDataset(t, 1500)
	p := NewExplicitProvider(d.Profiles)
	n := p.NumUsers()
	ctx, cancel := context.WithCancel(context.Background())
	counted := &cancelAfterProvider{Provider: p, cancel: cancel, after: 3000}
	g, stats := ClusterConquer(counted, 10, Options{Seed: 1, Ctx: ctx})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != n {
		t.Errorf("canceled build returned %d users, want %d", g.NumUsers(), n)
	}
	full := int64(n) * int64(n-1) / 2
	if stats.Comparisons >= full/4 {
		t.Errorf("canceled build still did %d of %d comparisons", stats.Comparisons, full)
	}
}

// TestClusterConquerEdgeCases: the degenerate corpus shapes every builder
// must survive.
func TestClusterConquerEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		g, _ := ClusterConquer(NewExplicitProvider(nil), 5, Options{})
		if g.NumUsers() != 0 {
			t.Fatalf("got %d users", g.NumUsers())
		}
	})
	t.Run("single-user", func(t *testing.T) {
		d := dataset.Generate(dataset.ML1M, 0.002, 3)
		p := NewExplicitProvider(d.Profiles[:1])
		g, _ := ClusterConquer(p, 5, Options{})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(g.Neighbors[0]) != 0 {
			t.Fatalf("single user has %d neighbors", len(g.Neighbors[0]))
		}
	})
	t.Run("k-larger-than-n", func(t *testing.T) {
		d := dataset.Generate(dataset.ML1M, 0.01, 3) // a few dozen users
		p := NewExplicitProvider(d.Profiles)
		g, _ := ClusterConquer(p, 500, Options{Seed: 1})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for u, nbrs := range g.Neighbors {
			if len(nbrs) > p.NumUsers()-1 {
				t.Fatalf("user %d has %d neighbors of %d users", u, len(nbrs), p.NumUsers())
			}
		}
	})
	t.Run("opaque-provider-fallback", func(t *testing.T) {
		// A provider exposing neither fingerprints nor profiles must
		// still build a valid graph via the index-source fallback.
		d := dataset.Generate(dataset.ML1M, 0.02, 4)
		ep := NewExplicitProvider(d.Profiles)
		opaque := opaqueProvider{ep}
		g, stats := ClusterConquer(opaque, 5, Options{Seed: 1})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if stats.Comparisons == 0 {
			t.Fatal("no comparisons")
		}
	})
}

// opaqueProvider hides the concrete provider type so clusterSource takes
// its fallback path.
type opaqueProvider struct{ p Provider }

func (o opaqueProvider) NumUsers() int               { return o.p.NumUsers() }
func (o opaqueProvider) Similarity(u, v int) float64 { return o.p.Similarity(u, v) }

// TestSubsetProvidersMatchParent: every SubsetProvider implementation
// must reproduce the parent's similarities bit-for-bit under the dense
// reindexing, on both the per-pair and the batched path.
func TestSubsetProvidersMatchParent(t *testing.T) {
	d := clusterDataset(t, 300)
	scheme := core.MustScheme(512, 42)
	providers := map[string]Provider{
		"explicit":   NewExplicitProvider(d.Profiles),
		"shf":        NewSHFProvider(scheme, d.Profiles),
		"shf-cosine": NewSHFCosineProvider(scheme, d.Profiles),
		"func":       NewCosineProvider(d.Profiles),
		"counting":   NewCountingProvider(NewSHFProvider(scheme, d.Profiles)),
	}
	rng := rand.New(rand.NewSource(9))
	n := len(d.Profiles)
	ids := make([]int32, 0, 40)
	seen := map[int32]bool{}
	for len(ids) < 40 {
		id := int32(rng.Intn(n))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for name, p := range providers {
		t.Run(name, func(t *testing.T) {
			sp, ok := p.(SubsetProvider)
			if !ok {
				t.Fatalf("%T does not implement SubsetProvider", p)
			}
			sub := sp.Subset(ids)
			if sub.NumUsers() != len(ids) {
				t.Fatalf("subset has %d users, want %d", sub.NumUsers(), len(ids))
			}
			for i := range ids {
				for j := range ids {
					want := p.Similarity(int(ids[i]), int(ids[j]))
					if got := sub.Similarity(i, j); got != want {
						t.Fatalf("sub.Similarity(%d,%d) = %g, parent = %g", i, j, got, want)
					}
				}
			}
			if batch, ok := sub.(BatchProvider); ok {
				out := make([]float64, len(ids))
				batch.SimilarityRange(3, 0, len(ids), out)
				for j := range ids {
					if want := p.Similarity(int(ids[3]), int(ids[j])); out[j] != want {
						t.Fatalf("batched subset sim (3,%d) = %g, parent = %g", j, out[j], want)
					}
				}
			}
		})
	}
	// The counting wrapper must see the subset's comparisons.
	cp := providers["counting"].(*CountingProvider)
	before := cp.Comparisons()
	sub := cp.Subset(ids)
	sub.Similarity(0, 1)
	sub.(BatchProvider).SimilarityRange(0, 0, len(ids), make([]float64, len(ids)))
	if got := cp.Comparisons() - before; got != 1+int64(len(ids)) {
		t.Errorf("counting subset folded %d comparisons, want %d", got, 1+len(ids))
	}
}

// TestClusterConquerReturnsAssignment: the assignment handed back by
// ClusterConquerWith must describe the same corpus (usable for query
// seeding) and agree with a directly computed one.
func TestClusterConquerReturnsAssignment(t *testing.T) {
	d := clusterDataset(t, 800)
	p := NewSHFProvider(core.MustScheme(1024, 99), d.Profiles)
	g, asn, _ := ClusterConquerWith(p, 10, Options{Seed: 3}, ClusterConfig{Views: 2})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(asn.Views) != 2 {
		t.Fatalf("got %d views, want 2", len(asn.Views))
	}
	seeds := asn.Seeds(p.corpus().Row(17), 8)
	if len(seeds) == 0 {
		t.Fatal("assignment produced no seeds for a corpus row")
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= p.NumUsers() {
			t.Fatalf("seed %d out of range", s)
		}
	}
}

// TestClusterConquerNoRefine: disabling the refinement sweep must still
// produce a valid graph, and the refined build must never be worse.
func TestClusterConquerNoRefine(t *testing.T) {
	d := clusterDataset(t, 2000)
	p := NewSHFProvider(core.MustScheme(1024, 99), d.Profiles)
	const k = 10
	exact, _ := BruteForce(p, k, Options{})
	raw, _, rawStats := ClusterConquerWith(p, k, Options{Seed: 1}, ClusterConfig{NoRefine: true})
	refined, _, refStats := ClusterConquerWith(p, k, Options{Seed: 1}, ClusterConfig{})
	if err := raw.Validate(); err != nil {
		t.Fatal(err)
	}
	if rawStats.Iterations != 0 {
		t.Errorf("NoRefine ran %d refinement sweeps, want 0", rawStats.Iterations)
	}
	if refStats.Iterations < 1 || refStats.Iterations > defaultRefineSweeps {
		t.Errorf("refined build ran %d sweeps, want 1..%d", refStats.Iterations, defaultRefineSweeps)
	}
	qRaw, qRef := Quality(raw, exact, p), Quality(refined, exact, p)
	if qRef+1e-9 < qRaw {
		t.Errorf("refine reduced quality: %.4f -> %.4f", qRaw, qRef)
	}
}
