package knn

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"goldfinger/internal/profile"
)

// BisectionOptions configures the divide-and-conquer construction.
type BisectionOptions struct {
	// LeafSize is the block size below which the algorithm brute-forces
	// all pairs. 0 means 200.
	LeafSize int
	// Overlap is the fraction of users near the split boundary that are
	// assigned to both halves (the "overlap" glue of Chen et al. that
	// recovers cross-boundary neighbors). 0 means 0.15; capped at 0.5.
	Overlap float64
	// PowerIterations drives the dominant-singular-vector estimate used
	// to choose the split direction. 0 means 12.
	PowerIterations int
	// NumItems is the item-universe size; 0 derives it from the profiles.
	NumItems int
	// Seed drives the power iteration's random start.
	Seed int64
}

func (o BisectionOptions) leafSize() int {
	if o.LeafSize <= 0 {
		return 200
	}
	return o.LeafSize
}

func (o BisectionOptions) overlap() float64 {
	switch {
	case o.Overlap == 0:
		return 0.15
	case o.Overlap < 0:
		return 0
	case o.Overlap > 0.5:
		return 0.5
	default:
		return o.Overlap
	}
}

func (o BisectionOptions) powerIterations() int {
	if o.PowerIterations <= 0 {
		return 12
	}
	return o.PowerIterations
}

// RecursiveBisection constructs an approximate KNN graph with the
// divide-and-conquer strategy of Chen, Fang and Saad (JMLR 2009), the
// other family of ANN algorithms the paper discusses (§6): recursively
// split the users along the dominant singular direction of their
// user–item matrix (estimated by power iteration), keep an overlap band
// across the boundary, and brute-force each leaf block. Similarities go
// through the provider, so GoldFinger accelerates the conquer phase
// exactly as it does the other algorithms.
func RecursiveBisection(profiles []profile.Profile, p Provider, k int, opts BisectionOptions) (*Graph, Stats) {
	n := len(profiles)
	if p.NumUsers() != n {
		panic("knn: RecursiveBisection provider and profiles disagree on user count")
	}
	numItems := opts.NumItems
	if numItems == 0 {
		for _, prof := range profiles {
			for _, it := range prof {
				if int(it) >= numItems {
					numItems = int(it) + 1
				}
			}
		}
	}

	cp := NewCountingProvider(p)
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}
	var updates atomic.Int64
	rng := rand.New(rand.NewSource(opts.Seed))

	users := make([]int32, n)
	for i := range users {
		users[i] = int32(i)
	}
	bisect(users, profiles, cp, nhs, &updates, numItems, opts, rng)

	return finalize(k, nhs), Stats{Comparisons: cp.Comparisons(), Updates: updates.Load()}
}

// bisect recursively splits block and brute-forces its leaves.
func bisect(block []int32, profiles []profile.Profile, cp *CountingProvider,
	nhs []*neighborhood, updates *atomic.Int64, numItems int, opts BisectionOptions, rng *rand.Rand) {

	if len(block) <= opts.leafSize() {
		for i, u := range block {
			for _, v := range block[i+1:] {
				s := cp.Similarity(int(u), int(v))
				if nhs[u].insert(v, s) {
					updates.Add(1)
				}
				if nhs[v].insert(u, s) {
					updates.Add(1)
				}
			}
		}
		return
	}

	// Power iteration for the dominant singular direction of the block's
	// user–item matrix A: x ← normalize(Aᵀ(A·x)).
	x := make([]float64, numItems)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	score := make([]float64, len(block))
	for iter := 0; iter < opts.powerIterations(); iter++ {
		for bi, u := range block {
			var s float64
			for _, it := range profiles[u] {
				s += x[it]
			}
			score[bi] = s
		}
		for i := range x {
			x[i] = 0
		}
		for bi, u := range block {
			for _, it := range profiles[u] {
				x[it] += score[bi]
			}
		}
		var norm float64
		for _, v := range x {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			// Degenerate block (e.g. all-empty profiles): split in half
			// arbitrarily rather than looping forever.
			break
		}
		for i := range x {
			x[i] /= norm
		}
	}

	// Order the block by projection and split at the median with an
	// overlap band on both sides.
	order := make([]int, len(block))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })

	mid := len(block) / 2
	band := int(opts.overlap() * float64(len(block)) / 2)
	loEnd := mid + band
	hiStart := mid - band
	if loEnd > len(block) {
		loEnd = len(block)
	}
	if hiStart < 0 {
		hiStart = 0
	}

	left := make([]int32, 0, loEnd)
	for _, oi := range order[:loEnd] {
		left = append(left, block[oi])
	}
	right := make([]int32, 0, len(block)-hiStart)
	for _, oi := range order[hiStart:] {
		right = append(right, block[oi])
	}
	// Guard against non-progress: if either side failed to shrink, fall
	// back to a clean halving without overlap.
	if len(left) >= len(block) || len(right) >= len(block) {
		left = left[:mid]
		right = right[len(right)-(len(block)-mid):]
	}

	bisect(left, profiles, cp, nhs, updates, numItems, opts, rng)
	bisect(right, profiles, cp, nhs, updates, numItems, opts, rng)
}
