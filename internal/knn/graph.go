package knn

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// Neighbor is one directed KNN edge endpoint: a user index and the
// similarity under which it was selected.
type Neighbor struct {
	ID  int32
	Sim float64
}

// Graph is a directed KNN graph: every user points to (at most) K
// neighbors. Neighbor lists are kept sorted by decreasing similarity.
type Graph struct {
	K         int
	Neighbors [][]Neighbor
}

// NumUsers returns the number of nodes.
func (g *Graph) NumUsers() int { return len(g.Neighbors) }

// NumEdges returns the total number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nb := range g.Neighbors {
		n += len(nb)
	}
	return n
}

// AvgSimilarity returns the average, over all edges, of the similarity
// assigned by sim — paper Eq. 2 when sim is the exact similarity. It
// recomputes similarities rather than trusting the stored ones so that
// approximate graphs are judged against ground truth.
func (g *Graph) AvgSimilarity(sim Provider) float64 {
	var sum float64
	edges := 0
	for u, nbrs := range g.Neighbors {
		for _, nb := range nbrs {
			sum += sim.Similarity(u, int(nb.ID))
			edges++
		}
	}
	if edges == 0 {
		return 0
	}
	return sum / float64(edges)
}

// Quality returns avg_sim(g) / avg_sim(exact) under the exact similarity
// provider — paper Eq. 3. A value close to 1 means the approximation is as
// good as the exact graph.
//
// Degenerate cases are defined rather than collapsed into an ambiguous 0:
// when the exact average is 0 (an edgeless exact graph, or one whose edges
// all have zero similarity) and g's average is also 0, the two graphs are
// equally good and Quality is 1; when the exact average is 0 but g somehow
// scores above it there is no ground truth to normalize by and Quality is
// NaN — callers must not read that as "worthless graph" (and must guard
// before JSON-encoding, which rejects NaN).
func Quality(g, exact *Graph, sim Provider) float64 {
	num := g.AvgSimilarity(sim)
	denom := exact.AvgSimilarity(sim)
	if denom == 0 {
		if num == 0 {
			return 1
		}
		return math.NaN()
	}
	return num / denom
}

// Recall returns the fraction of exact KNN edges present in g (macro
// average over users with a non-empty exact neighborhood). The paper's
// quality metric (Eq. 3) is the headline measure; recall is the stricter
// set-overlap view.
// The per-user membership test reuses one sorted-ID scratch slice across
// all n users instead of allocating a map per user — the map version's
// O(n) allocation churn was large enough to distort the measurements of
// the very search paths Recall judges (see BenchmarkRecall).
func Recall(g, exact *Graph) float64 {
	var sum float64
	users := 0
	in := make([]int32, 0, g.K) // reusable scratch: g's neighborhood, sorted
	for u := range exact.Neighbors {
		ex := exact.Neighbors[u]
		if len(ex) == 0 {
			continue
		}
		users++
		in = in[:0]
		for _, nb := range g.Neighbors[u] {
			in = append(in, nb.ID)
		}
		slices.Sort(in)
		hits := 0
		for _, nb := range ex {
			if _, found := slices.BinarySearch(in, nb.ID); found {
				hits++
			}
		}
		sum += float64(hits) / float64(len(ex))
	}
	if users == 0 {
		return 0
	}
	return sum / float64(users)
}

// Validate checks structural invariants: no self-loops, no duplicate
// neighbors, at most K entries, similarities sorted decreasingly.
func (g *Graph) Validate() error {
	for u, nbrs := range g.Neighbors {
		if len(nbrs) > g.K {
			return fmt.Errorf("knn: user %d has %d neighbors > K=%d", u, len(nbrs), g.K)
		}
		seen := map[int32]bool{}
		for i, nb := range nbrs {
			if int(nb.ID) == u {
				return fmt.Errorf("knn: user %d has a self-loop", u)
			}
			if seen[nb.ID] {
				return fmt.Errorf("knn: user %d has duplicate neighbor %d", u, nb.ID)
			}
			seen[nb.ID] = true
			if i > 0 && nbrs[i-1].Sim < nb.Sim {
				return fmt.Errorf("knn: user %d neighbors not sorted by similarity", u)
			}
		}
	}
	return nil
}

// neighborhood is a bounded top-k set of neighbors with O(k) insertion and
// duplicate detection (k is 30 in the paper; linear scans beat heaps at this
// size and keep the structure allocation-free after construction).
type neighborhood struct {
	mu      sync.Mutex
	entries []Neighbor // unordered
	flags   []bool     // "new" flags for NNDescent
	k       int
}

func newNeighborhood(k int) *neighborhood {
	return &neighborhood{entries: make([]Neighbor, 0, k), flags: make([]bool, 0, k), k: k}
}

// insert adds (id, sim) if it beats the current worst entry and is not
// already present. It returns true when the neighborhood changed.
func (nh *neighborhood) insert(id int32, sim float64) bool {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	worst := 0
	for i, e := range nh.entries {
		if e.ID == id {
			return false
		}
		if e.Sim < nh.entries[worst].Sim {
			worst = i
		}
	}
	if len(nh.entries) < nh.k {
		nh.entries = append(nh.entries, Neighbor{ID: id, Sim: sim})
		nh.flags = append(nh.flags, true)
		return true
	}
	if sim <= nh.entries[worst].Sim {
		return false
	}
	nh.entries[worst] = Neighbor{ID: id, Sim: sim}
	nh.flags[worst] = true
	return true
}

// snapshot copies the current entries without locking order guarantees.
func (nh *neighborhood) snapshot() []Neighbor {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	out := make([]Neighbor, len(nh.entries))
	copy(out, nh.entries)
	return out
}

// snapshotFlags returns entries split into new (flag set) and old, clearing
// the flags — the NNDescent incremental-search bookkeeping.
func (nh *neighborhood) snapshotFlags() (fresh, old []Neighbor) {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	for i, e := range nh.entries {
		if nh.flags[i] {
			fresh = append(fresh, e)
			nh.flags[i] = false
		} else {
			old = append(old, e)
		}
	}
	return fresh, old
}

// finalize sorts the neighborhoods into a Graph.
func finalize(k int, nhs []*neighborhood) *Graph {
	g := &Graph{K: k, Neighbors: make([][]Neighbor, len(nhs))}
	for u, nh := range nhs {
		nbrs := nh.snapshot()
		sort.Slice(nbrs, func(i, j int) bool {
			if nbrs[i].Sim != nbrs[j].Sim {
				return nbrs[i].Sim > nbrs[j].Sim
			}
			return nbrs[i].ID < nbrs[j].ID
		})
		g.Neighbors[u] = nbrs
	}
	return g
}
