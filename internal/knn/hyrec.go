package knn

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Hyrec constructs an approximate KNN graph with the greedy strategy of
// Boutet et al. (Middleware 2014): starting from a random graph, each
// iteration compares every user u with its neighbors' neighbors — a
// neighbor of a neighbor is likely a neighbor — and keeps the best k. The
// algorithm stops when an iteration performs fewer than δ·k·n updates or
// after MaxIterations.
func Hyrec(p Provider, k int, opts Options) (*Graph, Stats) {
	n := p.NumUsers()
	cp := NewCountingProvider(p)
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	randomInit(cp, nhs, k, rng)

	stats := Stats{}
	threshold := int64(opts.delta() * float64(k) * float64(n))
	workers := opts.workers()

	// seen[u] remembers every candidate already compared with u, across
	// iterations: recomputing a previously rejected pair can never change
	// the graph, so skipping it is pure scanrate savings. Each entry is
	// touched only by the worker currently processing u (phases are
	// separated by the WaitGroup), so no locking is needed.
	seen := make([]map[int32]bool, n)
	for u := range seen {
		seen[u] = map[int32]bool{int32(u): true}
	}

	for iter := 0; iter < opts.maxIterations(); iter++ {
		stats.Iterations++
		var updates atomic.Int64

		var wg sync.WaitGroup
		next := make(chan int, workers)
		go func() {
			for u := 0; u < n; u++ {
				next <- u
			}
			close(next)
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range next {
					nbrs := nhs[u].snapshot()
					for _, nb := range nbrs {
						seen[u][nb.ID] = true // current neighbors: nothing to learn
					}
					for _, nb := range nbrs {
						for _, nn := range nhs[nb.ID].snapshot() {
							if seen[u][nn.ID] {
								continue
							}
							seen[u][nn.ID] = true
							s := cp.Similarity(u, int(nn.ID))
							if nhs[u].insert(nn.ID, s) {
								updates.Add(1)
							}
							// The pair was paid for; let the candidate
							// benefit too (symmetric similarity).
							if nhs[nn.ID].insert(int32(u), s) {
								updates.Add(1)
							}
						}
					}
				}
			}()
		}
		wg.Wait()

		stats.Updates += updates.Load()
		if updates.Load() <= threshold {
			break
		}
	}

	stats.Comparisons = cp.Comparisons()
	return finalize(k, nhs), stats
}
