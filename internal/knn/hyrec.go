package knn

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Hyrec constructs an approximate KNN graph with the greedy strategy of
// Boutet et al. (Middleware 2014): starting from a random graph, each
// iteration compares every user u with its neighbors' neighbors — a
// neighbor of a neighbor is likely a neighbor — and keeps the best k. The
// algorithm stops when an iteration performs fewer than δ·k·n updates or
// after MaxIterations.
//
// Cancellation (Options.Ctx) is checked before every iteration and once
// per user inside an iteration; a canceled build returns the partial graph
// promptly (callers inspect Options.Ctx.Err() to tell).
func Hyrec(p Provider, k int, opts Options) (*Graph, Stats) {
	n := p.NumUsers()
	cp := NewCountingProvider(p)
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}
	ctx := opts.ctx()
	m := opts.metrics()
	m.startProgress(int64(opts.maxIterations()))
	rng := rand.New(rand.NewSource(opts.Seed))
	initHist := m.phase("init")
	initStart := time.Now()
	randomInit(ctx, cp, nhs, k, rng)
	initHist.ObserveSince(initStart)

	stats := Stats{}
	threshold := int64(opts.delta() * float64(k) * float64(n))
	workers := opts.workers()
	iterHist := m.phase("iterate")

	// seen[u] remembers every candidate already compared with u, across
	// iterations: recomputing a previously rejected pair can never change
	// the graph, so skipping it is pure scanrate savings. Each entry is
	// touched only by the worker currently processing u (phases are
	// separated by the WaitGroup), so no locking is needed.
	seen := make([]map[int32]bool, n)
	for u := range seen {
		seen[u] = map[int32]bool{int32(u): true}
	}

	for iter := 0; iter < opts.maxIterations() && ctx.Err() == nil; iter++ {
		stats.Iterations++
		iterStart := time.Now()
		var updates atomic.Int64

		var wg sync.WaitGroup
		next := make(chan int, workers)
		go feedUsers(ctx, next, n)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range next {
					// Drain without working once canceled, so the feeder's
					// buffered users don't each pay a full candidate sweep.
					if ctx.Err() != nil {
						continue
					}
					nbrs := nhs[u].snapshot()
					for _, nb := range nbrs {
						seen[u][nb.ID] = true // current neighbors: nothing to learn
					}
					for _, nb := range nbrs {
						for _, nn := range nhs[nb.ID].snapshot() {
							if seen[u][nn.ID] {
								continue
							}
							seen[u][nn.ID] = true
							s := cp.Similarity(u, int(nn.ID))
							if nhs[u].insert(nn.ID, s) {
								updates.Add(1)
							}
							// The pair was paid for; let the candidate
							// benefit too (symmetric similarity).
							if nhs[nn.ID].insert(int32(u), s) {
								updates.Add(1)
							}
						}
					}
				}
			}()
		}
		wg.Wait()

		iterHist.ObserveSince(iterStart)
		m.progressDone.Set(int64(iter + 1))
		stats.Updates += updates.Load()
		if updates.Load() <= threshold {
			break
		}
	}

	stats.Comparisons = cp.Comparisons()
	m.comparisons.Add(stats.Comparisons)
	return finalize(k, nhs), stats
}

// feedUsers pushes 0..n-1 into next, giving up (and closing the channel so
// workers drain and exit) as soon as ctx is canceled — without this, a
// worker returning early would leave the feeder blocked on a send forever.
func feedUsers(ctx context.Context, next chan<- int, n int) {
	defer close(next)
	done := ctx.Done()
	for u := 0; u < n; u++ {
		select {
		case next <- u:
		case <-done:
			return
		}
	}
}
