package knn

import (
	"math/rand"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// Synthetic bench corpus: fingerprint-shaped profiles at the paper's
// defaults (b = 1024). n is kept moderate so `make benchsmoke`
// (-benchtime=1x) stays fast; cmd/benchknn runs the acceptance-scale
// n = 10k measurement.
func benchCorpus(n int) ([]profile.Profile, *core.Scheme) {
	rng := rand.New(rand.NewSource(97))
	profiles := make([]profile.Profile, n)
	for i := range profiles {
		items := make([]profile.ItemID, 0, 60)
		for j := 0; j < 60; j++ {
			items = append(items, profile.ItemID(rng.Intn(5000)))
		}
		profiles[i] = profile.New(items...)
	}
	return profiles, core.MustScheme(1024, 97)
}

// BenchmarkBruteForceSHF compares the three brute-force paths on the same
// SHF corpus: the packed BatchProvider kernel, the tiled per-pair fallback,
// and the retained legacy (channel + atomics + mutex) implementation.
func BenchmarkBruteForceSHF(b *testing.B) {
	profiles, scheme := benchCorpus(2000)
	shf := NewSHFProvider(scheme, profiles)
	const k = 10
	b.Run("packed-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BruteForce(shf, k, Options{})
		}
	})
	b.Run("tiled-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BruteForce(hideBatchBench{shf}, k, Options{})
		}
	})
	b.Run("legacy-provider", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LegacyBruteForce(shf, k, Options{})
		}
	})
}

type hideBatchBench struct{ inner Provider }

func (h hideBatchBench) NumUsers() int               { return h.inner.NumUsers() }
func (h hideBatchBench) Similarity(u, v int) float64 { return h.inner.Similarity(u, v) }

// BenchmarkTopKQuerySHF measures one /query-shaped top-k scan: a fresh
// fingerprint against the packed corpus, batched kernel vs per-pair
// closure.
func BenchmarkTopKQuerySHF(b *testing.B) {
	profiles, scheme := benchCorpus(20000)
	corpus := scheme.PackProfiles(profiles, 0)
	q := scheme.Fingerprint(profiles[0])
	n := corpus.NumUsers()
	const k = 10
	b.Run("packed-range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopKRange(n, k, 0, func(lo, hi int, out []float64) {
				corpus.JaccardQueryInto(q, lo, hi, out)
			})
		}
	})
	fps := make([]core.Fingerprint, n)
	for i := range fps {
		fps[i] = corpus.Fingerprint(i)
	}
	b.Run("per-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopK(n, k, 0, func(i int) float64 { return core.Jaccard(q, fps[i]) })
		}
	})
}

// BenchmarkPackCorpus measures corpus construction: packing an existing
// fingerprint slice vs fingerprinting profiles straight into packed rows.
func BenchmarkPackCorpus(b *testing.B) {
	profiles, scheme := benchCorpus(5000)
	fps := scheme.FingerprintAll(profiles)
	b.Run("from-fingerprints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPackedCorpus(1024, fps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("from-profiles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scheme.PackProfiles(profiles, 0)
		}
	})
}
