//go:build !race

package knn

// raceEnabled mirrors race_test.go for normal builds.
const raceEnabled = false
