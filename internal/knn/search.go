package knn

import (
	"context"
	"sort"
	"sync"
)

// This file implements graph-navigated top-k search: instead of scanning
// the whole corpus (TopK), a query descends the already-built KNN graph
// greedily — the FINGER observation (arXiv:2206.11408) that a navigable
// graph plus a cheap approximate distance bound skips almost all exact
// similarity computations. The SHF analogue of FINGER's low-rank residual
// bound is the prefix-popcount bound in bitset.AndCountAbandon, surfaced
// here through SearchOracle.ScoreAbove.

// SearchOracle scores graph nodes against one implicit query. It is the
// distance oracle of GraphSearch; core.PackedCorpus.NewQueryScorer builds
// the production implementation over the packed AND+popcount kernels.
type SearchOracle interface {
	// Score returns the similarity of node v to the query.
	Score(v int32) float64
	// ScoreAbove returns the similarity of node v provided it can reach
	// floor: ok=false means the oracle proved sim(v) < floor without
	// computing it exactly (the early-abandon path) and the returned value
	// is meaningless. ok=true returns the exact similarity, which may
	// still be below floor. floor <= 0 must behave like Score.
	ScoreAbove(v int32, floor float64) (sim float64, ok bool)
}

// OracleFunc adapts a plain scoring function into a SearchOracle with no
// early-abandon capability (every call is exact).
type OracleFunc func(v int32) float64

// Score implements SearchOracle.
func (f OracleFunc) Score(v int32) float64 { return f(v) }

// ScoreAbove implements SearchOracle; it always scores exactly.
func (f OracleFunc) ScoreAbove(v int32, _ float64) (float64, bool) { return f(v), true }

// SearchOptions configures GraphSearch. The zero value selects sensible
// defaults for the paper's scales (k = 10..30).
type SearchOptions struct {
	// Ef is the beam width: the search maintains the ef best nodes seen so
	// far and keeps expanding until no candidate can improve them. Larger
	// ef trades latency for recall. 0 means max(64, 16k) — sized on the
	// synthetic ML10M shape, where it holds recall@10 ≥ 0.9 on an
	// NNDescent-built Navigable graph at both 10k and 100k while keeping
	// the p50 well under the exact scan's (see TestGraphScanParity10k and
	// BENCH_knn.json's query section); values below k are raised to k,
	// values above n clamp to n (at which point the "search" degenerates
	// into a scan — expected for tiny corpora).
	Ef int
	// NumSeeds is the number of evenly-spread entry points when Seeds is
	// nil. Multiple seeds hedge against greedy descent starting in the
	// wrong cluster of a directed KNN graph (which, unlike an HNSW, has no
	// long-range links): a cluster no seed lands in is unreachable, so the
	// default scales with the corpus, max(8, n/64). Seeding stays cheap —
	// once the beam fills, extra seeds are mostly rejected by the oracle's
	// early-abandon bound without a full similarity computation.
	NumSeeds int
	// Seeds overrides the entry points (node ids; out-of-range ids are
	// ignored).
	Seeds []int32
	// Exclude, when non-nil, marks nodes that must never appear in the
	// result: tombstoned (deleted) users of an online-maintained graph.
	// Excluded nodes are still scored and traversed — a dead hub keeps
	// bridging the regions its edges connect until lazy repair rewires
	// them — they just never enter the result beam.
	Exclude func(v int32) bool
	// Ctx cancels a running search: it is polled once per seed and once
	// per hop, and a canceled search returns ctx.Err() and no partial
	// result. Nil means never cancel.
	Ctx context.Context
}

// DefaultSeeds appends GraphSearch's default entry points for an n-node
// graph — max(8, n/64) evenly-spread node ids — to dst and returns it.
// Callers that pass explicit SearchOptions.Seeds (e.g. cluster-bucket
// warm starts) should layer them on top of this spread: explicit seeds
// replace the default entirely, and a directed KNN graph keeps whole
// regions reachable only from some entry points, so shrinking the spread
// to a handful of warm seeds costs far more recall than the warm starts
// buy back.
func DefaultSeeds(dst []int32, n int) []int32 {
	return appendSpreadSeeds(dst, n, 0)
}

// appendSpreadSeeds appends ns (0 means max(8, n/64)) evenly-spread node
// ids to dst.
func appendSpreadSeeds(dst []int32, n, ns int) []int32 {
	if ns <= 0 {
		ns = max(8, n/64)
	}
	if ns > n {
		ns = n
	}
	for i := 0; i < ns; i++ {
		id := int32(0)
		if ns > 1 {
			id = int32(i * (n - 1) / (ns - 1))
		}
		dst = append(dst, id)
	}
	return dst
}

// SearchStats reports how one GraphSearch unfolded.
type SearchStats struct {
	// Hops is the number of nodes expanded (beam iterations).
	Hops int
	// Scored is the number of exact similarity computations.
	Scored int
	// Abandoned is the number of candidates rejected by the oracle's
	// early-abandon bound without an exact computation.
	Abandoned int
}

// Navigable returns the copy of g used for query navigation: every
// directed KNN edge u→v is mirrored as v→u (Jaccard is symmetric),
// adjacency is deduplicated, and each list is reduced to at most
// max(64, 4K) diverse edges, sorted best-first. A directed KNN graph is a
// poor search structure — popular "hub" nodes accumulate in-edges that the
// descent cannot traverse backwards, so whole regions become unreachable
// from any entry point (measured on the synthetic ML10M shape, recall@10
// plateaus near 0.65 however large the beam). Reverse edges restore those
// paths but create the opposite problem: the same hubs now carry thousands
// of forward edges and one expansion of one hub degenerates into a partial
// scan (measured: ~27k of 100k rows scored per query, erasing the
// speedup).
//
// The degree cap therefore has to choose which edges survive, and simply
// keeping the strongest ones fails badly: a node's best edges are
// near-duplicates of each other, so a best-first cap keeps one tight
// clique and severs the longer-range links navigation depends on
// (measured: recall@10 collapses to 0.36 at n=100k). When p is non-nil,
// Navigable instead applies the classic diversity heuristic of
// HNSW/Vamana: walking candidates best-first, an edge u→v is kept only if
// v is closer to u than to every already-kept neighbor — redundant
// near-duplicates are rejected and weaker long-range edges take their
// slots — then any remaining capacity is refilled with the best rejected
// candidates so degree never drops below the cap. With p == nil the cap
// falls back to plain best-first truncation (acceptable for tiny or
// synthetic graphs; measurably worse for real search).
//
// The result shares no slices with g.
func (g *Graph) Navigable(p Provider) *Graph {
	if g == nil {
		return nil
	}
	out := &Graph{K: g.K, Neighbors: make([][]Neighbor, len(g.Neighbors))}
	deg := make([]int, len(g.Neighbors))
	for u, nbrs := range g.Neighbors {
		deg[u] += len(nbrs)
		for _, nb := range nbrs {
			if int(nb.ID) < len(deg) {
				deg[nb.ID]++
			}
		}
	}
	for u := range out.Neighbors {
		out.Neighbors[u] = make([]Neighbor, 0, deg[u])
	}
	for u, nbrs := range g.Neighbors {
		out.Neighbors[u] = append(out.Neighbors[u], nbrs...)
		for _, nb := range nbrs {
			if int(nb.ID) < len(out.Neighbors) {
				out.Neighbors[nb.ID] = append(out.Neighbors[nb.ID], Neighbor{ID: int32(u), Sim: nb.Sim})
			}
		}
	}
	maxDeg := max(64, 4*g.K)
	var rejected []Neighbor
	for u := range out.Neighbors {
		nbrs := out.Neighbors[u]
		sort.Slice(nbrs, func(i, j int) bool { return ranksAbove(nbrs[i], nbrs[j]) })
		// Dedup in place (mirroring doubles edges that were already
		// reciprocal); the sort groups duplicates.
		uniq := nbrs[:0]
		for i, nb := range nbrs {
			if i > 0 && nb.ID == nbrs[i-1].ID {
				continue
			}
			uniq = append(uniq, nb)
		}
		if len(uniq) <= maxDeg {
			out.Neighbors[u] = uniq
			continue
		}
		if p == nil {
			out.Neighbors[u] = uniq[:maxDeg]
			continue
		}
		kept := make([]Neighbor, 0, maxDeg)
		rejected = rejected[:0]
		for _, nb := range uniq {
			if len(kept) == maxDeg {
				break
			}
			diverse := true
			for _, w := range kept {
				if p.Similarity(int(nb.ID), int(w.ID)) > nb.Sim {
					diverse = false
					break
				}
			}
			if diverse {
				kept = append(kept, nb)
			} else {
				rejected = append(rejected, nb)
			}
		}
		for _, nb := range rejected {
			if len(kept) == maxDeg {
				break
			}
			kept = append(kept, nb)
		}
		sort.Slice(kept, func(i, j int) bool { return ranksAbove(kept[i], kept[j]) })
		out.Neighbors[u] = kept
	}
	return out
}

// searchState is the pooled per-query scratch: an epoch-stamped visited
// array (no clearing between queries), the candidate max-heap, the bounded
// result heap and the seed buffer. Pooling makes a steady query load
// allocation-free regardless of corpus size.
type searchState struct {
	marks []uint32
	stamp uint32
	cand  []Neighbor // max-heap under ranksAbove (root = best unexpanded)
	res   []Neighbor // min-heap under ranksBelow (root = worst kept)
	seeds []int32
}

var searchPool = sync.Pool{New: func() any { return new(searchState) }}

// reset prepares the state for a graph of n nodes: grows the visited array
// if needed and advances the visit stamp so no per-query clearing happens
// (the array is wiped only on the 2³²-th reuse, when the stamp wraps).
func (st *searchState) reset(n int) {
	if len(st.marks) < n {
		st.marks = make([]uint32, n)
		st.stamp = 0
	}
	st.stamp++
	if st.stamp == 0 {
		clear(st.marks)
		st.stamp = 1
	}
	st.cand = st.cand[:0]
	st.res = st.res[:0]
	st.seeds = st.seeds[:0]
}

// visit marks v and reports whether it was already marked this query.
func (st *searchState) visit(v int32) bool {
	if st.marks[v] == st.stamp {
		return true
	}
	st.marks[v] = st.stamp
	return false
}

// ranksAbove is the strict (sim desc, id asc) total order, the complement
// of ranksBelow: a ranks above b when it would sort strictly earlier in a
// TopK result. Heaps ordered by a total order make the kept set — and with
// it the whole search — deterministic at every tie.
func ranksAbove(a, b Neighbor) bool {
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.ID < b.ID
}

// heapUp/heapDown are textbook sift operations under an arbitrary
// "ahead" order (ahead(a, b) = a belongs nearer the root).
func heapUp(h []Neighbor, i int, ahead func(a, b Neighbor) bool) {
	for i > 0 {
		p := (i - 1) / 2
		if !ahead(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func heapDown(h []Neighbor, ahead func(a, b Neighbor) bool) {
	i := 0
	for {
		best, l, r := i, 2*i+1, 2*i+2
		if l < len(h) && ahead(h[l], h[best]) {
			best = l
		}
		if r < len(h) && ahead(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// consider scores node v (already marked visited) and inserts it into the
// beam when it improves it. ef bounds the result heap. An excluded node
// never enters the result heap but still joins the candidate heap when its
// similarity clears the floor — it can lead somewhere even though it may
// not be an answer.
func (st *searchState) consider(v int32, oracle SearchOracle, ef int, excluded bool, stats *SearchStats) {
	floor := -1.0
	if len(st.res) == ef {
		floor = st.res[0].Sim
	}
	sim, ok := oracle.ScoreAbove(v, floor)
	if !ok {
		stats.Abandoned++
		return
	}
	stats.Scored++
	cand := Neighbor{ID: v, Sim: sim}
	if !excluded {
		if len(st.res) == ef {
			if !ranksAbove(cand, st.res[0]) {
				return
			}
			st.res[0] = cand
			heapDown(st.res, ranksBelow)
		} else {
			st.res = append(st.res, cand)
			heapUp(st.res, len(st.res)-1, ranksBelow)
		}
	} else if len(st.res) == ef && !ranksAbove(cand, st.res[0]) {
		// Below the full beam's floor: not worth traversing either.
		return
	}
	st.cand = append(st.cand, cand)
	heapUp(st.cand, len(st.cand)-1, ranksAbove)
}

// GraphSearch returns the (at most) k best nodes of g for the oracle's
// query via greedy best-first descent over the graph's edges, with an
// ef-bounded beam and multi-seed entry points. The result is sorted by
// decreasing similarity with ties broken by increasing id — the same order
// as TopK — and is fully deterministic for a fixed (graph, oracle, opts),
// but approximate: unlike TopK's total scan it can miss true neighbors the
// descent never reaches (isolated nodes, disconnected clusters), so a
// result shorter than min(k, n) signals the caller to fall back to a scan.
// Pass g.Navigable(p) rather than a raw directed KNN graph — without the
// mirrored edges, recall degrades badly (see Navigable).
//
// A canceled Ctx aborts within one hop and returns (nil, stats, ctx.Err())
// — never a partial result. GraphSearch is safe for concurrent use as long
// as the oracle is; per-query scratch comes from an internal pool, so a
// steady query load allocates only the returned slice.
func GraphSearch(g *Graph, oracle SearchOracle, k int, opts SearchOptions) ([]Neighbor, SearchStats, error) {
	var stats SearchStats
	if g == nil || len(g.Neighbors) == 0 || k <= 0 {
		return nil, stats, nil
	}
	n := len(g.Neighbors)
	if k > n {
		k = n
	}
	ef := opts.Ef
	if ef <= 0 {
		ef = max(64, 16*k)
	}
	if ef < k {
		ef = k
	}
	if ef > n {
		ef = n
	}
	ctx := opts.Ctx
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
	}

	st := searchPool.Get().(*searchState)
	defer searchPool.Put(st)
	st.reset(n)

	excl := opts.Exclude
	if excl == nil {
		excl = func(int32) bool { return false }
	}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		st.seeds = appendSpreadSeeds(st.seeds, n, opts.NumSeeds)
		seeds = st.seeds
	}
	for _, v := range seeds {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		if v < 0 || int(v) >= n || st.visit(v) {
			continue
		}
		st.consider(v, oracle, ef, excl(v), &stats)
	}

	for len(st.cand) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		// Pop the best unexpanded candidate; once it cannot beat the worst
		// kept result the greedy frontier is exhausted (ties keep
		// expanding — equal-similarity nodes can lead to better ones).
		c := st.cand[0]
		last := len(st.cand) - 1
		st.cand[0] = st.cand[last]
		st.cand = st.cand[:last]
		heapDown(st.cand, ranksAbove)
		if len(st.res) == ef && c.Sim < st.res[0].Sim {
			break
		}
		stats.Hops++
		for _, nb := range g.Neighbors[c.ID] {
			v := nb.ID
			if v < 0 || int(v) >= n || st.visit(v) {
				continue
			}
			st.consider(v, oracle, ef, excl(v), &stats)
		}
	}

	out := make([]Neighbor, len(st.res))
	copy(out, st.res)
	sort.Slice(out, func(i, j int) bool { return ranksAbove(out[i], out[j]) })
	if len(out) > k {
		out = out[:k]
	}
	return out, stats, nil
}
