package knn

import (
	"context"
	"math/rand"
)

// randomInit fills every neighborhood with k distinct random users (the
// random graph both greedy algorithms start from), computing their
// similarities through cp so the comparisons are accounted for. It checks
// ctx once per user and stops early on cancellation — the init phase is
// O(n·k) similarity calls and must not outlive a canceled build.
func randomInit(ctx context.Context, cp *CountingProvider, nhs []*neighborhood, k int, rng *rand.Rand) {
	n := len(nhs)
	for u := 0; u < n; u++ {
		if n < 2 || ctx.Err() != nil {
			return
		}
		// Sample without replacement; for k ≥ n−1 take everyone.
		if k >= n-1 {
			for v := 0; v < n; v++ {
				if v != u {
					nhs[u].insert(int32(v), cp.Similarity(u, v))
				}
			}
			continue
		}
		picked := map[int]bool{}
		for len(picked) < k {
			v := rng.Intn(n)
			if v == u || picked[v] {
				continue
			}
			picked[v] = true
			nhs[u].insert(int32(v), cp.Similarity(u, v))
		}
	}
}
