package knn

import "math/rand"

// randomInit fills every neighborhood with k distinct random users (the
// random graph both greedy algorithms start from), computing their
// similarities through cp so the comparisons are accounted for.
func randomInit(cp *CountingProvider, nhs []*neighborhood, k int, rng *rand.Rand) {
	n := len(nhs)
	for u := 0; u < n; u++ {
		if n < 2 {
			return
		}
		// Sample without replacement; for k ≥ n−1 take everyone.
		if k >= n-1 {
			for v := 0; v < n; v++ {
				if v != u {
					nhs[u].insert(int32(v), cp.Similarity(u, v))
				}
			}
			continue
		}
		picked := map[int]bool{}
		for len(picked) < k {
			v := rng.Intn(n)
			if v == u || picked[v] {
				continue
			}
			picked[v] = true
			nhs[u].insert(int32(v), cp.Similarity(u, v))
		}
	}
}
