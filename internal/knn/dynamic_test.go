package knn

import (
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func newDynamicFixture(t *testing.T) (*Dynamic, *dataset.Dataset, *core.Scheme) {
	t.Helper()
	d := dataset.Generate(dataset.ML1M, 0.02, 41)
	scheme := core.MustScheme(1024, 41)
	dyn, err := NewDynamic(scheme, d.Profiles, 5, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return dyn, d, scheme
}

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(core.MustScheme(64, 1), nil, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDynamicInitialGraphMatchesBruteForce(t *testing.T) {
	dyn, d, scheme := newDynamicFixture(t)
	g := dyn.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want, _ := BruteForce(NewSHFProvider(scheme, d.Profiles), 5, Options{})
	for u := range g.Neighbors {
		if len(g.Neighbors[u]) != len(want.Neighbors[u]) {
			t.Fatalf("user %d: %d vs %d neighbors", u, len(g.Neighbors[u]), len(want.Neighbors[u]))
		}
		for i := range g.Neighbors[u] {
			if g.Neighbors[u][i].Sim != want.Neighbors[u][i].Sim {
				t.Fatalf("user %d rank %d: sims differ", u, i)
			}
		}
	}
}

func TestDynamicAddRatingValidation(t *testing.T) {
	dyn, _, _ := newDynamicFixture(t)
	if _, err := dyn.AddRating(-1, 5); err == nil {
		t.Error("negative user accepted")
	}
	if _, err := dyn.AddRating(dyn.NumUsers(), 5); err == nil {
		t.Error("out-of-range user accepted")
	}
}

func TestDynamicAddRatingNoOpForExistingItem(t *testing.T) {
	dyn, d, _ := newDynamicFixture(t)
	existing := d.Profiles[0][0]
	comparisons, err := dyn.AddRating(0, existing)
	if err != nil {
		t.Fatal(err)
	}
	if comparisons != 0 {
		t.Errorf("re-adding an item cost %d comparisons", comparisons)
	}
}

func TestDynamicAddRatingKeepsGraphValid(t *testing.T) {
	dyn, d, _ := newDynamicFixture(t)
	for i := 0; i < 20; i++ {
		u := i % dyn.NumUsers()
		if _, err := dyn.AddRating(u, profile.ItemID(d.NumItems+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dyn.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicTracksFullRebuild drives many updates and verifies the
// maintained graph stays close (in quality) to a from-scratch rebuild.
func TestDynamicTracksFullRebuild(t *testing.T) {
	dyn, d, scheme := newDynamicFixture(t)

	// Shift 30 users' profiles by adding items drawn from another user's
	// profile (so similarities genuinely change).
	for i := 0; i < 30; i++ {
		u := i % d.NumUsers()
		src := (u + 7) % d.NumUsers()
		for _, it := range d.Profiles[src][:3] {
			if _, err := dyn.AddRating(u, it); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Rebuild from the maintainer's current profiles.
	current := make([]profile.Profile, dyn.NumUsers())
	for u := range current {
		current[u] = dyn.profiles[u]
	}
	exactP := NewExplicitProvider(current)
	exact, _ := BruteForce(exactP, 5, Options{})
	q := Quality(dyn.Graph(), exact, exactP)
	rebuilt, _ := BruteForce(NewSHFProvider(scheme, current), 5, Options{})
	qRebuilt := Quality(rebuilt, exact, exactP)
	if q < qRebuilt-0.05 {
		t.Errorf("maintained quality %.3f fell more than 0.05 below rebuild %.3f", q, qRebuilt)
	}
}

func TestDynamicAddUserSmallGraph(t *testing.T) {
	scheme := core.MustScheme(512, 42)
	profiles := []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(2, 3, 4),
		profile.New(100, 101),
	}
	dyn, err := NewDynamic(scheme, profiles, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, comparisons := dyn.AddUser(profile.New(1, 2, 3, 4))
	if u != 3 {
		t.Fatalf("new user index = %d, want 3", u)
	}
	if comparisons != 3 {
		t.Errorf("small-graph AddUser compared %d, want full scan of 3", comparisons)
	}
	g := dyn.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Neighbors[3]) != 2 {
		t.Errorf("new user has %d neighbors, want 2", len(g.Neighbors[3]))
	}
	// The new user's best neighbors must be the similar ones, not the
	// disjoint one.
	for _, nb := range g.Neighbors[3] {
		if nb.ID == 2 {
			t.Error("new user linked to the disjoint user despite better options")
		}
	}
}

func TestDynamicAddUserLargeGraphDescends(t *testing.T) {
	// A sparse, clustered dataset: the similarity landscape has a
	// gradient the beam search can follow. (On very dense tiny datasets
	// the landscape is flat and no sublinear search can be expected to
	// find an exact twin.)
	d := dataset.Generate(dataset.DBLP, 0.03, 41)
	scheme := core.MustScheme(1024, 41)
	dyn, err := NewDynamic(scheme, d.Profiles, 5, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	n := dyn.NumUsers()
	// Clone an existing user's profile: the descent must find strong
	// neighbors without a full scan.
	u, comparisons := dyn.AddUser(d.Profiles[10])
	if u != n {
		t.Fatalf("index = %d, want %d", u, n)
	}
	if comparisons >= n {
		t.Errorf("AddUser compared %d of %d users; expected a partial scan", comparisons, n)
	}
	g := dyn.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Neighbors[u]) == 0 {
		t.Fatal("new user has no neighbors")
	}
	if best := g.Neighbors[u][0]; best.Sim < 0.9 {
		t.Errorf("clone's best neighbor similarity %.3f, expected ≈1 (its twin)", best.Sim)
	}
}

// TestDynamicProfilesIsACopy is the regression test for the shared-slice
// bug: Profiles used to hand out the maintainer's internal slice, so a
// caller mutating a returned profile silently desynchronized profiles from
// the cached fingerprints. Both levels (the slice of profiles and each
// profile's item array) must now be isolated.
func TestDynamicProfilesIsACopy(t *testing.T) {
	dyn, _, _ := newDynamicFixture(t)
	before := dyn.Graph()

	got := dyn.Profiles()
	// Mutate everything we were given, both levels.
	for i := range got {
		for j := range got[i] {
			got[i][j] = profile.ItemID(999999 + j)
		}
		got[i] = profile.New(1)
	}

	fresh := dyn.Profiles()
	for i := range fresh {
		for j := range fresh[i] {
			if fresh[i][j] != dyn.profiles[i][j] {
				t.Fatalf("user %d item %d changed after caller mutation", i, j)
			}
		}
	}
	// The graph must still be derivable from unchanged state: repairing a
	// user after the caller's vandalism must not see vandalized items.
	after := dyn.Graph()
	if len(after.Neighbors) != len(before.Neighbors) {
		t.Fatal("graph shape changed")
	}
	for u := range before.Neighbors {
		for i, nb := range before.Neighbors[u] {
			if after.Neighbors[u][i] != nb {
				t.Fatalf("user %d edge %d changed: %+v vs %+v", u, i, after.Neighbors[u][i], nb)
			}
		}
	}
}
