package knn

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
)

// onlineFixture fingerprints a seeded ML-shaped corpus: the raw material
// every online-maintenance test draws nodes from.
func onlineFixture(t *testing.T, scale float64, seed int64) []core.Fingerprint {
	t.Helper()
	d := dataset.Generate(dataset.ML1M, scale, seed)
	scheme := core.MustScheme(1024, 99)
	return scheme.FingerprintAll(d.Profiles)
}

// newEmptyOnline starts a maintainer with zero nodes — every node arrives
// through Insert.
func newEmptyOnline(t *testing.T, k int) *Online {
	t.Helper()
	o, err := NewOnline(&Graph{K: k}, &Graph{K: k}, nil, nil, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// liveSubgraph projects a snapshot onto its live nodes: dead nodes and
// stale edges to dead nodes are dropped, IDs are remapped to a dense
// range. Returns the projected graph and the live fingerprints in the
// same order.
func liveSubgraph(s *OnlineSnapshot, fps []core.Fingerprint) (*Graph, []core.Fingerprint) {
	remap := make(map[int32]int32, s.Live)
	var liveFPs []core.Fingerprint
	for id := range s.Graph.Neighbors {
		if !s.Dead[id] {
			remap[int32(id)] = int32(len(liveFPs))
			liveFPs = append(liveFPs, fps[id])
		}
	}
	g := &Graph{K: s.Graph.K, Neighbors: make([][]Neighbor, len(liveFPs))}
	for id, nbrs := range s.Graph.Neighbors {
		u, ok := remap[int32(id)]
		if !ok {
			continue
		}
		for _, nb := range nbrs {
			if v, ok := remap[nb.ID]; ok {
				g.Neighbors[u] = append(g.Neighbors[u], Neighbor{ID: v, Sim: nb.Sim})
			}
		}
	}
	return g, liveFPs
}

// TestOnlineInsertOnlyBuildQuality: a graph grown purely through Insert
// must reach batch-build quality — within a few points of the exact graph
// on the same fingerprints.
func TestOnlineInsertOnlyBuildQuality(t *testing.T) {
	fps := onlineFixture(t, 0.06, 7) // ≈360 users
	const k = 10
	o := newEmptyOnline(t, k)
	for _, fp := range fps {
		o.Insert(fp)
	}
	s := o.Snapshot()
	if s.Live != len(fps) || s.Seq != uint64(len(fps)) {
		t.Fatalf("snapshot live=%d seq=%d, want %d/%d", s.Live, s.Seq, len(fps), len(fps))
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &SHFProvider{Fingerprints: fps}
	exact, _ := BruteForce(p, k, Options{})
	if q := Quality(s.Graph, exact, p); q < 0.95 {
		t.Errorf("insert-only quality = %.3f, want ≥ 0.95", q)
	}
	if r := Recall(s.Graph, exact); r < 0.80 {
		t.Errorf("insert-only recall = %.3f, want ≥ 0.80", r)
	}
}

// TestOnlineDeleteHidesNode: a deleted node disappears from every live
// KNN list it was detached from, its own list empties, and searches over
// the snapshot never return it.
func TestOnlineDeleteHidesNode(t *testing.T) {
	fps := onlineFixture(t, 0.04, 11)
	const k = 8
	o := newEmptyOnline(t, k)
	for _, fp := range fps {
		o.Insert(fp)
	}
	victim := int32(len(fps) / 2)
	res, err := o.Delete(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Touched) == 0 || res.Touched[0].ID != victim {
		t.Fatalf("delete touched %v, want victim %d first", res.Touched, victim)
	}
	s := o.Snapshot()
	if !s.Dead[victim] || s.Live != len(fps)-1 {
		t.Fatalf("dead=%v live=%d after delete", s.Dead[victim], s.Live)
	}
	if len(s.Graph.Neighbors[victim]) != 0 {
		t.Errorf("victim kept %d out-edges", len(s.Graph.Neighbors[victim]))
	}
	for _, tn := range res.Touched[1:] {
		if containsID(s.Graph.Neighbors[tn.ID], victim) {
			t.Errorf("touched node %d still lists the victim", tn.ID)
		}
	}
	// A search for the victim's own fingerprint must find its former
	// neighbors, never the victim.
	oracle := OracleFunc(func(v int32) float64 { return core.Jaccard(fps[victim], fps[v]) })
	got, _, err := GraphSearch(s.Nav, oracle, k, SearchOptions{
		Exclude: func(v int32) bool { return s.Dead[v] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("search over post-delete graph returned nothing")
	}
	for _, nb := range got {
		if nb.ID == victim {
			t.Errorf("search returned the deleted node")
		}
	}
	// Deleting again is an idempotent no-op that still advances the
	// sequence.
	res2, err := o.Delete(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seq != res.Seq+1 {
		t.Errorf("second delete seq = %d, want %d", res2.Seq, res.Seq+1)
	}
	if o.Snapshot().Live != len(fps)-1 {
		t.Errorf("double delete changed live count")
	}
}

// TestOnlineOverwriteMovesNode: overwriting a node with a far-away
// fingerprint must rewire its neighborhood to the new location, and
// overwriting a tombstoned node revives it.
func TestOnlineOverwriteMovesNode(t *testing.T) {
	fps := onlineFixture(t, 0.04, 13)
	const k = 8
	o := newEmptyOnline(t, k)
	for _, fp := range fps[:len(fps)-1] {
		o.Insert(fp)
	}
	moved := int32(3)
	target := fps[len(fps)-1] // held out: the "new profile"
	if _, err := o.Overwrite(moved, target); err != nil {
		t.Fatal(err)
	}
	s := o.Snapshot()
	if s.Dead[moved] {
		t.Fatal("overwrite tombstoned the node")
	}
	// The rewired list must match a brute-force scan with the new
	// fingerprint (tie-tolerant: compare similarity sequences).
	var want []Neighbor
	for v := range s.Graph.Neighbors {
		if int32(v) == moved || s.Dead[v] {
			continue
		}
		want = append(want, Neighbor{ID: int32(v), Sim: core.Jaccard(target, fps[v])})
	}
	sortNeighborsRanked(want)
	got := s.Graph.Neighbors[moved]
	if len(got) != min(k, len(want)) {
		t.Fatalf("moved node has %d neighbors, want %d", len(got), min(k, len(want)))
	}
	for i := range got {
		if got[i].Sim != want[i].Sim {
			t.Errorf("rank %d: sim %g, brute force says %g", i, got[i].Sim, want[i].Sim)
		}
	}

	// Revive: delete, then overwrite brings it back.
	if _, err := o.Delete(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Overwrite(moved, fps[moved]); err != nil {
		t.Fatal(err)
	}
	s = o.Snapshot()
	if s.Dead[moved] || s.Live != len(fps)-1 {
		t.Errorf("revive failed: dead=%v live=%d", s.Dead[moved], s.Live)
	}
	if len(s.Graph.Neighbors[moved]) == 0 {
		t.Errorf("revived node has no neighbors")
	}
}

func sortNeighborsRanked(nbrs []Neighbor) {
	for i := 1; i < len(nbrs); i++ {
		for j := i; j > 0 && ranksAbove(nbrs[j], nbrs[j-1]); j-- {
			nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
		}
	}
}

// TestOnlineErrors: out-of-range mutations are rejected without touching
// state.
func TestOnlineErrors(t *testing.T) {
	if _, err := NewOnline(nil, nil, nil, nil, 5, 0); err == nil {
		t.Error("NewOnline accepted a nil graph")
	}
	if _, err := NewOnline(&Graph{K: 5}, nil, nil, nil, 0, 0); err == nil {
		t.Error("NewOnline accepted k=0")
	}
	if _, err := NewOnline(&Graph{K: 5, Neighbors: make([][]Neighbor, 3)}, nil, nil, nil, 5, 0); err == nil {
		t.Error("NewOnline accepted a fingerprint/node count mismatch")
	}
	o := newEmptyOnline(t, 5)
	o.Insert(core.MustScheme(64, 1).Fingerprint(nil))
	seq := o.Snapshot().Seq
	if _, err := o.Delete(5); err == nil {
		t.Error("Delete accepted an out-of-range id")
	}
	if _, err := o.Overwrite(-1, core.Fingerprint{}); err == nil {
		t.Error("Overwrite accepted a negative id")
	}
	if got := o.Snapshot().Seq; got != seq {
		t.Errorf("failed mutations advanced seq %d → %d", seq, got)
	}
}

// TestOnlineDeterminism: the same mutation sequence applied twice yields
// byte-identical graphs — the property the durable delta replay leans on.
func TestOnlineDeterminism(t *testing.T) {
	fps := onlineFixture(t, 0.04, 17)
	run := func() *OnlineSnapshot {
		o := newEmptyOnline(t, 8)
		rng := rand.New(rand.NewSource(99))
		for i, fp := range fps {
			o.Insert(fp)
			if i > 20 && rng.Intn(4) == 0 {
				id := int32(rng.Intn(i))
				switch rng.Intn(2) {
				case 0:
					o.Delete(id)
				case 1:
					o.Overwrite(id, fps[rng.Intn(len(fps))])
				}
			}
		}
		return o.Snapshot()
	}
	a, b := run(), run()
	if a.Seq != b.Seq || a.Live != b.Live {
		t.Fatalf("runs diverged: seq %d/%d live %d/%d", a.Seq, b.Seq, a.Live, b.Live)
	}
	if !reflect.DeepEqual(a.Graph, b.Graph) {
		t.Error("KNN graphs diverged across identical runs")
	}
	if !reflect.DeepEqual(a.Nav, b.Nav) {
		t.Error("navigable graphs diverged across identical runs")
	}
}

// TestOnlineTouchedReplayReconstructsGraph: applying each mutation's
// Touched set to a shadow graph must reproduce the online KNN graph
// exactly — the invariant that makes the graph-delta WAL a faithful warm
// recovery.
func TestOnlineTouchedReplayReconstructsGraph(t *testing.T) {
	fps := onlineFixture(t, 0.04, 19)
	const k = 8
	o := newEmptyOnline(t, k)
	shadow := &Graph{K: k}
	apply := func(res MutationResult) {
		t.Helper()
		if err := ApplyTouched(shadow, res.Touched); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i, fp := range fps {
		_, res := o.Insert(fp)
		apply(res)
		if i > 10 && rng.Intn(3) == 0 {
			id := int32(rng.Intn(i))
			var err error
			if rng.Intn(2) == 0 {
				res, err = o.Delete(id)
			} else {
				res, err = o.Overwrite(id, fps[rng.Intn(len(fps))])
			}
			if err != nil {
				t.Fatal(err)
			}
			apply(res)
		}
	}
	final := o.Snapshot().Graph
	if !reflect.DeepEqual(shadow, final) {
		for u := range final.Neighbors {
			if !reflect.DeepEqual(shadow.Neighbors[u], final.Neighbors[u]) {
				t.Fatalf("node %d: replay %v, live %v", u, shadow.Neighbors[u], final.Neighbors[u])
			}
		}
		t.Fatal("replayed graph differs from live graph")
	}
}

// TestApplyTouchedRejectsInvalid: the replay half must reject deltas that
// would corrupt the graph.
func TestApplyTouchedRejectsInvalid(t *testing.T) {
	g := &Graph{K: 2, Neighbors: [][]Neighbor{{{ID: 1, Sim: 1}}, {{ID: 0, Sim: 1}}}}
	cases := map[string][]TouchedNode{
		"node gap":          {{ID: 5}},
		"negative node":     {{ID: -1}},
		"neighbor range":    {{ID: 0, Neighbors: []Neighbor{{ID: 9, Sim: 0.5}}}},
		"self loop":         {{ID: 1, Neighbors: []Neighbor{{ID: 1, Sim: 1}}}},
		"grown then beyond": {{ID: 2, Neighbors: []Neighbor{{ID: 3, Sim: 0.5}}}},
	}
	for name, touched := range cases {
		if err := ApplyTouched(&Graph{K: 2, Neighbors: append([][]Neighbor(nil), g.Neighbors...)}, touched); err == nil {
			t.Errorf("%s: ApplyTouched accepted invalid delta", name)
		}
	}
	// Growth by exactly one node is the legal insert shape.
	gg := &Graph{K: 2, Neighbors: append([][]Neighbor(nil), g.Neighbors...)}
	if err := ApplyTouched(gg, []TouchedNode{{ID: 2, Neighbors: []Neighbor{{ID: 0, Sim: 0.5}}}}); err != nil {
		t.Fatal(err)
	}
	if len(gg.Neighbors) != 3 {
		t.Errorf("insert delta grew graph to %d nodes, want 3", len(gg.Neighbors))
	}
}

// TestOnlineSnapshotImmutableUnderMutations: concurrent readers hold old
// snapshots while mutations continue; the copy-on-write discipline means
// the race detector stays quiet and old snapshots keep their content.
func TestOnlineSnapshotImmutableUnderMutations(t *testing.T) {
	fps := onlineFixture(t, 0.04, 23)
	const k = 8
	o := newEmptyOnline(t, k)
	half := len(fps) / 2
	for _, fp := range fps[:half] {
		o.Insert(fp)
	}
	frozen := o.Snapshot()
	frozenEdges := frozen.Graph.NumEdges()
	frozenSeq := frozen.Seq

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := o.Snapshot()
				oracle := OracleFunc(func(v int32) float64 { return core.Jaccard(fps[r], fps[v]) })
				if _, _, err := GraphSearch(s.Nav, oracle, k, SearchOptions{
					Exclude: func(v int32) bool { return s.Dead[v] },
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(31))
	for _, fp := range fps[half:] {
		o.Insert(fp)
		if rng.Intn(3) == 0 {
			o.Delete(int32(rng.Intn(half)))
		}
	}
	close(stop)
	wg.Wait()

	if frozen.Seq != frozenSeq || frozen.Graph.NumEdges() != frozenEdges {
		t.Error("published snapshot mutated after later writes")
	}
	if len(frozen.Graph.Neighbors) != half {
		t.Errorf("frozen snapshot grew to %d nodes", len(frozen.Graph.Neighbors))
	}
}
