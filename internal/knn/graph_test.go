package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"goldfinger/internal/profile"
)

// fourUsers is a tiny dataset with hand-checkable similarities.
//
//	u0 = {1,2,3}, u1 = {2,3,4}, u2 = {1,2,3,4}, u3 = {10,11}
//
// J(0,1)=2/4, J(0,2)=3/4, J(0,3)=0, J(1,2)=3/4, J(1,3)=0, J(2,3)=0.
func fourUsers() []profile.Profile {
	return []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(2, 3, 4),
		profile.New(1, 2, 3, 4),
		profile.New(10, 11),
	}
}

func TestExplicitProviderMatchesProfileJaccard(t *testing.T) {
	ps := fourUsers()
	p := NewExplicitProvider(ps)
	if p.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d", p.NumUsers())
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			want := profile.Jaccard(ps[u], ps[v])
			if got := p.Similarity(u, v); got != want {
				t.Errorf("Similarity(%d,%d) = %g, want %g", u, v, got, want)
			}
		}
	}
}

func TestCountingProvider(t *testing.T) {
	cp := NewCountingProvider(NewExplicitProvider(fourUsers()))
	if cp.Comparisons() != 0 {
		t.Fatal("fresh counter not zero")
	}
	cp.Similarity(0, 1)
	cp.Similarity(2, 3)
	if cp.Comparisons() != 2 {
		t.Errorf("Comparisons = %d, want 2", cp.Comparisons())
	}
	cp.Reset()
	if cp.Comparisons() != 0 {
		t.Error("Reset did not zero the counter")
	}
}

func TestNeighborhoodInsert(t *testing.T) {
	nh := newNeighborhood(2)
	if !nh.insert(1, 0.5) || !nh.insert(2, 0.3) {
		t.Fatal("inserts below capacity rejected")
	}
	if nh.insert(1, 0.9) {
		t.Error("duplicate ID accepted")
	}
	if nh.insert(3, 0.1) {
		t.Error("worse-than-worst candidate accepted at capacity")
	}
	if !nh.insert(3, 0.4) {
		t.Error("better-than-worst candidate rejected")
	}
	got := nh.snapshot()
	ids := map[int32]bool{}
	for _, nb := range got {
		ids[nb.ID] = true
	}
	if !ids[1] || !ids[3] || ids[2] {
		t.Errorf("final neighborhood = %v, want {1, 3}", got)
	}
}

func TestNeighborhoodFlags(t *testing.T) {
	nh := newNeighborhood(3)
	nh.insert(1, 0.5)
	nh.insert(2, 0.6)
	fresh, old := nh.snapshotFlags()
	if len(fresh) != 2 || len(old) != 0 {
		t.Fatalf("first snapshot: fresh=%d old=%d, want 2, 0", len(fresh), len(old))
	}
	fresh, old = nh.snapshotFlags()
	if len(fresh) != 0 || len(old) != 2 {
		t.Fatalf("second snapshot: fresh=%d old=%d, want 0, 2", len(fresh), len(old))
	}
	nh.insert(3, 0.7)
	fresh, old = nh.snapshotFlags()
	if len(fresh) != 1 || fresh[0].ID != 3 || len(old) != 2 {
		t.Fatalf("after new insert: fresh=%v old=%v", fresh, old)
	}
}

func TestGraphValidate(t *testing.T) {
	ok := &Graph{K: 2, Neighbors: [][]Neighbor{
		{{ID: 1, Sim: 0.9}, {ID: 2, Sim: 0.5}},
		{{ID: 0, Sim: 0.9}},
		{},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	bad := []*Graph{
		{K: 1, Neighbors: [][]Neighbor{{{ID: 1, Sim: 1}, {ID: 2, Sim: 1}}, {}, {}}},     // too many
		{K: 2, Neighbors: [][]Neighbor{{{ID: 0, Sim: 1}}}},                              // self-loop
		{K: 2, Neighbors: [][]Neighbor{{{ID: 1, Sim: 1}, {ID: 1, Sim: 0.5}}, {}}},       // duplicate
		{K: 2, Neighbors: [][]Neighbor{{{ID: 1, Sim: 0.2}, {ID: 2, Sim: 0.8}}, {}, {}}}, // unsorted
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad graph %d accepted", i)
		}
	}
}

func TestAvgSimilarityAndQuality(t *testing.T) {
	ps := fourUsers()
	p := NewExplicitProvider(ps)
	exact := &Graph{K: 1, Neighbors: [][]Neighbor{
		{{ID: 2, Sim: 0.75}},
		{{ID: 2, Sim: 0.75}},
		{{ID: 0, Sim: 0.75}},
		{},
	}}
	if got := exact.AvgSimilarity(p); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AvgSimilarity = %g, want 0.75", got)
	}
	// An approximation picking u1 (sim 0.5) instead of u2 for u0.
	approx := &Graph{K: 1, Neighbors: [][]Neighbor{
		{{ID: 1, Sim: 0.5}},
		{{ID: 2, Sim: 0.75}},
		{{ID: 0, Sim: 0.75}},
		{},
	}}
	want := ((0.5 + 0.75 + 0.75) / 3) / 0.75
	if got := Quality(approx, exact, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quality = %g, want %g", got, want)
	}
	if got := Quality(exact, exact, p); math.Abs(got-1) > 1e-12 {
		t.Errorf("Quality(exact, exact) = %g, want 1", got)
	}
}

func TestNumEdges(t *testing.T) {
	g := &Graph{K: 2, Neighbors: [][]Neighbor{
		{{ID: 1, Sim: 1}, {ID: 2, Sim: 0.5}},
		{{ID: 0, Sim: 1}},
		{},
	}}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.NumUsers(); got != 3 {
		t.Errorf("NumUsers = %d, want 3", got)
	}
}

func TestAvgSimilarityEmptyGraph(t *testing.T) {
	g := &Graph{K: 3, Neighbors: make([][]Neighbor, 4)}
	if got := g.AvgSimilarity(NewExplicitProvider(fourUsers())); got != 0 {
		t.Errorf("AvgSimilarity of edgeless graph = %g", got)
	}
}

func TestRecall(t *testing.T) {
	exact := &Graph{K: 2, Neighbors: [][]Neighbor{
		{{ID: 1, Sim: 1}, {ID: 2, Sim: 0.5}},
		{{ID: 0, Sim: 1}},
	}}
	approx := &Graph{K: 2, Neighbors: [][]Neighbor{
		{{ID: 1, Sim: 1}, {ID: 3, Sim: 0.4}},
		{{ID: 0, Sim: 1}},
	}}
	// u0 recalls 1/2, u1 recalls 1/1 → macro average 0.75.
	if got := Recall(approx, exact); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Recall = %g, want 0.75", got)
	}
	if got := Recall(exact, exact); got != 1 {
		t.Errorf("Recall(exact, exact) = %g, want 1", got)
	}
}

func TestStatsScanRate(t *testing.T) {
	s := Stats{Comparisons: 45}
	if got := s.ScanRate(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("ScanRate = %g, want 1 (45 of 45 pairs)", got)
	}
	if got := (Stats{}).ScanRate(1); got != 0 {
		t.Errorf("ScanRate(n=1) = %g, want 0", got)
	}
}

func TestFinalizeSortsNeighbors(t *testing.T) {
	nh := newNeighborhood(3)
	nh.insert(5, 0.1)
	nh.insert(6, 0.9)
	nh.insert(7, 0.5)
	g := finalize(3, []*neighborhood{nh})
	nbrs := g.Neighbors[0]
	if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i].Sim > nbrs[j].Sim }) {
		t.Errorf("neighbors not sorted: %v", nbrs)
	}
	if nbrs[0].ID != 6 || nbrs[2].ID != 5 {
		t.Errorf("order = %v", nbrs)
	}
}

// TestQualityDegenerateCases pins the previously ambiguous 0-denominator
// behavior: both graphs scoring 0 means "as good as exact" (1), while a
// zero exact average with a non-zero approximate one has no ground truth
// to normalize by and must be NaN — not a silent 0 that reads as "worthless
// graph" and not an Inf that poisons aggregates undetectably.
func TestQualityDegenerateCases(t *testing.T) {
	p := NewExplicitProvider(fourUsers())
	edgeless := &Graph{K: 2, Neighbors: make([][]Neighbor, 4)}
	// u3 shares no items with anyone: edges from it have similarity 0.
	zeroSim := &Graph{K: 2, Neighbors: [][]Neighbor{
		{}, {}, {},
		{{ID: 0, Sim: 0}},
	}}
	positive := &Graph{K: 2, Neighbors: [][]Neighbor{
		{{ID: 2, Sim: 0.75}}, {}, {}, {},
	}}

	if got := Quality(edgeless, edgeless, p); got != 1 {
		t.Errorf("Quality(edgeless, edgeless) = %g, want 1", got)
	}
	if got := Quality(zeroSim, edgeless, p); got != 1 {
		t.Errorf("Quality(zero-sim, edgeless) = %g, want 1", got)
	}
	if got := Quality(edgeless, zeroSim, p); got != 1 {
		t.Errorf("Quality(edgeless, zero-sim) = %g, want 1", got)
	}
	if got := Quality(positive, edgeless, p); !math.IsNaN(got) {
		t.Errorf("Quality(positive, edgeless) = %g, want NaN", got)
	}
	if got := Quality(positive, zeroSim, p); !math.IsNaN(got) {
		t.Errorf("Quality(positive, zero-sim) = %g, want NaN", got)
	}
}

// TestRecallMatchesMapReference cross-checks the sorted-scratch membership
// test against the straightforward map-based implementation it replaced,
// on wide random graphs where an off-by-one in the binary search would
// surface.
func TestRecallMatchesMapReference(t *testing.T) {
	mapRecall := func(g, exact *Graph) float64 {
		var sum float64
		users := 0
		for u := range exact.Neighbors {
			ex := exact.Neighbors[u]
			if len(ex) == 0 {
				continue
			}
			users++
			in := map[int32]bool{}
			for _, nb := range g.Neighbors[u] {
				in[nb.ID] = true
			}
			hits := 0
			for _, nb := range ex {
				if in[nb.ID] {
					hits++
				}
			}
			sum += float64(hits) / float64(len(ex))
		}
		if users == 0 {
			return 0
		}
		return sum / float64(users)
	}

	rng := rand.New(rand.NewSource(19))
	randomGraph := func(n, k int) *Graph {
		g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
		for u := range g.Neighbors {
			// Some users deliberately keep fewer (or zero) neighbors.
			for _, v := range rng.Perm(n)[:rng.Intn(k+1)] {
				if v == u {
					continue
				}
				g.Neighbors[u] = append(g.Neighbors[u], Neighbor{ID: int32(v), Sim: rng.Float64()})
			}
		}
		return g
	}
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(60, 12)
		exact := randomGraph(60, 12)
		got, want := Recall(g, exact), mapRecall(g, exact)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Recall = %g, map reference = %g", trial, got, want)
		}
	}
	if got := Recall(randomGraph(10, 3), &Graph{K: 3, Neighbors: make([][]Neighbor, 10)}); got != 0 {
		t.Errorf("Recall against edgeless exact graph = %g, want 0", got)
	}
}

// TestRecallAllocs guards the reusable-scratch rewrite: the map-per-user
// version allocated O(n) maps per call.
func TestRecallAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 200, 10
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	for u := range g.Neighbors {
		for _, v := range rng.Perm(n)[:k] {
			if v != u {
				g.Neighbors[u] = append(g.Neighbors[u], Neighbor{ID: int32(v), Sim: rng.Float64()})
			}
		}
	}
	allocs := testing.AllocsPerRun(20, func() { Recall(g, g) })
	if allocs > 3 {
		t.Errorf("Recall allocates %.1f objects per call; scratch slice is not being reused", allocs)
	}
}

// BenchmarkRecall is the benchmark guard for the map-per-user fix: run
// with -benchmem, the map version reported n allocs/op, the scratch
// version O(1).
func BenchmarkRecall(b *testing.B) {
	profiles, scheme := benchCorpus(2000)
	corpus := scheme.PackProfiles(profiles, 0)
	g, _ := BruteForce(NewPackedSHFProvider(corpus), 10, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Recall(g, g)
	}
}
