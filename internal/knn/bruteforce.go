package knn

import (
	"sync"
	"sync/atomic"
)

// BruteForce computes the exact KNN graph with an exhaustive lower-triangle
// scan: exactly n(n−1)/2 similarity computations, each updating both
// endpoints' neighborhoods. Rows are distributed over workers; the
// per-neighborhood mutex keeps symmetric updates safe.
func BruteForce(p Provider, k int, opts Options) (*Graph, Stats) {
	n := p.NumUsers()
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}

	cp := NewCountingProvider(p)
	workers := opts.workers()
	var updates atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for u := 0; u < n; u++ {
			next <- u
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				for v := u + 1; v < n; v++ {
					s := cp.Similarity(u, v)
					if nhs[u].insert(int32(v), s) {
						updates.Add(1)
					}
					if nhs[v].insert(int32(u), s) {
						updates.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	return finalize(k, nhs), Stats{Comparisons: cp.Comparisons(), Updates: updates.Load()}
}
