package knn

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/obs"
)

const (
	// bruteRowBlock is the number of rows a worker claims per cursor bump:
	// large enough that the shared atomic cursor is touched ~n/64 times
	// total, small enough to load-balance the triangle's uneven row costs.
	bruteRowBlock = 64
	// bruteColTile is the number of columns computed per kernel call. It
	// matches the packed corpus tile: 256 rows × 128 bytes (b = 1024)
	// stream 32 KB per call, and the similarity buffer stays small enough
	// to be cache-resident between the kernel and the insertion loop.
	bruteColTile = 256
)

// BruteForce computes the exact KNN graph with an exhaustive lower-triangle
// scan: exactly n(n−1)/2 similarity computations, each updating both
// endpoints' neighborhoods.
//
// Work is handed out as row blocks through an atomic cursor; within a block
// each row is computed in column tiles, through BatchProvider.SimilarityRange
// when the provider supports it (one blocked kernel call per tile) and
// per-pair Similarity otherwise. Every worker accumulates candidates into
// its own flat neighborhood array and its own comparison/update counters —
// there are no per-pair atomics and no per-neighborhood mutexes anywhere on
// the hot path; counters fold into the shared totals once per block and the
// per-worker neighborhoods merge once at the end.
//
// Selection uses the strict (sim desc, id asc) total order of TopK, which
// makes the result graph fully deterministic and independent of the worker
// count and of whether the batched or the per-pair path ran — the per-worker
// local top-k sets always cover the unique global top-k.
//
// Cancellation (Options.Ctx) is checked once per row-block claim — one
// context poll per 64 rows, invisible next to the kernel work — so a cancel
// or deadline stops the scan within one block. The partial graph is still
// merged and returned (structurally valid, possibly incomplete); callers
// that care must inspect Options.Ctx.Err().
func BruteForce(p Provider, k int, opts Options) (*Graph, Stats) {
	n := p.NumUsers()
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	if n == 0 {
		return g, Stats{}
	}
	kCap := min(k, n-1)
	if kCap <= 0 {
		for u := range g.Neighbors {
			g.Neighbors[u] = []Neighbor{}
		}
		return g, Stats{}
	}

	workers := opts.workers()
	numBlocks := (n + bruteRowBlock - 1) / bruteRowBlock
	if workers > numBlocks {
		workers = numBlocks
	}
	batch, _ := p.(BatchProvider)
	ctx := opts.ctx()
	m := opts.metrics()
	m.startProgress(int64(numBlocks))
	scanHist := m.phase("scan")
	scanStart := time.Now()

	locals := make([]*bruteLocal, workers)
	var comparisons, updates atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		locals[w] = &bruteLocal{
			nbrs:     make([]Neighbor, n*kCap),
			cnt:      make([]int32, n),
			worstPos: make([]int32, n),
			kCap:     kCap,
		}
		wg.Add(1)
		go func(l *bruteLocal) {
			defer wg.Done()
			buf := make([]float64, bruteColTile)
			lc := obs.Local{C: m.comparisons}
			defer lc.Flush()
			for {
				if ctx.Err() != nil {
					return
				}
				b := int(cursor.Add(1)) - 1
				lo := b * bruteRowBlock
				if lo >= n {
					return
				}
				hi := min(lo+bruteRowBlock, n)
				var comps, ups int64
				for u := lo; u < hi; u++ {
					for vlo := u + 1; vlo < n; vlo += bruteColTile {
						vhi := min(vlo+bruteColTile, n)
						tile := buf[:vhi-vlo]
						if batch != nil {
							batch.SimilarityRange(u, vlo, vhi, tile)
						} else {
							for v := vlo; v < vhi; v++ {
								tile[v-vlo] = p.Similarity(u, v)
							}
						}
						for v := vlo; v < vhi; v++ {
							s := tile[v-vlo]
							if l.insert(u, int32(v), s) {
								ups++
							}
							if l.insert(v, int32(u), s) {
								ups++
							}
						}
					}
					comps += int64(n - u - 1)
				}
				// Fold the block's counters into the shared totals in one
				// atomic each, instead of one atomic per pair/insert.
				comparisons.Add(comps)
				updates.Add(ups)
				lc.Add(comps)
				lc.Flush()
				m.progressDone.Add(1)
			}
		}(locals[w])
	}
	wg.Wait()
	scanHist.ObserveSince(scanStart)

	mergeHist := m.phase("merge")
	mergeStart := time.Now()
	mergeLocals(g, locals, kCap, workers)
	mergeHist.ObserveSince(mergeStart)
	return g, Stats{Comparisons: comparisons.Load(), Updates: updates.Load()}
}

// bruteLocal is one worker's private candidate state: a flat n×kCap
// neighbor array plus fill counts and the cached position of each node's
// worst entry. No locking — only its owner touches it during the scan, and
// the merge runs after the barrier.
type bruteLocal struct {
	nbrs     []Neighbor
	cnt      []int32
	worstPos []int32 // index of the minimum entry per node; valid once cnt[node] == kCap
	kCap     int
}

// insert adds (id, sim) to node's bounded candidate set under the strict
// (sim desc, id asc) total order. The lower-triangle scan computes each
// unordered pair exactly once, so no duplicate check is needed. It reports
// whether the set changed.
//
// The cached worst position makes the reject path — the overwhelmingly
// common case once the set is full — a single load and compare; the O(kCap)
// rescan runs only on the rare accepted insert, so the amortized cost per
// candidate is O(1) instead of the per-candidate worst-scan the mutex-based
// neighborhood pays.
func (l *bruteLocal) insert(node int, id int32, sim float64) bool {
	base := node * l.kCap
	c := int(l.cnt[node])
	if c < l.kCap {
		l.nbrs[base+c] = Neighbor{ID: id, Sim: sim}
		l.cnt[node] = int32(c + 1)
		if c+1 == l.kCap {
			l.worstPos[node] = int32(findWorst(l.nbrs[base : base+l.kCap]))
		}
		return true
	}
	wp := base + int(l.worstPos[node])
	cand := Neighbor{ID: id, Sim: sim}
	if !ranksBelow(l.nbrs[wp], cand) {
		return false
	}
	l.nbrs[wp] = cand
	l.worstPos[node] = int32(findWorst(l.nbrs[base : base+l.kCap]))
	return true
}

// findWorst returns the index of the minimum entry under the strict
// (sim desc, id asc) total order.
func findWorst(nb []Neighbor) int {
	worst := 0
	for i := 1; i < len(nb); i++ {
		if ranksBelow(nb[i], nb[worst]) {
			worst = i
		}
	}
	return worst
}

// mergeLocals selects, for every node, the top-kCap candidates across all
// workers' local sets (ids are disjoint between workers, since each pair is
// computed once) and writes the sorted neighbor lists into g. The merge is
// parallelized over node ranges; each node's selection is independent.
func mergeLocals(g *Graph, locals []*bruteLocal, kCap, workers int) {
	n := len(g.Neighbors)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sel := make([]Neighbor, 0, kCap)
			for x := lo; x < hi; x++ {
				sel = sel[:0]
				worst := 0
				for _, l := range locals {
					base := x * kCap
					for _, cand := range l.nbrs[base : base+int(l.cnt[x])] {
						if len(sel) < kCap {
							sel = append(sel, cand)
							if len(sel) == kCap {
								worst = findWorst(sel)
							}
							continue
						}
						if ranksBelow(sel[worst], cand) {
							sel[worst] = cand
							worst = findWorst(sel)
						}
					}
				}
				out := make([]Neighbor, len(sel))
				copy(out, sel)
				sort.Slice(out, func(i, j int) bool {
					if out[i].Sim != out[j].Sim {
						return out[i].Sim > out[j].Sim
					}
					return out[i].ID < out[j].ID
				})
				g.Neighbors[x] = out
			}
		}(lo, hi)
	}
	wg.Wait()
}

// LegacyBruteForce is the pre-packed-corpus implementation: a per-row work
// channel, one Provider.Similarity interface call and one CountingProvider
// atomic per pair, and a mutex around every neighborhood insert. It is
// retained as the reference for the equivalence tests and as the baseline
// the BENCH_knn.json before/after numbers are measured against; new code
// should call BruteForce.
func LegacyBruteForce(p Provider, k int, opts Options) (*Graph, Stats) {
	n := p.NumUsers()
	nhs := make([]*neighborhood, n)
	for u := range nhs {
		nhs[u] = newNeighborhood(k)
	}

	cp := NewCountingProvider(p)
	workers := opts.workers()
	var updates atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for u := 0; u < n; u++ {
			next <- u
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				for v := u + 1; v < n; v++ {
					s := cp.Similarity(u, v)
					if nhs[u].insert(int32(v), s) {
						updates.Add(1)
					}
					if nhs[v].insert(int32(u), s) {
						updates.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	return finalize(k, nhs), Stats{Comparisons: cp.Comparisons(), Updates: updates.Load()}
}
