package knn

import (
	"fmt"
	"sort"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// Dynamic maintains a KNN graph under profile updates — the dynamic-data
// setting the paper's related work points to (§6: temporal approaches
// "remain computationally intensive"). GoldFinger makes the incremental
// path cheap: when a user gains an item, only their own fingerprint changes
// (one extra bit), and a local repair re-scores the user against their
// current neighborhood, the reverse neighborhood and neighbors-of-neighbors
// — the same locality assumption Hyrec exploits, applied to maintenance.
//
// Dynamic is not safe for concurrent use; callers serialize updates.
type Dynamic struct {
	scheme   *core.Scheme
	k        int
	profiles []profile.Profile
	fps      []core.Fingerprint
	nhs      []*neighborhood
}

// NewDynamic builds the initial graph (Brute Force over fingerprints) and
// returns the maintainer.
func NewDynamic(scheme *core.Scheme, profiles []profile.Profile, k int, opts Options) (*Dynamic, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: k must be positive, got %d", k)
	}
	d := &Dynamic{
		scheme:   scheme,
		k:        k,
		profiles: append([]profile.Profile(nil), profiles...),
		fps:      scheme.FingerprintAll(profiles),
	}
	d.nhs = make([]*neighborhood, len(profiles))
	for u := range d.nhs {
		d.nhs[u] = newNeighborhood(k)
	}
	p := &SHFProvider{Fingerprints: d.fps}
	g, _ := BruteForce(p, k, opts)
	for u, nbrs := range g.Neighbors {
		for _, nb := range nbrs {
			d.nhs[u].insert(nb.ID, nb.Sim)
		}
	}
	return d, nil
}

// NumUsers returns the current number of users.
func (d *Dynamic) NumUsers() int { return len(d.profiles) }

// Graph snapshots the current KNN graph.
func (d *Dynamic) Graph() *Graph { return finalize(d.k, d.nhs) }

// Profiles returns a deep copy of the maintainer's current profiles.
// Sharing the internal slice would let a caller mutate a profile behind
// the maintainer's back, silently desynchronizing profiles from the
// cached fps fingerprints (which only AddRating/AddUser keep in step);
// the copy makes that class of bug impossible at the cost of an
// inspection-path allocation.
func (d *Dynamic) Profiles() []profile.Profile {
	out := make([]profile.Profile, len(d.profiles))
	for i, p := range d.profiles {
		out[i] = append(profile.Profile(nil), p...)
	}
	return out
}

// sim estimates the similarity of two current users.
func (d *Dynamic) sim(u, v int) float64 {
	return core.Jaccard(d.fps[u], d.fps[v])
}

// AddRating records that user u now has item, refreshes u's fingerprint
// and locally repairs the graph around u. It returns the number of
// similarity computations spent. Adding an item the user already has is a
// no-op.
func (d *Dynamic) AddRating(u int, item profile.ItemID) (int, error) {
	if u < 0 || u >= len(d.profiles) {
		return 0, fmt.Errorf("knn: user %d out of range [0,%d)", u, len(d.profiles))
	}
	if d.profiles[u].Contains(item) {
		return 0, nil
	}
	d.profiles[u] = profile.New(append(append([]profile.ItemID(nil), d.profiles[u]...), item)...)
	d.fps[u] = d.scheme.Fingerprint(d.profiles[u])
	return d.repair(u), nil
}

// AddUser introduces a new user with the given profile, connecting them via
// comparison against a candidate pool: all current neighbors-of-neighbors
// reachable from a seed set of size ~3k (falling back to a full scan for
// small graphs). It returns the new user's index and the comparisons spent.
func (d *Dynamic) AddUser(p profile.Profile) (int, int) {
	u := len(d.profiles)
	d.profiles = append(d.profiles, p)
	d.fps = append(d.fps, d.scheme.Fingerprint(p))
	d.nhs = append(d.nhs, newNeighborhood(d.k))

	comparisons := 0
	if u <= 3*d.k {
		for v := 0; v < u; v++ {
			s := d.sim(u, v)
			comparisons++
			d.nhs[u].insert(int32(v), s)
			d.nhs[v].insert(int32(u), s)
		}
		return u, comparisons
	}

	// Beam search over the existing graph: keep a pool of the ef best
	// candidates seen so far, repeatedly expand the best unexpanded one,
	// and stop when the whole beam has been expanded. ef > k avoids the
	// local optima a pure top-k greedy walk falls into on dense graphs.
	ef := 3 * d.k
	type cand struct {
		id  int32
		sim float64
	}
	seen := map[int32]bool{int32(u): true}
	expanded := map[int32]bool{}
	var pool []cand
	score := func(v int32) {
		if seen[v] {
			return
		}
		seen[v] = true
		s := d.sim(u, int(v))
		comparisons++
		pool = append(pool, cand{id: v, sim: s})
	}
	for i := 0; i < ef; i++ {
		score(int32(i * (u - 1) / (ef - 1)))
	}
	for {
		sort.Slice(pool, func(i, j int) bool { return pool[i].sim > pool[j].sim })
		if len(pool) > ef {
			pool = pool[:ef]
		}
		next := int32(-1)
		for _, c := range pool {
			if !expanded[c.id] {
				next = c.id
				break
			}
		}
		if next < 0 {
			break
		}
		expanded[next] = true
		for _, nn := range d.nhs[next].snapshot() {
			score(nn.ID)
		}
	}
	for _, c := range pool {
		if d.nhs[u].insert(c.id, c.sim) {
			d.nhs[c.id].insert(int32(u), c.sim)
		}
	}
	return u, comparisons
}

// repair re-scores u against its neighborhood, reverse neighbors and
// neighbors-of-neighbors after u's profile changed.
func (d *Dynamic) repair(u int) int {
	comparisons := 0
	// Refresh stored similarities of u's current edges and collect the
	// two-hop candidate set.
	cands := map[int32]bool{}
	for _, nb := range d.nhs[u].snapshot() {
		cands[nb.ID] = true
		for _, nn := range d.nhs[nb.ID].snapshot() {
			cands[nn.ID] = true
		}
	}
	// Reverse edges: users that point at u must refresh too.
	for v := range d.nhs {
		if v == u {
			continue
		}
		for _, nb := range d.nhs[v].snapshot() {
			if int(nb.ID) == u {
				cands[int32(v)] = true
				break
			}
		}
	}
	delete(cands, int32(u))

	// Rebuild u's neighborhood from the candidates and push the new
	// similarity to both sides.
	fresh := newNeighborhood(d.k)
	ids := make([]int32, 0, len(cands))
	for v := range cands {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		s := d.sim(u, int(v))
		comparisons++
		fresh.insert(v, s)
		d.refreshEdge(int(v), u, s)
	}
	d.nhs[u] = fresh
	return comparisons
}

// refreshEdge updates v's stored similarity toward u (inserting if it now
// qualifies).
func (d *Dynamic) refreshEdge(v, u int, s float64) {
	nh := d.nhs[v]
	nh.mu.Lock()
	for i := range nh.entries {
		if int(nh.entries[i].ID) == u {
			nh.entries[i].Sim = s
			nh.mu.Unlock()
			return
		}
	}
	nh.mu.Unlock()
	nh.insert(int32(u), s)
}
