// Package privacy quantifies the protection GoldFinger grants for free
// (paper §2.5): k-anonymity — a fingerprint of cardinality c over an item
// universe of size m with b bits is indistinguishable from (2^(m/b))^c
// profiles (Theorem 2) — and ℓ-diversity with ℓ = m/b (Theorem 3). Beyond
// the paper's average-case bounds, the package computes exact anonymity-set
// sizes from the actual hash pre-images, and simulates the honest-but-
// curious attacker the theorems defend against.
package privacy

import (
	"fmt"
	"math"
	"math/big"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

// KAnonymityLog2 returns log2 of the k-anonymity guaranteed by Theorem 2
// for a fingerprint of the given cardinality: log2((2^(m/b))^c) = c·m/b.
// For AmazonMovies (m = 171356, b = 1024, c = 1) this is ≈167, matching the
// paper's 2^167 per set bit.
func KAnonymityLog2(m, b, cardinality int) float64 {
	if m <= 0 || b <= 0 || cardinality < 0 {
		return 0
	}
	return float64(cardinality) * float64(m) / float64(b)
}

// LDiversity returns the ℓ of Theorem 3: m/b pairwise-disjoint profiles are
// indistinguishable from the true one (167 for AmazonMovies at b = 1024).
func LDiversity(m, b int) float64 {
	if m <= 0 || b <= 0 {
		return 0
	}
	return float64(m) / float64(b)
}

// Preimages returns, for every bit position x, the set H_x = h⁻¹(x) of
// items hashing to x under the scheme, over the item universe [0, m).
func Preimages(s *core.Scheme, m int) [][]profile.ItemID {
	pre := make([][]profile.ItemID, s.NumBits())
	for it := 0; it < m; it++ {
		x := s.BitOf(profile.ItemID(it))
		pre[x] = append(pre[x], profile.ItemID(it))
	}
	return pre
}

// AnonymitySet returns the exact number of profiles P ⊆ I mapping to the
// given fingerprint under the scheme's pre-images: every set bit x can be
// produced by any non-empty subset of H_x, independently, so the count is
// ∏_{x set} (2^|H_x| − 1). A zero result means the fingerprint is
// infeasible (some set bit has an empty pre-image in [0, m)).
func AnonymitySet(fp core.Fingerprint, preimages [][]profile.ItemID) *big.Int {
	total := big.NewInt(1)
	two := big.NewInt(2)
	for _, x := range fp.Bits().Ones() {
		n := len(preimages[x])
		if n == 0 {
			return big.NewInt(0)
		}
		choices := new(big.Int).Exp(two, big.NewInt(int64(n)), nil)
		choices.Sub(choices, big.NewInt(1))
		total.Mul(total, choices)
	}
	return total
}

// DiversityLowerBound returns the exact counterpart of Theorem 3's ℓ for a
// specific fingerprint: the construction in the proof picks one fresh item
// per set bit, so min_{x set} |H_x| pairwise-disjoint candidate profiles
// exist. Returns 0 for an empty fingerprint.
func DiversityLowerBound(fp core.Fingerprint, preimages [][]profile.ItemID) int {
	ones := fp.Bits().Ones()
	if len(ones) == 0 {
		return 0
	}
	minPre := math.MaxInt
	for _, x := range ones {
		if n := len(preimages[x]); n < minPre {
			minPre = n
		}
	}
	return minPre
}

// Report is the privacy accounting for one dataset configuration.
type Report struct {
	Dataset        string
	Items          int // m
	Bits           int // b
	MeanCard       float64
	KAnonymityBits float64 // log2 k for the mean cardinality
	LDiversity     float64
}

// Assess produces the paper's §2.5 numbers for a dataset: m from the item
// universe, the mean fingerprint cardinality under the scheme, and the
// resulting k-anonymity (in bits) and ℓ-diversity.
func Assess(name string, profiles []profile.Profile, numItems int, s *core.Scheme) Report {
	var cardSum float64
	for _, p := range profiles {
		cardSum += float64(s.Fingerprint(p).Cardinality())
	}
	mean := 0.0
	if len(profiles) > 0 {
		mean = cardSum / float64(len(profiles))
	}
	return Report{
		Dataset:        name,
		Items:          numItems,
		Bits:           s.NumBits(),
		MeanCard:       mean,
		KAnonymityBits: KAnonymityLog2(numItems, s.NumBits(), int(math.Round(mean))),
		LDiversity:     LDiversity(numItems, s.NumBits()),
	}
}

// String renders the report in the paper's terms.
func (r Report) String() string {
	return fmt.Sprintf("%s: m=%d b=%d mean c=%.1f → 2^%.0f-anonymity, %.0f-diversity",
		r.Dataset, r.Items, r.Bits, r.MeanCard, r.KAnonymityBits, r.LDiversity)
}

// GuessProfile simulates the honest-but-curious attacker of §2.5: knowing
// the scheme, the item universe and item popularity, it guesses the profile
// behind a fingerprint by picking the most popular item of each set bit's
// pre-image. The fraction of correct guesses (precision) is what the
// anonymity bounds keep low.
func GuessProfile(fp core.Fingerprint, preimages [][]profile.ItemID, popularity []int) profile.Profile {
	var guesses []profile.ItemID
	for _, x := range fp.Bits().Ones() {
		var best profile.ItemID = -1
		bestPop := -1
		for _, it := range preimages[x] {
			pop := 0
			if int(it) < len(popularity) {
				pop = popularity[it]
			}
			if pop > bestPop {
				bestPop = pop
				best = it
			}
		}
		if best >= 0 {
			guesses = append(guesses, best)
		}
	}
	return profile.New(guesses...)
}

// AttackPrecision runs GuessProfile against every profile and returns the
// mean fraction of guessed items actually present in the true profile.
func AttackPrecision(profiles []profile.Profile, numItems int, s *core.Scheme) float64 {
	pre := Preimages(s, numItems)
	popularity := make([]int, numItems)
	for _, p := range profiles {
		for _, it := range p {
			popularity[it]++
		}
	}
	var sum float64
	users := 0
	for _, p := range profiles {
		if p.Len() == 0 {
			continue
		}
		guess := GuessProfile(s.Fingerprint(p), pre, popularity)
		if guess.Len() == 0 {
			continue
		}
		sum += float64(profile.IntersectionSize(guess, p)) / float64(guess.Len())
		users++
	}
	if users == 0 {
		return 0
	}
	return sum / float64(users)
}
