package privacy

import (
	"math"
	"math/big"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func TestKAnonymityLog2PaperNumbers(t *testing.T) {
	// AmazonMovies: m = 171356, b = 1024 → ≈167 bits per set bit (the
	// paper's "2^167-anonymity" for c = 1).
	got := KAnonymityLog2(171356, 1024, 1)
	if math.Abs(got-167.34) > 0.1 {
		t.Errorf("KAnonymityLog2(AM) = %.2f, want ≈167.3", got)
	}
	// Anonymity scales linearly with cardinality.
	if got2 := KAnonymityLog2(171356, 1024, 2); math.Abs(got2-2*got) > 1e-9 {
		t.Errorf("c=2 anonymity %.2f not double c=1 %.2f", got2, got)
	}
}

func TestKAnonymityDegenerate(t *testing.T) {
	if KAnonymityLog2(0, 1024, 1) != 0 || KAnonymityLog2(100, 0, 1) != 0 || KAnonymityLog2(100, 10, -1) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestLDiversityPaperNumber(t *testing.T) {
	if got := LDiversity(171356, 1024); math.Abs(got-167.34) > 0.1 {
		t.Errorf("LDiversity(AM) = %.2f, want ≈167.3", got)
	}
	if LDiversity(0, 10) != 0 {
		t.Error("degenerate m accepted")
	}
}

func TestPreimagesPartitionUniverse(t *testing.T) {
	s := core.MustScheme(16, 3)
	const m = 200
	pre := Preimages(s, m)
	if len(pre) != 16 {
		t.Fatalf("got %d pre-image sets", len(pre))
	}
	seen := map[profile.ItemID]bool{}
	total := 0
	for x, items := range pre {
		for _, it := range items {
			if s.BitOf(it) != x {
				t.Fatalf("item %d in wrong pre-image %d", it, x)
			}
			if seen[it] {
				t.Fatalf("item %d in two pre-images", it)
			}
			seen[it] = true
			total++
		}
	}
	if total != m {
		t.Errorf("pre-images cover %d of %d items", total, m)
	}
}

// TestAnonymitySetByEnumeration checks the exact anonymity count against a
// brute-force enumeration of all non-empty profiles over a tiny universe.
func TestAnonymitySetByEnumeration(t *testing.T) {
	const m, b = 10, 4
	s := core.MustScheme(b, 11)
	pre := Preimages(s, m)

	// Count, for every possible fingerprint, how many profiles map to it.
	counts := map[string]int64{}
	for mask := 1; mask < 1<<m; mask++ {
		var items []profile.ItemID
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, profile.ItemID(i))
			}
		}
		fp := s.Fingerprint(profile.New(items...))
		counts[fp.Bits().String()]++
	}

	// Spot-check several profiles: the formula must equal the enumeration.
	for _, items := range [][]profile.ItemID{{0}, {1, 2}, {0, 3, 7}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}} {
		fp := s.Fingerprint(profile.New(items...))
		want := counts[fp.Bits().String()]
		got := AnonymitySet(fp, pre)
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("profile %v: anonymity set = %s, enumeration says %d", items, got, want)
		}
	}
}

func TestAnonymitySetEmptyFingerprint(t *testing.T) {
	s := core.MustScheme(8, 1)
	pre := Preimages(s, 64)
	got := AnonymitySet(s.Fingerprint(nil), pre)
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("empty fingerprint anonymity = %s, want 1 (only the empty profile)", got)
	}
}

func TestAnonymitySetInfeasibleBit(t *testing.T) {
	s := core.MustScheme(1024, 1)
	// Universe of 4 items: most bits have empty pre-images. A fingerprint
	// from outside the universe can be infeasible.
	pre := Preimages(s, 4)
	fp := s.Fingerprint(profile.New(1000)) // item outside [0,4)
	if got := AnonymitySet(fp, pre); got.Sign() != 0 && !feasible(fp, pre) {
		t.Errorf("infeasible fingerprint got anonymity %s", got)
	}
}

func feasible(fp core.Fingerprint, pre [][]profile.ItemID) bool {
	for _, x := range fp.Bits().Ones() {
		if len(pre[x]) == 0 {
			return false
		}
	}
	return true
}

func TestDiversityLowerBound(t *testing.T) {
	const m, b = 64, 8
	s := core.MustScheme(b, 5)
	pre := Preimages(s, m)
	p := profile.New(0, 1, 2, 3)
	fp := s.Fingerprint(p)
	got := DiversityLowerBound(fp, pre)
	want := math.MaxInt
	for _, x := range fp.Bits().Ones() {
		if len(pre[x]) < want {
			want = len(pre[x])
		}
	}
	if got != want {
		t.Errorf("DiversityLowerBound = %d, want %d", got, want)
	}
	if DiversityLowerBound(s.Fingerprint(nil), pre) != 0 {
		t.Error("empty fingerprint should have diversity 0")
	}
}

func TestDiversityConstructionIsValid(t *testing.T) {
	// Build the proof's Q_j profiles and verify they are pairwise
	// disjoint, differ from P, and are indistinguishable from P.
	const m, b = 60, 6
	s := core.MustScheme(b, 9)
	pre := Preimages(s, m)
	p := profile.New(0, 7, 13)
	fp := s.Fingerprint(p)
	ell := DiversityLowerBound(fp, pre)
	if ell < 2 {
		t.Skip("pre-images too small for a meaningful construction")
	}
	ones := fp.Bits().Ones()
	qs := make([]profile.Profile, 0, ell-1)
	for j := 1; j < ell; j++ {
		var items []profile.ItemID
		for _, x := range ones {
			items = append(items, pre[x][j])
		}
		qs = append(qs, profile.New(items...))
	}
	for i, q := range qs {
		if !s.Fingerprint(q).Bits().Equal(fp.Bits()) {
			t.Fatalf("Q_%d maps to a different fingerprint", i+1)
		}
		for jj := i + 1; jj < len(qs); jj++ {
			if profile.IntersectionSize(q, qs[jj]) != 0 {
				t.Fatalf("Q_%d and Q_%d intersect", i+1, jj+1)
			}
		}
	}
}

func TestAssessReport(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 3)
	s := core.MustScheme(1024, 1)
	r := Assess(d.Name, d.Profiles, d.NumItems, s)
	if r.Dataset != "ml1M" || r.Items != d.NumItems || r.Bits != 1024 {
		t.Errorf("report header wrong: %+v", r)
	}
	if r.MeanCard <= 0 {
		t.Error("mean cardinality should be positive")
	}
	wantK := KAnonymityLog2(d.NumItems, 1024, int(math.Round(r.MeanCard)))
	if math.Abs(r.KAnonymityBits-wantK) > 1e-9 {
		t.Errorf("KAnonymityBits = %g, want %g", r.KAnonymityBits, wantK)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestAttackPrecisionDropsWithUniverse(t *testing.T) {
	// With a small b relative to m, each bit has many candidate items and
	// the attacker's precision should be visibly below 1; a large b makes
	// pre-images nearly singleton and the attack accurate. The gap is the
	// obfuscation the paper claims.
	d := dataset.Generate(dataset.DBLP, 0.01, 5)
	small := AttackPrecision(d.Profiles, d.NumItems, core.MustScheme(64, 2))
	large := AttackPrecision(d.Profiles, d.NumItems, core.MustScheme(1<<16, 2))
	if small >= large {
		t.Errorf("attack precision with b=64 (%.3f) not below b=65536 (%.3f)", small, large)
	}
	if small > 0.8 {
		t.Errorf("b=64 attack precision %.3f too high: obfuscation broken", small)
	}
}
