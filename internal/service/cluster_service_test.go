package service

// HTTP-level tests for the algo=cluster build path and the cluster-seeded
// graph query entry points.

import (
	"net/http"
	"testing"
)

func TestBuildClusterAlgorithm(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	for i := 0; i < 60; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, br := buildGraph(t, ts, "?k=3&algo=cluster")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster build: status %d", resp.StatusCode)
	}
	if br.Algorithm != "cluster" || br.Users != 60 || br.K != 3 {
		t.Fatalf("build result %+v", br)
	}
	if br.Comparisons == 0 {
		t.Fatal("cluster build reported zero comparisons")
	}
	ep := srv.epoch.Load()
	if ep == nil || ep.algorithm != "cluster" {
		t.Fatal("epoch not published with algorithm=cluster")
	}
	if ep.clusters == nil || len(ep.clusters.Views) == 0 {
		t.Fatal("cluster epoch carries no assignment")
	}
	if err := ep.graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryClusterSeededMatchesScan: on a corpus small enough that the
// clustering collapses to one exact cluster, a graph query against the
// cluster epoch (bucket-derived entry seeds) must return the scan's exact
// answer.
func TestQueryClusterSeededMatchesScan(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	for i := 0; i < 40; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=3&algo=cluster")
	resp.Body.Close()
	if ep := srv.epoch.Load(); ep == nil || ep.clusters == nil {
		t.Fatal("no cluster epoch")
	}

	for i := 0; i < 40; i += 5 {
		q := queryProfile(i)
		scan, _, st1 := postQuery(t, ts, scheme, q, "?k=3&mode=scan")
		graph, served, st2 := postQuery(t, ts, scheme, q, "?k=3&mode=graph")
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("query %d: status scan=%d graph=%d", i, st1, st2)
		}
		if served != "graph" {
			t.Fatalf("query %d served %q, want graph", i, served)
		}
		if len(graph) != len(scan) {
			t.Fatalf("query %d: %d graph results vs %d scan", i, len(graph), len(scan))
		}
		for j := range graph {
			if graph[j] != scan[j] {
				t.Fatalf("query %d rank %d: graph %+v, scan %+v", i, j, graph[j], scan[j])
			}
		}
	}
}

// TestQuerySeedsHelper exercises querySeeds directly: a cluster epoch
// yields in-range bucket seeds, any other epoch yields nil (default
// spread).
func TestQuerySeedsHelper(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	for i := 0; i < 50; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=3&algo=cluster")
	resp.Body.Close()
	ep := srv.epoch.Load()
	fp := scheme.Fingerprint(queryProfile(7))
	seeds := querySeeds(ep, fp, len(ep.users))
	if len(seeds) == 0 {
		t.Fatal("cluster epoch produced no query seeds")
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= len(ep.users) {
			t.Fatalf("seed %d out of range [0,%d)", s, len(ep.users))
		}
	}

	resp, _ = buildGraph(t, ts, "?k=3&algo=bruteforce")
	resp.Body.Close()
	if got := querySeeds(srv.epoch.Load(), fp, 50); got != nil {
		t.Fatalf("non-cluster epoch produced seeds %v, want nil", got)
	}
}

func TestSetClusterConfigPlumbing(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	srv.SetClusterConfig(2, 16)
	for i := 0; i < 50; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=3&algo=cluster")
	resp.Body.Close()
	ep := srv.epoch.Load()
	if ep == nil || ep.clusters == nil {
		t.Fatal("no cluster epoch")
	}
	if got := len(ep.clusters.Views); got != 2 {
		t.Fatalf("views = %d, want configured 2", got)
	}
	for _, v := range ep.clusters.Views {
		for _, members := range v.Clusters {
			if len(members) > 16 {
				t.Fatalf("cluster of %d members exceeds configured max 16", len(members))
			}
		}
	}
	if err := ep.graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUnknownAlgorithmMentionsCluster(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", queryProfile(0)).Body.Close()
	putFingerprint(t, ts, scheme, "b", queryProfile(1)).Body.Close()
	resp, err := http.Post(ts.URL+"/graph/build?algo=quantum", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
