// Package service implements the untrusted KNN-construction service of the
// paper's deployment story (§2.5): clients fingerprint their profiles
// locally and upload only the SHFs; the server never sees a profile in
// clear text, yet can build the KNN graph, serve neighborhoods, and answer
// top-k similarity queries. Transport is HTTP with the binary fingerprint
// codec as payload and JSON responses.
//
// # Concurrency model
//
// The mutable state (user table + fingerprint slice) is guarded by a short
// critical-section RWMutex; the served graph lives in an immutable,
// versioned graphEpoch that is swapped in atomically when a build
// completes. A build snapshots the fingerprints under the lock (a cheap
// slice copy — fingerprints are immutable values), runs the KNN algorithm
// entirely outside any lock, and publishes the result as a new epoch.
// Uploads, neighborhood reads and queries therefore never wait on a build.
//
// Builds and queries both run on a core.PackedCorpus — one contiguous
// row-major bit array the blocked similarity kernels stream — held in a
// packedCache validated against the mutation counter: as long as no upload
// lands, successive builds and queries reuse the same immutable corpus;
// after an upload the next caller re-packs outside the lock and swaps the
// cache atomically. The corpus is never mutated in place, so readers of a
// superseded cache stay safe.
//
// An epoch is no longer frozen at build time: each published (or
// recovered) epoch wraps its graph in a knn.Online maintainer, and every
// accepted mutation — PUT (insert or overwrite) and DELETE of a
// fingerprint — is applied to the live graph before the ack, so it is
// visible to neighborhood reads and graph-mode queries immediately,
// without a rebuild. Mutations serialize on writeMu (the same order the
// WAL sees); readers get wait-free immutable snapshots from the
// maintainer. A build still runs periodically to shed the accumulated
// approximation drift of incremental repair: at publish it drains, under
// writeMu, every mutation that landed while it ran into a fresh
// maintainer, so the new epoch starts current. Only when the graph epoch
// genuinely lags the state — crash recovery lost the tail of the graph
// deltas, or no build has happened yet — do reads fall back to the old
// contract: 409 for a user the epoch has never seen, scan fallback for
// auto-mode queries. At most one build runs at a time: a concurrent POST
// /graph/build gets 409 with a Retry-After header rather than queuing a
// redundant build.
//
// # Observability and cancellation
//
// Builds run under a context.Context: DELETE /graph/build (or /build)
// cancels the in-flight build, and a configurable deadline
// (SetBuildTimeout, the -build-timeout flag on cmd/knnserver) bounds every
// build. The builders poll the context once per scan block or iteration,
// so cancellation takes effect within one block; a canceled or timed-out
// build publishes nothing — the previous epoch keeps serving every read
// path untouched — and the POST reports 409 (canceled) or 504 (deadline).
// An internal/obs registry collects per-phase build durations, comparison
// counts and progress; GET /metrics exports it as JSON, GET /stats folds
// in the live phase and progress of a running build, and /debug/pprof/*
// exposes the runtime profiles.
//
// # Durability and degraded mode
//
// With a durable store attached (UseStore; the -data-dir flag on
// cmd/knnserver), every accepted mutation (PUT or DELETE) is appended to a
// write-ahead log *before* the 204 is sent, followed by the graph delta
// the online maintainer produced for it, successful builds persist the
// epoch and compact the WAL into a checksummed state snapshot, and startup
// recovery reloads all of it — an acked mutation, the last published
// epoch, and the graph edits the deltas encode survive a SIGKILL, so the
// server restarts with a warm graph instead of waiting for a rebuild. All
// writers serialize through writeMu so WAL order always matches in-memory
// apply order (mutSeq order).
//
// If the data directory fails a write at runtime the store flips to
// degraded read-only mode: PUTs get 503 with Retry-After while neighbor
// reads and queries keep serving the current state and epoch from memory.
// /healthz, /stats (durable/degraded/wal_* fields) and the obs "degraded"
// gauge surface the condition. Degraded mode is sticky until restart — the
// WAL tail must be assumed torn once an append fails.
//
// # Admission control and overload
//
// Every route except /healthz and /debug/pprof passes through an
// internal/admit controller before its handler runs. Requests are
// partitioned into three independent classes — cheap reads (neighbors,
// stats, metrics), expensive similarity queries, and mutating writes
// (uploads, builds) — each with a concurrency limit and a bounded wait
// queue, plus an optional global token-bucket rate limit. Each admitted
// request gets a context deadline (per-class default, lowerable per
// request via the X-Request-Timeout header: a Go duration or integer
// seconds; never raisable). Rejected work fails fast with an honest
// status: 429 when rate-limited, 503 when shed (queue full or the
// adaptive wait-time signal tripped) or when the deadline expired while
// queued — always with a Retry-After computed from limiter state, never a
// hardcoded constant.
//
// /query runs under its request context: the scan (knn.TopKRangeCtx)
// polls the context per tile, so a disconnected client or an expired
// deadline stops burning the corpus within one tile; both cases are
// counted (query.canceled.total, query.deadline.total). Graph builds keep
// their own explicit lifecycle (DELETE to cancel, -build-timeout) and
// deliberately ignore the request deadline.
//
// Degraded mode and overload are distinct, independently-reported
// conditions: degraded means the data dir stopped accepting writes
// (uploads 503 until restart, reads fine), overloaded means admission is
// currently shedding (transient; clears when pressure drops). /healthz
// names whichever applies; /stats carries both the degraded fields and
// the per-class admission counters.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/admit"
	"goldfinger/internal/cluster"
	"goldfinger/internal/core"
	"goldfinger/internal/durable"
	"goldfinger/internal/knn"
	"goldfinger/internal/obs"
)

// graphEpoch is one immutable build result: the graph plus the user table
// and parameters it was built from. Readers load the current epoch with a
// single atomic pointer read and never block builds or uploads.
type graphEpoch struct {
	seq   int64 // monotonically increasing build number (1-based)
	graph *knn.Graph
	// nav is graph.Navigable(provider), precomputed once per epoch: /query
	// descends the symmetrized, diversity-pruned adjacency (directed KNN
	// edges alone leave hub-dominated regions unreachable and tank recall;
	// uncapped reverse edges turn hub expansion into a partial scan).
	nav   *knn.Graph
	users []string // user table snapshot the graph indices refer to
	// clusters is the fingerprint-hash bucketing a cluster build derived
	// (nil for other algorithms and for recovered epochs): /query reuses
	// its hashes to pick graph-search entry points near the query instead
	// of evenly spread ones.
	clusters  *cluster.Assignment
	k         int
	algorithm string
	builtAt   time.Time
	duration  time.Duration
	stats     knn.Stats
	mutSeq    uint64 // mutation counter value the epoch started from
	// online maintains the epoch's graph under mutations: inserts, over-
	// writes and deletes apply to it in mutSeq order (under writeMu), and
	// every read path serves its current immutable snapshot. Node ids are
	// dense server indices — identical to the user-table indices — so the
	// snapshot's graph indexes the append-only user table directly. nil
	// only for epochs installed directly by tests; those serve the frozen
	// graph/nav fields under the old pinned-epoch contract.
	online *knn.Online
}

// Server is the KNN-construction service. It is safe for concurrent use.
type Server struct {
	bits int

	mu      sync.RWMutex
	users   []string // dense index → external user id; append-only
	index   map[string]int
	fps     []core.Fingerprint
	deleted []bool // tombstones, same length as users; a re-upload revives
	mutSeq  uint64 // bumped on every fingerprint upload, replacement or delete

	epoch    atomic.Pointer[graphEpoch]
	building atomic.Bool // build-in-progress guard
	epochSeq atomic.Int64
	packed   atomic.Pointer[packedCache]

	// store, when non-nil, makes mutations durable: putFingerprint appends
	// to its WAL before acking, builds persist their epoch, and compaction
	// folds the WAL into state snapshots. writeMu serializes all writers so
	// the WAL receives records in exactly the order memory applies them.
	store      *durable.Store
	writeMu    sync.Mutex
	compacting atomic.Bool // threshold-triggered compaction in flight

	obs *obs.Registry

	// admit is the admission front door: per-class concurrency limits,
	// bounded queues, deadlines, optional rate limit. Replaced wholesale by
	// SetAdmission before serving; never nil.
	admit *admit.Controller

	buildTimeout atomic.Int64                       // ns; 0 = no deadline
	buildCancel  atomic.Pointer[context.CancelFunc] // non-nil while a build runs
	buildStartNS atomic.Int64                       // UnixNano of the running build; 0 when idle

	// clusterViews / clusterMaxSize tune algo=cluster builds; 0 selects
	// the cluster package defaults.
	clusterViews   atomic.Int64
	clusterMaxSize atomic.Int64

	// buildHook, when non-nil, runs after the build snapshot is taken and
	// before the algorithm starts. Test instrumentation only.
	buildHook func()

	// shardName / owns, when set via SetShard, make this server one
	// shard-core of a sharded deployment: it reports the shard name in
	// /stats and answers 421 Misdirected Request for user ids the
	// placement does not assign to it — a misrouted mutation must fail
	// loudly instead of splitting a user across shards.
	shardName string
	owns      func(id string) bool

	// ring is the installed placement-ring view (InstallRing or POST
	// /ring): a named, epoch-versioned ownership map that supersedes the
	// owns predicate, carries the correct owner for X-Owner-Shard on 421s,
	// and — in transition mode — dual-accepts ids under both the old and
	// new ring while a migration is streaming. nil until a ring is
	// installed.
	ring   atomic.Pointer[ringView]
	onRing func(RingInfo) // optional install hook (persistence); set before serving

	// migration handoff state: importing serializes /migrate/import,
	// migrating suppresses threshold compaction while an import is
	// streaming (the begin/done journal marks must stay in live WAL
	// segments), pendingMig carries an interrupted import found at
	// recovery until a resumed import completes.
	importing  atomic.Bool
	migrating  atomic.Bool
	pendingMig atomic.Pointer[durable.PendingMigration]
	// migrateRate caps import apply throughput in users/second (0 =
	// unlimited): keeps a live gainer responsive while a migration streams
	// in, and gives the chaos harness a deterministic mid-import window.
	migrateRate atomic.Int64
}

// packedCache is one immutable packed snapshot of the corpus: the row-major
// packed fingerprints, the user table and tombstone bitmap they index into,
// and the mutation counter value they were taken at. fps keeps the unpacked
// fingerprints alive so a build publish can diff them against the current
// state when draining pending mutations.
type packedCache struct {
	corpus  *core.PackedCorpus
	users   []string
	fps     []core.Fingerprint
	deleted []bool
	dead    int // number of true bits in deleted
	mutSeq  uint64
}

// packedSnapshot returns a packed corpus consistent with the current
// mutation counter. If the cached corpus is current it is returned as-is
// (the common case for query bursts and repeated builds); otherwise the
// fingerprints are snapshotted under the read lock and packed outside any
// lock, and the result is published unless a packer for a newer mutation
// got there first. Superseded corpora remain valid for whoever still holds
// them — nothing is ever packed in place.
func (s *Server) packedSnapshot() (*packedCache, error) {
	s.mu.RLock()
	mutSeq := s.mutSeq
	if c := s.packed.Load(); c != nil && c.mutSeq == mutSeq {
		s.mu.RUnlock()
		return c, nil
	}
	users := make([]string, len(s.users))
	copy(users, s.users)
	fps := make([]core.Fingerprint, len(s.fps))
	copy(fps, s.fps)
	deleted := make([]bool, len(s.deleted))
	copy(deleted, s.deleted)
	s.mu.RUnlock()

	corpus, err := core.NewPackedCorpus(s.bits, fps)
	if err != nil {
		return nil, err
	}
	dead := 0
	for _, d := range deleted {
		if d {
			dead++
		}
	}
	c := &packedCache{corpus: corpus, users: users, fps: fps, deleted: deleted, dead: dead, mutSeq: mutSeq}
	for {
		old := s.packed.Load()
		if old != nil && old.mutSeq >= mutSeq {
			break // a concurrent packer published a same-or-newer snapshot
		}
		if s.packed.CompareAndSwap(old, c) {
			break
		}
	}
	return c, nil
}

// NewServer creates a service accepting fingerprints of the given length,
// with the default admission configuration (admit.DefaultConfig).
func NewServer(bits int) (*Server, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("service: fingerprint length must be positive, got %d", bits)
	}
	reg := obs.NewRegistry()
	return &Server{
		bits:  bits,
		index: map[string]int{},
		obs:   reg,
		admit: admit.NewController(admit.DefaultConfig(), reg),
	}, nil
}

// SetAdmission replaces the admission configuration (class limits, queue
// bounds, deadlines, rate limit). Must be called before the handler
// serves traffic — the controller is swapped wholesale and the swap is
// not synchronized against in-flight requests.
func (s *Server) SetAdmission(cfg admit.Config) {
	s.admit = admit.NewController(cfg, s.obs)
}

// SetShard turns this server into one shard-core of a sharded deployment:
// name labels it in /stats, and owns is the ownership predicate derived
// from the router's placement. Requests for /users/{id}/... with an id the
// shard does not own are answered 421 Misdirected Request before
// admission. Must be called before the handler serves traffic. A nil owns
// accepts every id (the single-node default).
func (s *Server) SetShard(name string, owns func(id string) bool) {
	s.shardName = name
	s.owns = owns
}

// SetShardName names this shard-core without installing an ownership
// predicate: a process started in -role shard mode knows its own name
// from its flags but learns the ring later, via POST /ring from the
// router. Until a ring arrives the shard accepts every id. Must be called
// before the handler serves traffic.
func (s *Server) SetShardName(name string) { s.shardName = name }

// SetRingHook registers a callback invoked after every successful ring
// install (InstallRing or POST /ring) — the process entrypoint uses it to
// persist the ring so a restart recovers ownership without waiting for a
// re-push. Must be set before the handler serves traffic.
func (s *Server) SetRingHook(fn func(RingInfo)) { s.onRing = fn }

// SetMigrateRate caps how many users per second /migrate/import applies
// (0 removes the cap). Safe to call at any time.
func (s *Server) SetMigrateRate(perSec int) {
	if perSec < 0 {
		perSec = 0
	}
	s.migrateRate.Store(int64(perSec))
}

// SetBuildTimeout bounds every subsequent graph build: a build running
// longer than d is aborted (the POST gets 504 and the previous epoch keeps
// serving). d ≤ 0 removes the deadline. Safe to call at any time.
func (s *Server) SetBuildTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.buildTimeout.Store(int64(d))
}

// SetClusterConfig tunes subsequent algo=cluster builds: views is the
// number of independent cluster views (t), maxSize the cluster size cap.
// Zero keeps the cluster package defaults. Safe to call at any time.
func (s *Server) SetClusterConfig(views, maxSize int) {
	if views < 0 {
		views = 0
	}
	if maxSize < 0 {
		maxSize = 0
	}
	s.clusterViews.Store(int64(views))
	s.clusterMaxSize.Store(int64(maxSize))
}

// Metrics returns the server's metrics registry (the /metrics export).
func (s *Server) Metrics() *obs.Registry { return s.obs }

// UseStore attaches a durable store and seeds the server with the state it
// recovered: the user table, fingerprints and mutation counter, plus the
// persisted graph epoch if one survived. Must be called before the handler
// serves traffic; it refuses to run over a server that already holds
// state. Recovered fingerprints are validated against the server's
// configured bit length, and a recovered epoch must pin a prefix of the
// recovered user table (the append-only invariant every read path relies
// on) — violations are configuration or tampering errors and abort
// startup rather than corrupting service.
func (s *Server) UseStore(st *durable.Store, rec durable.Recovery) error {
	if st == nil {
		return errors.New("service: UseStore needs a store")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.users) > 0 || s.epoch.Load() != nil || s.store != nil {
		return errors.New("service: UseStore must run before the server holds any state")
	}
	if len(rec.State.Users) != len(rec.State.FPS) {
		return fmt.Errorf("service: recovered %d users but %d fingerprints", len(rec.State.Users), len(rec.State.FPS))
	}
	index := make(map[string]int, len(rec.State.Users))
	for i, id := range rec.State.Users {
		if fp := rec.State.FPS[i]; fp.NumBits() != s.bits {
			return fmt.Errorf("service: recovered fingerprint for %q has %d bits, server expects %d",
				id, fp.NumBits(), s.bits)
		}
		if _, dup := index[id]; dup {
			return fmt.Errorf("service: recovered state has duplicate user %q", id)
		}
		index[id] = i
	}
	if ep := rec.Epoch; ep != nil {
		if len(ep.Users) > len(rec.State.Users) {
			return fmt.Errorf("service: recovered epoch has %d users, state only %d", len(ep.Users), len(rec.State.Users))
		}
		for i, id := range ep.Users {
			if rec.State.Users[i] != id {
				return fmt.Errorf("service: recovered epoch user %d is %q, state has %q (user table must be append-only)",
					i, id, rec.State.Users[i])
			}
		}
	}
	s.users = append([]string(nil), rec.State.Users...)
	s.fps = append([]core.Fingerprint(nil), rec.State.FPS...)
	s.deleted = make([]bool, len(rec.State.Users))
	copy(s.deleted, rec.State.Deleted)
	s.index = index
	s.mutSeq = rec.State.MutSeq
	s.store = st
	if rec.Migration != nil {
		// An import was journaled as begun but never done: the crash hit
		// mid-migration. Everything applied so far is durable and keyed by
		// user id, so the resumed import (the router driver keeps retrying
		// until it gets a 200) simply re-streams — idempotent, no loss, no
		// duplicates. Surfaced in /stats until then.
		pm := *rec.Migration
		s.pendingMig.Store(&pm)
		s.obs.Counter(metricMigResumed).Inc()
	}

	if ep := rec.Epoch; ep != nil {
		// Rebuilding the navigable graph wants a similarity oracle for
		// diversity selection; pack the epoch's prefix of the recovered
		// corpus (the user-table validation above guarantees it is one).
		// A packing failure only degrades edge selection, never recovery.
		var prov knn.Provider
		if c, err := core.NewPackedCorpus(s.bits, rec.State.FPS[:len(ep.Users)]); err == nil {
			prov = knn.NewPackedSHFProvider(c)
		}
		nav := ep.Graph.Navigable(prov)
		// Resume online maintenance where the recovered epoch left off: the
		// maintainer's sequence number is the epoch's MutSeq, so if the WAL
		// warm-up caught the epoch fully up to the state, the very next
		// mutation applies live; if the delta tail was torn, the epoch lags
		// and serves stale (scan fallback, 409 for unseen users) until the
		// next build. The fingerprint prefix may be newer than the graph's
		// edges in the stale case — harmless: it only feeds *future*
		// mutations, which a lagging maintainer never receives.
		online, oerr := knn.NewOnline(ep.Graph, nav, rec.State.FPS[:len(ep.Users)], ep.Dead, ep.K, ep.MutSeq)
		if oerr != nil {
			return fmt.Errorf("service: recovered epoch rejected by online maintainer: %w", oerr)
		}
		ge := &graphEpoch{
			seq:       ep.Seq,
			graph:     ep.Graph,
			nav:       nav,
			users:     ep.Users,
			k:         ep.K,
			algorithm: ep.Algorithm,
			builtAt:   ep.BuiltAt,
			duration:  ep.Duration,
			stats:     ep.Stats,
			mutSeq:    ep.MutSeq,
			online:    online,
		}
		s.epoch.Store(ge)
		s.epochSeq.Store(ep.Seq)
		s.obs.Gauge(metricEpoch).Set(ep.Seq)
	}
	return nil
}

// captureState snapshots the mutable state — and, when a live epoch
// exists, its current graph — for a WAL compaction. durable.Store.Compact
// re-invokes it until the captured mutSeq covers every sealed WAL record.
//
// The epoch snapshot is taken *before* the state so the epoch can never be
// ahead of the state copy (mutations apply state first, then graph; the
// reverse order could capture a graph node whose user the state copy
// misses). That ordering can leave the epoch one step behind a racing
// mutation, so a short retry loop waits for a matched pair; if the pair
// stays mismatched (the epoch genuinely lags — recovery lost the delta
// tail), the stable stale pair is returned as-is. Compaction then deletes
// the sealed deltas the stale epoch never saw, which is safe: recovery
// refuses non-contiguous deltas, so the epoch simply recovers stale again
// rather than warm-and-wrong.
//
// This function deliberately never takes writeMu: Compact invokes it while
// holding the store's snapshot lock, and a build publish holds writeMu
// while saving its epoch (which takes that same snapshot lock) — capture
// waiting on writeMu would deadlock the pair.
func (s *Server) captureState() (durable.State, *durable.EpochData) {
	var prevSeq uint64
	var prevMut uint64
	for attempt := 0; ; attempt++ {
		ep := s.epoch.Load()
		var snap *knn.OnlineSnapshot
		if ep != nil && ep.online != nil {
			snap = ep.online.Snapshot()
		}
		s.mu.RLock()
		st := durable.State{
			Users:   append([]string(nil), s.users...),
			FPS:     append([]core.Fingerprint(nil), s.fps...),
			Deleted: append([]bool(nil), s.deleted...),
			MutSeq:  s.mutSeq,
		}
		s.mu.RUnlock()
		if snap == nil {
			return st, nil
		}
		stable := attempt > 0 && snap.Seq == prevSeq && st.MutSeq == prevMut
		if snap.Seq == st.MutSeq || stable || attempt > 50 {
			return st, &durable.EpochData{
				Seq:       ep.seq,
				K:         ep.k,
				Algorithm: ep.algorithm,
				BuiltAt:   ep.builtAt,
				Duration:  ep.duration,
				Stats:     ep.stats,
				MutSeq:    snap.Seq,
				Users:     st.Users[:snap.NumNodes()],
				Graph:     snap.Graph,
				Dead:      snap.Dead,
			}
		}
		prevSeq, prevMut = snap.Seq, st.MutSeq
		time.Sleep(200 * time.Microsecond)
	}
}

// compact folds the WAL into a fresh state snapshot, recording failures in
// the durable.last_error metric. ErrDegraded is not news — the store
// already flipped the degraded gauge.
func (s *Server) compact() {
	if err := s.store.Compact(s.captureState); err != nil && !errors.Is(err, durable.ErrDegraded) {
		s.obs.SetText(metricDurableError, err.Error())
	}
}

// maybeCompactAsync starts a background compaction if the WAL outgrew its
// threshold and none is already running on the service's behalf. While a
// migration import is streaming, compaction is deferred: the handoff's
// begin mark must stay in a live WAL segment until its done mark lands,
// or a crash between compaction and done would recover with no record of
// the interrupted transfer.
func (s *Server) maybeCompactAsync() {
	if s.migrating.Load() {
		return
	}
	if !s.store.ShouldCompact() {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.compact()
	}()
}

// Handler returns the HTTP routes. All routes except /healthz (load
// balancers must always reach it) and /debug/pprof (operator tooling) are
// wrapped in admission control.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.admitted(admit.Read, s.handleStats))
	mux.HandleFunc("/metrics", s.admitted(admit.Read, s.handleMetrics))
	mux.HandleFunc("/users/", s.handleUsers) // PUT/DELETE fingerprint, GET neighbors; class chosen per action
	mux.HandleFunc("/graph/build", s.handleBuildRoute)
	mux.HandleFunc("/build", s.handleBuildRoute) // alias; DELETE /build cancels
	mux.HandleFunc("/query", s.admitted(admit.Query, s.handleQuery))
	// Control plane for multi-process sharding: ring installs and
	// migration streaming bypass admission like /healthz does — a ring
	// change must land even while the data plane is shedding load, and the
	// migration driver's retries must never queue behind the traffic they
	// are rebalancing.
	mux.HandleFunc("/ring", s.handleRing)
	mux.HandleFunc("/migrate/export", s.handleMigrateExport)
	mux.HandleFunc("/migrate/import", s.handleMigrateImport)
	mux.HandleFunc("/migrate/retire", s.handleMigrateRetire)
	// Runtime profiling: pprof.Index serves the named profiles (heap,
	// goroutine, block, ...) via the trailing path segment.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HeaderRequestTimeout is the request header a client sets to lower its
// deadline below the class default: a Go duration ("750ms", "2s") or a
// bare positive integer meaning seconds. It can never raise the deadline.
const HeaderRequestTimeout = "X-Request-Timeout"

// statusClientClosedRequest is nginx's conventional status for a request
// aborted because the client went away. The client never sees it; it
// keeps access logs and metrics honest.
const statusClientClosedRequest = 499

// admitted wraps h in admission control under the given class, applying
// the class deadline to the request context.
func (s *Server) admitted(class admit.Class, h http.HandlerFunc) http.HandlerFunc {
	return s.admittedDeadline(class, true, h)
}

// admittedDeadline is admitted with deadline propagation optional: the
// build route opts out because builds own their lifecycle (-build-timeout
// and DELETE /graph/build), and killing a build because the *initiating*
// request's class deadline passed would punish every client waiting on
// the epoch.
func (s *Server) admittedDeadline(class admit.Class, deadline bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if deadline {
			d := s.admit.Timeout(class)
			if hdr := r.Header.Get(HeaderRequestTimeout); hdr != "" {
				req, err := parseClientTimeout(hdr)
				if err != nil {
					httpError(w, http.StatusBadRequest, "bad %s %q: %v", HeaderRequestTimeout, hdr, err)
					return
				}
				if d == 0 || req < d {
					d = req
				}
			}
			if d > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, d)
				defer cancel()
			}
		}
		release, res := s.admit.Admit(ctx, class)
		if res.Rejected() {
			setRetryAfter(w, res.RetryAfter)
			switch res.Outcome {
			case admit.RateLimited:
				httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			case admit.DeadlineExceeded:
				httpError(w, http.StatusServiceUnavailable,
					"request deadline expired after %s in the %s admission queue", res.Wait.Round(time.Millisecond), class)
			default: // admit.Shed
				httpError(w, http.StatusServiceUnavailable,
					"%s capacity exhausted; request shed", class)
			}
			return
		}
		defer release()
		h(w, r.WithContext(ctx))
	}
}

// parseClientTimeout parses an X-Request-Timeout value.
func parseClientTimeout(v string) (time.Duration, error) {
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0, errors.New("must be positive")
		}
		return time.Duration(secs) * time.Second, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, errors.New("want a Go duration or integer seconds")
	}
	if d <= 0 {
		return 0, errors.New("must be positive")
	}
	return d, nil
}

// setRetryAfter writes the Retry-After header as RFC 9110 requires: a
// non-negative integer number of seconds. Durations round up and floor at
// 1 — "Retry-After: 0" is an invitation to hammer the server.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// degradedRetryAfter is the retry advice for writes rejected because the
// data dir is read-only. Degraded mode is sticky until an operator
// restarts the node, so the value is a polling hint, not an estimate.
const degradedRetryAfter = 30 * time.Second

// buildRetryAfter estimates when the in-flight build will be done: the
// remaining configured deadline when one exists, else the last epoch's
// build duration minus the elapsed time, else a 1s floor (setRetryAfter
// clamps negatives up to 1).
func (s *Server) buildRetryAfter() time.Duration {
	var elapsed time.Duration
	if ns := s.buildStartNS.Load(); ns > 0 {
		elapsed = time.Since(time.Unix(0, ns))
	}
	if timeout := time.Duration(s.buildTimeout.Load()); timeout > 0 {
		return timeout - elapsed
	}
	if ep := s.epoch.Load(); ep != nil && ep.duration > 0 {
		return ep.duration - elapsed
	}
	return time.Second
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET", "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.obs.Snapshot())
}

// handleHealth stays 200 in degraded and overloaded modes — the node
// still serves (some) traffic, so a load balancer must not drain it — but
// the body names each active condition distinctly: "degraded" means the
// data dir stopped accepting writes (sticky until restart), "overloaded"
// means admission is currently shedding (clears when pressure drops).
// /healthz itself bypasses admission so the probe works during overload.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	degraded := s.store != nil && s.store.Degraded()
	overloaded := s.admit.Overloaded()
	if !degraded && !overloaded {
		fmt.Fprintln(w, "ok")
		return
	}
	if degraded {
		fmt.Fprintln(w, "degraded (read-only: data dir unwritable; queries still served)")
	}
	if overloaded {
		fmt.Fprintln(w, "overloaded (admission shedding excess load; accepted requests still served)")
	}
}

// Stats is the /stats response.
type Stats struct {
	// Shard is the shard-core's name when the server runs behind the
	// router tier (SetShard); empty for a single-node deployment.
	Shard string `json:"shard,omitempty"`

	// Ring observability: the installed placement-ring epoch and mode
	// ("stable", or "transition" while a migration's dual-ownership window
	// is open), and the interrupted import recovery found in the WAL, if
	// any ("epoch=N from=shard-X" until a resumed import completes).
	RingEpoch        uint64 `json:"ring_epoch,omitempty"`
	RingMode         string `json:"ring_mode,omitempty"`
	MigrationPending string `json:"migration_pending,omitempty"`
	Importing        bool   `json:"importing,omitempty"`

	Users      int  `json:"users"`
	Bits       int  `json:"bits"`
	GraphK     int  `json:"graph_k"`
	GraphBuilt bool `json:"graph_built"`
	GraphStale bool `json:"graph_stale"`

	// Online-graph observability: GraphLive reports that the served epoch
	// has an online maintainer tracking the state (mutations apply to the
	// graph before they are acked, so GraphStale stays false under
	// churn); OnlineNodes/OnlineLive are its total and non-tombstoned node
	// counts, DeletedUsers the state-level tombstone count.
	GraphLive    bool `json:"graph_live,omitempty"`
	OnlineNodes  int  `json:"online_nodes,omitempty"`
	OnlineLive   int  `json:"online_live,omitempty"`
	DeletedUsers int  `json:"deleted_users,omitempty"`

	BuildRunning bool `json:"build_running"`

	// Live build observability: populated only while a build is running.
	BuildPhase         string  `json:"build_phase,omitempty"`
	BuildProgressDone  int64   `json:"build_progress_done,omitempty"`
	BuildProgressTotal int64   `json:"build_progress_total,omitempty"`
	BuildElapsedMS     float64 `json:"build_elapsed_ms,omitempty"`

	// LastBuildError records why the most recent build published no epoch
	// (canceled, timed out); empty after a successful build.
	LastBuildError string `json:"last_build_error,omitempty"`

	// Admission observability: per-class limiter state and decision
	// counts, whether any class is currently shedding, the global
	// rate-limit rejection count, and how many queries were abandoned
	// mid-scan (client gone) or aborted at their deadline.
	Admission      map[string]admit.ClassStats `json:"admission"`
	Overloaded     bool                        `json:"overloaded,omitempty"`
	RateLimited    int64                       `json:"rate_limited,omitempty"`
	QueryCanceled  int64                       `json:"query_canceled,omitempty"`
	QueryDeadlines int64                       `json:"query_deadlines,omitempty"`

	// Durability: Durable reports whether a data dir is attached; Degraded
	// flips when it stopped accepting writes (uploads get 503, reads keep
	// serving). WAL* and SnapshotGen describe the active WAL segment.
	Durable          bool   `json:"durable"`
	Degraded         bool   `json:"degraded,omitempty"`
	WALRecords       int64  `json:"wal_records,omitempty"`
	WALBytes         int64  `json:"wal_bytes,omitempty"`
	SnapshotGen      uint64 `json:"snapshot_gen,omitempty"`
	LastDurableError string `json:"last_durable_error,omitempty"`

	// Epoch observability: zero values until the first build completes.
	Epoch           int64   `json:"epoch"`
	EpochUsers      int     `json:"epoch_users"`
	Algorithm       string  `json:"algorithm,omitempty"`
	BuildDurationMS float64 `json:"build_duration_ms"`
	Comparisons     int64   `json:"comparisons"`
	BuiltAt         string  `json:"built_at,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Load the epoch before reading mutSeq: mutSeq only grows, so the flag
	// can only over-report staleness for an epoch that was just superseded,
	// never report a fresh epoch as stale.
	ep := s.epoch.Load()
	s.mu.RLock()
	users := len(s.users)
	mutSeq := s.mutSeq
	deletedUsers := 0
	for _, d := range s.deleted {
		if d {
			deletedUsers++
		}
	}
	s.mu.RUnlock()

	st := Stats{
		Shard:          s.shardName,
		Importing:      s.importing.Load(),
		Users:          users,
		Bits:           s.bits,
		BuildRunning:   s.building.Load(),
		LastBuildError: s.obs.TextValue(metricLastError),
		Admission:      s.admit.Snapshot(),
		Overloaded:     s.admit.Overloaded(),
		RateLimited:    s.admit.RateLimited(),
		QueryCanceled:  s.obs.Counter(metricQueryCanceled).Value(),
		QueryDeadlines: s.obs.Counter(metricQueryDeadline).Value(),
	}
	if rv := s.ring.Load(); rv != nil {
		st.RingEpoch = rv.info.Epoch
		st.RingMode = rv.info.Mode
	}
	if pm := s.pendingMig.Load(); pm != nil {
		st.MigrationPending = fmt.Sprintf("epoch=%d from=%s", pm.Epoch, pm.From)
	}
	if s.store != nil {
		info := s.store.Info()
		st.Durable = true
		st.Degraded = info.Degraded
		st.WALRecords = info.WALRecords
		st.WALBytes = info.WALBytes
		st.SnapshotGen = info.Gen
		st.LastDurableError = s.obs.TextValue(metricDurableError)
	}
	if st.BuildRunning {
		st.BuildPhase = s.obs.TextValue(knn.MetricPhase)
		st.BuildProgressDone = s.obs.Gauge(knn.MetricProgressDone).Value()
		st.BuildProgressTotal = s.obs.Gauge(knn.MetricProgressTotal).Value()
		if ns := s.buildStartNS.Load(); ns > 0 {
			st.BuildElapsedMS = float64(time.Since(time.Unix(0, ns))) / float64(time.Millisecond)
		}
	}
	st.DeletedUsers = deletedUsers
	if ep != nil {
		st.GraphK = ep.k
		st.GraphBuilt = true
		st.Epoch = ep.seq
		st.EpochUsers = len(ep.users)
		if ep.online != nil {
			snap := ep.online.Snapshot()
			st.GraphStale = mutSeq != snap.Seq
			st.GraphLive = !st.GraphStale
			st.OnlineNodes = snap.NumNodes()
			st.OnlineLive = snap.Live
			st.EpochUsers = snap.NumNodes()
		} else {
			st.GraphStale = mutSeq != ep.mutSeq
		}
		st.Algorithm = ep.algorithm
		st.BuildDurationMS = float64(ep.duration) / float64(time.Millisecond)
		st.Comparisons = ep.stats.Comparisons
		st.BuiltAt = ep.builtAt.UTC().Format(time.RFC3339Nano)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleUsers routes /users/{id}/fingerprint and /users/{id}/neighbors. An
// unknown action is a 404 (the resource does not exist); a known action
// with the wrong method is a 405 carrying the Allow header RFC 9110
// requires. Routing errors are answered before admission (they cost
// nothing); the real work is admitted under the action's class — uploads
// are writes, neighbor lookups are reads.
func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" {
		httpError(w, http.StatusNotFound, "want /users/{id}/fingerprint or /users/{id}/neighbors")
		return
	}
	id, action := parts[0], parts[1]
	if ok, owner, epoch := s.acceptsID(id); !ok {
		// Misrouted id: this shard-core does not own the user. Answered
		// before admission — accepting it would silently split the user
		// across shards and the router could never find it again. When the
		// shard holds a named ring it says who *does* own the id, so the
		// router (placement-drift counter + one redirect) and external
		// clients can correct course instead of guessing.
		if owner != "" {
			w.Header().Set(HeaderOwnerShard, owner)
			w.Header().Set(HeaderRingEpoch, strconv.FormatUint(epoch, 10))
		}
		httpError(w, http.StatusMisdirectedRequest,
			"user %q is not owned by shard %s", id, s.shardName)
		return
	}
	switch action {
	case "fingerprint":
		switch r.Method {
		case http.MethodPut:
			s.admitted(admit.Write, func(w http.ResponseWriter, r *http.Request) {
				s.putFingerprint(w, r, id)
			})(w, r)
		case http.MethodDelete:
			s.admitted(admit.Write, func(w http.ResponseWriter, r *http.Request) {
				s.deleteFingerprint(w, r, id)
			})(w, r)
		default:
			methodNotAllowed(w, "PUT, DELETE", "use PUT to upload a fingerprint, DELETE to retire it")
		}
	case "neighbors":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, "GET", "use GET to read neighbors")
			return
		}
		s.admitted(admit.Read, func(w http.ResponseWriter, r *http.Request) {
			s.getNeighbors(w, r, id)
		})(w, r)
	default:
		httpError(w, http.StatusNotFound, "unknown action %q: want fingerprint or neighbors", action)
	}
}

// maxBodyBytes is the exact wire size of one fingerprint at the server's
// configured length: magic (4) + header (8) + bit-array words (8 each).
func (s *Server) maxBodyBytes() int64 {
	words := (s.bits + 63) / 64
	return int64(12 + 8*words)
}

// readBoundedFingerprint reads exactly one fingerprint of the configured
// length from the request body, bounding the body size and rejecting
// trailing bytes after a valid SHF. On failure it writes the HTTP error
// and returns ok=false.
func (s *Server) readBoundedFingerprint(w http.ResponseWriter, r *http.Request) (core.Fingerprint, bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes()+1)
	fp, err := core.ReadFingerprint(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"fingerprint body exceeds %d bytes (server expects %d bits)", s.maxBodyBytes(), s.bits)
			return core.Fingerprint{}, false
		}
		httpError(w, http.StatusBadRequest, "bad fingerprint: %v", err)
		return core.Fingerprint{}, false
	}
	if fp.NumBits() != s.bits {
		httpError(w, http.StatusBadRequest, "fingerprint has %d bits, server expects %d", fp.NumBits(), s.bits)
		return core.Fingerprint{}, false
	}
	// io.ReadFull loops over (0, nil) reads, which io.Reader permits before
	// EOF, so only a real extra byte counts as trailing garbage.
	var trailing [1]byte
	if n, err := io.ReadFull(body, trailing[:]); n > 0 {
		httpError(w, http.StatusBadRequest, "trailing bytes after fingerprint")
		return core.Fingerprint{}, false
	} else if !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return core.Fingerprint{}, false
	}
	return fp, true
}

func (s *Server) putFingerprint(w http.ResponseWriter, r *http.Request, id string) {
	fp, ok := s.readBoundedFingerprint(w, r)
	if !ok {
		return
	}
	// Writers serialize on writeMu so the WAL receives records in exactly
	// the order memory applies them — the replay skip rule (drop records at
	// or below the snapshot's mutSeq) depends on mutSeq being monotone in
	// append order. The WAL append happens *before* the in-memory apply and
	// before the 204: an acked upload is durable; a failed append is a 503
	// and the upload never happened.
	start := time.Now()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	next := s.mutSeq + 1
	_, existing := s.index[id]
	s.mu.RUnlock()
	if s.store != nil {
		if s.store.Degraded() {
			setRetryAfter(w, degradedRetryAfter)
			httpError(w, http.StatusServiceUnavailable,
				"data dir unwritable; server is read-only until restart")
			return
		}
		if err := s.store.Append(durable.Record{Kind: durable.KindPut, MutSeq: next, ID: id, FP: fp}); err != nil {
			s.obs.SetText(metricDurableError, err.Error())
			setRetryAfter(w, degradedRetryAfter)
			httpError(w, http.StatusServiceUnavailable, "persisting fingerprint: %v", err)
			return
		}
	}
	s.mu.Lock()
	i, ok := s.index[id]
	if ok {
		s.fps[i] = fp
		s.deleted[i] = false // a re-upload revives a tombstoned user
	} else {
		i = len(s.users)
		s.index[id] = i
		s.users = append(s.users, id)
		s.fps = append(s.fps, fp)
		s.deleted = append(s.deleted, false)
	}
	s.mutSeq++
	s.mu.Unlock()
	s.applyOnline(next, i, fp, false)
	if existing {
		s.obs.Counter(metricMutOverwrite).Inc()
		s.obs.Histogram(metricMutOverwriteSecs, obs.DefWaitBuckets).ObserveSince(start)
	} else {
		s.obs.Counter(metricMutInsert).Inc()
		s.obs.Histogram(metricMutInsertSecs, obs.DefWaitBuckets).ObserveSince(start)
	}
	if s.store != nil {
		s.maybeCompactAsync()
	}
	w.WriteHeader(http.StatusNoContent)
}

// deleteFingerprint retires a user's fingerprint: the user is tombstoned
// in the state (the table itself is append-only, so indices never shift),
// removed from the live graph epoch, and excluded from every read path.
// The id stays reserved — a later PUT revives it at the same index.
// Deleting an already-deleted user is an accepted, WAL-logged no-op (the
// mutation counter still advances, keeping WAL order dense).
func (s *Server) deleteFingerprint(w http.ResponseWriter, r *http.Request, id string) {
	start := time.Now()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	i, known := s.index[id]
	next := s.mutSeq + 1
	s.mu.RUnlock()
	if !known {
		httpError(w, http.StatusNotFound, "unknown user %q", id)
		return
	}
	if s.store != nil {
		if s.store.Degraded() {
			setRetryAfter(w, degradedRetryAfter)
			httpError(w, http.StatusServiceUnavailable,
				"data dir unwritable; server is read-only until restart")
			return
		}
		if err := s.store.Append(durable.Record{Kind: durable.KindDelete, MutSeq: next, ID: id}); err != nil {
			s.obs.SetText(metricDurableError, err.Error())
			setRetryAfter(w, degradedRetryAfter)
			httpError(w, http.StatusServiceUnavailable, "persisting delete: %v", err)
			return
		}
	}
	s.mu.Lock()
	s.deleted[i] = true
	s.mutSeq++
	s.mu.Unlock()
	s.applyOnline(next, i, core.Fingerprint{}, true)
	s.obs.Counter(metricMutDelete).Inc()
	s.obs.Histogram(metricMutDeleteSecs, obs.DefWaitBuckets).ObserveSince(start)
	if s.store != nil {
		s.maybeCompactAsync()
	}
	w.WriteHeader(http.StatusNoContent)
}

// applyOnline applies one accepted, state-applied mutation to the live
// epoch's graph and logs the resulting delta, keeping both the served
// graph and the on-disk epoch warm. Called under writeMu with mutSeq the
// mutation's sequence number and i the user's dense index.
//
// If the epoch's maintainer is not exactly one step behind (it lags —
// recovery lost its delta tail, or no online epoch exists yet), the graph
// is left untouched and the lag is counted: the epoch serves stale under
// the pinned-epoch contract until the next build drains and replaces it.
func (s *Server) applyOnline(mutSeq uint64, i int, fp core.Fingerprint, del bool) {
	ep := s.epoch.Load()
	if ep == nil || ep.online == nil {
		return
	}
	snap := ep.online.Snapshot()
	if snap.Seq != mutSeq-1 {
		s.obs.Counter(metricMutStale).Inc()
		return
	}
	var (
		op  durable.DeltaOp
		res knn.MutationResult
		err error
	)
	switch {
	case del:
		op = durable.DeltaDelete
		res, err = ep.online.Delete(int32(i))
	case i == snap.NumNodes():
		op = durable.DeltaInsert
		var nid int32
		nid, res = ep.online.Insert(fp)
		if int(nid) != i {
			// Cannot happen while the tracking invariant holds (node ids are
			// dense user indices); recorded rather than trusted.
			err = fmt.Errorf("online insert assigned node %d, user index is %d", nid, i)
		}
	default:
		op = durable.DeltaOverwrite
		res, err = ep.online.Overwrite(int32(i), fp)
	}
	if err != nil {
		// The state applied but the graph did not: the maintainer's sequence
		// now lags permanently and every read path sees the epoch as stale —
		// honest degradation, repaired by the next build.
		s.obs.SetText(metricLastError, "online graph update failed: "+err.Error())
		s.obs.Counter(metricMutStale).Inc()
		return
	}
	s.obs.Counter(metricMutComparisons).Add(int64(res.Comparisons))
	if s.store != nil && !s.store.Degraded() {
		if aerr := s.store.Append(durable.Record{
			Kind:   durable.KindGraphDelta,
			MutSeq: mutSeq,
			Delta:  &durable.GraphDelta{Op: op, Node: int32(i), Adj: res.Touched},
		}); aerr != nil {
			// The mutation itself is durable (its put/delete record landed);
			// only the graph delta is lost, so recovery comes back with a
			// colder graph. The store has already flipped degraded.
			s.obs.SetText(metricDurableError, aerr.Error())
		}
	}
}

// BuildResult is the /graph/build response.
type BuildResult struct {
	Users       int     `json:"users"`
	K           int     `json:"k"`
	Algorithm   string  `json:"algorithm"`
	Comparisons int64   `json:"comparisons"`
	Iterations  int     `json:"iterations"`
	Epoch       int64   `json:"epoch"`
	DurationMS  float64 `json:"duration_ms"`
}

// Service-owned metric names; the knn builders publish theirs under the
// knn.Metric* constants into the same registry.
const (
	metricBuilds    = "build.total"
	metricCanceled  = "build.canceled.total"
	metricTimeouts  = "build.timeout.total"
	metricBuildSecs = "build.seconds"
	metricPackSecs  = "build.phase.pack.seconds"
	metricEpoch     = "build.epoch"
	metricLastError = "build.last_error"
	metricBuildAlgo = "build.algorithm"

	metricDurableError = "durable.last_error"

	// Online mutation observability: per-kind counters and latency
	// histograms (WAL append + state apply + graph update, i.e. the full
	// accepted-mutation path), the similarity comparisons the incremental
	// graph repair spent, and how many mutations could not be applied to
	// the graph because the epoch lagged the state (served stale until the
	// next build).
	metricMutInsert        = "online.insert.total"
	metricMutOverwrite     = "online.overwrite.total"
	metricMutDelete        = "online.delete.total"
	metricMutStale         = "online.stale.total"
	metricMutComparisons   = "online.comparisons.total"
	metricMutInsertSecs    = "online.insert.seconds"
	metricMutOverwriteSecs = "online.overwrite.seconds"
	metricMutDeleteSecs    = "online.delete.seconds"

	metricQuerySecs     = "query.seconds"
	metricQueryCanceled = "query.canceled.total"
	metricQueryDeadline = "query.deadline.total"

	// Per-mode query observability: how many queries each mode served,
	// how often the graph path fell back to a scan (short result: isolated
	// or unreachable nodes), per-mode latency histograms, and gauges of
	// the last graph search's depth and oracle work.
	metricQueryScan      = "query.mode.scan.total"
	metricQueryGraph     = "query.mode.graph.total"
	metricQueryFallback  = "query.graph.fallback.total"
	metricQueryScanSecs  = "query.scan.seconds"
	metricQueryGraphSecs = "query.graph.seconds"
	metricQueryHops      = "query.graph.hops"
	metricQueryScored    = "query.graph.scored"
	metricQueryAbandoned = "query.graph.abandoned"
)

// HeaderQueryMode is the response header naming how a /query was actually
// served: "graph", "scan", or "scan-fallback" (graph mode attempted but
// the descent could not reach k nodes, so the exact scan answered).
const HeaderQueryMode = "X-Query-Mode"

// handleBuildRoute dispatches the build endpoint: POST starts a build
// (admitted as a write, without a request deadline — builds own their
// lifecycle via -build-timeout and DELETE), DELETE cancels the in-flight
// one. Cancellation bypasses admission: it relieves load, so it must
// never queue behind the load it relieves.
func (s *Server) handleBuildRoute(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.admittedDeadline(admit.Write, false, s.handleBuild)(w, r)
	case http.MethodDelete:
		s.handleCancelBuild(w, r)
	default:
		methodNotAllowed(w, "POST, DELETE", "POST to build, DELETE to cancel")
	}
}

// handleCancelBuild cancels the in-flight build, if any. The builders poll
// the context per scan block, so the build returns within one block; the
// canceled POST answers 409 and the previous epoch stays fully servable.
func (s *Server) handleCancelBuild(w http.ResponseWriter, r *http.Request) {
	cancel := s.buildCancel.Load()
	if cancel == nil {
		httpError(w, http.StatusConflict, "no build in flight")
		return
	}
	(*cancel)() // idempotent; harmless if the build just finished
	writeJSON(w, http.StatusAccepted, map[string]bool{"canceling": true})
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = parsed
	}
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "hyrec"
	}
	switch algo {
	case "bruteforce", "hyrec", "nndescent", "cluster":
	default:
		httpError(w, http.StatusBadRequest, "unknown algorithm %q (bruteforce, hyrec, nndescent, cluster)", algo)
		return
	}

	if !s.building.CompareAndSwap(false, true) {
		setRetryAfter(w, s.buildRetryAfter())
		httpError(w, http.StatusConflict, "a build is already running; retry later")
		return
	}
	defer s.building.Store(false)

	// The build context: canceled by DELETE /graph/build, bounded by the
	// configured deadline. It is deliberately not derived from r.Context()
	// — a client dropping the POST mid-build must not abort a build other
	// clients are waiting on; DELETE is the explicit abort path.
	ctx := context.Background()
	var cancel context.CancelFunc
	timeout := time.Duration(s.buildTimeout.Load())
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	// A build legitimately outlives the http.Server WriteTimeout — the 200
	// is written only when construction finishes — so stretch this one
	// connection's write deadline to the build deadline (plus slack for
	// serializing the response), or clear it for unbounded builds. Errors
	// are ignored: test recorders don't implement deadlines, and the
	// fallback is merely the server-wide timeout.
	rc := http.NewResponseController(w)
	if timeout > 0 {
		_ = rc.SetWriteDeadline(time.Now().Add(timeout + 30*time.Second))
	} else {
		_ = rc.SetWriteDeadline(time.Time{})
	}
	s.buildCancel.Store(&cancel)
	buildStart := time.Now()
	s.buildStartNS.Store(buildStart.UnixNano())
	defer func() {
		s.buildCancel.Store(nil)
		s.buildStartNS.Store(0)
		s.obs.SetText(knn.MetricPhase, "idle")
		cancel()
	}()
	s.obs.Counter(metricBuilds).Inc()
	s.obs.SetText(metricBuildAlgo, algo)

	// Snapshot the corpus in packed form: reuses the cached packing when no
	// upload landed since, and otherwise packs outside any lock — so uploads
	// and reads proceed while the O(n²) construction churns.
	s.obs.SetText(knn.MetricPhase, "pack")
	packStart := time.Now()
	snap, err := s.packedSnapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "packing corpus: %v", err)
		return
	}
	s.obs.Histogram(metricPackSecs, obs.DefTimeBuckets).ObserveSince(packStart)
	users := snap.users

	if len(users) < 2 {
		httpError(w, http.StatusConflict, "need at least 2 fingerprints, have %d", len(users))
		return
	}
	// A node has at most n-1 neighbors, so clamping is behavior-preserving;
	// it also keeps a huge ?k= from panicking the builders' cap-k
	// neighborhood preallocations.
	if k > len(users)-1 {
		k = len(users) - 1
	}
	if s.buildHook != nil {
		s.buildHook()
	}

	provider := knn.NewPackedSHFProvider(snap.corpus)
	start := time.Now()
	bopts := knn.Options{Ctx: ctx, Obs: s.obs}
	var g *knn.Graph
	var stats knn.Stats
	var clusters *cluster.Assignment
	switch algo {
	case "bruteforce":
		g, stats = knn.BruteForce(provider, k, bopts)
	case "hyrec":
		g, stats = knn.Hyrec(provider, k, bopts)
	case "nndescent":
		g, stats = knn.NNDescent(provider, k, bopts)
	case "cluster":
		// Keep the assignment: its hashes seed graph-search entry points
		// on the query path for the lifetime of this epoch.
		g, clusters, stats = knn.ClusterConquerWith(provider, k, bopts, knn.ClusterConfig{
			Views:          int(s.clusterViews.Load()),
			MaxClusterSize: int(s.clusterMaxSize.Load()),
		})
	}
	duration := time.Since(start)

	// A canceled or timed-out build publishes nothing: the previous epoch
	// (if any) keeps serving every read path. The builders returned a
	// partial graph; it is discarded here.
	if ctxErr := ctx.Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			s.obs.Counter(metricTimeouts).Inc()
			msg := fmt.Sprintf("build (%s, k=%d) exceeded the %s deadline; previous epoch still serves", algo, k, timeout)
			s.obs.SetText(metricLastError, msg)
			httpError(w, http.StatusGatewayTimeout, "%s", msg)
		} else {
			s.obs.Counter(metricCanceled).Inc()
			msg := fmt.Sprintf("build (%s, k=%d) canceled after %s; previous epoch still serves", algo, k, duration.Round(time.Millisecond))
			s.obs.SetText(metricLastError, msg)
			httpError(w, http.StatusConflict, "%s", msg)
		}
		return
	}
	s.obs.SetText(metricLastError, "")

	nav := g.Navigable(provider)
	// Publish under writeMu: wrap the built graph in an online maintainer
	// and drain every mutation that landed while the build ran — inserts
	// for users registered since the snapshot, overwrites for changed
	// fingerprints, deletes for tombstones — so the new epoch starts
	// exactly current and the next mutation applies to it live. The
	// maintainer's sequence is seeded so the drain lands it on the state's
	// mutation counter. writeMu is held through SaveEpoch: a graph delta
	// for the *new* epoch must never reach the WAL before the epoch itself
	// reaches disk, or a crash would replay it onto the old epoch.
	s.writeMu.Lock()
	s.mu.RLock()
	curUsers := append([]string(nil), s.users...)
	curFPS := append([]core.Fingerprint(nil), s.fps...)
	curDeleted := append([]bool(nil), s.deleted...)
	curMutSeq := s.mutSeq
	s.mu.RUnlock()

	pendingOps := len(curUsers) - len(users) // inserts
	for i := range users {
		if !curDeleted[i] && !fpEqual(curFPS[i], snap.fps[i]) {
			pendingOps++ // overwrite
		}
	}
	for i := range curUsers {
		if curDeleted[i] {
			pendingOps++ // delete
		}
	}
	online, oerr := knn.NewOnline(g, nav, append([]core.Fingerprint(nil), snap.fps...), nil, k,
		curMutSeq-uint64(pendingOps))
	if oerr != nil {
		s.writeMu.Unlock()
		httpError(w, http.StatusInternalServerError, "wrapping built graph: %v", oerr)
		return
	}
	for i := len(users); i < len(curUsers); i++ {
		online.Insert(curFPS[i])
	}
	for i := range users {
		if !curDeleted[i] && !fpEqual(curFPS[i], snap.fps[i]) {
			online.Overwrite(int32(i), curFPS[i])
		}
	}
	for i := range curUsers {
		if curDeleted[i] {
			online.Delete(int32(i))
		}
	}

	ep := &graphEpoch{
		seq:       s.epochSeq.Add(1),
		graph:     g,
		nav:       nav,
		users:     users,
		clusters:  clusters,
		k:         k,
		algorithm: algo,
		builtAt:   start,
		duration:  duration,
		stats:     stats,
		mutSeq:    curMutSeq,
		online:    online,
	}
	s.epoch.Store(ep)
	s.obs.Gauge(metricEpoch).Set(ep.seq)
	s.obs.Histogram(metricBuildSecs, obs.DefTimeBuckets).Observe(duration.Seconds())

	// Persist the drained epoch before answering (and before releasing
	// writeMu — see above): a client that saw the build succeed must find
	// the same epoch after a crash. Persistence failure degrades the store
	// (reads keep serving the in-memory epoch) but the build itself
	// succeeded — report it in the response-independent durable error
	// channel, not as a build failure.
	if s.store != nil {
		onSnap := online.Snapshot()
		if err := s.store.SaveEpoch(durable.EpochData{
			Seq:       ep.seq,
			K:         ep.k,
			Algorithm: ep.algorithm,
			BuiltAt:   ep.builtAt,
			Duration:  ep.duration,
			Stats:     ep.stats,
			MutSeq:    onSnap.Seq,
			Users:     curUsers[:onSnap.NumNodes()],
			Graph:     onSnap.Graph,
			Dead:      onSnap.Dead,
		}); err != nil && !errors.Is(err, durable.ErrDegraded) {
			s.obs.SetText(metricDurableError, err.Error())
		}
	}
	s.writeMu.Unlock()
	if s.store != nil {
		s.compact()
	}

	writeJSON(w, http.StatusOK, BuildResult{
		Users:       len(users),
		K:           k,
		Algorithm:   algo,
		Comparisons: stats.Comparisons,
		Iterations:  stats.Iterations,
		Epoch:       ep.seq,
		DurationMS:  float64(duration) / float64(time.Millisecond),
	})
}

// NeighborJSON is one edge of a served neighborhood.
type NeighborJSON struct {
	User       string  `json:"user"`
	Similarity float64 `json:"similarity"`
}

func (s *Server) getNeighbors(w http.ResponseWriter, r *http.Request, id string) {
	s.mu.RLock()
	i, known := s.index[id]
	dead := known && i < len(s.deleted) && s.deleted[i]
	s.mu.RUnlock()
	if !known {
		httpError(w, http.StatusNotFound, "unknown user %q", id)
		return
	}
	if dead {
		httpError(w, http.StatusGone, "user %q deleted its fingerprint", id)
		return
	}
	ep := s.epoch.Load()
	if ep == nil {
		httpError(w, http.StatusConflict, "graph not built; POST /graph/build first")
		return
	}

	// Serve the live graph when the epoch has a maintainer (mutations since
	// the build are already in it); fall back to the frozen build result for
	// directly-installed epochs. The user table is append-only, so an index
	// below the served graph's node count always refers to the same user the
	// edges point at; an index at or past it means the graph epoch genuinely
	// lags the state (recovery lost its delta tail, or the epoch predates
	// online maintenance) and the old pinned-epoch contract applies.
	var nbrs []knn.Neighbor
	var epDead []bool
	if ep.online != nil {
		snap := ep.online.Snapshot()
		if i >= snap.NumNodes() {
			httpError(w, http.StatusConflict,
				"user %q is not yet in the served graph (epoch %d lags the state); POST /graph/build to include it", id, ep.seq)
			return
		}
		nbrs = snap.Graph.Neighbors[i]
		epDead = snap.Dead
	} else {
		if i >= len(ep.users) {
			httpError(w, http.StatusConflict,
				"user %q registered after epoch %d was built; POST /graph/build to include it", id, ep.seq)
			return
		}
		nbrs = ep.graph.Neighbors[i]
	}

	// Name the edges from the current table (indices are stable) and drop
	// edges to users deleted since the edge was recorded: the maintainer
	// purges dead in-edges lazily, and a lagging epoch cannot know at all.
	out := make([]NeighborJSON, 0, len(nbrs))
	s.mu.RLock()
	for _, nb := range nbrs {
		if int(nb.ID) < len(s.deleted) && s.deleted[nb.ID] {
			continue
		}
		if epDead != nil && epDead[nb.ID] {
			continue
		}
		out = append(out, NeighborJSON{User: s.users[nb.ID], Similarity: nb.Sim})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST", "POST required")
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = parsed
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "auto"
	}
	switch mode {
	case "auto", "graph", "scan":
	default:
		httpError(w, http.StatusBadRequest, "unknown mode %q (auto, graph, scan)", mode)
		return
	}
	fp, ok := s.readBoundedFingerprint(w, r)
	if !ok {
		return
	}

	// Snapshot the packed corpus (reusing the cached packing unless an
	// upload landed since), then search/scan outside the lock so a long
	// query never stalls uploads. The query fingerprint was validated to
	// the server's bit length above, so it always matches the corpus.
	snap, err := s.packedSnapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "packing corpus: %v", err)
		return
	}

	// Mode selection. The graph path navigates the served epoch's KNN
	// graph instead of scanning all n rows. With an online-maintained
	// epoch the graph already contains every mutation up to its sequence
	// number, so auto picks it whenever that sequence matches the packed
	// snapshot's — which, mutations being applied live, is the steady
	// state, not the just-built special case. Only an epoch that genuinely
	// lags (recovery lost its delta tail; directly-installed test epochs
	// use their frozen build sequence) sends auto to the scan. An explicit
	// mode=graph serves the (possibly lagging) graph's user set and is the
	// caller's statement that approximate-but-fast beats exact-but-O(n).
	ep := s.epoch.Load()
	if mode == "graph" && ep == nil {
		httpError(w, http.StatusConflict, "graph not built; POST /graph/build first or use mode=scan")
		return
	}
	var live *knn.OnlineSnapshot
	nav := (*knn.Graph)(nil)
	epNodes, epSeq := 0, uint64(0)
	if ep != nil {
		if ep.online != nil {
			live = ep.online.Snapshot()
			nav, epNodes, epSeq = live.Nav, live.NumNodes(), live.Seq
		} else {
			nav, epNodes, epSeq = ep.nav, len(ep.users), ep.mutSeq
		}
	}
	// The packed corpus and the graph snapshot are taken without a common
	// lock, so a racing mutation can leave the graph one node ahead of the
	// corpus; the scorer cannot score that node, so such a query scans.
	fits := ep != nil && epNodes <= snap.corpus.NumUsers()
	useGraph := fits && (mode == "graph" || (mode == "auto" && epSeq == snap.mutSeq))

	// Both paths run under the request context (class deadline, client
	// X-Request-Timeout, client disconnect): a caller nobody is waiting on
	// stops burning the corpus within one tile or hop. Both abort causes
	// are counted; a deadline gets an honest 503 + Retry-After, a vanished
	// client gets 499 for the logs.
	corpus := snap.corpus
	queryStart := time.Now()
	var best []knn.Neighbor
	served := "scan"
	if useGraph {
		kEff := min(k, epNodes)
		if live != nil {
			kEff = min(k, live.Live)
		}
		// Tombstoned users must not appear in results: the search excludes
		// nodes dead in the graph snapshot or deleted in the state snapshot
		// (a lagging graph cannot know about later deletes). Excluded nodes
		// are still traversed — a dead hub keeps bridging its region.
		excl := func(v int32) bool {
			if live != nil && live.Dead[v] {
				return true
			}
			return int(v) < len(snap.deleted) && snap.deleted[v]
		}
		res, sstats, serr := knn.GraphSearch(nav, corpus.NewQueryScorer(fp), kEff,
			knn.SearchOptions{Ctx: r.Context(), Seeds: querySeeds(ep, fp, epNodes), Exclude: excl})
		if serr != nil {
			s.queryAborted(w, serr)
			return
		}
		s.obs.Gauge(metricQueryHops).Set(int64(sstats.Hops))
		s.obs.Gauge(metricQueryScored).Set(int64(sstats.Scored))
		s.obs.Gauge(metricQueryAbandoned).Set(int64(sstats.Abandoned))
		if len(res) < kEff {
			// The descent could not reach k distinct nodes (isolated
			// nodes, disconnected clusters): deliver the scan's exact
			// answer instead of a silently short one.
			s.obs.Counter(metricQueryFallback).Inc()
			served = "scan-fallback"
		} else {
			best = res
			served = "graph"
			s.obs.Counter(metricQueryGraph).Inc()
			s.obs.Histogram(metricQueryGraphSecs, obs.DefWaitBuckets).ObserveSince(queryStart)
		}
	}
	if served != "graph" {
		// Over-fetch by the tombstone count so dropping deleted users below
		// still leaves k live results when they exist.
		kScan := min(k+snap.dead, corpus.NumUsers())
		best, err = knn.TopKRangeCtx(r.Context(), corpus.NumUsers(), kScan, 0, func(lo, hi int, out []float64) {
			corpus.JaccardQueryInto(fp, lo, hi, out)
		})
		if err != nil {
			s.queryAborted(w, err)
			return
		}
		if snap.dead > 0 {
			kept := best[:0]
			for _, b := range best {
				if !snap.deleted[b.ID] {
					kept = append(kept, b)
				}
			}
			best = kept
		}
		if len(best) > k {
			best = best[:k]
		}
		s.obs.Counter(metricQueryScan).Inc()
		s.obs.Histogram(metricQueryScanSecs, obs.DefWaitBuckets).ObserveSince(queryStart)
	}
	s.obs.Histogram(metricQuerySecs, obs.DefWaitBuckets).ObserveSince(queryStart)
	w.Header().Set(HeaderQueryMode, served)
	out := make([]NeighborJSON, 0, len(best))
	for _, b := range best {
		out = append(out, NeighborJSON{User: snap.users[b.ID], Similarity: b.Sim})
	}
	// TopK breaks ties by dense index (registration order); the response
	// contract orders equal similarities by external user id.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].User < out[j].User
	})
	writeJSON(w, http.StatusOK, out)
}

// clusterQuerySeeds is the number of bucket-derived entry points a
// cluster epoch contributes to a graph query.
const clusterQuerySeeds = 48

// querySeeds picks graph-search entry points for fp. With a cluster
// epoch the query's own hash buckets supply entry points that are already
// likely to be similar to it — the descent starts next to its target
// instead of walking in from evenly spread strangers — layered on top of
// the full default spread (knn.DefaultSeeds): the spread is what keeps
// every region of a directed KNN graph reachable, and the warm bucket
// seeds raise the beam's floor early so weaker paths are pruned sooner.
// Without an assignment (other algorithms, recovered epochs) it returns
// nil and GraphSearch uses its default spread alone. n is the served
// graph's current node count — the live graph may have grown past the
// build-time user table.
func querySeeds(ep *graphEpoch, fp core.Fingerprint, n int) []int32 {
	if ep.clusters == nil || len(ep.clusters.Views) == 0 {
		return nil
	}
	seeds := ep.clusters.Seeds(fp.Bits().Words(), clusterQuerySeeds)
	if len(seeds) == 0 {
		return nil
	}
	return knn.DefaultSeeds(seeds, n)
}

// queryAborted answers a query whose context died mid-search/mid-scan: a
// deadline gets an honest 503 + Retry-After, a vanished client 499.
func (s *Server) queryAborted(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.obs.Counter(metricQueryDeadline).Inc()
		setRetryAfter(w, s.admit.RetryAfter(admit.Query))
		httpError(w, http.StatusServiceUnavailable,
			"query aborted at its deadline; retry later (lower load) or with a larger %s", HeaderRequestTimeout)
		return
	}
	s.obs.Counter(metricQueryCanceled).Inc()
	httpError(w, statusClientClosedRequest, "query canceled by client")
}

// fpEqual reports whether two uploaded fingerprints carry identical bit
// arrays — the build-publish drain uses it to detect overwrites that
// landed while the build ran.
func fpEqual(a, b core.Fingerprint) bool {
	return a.Bits().Equal(b.Bits())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// methodNotAllowed writes a 405 with the Allow header RFC 9110 §15.5.6
// requires on every 405 response.
func methodNotAllowed(w http.ResponseWriter, allow string, format string, args ...any) {
	w.Header().Set("Allow", allow)
	httpError(w, http.StatusMethodNotAllowed, format, args...)
}
