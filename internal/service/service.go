// Package service implements the untrusted KNN-construction service of the
// paper's deployment story (§2.5): clients fingerprint their profiles
// locally and upload only the SHFs; the server never sees a profile in
// clear text, yet can build the KNN graph, serve neighborhoods, and answer
// top-k similarity queries. Transport is HTTP with the binary fingerprint
// codec as payload and JSON responses.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
)

// Server is the KNN-construction service. It is safe for concurrent use.
type Server struct {
	bits int

	mu    sync.RWMutex
	users []string // dense index → external user id
	index map[string]int
	fps   []core.Fingerprint
	graph *knn.Graph
	k     int
	stale bool
}

// NewServer creates a service accepting fingerprints of the given length.
func NewServer(bits int) (*Server, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("service: fingerprint length must be positive, got %d", bits)
	}
	return &Server{bits: bits, index: map[string]int{}}, nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/users/", s.handleUsers) // PUT fingerprint, GET neighbors
	mux.HandleFunc("/graph/build", s.handleBuild)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// Stats is the /stats response.
type Stats struct {
	Users      int  `json:"users"`
	Bits       int  `json:"bits"`
	GraphK     int  `json:"graph_k"`
	GraphBuilt bool `json:"graph_built"`
	GraphStale bool `json:"graph_stale"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	st := Stats{
		Users:      len(s.users),
		Bits:       s.bits,
		GraphK:     s.k,
		GraphBuilt: s.graph != nil,
		GraphStale: s.stale,
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, st)
}

// handleUsers routes /users/{id}/fingerprint and /users/{id}/neighbors.
func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" {
		httpError(w, http.StatusNotFound, "want /users/{id}/fingerprint or /users/{id}/neighbors")
		return
	}
	id, action := parts[0], parts[1]
	switch {
	case action == "fingerprint" && r.Method == http.MethodPut:
		s.putFingerprint(w, r, id)
	case action == "neighbors" && r.Method == http.MethodGet:
		s.getNeighbors(w, r, id)
	default:
		httpError(w, http.StatusMethodNotAllowed, "unsupported method or action")
	}
}

func (s *Server) putFingerprint(w http.ResponseWriter, r *http.Request, id string) {
	fp, err := core.ReadFingerprint(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad fingerprint: %v", err)
		return
	}
	if fp.NumBits() != s.bits {
		httpError(w, http.StatusBadRequest, "fingerprint has %d bits, server expects %d", fp.NumBits(), s.bits)
		return
	}
	s.mu.Lock()
	if i, ok := s.index[id]; ok {
		s.fps[i] = fp
	} else {
		s.index[id] = len(s.users)
		s.users = append(s.users, id)
		s.fps = append(s.fps, fp)
	}
	s.stale = true
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// BuildResult is the /graph/build response.
type BuildResult struct {
	Users       int    `json:"users"`
	K           int    `json:"k"`
	Algorithm   string `json:"algorithm"`
	Comparisons int64  `json:"comparisons"`
	Iterations  int    `json:"iterations"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = parsed
	}
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "hyrec"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.users) < 2 {
		httpError(w, http.StatusConflict, "need at least 2 fingerprints, have %d", len(s.users))
		return
	}
	provider := &knn.SHFProvider{Fingerprints: s.fps}
	var g *knn.Graph
	var stats knn.Stats
	switch algo {
	case "bruteforce":
		g, stats = knn.BruteForce(provider, k, knn.Options{})
	case "hyrec":
		g, stats = knn.Hyrec(provider, k, knn.Options{})
	case "nndescent":
		g, stats = knn.NNDescent(provider, k, knn.Options{})
	default:
		httpError(w, http.StatusBadRequest, "unknown algorithm %q (bruteforce, hyrec, nndescent)", algo)
		return
	}
	s.graph = g
	s.k = k
	s.stale = false
	writeJSON(w, http.StatusOK, BuildResult{
		Users:       len(s.users),
		K:           k,
		Algorithm:   algo,
		Comparisons: stats.Comparisons,
		Iterations:  stats.Iterations,
	})
}

// NeighborJSON is one edge of a served neighborhood.
type NeighborJSON struct {
	User       string  `json:"user"`
	Similarity float64 `json:"similarity"`
}

func (s *Server) getNeighbors(w http.ResponseWriter, r *http.Request, id string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.index[id]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown user %q", id)
		return
	}
	if s.graph == nil {
		httpError(w, http.StatusConflict, "graph not built; POST /graph/build first")
		return
	}
	out := make([]NeighborJSON, 0, len(s.graph.Neighbors[i]))
	for _, nb := range s.graph.Neighbors[i] {
		out = append(out, NeighborJSON{User: s.users[nb.ID], Similarity: nb.Sim})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = parsed
	}
	fp, err := core.ReadFingerprint(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad fingerprint: %v", err)
		return
	}
	if fp.NumBits() != s.bits {
		httpError(w, http.StatusBadRequest, "fingerprint has %d bits, server expects %d", fp.NumBits(), s.bits)
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	type scored struct {
		idx int
		sim float64
	}
	best := make([]scored, 0, k)
	for i := range s.fps {
		sim := core.Jaccard(fp, s.fps[i])
		if len(best) < k {
			best = append(best, scored{idx: i, sim: sim})
			continue
		}
		worst := 0
		for j := 1; j < len(best); j++ {
			if best[j].sim < best[worst].sim {
				worst = j
			}
		}
		if sim > best[worst].sim {
			best[worst] = scored{idx: i, sim: sim}
		}
	}
	// Sort descending for a stable response.
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].sim > best[i].sim ||
				(best[j].sim == best[i].sim && s.users[best[j].idx] < s.users[best[i].idx]) {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	out := make([]NeighborJSON, 0, len(best))
	for _, b := range best {
		out = append(out, NeighborJSON{User: s.users[b.idx], Similarity: b.sim})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}
