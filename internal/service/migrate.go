package service

// The shard-side half of the ring-change migration protocol. The router
// drives it; this file implements what a shard-core must do:
//
//   POST /ring            install a placement ring (epoch, names, mode)
//   GET  /ring            read the installed ring
//   GET  /migrate/export  stream the users a gaining shard must take
//   POST /migrate/import  pull an export stream and apply it via the WAL
//   POST /migrate/retire  tombstone the users handed off after cutover
//
// The protocol, end to end (the driver in internal/router sequences it):
//
//  1. transition install — every shard gets the new ring at epoch E with
//     mode "transition" and the previous name list. A shard then accepts
//     an id if it owns it under either ring (dual-ownership), and the
//     router fences mutations to moving ids (fail-fast 503) so the
//     export stream below is a frozen, authoritative snapshot of them.
//  2. import — each gaining shard journals a MigImportBegin mark, pulls
//     GET /migrate/export from the losing shard, applies every user
//     through its own WAL (append-before-apply, exactly like a client
//     PUT), and journals MigImportDone. A crash anywhere in between
//     recovers with the begin mark un-matched: the driver's retry
//     re-imports, and re-applying the same frozen stream is idempotent —
//     no user lost, none duplicated.
//  3. cutover — every shard gets the same epoch E re-installed with mode
//     "stable"; ownership flips atomically per shard (the atomic ring
//     pointer swap), the router lifts the fence and routes by the new
//     ring.
//  4. retire — the losing shard tombstones (ordinary WAL-logged deletes)
//     every user the stable ring no longer assigns to it, then journals
//     MigRetireDone. Until retire completes both shards hold the moved
//     users; scatter queries deduplicate by user id, so the transient
//     double-residency is invisible.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/durable"
	"goldfinger/internal/obs"
	"goldfinger/internal/router"
)

const (
	// HeaderOwnerShard names the correct owner of a misrouted id on a 421
	// response, taken from the shard's installed ring slice.
	HeaderOwnerShard = "X-Owner-Shard"
	// HeaderRingEpoch carries the responding shard's ring epoch on 421s
	// and ring-conflict 409s, so the caller can tell stale routing from
	// genuine drift.
	HeaderRingEpoch = "X-Ring-Epoch"
)

// Ring modes.
const (
	RingStable     = "stable"
	RingTransition = "transition"
)

// Migration metric names.
const (
	metricRingInstalls  = "ring.installs.total"
	metricRingEpoch     = "ring.epoch"
	metricMigImports    = "migrate.import.total"
	metricMigImported   = "migrate.imported.users"
	metricMigExports    = "migrate.export.total"
	metricMigRetired    = "migrate.retired.users"
	metricMigResumed    = "migrate.resumed.total"
	metricMigImportSecs = "migrate.import.seconds"
)

// RingInfo is one placement-ring epoch as pushed by the router (POST
// /ring) or configured statically at process start. Names is the full
// ordered shard list the consistent-hash ring is built from; PrevNames is
// the previous list, required in transition mode to widen acceptance to
// both rings while a migration streams.
type RingInfo struct {
	Epoch     uint64   `json:"epoch"`
	Mode      string   `json:"mode"` // RingStable or RingTransition
	Names     []string `json:"names"`
	PrevNames []string `json:"prev_names,omitempty"`
	// Replicas is the virtual-node count per shard; 0 means the ring
	// default. Must match the router's setting or placements disagree.
	Replicas int `json:"replicas,omitempty"`
}

// ringView is an installed RingInfo with its placements materialized.
// Immutable; swapped atomically on install.
type ringView struct {
	info  RingInfo
	self  string
	place *router.Placement
	prev  *router.Placement // non-nil only in transition mode
}

func (v *ringView) ownerOf(id string) string {
	return v.place.OwnerName(v.info.Names, id)
}

// acceptsID decides whether this shard serves the id, and names the
// owning shard (plus the ring epoch) when a ring is installed so the 421
// path can say who should have been asked. With no ring installed the
// legacy owns predicate (SetShard) applies; with neither, every id is
// accepted — the single-node default.
func (s *Server) acceptsID(id string) (ok bool, owner string, epoch uint64) {
	if rv := s.ring.Load(); rv != nil {
		owner = rv.ownerOf(id)
		if owner == rv.self {
			return true, owner, rv.info.Epoch
		}
		if rv.prev != nil && rv.prev.OwnerName(rv.info.PrevNames, id) == rv.self {
			// Transition window: still accepting what the old ring gave us
			// (reads route here until cutover; the export stream needs it).
			return true, owner, rv.info.Epoch
		}
		return false, owner, rv.info.Epoch
	}
	if s.owns != nil && !s.owns(id) {
		return false, "", 0
	}
	return true, "", 0
}

// InstallRing validates and installs a placement ring. Same-epoch
// re-installs are accepted (idempotent re-push, and the cutover is the
// same epoch flipping transition→stable); an older epoch is refused.
func (s *Server) InstallRing(info RingInfo) error {
	if len(info.Names) == 0 {
		return errors.New("ring has no shards")
	}
	seen := make(map[string]bool, len(info.Names))
	for _, n := range info.Names {
		if n == "" || seen[n] {
			return fmt.Errorf("ring has duplicate or empty shard name %q", n)
		}
		seen[n] = true
	}
	switch info.Mode {
	case RingStable:
		if len(info.PrevNames) != 0 {
			return errors.New("stable ring must not carry prev_names")
		}
	case RingTransition:
		if len(info.PrevNames) == 0 {
			return errors.New("transition ring needs prev_names")
		}
	default:
		return fmt.Errorf("ring mode must be %q or %q, got %q", RingStable, RingTransition, info.Mode)
	}
	if cur := s.ring.Load(); cur != nil && info.Epoch < cur.info.Epoch {
		return fmt.Errorf("ring epoch %d is older than installed epoch %d", info.Epoch, cur.info.Epoch)
	}
	rv := &ringView{
		info:  info,
		self:  s.shardName,
		place: router.NewPlacement(info.Names, info.Replicas),
	}
	if info.Mode == RingTransition {
		rv.prev = router.NewPlacement(info.PrevNames, info.Replicas)
	}
	s.ring.Store(rv)
	s.obs.Counter(metricRingInstalls).Inc()
	s.obs.Gauge(metricRingEpoch).Set(int64(info.Epoch))
	if s.onRing != nil {
		s.onRing(info)
	}
	return nil
}

// handleRing serves GET (read the installed ring) and POST (install one).
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rv := s.ring.Load()
		if rv == nil {
			httpError(w, http.StatusNotFound, "no ring installed")
			return
		}
		writeJSON(w, http.StatusOK, rv.info)
	case http.MethodPost:
		var info RingInfo
		if err := readJSONBody(w, r, 1<<20, &info); err != nil {
			return
		}
		if cur := s.ring.Load(); cur != nil && info.Epoch < cur.info.Epoch {
			w.Header().Set(HeaderRingEpoch, strconv.FormatUint(cur.info.Epoch, 10))
			httpError(w, http.StatusConflict,
				"ring epoch %d is older than installed epoch %d", info.Epoch, cur.info.Epoch)
			return
		}
		if err := s.InstallRing(info); err != nil {
			httpError(w, http.StatusBadRequest, "bad ring: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": info.Epoch, "mode": info.Mode})
	default:
		methodNotAllowed(w, "GET, POST", "GET reads the ring, POST installs one")
	}
}

// handleMigrateExport streams every live user the given shard gains under
// the installed ring: a core user table followed by the matching
// fingerprint set. The stream is a consistent snapshot — the router
// fences mutations to moving ids for the whole transfer window, so what
// is streamed here cannot change until cutover.
func (s *Server) handleMigrateExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET", "GET streams the users the requesting shard gains")
		return
	}
	to := r.URL.Query().Get("to")
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if to == "" || err != nil {
		httpError(w, http.StatusBadRequest, "want /migrate/export?epoch=N&to=shard-name")
		return
	}
	rv := s.ring.Load()
	if rv == nil || rv.info.Epoch != epoch {
		if rv != nil {
			w.Header().Set(HeaderRingEpoch, strconv.FormatUint(rv.info.Epoch, 10))
		}
		httpError(w, http.StatusConflict, "export for ring epoch %d but shard has %s", epoch, ringEpochString(rv))
		return
	}

	var ids []string
	var fps []core.Fingerprint
	s.mu.RLock()
	for i, id := range s.users {
		if i < len(s.deleted) && s.deleted[i] {
			continue
		}
		if rv.ownerOf(id) == to {
			ids = append(ids, id)
			fps = append(fps, s.fps[i])
		}
	}
	s.mu.RUnlock()

	s.obs.Counter(metricMigExports).Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Migration-Users", strconv.Itoa(len(ids)))
	if err := core.WriteUserTable(w, ids); err != nil {
		return // client gone; nothing to clean up
	}
	core.WriteFingerprintSet(w, fps)
}

// migrateImportRequest is the POST /migrate/import body.
type migrateImportRequest struct {
	Epoch   uint64 `json:"epoch"`
	From    string `json:"from"`     // losing shard's name
	FromURL string `json:"from_url"` // losing shard's base URL
}

// handleMigrateImport pulls the export stream from the losing shard and
// applies it locally, journaling the handoff so a crash mid-import is
// visible (and resumable) at recovery. Idempotent: re-importing the same
// frozen stream overwrites users with identical data.
func (s *Server) handleMigrateImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST", "POST pulls and applies a migration stream")
		return
	}
	var req migrateImportRequest
	if err := readJSONBody(w, r, 1<<16, &req); err != nil {
		return
	}
	if req.From == "" || req.FromURL == "" {
		httpError(w, http.StatusBadRequest, "import needs from and from_url")
		return
	}
	rv := s.ring.Load()
	if rv == nil || rv.info.Epoch != req.Epoch || rv.info.Mode != RingTransition {
		// Importing outside the transition window is refused: after cutover
		// this shard may have accepted fresh writes for the moved ids, and
		// an old export stream must never overwrite them.
		if rv != nil {
			w.Header().Set(HeaderRingEpoch, strconv.FormatUint(rv.info.Epoch, 10))
		}
		httpError(w, http.StatusConflict,
			"import wants ring epoch %d in transition, shard has %s", req.Epoch, ringEpochString(rv))
		return
	}
	if !s.importing.CompareAndSwap(false, true) {
		httpError(w, http.StatusConflict, "an import is already streaming")
		return
	}
	defer s.importing.Store(false)
	s.migrating.Store(true)
	defer s.migrating.Store(false)

	start := time.Now()
	if err := s.journalMigration(durable.MigImportBegin, req.Epoch, req.From, 0); err != nil {
		setRetryAfter(w, degradedRetryAfter)
		httpError(w, http.StatusServiceUnavailable, "journaling import begin: %v", err)
		return
	}

	ids, fps, err := pullExport(r.Context(), req.FromURL, req.Epoch, rv.self)
	if err != nil {
		httpError(w, http.StatusBadGateway, "pulling export from %s: %v", req.From, err)
		return
	}
	applied := 0
	pace := newPacer(int(s.migrateRate.Load()))
	for i, id := range ids {
		if fps[i].NumBits() != s.bits {
			httpError(w, http.StatusBadGateway,
				"export stream fingerprint for %q has %d bits, want %d", id, fps[i].NumBits(), s.bits)
			return
		}
		if err := r.Context().Err(); err != nil {
			// Driver gone mid-apply: everything applied so far is durable;
			// the begin mark stays un-matched and the retry resumes.
			httpError(w, statusClientClosedRequest, "import canceled: %v", err)
			return
		}
		if err := s.applyMigratedPut(id, fps[i]); err != nil {
			setRetryAfter(w, degradedRetryAfter)
			httpError(w, http.StatusServiceUnavailable, "applying migrated user %q: %v", id, err)
			return
		}
		applied++
		pace.tick()
	}
	if err := s.journalMigration(durable.MigImportDone, req.Epoch, req.From, uint32(applied)); err != nil {
		setRetryAfter(w, degradedRetryAfter)
		httpError(w, http.StatusServiceUnavailable, "journaling import done: %v", err)
		return
	}
	s.pendingMig.Store(nil)
	s.obs.Counter(metricMigImports).Inc()
	s.obs.Counter(metricMigImported).Add(int64(applied))
	s.obs.Histogram(metricMigImportSecs, obs.DefWaitBuckets).ObserveSince(start)
	writeJSON(w, http.StatusOK, map[string]any{"imported": applied, "epoch": req.Epoch, "from": req.From})
}

// migrateRetireRequest is the POST /migrate/retire body.
type migrateRetireRequest struct {
	Epoch uint64 `json:"epoch"`
}

// handleMigrateRetire tombstones every live user the installed stable
// ring no longer assigns to this shard. Only legal after cutover —
// retiring while still the owner would discard data. Idempotent: a
// repeat retire finds nothing live to tombstone.
func (s *Server) handleMigrateRetire(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST", "POST tombstones handed-off users after cutover")
		return
	}
	var req migrateRetireRequest
	if err := readJSONBody(w, r, 1<<16, &req); err != nil {
		return
	}
	rv := s.ring.Load()
	if rv == nil || rv.info.Epoch != req.Epoch || rv.info.Mode != RingStable {
		if rv != nil {
			w.Header().Set(HeaderRingEpoch, strconv.FormatUint(rv.info.Epoch, 10))
		}
		httpError(w, http.StatusConflict,
			"retire wants stable ring epoch %d, shard has %s", req.Epoch, ringEpochString(rv))
		return
	}

	s.mu.RLock()
	var targets []string
	for i, id := range s.users {
		if i < len(s.deleted) && s.deleted[i] {
			continue
		}
		if rv.ownerOf(id) != rv.self {
			targets = append(targets, id)
		}
	}
	s.mu.RUnlock()

	retired := 0
	for _, id := range targets {
		if err := s.applyMigratedDelete(id); err != nil {
			setRetryAfter(w, degradedRetryAfter)
			httpError(w, http.StatusServiceUnavailable, "retiring user %q: %v", id, err)
			return
		}
		retired++
	}
	if err := s.journalMigration(durable.MigRetireDone, req.Epoch, "", uint32(retired)); err != nil {
		setRetryAfter(w, degradedRetryAfter)
		httpError(w, http.StatusServiceUnavailable, "journaling retire: %v", err)
		return
	}
	s.obs.Counter(metricMigRetired).Add(int64(retired))
	writeJSON(w, http.StatusOK, map[string]any{"retired": retired, "epoch": req.Epoch})
}

// journalMigration appends one handoff mark to the WAL (no-op without a
// store). Marks carry the current mutation counter without advancing it.
func (s *Server) journalMigration(phase durable.MigPhase, epoch uint64, peer string, users uint32) error {
	if s.store == nil {
		return nil
	}
	if s.store.Degraded() {
		return durable.ErrDegraded
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	seq := s.mutSeq
	s.mu.RUnlock()
	err := s.store.Append(durable.Record{
		Kind:   durable.KindMigration,
		MutSeq: seq,
		Mig:    &durable.MigrationMark{Phase: phase, Epoch: epoch, Peer: peer, Users: users},
	})
	if err != nil {
		s.obs.SetText(metricDurableError, err.Error())
	}
	return err
}

// applyMigratedPut is the WAL-backed mutation path of putFingerprint
// without the HTTP shell: append-before-apply under writeMu, then the
// online-graph update. Import streams go through it so a migrated user is
// exactly as durable as an acked client PUT.
func (s *Server) applyMigratedPut(id string, fp core.Fingerprint) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	next := s.mutSeq + 1
	s.mu.RUnlock()
	if s.store != nil {
		if s.store.Degraded() {
			return durable.ErrDegraded
		}
		if err := s.store.Append(durable.Record{Kind: durable.KindPut, MutSeq: next, ID: id, FP: fp}); err != nil {
			s.obs.SetText(metricDurableError, err.Error())
			return err
		}
	}
	s.mu.Lock()
	i, ok := s.index[id]
	if ok {
		s.fps[i] = fp
		s.deleted[i] = false
	} else {
		i = len(s.users)
		s.index[id] = i
		s.users = append(s.users, id)
		s.fps = append(s.fps, fp)
		s.deleted = append(s.deleted, false)
	}
	s.mutSeq++
	s.mu.Unlock()
	s.applyOnline(next, i, fp, false)
	return nil
}

// applyMigratedDelete is deleteFingerprint without the HTTP shell.
// Unknown ids are a no-op (retire targets are computed from the live
// table, so this only happens on races with concurrent retires).
func (s *Server) applyMigratedDelete(id string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	i, known := s.index[id]
	next := s.mutSeq + 1
	s.mu.RUnlock()
	if !known {
		return nil
	}
	if s.store != nil {
		if s.store.Degraded() {
			return durable.ErrDegraded
		}
		if err := s.store.Append(durable.Record{Kind: durable.KindDelete, MutSeq: next, ID: id}); err != nil {
			s.obs.SetText(metricDurableError, err.Error())
			return err
		}
	}
	s.mu.Lock()
	s.deleted[i] = true
	s.mutSeq++
	s.mu.Unlock()
	s.applyOnline(next, i, core.Fingerprint{}, true)
	return nil
}

// pullExport fetches and decodes one export stream.
func pullExport(ctx context.Context, baseURL string, epoch uint64, self string) ([]string, []core.Fingerprint, error) {
	url := fmt.Sprintf("%s/migrate/export?epoch=%d&to=%s", baseURL, epoch, self)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, nil, fmt.Errorf("export answered %d: %s", resp.StatusCode, string(body))
	}
	ids, err := core.ReadUserTable(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("decoding export user table: %w", err)
	}
	fps, err := core.ReadFingerprintSet(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("decoding export fingerprints: %w", err)
	}
	if len(ids) != len(fps) {
		return nil, nil, fmt.Errorf("export stream has %d ids but %d fingerprints", len(ids), len(fps))
	}
	return ids, fps, nil
}

// pacer rate-limits import applies to a users/second cap.
type pacer struct {
	interval time.Duration
	next     time.Time
}

func newPacer(perSec int) *pacer {
	if perSec <= 0 {
		return &pacer{}
	}
	return &pacer{interval: time.Second / time.Duration(perSec), next: time.Now()}
}

func (p *pacer) tick() {
	if p.interval <= 0 {
		return
	}
	p.next = p.next.Add(p.interval)
	if d := time.Until(p.next); d > 0 {
		time.Sleep(d)
	}
}

// readJSONBody decodes a bounded JSON request body, writing the HTTP
// error itself on failure.
func readJSONBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return err
	}
	return nil
}

func ringEpochString(rv *ringView) string {
	if rv == nil {
		return "no ring installed"
	}
	return fmt.Sprintf("epoch %d (%s)", rv.info.Epoch, rv.info.Mode)
}
