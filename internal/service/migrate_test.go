package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/durable"
	"goldfinger/internal/router"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func installRing(t *testing.T, ts *httptest.Server, info RingInfo) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/ring", info)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ring install (epoch %d, %s): status %d", info.Epoch, info.Mode, resp.StatusCode)
	}
}

// newNamedShard is newDurableServer plus a shard name, also returning the
// underlying Server for direct inspection.
func newNamedShard(t *testing.T, dir, name string) (*httptest.Server, *Server, *core.Scheme) {
	t.Helper()
	st, rec, err := durable.Open(durable.Options{Dir: dir, FS: durable.OSFS{}, Fsync: durable.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatalf("durable.Open(%s): %v", dir, err)
	}
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetShardName(name)
	if err := srv.UseStore(st, rec); err != nil {
		t.Fatalf("UseStore: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, core.MustScheme(1024, 7)
}

// ownerUnder names the owner of id in a ring built from names, the same
// way both the shard and the router compute it.
func ownerUnder(names []string, id string) string {
	return router.NewPlacement(names, 0).OwnerName(names, id)
}

// TestRingMisrouteNamesOwner: with a ring installed, a request for an id
// owned elsewhere answers 421 and names the correct owner (the shard half
// of placement-drift reporting).
func TestRingMisrouteNamesOwner(t *testing.T) {
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetShardName("shard-0")
	if err := srv.InstallRing(RingInfo{Epoch: 1, Mode: RingStable, Names: []string{"shard-0", "shard-1"}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	scheme := core.MustScheme(1024, 7)

	names := []string{"shard-0", "shard-1"}
	var mine, theirs string
	for i := 0; mine == "" || theirs == ""; i++ {
		id := userID(i)
		if ownerUnder(names, id) == "shard-0" {
			mine = id
		} else {
			theirs = id
		}
	}

	resp := putFingerprint(t, ts, scheme, mine, profileFor(1))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("owned PUT: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = putFingerprint(t, ts, scheme, theirs, profileFor(2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted PUT: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderOwnerShard); got != "shard-1" {
		t.Fatalf("X-Owner-Shard = %q, want shard-1", got)
	}
	if got := resp.Header.Get(HeaderRingEpoch); got != "1" {
		t.Fatalf("X-Ring-Epoch = %q, want 1", got)
	}

	// An older-epoch install is refused with the current epoch named.
	resp = postJSON(t, ts.URL+"/ring", RingInfo{Epoch: 0, Mode: RingStable, Names: []string{"shard-0"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale ring install: status %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRingEpoch); got != "1" {
		t.Fatalf("conflict X-Ring-Epoch = %q, want 1", got)
	}

	// GET /ring reads the installed ring back.
	getResp, err := http.Get(ts.URL + "/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var info RingInfo
	if err := json.NewDecoder(getResp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Mode != RingStable || len(info.Names) != 2 {
		t.Fatalf("GET /ring = %+v", info)
	}
}

// TestMigrationRoundTrip drives the full shard-side protocol between two
// durable servers: transition install, pull-import (twice, to prove
// idempotence), cutover, retire. Every user must end up on exactly one
// shard — none lost, none duplicated, none kept by the loser.
func TestMigrationRoundTrip(t *testing.T) {
	const n = 40
	oldNames := []string{"shard-0"}
	newNames := []string{"shard-0", "shard-1"}

	tsA, _, scheme := newNamedShard(t, t.TempDir(), "shard-0")
	tsB, _, _ := newNamedShard(t, t.TempDir(), "shard-1")

	installRing(t, tsA, RingInfo{Epoch: 1, Mode: RingStable, Names: oldNames})
	var moved, kept []string
	for i := 0; i < n; i++ {
		id := userID(i)
		resp := putFingerprint(t, tsA, scheme, id, profileFor(i))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed PUT %s: status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
		if ownerUnder(newNames, id) == "shard-1" {
			moved = append(moved, id)
		} else {
			kept = append(kept, id)
		}
	}
	if len(moved) == 0 || len(kept) == 0 {
		t.Fatalf("degenerate split: %d moved, %d kept", len(moved), len(kept))
	}

	// Retire ahead of cutover must be refused: the loser is still the
	// owner of record under the stable epoch-1 ring.
	resp := postJSON(t, tsA.URL+"/migrate/retire", migrateRetireRequest{Epoch: 2})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("premature retire: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// 1. Transition install on both shards.
	trans := RingInfo{Epoch: 2, Mode: RingTransition, Names: newNames, PrevNames: oldNames}
	installRing(t, tsA, trans)
	installRing(t, tsB, trans)

	// During transition the loser still accepts moved ids (dual-ownership).
	status, _ := getNeighborList(t, tsA, moved[0])
	if status == http.StatusMisdirectedRequest {
		t.Fatal("loser rejected a moved id during transition")
	}

	// 2. Import on the gainer. Run it twice: the second pass re-applies
	// the same frozen stream and must not duplicate anyone.
	for pass := 1; pass <= 2; pass++ {
		resp := postJSON(t, tsB.URL+"/migrate/import", migrateImportRequest{Epoch: 2, From: "shard-0", FromURL: tsA.URL})
		var out struct {
			Imported int `json:"imported"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Imported != len(moved) {
			t.Fatalf("import pass %d: status %d, imported %d, want %d", pass, resp.StatusCode, out.Imported, len(moved))
		}
		if got := getStats(t, tsB).Users; got != len(moved) {
			t.Fatalf("gainer users after import pass %d = %d, want %d", pass, got, len(moved))
		}
	}

	// An import against the wrong epoch is refused.
	resp = postJSON(t, tsB.URL+"/migrate/import", migrateImportRequest{Epoch: 9, From: "shard-0", FromURL: tsA.URL})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong-epoch import: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// 3. Cutover: the same epoch flips to stable on both shards.
	stable := RingInfo{Epoch: 2, Mode: RingStable, Names: newNames}
	installRing(t, tsA, stable)
	installRing(t, tsB, stable)

	// Importing after cutover must be refused: the gainer may have taken
	// fresh writes that an old export stream must never overwrite.
	resp = postJSON(t, tsB.URL+"/migrate/import", migrateImportRequest{Epoch: 2, From: "shard-0", FromURL: tsA.URL})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-cutover import: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// 4. Retire: the loser tombstones exactly the moved users.
	resp = postJSON(t, tsA.URL+"/migrate/retire", migrateRetireRequest{Epoch: 2})
	var ret struct {
		Retired int `json:"retired"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ret); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ret.Retired != len(moved) {
		t.Fatalf("retire: status %d, retired %d, want %d", resp.StatusCode, ret.Retired, len(moved))
	}

	// Every user lives on exactly its new owner; the loser 421s moved ids
	// and names the gainer. (Stats.Users counts table entries including
	// tombstones; live = Users - DeletedUsers.)
	stA := getStats(t, tsA)
	if live := stA.Users - stA.DeletedUsers; live != len(kept) {
		t.Fatalf("loser live users after retire = %d, want %d", live, len(kept))
	}
	stB := getStats(t, tsB)
	if live := stB.Users - stB.DeletedUsers; live != len(moved) {
		t.Fatalf("gainer live users after retire = %d, want %d", live, len(moved))
	}
	status, _ = getNeighborList(t, tsA, moved[0])
	if status != http.StatusMisdirectedRequest {
		t.Fatalf("loser after cutover: status %d, want 421", status)
	}

	// A repeat retire is idempotent.
	resp = postJSON(t, tsA.URL+"/migrate/retire", migrateRetireRequest{Epoch: 2})
	if err := json.NewDecoder(resp.Body).Decode(&ret); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ret.Retired != 0 {
		t.Fatalf("second retire tombstoned %d users", ret.Retired)
	}
}

// TestMigrationCrashResumeSurfaced: a WAL holding an unmatched
// import-begin mark (a gainer killed mid-stream) must surface the pending
// migration at recovery, in both the Recovery struct and /stats; a later
// completed import clears it durably.
func TestMigrationCrashResumeSurfaced(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	st, _, err := durable.Open(durable.Options{Dir: dirB, FS: durable.OSFS{}, Fsync: durable.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// A process that journaled the begin mark and was killed mid-stream.
	// The store handle is abandoned without Close: SIGKILL-equivalent.
	if err := st.Append(durable.Record{Kind: durable.KindMigration, MutSeq: 0,
		Mig: &durable.MigrationMark{Phase: durable.MigImportBegin, Epoch: 2, Peer: "shard-0"}}); err != nil {
		t.Fatal(err)
	}

	tsB, srvB, _ := newNamedShard(t, dirB, "shard-1")
	stats := getStats(t, tsB)
	if stats.MigrationPending != "epoch=2 from=shard-0" {
		t.Fatalf("stats.MigrationPending = %q", stats.MigrationPending)
	}
	if srvB.Metrics().Counter(metricMigResumed).Value() != 1 {
		t.Fatal("resumed-migration counter not incremented at recovery")
	}

	// The driver's retry: seed a loser, install the transition ring on
	// both, re-run the import to completion.
	tsA, _, scheme := newNamedShard(t, dirA, "shard-0")
	installRing(t, tsA, RingInfo{Epoch: 1, Mode: RingStable, Names: []string{"shard-0"}})
	newNames := []string{"shard-0", "shard-1"}
	seeded := 0
	for i := 0; seeded < 12; i++ {
		id := userID(i)
		if ownerUnder(newNames, id) != "shard-1" {
			continue
		}
		resp := putFingerprint(t, tsA, scheme, id, profileFor(i))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed PUT %s: status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
		seeded++
	}
	trans := RingInfo{Epoch: 2, Mode: RingTransition, Names: newNames, PrevNames: []string{"shard-0"}}
	installRing(t, tsA, trans)
	installRing(t, tsB, trans)
	resp := postJSON(t, tsB.URL+"/migrate/import", migrateImportRequest{Epoch: 2, From: "shard-0", FromURL: tsA.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed import: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := getStats(t, tsB).MigrationPending; got != "" {
		t.Fatalf("MigrationPending after completed import = %q, want empty", got)
	}

	// Restart the gainer: recovery must see the matched begin/done pair
	// and report nothing pending — and all imported users survive.
	tsB.Close()
	st2, rec2, err := durable.Open(durable.Options{Dir: dirB, FS: durable.OSFS{}, Fsync: durable.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2.Migration != nil {
		t.Fatalf("recovery after completed import = %+v, want nil", rec2.Migration)
	}
	if got := len(rec2.State.Users); got != seeded {
		t.Fatalf("recovered %d users, want %d", got, seeded)
	}
}
