package service

// HTTP-level tests for the observability + cancellation surface: DELETE
// cancel keeps the previous epoch serving, deadlines turn into 504s, and
// /metrics exports a valid, monotone JSON snapshot whose comparison counts
// match the per-build results.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
)

// obsUserID keeps ids from different upload batches disjoint.
func obsUserID(seedItem, i int) string { return "u" + itoa(seedItem) + "-" + itoa(i) }

func uploadN(t *testing.T, ts *httptest.Server, scheme *core.Scheme, n, seedItem int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := profile.New(profile.ItemID(seedItem+i), profile.ItemID(seedItem+i+1), profile.ItemID(seedItem+i+2))
		resp := putFingerprint(t, ts, scheme, obsUserID(seedItem, i), p)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func buildGraph(t *testing.T, ts *httptest.Server, query string) (*http.Response, BuildResult) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/graph/build"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var br BuildResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp, br
}

func deleteBuild(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getMetrics(t *testing.T, ts *httptest.Server) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("/metrics is not a valid snapshot: %v", err)
	}
	return s
}

// TestCancelBuildKeepsServingOldEpoch: a build canceled via DELETE must
// return promptly with 409, publish nothing, and leave every read path on
// the previous epoch.
func TestCancelBuildKeepsServingOldEpoch(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	uploadN(t, ts, scheme, 8, 1)

	// Epoch 1 builds normally.
	resp, br := buildGraph(t, ts, "?k=3&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || br.Epoch != 1 {
		t.Fatalf("first build: status %d, epoch %d", resp.StatusCode, br.Epoch)
	}

	// Stall the second build between snapshot and algorithm, cancel it
	// from another connection, then release it into the canceled context.
	started := make(chan struct{})
	release := make(chan struct{})
	srv.buildHook = func() {
		close(started)
		<-release
	}
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/graph/build?k=3&algo=bruteforce", "", nil)
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-started

	dresp := deleteBuild(t, ts, "/graph/build")
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE during build: status %d", dresp.StatusCode)
	}
	close(release)

	select {
	case status := <-done:
		if status != http.StatusConflict {
			t.Fatalf("canceled build: status %d, want %d", status, http.StatusConflict)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled build did not return promptly")
	}
	srv.buildHook = nil

	// The previous epoch still serves: neighbors, query, and stats all see
	// epoch 1.
	nresp, err := http.Get(ts.URL + "/users/" + obsUserID(1, 0) + "/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusOK {
		t.Errorf("neighbors after canceled build: status %d", nresp.StatusCode)
	}
	var qbuf bytes.Buffer
	if err := core.WriteFingerprint(&qbuf, scheme.Fingerprint(profile.New(1, 2, 3))); err != nil {
		t.Fatal(err)
	}
	qresp, err := http.Post(ts.URL+"/query?k=3", "application/octet-stream", &qbuf)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Errorf("query after canceled build: status %d", qresp.StatusCode)
	}
	st := getStats(t, ts)
	if st.Epoch != 1 || st.BuildRunning {
		t.Errorf("stats after canceled build: %+v", st)
	}
	if st.LastBuildError == "" {
		t.Error("stats did not record the canceled build")
	}

	// With no build in flight, DELETE reports a conflict; the /build alias
	// routes the same handler.
	for _, path := range []string{"/graph/build", "/build"} {
		resp := deleteBuild(t, ts, path)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("DELETE %s with no build: status %d", path, resp.StatusCode)
		}
	}

	// The next build succeeds and gets the next epoch number.
	resp, br = buildGraph(t, ts, "?k=3&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || br.Epoch != 2 {
		t.Fatalf("post-cancel build: status %d, epoch %d", resp.StatusCode, br.Epoch)
	}
	if st := getStats(t, ts); st.LastBuildError != "" {
		t.Errorf("successful build did not clear last_build_error: %q", st.LastBuildError)
	}
}

// TestBuildTimeoutReturns504AndStaleFlag: a build that outlives the
// configured deadline is aborted with 504; the epoch it failed to replace
// survives — and since mutations apply to the live graph, it stays warm.
func TestBuildTimeoutReturns504AndStaleFlag(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	uploadN(t, ts, scheme, 6, 1)

	resp, _ := buildGraph(t, ts, "?k=2&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first build: status %d", resp.StatusCode)
	}

	// New uploads land in the live epoch; the rebuild then times out.
	uploadN(t, ts, scheme, 2, 50)
	srv.SetBuildTimeout(5 * time.Millisecond)
	srv.buildHook = func() { time.Sleep(60 * time.Millisecond) } // guarantees the deadline fires
	resp, _ = buildGraph(t, ts, "?k=2&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out build: status %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	srv.buildHook = nil

	st := getStats(t, ts)
	if st.Epoch != 1 {
		t.Errorf("timed-out build advanced the epoch: %+v", st)
	}
	if st.GraphStale || !st.GraphLive {
		t.Errorf("surviving epoch not live after timed-out build: %+v", st)
	}
	if st.OnlineNodes != 8 {
		t.Errorf("online_nodes = %d, want 8 (timed-out build must not lose live inserts)", st.OnlineNodes)
	}
	if st.LastBuildError == "" {
		t.Error("stats did not record the timeout")
	}
	if m := getMetrics(t, ts); m.Counters["build.timeout.total"] != 1 {
		t.Errorf("timeout counter = %d, want 1", m.Counters["build.timeout.total"])
	}

	// Clearing the deadline lets the rebuild through.
	srv.SetBuildTimeout(0)
	resp, _ = buildGraph(t, ts, "?k=2&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild without deadline: status %d", resp.StatusCode)
	}
	if st := getStats(t, ts); st.GraphStale || st.Epoch != 2 {
		t.Errorf("stats after successful rebuild: %+v", st)
	}
}

// TestMetricsSnapshotMonotoneAndMatchesBuilds: /metrics must be valid
// JSON, its comparison counter must match the sum of per-build comparison
// counts exactly (the CountingProvider totals), and counters must be
// monotone across builds.
func TestMetricsSnapshotMonotoneAndMatchesBuilds(t *testing.T) {
	_, ts, scheme := newInstrumentedServer(t)
	d := dataset.Generate(dataset.ML1M, 0.005, 11)
	for i, p := range d.Profiles {
		resp := putFingerprint(t, ts, scheme, userID(i), p)
		resp.Body.Close()
	}
	n := int64(d.NumUsers())

	before := getMetrics(t, ts)
	if got := before.Counters[knn.MetricComparisons]; got != 0 {
		t.Fatalf("fresh comparison counter = %d", got)
	}

	resp, br1 := buildGraph(t, ts, "?k=4&algo=bruteforce")
	resp.Body.Close()
	if want := n * (n - 1) / 2; br1.Comparisons != want {
		t.Fatalf("bruteforce comparisons = %d, want %d", br1.Comparisons, want)
	}
	m1 := getMetrics(t, ts)
	if got := m1.Counters[knn.MetricComparisons]; got != br1.Comparisons {
		t.Errorf("metrics comparisons = %d, build reported %d", got, br1.Comparisons)
	}

	resp, br2 := buildGraph(t, ts, "?k=4&algo=hyrec")
	resp.Body.Close()
	m2 := getMetrics(t, ts)
	if got, want := m2.Counters[knn.MetricComparisons], br1.Comparisons+br2.Comparisons; got != want {
		t.Errorf("metrics comparisons after 2 builds = %d, want %d", got, want)
	}
	if m2.Counters[knn.MetricComparisons] < m1.Counters[knn.MetricComparisons] ||
		m2.Counters["build.total"] != 2 {
		t.Errorf("counters not monotone across builds: %+v then %+v", m1.Counters, m2.Counters)
	}

	// Per-phase durations: the bruteforce build observed pack/scan/merge,
	// the hyrec build init/iterate, and both the total build histogram.
	for name, wantCount := range map[string]int64{
		"build.phase.pack.seconds":  2,
		"build.phase.scan.seconds":  1,
		"build.phase.merge.seconds": 1,
		"build.phase.init.seconds":  1,
		"build.seconds":             2,
	} {
		h, ok := m2.Histograms[name]
		if !ok || h.Count < wantCount {
			t.Errorf("histogram %s: %+v, want count ≥ %d", name, h, wantCount)
		}
	}
	if h := m2.Histograms["build.phase.iterate.seconds"]; h.Count < 1 {
		t.Errorf("iterate histogram empty: %+v", h)
	}
	if m2.Gauges["build.epoch"] != 2 {
		t.Errorf("epoch gauge = %d, want 2", m2.Gauges["build.epoch"])
	}
	if m2.Texts[knn.MetricPhase] != "idle" {
		t.Errorf("phase after builds = %q, want idle", m2.Texts[knn.MetricPhase])
	}
}

// TestPprofEndpointsServe: the stdlib profiling handlers must be wired
// into the service mux.
func TestPprofEndpointsServe(t *testing.T) {
	_, ts, _ := newInstrumentedServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestStatsReportPhaseAndProgressDuringBuild: while a build is in flight,
// /stats must expose the live phase and progress gauges.
func TestStatsReportPhaseAndProgressDuringBuild(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	uploadN(t, ts, scheme, 8, 1)

	started := make(chan struct{})
	release := make(chan struct{})
	srv.buildHook = func() {
		close(started)
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/graph/build?k=3&algo=bruteforce", "", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	st := getStats(t, ts)
	if !st.BuildRunning {
		t.Error("stats do not show the running build")
	}
	// The hook fires after the pack phase completed and before the builder
	// set its own phase, so the phase text must be "pack".
	if st.BuildPhase != "pack" {
		t.Errorf("build_phase = %q, want pack", st.BuildPhase)
	}
	if st.BuildElapsedMS < 0 {
		t.Errorf("build_elapsed_ms = %g", st.BuildElapsedMS)
	}
	close(release)
	<-done
	srv.buildHook = nil

	st = getStats(t, ts)
	if st.BuildRunning || st.BuildPhase != "" {
		t.Errorf("stats still report a build after completion: %+v", st)
	}
	if st.Epoch != 1 {
		t.Errorf("build did not publish epoch 1: %+v", st)
	}
}
