package service

// Tests for the live-mutation serving surface: the DELETE endpoint and
// tombstone semantics (410s, graph exclusion, revival), and the
// concurrency contract — mutations racing graph-mode queries and a full
// rebuild under -race, with a monotonic mutation counter and no torn
// epoch reads.

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// deleteFingerprint issues DELETE /users/{id}/fingerprint.
func deleteFingerprint(t *testing.T, ts string, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts+"/users/"+id+"/fingerprint", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestDeleteFingerprintLifecycle walks one user through the full
// tombstone lifecycle: delete → 410 on reads, invisible to queries and
// neighbor lists, live graph stays warm; re-PUT revives; re-delete is
// idempotent.
func TestDeleteFingerprintLifecycle(t *testing.T) {
	_, ts, scheme := newInstrumentedServer(t)
	const n = 20
	for i := 0; i < n; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=3&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}

	if code := deleteFingerprint(t, ts.URL, "u5"); code != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", code)
	}
	st := getStats(t, ts)
	if st.DeletedUsers != 1 || st.Users != n {
		t.Fatalf("stats after delete = %+v, want %d users with 1 tombstone", st, n)
	}
	if st.GraphStale || !st.GraphLive || st.OnlineLive != n-1 {
		t.Fatalf("graph not warm after delete: %+v", st)
	}

	// Reads of the tombstoned user say Gone, not NotFound: the id stays
	// reserved.
	if status, _ := getNeighborList(t, ts, "u5"); status != http.StatusGone {
		t.Fatalf("neighbors of deleted user: status %d, want 410", status)
	}

	// The deleted user never appears in query results — even querying its
	// own fingerprint, in both serving modes.
	for _, mode := range []string{"graph", "scan"} {
		got, _, status := postQuery(t, ts, scheme, queryProfile(5), "?k="+itoa(n)+"&mode="+mode)
		if status != http.StatusOK {
			t.Fatalf("mode %s query: status %d", mode, status)
		}
		for _, nb := range got {
			if nb.User == "u5" {
				t.Errorf("mode %s query returned the deleted user", mode)
			}
		}
	}

	// Neighbor lists of surviving users are filtered too.
	for _, id := range []string{"u4", "u6"} {
		status, nbrs := getNeighborList(t, ts, id)
		if status != http.StatusOK {
			t.Fatalf("neighbors of %s: status %d", id, status)
		}
		for _, nb := range nbrs {
			if nb.User == "u5" {
				t.Errorf("neighbor list of %s still contains the deleted user", id)
			}
		}
	}

	// Re-PUT revives the same id: reads work again, tombstone count drops,
	// user count unchanged.
	putFingerprint(t, ts, scheme, "u5", queryProfile(5)).Body.Close()
	if status, nbrs := getNeighborList(t, ts, "u5"); status != http.StatusOK || len(nbrs) == 0 {
		t.Fatalf("revived user: status %d with %d neighbors, want 200 with edges", status, len(nbrs))
	}
	st = getStats(t, ts)
	if st.DeletedUsers != 0 || st.Users != n || st.GraphStale {
		t.Fatalf("stats after revival = %+v", st)
	}

	// Deleting twice is idempotent (both acked); unknown users are 404.
	if code := deleteFingerprint(t, ts.URL, "u5"); code != http.StatusNoContent {
		t.Fatalf("re-delete: status %d, want 204", code)
	}
	if code := deleteFingerprint(t, ts.URL, "u5"); code != http.StatusNoContent {
		t.Fatalf("idempotent re-delete: status %d, want 204", code)
	}
	if code := deleteFingerprint(t, ts.URL, "nobody"); code != http.StatusNotFound {
		t.Fatalf("delete of unknown user: status %d, want 404", code)
	}
	if st = getStats(t, ts); st.DeletedUsers != 1 || st.OnlineLive != n-1 {
		t.Fatalf("stats after re-delete = %+v", st)
	}
}

// TestOnlineMutationsRaceQueriesAndBuild is the -race concurrency bar for
// the tentpole: inserts, overwrites and deletes race graph-mode queries
// and a concurrent full rebuild. The assertions are (a) no data race (the
// detector), (b) every request returns a sane status — no 5xx, no torn
// epoch read panicking the handler, (c) the sampled mutation counter is
// monotonic, and (d) the final state is coherent: the epoch converges back
// to warm and covers every user.
func TestOnlineMutationsRaceQueriesAndBuild(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	const base = 60
	for i := 0; i < base; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=3&algo=bruteforce")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed build status %d", resp.StatusCode)
	}

	var (
		wg       sync.WaitGroup
		bad      atomic.Int64
		stopSeq  = make(chan struct{})
		seqDone  = make(chan struct{})
		seqViola atomic.Int64
	)
	// Sampler: the mutation counter must never move backwards. Lives
	// outside wg — it runs until the workers have drained.
	go func() {
		defer close(seqDone)
		var last uint64
		for {
			select {
			case <-stopSeq:
				return
			default:
			}
			srv.mu.RLock()
			cur := srv.mutSeq
			srv.mu.RUnlock()
			if cur < last {
				seqViola.Add(1)
				return
			}
			last = cur
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Mutators: new users, overwrites of the seed range, deletes+revivals.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch i % 3 {
				case 0:
					resp := putFingerprint(t, ts, scheme, fmt.Sprintf("new-%d-%d", w, i), queryProfile(200+w*25+i))
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						bad.Add(1)
					}
				case 1:
					resp := putFingerprint(t, ts, scheme, "u"+itoa((w*7+i)%base), queryProfile(300+i))
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						bad.Add(1)
					}
				default:
					id := "u" + itoa((w*11+i)%base)
					if code := deleteFingerprint(t, ts.URL, id); code != http.StatusNoContent {
						bad.Add(1)
					}
					resp := putFingerprint(t, ts, scheme, id, queryProfile(i))
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						bad.Add(1)
					}
				}
			}
		}(w)
	}
	// Readers: graph-mode and auto queries plus neighbor reads while the
	// graph is mutating under them.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_, _, status := postQuery(t, ts, scheme, queryProfile(w*13+i), "?k=5&mode=auto")
				if status != http.StatusOK {
					bad.Add(1)
				}
				_, _, status = postQuery(t, ts, scheme, queryProfile(i), "?k=5&mode=graph")
				if status != http.StatusOK && status != http.StatusConflict {
					bad.Add(1)
				}
				if status, _ := getNeighborList(t, ts, "u"+itoa(i%base)); status != http.StatusOK &&
					status != http.StatusGone && status != http.StatusConflict {
					bad.Add(1)
				}
			}
		}(w)
	}
	// One full rebuild racing all of the above: its publish path must
	// drain the concurrent mutations, not lose them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := buildGraph(t, ts, "?k=3&algo=bruteforce")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
			bad.Add(1)
		}
	}()

	wg.Wait()
	close(stopSeq)
	<-seqDone
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d requests returned unexpected statuses under churn", n)
	}
	if seqViola.Load() != 0 {
		t.Fatal("mutation counter moved backwards")
	}

	// Quiesced: the served epoch must have converged back to warm and the
	// online node table must cover every user (4 workers × ~9 new users).
	st := getStats(t, ts)
	if st.GraphStale || !st.GraphLive {
		t.Fatalf("epoch not warm after churn quiesced: %+v", st)
	}
	if st.OnlineNodes != st.Users {
		t.Fatalf("online nodes %d != users %d after churn", st.OnlineNodes, st.Users)
	}
	// And a post-churn query must serve from the graph and find a user
	// inserted during the race.
	got, served, status := postQuery(t, ts, scheme, queryProfile(200), "?k=1")
	if status != http.StatusOK || served != "graph" {
		t.Fatalf("post-churn query: status %d served %q", status, served)
	}
	if len(got) != 1 {
		t.Fatalf("post-churn query returned %d results", len(got))
	}
}
