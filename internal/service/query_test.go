package service

// HTTP-level tests for the /query mode surface: graph-navigated serving,
// the auto-mode freshness rule, the scan fallback for unreachable nodes,
// and the per-mode observability counters.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

// queryProfile builds an overlapping-item profile so every test user has
// non-zero similarity to its index neighbors.
func queryProfile(i int) profile.Profile {
	return profile.New(profile.ItemID(i), profile.ItemID(i+1), profile.ItemID(i+2), profile.ItemID(i+3))
}

// postQuery runs one /query and decodes the response, returning the
// neighbors, the X-Query-Mode header and the status code.
func postQuery(t *testing.T, ts *httptest.Server, scheme *core.Scheme, p profile.Profile, query string) ([]NeighborJSON, string, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query"+query, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []NeighborJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.Header.Get(HeaderQueryMode), resp.StatusCode
}

func TestQueryModeValidation(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", queryProfile(0)).Body.Close()

	_, _, status := postQuery(t, ts, scheme, queryProfile(0), "?k=1&mode=hybrid")
	if status != http.StatusBadRequest {
		t.Errorf("unknown mode: status %d, want 400", status)
	}
}

func TestQueryModeGraphRequiresEpoch(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", queryProfile(0)).Body.Close()

	_, _, status := postQuery(t, ts, scheme, queryProfile(0), "?k=1&mode=graph")
	if status != http.StatusConflict {
		t.Errorf("mode=graph without an epoch: status %d, want 409", status)
	}
	// scan and auto still serve.
	for _, mode := range []string{"scan", "auto", ""} {
		q := "?k=1"
		if mode != "" {
			q += "&mode=" + mode
		}
		got, served, status := postQuery(t, ts, scheme, queryProfile(0), q)
		if status != http.StatusOK || served != "scan" || len(got) != 1 {
			t.Errorf("mode %q without an epoch: (%d results, served %q, status %d), want scan", mode, len(got), served, status)
		}
	}
}

// TestQueryGraphMatchesScan: on a corpus where the clamped beam covers
// every node, the graph path must return exactly the scan's answer — same
// users, same similarities, same order — and stamp the mode header.
func TestQueryGraphMatchesScan(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	for i := 0; i < 40; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=3&algo=bruteforce")
	resp.Body.Close()

	for i := 0; i < 40; i += 7 {
		scan, servedScan, _ := postQuery(t, ts, scheme, queryProfile(i), "?k=5&mode=scan")
		graph, servedGraph, _ := postQuery(t, ts, scheme, queryProfile(i), "?k=5&mode=graph")
		auto, servedAuto, _ := postQuery(t, ts, scheme, queryProfile(i), "?k=5")
		if servedScan != "scan" || servedGraph != "graph" || servedAuto != "graph" {
			t.Fatalf("served modes = %q/%q/%q, want scan/graph/graph", servedScan, servedGraph, servedAuto)
		}
		if len(graph) != len(scan) {
			t.Fatalf("query %d: graph returned %d results, scan %d", i, len(graph), len(scan))
		}
		for j := range scan {
			if graph[j] != scan[j] || auto[j] != scan[j] {
				t.Fatalf("query %d result %d: graph %+v auto %+v scan %+v", i, j, graph[j], auto[j], scan[j])
			}
		}
	}
	m := srv.obs.Snapshot()
	if m.Counters[metricQueryGraph] == 0 || m.Counters[metricQueryScan] == 0 {
		t.Errorf("per-mode counters not both advanced: %+v", m.Counters)
	}
	if m.Histograms[metricQueryGraphSecs].Count == 0 || m.Histograms[metricQueryScanSecs].Count == 0 {
		t.Errorf("per-mode latency histograms not both observed")
	}
}

// TestQueryAutoLiveEpochServesNewUser pins the live-mutation freshness
// rule: an upload after the build is inserted into the live graph, so auto
// keeps serving the graph and the new user is findable through it
// immediately — no scan fallback, no rebuild.
func TestQueryAutoLiveEpochServesNewUser(t *testing.T) {
	ts, scheme := newTestServer(t)
	for i := 0; i < 12; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=2&algo=bruteforce")
	resp.Body.Close()

	if _, served, _ := postQuery(t, ts, scheme, queryProfile(0), "?k=1"); served != "graph" {
		t.Fatalf("fresh epoch served %q, want graph", served)
	}

	// A user uploaded after the build must be findable immediately —
	// through the graph, since the insert went into the live epoch.
	late := profile.New(900, 901, 902, 903)
	putFingerprint(t, ts, scheme, "late", late).Body.Close()
	got, served, _ := postQuery(t, ts, scheme, late, "?k=1")
	if served != "graph" {
		t.Errorf("live epoch: auto served %q, want graph", served)
	}
	if len(got) != 1 || got[0].User != "late" {
		t.Errorf("post-epoch user not found by auto query: %+v", got)
	}
}

// TestQueryAutoStaleEpochFallsBackToScan keeps the genuine-staleness rule
// covered: when the served epoch honestly lags the mutation counter (here:
// a frozen test-installed epoch with no online maintainer), auto falls
// back to the scan so new users stay findable.
func TestQueryAutoStaleEpochFallsBackToScan(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	const n = 12
	users := make([]string, n)
	profiles := make([]profile.Profile, n)
	for i := 0; i < n; i++ {
		users[i] = "u" + itoa(i)
		profiles[i] = queryProfile(i)
		putFingerprint(t, ts, scheme, users[i], profiles[i]).Body.Close()
	}
	g, _ := knn.BruteForce(knn.NewSHFProvider(scheme, profiles), 2, knn.Options{})
	srv.mu.RLock()
	mutSeq := srv.mutSeq
	srv.mu.RUnlock()
	srv.epoch.Store(&graphEpoch{
		seq:    srv.epochSeq.Add(1),
		graph:  g,
		nav:    g.Navigable(nil),
		users:  users,
		k:      2,
		mutSeq: mutSeq,
	})

	// The frozen epoch matches the state: auto serves the graph.
	if _, served, _ := postQuery(t, ts, scheme, queryProfile(0), "?k=1"); served != "graph" {
		t.Fatalf("matching frozen epoch served %q, want graph", served)
	}

	// An upload the frozen epoch cannot absorb makes it genuinely stale:
	// auto must fall back to the scan, which sees the new user.
	late := profile.New(900, 901, 902, 903)
	putFingerprint(t, ts, scheme, "late", late).Body.Close()
	got, served, _ := postQuery(t, ts, scheme, late, "?k=1")
	if served != "scan" {
		t.Errorf("stale frozen epoch: auto served %q, want scan", served)
	}
	if len(got) != 1 || got[0].User != "late" {
		t.Errorf("post-epoch user not found by auto query: %+v", got)
	}

	// Explicit graph mode still serves the old epoch: "late" is invisible.
	got, served, _ = postQuery(t, ts, scheme, late, "?k=20&mode=graph")
	if served != "graph" && served != "scan-fallback" {
		t.Fatalf("explicit graph on stale epoch served %q", served)
	}
	if served == "graph" {
		for _, nb := range got {
			if nb.User == "late" {
				t.Errorf("stale graph returned the post-epoch user")
			}
		}
	}
}

// TestQueryGraphIsolatedNodesFallBackToScan: a graph whose descent cannot
// reach k nodes (here: no edges at all) must not answer short — the
// service detects the short result, serves the exact scan and labels the
// response scan-fallback.
func TestQueryGraphIsolatedNodesFallBackToScan(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	const n = 30
	users := make([]string, n)
	for i := 0; i < n; i++ {
		users[i] = "u" + itoa(i)
		putFingerprint(t, ts, scheme, users[i], queryProfile(i)).Body.Close()
	}
	// Install an epoch whose graph is valid but edgeless: only the seed
	// nodes are reachable, so any k above the seed count comes back short.
	edgeless := &knn.Graph{K: 2, Neighbors: make([][]knn.Neighbor, n)}
	srv.mu.RLock()
	mutSeq := srv.mutSeq
	srv.mu.RUnlock()
	srv.epoch.Store(&graphEpoch{
		seq:    srv.epochSeq.Add(1),
		graph:  edgeless,
		nav:    edgeless.Navigable(nil),
		users:  users,
		k:      2,
		mutSeq: mutSeq,
	})

	got, served, status := postQuery(t, ts, scheme, queryProfile(4), "?k=20")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if served != "scan-fallback" {
		t.Fatalf("served %q, want scan-fallback", served)
	}
	if len(got) != 20 {
		t.Errorf("fallback returned %d results, want the scan's 20", len(got))
	}
	if c := srv.obs.Snapshot().Counters[metricQueryFallback]; c != 1 {
		t.Errorf("%s = %d, want 1", metricQueryFallback, c)
	}
}

// TestQueryGraphCanceledClient: the graph path propagates a dead request
// context like the scan path does — 499, counted, no body.
func TestQueryGraphCanceledClient(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	for i := 0; i < 12; i++ {
		putFingerprint(t, ts, scheme, "u"+itoa(i), queryProfile(i)).Body.Close()
	}
	resp, _ := buildGraph(t, ts, "?k=2&algo=bruteforce")
	resp.Body.Close()

	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(queryProfile(0))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/query?k=2&mode=graph", &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("canceled graph query: status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := srv.obs.Counter(metricQueryCanceled).Value(); got != 1 {
		t.Errorf("query.canceled.total = %d, want 1", got)
	}
}
