package service

// Tests for the versioned-epoch concurrency model: builds must not block
// traffic, mutations apply to the live epoch instead of pinning it stale,
// and the query/upload codecs must be bounded and deterministic.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

// newInstrumentedServer exposes the *Server so tests can install buildHook.
func newInstrumentedServer(t *testing.T) (*Server, *httptest.Server, *core.Scheme) {
	t.Helper()
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, core.MustScheme(1024, 7)
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestNeighborsForPostEpochUser is the stale-index regression turned
// live-mutation contract: a user registered after the last build is
// inserted into the live graph and served immediately — no 409, and
// certainly no panic (the seed indexed the old graph with the new user
// table and crashed).
func TestNeighborsForPostEpochUser(t *testing.T) {
	_, ts, scheme := newInstrumentedServer(t)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()
	putFingerprint(t, ts, scheme, "c", profile.New(3, 4)).Body.Close()

	resp, err := http.Post(ts.URL+"/graph/build?k=2&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}

	putFingerprint(t, ts, scheme, "late", profile.New(1, 4)).Body.Close()
	status, nbrs := getNeighborList(t, ts, "late")
	if status != http.StatusOK {
		t.Fatalf("post-epoch user neighbors: status %d, want 200 (live insert)", status)
	}
	if len(nbrs) == 0 {
		t.Fatal("post-epoch user has no neighbors despite live insert")
	}
	if st := getStats(t, ts); st.GraphStale || !st.GraphLive || st.OnlineNodes != 4 {
		t.Fatalf("stats after live insert = %+v", st)
	}

	// Pre-epoch users keep being served, and can now see the new user.
	resp, err = http.Get(ts.URL + "/users/a/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pre-epoch user neighbors: status %d, want 200", resp.StatusCode)
	}
}

// TestTrafficProceedsDuringBuild stalls a build mid-flight via buildHook
// and asserts that uploads, queries, neighborhood reads and /stats all
// complete while the build is running — the seed held the write lock for
// the whole construction, so all of these deadlocked until completion.
// Run with -race: the build's snapshot and the concurrent mutations must
// not share memory.
func TestTrafficProceedsDuringBuild(t *testing.T) {
	srv, ts, scheme := newInstrumentedServer(t)
	d := dataset.Generate(dataset.ML1M, 0.01, 9)

	started := make(chan struct{})
	release := make(chan struct{})
	srv.buildHook = func() {
		close(started)
		<-release
	}

	for i := 0; i < 10; i++ {
		putFingerprint(t, ts, scheme, userID(i), d.Profiles[i]).Body.Close()
	}

	buildStatus := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/graph/build?k=3&algo=bruteforce", "", nil)
		if err != nil {
			buildStatus <- -1
			return
		}
		resp.Body.Close()
		buildStatus <- resp.StatusCode
	}()
	<-started

	// The build is now provably in progress and stalled. Hammer the
	// server; everything must return, not queue behind the build.
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for w := 0; w < 10; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			resp := putFingerprint(t, ts, scheme, userID(100+w), d.Profiles[w%10])
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				errs <- io.ErrUnexpectedEOF
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := core.WriteFingerprint(&buf, scheme.Fingerprint(d.Profiles[w%10])); err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/query?k=3", "application/octet-stream", &buf)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("uploads/queries blocked while a build was running")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := getStats(t, ts)
	if !st.BuildRunning {
		t.Error("stats.build_running = false during a stalled build")
	}

	// A second build while one is running is rejected, not queued.
	resp, err := http.Post(ts.URL+"/graph/build?k=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent build: status %d, want 409", resp.StatusCode)
	}
	assertRetryAfter(t, resp)

	close(release)
	if code := <-buildStatus; code != http.StatusOK {
		t.Fatalf("stalled build finished with status %d", code)
	}
	st = getStats(t, ts)
	if st.BuildRunning {
		t.Error("build_running still set after build completed")
	}
	if st.Epoch != 1 {
		t.Errorf("epoch = %d after first build, want 1", st.Epoch)
	}
	// The publish step drains mutations that raced the build into the new
	// epoch's online maintainer, so the graph comes out warm and already
	// covering the 10 concurrent uploads.
	if st.GraphStale {
		t.Error("graph stale despite the publish-time drain of concurrent uploads")
	}
	if st.EpochUsers != 20 {
		t.Errorf("epoch_users = %d, want all 20 users after the drain", st.EpochUsers)
	}
}

// TestQueryTiesDeterministicByUserID uploads many identical fingerprints
// registered in non-lexicographic order: the selected set is the first k
// registered, and the response orders equal similarities by user id —
// byte-identical across repeated queries.
func TestQueryTiesDeterministicByUserID(t *testing.T) {
	_, ts, scheme := newInstrumentedServer(t)
	same := profile.New(1, 2, 3)
	for _, id := range []string{"m", "z", "a", "q", "b", "x", "c", "y", "d", "w"} {
		putFingerprint(t, ts, scheme, id, same).Body.Close()
	}

	query := func() []NeighborJSON {
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(same)); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/query?k=3", "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var got []NeighborJSON
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	first := query()
	// First three registered are m, z, a; ordered by id: a, m, z.
	if len(first) != 3 || first[0].User != "a" || first[1].User != "m" || first[2].User != "z" {
		t.Fatalf("tie-broken query = %+v, want users a, m, z", first)
	}
	for trial := 0; trial < 5; trial++ {
		if got := query(); !reflect.DeepEqual(got, first) {
			t.Fatalf("trial %d: query result changed: %+v vs %+v", trial, got, first)
		}
	}
}

// TestUploadBodyBounds covers the MaxBytesReader + trailing-garbage
// hardening on both ingestion paths.
func TestUploadBodyBounds(t *testing.T) {
	_, ts, scheme := newInstrumentedServer(t)

	validSHF := func() []byte {
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2))); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Trailing garbage after a valid SHF: rejected on upload...
	body := append(validSHF(), 'x')
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/users/t/fingerprint", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing-garbage upload: status %d, want 400", resp.StatusCode)
	}
	// ... and on query.
	resp, err = http.Post(ts.URL+"/query", "application/octet-stream", bytes.NewReader(append(validSHF(), "extra"...)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing-garbage query: status %d, want 400", resp.StatusCode)
	}

	// A body claiming a huge bit-array is cut off at the size bound with
	// 413 instead of being read (and allocated) in full.
	huge := make([]byte, 12, 4096)
	copy(huge, "SHF1")
	binary.LittleEndian.PutUint32(huge[4:8], 1<<20) // bits
	binary.LittleEndian.PutUint32(huge[8:12], 0)    // cardinality
	huge = append(huge, make([]byte, 4000)...)
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/users/t/fingerprint", bytes.NewReader(huge))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", resp.StatusCode)
	}

	// A clean valid upload still works after the rejects.
	resp, err = http.DefaultClient.Do(func() *http.Request {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/users/t/fingerprint", bytes.NewReader(validSHF()))
		return req
	}())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid upload after rejects: status %d", resp.StatusCode)
	}
}

// TestStatsEpochObservability walks the epoch lifecycle through /stats.
func TestStatsEpochObservability(t *testing.T) {
	_, ts, scheme := newInstrumentedServer(t)
	st := getStats(t, ts)
	if st.GraphBuilt || st.Epoch != 0 || st.BuildRunning {
		t.Errorf("fresh stats = %+v", st)
	}

	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()
	putFingerprint(t, ts, scheme, "c", profile.New(3, 4)).Body.Close()

	resp, err := http.Post(ts.URL+"/graph/build?k=2&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var br BuildResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if br.Epoch != 1 || br.DurationMS < 0 {
		t.Errorf("build result = %+v", br)
	}

	st = getStats(t, ts)
	if !st.GraphBuilt || st.GraphStale || st.Epoch != 1 || st.EpochUsers != 3 {
		t.Errorf("post-build stats = %+v", st)
	}
	if st.Algorithm != "bruteforce" || st.Comparisons != 3 || st.BuiltAt == "" {
		t.Errorf("epoch observability fields = %+v", st)
	}

	// A replacement upload is applied to the live graph — the epoch stays
	// warm instead of flipping stale; a rebuild still advances the epoch.
	putFingerprint(t, ts, scheme, "a", profile.New(5, 6)).Body.Close()
	if st = getStats(t, ts); st.GraphStale || !st.GraphLive {
		t.Errorf("stats after re-upload = %+v, want live (warm) graph", st)
	}
	resp, err = http.Post(ts.URL+"/graph/build?k=2&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st = getStats(t, ts); st.Epoch != 2 || st.GraphStale {
		t.Errorf("post-rebuild stats = %+v", st)
	}
}
