package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/durable"
	"goldfinger/internal/profile"
)

// newDurableServer opens a durable store over fsys in dir and serves a
// fresh server seeded with whatever the store recovered. The returned
// store is intentionally NOT closed on cleanup: kill-and-restart tests
// abandon the handle exactly like a killed process would.
func newDurableServer(t *testing.T, dir string, fsys durable.FS) (*httptest.Server, *durable.Store, durable.Recovery, *core.Scheme) {
	t.Helper()
	st, rec, err := durable.Open(durable.Options{Dir: dir, FS: fsys, Fsync: durable.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatalf("durable.Open(%s): %v", dir, err)
	}
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseStore(st, rec); err != nil {
		t.Fatalf("UseStore: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st, rec, core.MustScheme(1024, 7)
}

func getNeighborList(t *testing.T, ts *httptest.Server, id string) (int, []NeighborJSON) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/users/" + id + "/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var nbrs []NeighborJSON
	if err := json.NewDecoder(resp.Body).Decode(&nbrs); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, nbrs
}

// profileFor gives user i a deterministic, overlapping item set so the
// graph has meaningful structure.
func profileFor(i int) profile.Profile {
	items := make([]profile.ItemID, 0, 12)
	for j := 0; j < 12; j++ {
		items = append(items, profile.ItemID(i*5+j))
	}
	return profile.New(items...)
}

// TestKillAndRestartRecovery is the acceptance test of the durability
// story: upload N fingerprints, build, abandon the store handle without
// Close (SIGKILL-equivalent), restart a fresh server over the same data
// dir — all N fingerprints and the published epoch must be served again.
func TestKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	const n = 20

	ts1, _, rec0, scheme := newDurableServer(t, dir, durable.OSFS{})
	if len(rec0.State.Users) != 0 {
		t.Fatalf("fresh dir recovered %d users", len(rec0.State.Users))
	}
	for i := 0; i < n; i++ {
		resp := putFingerprint(t, ts1, scheme, userID(i), profileFor(i))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts1.URL+"/graph/build?k=5&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}
	resp.Body.Close()
	preStats := getStats(t, ts1)
	status, preNbrs := getNeighborList(t, ts1, userID(0))
	if status != http.StatusOK || len(preNbrs) != 5 {
		t.Fatalf("pre-kill neighbors: status %d, %d entries", status, len(preNbrs))
	}
	ts1.Close() // the store handle is abandoned, not closed: a "kill"

	ts2, _, rec, _ := newDurableServer(t, dir, durable.OSFS{})
	if got := len(rec.State.Users); got != n {
		t.Fatalf("recovered %d users, want %d", got, n)
	}
	if rec.BytesDropped != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("clean kill dropped %d bytes, quarantined %v", rec.BytesDropped, rec.Quarantined)
	}
	st := getStats(t, ts2)
	if !st.Durable || st.Degraded {
		t.Fatalf("restarted stats: durable=%v degraded=%v", st.Durable, st.Degraded)
	}
	if st.Users != n || !st.GraphBuilt || st.GraphStale {
		t.Fatalf("restarted stats = %+v", st)
	}
	if st.Epoch != preStats.Epoch || st.EpochUsers != preStats.EpochUsers || st.GraphK != preStats.GraphK {
		t.Fatalf("epoch changed across restart: %+v vs %+v", st, preStats)
	}
	// Every user is served from the recovered epoch, and neighborhoods are
	// byte-identical to the pre-kill ones.
	for i := 0; i < n; i++ {
		status, nbrs := getNeighborList(t, ts2, userID(i))
		if status != http.StatusOK {
			t.Fatalf("recovered neighbors for %s: status %d", userID(i), status)
		}
		if len(nbrs) != 5 {
			t.Fatalf("recovered neighbors for %s: %d entries", userID(i), len(nbrs))
		}
	}
	_, postNbrs := getNeighborList(t, ts2, userID(0))
	for i := range preNbrs {
		if postNbrs[i] != preNbrs[i] {
			t.Fatalf("neighbor %d changed across restart: %+v vs %+v", i, postNbrs[i], preNbrs[i])
		}
	}

	// The recovered server keeps accepting writes, and because the epoch
	// recovered warm (its maintainer resumed at the state's mutation
	// counter), a new upload applies to the live graph immediately: the
	// graph stays fresh and the new user is served without a rebuild.
	resp2 := putFingerprint(t, ts2, scheme, userID(n), profileFor(n))
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("post-recovery upload: status %d", resp2.StatusCode)
	}
	resp2.Body.Close()
	if st := getStats(t, ts2); st.Users != n+1 || st.GraphStale || !st.GraphLive || st.OnlineNodes != n+1 {
		t.Fatalf("post-recovery stats = %+v", st)
	}
	if status, nbrs := getNeighborList(t, ts2, userID(n)); status != http.StatusOK || len(nbrs) == 0 {
		t.Fatalf("live-inserted user: status %d, %d neighbors, want 200 with edges", status, len(nbrs))
	}
}

// TestRecoveryAfterOverwrite checks the WAL replay honors last-write-wins
// across a restart: re-uploading a fingerprint and killing the server must
// recover the replacement, not the original.
func TestRecoveryAfterOverwrite(t *testing.T) {
	dir := t.TempDir()
	ts1, _, _, scheme := newDurableServer(t, dir, durable.OSFS{})
	for i := 0; i < 3; i++ {
		resp := putFingerprint(t, ts1, scheme, userID(i), profileFor(i))
		resp.Body.Close()
	}
	// Overwrite user-001 with user-000's exact profile.
	resp := putFingerprint(t, ts1, scheme, userID(1), profileFor(0))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("overwrite: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	ts1.Close()

	ts2, _, rec, _ := newDurableServer(t, dir, durable.OSFS{})
	if len(rec.State.Users) != 3 || rec.State.MutSeq != 4 {
		t.Fatalf("recovered %d users at mutSeq %d, want 3 at 4", len(rec.State.Users), rec.State.MutSeq)
	}
	postBuild, err := http.Post(ts2.URL+"/graph/build?k=2&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if postBuild.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", postBuild.StatusCode)
	}
	postBuild.Body.Close()
	status, nbrs := getNeighborList(t, ts2, userID(0))
	if status != http.StatusOK || len(nbrs) == 0 {
		t.Fatalf("neighbors: status %d, %d entries", status, len(nbrs))
	}
	if nbrs[0].User != userID(1) || nbrs[0].Similarity != 1 {
		t.Fatalf("top neighbor of %s = %+v, want %s at similarity 1 (overwrite must survive the kill)",
			userID(0), nbrs[0], userID(1))
	}
}

// TestDegradedReadOnlyMode flips the data dir unwritable mid-flight: PUTs
// must get 503 with Retry-After, while neighbor reads, queries, /healthz
// and /stats keep working off the in-memory state.
func TestDegradedReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	ffs := &durable.FaultFS{Inner: durable.OSFS{}}
	ts, store, _, scheme := newDurableServer(t, dir, ffs)
	for i := 0; i < 4; i++ {
		resp := putFingerprint(t, ts, scheme, userID(i), profileFor(i))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/graph/build?k=2&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}
	resp.Body.Close()

	ffs.CrashNow() // the data dir just died

	// The first write after the failure flips degraded mode and gets 503.
	for attempt := 0; attempt < 2; attempt++ {
		resp := putFingerprint(t, ts, scheme, userID(10+attempt), profileFor(10+attempt))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded PUT attempt %d: status %d, want 503", attempt, resp.StatusCode)
		}
		assertRetryAfter(t, resp)
		resp.Body.Close()
	}
	if !store.Degraded() {
		t.Fatal("store not degraded after failed append")
	}

	// Reads keep serving from memory.
	status, nbrs := getNeighborList(t, ts, userID(0))
	if status != http.StatusOK || len(nbrs) != 2 {
		t.Fatalf("degraded neighbors: status %d, %d entries", status, len(nbrs))
	}
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profileFor(0))); err != nil {
		t.Fatal(err)
	}
	qresp, err := http.Post(ts.URL+"/query?k=2", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d", qresp.StatusCode)
	}
	qresp.Body.Close()

	// /healthz stays 200 (the node still serves reads; do not drain it) but
	// says so; /stats reports the condition.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 128)
	n, _ := hresp.Body.Read(body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz: status %d", hresp.StatusCode)
	}
	if !bytes.Contains(body[:n], []byte("degraded")) {
		t.Fatalf("degraded healthz body %q does not say degraded", body[:n])
	}
	st := getStats(t, ts)
	if !st.Durable || !st.Degraded {
		t.Fatalf("degraded stats = %+v", st)
	}
	if st.Users != 4 {
		t.Fatalf("degraded stats count %d users; rejected writes must not mutate state", st.Users)
	}
}

// TestMethodAndActionRouting pins the HTTP surface contract: a known
// action with the wrong method is 405 with the Allow header RFC 9110
// requires; an unknown action is 404.
func TestMethodAndActionRouting(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path string
		wantStatus   int
		wantAllow    string
	}{
		{http.MethodPost, "/users/u1/fingerprint", http.StatusMethodNotAllowed, "PUT, DELETE"},
		{http.MethodGet, "/users/u1/fingerprint", http.StatusMethodNotAllowed, "PUT, DELETE"},
		// DELETE is a valid method now; for an unknown user it is a 404.
		{http.MethodDelete, "/users/u1/fingerprint", http.StatusNotFound, ""},
		{http.MethodPut, "/users/u1/neighbors", http.StatusMethodNotAllowed, "GET"},
		{http.MethodPost, "/users/u1/neighbors", http.StatusMethodNotAllowed, "GET"},
		{http.MethodGet, "/users/u1/profile", http.StatusNotFound, ""},
		{http.MethodPut, "/users/u1/fingerprints", http.StatusNotFound, ""},
		{http.MethodGet, "/query", http.StatusMethodNotAllowed, "POST"},
		{http.MethodPatch, "/graph/build", http.StatusMethodNotAllowed, "POST, DELETE"},
		{http.MethodGet, "/build", http.StatusMethodNotAllowed, "POST, DELETE"},
		{http.MethodPost, "/metrics", http.StatusMethodNotAllowed, "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
		if got := resp.Header.Get("Allow"); got != c.wantAllow {
			t.Errorf("%s %s: Allow %q, want %q", c.method, c.path, got, c.wantAllow)
		}
	}
}

// TestOverwriteInvalidatesPackedCacheAcrossBuilds is the regression test
// for the packed-corpus cache: a PUT that overwrites an existing
// fingerprint must invalidate the cache, so the NEXT build (and query)
// sees the replacement, not the packing of the superseded corpus.
func TestOverwriteInvalidatesPackedCacheAcrossBuilds(t *testing.T) {
	ts, scheme := newTestServer(t)
	// a and b share a profile (similarity 1); c is disjoint from both.
	a, b, c := profile.New(1, 2, 3, 4, 5, 6, 7, 8), profile.New(1, 2, 3, 4, 5, 6, 7, 8), profile.New(900, 901, 902, 903, 904, 905, 906, 907)
	for id, p := range map[string]profile.Profile{"a": a, "b": b, "c": c} {
		resp := putFingerprint(t, ts, scheme, id, p)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %s: status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	build := func() {
		t.Helper()
		resp, err := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("build status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	build()
	if _, nbrs := getNeighborList(t, ts, "a"); len(nbrs) != 1 || nbrs[0].User != "b" || nbrs[0].Similarity != 1 {
		t.Fatalf("pre-overwrite neighbor of a = %+v, want b at 1", nbrs)
	}

	// Overwrite b with c's profile: b is now identical to c, disjoint
	// from a. The first build packed the corpus into the cache; this PUT
	// must invalidate it.
	resp := putFingerprint(t, ts, scheme, "b", c)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("overwrite: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	build()
	_, nbrs := getNeighborList(t, ts, "b")
	if len(nbrs) != 1 || nbrs[0].User != "c" || nbrs[0].Similarity != 1 {
		t.Fatalf("post-overwrite neighbor of b = %+v, want c at 1 (stale packed corpus served?)", nbrs)
	}
	if _, anbrs := getNeighborList(t, ts, "a"); len(anbrs) == 1 && anbrs[0].User == "b" && anbrs[0].Similarity == 1 {
		t.Fatal("a still sees b at similarity 1 after the overwrite: packed cache not invalidated")
	}

	// The query path shares the cache and must also see the replacement.
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(c)); err != nil {
		t.Fatal(err)
	}
	qresp, err := http.Post(ts.URL+"/query?k=2", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var hits []NeighborJSON
	if err := json.NewDecoder(qresp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("query returned %d hits, want 2", len(hits))
	}
	for _, h := range hits {
		if h.Similarity != 1 {
			t.Fatalf("query hit %+v, want both b and c at similarity 1", h)
		}
	}
	if !(hits[0].User == "b" && hits[1].User == "c") {
		t.Fatalf("query hits = %+v, want b then c", hits)
	}
}

// TestWALGrowthTriggersCompaction drives enough uploads through a tiny
// compaction threshold that the background compaction must fire and fold
// the WAL into a snapshot, without ever turning away a write.
func TestWALGrowthTriggersCompaction(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := durable.Open(durable.Options{
		Dir: dir, FS: durable.OSFS{}, Fsync: durable.FsyncAlways,
		CompactBytes: 1, // every append crosses the threshold
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseStore(st, rec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	scheme := core.MustScheme(1024, 7)
	for i := 0; i < 30; i++ {
		resp := putFingerprint(t, ts, scheme, fmt.Sprintf("u%02d", i), profileFor(i))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Compaction runs asynchronously; all that matters for correctness is
	// that a restart recovers every acked upload regardless of how many
	// compactions landed in between.
	ts.Close()
	st.Close()
	_, rec2, err := durable.Open(durable.Options{Dir: dir, FS: durable.OSFS{}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec2.State.Users); got != 30 {
		t.Fatalf("recovered %d users, want 30", got)
	}
	if rec2.State.MutSeq != 30 {
		t.Fatalf("recovered mutSeq %d, want 30", rec2.State.MutSeq)
	}
}
