package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/profile"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Scheme) {
	t.Helper()
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, core.MustScheme(1024, 7)
}

func putFingerprint(t *testing.T, ts *httptest.Server, scheme *core.Scheme, id string, p profile.Profile) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/users/"+id+"/fingerprint", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0); err == nil {
		t.Error("bits=0 accepted")
	}
}

func TestHealthAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v, %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Users != 0 || st.Bits != 1024 || st.GraphBuilt {
		t.Errorf("fresh stats = %+v", st)
	}
}

func TestUploadBuildNeighborsFlow(t *testing.T) {
	ts, scheme := newTestServer(t)
	d := dataset.Generate(dataset.ML1M, 0.01, 3)
	for i, p := range d.Profiles {
		resp := putFingerprint(t, ts, scheme, userID(i), p)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Post(ts.URL+"/graph/build?k=5&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}
	var br BuildResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Users != d.NumUsers() || br.K != 5 || br.Comparisons == 0 {
		t.Errorf("build result = %+v", br)
	}

	nresp, err := http.Get(ts.URL + "/users/" + userID(0) + "/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	var nbrs []NeighborJSON
	if err := json.NewDecoder(nresp.Body).Decode(&nbrs); err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(nbrs))
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Similarity > nbrs[i-1].Similarity {
			t.Error("neighbors not sorted by similarity")
		}
	}
}

func userID(i int) string {
	return "user-" + strings.Repeat("0", 3-len(itoa(i))) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestUploadErrors(t *testing.T) {
	ts, scheme := newTestServer(t)

	// Wrong fingerprint length.
	small := core.MustScheme(64, 1)
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, small.Fingerprint(profile.New(1))); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/users/x/fingerprint", &buf)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-length upload: status %d", resp.StatusCode)
	}

	// Garbage payload.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/users/x/fingerprint", strings.NewReader("garbage"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d", resp.StatusCode)
	}

	// GET on fingerprint path.
	resp, err = http.Get(ts.URL + "/users/x/fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET fingerprint: status %d", resp.StatusCode)
	}

	// Bad path.
	resp, err = http.Get(ts.URL + "/users/onlyid")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad path: status %d", resp.StatusCode)
	}
	_ = scheme
}

func TestBuildErrors(t *testing.T) {
	ts, scheme := newTestServer(t)

	// Too few users.
	resp, _ := http.Post(ts.URL+"/graph/build", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("empty build: status %d", resp.StatusCode)
	}

	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()

	// Bad k.
	resp, _ = http.Post(ts.URL+"/graph/build?k=zero", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad k: status %d", resp.StatusCode)
	}
	// Bad algorithm.
	resp, _ = http.Post(ts.URL+"/graph/build?algo=magic", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad algo: status %d", resp.StatusCode)
	}
	// GET instead of POST.
	resp, _ = http.Get(ts.URL + "/graph/build")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET build: status %d", resp.StatusCode)
	}
}

func TestNeighborsErrors(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()

	// Graph not built yet.
	resp, _ := http.Get(ts.URL + "/users/a/neighbors")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("no graph: status %d", resp.StatusCode)
	}
	// Unknown user.
	resp, _ = http.Get(ts.URL + "/users/ghost/neighbors")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown user: status %d", resp.StatusCode)
	}
}

func TestQueryTopK(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "twin", profile.New(1, 2, 3, 4)).Body.Close()
	putFingerprint(t, ts, scheme, "close", profile.New(1, 2, 3, 9)).Body.Close()
	putFingerprint(t, ts, scheme, "far", profile.New(100, 200, 300)).Body.Close()

	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2, 3, 4))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query?k=2", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var got []NeighborJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].User != "twin" || got[0].Similarity != 1 {
		t.Errorf("query result = %+v", got)
	}
	if got[1].User != "close" {
		t.Errorf("second hit = %+v, want close", got[1])
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := http.Get(ts.URL + "/query")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query: status %d", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/query?k=-1", "", strings.NewReader(""))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad k: status %d", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/query", "", strings.NewReader("junk"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body: status %d", resp.StatusCode)
	}
}

func TestHugeKIsClampedNotFatal(t *testing.T) {
	// k comes straight from the query string; before clamping, an absurd
	// value panicked in TopK's worker goroutines ("makeslice: cap out of
	// range"), which net/http's per-request recover does not catch — the
	// whole process died. With the clamp both endpoints serve normally.
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()

	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query?k=1000000000000000000", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("huge-k query: status %d", resp.StatusCode)
	}
	var got []NeighborJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("huge-k query returned %d results, want all 2", len(got))
	}

	bresp, err := http.Post(ts.URL+"/graph/build?k=1000000000000000000&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("huge-k build: status %d", bresp.StatusCode)
	}
	var br BuildResult
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.K != 1 {
		t.Errorf("huge-k build reported k=%d, want clamp to n-1=1", br.K)
	}
}

func TestConcurrentUploadsAndQueries(t *testing.T) {
	ts, scheme := newTestServer(t)
	d := dataset.Generate(dataset.ML1M, 0.01, 9)

	// Seed a few users and build once so queries have something to hit.
	for i := 0; i < 10; i++ {
		putFingerprint(t, ts, scheme, userID(i), d.Profiles[i]).Body.Close()
	}
	resp, err := http.Post(ts.URL+"/graph/build?k=3&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Hammer the server with concurrent uploads, queries and reads.
	done := make(chan error, 30)
	for w := 0; w < 10; w++ {
		go func(w int) {
			resp := putFingerprint(t, ts, scheme, userID(100+w), d.Profiles[w%10])
			resp.Body.Close()
			done <- nil
		}(w)
		go func(w int) {
			var buf bytes.Buffer
			if err := core.WriteFingerprint(&buf, scheme.Fingerprint(d.Profiles[w%10])); err != nil {
				done <- err
				return
			}
			resp, err := http.Post(ts.URL+"/query?k=3", "application/octet-stream", &buf)
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			done <- nil
		}(w)
		go func(w int) {
			resp, err := http.Get(ts.URL + "/users/" + userID(w%10) + "/neighbors")
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			done <- nil
		}(w)
	}
	for i := 0; i < 30; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReuploadReplacesAndStaysLive(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()
	resp, _ := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
	resp.Body.Close()

	// Re-upload a: the overwrite is applied to the live graph, so the user
	// count stays 2 and the epoch stays warm instead of flipping stale.
	putFingerprint(t, ts, scheme, "a", profile.New(5, 6)).Body.Close()
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Users != 2 {
		t.Errorf("users = %d after re-upload, want 2", st.Users)
	}
	if st.GraphStale || !st.GraphLive {
		t.Errorf("stats after re-upload = %+v, want warm live graph", st)
	}
}

// TestPackedSnapshotCachingAndInvalidation: successive snapshots without an
// intervening upload must return the same immutable packed corpus, and any
// upload (new user or replacement) must invalidate the cache so the next
// snapshot reflects the new fingerprints.
func TestPackedSnapshotCachingAndInvalidation(t *testing.T) {
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	scheme := core.MustScheme(1024, 7)

	putFingerprint(t, ts, scheme, "a", profile.New(1, 2, 3)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(100, 200)).Body.Close()

	c1, err := srv.packedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c1.corpus.NumUsers() != 2 || len(c1.users) != 2 {
		t.Fatalf("snapshot has %d users, want 2", c1.corpus.NumUsers())
	}
	c2, err := srv.packedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("back-to-back snapshots repacked instead of reusing the cache")
	}

	// Replacing a's fingerprint bumps mutSeq; the stale cache must not be
	// served, and the fresh corpus must hold the new bits at a's index.
	putFingerprint(t, ts, scheme, "a", profile.New(7, 8, 9)).Body.Close()
	c3, err := srv.packedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("snapshot after re-upload reused the stale cache")
	}
	want := scheme.Fingerprint(profile.New(7, 8, 9))
	if got := core.Jaccard(want, c3.corpus.Fingerprint(0)); got != 1 {
		t.Errorf("repacked corpus row 0 has Jaccard %v vs the re-uploaded fingerprint, want 1", got)
	}
}

// TestQueryReflectsReupload drives the same invalidation through the public
// API: after "b" re-uploads the query profile's exact fingerprint, /query
// must rank b first — a stale packed cache would keep serving the old bits.
func TestQueryReflectsReupload(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2, 3)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(100, 200)).Body.Close()

	query := func() []NeighborJSON {
		t.Helper()
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2, 3))); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/query?k=1", "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var got []NeighborJSON
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	if got := query(); len(got) != 1 || got[0].User != "a" || got[0].Similarity != 1 {
		t.Fatalf("before re-upload: got %+v, want a at sim 1", got)
	}
	putFingerprint(t, ts, scheme, "b", profile.New(1, 2, 3)).Body.Close()
	putFingerprint(t, ts, scheme, "a", profile.New(500, 600)).Body.Close()
	if got := query(); len(got) != 1 || got[0].User != "b" || got[0].Similarity != 1 {
		t.Fatalf("after re-upload: got %+v, want b at sim 1", got)
	}
}
