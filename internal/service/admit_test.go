package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldfinger/internal/admit"
	"goldfinger/internal/core"
	"goldfinger/internal/durable"
	"goldfinger/internal/profile"
)

// assertRetryAfter asserts the response carries a Retry-After header that
// parses as a non-negative integer — the RFC 9110 contract every 409/429/
// 503 this server emits must honor so retrying clients can obey it.
func assertRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatalf("status %d without Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", v, err)
	}
	if secs < 0 {
		t.Fatalf("Retry-After %d is negative", secs)
	}
}

// tinyAdmission is a config small enough to saturate from a unit test.
func tinyAdmission() admit.Config {
	return admit.Config{
		Read:  admit.ClassConfig{MaxInflight: 8, MaxQueue: 8, Timeout: 5 * time.Second},
		Query: admit.ClassConfig{MaxInflight: 1, MaxQueue: 1, Timeout: 5 * time.Second},
		Write: admit.ClassConfig{MaxInflight: 1, MaxQueue: 0, Timeout: 5 * time.Second},
	}
}

// blockedBuildServer returns a server whose next build blocks until the
// returned release func is called — the build occupies one Write slot for
// its whole duration, which is exactly what the admission tests need.
func blockedBuildServer(t *testing.T, cfg admit.Config) (*Server, *httptest.Server, *core.Scheme, func()) {
	t.Helper()
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAdmission(cfg)
	gate := make(chan struct{})
	var once sync.Once
	srv.buildHook = func() { <-gate }
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, core.MustScheme(1024, 7), release
}

// TestWriteShedWhileBuildHoldsSlot: with Write MaxInflight=1/MaxQueue=0, a
// blocked build occupies the only write slot, so an upload is shed with
// 503 + parseable Retry-After, fast.
func TestWriteShedWhileBuildHoldsSlot(t *testing.T) {
	_, ts, scheme, release := blockedBuildServer(t, tinyAdmission())
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()

	buildDone := make(chan struct{})
	go func() {
		defer close(buildDone)
		resp, err := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, func() bool { return getStats(t, ts).BuildRunning })

	start := time.Now()
	resp := putFingerprint(t, ts, scheme, "c", profile.New(3, 4))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed PUT: status %d, want 503", resp.StatusCode)
	}
	assertRetryAfter(t, resp)
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed PUT took %v, want fail-fast", d)
	}

	st := getStats(t, ts)
	if st.Admission["write"].Shed == 0 {
		t.Errorf("write shed not counted: %+v", st.Admission["write"])
	}
	release()
	<-buildDone

	// With the build finished the slot is free again: the upload goes
	// through — shedding is transient, not sticky.
	resp2 := putFingerprint(t, ts, scheme, "c", profile.New(3, 4))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("post-build PUT: status %d, want 204", resp2.StatusCode)
	}
}

// TestDeadlineExceededInQueue: Write MaxQueue=1 queues the upload behind
// the blocked build; its X-Request-Timeout expires in the queue and it
// fails with 503 + Retry-After near the deadline, not at the class
// default 5s, and the decision is counted.
func TestDeadlineExceededInQueue(t *testing.T) {
	cfg := tinyAdmission()
	cfg.Write.MaxQueue = 1
	_, ts, scheme, release := blockedBuildServer(t, cfg)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()

	buildDone := make(chan struct{})
	go func() {
		defer close(buildDone)
		resp, err := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, func() bool { return getStats(t, ts).BuildRunning })
	defer func() { release(); <-buildDone }()

	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, core.MustScheme(1024, 7).Fingerprint(profile.New(9))); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/users/q/fingerprint", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderRequestTimeout, "100ms")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-deadline PUT: status %d, want 503", resp.StatusCode)
	}
	assertRetryAfter(t, resp)
	if d := time.Since(start); d < 80*time.Millisecond || d > 2*time.Second {
		t.Errorf("queued-deadline PUT took %v, want ≈100ms", d)
	}
	if st := getStats(t, ts); st.Admission["write"].DeadlineExceeded == 0 {
		t.Errorf("deadline decision not counted: %+v", st.Admission["write"])
	}
}

// TestRateLimit429: an exhausted token bucket answers 429 with a
// parseable Retry-After on every class.
func TestRateLimit429(t *testing.T) {
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := admit.DefaultConfig()
	cfg.Rate = 1e-9 // one initial token, effectively no refill
	cfg.Burst = 1
	srv.SetAdmission(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request spent the token: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited request: status %d, want 429", resp.StatusCode)
	}
	assertRetryAfter(t, resp)

	// /healthz bypasses admission: probes must survive rate limiting.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz under rate limit: status %d, want 200", hresp.StatusCode)
	}
}

// TestRequestTimeoutHeader: malformed and non-positive values are 400;
// a microscopic timeout aborts the query mid-scan with 503 + Retry-After
// and bumps query.deadline.total.
func TestRequestTimeoutHeader(t *testing.T) {
	ts, scheme := newTestServer(t)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()

	query := func(timeout string) *http.Response {
		t.Helper()
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2))); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query?k=1", &buf)
		if err != nil {
			t.Fatal(err)
		}
		if timeout != "" {
			req.Header.Set(HeaderRequestTimeout, timeout)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for _, bad := range []string{"garbage", "-1s", "0", "-3"} {
		resp := query(bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("timeout header %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Sane timeouts in both syntaxes succeed.
	for _, good := range []string{"2s", "2"} {
		resp := query(good)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("timeout header %q: status %d, want 200", good, resp.StatusCode)
		}
	}

	// 1ns is parsed fine but expires before the scan's first tile: the
	// query must abort with 503 + Retry-After, counted as a deadline.
	resp := query("1ns")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("1ns timeout: status %d, want 503", resp.StatusCode)
	}
	assertRetryAfter(t, resp)
	if st := getStats(t, ts); st.QueryDeadlines == 0 {
		t.Errorf("query deadline not counted: %+v", st)
	}
}

// TestQueryClientDisconnectCounted: a query whose client vanished is
// abandoned (knn.TopKRangeCtx refuses the dead context) and counted in
// query_canceled, without burning a scan.
func TestQueryClientDisconnectCounted(t *testing.T) {
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	scheme := core.MustScheme(1024, 7)
	h := srv.Handler()

	upload := func(id string, p profile.Profile) {
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPut, "/users/"+id+"/fingerprint", &buf)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent {
			t.Fatalf("upload %s: status %d", id, rec.Code)
		}
	}
	upload("a", profile.New(1, 2))
	upload("b", profile.New(2, 3))

	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodPost, "/query?k=1", &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("disconnected query: status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := srv.obs.Counter(metricQueryCanceled).Value(); got != 1 {
		t.Errorf("query.canceled.total = %d, want 1", got)
	}
}

// TestBuildConflictRetryAfterComputed: the 409 for a concurrent build
// carries a Retry-After derived from build state — with a 90s build
// timeout configured, the advice must reflect the remaining deadline, not
// the old hardcoded "1".
func TestBuildConflictRetryAfterComputed(t *testing.T) {
	srv, ts, scheme, release := blockedBuildServer(t, admit.DefaultConfig())
	srv.SetBuildTimeout(90 * time.Second)
	putFingerprint(t, ts, scheme, "a", profile.New(1, 2)).Body.Close()
	putFingerprint(t, ts, scheme, "b", profile.New(2, 3)).Body.Close()

	buildDone := make(chan struct{})
	go func() {
		defer close(buildDone)
		resp, err := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, func() bool { return getStats(t, ts).BuildRunning })
	defer func() { release(); <-buildDone }()

	resp, err := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent build: status %d, want 409", resp.StatusCode)
	}
	assertRetryAfter(t, resp)
	secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	if secs < 30 || secs > 90 {
		t.Errorf("Retry-After = %ds, want within the remaining 90s build deadline", secs)
	}
}

// TestDegradedAndAdmissionInterplay is the degraded-mode × admission
// matrix: with the durable store read-only, queries and neighbor reads
// are still admitted under their classes, writes are rejected, and
// /healthz + /stats report the degraded and overloaded conditions
// distinctly (degraded without overload here).
func TestDegradedAndAdmissionInterplay(t *testing.T) {
	dir := t.TempDir()
	ffs := &durable.FaultFS{Inner: durable.OSFS{}}
	ts, store, _, scheme := newDurableServer(t, dir, ffs)
	t.Cleanup(func() { store.Close() })

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("u%d", i)
		resp := putFingerprint(t, ts, scheme, id, profile.New(profile.ItemID(i), profile.ItemID(i+1)))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/graph/build?k=1&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ffs.CrashNow() // data dir dies; next write flips degraded

	// Writes: admitted by the write class, then rejected by the store.
	wresp := putFingerprint(t, ts, scheme, "late", profile.New(50))
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded PUT: status %d, want 503", wresp.StatusCode)
	}
	assertRetryAfter(t, wresp)

	// Queries and reads: still admitted and served.
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(0, 1))); err != nil {
		t.Fatal(err)
	}
	qresp, err := http.Post(ts.URL+"/query?k=1", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d, want 200", qresp.StatusCode)
	}
	nresp, err := http.Get(ts.URL + "/users/u0/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusOK {
		t.Fatalf("degraded neighbors: status %d, want 200", nresp.StatusCode)
	}

	// The two conditions are reported distinctly: degraded yes (sticky),
	// overloaded no (nothing is queueing).
	st := getStats(t, ts)
	if !st.Durable || !st.Degraded {
		t.Errorf("stats degraded fields: %+v", st)
	}
	if st.Overloaded {
		t.Error("stats reports overloaded with idle limiters")
	}
	if st.Admission["query"].Admitted+st.Admission["query"].QueuedAdmitted == 0 {
		t.Errorf("degraded query not admitted under query class: %+v", st.Admission["query"])
	}
	if st.Admission["write"].Shed != 0 {
		t.Errorf("degraded write counted as admission shed (it was admitted, then refused by the store): %+v", st.Admission["write"])
	}
	hbody := healthzBody(t, ts)
	if !bytes.Contains(hbody, []byte("degraded")) || bytes.Contains(hbody, []byte("overloaded")) {
		t.Errorf("healthz body %q: want degraded only", hbody)
	}
}

// TestServiceOverloadGracefulDegradation is the in-package overload
// check: many more concurrent queries than MaxInflight+MaxQueue, every
// response is 200 or a fast 503-with-Retry-After, and the goroutine count
// returns to baseline.
func TestServiceOverloadGracefulDegradation(t *testing.T) {
	srv, err := NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAdmission(tinyAdmission()) // query: 1 in flight, 1 queued
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	scheme := core.MustScheme(1024, 7)
	for i := 0; i < 50; i++ {
		putFingerprint(t, ts, scheme, fmt.Sprintf("u%d", i), profile.New(profile.ItemID(i), profile.ItemID(2*i+1))).Body.Close()
	}

	baseline := runtime.NumGoroutine()
	var ok200, shed503, other atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				var buf bytes.Buffer
				if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2))); err != nil {
					other.Add(1)
					return
				}
				resp, err := client.Post(ts.URL+"/query?k=3", "application/octet-stream", &buf)
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						other.Add(1)
					} else {
						shed503.Add(1)
					}
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Errorf("%d responses were neither 200 nor 503+Retry-After", other.Load())
	}
	if ok200.Load() == 0 {
		t.Error("no queries succeeded under overload")
	}
	t.Logf("overload: %d ok, %d shed", ok200.Load(), shed503.Load())

	// Goroutines drain back to (near) baseline once the storm stops.
	http.DefaultClient.CloseIdleConnections()
	client.CloseIdleConnections()
	waitUntil(t, func() bool { return runtime.NumGoroutine() <= baseline+10 })
}

func healthzBody(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	return buf[:n]
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
