// Package profile implements the explicit ("native") representation of user
// profiles that GoldFinger's fingerprints are benchmarked against: a profile
// is the set of item IDs a user rated positively, stored as a sorted slice so
// that intersections and unions are single merge passes. The package also
// provides the exact set similarities (Jaccard, cosine, overlap) used both
// by the native KNN algorithms and as ground truth for quality measurement.
package profile

import (
	"fmt"
	"math"
	"sort"
)

// ItemID identifies an item. Datasets in the paper have at most a few
// hundred thousand items, so 32 bits is ample.
type ItemID = int32

// Profile is a set of items stored as a strictly increasing slice. The zero
// value is the empty profile.
type Profile []ItemID

// New builds a Profile from items, sorting and deduplicating them.
func New(items ...ItemID) Profile {
	p := append(Profile(nil), items...)
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	out := p[:0]
	for i, v := range p {
		if i == 0 || v != p[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// FromSorted wraps an already sorted, duplicate-free slice without copying.
// It panics if the input violates either property, making corrupted inputs
// fail fast instead of silently producing wrong similarities.
func FromSorted(items []ItemID) Profile {
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			panic(fmt.Sprintf("profile: FromSorted input not strictly increasing at %d (%d after %d)",
				i, items[i], items[i-1]))
		}
	}
	return Profile(items)
}

// Len returns the number of items in the profile.
func (p Profile) Len() int { return len(p) }

// Contains reports whether item is in the profile, by binary search.
func (p Profile) Contains(item ItemID) bool {
	i := sort.Search(len(p), func(i int) bool { return p[i] >= item })
	return i < len(p) && p[i] == item
}

// IntersectionSize returns |p ∩ q| with a linear merge.
func IntersectionSize(p, q Profile) int {
	n, i, j := 0, 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] < q[j]:
			i++
		case p[i] > q[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |p ∪ q|.
func UnionSize(p, q Profile) int {
	return len(p) + len(q) - IntersectionSize(p, q)
}

// Intersection returns p ∩ q as a new Profile.
func Intersection(p, q Profile) Profile {
	out := make(Profile, 0, minInt(len(p), len(q)))
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] < q[j]:
			i++
		case p[i] > q[j]:
			j++
		default:
			out = append(out, p[i])
			i++
			j++
		}
	}
	return out
}

// Union returns p ∪ q as a new Profile.
func Union(p, q Profile) Profile {
	out := make(Profile, 0, len(p)+len(q))
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] < q[j]:
			out = append(out, p[i])
			i++
		case p[i] > q[j]:
			out = append(out, q[j])
			j++
		default:
			out = append(out, p[i])
			i++
			j++
		}
	}
	out = append(out, p[i:]...)
	out = append(out, q[j:]...)
	return out
}

// Jaccard returns |p∩q| / |p∪q|, the similarity the paper builds on
// (van Rijsbergen). Two empty profiles have similarity 0 by convention,
// matching the behaviour of the SHF estimator on empty fingerprints.
func Jaccard(p, q Profile) float64 {
	inter := IntersectionSize(p, q)
	union := len(p) + len(q) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine returns |p∩q| / sqrt(|p|·|q|), the binary cosine similarity, an
// alternative fsim also covered by the paper's requirements (positively
// correlated with common items, negatively with total items).
func Cosine(p, q Profile) float64 {
	if len(p) == 0 || len(q) == 0 {
		return 0
	}
	inter := IntersectionSize(p, q)
	return float64(inter) / math.Sqrt(float64(len(p))*float64(len(q)))
}

// Overlap returns |p∩q| / min(|p|,|q|), the overlap coefficient.
func Overlap(p, q Profile) float64 {
	m := minInt(len(p), len(q))
	if m == 0 {
		return 0
	}
	return float64(IntersectionSize(p, q)) / float64(m)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
