package profile

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPair(size int) (Profile, Profile) {
	r := rand.New(rand.NewSource(int64(size)))
	mk := func() Profile {
		items := make([]ItemID, size)
		for i := range items {
			items[i] = ItemID(r.Intn(size * 12))
		}
		return New(items...)
	}
	return mk(), mk()
}

func BenchmarkJaccard(b *testing.B) {
	for _, size := range []int{20, 80, 320, 1280} {
		p, q := benchPair(size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Jaccard(p, q)
			}
			_ = sink
		})
	}
}

func BenchmarkIntersectionSize(b *testing.B) {
	p, q := benchPair(80)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += IntersectionSize(p, q)
	}
	_ = sink
}

func BenchmarkContains(b *testing.B) {
	p, _ := benchPair(320)
	var sink int
	for i := 0; i < b.N; i++ {
		if p.Contains(ItemID(i % 4000)) {
			sink++
		}
	}
	_ = sink
}

func BenchmarkNew(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	items := make([]ItemID, 80)
	for i := range items {
		items[i] = ItemID(r.Intn(1000))
	}
	for i := 0; i < b.N; i++ {
		New(items...)
	}
}
