package profile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	p := New(5, 3, 5, 1, 3, 9)
	want := []ItemID{1, 3, 5, 9}
	if len(p) != len(want) {
		t.Fatalf("New = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("New = %v, want %v", p, want)
		}
	}
}

func TestNewEmpty(t *testing.T) {
	if p := New(); p.Len() != 0 {
		t.Errorf("New() = %v, want empty", p)
	}
}

func TestFromSortedAccepts(t *testing.T) {
	p := FromSorted([]ItemID{1, 2, 10})
	if p.Len() != 3 {
		t.Errorf("FromSorted lost items: %v", p)
	}
}

func TestFromSortedRejectsUnsorted(t *testing.T) {
	for _, bad := range [][]ItemID{{2, 1}, {1, 1}, {5, 4, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromSorted(%v) did not panic", bad)
				}
			}()
			FromSorted(bad)
		}()
	}
}

func TestContains(t *testing.T) {
	p := New(2, 4, 6, 8)
	for _, it := range []ItemID{2, 4, 6, 8} {
		if !p.Contains(it) {
			t.Errorf("Contains(%d) = false", it)
		}
	}
	for _, it := range []ItemID{1, 3, 5, 7, 9, 100, -1} {
		if p.Contains(it) {
			t.Errorf("Contains(%d) = true", it)
		}
	}
	if (Profile{}).Contains(1) {
		t.Error("empty profile contains 1")
	}
}

// mapModel computes the same quantities with maps, as an oracle.
func mapModel(p, q Profile) (inter, union int) {
	set := map[ItemID]int{}
	for _, v := range p {
		set[v] |= 1
	}
	for _, v := range q {
		set[v] |= 2
	}
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return inter, union
}

func randProfile(r *rand.Rand, maxLen, universe int) Profile {
	n := r.Intn(maxLen + 1)
	items := make([]ItemID, n)
	for i := range items {
		items[i] = ItemID(r.Intn(universe))
	}
	return New(items...)
}

func TestSetOpsAgainstMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randProfile(r, 50, 80)
		q := randProfile(r, 50, 80)
		wInter, wUnion := mapModel(p, q)
		if got := IntersectionSize(p, q); got != wInter {
			t.Fatalf("IntersectionSize(%v,%v) = %d, want %d", p, q, got, wInter)
		}
		if got := UnionSize(p, q); got != wUnion {
			t.Fatalf("UnionSize = %d, want %d", UnionSize(p, q), wUnion)
		}
		if got := Intersection(p, q); len(got) != wInter {
			t.Fatalf("Intersection length = %d, want %d", len(got), wInter)
		}
		if got := Union(p, q); len(got) != wUnion {
			t.Fatalf("Union length = %d, want %d", len(got), wUnion)
		}
	}
}

func TestIntersectionAndUnionSorted(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		p := randProfile(r, 40, 60)
		q := randProfile(r, 40, 60)
		for _, res := range []Profile{Intersection(p, q), Union(p, q)} {
			if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i] < res[j] }) {
				t.Fatalf("result not sorted: %v", res)
			}
			for i := 1; i < len(res); i++ {
				if res[i] == res[i-1] {
					t.Fatalf("result has duplicates: %v", res)
				}
			}
		}
	}
}

func TestJaccardKnownValues(t *testing.T) {
	cases := []struct {
		p, q Profile
		want float64
	}{
		{New(1, 2, 3), New(1, 2, 3), 1},
		{New(1, 2), New(3, 4), 0},
		{New(1, 2, 3), New(2, 3, 4), 0.5},
		{New(1), New(1, 2, 3, 4), 0.25},
		{New(), New(), 0},
		{New(), New(1), 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", c.p, c.q, got, c.want)
		}
	}
}

func TestSimilaritiesProperties(t *testing.T) {
	gen := func(vals []uint16) Profile {
		items := make([]ItemID, len(vals))
		for i, v := range vals {
			items[i] = ItemID(v % 200)
		}
		return New(items...)
	}
	f := func(av, bv []uint16) bool {
		p, q := gen(av), gen(bv)
		for _, sim := range []func(Profile, Profile) float64{Jaccard, Cosine, Overlap} {
			s := sim(p, q)
			if s < 0 || s > 1+1e-12 {
				return false
			}
			if math.Abs(s-sim(q, p)) > 1e-12 { // symmetry
				return false
			}
		}
		if len(p) > 0 && Jaccard(p, p) != 1 {
			return false
		}
		// Jaccard ≤ Cosine ≤ Overlap for non-empty sets.
		if len(p) > 0 && len(q) > 0 {
			j, c, o := Jaccard(p, q), Cosine(p, q), Overlap(p, q)
			if j > c+1e-12 || c > o+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineKnown(t *testing.T) {
	// |∩|=1, |p|=1, |q|=4 → 1/sqrt(4) = 0.5
	if got := Cosine(New(1), New(1, 2, 3, 4)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Cosine = %g, want 0.5", got)
	}
}

func TestOverlapKnown(t *testing.T) {
	// |∩|=1, min = 1 → 1.0
	if got := Overlap(New(1), New(1, 2, 3, 4)); got != 1 {
		t.Errorf("Overlap = %g, want 1", got)
	}
}

func TestJaccardTriangleOnDistance(t *testing.T) {
	// 1 - Jaccard is a metric; check the triangle inequality on random
	// triples (a classic sanity check of the implementation).
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		a := randProfile(r, 30, 40)
		b := randProfile(r, 30, 40)
		c := randProfile(r, 30, 40)
		dab := 1 - Jaccard(a, b)
		dbc := 1 - Jaccard(b, c)
		dac := 1 - Jaccard(a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: d(a,c)=%g > d(a,b)+d(b,c)=%g", dac, dab+dbc)
		}
	}
}
