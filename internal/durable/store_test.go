package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
)

func openTest(t *testing.T, dir string, fsys FS) (*Store, Recovery) {
	t.Helper()
	st, rec, err := Open(Options{Dir: dir, FS: fsys, Fsync: FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st, rec
}

// TestRecoveryAfterKill is the core durability contract: append N acked
// records, "SIGKILL" (drop the store without Close), reopen the same dir,
// and every record is back.
func TestRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	st, rec := openTest(t, dir, OSFS{})
	if len(rec.State.Users) != 0 || rec.State.MutSeq != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", rec.State)
	}
	recs := testRecords(t, 25)
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the handle is simply abandoned, like a killed process.
	st2, rec2 := openTest(t, dir, OSFS{})
	if got := len(rec2.State.Users); got != len(recs) {
		t.Fatalf("recovered %d users, want %d", got, len(recs))
	}
	if info := st2.Info(); info.WALRecords != int64(len(recs)) {
		t.Fatalf("reopened Info().WALRecords = %d, want %d", info.WALRecords, len(recs))
	}
	if rec2.State.MutSeq != recs[len(recs)-1].MutSeq {
		t.Fatalf("recovered mutSeq %d, want %d", rec2.State.MutSeq, recs[len(recs)-1].MutSeq)
	}
	if rec2.RecordsReplayed != len(recs) || rec2.BytesDropped != 0 {
		t.Fatalf("replayed=%d dropped=%d, want %d/0", rec2.RecordsReplayed, rec2.BytesDropped, len(recs))
	}
	for i, id := range rec2.State.Users {
		if id != recs[i].ID {
			t.Fatalf("user %d = %q, want %q (registration order must survive)", i, id, recs[i].ID)
		}
	}
}

// TestRecoveryOverwriteWins: replaying a WAL with two puts for the same id
// must keep the latest fingerprint and not duplicate the user.
func TestRecoveryOverwriteWins(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, OSFS{})
	fpOld := testFP(t, 1, 2, 3)
	fpNew := testFP(t, 100, 200, 300, 400)
	if err := st.Append(Record{MutSeq: 1, ID: "alice", FP: fpOld}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{MutSeq: 2, ID: "bob", FP: testFP(t, 9)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{MutSeq: 3, ID: "alice", FP: fpNew}); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, OSFS{})
	if len(rec.State.Users) != 2 {
		t.Fatalf("recovered %d users, want 2", len(rec.State.Users))
	}
	if rec.State.Users[0] != "alice" || rec.State.FPS[0].Cardinality() != fpNew.Cardinality() {
		t.Fatalf("alice not overwritten: users=%v card=%d", rec.State.Users, rec.State.FPS[0].Cardinality())
	}
}

// captureOf returns a capture callback yielding the state equivalent to
// applying recs in order.
func captureOf(recs []Record) func() (State, *EpochData) {
	var st State
	for _, r := range recs {
		st.Users = append(st.Users, r.ID)
		st.FPS = append(st.FPS, r.FP)
		st.MutSeq = r.MutSeq
	}
	return func() (State, *EpochData) { return st, nil }
}

// TestCompactionTruncatesWAL: after a compaction the old segment and old
// snapshots are gone, the new snapshot carries the state, and recovery
// still sees everything — including records appended after the compaction.
func TestCompactionTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, OSFS{})
	recs := testRecords(t, 10)
	for _, r := range recs[:6] {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(captureOf(recs[:6])); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[6:] {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var have []string
	for _, e := range names {
		have = append(have, e.Name())
	}
	for _, n := range have {
		if n == walName(0) {
			t.Errorf("sealed segment %s not deleted after compaction (dir: %v)", n, have)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, stateName(1))); err != nil {
		t.Errorf("state snapshot missing after compaction: %v (dir: %v)", err, have)
	}

	_, rec := openTest(t, dir, OSFS{})
	if len(rec.State.Users) != 10 {
		t.Fatalf("recovered %d users after compaction, want 10", len(rec.State.Users))
	}
	if rec.RecordsReplayed != 4 {
		t.Errorf("replayed %d records, want 4 (snapshot covers the first 6)", rec.RecordsReplayed)
	}
	if rec.State.MutSeq != 10 {
		t.Errorf("mutSeq %d, want 10", rec.State.MutSeq)
	}
}

// TestCorruptSnapshotQuarantined: a snapshot that fails its checksum is
// moved aside as *.corrupt, recovery proceeds from the remaining WAL, and
// nothing panics.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, OSFS{})
	recs := testRecords(t, 8)
	for _, r := range recs[:5] {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(captureOf(recs[:5])); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[5:] {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Bit-rot the snapshot.
	snapPath := filepath.Join(dir, stateName(1))
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st2, rec, err := Open(Options{Dir: dir, FS: OSFS{}, Metrics: reg, Logf: t.Logf})
	if err != nil {
		t.Fatalf("recovery died on a corrupt snapshot: %v", err)
	}
	defer st2.Close()
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0], ".corrupt") {
		t.Fatalf("quarantined = %v, want one *.corrupt", rec.Quarantined)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot still in recovery path: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, stateName(1)+".corrupt")); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	// The snapshot is gone and its covered segment was deleted by the
	// compaction, so only the post-compaction records survive — recovery
	// salvages exactly the remaining WAL instead of crashing.
	if len(rec.State.Users) != 3 {
		t.Errorf("recovered %d users from surviving WAL, want 3", len(rec.State.Users))
	}
	if reg.Counter(MetricQuarantinedFiles).Value() != 1 {
		t.Errorf("quarantine counter = %d, want 1", reg.Counter(MetricQuarantinedFiles).Value())
	}
}

// TestTornTailRecoversAckedPrefix is the acceptance scenario: a crash
// mid-append leaves a physically torn WAL tail; recovery keeps exactly the
// fully-acked records and truncates the torn bytes off the file.
func TestTornTailRecoversAckedPrefix(t *testing.T) {
	recs := testRecords(t, 12)
	// Sweep the crash point across every write the scenario performs.
	ffs := &FaultFS{Inner: OSFS{}}
	{
		dir := t.TempDir()
		st, _, err := Open(Options{Dir: dir, FS: ffs, Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := st.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := ffs.Ops()
	if total < len(recs) {
		t.Fatalf("scenario performed only %d ops", total)
	}
	for failAt := 1; failAt <= total; failAt++ {
		dir := t.TempDir()
		ffs := &FaultFS{Inner: OSFS{}, FailAt: failAt, Mode: FaultCrash}
		st, _, err := Open(Options{Dir: dir, FS: ffs, Fsync: FsyncAlways})
		var acked []Record
		if err == nil {
			for _, r := range recs {
				if err := st.Append(r); err != nil {
					break
				}
				acked = append(acked, r)
			}
		}
		// "Reboot": recover the directory with a healthy filesystem. Every
		// acked record must be back; a record whose bytes fully reached the
		// file before the fault (e.g. the fault hit its fsync) may
		// additionally survive — that is the WAL contract: acked ⊆
		// recovered ⊆ attempted, recovered is a gap-free prefix, and a torn
		// (partially written) record never resurrects.
		st2, rec, err := Open(Options{Dir: dir, FS: OSFS{}, Logf: t.Logf})
		if err != nil {
			t.Fatalf("failAt=%d: recovery failed: %v", failAt, err)
		}
		got := len(rec.State.Users)
		if got < len(acked) || got > len(acked)+1 {
			t.Fatalf("failAt=%d: recovered %d users, acked %d (at most one in-flight record may ride along)",
				failAt, got, len(acked))
		}
		for i := 0; i < got; i++ {
			if rec.State.Users[i] != recs[i].ID {
				t.Fatalf("failAt=%d: user %d = %q, want %q", failAt, i, rec.State.Users[i], recs[i].ID)
			}
		}
		if rec.State.MutSeq != uint64(got) {
			t.Fatalf("failAt=%d: mutSeq %d, want %d", failAt, rec.State.MutSeq, got)
		}
		// The torn tail was truncated: appending to the recovered store and
		// recovering again must still parse cleanly.
		next := Record{MutSeq: rec.State.MutSeq + 1, ID: "post-crash", FP: testFP(t, 42)}
		if err := st2.Append(next); err != nil {
			t.Fatalf("failAt=%d: append after recovery: %v", failAt, err)
		}
		_, rec3 := openTest(t, dir, OSFS{})
		if len(rec3.State.Users) != got+1 || rec3.BytesDropped != 0 {
			t.Fatalf("failAt=%d: second recovery %d users / %d dropped, want %d / 0",
				failAt, len(rec3.State.Users), rec3.BytesDropped, got+1)
		}
	}
}

// TestCrashDuringCompaction sweeps a crash point across an
// append-compact-append cycle: whatever the interleaving, every acked
// record must survive recovery.
func TestCrashDuringCompaction(t *testing.T) {
	recs := testRecords(t, 8)
	run := func(ffs *FaultFS, dir string) (acked []Record) {
		st, rec, err := Open(Options{Dir: dir, FS: ffs, Fsync: FsyncAlways})
		if err != nil {
			return nil
		}
		acked = append(acked, makeRecordsFromState(rec.State)...)
		for _, r := range recs[:5] {
			if err := st.Append(r); err != nil {
				return acked
			}
			acked = append(acked, r)
		}
		snapshot := append([]Record(nil), acked...)
		st.Compact(captureOf(snapshot))
		for _, r := range recs[5:] {
			if err := st.Append(r); err != nil {
				return acked
			}
			acked = append(acked, r)
		}
		return acked
	}
	probe := &FaultFS{Inner: OSFS{}}
	run(probe, t.TempDir())
	total := probe.Ops()
	for failAt := 1; failAt <= total; failAt++ {
		dir := t.TempDir()
		acked := run(&FaultFS{Inner: OSFS{}, FailAt: failAt, Mode: FaultCrash}, dir)
		_, rec, err := Open(Options{Dir: dir, FS: OSFS{}, Logf: t.Logf})
		if err != nil {
			t.Fatalf("failAt=%d: recovery failed: %v", failAt, err)
		}
		got := len(rec.State.Users)
		if got < len(acked) || got > len(acked)+1 {
			t.Fatalf("failAt=%d: recovered %d users, acked %d", failAt, got, len(acked))
		}
		for i := 0; i < got; i++ {
			if rec.State.Users[i] != recs[i].ID {
				t.Fatalf("failAt=%d: user %d = %q, want %q", failAt, i, rec.State.Users[i], recs[i].ID)
			}
		}
	}
}

func makeRecordsFromState(st State) []Record {
	out := make([]Record, len(st.Users))
	for i := range st.Users {
		out[i] = Record{ID: st.Users[i], FP: st.FPS[i]}
	}
	return out
}

// TestDegradedModeOnAppendFailure: a failed append flips the store
// read-only; every later mutation reports ErrDegraded without touching the
// files.
func TestDegradedModeOnAppendFailure(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	ffs := &FaultFS{Inner: OSFS{}}
	st, _, err := Open(Options{Dir: dir, FS: ffs, Fsync: FsyncAlways, Metrics: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, 3)
	if err := st.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	ffs.FailAt = ffs.Ops() + 1 // next mutation fails, ENOSPC-style
	ffs.Mode = FaultError
	if err := st.Append(recs[1]); err == nil {
		t.Fatal("append through an injected fault succeeded")
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after append failure")
	}
	if reg.Gauge(MetricDegraded).Value() != 1 {
		t.Error("degraded gauge not set")
	}
	if err := st.Append(recs[2]); !errors.Is(err, ErrDegraded) {
		t.Errorf("append on degraded store: %v, want ErrDegraded", err)
	}
	if err := st.Compact(captureOf(recs[:1])); !errors.Is(err, ErrDegraded) {
		t.Errorf("compact on degraded store: %v, want ErrDegraded", err)
	}
	if err := st.SaveEpoch(EpochData{}); !errors.Is(err, ErrDegraded) {
		t.Errorf("save epoch on degraded store: %v, want ErrDegraded", err)
	}
	// The acked record survives the degraded episode.
	_, rec := openTest(t, dir, OSFS{})
	if len(rec.State.Users) != 1 || rec.State.Users[0] != recs[0].ID {
		t.Fatalf("recovered %v, want just %q", rec.State.Users, recs[0].ID)
	}
}

func testEpoch(t *testing.T, n, k int) EpochData {
	t.Helper()
	users := make([]string, n)
	g := &knn.Graph{K: k, Neighbors: make([][]knn.Neighbor, n)}
	for i := range users {
		users[i] = testRecords(t, n)[i].ID
		for j := 0; j < k; j++ {
			g.Neighbors[i] = append(g.Neighbors[i], knn.Neighbor{ID: int32((i + j + 1) % n), Sim: 1 / float64(j+1)})
		}
	}
	return EpochData{
		Seq: 3, K: k, Algorithm: "hyrec",
		BuiltAt: time.Unix(1700000000, 12345), Duration: 1500 * time.Millisecond,
		Stats:  knn.Stats{Comparisons: 424242, Iterations: 7, Updates: 99},
		MutSeq: uint64(n), Users: users, Graph: g,
	}
}

// TestEpochSnapshotRoundTrip: the persisted epoch comes back exactly, and a
// corrupted epoch file is quarantined without poisoning state recovery.
func TestEpochSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, OSFS{})
	want := testEpoch(t, 6, 2)
	if err := st.SaveEpoch(want); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, OSFS{})
	if rec.Epoch == nil {
		t.Fatal("epoch not recovered")
	}
	got := *rec.Epoch
	if got.Seq != want.Seq || got.K != want.K || got.Algorithm != want.Algorithm ||
		!got.BuiltAt.Equal(want.BuiltAt) || got.Duration != want.Duration ||
		got.Stats != want.Stats || got.MutSeq != want.MutSeq {
		t.Fatalf("epoch meta = %+v, want %+v", got, want)
	}
	if len(got.Users) != len(want.Users) || got.Users[0] != want.Users[0] {
		t.Fatalf("epoch users = %v", got.Users)
	}
	for i := range want.Graph.Neighbors {
		if len(got.Graph.Neighbors[i]) != len(want.Graph.Neighbors[i]) {
			t.Fatalf("node %d neighborhood size changed", i)
		}
		for j, nb := range want.Graph.Neighbors[i] {
			if got.Graph.Neighbors[i][j] != nb {
				t.Fatalf("node %d neighbor %d = %+v, want %+v", i, j, got.Graph.Neighbors[i][j], nb)
			}
		}
	}

	// Corrupt it: recovery must quarantine and carry on with Epoch == nil.
	path := filepath.Join(dir, epochName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec2 := openTest(t, dir, OSFS{})
	if rec2.Epoch != nil {
		t.Fatal("corrupt epoch snapshot accepted")
	}
	if len(rec2.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want the epoch file", rec2.Quarantined)
	}
}

// TestConcurrentAppendsAndCompaction drives appends from several goroutines
// while compactions run concurrently — the interleaving the service's
// write path plus threshold-triggered compaction produces. Appends are
// serialized by a writer mutex (as the service's writeMu does) so mutSeq
// matches append order; compactions run outside it. Run under -race by
// crashcheck.
func TestConcurrentAppendsAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, OSFS{})
	const writers, per = 4, 20

	var (
		writeMu sync.Mutex
		mirror  State
	)
	// capture mimics the service's packedSnapshot-style copy: the current
	// mirror under the lock that writers update it under.
	capture := func() (State, *EpochData) {
		writeMu.Lock()
		defer writeMu.Unlock()
		return State{
			Users:  append([]string(nil), mirror.Users...),
			FPS:    append([]core.Fingerprint(nil), mirror.FPS...),
			MutSeq: mirror.MutSeq,
		}, nil
	}
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			n := 0
			for i := 0; i < per; i++ {
				fp := testFP(t, profile.ItemID(w*1000), profile.ItemID(i))
				writeMu.Lock()
				r := Record{MutSeq: mirror.MutSeq + 1, ID: fmt.Sprintf("w%d-%03d", w, i), FP: fp}
				err := st.Append(r)
				if err == nil {
					mirror.Users = append(mirror.Users, r.ID)
					mirror.FPS = append(mirror.FPS, r.FP)
					mirror.MutSeq = r.MutSeq
				}
				writeMu.Unlock()
				if err != nil {
					break
				}
				n++
				if i%7 == w%3 {
					if err := st.Compact(capture); err != nil {
						t.Errorf("writer %d: compact: %v", w, err)
					}
				}
			}
			done <- n
		}(w)
	}
	total := 0
	for w := 0; w < writers; w++ {
		total += <-done
	}
	if total != writers*per {
		t.Fatalf("only %d of %d appends acked", total, writers*per)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, OSFS{})
	if len(rec.State.Users) != total {
		t.Fatalf("recovered %d users, want %d", len(rec.State.Users), total)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestParseGen(t *testing.T) {
	for _, tc := range []struct {
		name string
		ok   bool
		gen  uint64
	}{
		{"wal-00000003.log", true, 3},
		{"wal-00000003.log.corrupt", false, 0},
		{"wal-.log", false, 0},
		{"wal-x.log", false, 0},
		{"state-00000001.snap", false, 0}, // wrong prefix for wal parse
	} {
		g, ok := parseGen(tc.name, "wal-", ".log")
		if ok != tc.ok || g != tc.gen {
			t.Errorf("parseGen(%q) = %d,%v want %d,%v", tc.name, g, ok, tc.gen, tc.ok)
		}
	}
}

// deltaChurnOps is the fixed mutation script shared by the crash sweep's
// scenario and its deterministic replay oracle: inserts, overwrites and a
// delete, each producing one put/delete record plus one graph delta.
var deltaChurnOps = []struct {
	kind  byte // 'i' insert, 'o' overwrite, 'd' delete
	node  int32
	fpIdx int
}{
	{'i', 10, 10}, {'i', 11, 11}, {'d', 3, -1}, {'i', 12, 12},
	{'o', 5, 13}, {'d', 11, -1}, {'i', 13, 14}, {'o', 0, 15},
}

// deltaChurnStep applies script op j to a live maintainer and returns its
// mutation result.
func deltaChurnStep(t testing.TB, o *knn.Online, fps []core.Fingerprint, j int) knn.MutationResult {
	t.Helper()
	op := deltaChurnOps[j]
	switch op.kind {
	case 'i':
		id, res := o.Insert(fps[op.fpIdx])
		if id != op.node {
			t.Fatalf("script op %d: insert got node %d, want %d", j, id, op.node)
		}
		return res
	case 'o':
		res, err := o.Overwrite(op.node, fps[op.fpIdx])
		if err != nil {
			t.Fatal(err)
		}
		return res
	default:
		res, err := o.Delete(op.node)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
}

// TestCrashDuringDeltaAppendRecoversWarmGraph sweeps a crash point across
// a scenario that persists a built epoch and then streams mutation pairs
// (put/delete record + graph delta) from a live maintainer. Whatever the
// crash point — including mid-delta-append, leaving a torn tail, and
// between a put and its delta, leaving a seq gap — recovery must produce
// a warm epoch exactly equal to a cold deterministic replay of the same
// mutation prefix: same adjacency, same similarities, same tombstones.
// Torn tails are truncated and counted, never parsed.
func TestCrashDuringDeltaAppendRecoversWarmGraph(t *testing.T) {
	const (
		k    = 3
		base = 10
	)
	scheme := core.MustScheme(testBits, 7)
	fps := make([]core.Fingerprint, base+6)
	users := make([]string, base+6)
	for i := range fps {
		fps[i] = scheme.Fingerprint(profile.New(
			profile.ItemID(i), profile.ItemID(i+1), profile.ItemID(2*i+3), profile.ItemID(3*i+7)))
		users[i] = fmt.Sprintf("user-%03d", i)
	}
	baseGraph := func() *knn.Graph {
		g, _ := knn.BruteForce(&knn.SHFProvider{Fingerprints: fps[:base]}, k, knn.Options{})
		return g
	}
	newMaintainer := func(tb testing.TB) *knn.Online {
		o, err := knn.NewOnline(baseGraph(), nil, append([]core.Fingerprint(nil), fps[:base]...), nil, k, base)
		if err != nil {
			tb.Fatal(err)
		}
		return o
	}
	// replayTo is the cold oracle: the maintainer state after n script ops.
	replayTo := func(n int) (*knn.Graph, []bool) {
		o := newMaintainer(t)
		for j := 0; j < n; j++ {
			deltaChurnStep(t, o, fps, j)
		}
		s := o.Snapshot()
		return s.Graph, s.Dead
	}

	// run plays the scenario against fsys until a fault stops it.
	run := func(tb testing.TB, fsys FS, dir string) {
		st, _, err := Open(Options{Dir: dir, FS: fsys, Fsync: FsyncAlways})
		if err != nil {
			return
		}
		for i := 0; i < base; i++ {
			if st.Append(Record{MutSeq: uint64(i + 1), ID: users[i], FP: fps[i]}) != nil {
				return
			}
		}
		if st.SaveEpoch(EpochData{
			Seq: 1, K: k, Algorithm: "bruteforce", MutSeq: base,
			Users: users[:base], Graph: baseGraph(), Dead: make([]bool, base),
		}) != nil {
			return
		}
		o := newMaintainer(tb)
		for j, op := range deltaChurnOps {
			res := deltaChurnStep(tb, o, fps, j)
			seq := uint64(base + j + 1)
			rec := Record{Kind: KindPut, MutSeq: seq, ID: users[max(op.fpIdx, int(op.node))], FP: fps[max(op.fpIdx, 0)]}
			dop := DeltaOverwrite
			switch op.kind {
			case 'i':
				dop = DeltaInsert
				rec.ID = users[op.node]
			case 'd':
				dop = DeltaDelete
				rec = Record{Kind: KindDelete, MutSeq: seq, ID: users[op.node]}
			}
			if st.Append(rec) != nil {
				return
			}
			if st.Append(Record{Kind: KindGraphDelta, MutSeq: seq,
				Delta: &GraphDelta{Op: dop, Node: op.node, Adj: res.Touched}}) != nil {
				return
			}
		}
	}

	probe := &FaultFS{Inner: OSFS{}}
	run(t, probe, t.TempDir())
	total := probe.Ops()
	if total == 0 {
		t.Fatal("probe scenario performed no filesystem ops")
	}

	var tornSeen, warmSeen int
	for failAt := 1; failAt <= total; failAt++ {
		dir := t.TempDir()
		run(t, &FaultFS{Inner: OSFS{}, FailAt: failAt, Mode: FaultCrash}, dir)
		_, rec, err := Open(Options{Dir: dir, FS: OSFS{}, Logf: t.Logf})
		if err != nil {
			t.Fatalf("failAt=%d: recovery failed: %v", failAt, err)
		}
		if rec.BytesDropped > 0 {
			tornSeen++
		}
		ep := rec.Epoch
		if ep == nil {
			continue // crashed before the epoch snapshot landed
		}
		if ep.MutSeq < base || ep.MutSeq > uint64(base+len(deltaChurnOps)) {
			t.Fatalf("failAt=%d: warm epoch at mutSeq %d, outside [%d,%d]",
				failAt, ep.MutSeq, base, base+len(deltaChurnOps))
		}
		if ep.MutSeq > rec.State.MutSeq {
			t.Fatalf("failAt=%d: epoch mutSeq %d ahead of state %d (frankengraph)",
				failAt, ep.MutSeq, rec.State.MutSeq)
		}
		if ep.MutSeq > base {
			warmSeen++
		}
		wantG, wantDead := replayTo(int(ep.MutSeq) - base)
		if len(ep.Graph.Neighbors) != len(wantG.Neighbors) {
			t.Fatalf("failAt=%d: warm graph has %d nodes, cold replay %d",
				failAt, len(ep.Graph.Neighbors), len(wantG.Neighbors))
		}
		for u := range wantG.Neighbors {
			got, want := ep.Graph.Neighbors[u], wantG.Neighbors[u]
			if len(got) != len(want) {
				t.Fatalf("failAt=%d: node %d has %d neighbors warm, %d cold", failAt, u, len(got), len(want))
			}
			for r := range want {
				// Tie-tolerant: ranks must agree on similarity exactly; the
				// deterministic replay makes IDs agree too, so check both.
				if got[r] != want[r] {
					t.Fatalf("failAt=%d: node %d rank %d: warm %+v, cold %+v",
						failAt, u, r, got[r], want[r])
				}
			}
			if dg, dw := ep.Dead[u], wantDead[u]; dg != dw {
				t.Fatalf("failAt=%d: node %d dead=%v warm, %v cold", failAt, u, dg, dw)
			}
		}
	}
	if tornSeen == 0 {
		t.Error("crash sweep never produced a torn tail")
	}
	if warmSeen == 0 {
		t.Error("crash sweep never recovered a warm (delta-applied) epoch")
	}
	t.Logf("sweep: %d crash points, %d torn tails truncated, %d warm recoveries", total, tornSeen, warmSeen)
}
