package durable

import (
	"fmt"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

const testBits = 256

// testFP builds a deterministic fingerprint from a seed item set.
func testFP(t testing.TB, items ...profile.ItemID) core.Fingerprint {
	t.Helper()
	return core.MustScheme(testBits, 7).Fingerprint(profile.New(items...))
}

// testRecords builds n distinct records with mutSeqs 1..n.
func testRecords(t testing.TB, n int) []Record {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			MutSeq: uint64(i + 1),
			ID:     fmt.Sprintf("user-%03d", i),
			FP:     testFP(t, profile.ItemID(i), profile.ItemID(i*7+1), profile.ItemID(i*13+2)),
		}
	}
	return recs
}

func encodeAll(t testing.TB, recs []Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		var err error
		buf, err = AppendRecord(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestWALRoundTrip(t *testing.T) {
	want := testRecords(t, 10)
	data := encodeAll(t, want)
	got, goodLen, err := ScanWAL(data)
	if err != nil {
		t.Fatalf("scan of intact WAL failed: %v", err)
	}
	if goodLen != len(data) {
		t.Fatalf("goodLen = %d, want %d", goodLen, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].MutSeq != want[i].MutSeq || got[i].ID != want[i].ID {
			t.Errorf("record %d = {%d %q}, want {%d %q}", i, got[i].MutSeq, got[i].ID, want[i].MutSeq, want[i].ID)
		}
		if got[i].FP.Cardinality() != want[i].FP.Cardinality() {
			t.Errorf("record %d cardinality mismatch", i)
		}
	}
}

func TestScanWALEmpty(t *testing.T) {
	recs, goodLen, err := ScanWAL(nil)
	if err != nil || goodLen != 0 || len(recs) != 0 {
		t.Fatalf("ScanWAL(nil) = %v, %d, %v", recs, goodLen, err)
	}
}

// TestScanWALTornTail truncates an intact WAL at every possible byte
// boundary: the scan must always recover exactly the records whose bytes
// fully survive and report the rest as the torn tail.
func TestScanWALTornTail(t *testing.T) {
	want := testRecords(t, 4)
	data := encodeAll(t, want)

	// Record boundaries, for deciding how many records survive a cut at n.
	bounds := []int{0}
	for _, r := range want {
		b, err := AppendRecord(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bounds[len(bounds)-1]+len(b))
	}

	for cut := 0; cut <= len(data); cut++ {
		recs, goodLen, err := ScanWAL(data[:cut])
		wantRecs := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				wantRecs++
			}
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut at %d: got %d records, want %d", cut, len(recs), wantRecs)
		}
		if goodLen != bounds[wantRecs] {
			t.Fatalf("cut at %d: goodLen = %d, want %d", cut, goodLen, bounds[wantRecs])
		}
		if cut == bounds[wantRecs] && err != nil {
			t.Fatalf("cut at record boundary %d reported error %v", cut, err)
		}
		if cut != bounds[wantRecs] && err == nil {
			t.Fatalf("cut at %d (mid-record) reported no error", cut)
		}
	}
}

// TestScanWALBitFlips flips each byte of a two-record WAL in turn: the scan
// must never accept a record whose bytes changed (CRC or structural check
// catches it) and never panic. A flip can only shorten the accepted prefix,
// with one benign exception: a flip inside the second record's *length
// prefix* that still ends exactly at the buffer edge... which CRC then
// rejects anyway — so strictly: flipping byte i invalidates the record
// containing i and everything after it.
func TestScanWALBitFlips(t *testing.T) {
	want := testRecords(t, 2)
	data := encodeAll(t, want)
	first, err := AppendRecord(nil, want[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		recs, goodLen, _ := ScanWAL(mut)
		if goodLen > len(mut) {
			t.Fatalf("flip at %d: goodLen %d beyond input %d", i, goodLen, len(mut))
		}
		inFirst := i < len(first)
		if inFirst && len(recs) > 0 && recs[0].ID == want[0].ID && recs[0].MutSeq == want[0].MutSeq {
			// The first record's bytes changed; accepting an identical
			// record means the flip was silently ignored.
			b, err := AppendRecord(nil, recs[0])
			if err == nil && string(b) == string(first) {
				t.Fatalf("flip at %d: corrupted first record accepted unchanged", i)
			}
		}
		if !inFirst && len(recs) > 2 {
			t.Fatalf("flip at %d: %d records from a 2-record WAL", i, len(recs))
		}
	}
}

func TestAppendRecordRejectsZeroFingerprint(t *testing.T) {
	if _, err := AppendRecord(nil, Record{MutSeq: 1, ID: "x"}); err == nil {
		t.Fatal("zero fingerprint accepted")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Errorf("always: %v %v", p, err)
	}
	if p, err := ParseFsyncPolicy("none"); err != nil || p != FsyncNone {
		t.Errorf("none: %v %v", p, err)
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
	if FsyncAlways.String() != "always" || FsyncNone.String() != "none" {
		t.Error("String round-trip broken")
	}
}
