package durable

import (
	"testing"
)

// Migration marks must round-trip byte-exactly through the WAL codec.
func TestMigrationMarkRoundTrip(t *testing.T) {
	want := []Record{
		{Kind: KindMigration, MutSeq: 7, Mig: &MigrationMark{Phase: MigImportBegin, Epoch: 3, Peer: "shard-1"}},
		{Kind: KindPut, MutSeq: 8, ID: "user-a", FP: testFP(t, 1, 2, 3)},
		{Kind: KindMigration, MutSeq: 8, Mig: &MigrationMark{Phase: MigImportDone, Epoch: 3, Peer: "shard-1", Users: 412}},
		{Kind: KindMigration, MutSeq: 8, Mig: &MigrationMark{Phase: MigRetireDone, Epoch: 3, Peer: "shard-2", Users: 9}},
	}
	data := encodeAll(t, want)
	got, goodLen, err := ScanWAL(data)
	if err != nil || goodLen != len(data) {
		t.Fatalf("scan of intact WAL: err=%v goodLen=%d want %d", err, goodLen, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.Kind || g.MutSeq != w.MutSeq {
			t.Fatalf("record %d = kind %d seq %d, want kind %d seq %d", i, g.Kind, g.MutSeq, w.Kind, w.MutSeq)
		}
		if w.Kind != KindMigration {
			continue
		}
		if g.Mig == nil || *g.Mig != *w.Mig {
			t.Fatalf("record %d mark = %+v, want %+v", i, g.Mig, w.Mig)
		}
	}
	// Re-encoding the decoded records must be byte-identical.
	if re := encodeAll(t, got); string(re) != string(data) {
		t.Fatal("re-encoded migration WAL differs from original bytes")
	}
}

func TestMigrationMarkRejectsBadPhase(t *testing.T) {
	if _, err := AppendRecord(nil, Record{Kind: KindMigration, Mig: &MigrationMark{Phase: 0}}); err == nil {
		t.Fatal("phase 0 accepted")
	}
	if _, err := AppendRecord(nil, Record{Kind: KindMigration}); err == nil {
		t.Fatal("nil mark accepted")
	}
}

// A begin mark with no matching done must surface as a pending migration
// at recovery; a matched pair must not.
func TestRecoveryPendingMigration(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(Options{Dir: dir, FS: OSFS{}, Fsync: FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(r Record) {
		t.Helper()
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(Record{Kind: KindPut, MutSeq: 1, ID: "u1", FP: testFP(t, 1)})
	appendRec(Record{Kind: KindMigration, MutSeq: 1, Mig: &MigrationMark{Phase: MigImportBegin, Epoch: 2, Peer: "shard-0"}})
	appendRec(Record{Kind: KindPut, MutSeq: 2, ID: "u2", FP: testFP(t, 2)})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(Options{Dir: dir, FS: OSFS{}, Fsync: FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Migration == nil || rec.Migration.Epoch != 2 || rec.Migration.From != "shard-0" {
		t.Fatalf("pending migration = %+v, want epoch 2 from shard-0", rec.Migration)
	}
	if len(rec.State.Users) != 2 {
		t.Fatalf("recovered %d users, want 2 (marks must not disturb state replay)", len(rec.State.Users))
	}
	// Close the import and verify recovery no longer reports it.
	if err := st2.Append(Record{Kind: KindMigration, MutSeq: 2,
		Mig: &MigrationMark{Phase: MigImportDone, Epoch: 2, Peer: "shard-0", Users: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := Open(Options{Dir: dir, FS: OSFS{}, Fsync: FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Migration != nil {
		t.Fatalf("pending migration = %+v after done mark, want nil", rec3.Migration)
	}
}
