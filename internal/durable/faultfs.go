package durable

import (
	"errors"
	"sync"
)

// ErrInjected is the default error returned by a triggered fault.
var ErrInjected = errors.New("durable: injected fault")

// ErrCrashed is returned by every operation after a FaultCrash fault fired:
// the process is "dead" as far as this FS handle is concerned, exactly like
// a SIGKILL between two syscalls.
var ErrCrashed = errors.New("durable: filesystem crashed (fault injection)")

// FaultMode selects what happens when the armed operation is reached.
type FaultMode int

const (
	// FaultError makes the armed mutation fail cleanly (ENOSPC-style): the
	// operation has no effect and returns ErrInjected.
	FaultError FaultMode = iota
	// FaultShortWrite makes the armed Write persist only the first half of
	// its buffer before failing — a torn write. Non-write operations fail
	// as FaultError.
	FaultShortWrite
	// FaultCrash behaves like FaultShortWrite on the armed operation and
	// then fails every subsequent operation with ErrCrashed, simulating a
	// power cut: whatever reached the underlying FS is all that survives.
	FaultCrash
)

// FaultFS wraps an FS and injects a fault on the Nth mutating operation
// (1-based). Reads (ReadDir, ReadFile, Size) are never counted or failed —
// recovery tests read through the wrapper after a "crash". Safe for
// concurrent use.
//
//	ffs := &FaultFS{Inner: durable.OSFS{}, FailAt: 7, Mode: durable.FaultCrash}
//
// Mutating operations, in counting order: MkdirAll, OpenAppend, Create,
// Rename, Remove, Truncate, SyncDir, File.Write, File.Sync, File.Close.
type FaultFS struct {
	Inner FS
	// FailAt arms the fault on the FailAt-th mutating operation; 0 never
	// fires.
	FailAt int
	// Mode selects the failure behavior (default FaultError).
	Mode FaultMode
	// Err overrides ErrInjected as the returned error when non-nil.
	Err error

	mu      sync.Mutex
	ops     int
	crashed bool
	fired   bool
}

// Ops returns how many mutating operations have been attempted so far —
// run a scenario once to count, then arm FailAt anywhere in [1, Ops()].
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Fired reports whether the armed fault has triggered.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// CrashNow makes every subsequent operation fail with ErrCrashed,
// independent of FailAt.
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

func (f *FaultFS) injected() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// step counts one mutating operation and reports whether it must fail.
func (f *FaultFS) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.FailAt > 0 && f.ops == f.FailAt {
		f.fired = true
		if f.Mode == FaultCrash {
			f.crashed = true
		}
		return f.injected()
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Inner.MkdirAll(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.Inner.ReadFile(name) }
func (f *FaultFS) Size(name string) (int64, error)      { return f.Inner.Size(name) }

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	file, err := f.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	file, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

// faultFile threads writes, syncs and closes through the parent's fault
// counter. A short-write fault persists the first half of the buffer to the
// underlying file — the torn tail recovery must cope with.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.step(); err != nil {
		if (f.fs.Mode == FaultShortWrite || f.fs.Mode == FaultCrash) && !errors.Is(err, ErrCrashed) && len(p) > 0 {
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.step(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if err := f.fs.step(); err != nil {
		// Close the real handle anyway so tests don't leak descriptors.
		f.inner.Close()
		return err
	}
	return f.inner.Close()
}
