package durable

import (
	"bytes"
	"testing"
)

// FuzzWALReplay hammers ScanWAL — the function every recovery and every
// torn-tail truncation trusts — with arbitrarily mutated WAL bytes. The
// invariants:
//
//   - never panics (the fuzz engine enforces this),
//   - never accepts bytes that fail their CRC: re-encoding the accepted
//     records must reproduce data[:goodLen] bit for bit,
//   - always accounts for every byte: goodLen + dropped == len(data),
//   - an intact stream round-trips with zero drop.
func FuzzWALReplay(f *testing.F) {
	valid := encodeAll(f, testRecords(f, 3))
	f.Add([]byte{})
	f.Add(valid)
	// Torn tails: cut inside the third record's payload, inside a header,
	// and one byte short.
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)*2/3])
	f.Add(valid[:5])
	// Bit flips in the length prefix, the CRC, and the payload.
	for _, i := range []int{0, 2, 5, 9, 20, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	// A huge forged length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5})
	// Garbage appended after a valid stream.
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, err := ScanWAL(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		dropped := len(data) - goodLen
		if err == nil && dropped != 0 {
			t.Fatalf("no error but %d bytes dropped", dropped)
		}
		if err != nil && dropped == 0 {
			t.Fatalf("error %v but zero bytes dropped", err)
		}
		// The accepted prefix is exactly the re-encoding of the accepted
		// records: nothing was accepted that the CRC (or structure) did not
		// vouch for.
		var re []byte
		for _, r := range recs {
			var aerr error
			re, aerr = AppendRecord(re, r)
			if aerr != nil {
				t.Fatalf("accepted record does not re-encode: %v", aerr)
			}
		}
		if !bytes.Equal(re, data[:goodLen]) {
			t.Fatalf("re-encoding %d accepted records (%d bytes) != accepted prefix (%d bytes)",
				len(recs), len(re), goodLen)
		}
	})
}
