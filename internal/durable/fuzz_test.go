package durable

import (
	"bytes"
	"testing"

	"goldfinger/internal/knn"
)

// FuzzWALReplay hammers ScanWAL — the function every recovery and every
// torn-tail truncation trusts — with arbitrarily mutated WAL bytes. The
// invariants:
//
//   - never panics (the fuzz engine enforces this),
//   - never accepts bytes that fail their CRC: re-encoding the accepted
//     records must reproduce data[:goodLen] bit for bit,
//   - always accounts for every byte: goodLen + dropped == len(data),
//   - an intact stream round-trips with zero drop.
func FuzzWALReplay(f *testing.F) {
	valid := encodeAll(f, testRecords(f, 3))
	f.Add([]byte{})
	f.Add(valid)
	// Torn tails: cut inside the third record's payload, inside a header,
	// and one byte short.
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)*2/3])
	f.Add(valid[:5])
	// Bit flips in the length prefix, the CRC, and the payload.
	for _, i := range []int{0, 2, 5, 9, 20, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	// A huge forged length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5})
	// Garbage appended after a valid stream.
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, err := ScanWAL(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		dropped := len(data) - goodLen
		if err == nil && dropped != 0 {
			t.Fatalf("no error but %d bytes dropped", dropped)
		}
		if err != nil && dropped == 0 {
			t.Fatalf("error %v but zero bytes dropped", err)
		}
		// The accepted prefix is exactly the re-encoding of the accepted
		// records: nothing was accepted that the CRC (or structure) did not
		// vouch for.
		var re []byte
		for _, r := range recs {
			var aerr error
			re, aerr = AppendRecord(re, r)
			if aerr != nil {
				t.Fatalf("accepted record does not re-encode: %v", aerr)
			}
		}
		if !bytes.Equal(re, data[:goodLen]) {
			t.Fatalf("re-encoding %d accepted records (%d bytes) != accepted prefix (%d bytes)",
				len(recs), len(re), goodLen)
		}
	})
}

// FuzzGraphDeltaReplay hammers the graph-delta half of recovery. A WAL
// stream interleaving legacy put/delete records with graph deltas is
// scanned, and every accepted delta is replayed onto a small epoch the way
// Open's warm-up does. Invariants:
//
//   - neither the scan nor the replay ever panics,
//   - byte accounting and CRC discipline hold exactly as in FuzzWALReplay
//     (graph deltas re-encode bit for bit),
//   - replay can never corrupt the epoch: after every accepted delta the
//     adjacency stays structurally sound — every neighbor in range, no
//     self-loops, and users/dead/adjacency in lock step. A delta the
//     validator rejects ends the warm-up (recovery falls back to the
//     stale-but-correct persisted graph), it never half-applies onward.
func FuzzGraphDeltaReplay(f *testing.F) {
	puts := testRecords(f, 3)
	adj := func(id int32, nbrs ...knn.Neighbor) knn.TouchedNode {
		return knn.TouchedNode{ID: id, Neighbors: nbrs}
	}
	recs := []Record{
		puts[0],
		{Kind: KindGraphDelta, MutSeq: 1, Delta: &GraphDelta{Op: DeltaInsert, Node: 0, Adj: []knn.TouchedNode{adj(0)}}},
		puts[1],
		{Kind: KindGraphDelta, MutSeq: 2, Delta: &GraphDelta{Op: DeltaInsert, Node: 1, Adj: []knn.TouchedNode{
			adj(1, knn.Neighbor{ID: 0, Sim: 0.75}),
			adj(0, knn.Neighbor{ID: 1, Sim: 0.75}),
		}}},
		puts[2],
		{Kind: KindGraphDelta, MutSeq: 3, Delta: &GraphDelta{Op: DeltaInsert, Node: 2, Adj: []knn.TouchedNode{
			adj(2, knn.Neighbor{ID: 0, Sim: 0.5}, knn.Neighbor{ID: 1, Sim: 0.25}),
			adj(1, knn.Neighbor{ID: 0, Sim: 0.75}, knn.Neighbor{ID: 2, Sim: 0.25}),
		}}},
		{Kind: KindDelete, MutSeq: 4, ID: "user-001"},
		{Kind: KindGraphDelta, MutSeq: 4, Delta: &GraphDelta{Op: DeltaDelete, Node: 1, Adj: []knn.TouchedNode{
			adj(2, knn.Neighbor{ID: 0, Sim: 0.5}),
		}}},
	}
	valid := encodeAll(f, recs)
	f.Add([]byte{})
	f.Add(valid)
	// Torn tails: inside the last delta, inside a header, one byte short.
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)*3/4])
	f.Add(valid[:len(valid)/3])
	// Bit flips sweeping headers, ops, node ids, counts and sim bits.
	for i := 0; i < len(valid); i += 37 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	// A forged huge adjacency count inside an otherwise valid stream, and
	// a forged record length.
	f.Add(append(append([]byte(nil), valid...), 0xff, 0xff, 0xff, 0x7f, 3, 0, 0, 0))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 9, 9, 9, 9, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, err := ScanWAL(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		if dropped := len(data) - goodLen; (err == nil) != (dropped == 0) {
			t.Fatalf("err=%v but %d bytes dropped", err, dropped)
		}
		var re []byte
		for _, r := range recs {
			var aerr error
			re, aerr = AppendRecord(re, r)
			if aerr != nil {
				t.Fatalf("accepted record does not re-encode: %v", aerr)
			}
		}
		if !bytes.Equal(re, data[:goodLen]) {
			t.Fatalf("re-encoding %d accepted records != accepted prefix", len(recs))
		}

		// Replay the accepted deltas onto an empty epoch the way recovery
		// warms a graph, stopping at the first rejected delta.
		users := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}
		ep := &EpochData{K: 2, Graph: &knn.Graph{K: 2}}
		for _, r := range recs {
			if r.Kind != KindGraphDelta {
				continue
			}
			if aerr := applyDeltaToEpoch(ep, r.Delta, users); aerr != nil {
				break
			}
			n := len(ep.Graph.Neighbors)
			if len(ep.Users) != n || len(ep.Dead) != n {
				t.Fatalf("epoch out of lock step: %d nodes, %d users, %d dead flags",
					n, len(ep.Users), len(ep.Dead))
			}
			for u, nbrs := range ep.Graph.Neighbors {
				for _, nb := range nbrs {
					if int(nb.ID) < 0 || int(nb.ID) >= n {
						t.Fatalf("node %d references out-of-range neighbor %d (n=%d)", u, nb.ID, n)
					}
					if int(nb.ID) == u {
						t.Fatalf("node %d acquired a self-loop", u)
					}
				}
			}
		}
	})
}
