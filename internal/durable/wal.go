package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"goldfinger/internal/core"
)

// The WAL is a flat stream of self-checking records — no file header, so a
// segment truncated at any byte is still a valid (shorter) WAL:
//
//	uint32 payloadLen | uint32 crc32c(payload) | payload
//
// payload:
//
//	uint8 recPut | uint64 mutSeq | uint32 idLen | id | fingerprint (core codec)
//
// All integers little-endian. CRC-32C (Castagnoli) is hardware-accelerated
// on amd64/arm64. mutSeq is the server's mutation counter value the record
// establishes; replay applies records in order and skips any whose mutSeq
// is already covered by the snapshot being replayed over.

// crcTable is the Castagnoli polynomial table shared by WAL records and
// snapshot trailers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	recPut = 1 // fingerprint put (insert or overwrite)

	walHeaderBytes = 8
	// maxWALPayload bounds one record so a corrupt length prefix cannot
	// drive a multi-gigabyte allocation during replay. 64 MiB is orders of
	// magnitude above any real record (id ≤ 4 KiB + one fingerprint).
	maxWALPayload = 1 << 26
)

// Record is one durable mutation: user ID got fingerprint FP, moving the
// mutation counter to MutSeq.
type Record struct {
	MutSeq uint64
	ID     string
	FP     core.Fingerprint
}

// AppendRecord serializes rec onto buf and returns the extended slice.
func AppendRecord(buf []byte, rec Record) ([]byte, error) {
	var payload bytes.Buffer
	payload.WriteByte(recPut)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], rec.MutSeq)
	payload.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(rec.ID)))
	payload.Write(u32[:])
	payload.WriteString(rec.ID)
	if err := core.WriteFingerprint(&payload, rec.FP); err != nil {
		return nil, fmt.Errorf("durable: encoding WAL fingerprint: %w", err)
	}
	if payload.Len() > maxWALPayload {
		return nil, fmt.Errorf("durable: WAL record payload is %d bytes, max %d", payload.Len(), maxWALPayload)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(payload.Len()))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(payload.Bytes(), crcTable))
	buf = append(buf, u32[:]...)
	return append(buf, payload.Bytes()...), nil
}

// decodeRecordPayload parses one CRC-verified payload. The payload must be
// consumed exactly: trailing bytes mean a corrupt record even if the prefix
// parses.
func decodeRecordPayload(payload []byte) (Record, error) {
	r := bytes.NewReader(payload)
	kind, err := r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("durable: empty WAL payload")
	}
	if kind != recPut {
		return Record{}, fmt.Errorf("durable: unknown WAL record type %d", kind)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, fmt.Errorf("durable: short WAL record header: %w", err)
	}
	mutSeq := binary.LittleEndian.Uint64(hdr[0:8])
	idLen := binary.LittleEndian.Uint32(hdr[8:12])
	if int64(idLen) > int64(r.Len()) {
		return Record{}, fmt.Errorf("durable: WAL id length %d exceeds payload", idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(r, id); err != nil {
		return Record{}, fmt.Errorf("durable: reading WAL id: %w", err)
	}
	fp, err := core.ReadFingerprint(r)
	if err != nil {
		return Record{}, fmt.Errorf("durable: reading WAL fingerprint: %w", err)
	}
	if r.Len() != 0 {
		return Record{}, fmt.Errorf("durable: %d trailing bytes in WAL payload", r.Len())
	}
	return Record{MutSeq: mutSeq, ID: string(id), FP: fp}, nil
}

// ScanWAL parses a WAL byte stream into the longest prefix of valid
// records. It returns the records, the byte length of that prefix, and the
// error that terminated the scan (nil when the whole stream parsed). A
// record is accepted only if its length prefix is plausible, its CRC-32C
// matches, and its payload decodes exactly; the first failure ends the scan
// — everything after it is a torn tail of len(data)-goodLen bytes.
//
// ScanWAL never panics and never allocates proportionally to a corrupt
// length prefix.
func ScanWAL(data []byte) (recs []Record, goodLen int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walHeaderBytes {
			return recs, off, fmt.Errorf("durable: torn record header (%d bytes)", len(rest))
		}
		payloadLen := binary.LittleEndian.Uint32(rest[0:4])
		if payloadLen > maxWALPayload {
			return recs, off, fmt.Errorf("durable: implausible record length %d", payloadLen)
		}
		if int(payloadLen) > len(rest)-walHeaderBytes {
			return recs, off, fmt.Errorf("durable: torn record payload (%d of %d bytes)",
				len(rest)-walHeaderBytes, payloadLen)
		}
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[walHeaderBytes : walHeaderBytes+int(payloadLen)]
		if got := crc32.Checksum(payload, crcTable); got != wantCRC {
			return recs, off, fmt.Errorf("durable: record CRC mismatch (want %08x, got %08x)", wantCRC, got)
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			return recs, off, derr
		}
		recs = append(recs, rec)
		off += walHeaderBytes + int(payloadLen)
	}
	return recs, off, nil
}

// wal is the open, append-only active segment. Not safe for concurrent use;
// the Store serializes access.
type wal struct {
	fsys  FS
	path  string
	file  File
	fsync FsyncPolicy
	bytes int64
	recs  int64
}

// openWAL opens (or creates) the segment at path for appending.
func openWAL(fsys FS, path string, fsync FsyncPolicy) (*wal, error) {
	size, err := fsys.Size(path)
	if err != nil {
		if !notExist(err) {
			return nil, fmt.Errorf("durable: sizing WAL %s: %w", path, err)
		}
		size = 0
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("durable: opening WAL %s: %w", path, err)
	}
	return &wal{fsys: fsys, path: path, file: f, fsync: fsync, bytes: size}, nil
}

// append writes one record and, under FsyncAlways, fsyncs it. On any error
// the segment must be considered torn: the caller flips to degraded mode.
// Reports whether an fsync was issued.
func (w *wal) append(rec Record) (synced bool, err error) {
	buf, err := AppendRecord(nil, rec)
	if err != nil {
		return false, err
	}
	if _, err := w.file.Write(buf); err != nil {
		return false, fmt.Errorf("durable: appending WAL record: %w", err)
	}
	w.bytes += int64(len(buf))
	w.recs++
	if w.fsync == FsyncAlways {
		if err := w.file.Sync(); err != nil {
			return false, fmt.Errorf("durable: fsyncing WAL: %w", err)
		}
		return true, nil
	}
	return false, nil
}

// seal fsyncs and closes the segment; the segment is complete and will
// never be written again.
func (w *wal) seal() error {
	err := w.file.Sync()
	if cerr := w.file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: sealing WAL %s: %w", w.path, err)
	}
	return nil
}

// FsyncPolicy controls when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every appended record: an acked PUT survives
	// a power cut. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncNone never fsyncs on the append path (segments are still synced
	// when sealed): an acked PUT survives a process crash but the tail may
	// be lost to a power cut. Recovery handles the torn tail either way.
	FsyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values "always" and "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, errors.New(`durable: fsync policy must be "always" or "none"`)
	}
}
