package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
)

// The WAL is a flat stream of self-checking records — no file header, so a
// segment truncated at any byte is still a valid (shorter) WAL:
//
//	uint32 payloadLen | uint32 crc32c(payload) | payload
//
// payload, by leading kind byte:
//
//	recPut        | uint64 mutSeq | uint32 idLen | id | fingerprint (core codec)
//	recDelete     | uint64 mutSeq | uint32 idLen | id
//	recGraphDelta | uint64 mutSeq | uint8 op | uint32 node | uint32 adjCount |
//	                adjCount × (uint32 node | uint32 nbrCount |
//	                            nbrCount × (uint32 id | uint64 simBits))
//	recMigration  | uint64 mutSeq | uint8 phase | uint64 ringEpoch |
//	                uint32 users | uint32 peerLen | peer
//
// All integers little-endian; similarities are IEEE-754 bit patterns so
// decode→encode is byte-exact. CRC-32C (Castagnoli) is hardware-accelerated
// on amd64/arm64. mutSeq is the server's mutation counter value the record
// establishes; replay applies records in order and skips any whose mutSeq
// is already covered by the snapshot being replayed over. A graph-delta
// record rides behind the put/delete that caused it (same mutSeq): it
// carries the full post-mutation KNN adjacency of every node the mutation
// touched, so recovery replays it onto the persisted epoch graph verbatim
// — a warm graph instead of "replay + rebuild". Structural bounds are
// enforced at decode; semantic bounds (node indices vs. the epoch graph)
// at apply time.

// crcTable is the Castagnoli polynomial table shared by WAL records and
// snapshot trailers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecordKind discriminates WAL record payloads. The zero value is
// normalized to KindPut on encode so pre-existing Record literals keep
// meaning what they meant.
type RecordKind uint8

const (
	KindPut        RecordKind = recPut
	KindDelete     RecordKind = recDelete
	KindGraphDelta RecordKind = recGraphDelta
	KindMigration  RecordKind = recMigration
)

const (
	recPut        = 1 // fingerprint put (insert or overwrite)
	recDelete     = 2 // user tombstone
	recGraphDelta = 3 // post-mutation KNN adjacencies of the touched nodes
	recMigration  = 4 // shard-migration handoff journal mark

	walHeaderBytes = 8
	// maxWALPayload bounds one record so a corrupt length prefix cannot
	// drive a multi-gigabyte allocation during replay. 64 MiB is orders of
	// magnitude above any real record (id ≤ 4 KiB + one fingerprint).
	maxWALPayload = 1 << 26
	// maxDeltaTouched bounds the node count of one graph delta: a real
	// mutation touches at most the degree cap plus its repairs, far under
	// this.
	maxDeltaTouched = 1 << 16
)

// DeltaOp is the mutation class a graph delta records.
type DeltaOp uint8

const (
	DeltaInsert    DeltaOp = 1
	DeltaOverwrite DeltaOp = 2
	DeltaDelete    DeltaOp = 3
)

// GraphDelta is the graph half of one mutation: the full post-mutation
// KNN adjacency of every touched node. Replay assigns the adjacencies
// verbatim (knn.ApplyTouched), so a warm-recovered graph is bit-identical
// to the live one the delta was captured from.
type GraphDelta struct {
	Op   DeltaOp
	Node int32 // the mutated node
	Adj  []knn.TouchedNode
}

// MigPhase is the handoff step a migration mark journals.
type MigPhase uint8

const (
	// MigImportBegin is journaled by the gaining shard before it pulls the
	// first user of a ring-change import. A begin without a matching done
	// after recovery means the import was interrupted and must be resumed
	// (re-importing is idempotent: puts are keyed by user id).
	MigImportBegin MigPhase = 1
	// MigImportDone is journaled by the gaining shard after every moved
	// user has been applied through the WAL.
	MigImportDone MigPhase = 2
	// MigRetireDone is journaled by the losing shard after tombstoning the
	// users it handed off (the tombstones themselves are ordinary delete
	// records ahead of this mark).
	MigRetireDone MigPhase = 3
)

// MigrationMark journals one step of a shard-to-shard data handoff so a
// crash mid-migration is visible at recovery. Marks do not mutate user
// state; they ride the WAL for ordering and durability.
type MigrationMark struct {
	Phase MigPhase
	Epoch uint64 // ring epoch the handoff belongs to
	Peer  string // other side of the handoff: from-shard on import, to-shard on retire
	Users uint32 // users transferred/retired (0 on begin)
}

// Record is one durable mutation. KindPut carries ID+FP, KindDelete
// carries ID, KindGraphDelta carries Delta, KindMigration carries Mig;
// MutSeq is the mutation counter value the record establishes (for
// migration marks: the counter value at journal time, unchanged).
type Record struct {
	Kind   RecordKind
	MutSeq uint64
	ID     string
	FP     core.Fingerprint
	Delta  *GraphDelta
	Mig    *MigrationMark
}

// AppendRecord serializes rec onto buf and returns the extended slice.
func AppendRecord(buf []byte, rec Record) ([]byte, error) {
	kind := rec.Kind
	if kind == 0 {
		kind = KindPut
	}
	var payload bytes.Buffer
	payload.WriteByte(byte(kind))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], rec.MutSeq)
	payload.Write(u64[:])
	var u32 [4]byte
	switch kind {
	case KindPut:
		binary.LittleEndian.PutUint32(u32[:], uint32(len(rec.ID)))
		payload.Write(u32[:])
		payload.WriteString(rec.ID)
		if err := core.WriteFingerprint(&payload, rec.FP); err != nil {
			return nil, fmt.Errorf("durable: encoding WAL fingerprint: %w", err)
		}
	case KindDelete:
		binary.LittleEndian.PutUint32(u32[:], uint32(len(rec.ID)))
		payload.Write(u32[:])
		payload.WriteString(rec.ID)
	case KindGraphDelta:
		d := rec.Delta
		if d == nil {
			return nil, fmt.Errorf("durable: graph-delta record has no delta")
		}
		if d.Op < DeltaInsert || d.Op > DeltaDelete {
			return nil, fmt.Errorf("durable: unknown graph-delta op %d", d.Op)
		}
		if d.Node < 0 {
			return nil, fmt.Errorf("durable: graph delta for negative node %d", d.Node)
		}
		if len(d.Adj) > maxDeltaTouched {
			return nil, fmt.Errorf("durable: graph delta touches %d nodes, max %d", len(d.Adj), maxDeltaTouched)
		}
		payload.WriteByte(byte(d.Op))
		binary.LittleEndian.PutUint32(u32[:], uint32(d.Node))
		payload.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(d.Adj)))
		payload.Write(u32[:])
		for _, tn := range d.Adj {
			if tn.ID < 0 {
				return nil, fmt.Errorf("durable: graph delta touches negative node %d", tn.ID)
			}
			binary.LittleEndian.PutUint32(u32[:], uint32(tn.ID))
			payload.Write(u32[:])
			binary.LittleEndian.PutUint32(u32[:], uint32(len(tn.Neighbors)))
			payload.Write(u32[:])
			for _, nb := range tn.Neighbors {
				binary.LittleEndian.PutUint32(u32[:], uint32(nb.ID))
				payload.Write(u32[:])
				binary.LittleEndian.PutUint64(u64[:], math.Float64bits(nb.Sim))
				payload.Write(u64[:])
			}
		}
	case KindMigration:
		m := rec.Mig
		if m == nil {
			return nil, fmt.Errorf("durable: migration record has no mark")
		}
		if m.Phase < MigImportBegin || m.Phase > MigRetireDone {
			return nil, fmt.Errorf("durable: unknown migration phase %d", m.Phase)
		}
		payload.WriteByte(byte(m.Phase))
		binary.LittleEndian.PutUint64(u64[:], m.Epoch)
		payload.Write(u64[:])
		binary.LittleEndian.PutUint32(u32[:], m.Users)
		payload.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(m.Peer)))
		payload.Write(u32[:])
		payload.WriteString(m.Peer)
	default:
		return nil, fmt.Errorf("durable: unknown WAL record kind %d", kind)
	}
	if payload.Len() > maxWALPayload {
		return nil, fmt.Errorf("durable: WAL record payload is %d bytes, max %d", payload.Len(), maxWALPayload)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(payload.Len()))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(payload.Bytes(), crcTable))
	buf = append(buf, u32[:]...)
	return append(buf, payload.Bytes()...), nil
}

// decodeRecordPayload parses one CRC-verified payload. The payload must be
// consumed exactly: trailing bytes mean a corrupt record even if the prefix
// parses.
func decodeRecordPayload(payload []byte) (Record, error) {
	r := bytes.NewReader(payload)
	kind, err := r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("durable: empty WAL payload")
	}
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return Record{}, fmt.Errorf("durable: short WAL record header: %w", err)
	}
	rec := Record{Kind: RecordKind(kind), MutSeq: binary.LittleEndian.Uint64(u64[:])}
	readID := func() (string, error) {
		var u32 [4]byte
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return "", fmt.Errorf("durable: short WAL record header: %w", err)
		}
		idLen := binary.LittleEndian.Uint32(u32[:])
		if int64(idLen) > int64(r.Len()) {
			return "", fmt.Errorf("durable: WAL id length %d exceeds payload", idLen)
		}
		id := make([]byte, idLen)
		if _, err := io.ReadFull(r, id); err != nil {
			return "", fmt.Errorf("durable: reading WAL id: %w", err)
		}
		return string(id), nil
	}
	switch RecordKind(kind) {
	case KindPut:
		if rec.ID, err = readID(); err != nil {
			return Record{}, err
		}
		if rec.FP, err = core.ReadFingerprint(r); err != nil {
			return Record{}, fmt.Errorf("durable: reading WAL fingerprint: %w", err)
		}
	case KindDelete:
		if rec.ID, err = readID(); err != nil {
			return Record{}, err
		}
	case KindGraphDelta:
		if rec.Delta, err = decodeGraphDelta(r); err != nil {
			return Record{}, err
		}
	case KindMigration:
		var u32 [4]byte
		phase, perr := r.ReadByte()
		if perr != nil {
			return Record{}, fmt.Errorf("durable: short migration mark: %w", perr)
		}
		if MigPhase(phase) < MigImportBegin || MigPhase(phase) > MigRetireDone {
			return Record{}, fmt.Errorf("durable: unknown migration phase %d", phase)
		}
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return Record{}, fmt.Errorf("durable: short migration mark: %w", err)
		}
		m := &MigrationMark{Phase: MigPhase(phase), Epoch: binary.LittleEndian.Uint64(u64[:])}
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return Record{}, fmt.Errorf("durable: short migration mark: %w", err)
		}
		m.Users = binary.LittleEndian.Uint32(u32[:])
		if m.Peer, err = readID(); err != nil {
			return Record{}, err
		}
		rec.Mig = m
	default:
		return Record{}, fmt.Errorf("durable: unknown WAL record type %d", kind)
	}
	if r.Len() != 0 {
		return Record{}, fmt.Errorf("durable: %d trailing bytes in WAL payload", r.Len())
	}
	return rec, nil
}

// decodeGraphDelta parses the graph-delta payload body. Counts are bounded
// against the remaining payload before any allocation, so a forged count
// cannot drive a large allocation; similarities must be valid Jaccard
// values ([0,1]) so a bit flip in a sim cannot survive into a served
// graph.
func decodeGraphDelta(r *bytes.Reader) (*GraphDelta, error) {
	var u32 [4]byte
	var u64 [8]byte
	op, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("durable: short graph delta: %w", err)
	}
	if DeltaOp(op) < DeltaInsert || DeltaOp(op) > DeltaDelete {
		return nil, fmt.Errorf("durable: unknown graph-delta op %d", op)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("durable: short graph delta: %w", err)
	}
	node := binary.LittleEndian.Uint32(u32[:])
	if node > math.MaxInt32 {
		return nil, fmt.Errorf("durable: graph-delta node %d overflows int32", node)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("durable: short graph delta: %w", err)
	}
	adjCount := binary.LittleEndian.Uint32(u32[:])
	if adjCount > maxDeltaTouched || int64(adjCount)*8 > int64(r.Len()) {
		return nil, fmt.Errorf("durable: implausible graph-delta node count %d", adjCount)
	}
	d := &GraphDelta{Op: DeltaOp(op), Node: int32(node), Adj: make([]knn.TouchedNode, 0, adjCount)}
	for i := uint32(0); i < adjCount; i++ {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("durable: short graph delta: %w", err)
		}
		id := binary.LittleEndian.Uint32(u32[:])
		if id > math.MaxInt32 {
			return nil, fmt.Errorf("durable: graph-delta touched node %d overflows int32", id)
		}
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("durable: short graph delta: %w", err)
		}
		nbrCount := binary.LittleEndian.Uint32(u32[:])
		if nbrCount > maxSnapshotNeighbors || int64(nbrCount)*12 > int64(r.Len()) {
			return nil, fmt.Errorf("durable: implausible graph-delta neighborhood size %d at node %d", nbrCount, id)
		}
		nbrs := make([]knn.Neighbor, nbrCount)
		for j := range nbrs {
			if _, err := io.ReadFull(r, u32[:]); err != nil {
				return nil, fmt.Errorf("durable: short graph delta: %w", err)
			}
			nid := binary.LittleEndian.Uint32(u32[:])
			if nid > math.MaxInt32 {
				return nil, fmt.Errorf("durable: graph-delta neighbor %d overflows int32", nid)
			}
			if _, err := io.ReadFull(r, u64[:]); err != nil {
				return nil, fmt.Errorf("durable: short graph delta: %w", err)
			}
			sim := math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
			if !(sim >= 0 && sim <= 1) {
				return nil, fmt.Errorf("durable: graph-delta similarity %v out of [0,1]", sim)
			}
			nbrs[j] = knn.Neighbor{ID: int32(nid), Sim: sim}
		}
		d.Adj = append(d.Adj, knn.TouchedNode{ID: int32(id), Neighbors: nbrs})
	}
	return d, nil
}

// ScanWAL parses a WAL byte stream into the longest prefix of valid
// records. It returns the records, the byte length of that prefix, and the
// error that terminated the scan (nil when the whole stream parsed). A
// record is accepted only if its length prefix is plausible, its CRC-32C
// matches, and its payload decodes exactly; the first failure ends the scan
// — everything after it is a torn tail of len(data)-goodLen bytes.
//
// ScanWAL never panics and never allocates proportionally to a corrupt
// length prefix.
func ScanWAL(data []byte) (recs []Record, goodLen int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walHeaderBytes {
			return recs, off, fmt.Errorf("durable: torn record header (%d bytes)", len(rest))
		}
		payloadLen := binary.LittleEndian.Uint32(rest[0:4])
		if payloadLen > maxWALPayload {
			return recs, off, fmt.Errorf("durable: implausible record length %d", payloadLen)
		}
		if int(payloadLen) > len(rest)-walHeaderBytes {
			return recs, off, fmt.Errorf("durable: torn record payload (%d of %d bytes)",
				len(rest)-walHeaderBytes, payloadLen)
		}
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[walHeaderBytes : walHeaderBytes+int(payloadLen)]
		if got := crc32.Checksum(payload, crcTable); got != wantCRC {
			return recs, off, fmt.Errorf("durable: record CRC mismatch (want %08x, got %08x)", wantCRC, got)
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			return recs, off, derr
		}
		recs = append(recs, rec)
		off += walHeaderBytes + int(payloadLen)
	}
	return recs, off, nil
}

// wal is the open, append-only active segment. Not safe for concurrent use;
// the Store serializes access.
type wal struct {
	fsys  FS
	path  string
	file  File
	fsync FsyncPolicy
	bytes int64
	recs  int64
}

// openWAL opens (or creates) the segment at path for appending.
func openWAL(fsys FS, path string, fsync FsyncPolicy) (*wal, error) {
	size, err := fsys.Size(path)
	if err != nil {
		if !notExist(err) {
			return nil, fmt.Errorf("durable: sizing WAL %s: %w", path, err)
		}
		size = 0
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("durable: opening WAL %s: %w", path, err)
	}
	return &wal{fsys: fsys, path: path, file: f, fsync: fsync, bytes: size}, nil
}

// append writes one record and, under FsyncAlways, fsyncs it. On any error
// the segment must be considered torn: the caller flips to degraded mode.
// Reports whether an fsync was issued.
func (w *wal) append(rec Record) (synced bool, err error) {
	buf, err := AppendRecord(nil, rec)
	if err != nil {
		return false, err
	}
	if _, err := w.file.Write(buf); err != nil {
		return false, fmt.Errorf("durable: appending WAL record: %w", err)
	}
	w.bytes += int64(len(buf))
	w.recs++
	if w.fsync == FsyncAlways {
		if err := w.file.Sync(); err != nil {
			return false, fmt.Errorf("durable: fsyncing WAL: %w", err)
		}
		return true, nil
	}
	return false, nil
}

// seal fsyncs and closes the segment; the segment is complete and will
// never be written again.
func (w *wal) seal() error {
	err := w.file.Sync()
	if cerr := w.file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: sealing WAL %s: %w", w.path, err)
	}
	return nil
}

// FsyncPolicy controls when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every appended record: an acked PUT survives
	// a power cut. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncNone never fsyncs on the append path (segments are still synced
	// when sealed): an acked PUT survives a process crash but the tail may
	// be lost to a power cut. Recovery handles the torn tail either way.
	FsyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values "always" and "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, errors.New(`durable: fsync policy must be "always" or "none"`)
	}
}
