// Package durable makes the KNN service's state survive crashes: an
// append-only write-ahead log of fingerprint mutations, checksummed
// snapshots of the corpus and of the latest graph epoch, and a recovery
// path that reassembles everything on startup.
//
// # Durability protocol
//
// State lives in one data directory:
//
//	wal-<gen>.log      append-only mutation log segments (CRC-32C per record)
//	state-<gen>.snap   checksummed snapshot of the user table + fingerprints
//	epoch.snap         checksummed snapshot of the latest graph epoch
//
// Every accepted fingerprint PUT is appended to the active WAL segment —
// and, under FsyncAlways, fsynced — before the client is acked, so an acked
// write survives a crash. Compaction seals the active segment, starts
// generation gen+1, writes state-<gen+1>.snap covering every sealed
// segment, and only then deletes segments ≤ gen; a crash at any point
// leaves either the old snapshot plus its segments or the new snapshot, in
// both cases a complete prefix of acked writes.
//
// Recovery loads the newest snapshot whose checksum verifies (corrupt ones
// are quarantined as *.corrupt, never deleted), then replays every WAL
// segment of that generation and later in order. A torn record — short
// header, implausible length, CRC mismatch, or undecodable payload —
// truncates the segment at the last good record: everything before it is
// kept, the dropped byte count is logged and exported, and recovery never
// panics on arbitrary bytes.
//
// All file operations go through the FS interface so the fault-injection
// wrapper (FaultFS) can exercise torn writes, ENOSPC and crash points in
// tests; production uses OSFS.
package durable

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the WAL and snapshot writers need.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem surface the durable store runs on. OSFS is the real
// implementation; FaultFS wraps any FS to inject torn writes and errors.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the names (not paths) of the directory entries,
	// sorted lexically.
	ReadDir(dir string) ([]string, error)
	ReadFile(name string) ([]byte, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create opens name truncated to zero length, creating it if absent.
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// Truncate shortens name to size bytes (used to cut a torn WAL tail).
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory so a completed rename survives a crash.
	SyncDir(dir string) error
	// Size returns the length of name in bytes.
	Size(name string) (int64, error)
}

// OSFS is the production FS backed by the os package.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OSFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// notExist reports whether err means the file is absent, for FS
// implementations layered over the os package.
func notExist(err error) bool { return err != nil && (os.IsNotExist(err) || err == fs.ErrNotExist) }

// quarantine renames name out of the recovery path as name.corrupt (with a
// numeric suffix if that name is taken) so a corrupt file is preserved for
// forensics instead of being retried or deleted. Best-effort: an FS error
// is returned but the caller treats quarantine failure as non-fatal.
func quarantine(fsys FS, name string) (string, error) {
	dst := name + ".corrupt"
	for i := 1; ; i++ {
		if _, err := fsys.Size(dst); notExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.corrupt.%d", name, i)
		if i > 100 {
			break // give up on uniqueness; overwrite
		}
	}
	if err := fsys.Rename(name, dst); err != nil {
		return "", err
	}
	return filepath.Base(dst), nil
}
