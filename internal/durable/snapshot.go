package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
)

// Snapshots are single files with a 4-byte magic, a binary payload, and a
// CRC-32C trailer over everything before it. They are written to a temp
// file, fsynced, atomically renamed into place, and the directory is
// fsynced — a reader either sees the complete old file or the complete new
// one, and the trailer catches torn or bit-rotted content.

var (
	stateMagicV1 = [4]byte{'G', 'F', 'S', '1'} // user table + fingerprints
	epochMagicV1 = [4]byte{'G', 'F', 'E', '1'} // latest graph epoch
	stateMagic   = [4]byte{'G', 'F', 'S', '2'} // v1 + tombstone bitmap
	epochMagic   = [4]byte{'G', 'F', 'E', '2'} // v1 + tombstone bitmap
)

// maxSnapshotNeighbors bounds one serialized neighborhood so a corrupt
// count cannot drive a huge allocation.
const maxSnapshotNeighbors = 1 << 20

// State is the durable image of the service's mutable state: the dense
// user table, the fingerprint per user, the tombstone per user, and the
// mutation counter the set was captured at. Deleted users keep their slot
// (IDs are positional and append-only); nil Deleted means none.
type State struct {
	Users   []string
	FPS     []core.Fingerprint
	Deleted []bool
	MutSeq  uint64
}

// EpochData is the durable image of one published graph epoch — everything
// the service needs to re-serve the epoch after a restart. It embeds its
// own user table: the epoch pins the user set it was built from, which may
// be a strict prefix of the recovered state's.
type EpochData struct {
	Seq       int64
	K         int
	Algorithm string
	BuiltAt   time.Time
	Duration  time.Duration
	Stats     knn.Stats
	MutSeq    uint64
	Users     []string
	Graph     *knn.Graph
	// Dead marks tombstoned nodes of an online-maintained epoch; nil means
	// none. Always the same length as Users when non-nil.
	Dead []bool
}

// sealSnapshot prepends magic and appends the CRC-32C trailer.
func sealSnapshot(magic [4]byte, payload []byte) []byte {
	out := make([]byte, 0, 4+len(payload)+4)
	out = append(out, magic[:]...)
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(out, crcTable))
	return append(out, crc[:]...)
}

// openSnapshot verifies magic and trailer and returns the payload.
func openSnapshot(magic [4]byte, data []byte) ([]byte, error) {
	payload, _, err := openSnapshotAny(data, magic)
	return payload, err
}

// openSnapshotAny accepts any of the given magics (format versions) and
// returns the payload plus the magic that matched.
func openSnapshotAny(data []byte, magics ...[4]byte) ([]byte, [4]byte, error) {
	if len(data) < 8 {
		return nil, [4]byte{}, fmt.Errorf("durable: snapshot is %d bytes, too short", len(data))
	}
	var matched [4]byte
	found := false
	for _, m := range magics {
		if bytes.Equal(data[:4], m[:]) {
			matched, found = m, true
			break
		}
	}
	if !found {
		return nil, [4]byte{}, fmt.Errorf("durable: bad snapshot magic %q (want %q)", data[:4], magics[len(magics)-1][:])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, [4]byte{}, fmt.Errorf("durable: snapshot CRC mismatch (want %08x, got %08x)", want, got)
	}
	return body[4:], matched, nil
}

// writeBitmap appends a length-prefixed, bit-packed bool slice.
func writeBitmap(buf *bytes.Buffer, bits []bool) {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(bits)))
	buf.Write(u32[:])
	packed := make([]byte, (len(bits)+7)/8)
	for i, set := range bits {
		if set {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	buf.Write(packed)
}

// readBitmap reads a bitmap that must describe exactly want entries.
func readBitmap(r *bytes.Reader, want int) ([]bool, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("durable: reading bitmap length: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if int64(n) != int64(want) {
		return nil, fmt.Errorf("durable: bitmap describes %d entries, want %d", n, want)
	}
	packed := make([]byte, (want+7)/8)
	if _, err := io.ReadFull(r, packed); err != nil {
		return nil, fmt.Errorf("durable: reading bitmap: %w", err)
	}
	bits := make([]bool, want)
	for i := range bits {
		bits[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	return bits, nil
}

// encodeState serializes a state snapshot.
func encodeState(st State) ([]byte, error) {
	if len(st.Users) != len(st.FPS) {
		return nil, fmt.Errorf("durable: %d users but %d fingerprints", len(st.Users), len(st.FPS))
	}
	deleted := st.Deleted
	if deleted == nil {
		deleted = make([]bool, len(st.Users))
	}
	if len(deleted) != len(st.Users) {
		return nil, fmt.Errorf("durable: %d users but %d tombstone flags", len(st.Users), len(deleted))
	}
	var buf bytes.Buffer
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], st.MutSeq)
	buf.Write(u64[:])
	if err := core.WriteUserTable(&buf, st.Users); err != nil {
		return nil, err
	}
	if err := core.WriteFingerprintSet(&buf, st.FPS); err != nil {
		return nil, err
	}
	writeBitmap(&buf, deleted)
	return sealSnapshot(stateMagic, buf.Bytes()), nil
}

// decodeState parses a state snapshot, verifying checksum and structure.
func decodeState(data []byte) (State, error) {
	payload, magic, err := openSnapshotAny(data, stateMagicV1, stateMagic)
	if err != nil {
		return State{}, err
	}
	r := bytes.NewReader(payload)
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return State{}, fmt.Errorf("durable: reading state mutSeq: %w", err)
	}
	st := State{MutSeq: binary.LittleEndian.Uint64(u64[:])}
	if st.Users, err = core.ReadUserTable(r); err != nil {
		return State{}, err
	}
	if st.FPS, err = core.ReadFingerprintSet(r); err != nil {
		return State{}, err
	}
	if len(st.Users) != len(st.FPS) {
		return State{}, fmt.Errorf("durable: state has %d users but %d fingerprints", len(st.Users), len(st.FPS))
	}
	if magic == stateMagic {
		if st.Deleted, err = readBitmap(r, len(st.Users)); err != nil {
			return State{}, err
		}
	} else {
		st.Deleted = make([]bool, len(st.Users)) // v1 snapshots predate deletes
	}
	if r.Len() != 0 {
		return State{}, fmt.Errorf("durable: %d trailing bytes in state snapshot", r.Len())
	}
	return st, nil
}

// encodeEpoch serializes an epoch snapshot.
func encodeEpoch(ep EpochData) ([]byte, error) {
	if ep.Graph == nil {
		return nil, fmt.Errorf("durable: epoch has no graph")
	}
	if ep.Graph.NumUsers() != len(ep.Users) {
		return nil, fmt.Errorf("durable: epoch graph has %d nodes but %d users",
			ep.Graph.NumUsers(), len(ep.Users))
	}
	dead := ep.Dead
	if dead == nil {
		dead = make([]bool, len(ep.Users))
	}
	if len(dead) != len(ep.Users) {
		return nil, fmt.Errorf("durable: epoch has %d users but %d tombstone flags", len(ep.Users), len(dead))
	}
	var buf bytes.Buffer
	w := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	w(uint64(ep.Seq))
	w(uint64(ep.K))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ep.Algorithm)))
	buf.Write(u32[:])
	buf.WriteString(ep.Algorithm)
	w(uint64(ep.BuiltAt.UnixNano()))
	w(uint64(ep.Duration))
	w(uint64(ep.Stats.Comparisons))
	w(uint64(ep.Stats.Iterations))
	w(uint64(ep.Stats.Updates))
	w(ep.MutSeq)
	if err := core.WriteUserTable(&buf, ep.Users); err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ep.Graph.Neighbors)))
	buf.Write(u32[:])
	for _, nbrs := range ep.Graph.Neighbors {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(nbrs)))
		buf.Write(u32[:])
		for _, nb := range nbrs {
			binary.LittleEndian.PutUint32(u32[:], uint32(nb.ID))
			buf.Write(u32[:])
			w(math.Float64bits(nb.Sim))
		}
	}
	writeBitmap(&buf, dead)
	return sealSnapshot(epochMagic, buf.Bytes()), nil
}

// decodeEpoch parses an epoch snapshot, verifying checksum, structure, and
// that every neighbor index is a valid node — a recovered epoch must be
// servable without bounds panics.
func decodeEpoch(data []byte) (EpochData, error) {
	payload, magic, err := openSnapshotAny(data, epochMagicV1, epochMagic)
	if err != nil {
		return EpochData{}, err
	}
	r := bytes.NewReader(payload)
	var b8 [8]byte
	rd := func() (uint64, error) {
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return 0, fmt.Errorf("durable: short epoch snapshot: %w", err)
		}
		return binary.LittleEndian.Uint64(b8[:]), nil
	}
	var ep EpochData
	var v uint64
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	ep.Seq = int64(v)
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	if v > 1<<30 {
		return EpochData{}, fmt.Errorf("durable: implausible epoch k %d", v)
	}
	ep.K = int(v)
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return EpochData{}, fmt.Errorf("durable: reading algorithm length: %w", err)
	}
	algoLen := binary.LittleEndian.Uint32(u32[:])
	if algoLen > 256 {
		return EpochData{}, fmt.Errorf("durable: implausible algorithm length %d", algoLen)
	}
	algo := make([]byte, algoLen)
	if _, err := io.ReadFull(r, algo); err != nil {
		return EpochData{}, fmt.Errorf("durable: reading algorithm: %w", err)
	}
	ep.Algorithm = string(algo)
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	ep.BuiltAt = time.Unix(0, int64(v))
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	ep.Duration = time.Duration(v)
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	ep.Stats.Comparisons = int64(v)
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	ep.Stats.Iterations = int(v)
	if v, err = rd(); err != nil {
		return EpochData{}, err
	}
	ep.Stats.Updates = int64(v)
	if ep.MutSeq, err = rd(); err != nil {
		return EpochData{}, err
	}
	if ep.Users, err = core.ReadUserTable(r); err != nil {
		return EpochData{}, err
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return EpochData{}, fmt.Errorf("durable: reading node count: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if int(n) != len(ep.Users) {
		return EpochData{}, fmt.Errorf("durable: epoch graph has %d nodes but %d users", n, len(ep.Users))
	}
	g := &knn.Graph{K: ep.K, Neighbors: make([][]knn.Neighbor, n)}
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return EpochData{}, fmt.Errorf("durable: reading neighborhood %d: %w", i, err)
		}
		m := binary.LittleEndian.Uint32(u32[:])
		if m > maxSnapshotNeighbors || int64(m)*12 > int64(r.Len()) {
			return EpochData{}, fmt.Errorf("durable: implausible neighborhood size %d at node %d", m, i)
		}
		nbrs := make([]knn.Neighbor, m)
		for j := range nbrs {
			if _, err := io.ReadFull(r, u32[:]); err != nil {
				return EpochData{}, fmt.Errorf("durable: reading neighbor: %w", err)
			}
			id := binary.LittleEndian.Uint32(u32[:])
			if id >= n {
				return EpochData{}, fmt.Errorf("durable: node %d neighbor index %d out of range [0,%d)", i, id, n)
			}
			sim, err := rd()
			if err != nil {
				return EpochData{}, err
			}
			nbrs[j] = knn.Neighbor{ID: int32(id), Sim: math.Float64frombits(sim)}
		}
		g.Neighbors[i] = nbrs
	}
	if magic == epochMagic {
		if ep.Dead, err = readBitmap(r, len(ep.Users)); err != nil {
			return EpochData{}, err
		}
	} else {
		ep.Dead = make([]bool, len(ep.Users)) // v1 epochs predate tombstones
	}
	if r.Len() != 0 {
		return EpochData{}, fmt.Errorf("durable: %d trailing bytes in epoch snapshot", r.Len())
	}
	ep.Graph = g
	return ep, nil
}

// writeFileAtomic writes data as dir/name via temp file + fsync + rename +
// directory fsync: after it returns nil the file is durable and readers
// never observe a partial write.
func writeFileAtomic(fsys FS, dir, name string, data []byte) error {
	final := filepath.Join(dir, name)
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: fsyncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: renaming %s into place: %w", tmp, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: fsyncing %s: %w", dir, err)
	}
	return nil
}
