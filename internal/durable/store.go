package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/knn"
	"goldfinger/internal/obs"
)

// ErrDegraded is returned by every mutating Store method once the data
// directory has failed a write: the store is read-only for the rest of the
// process lifetime and the in-memory state is the only truth. The service
// maps this to 503 + Retry-After on write endpoints while queries keep
// serving.
var ErrDegraded = errors.New("durable: store is degraded (data dir failed a write); read-only")

// Metric names exported into the service registry.
const (
	MetricWALAppends       = "wal_appends"
	MetricWALFsyncs        = "wal_fsyncs"
	MetricWALBytes         = "wal_bytes"   // gauge: active segment size
	MetricWALRecords       = "wal_records" // gauge: records in the active segment
	MetricReplayedRecords  = "recovery_records_replayed"
	MetricDroppedBytes     = "recovery_bytes_dropped"
	MetricQuarantinedFiles = "recovery_files_quarantined"
	MetricSnapshotsWritten = "snapshots_written"
	MetricDegraded         = "degraded" // gauge: 0 healthy, 1 read-only
)

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// FS defaults to OSFS. Tests substitute a FaultFS.
	FS FS
	// Fsync is the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// Metrics receives the durability counters/gauges; nil disables them.
	Metrics *obs.Registry
	// Logf receives recovery and degradation reports (log.Printf-shaped);
	// nil discards them.
	Logf func(format string, args ...any)
	// CompactBytes is the active-segment size at which ShouldCompact
	// reports true (default 4 MiB; <0 disables size-triggered compaction).
	CompactBytes int64
}

// Recovery is what Open reassembled from the data directory.
type Recovery struct {
	// State is the recovered user table + fingerprints + mutation counter:
	// the newest valid snapshot with every valid WAL record replayed over
	// it.
	State State
	// Epoch is the recovered graph epoch, nil if none was persisted (or the
	// epoch snapshot was corrupt — state recovery does not depend on it).
	// Graph-delta WAL records newer than the persisted epoch have been
	// applied to it, so the graph is warm: current up to Epoch.MutSeq.
	Epoch *EpochData
	// RecordsReplayed counts WAL records applied over the snapshot.
	RecordsReplayed int
	// DeltasApplied counts graph-delta records applied onto the epoch.
	DeltasApplied int
	// BytesDropped counts torn-tail WAL bytes truncated during recovery.
	BytesDropped int64
	// Quarantined lists files renamed to *.corrupt instead of being loaded.
	Quarantined []string
	// Migration is the interrupted shard handoff, if the WAL carries a
	// MigImportBegin mark with no matching MigImportDone: the crash
	// happened mid-import and the transfer must be resumed (re-importing
	// is idempotent). nil when no handoff is pending.
	Migration *PendingMigration
}

// PendingMigration identifies an import that was journaled as begun but
// not as done.
type PendingMigration struct {
	Epoch uint64 // ring epoch being migrated to
	From  string // shard the users were being pulled from
}

// Store owns the data directory. All methods are safe for concurrent use.
type Store struct {
	fsys         FS
	dir          string
	fsync        FsyncPolicy
	logf         func(string, ...any)
	compactBytes int64

	mu      sync.Mutex // serializes WAL appends and segment rotation
	active  *wal
	gen     uint64
	lastSeq uint64 // MutSeq of the last appended record

	snapMu   sync.Mutex // serializes Compact and SaveEpoch
	degraded atomic.Bool

	mAppends     *obs.Counter
	mFsyncs      *obs.Counter
	mWALBytes    *obs.Gauge
	mWALRecords  *obs.Gauge
	mSnapshots   *obs.Counter
	mDegraded    *obs.Gauge
	mQuarantined *obs.Counter
}

func walName(gen uint64) string   { return fmt.Sprintf("wal-%08d.log", gen) }
func stateName(gen uint64) string { return fmt.Sprintf("state-%08d.snap", gen) }

const epochName = "epoch.snap"

// parseGen extracts the generation from a wal-/state- file name, or
// ok=false for anything else (tmp files, quarantined files, strays).
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Open recovers the data directory and returns a store appending to its
// active WAL segment. Open never fails on corrupt state files — they are
// quarantined and recovery proceeds with what verifies — but does fail on
// I/O errors that prevent reading the directory or opening the active
// segment, since a store that cannot accept writes should not start.
func Open(opts Options) (*Store, Recovery, error) {
	if opts.Dir == "" {
		return nil, Recovery{}, errors.New("durable: Options.Dir is required")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	compactBytes := opts.CompactBytes
	if compactBytes == 0 {
		compactBytes = 4 << 20
	}
	s := &Store{
		fsys:         fsys,
		dir:          opts.Dir,
		fsync:        opts.Fsync,
		logf:         logf,
		compactBytes: compactBytes,
		mAppends:     opts.Metrics.Counter(MetricWALAppends),
		mFsyncs:      opts.Metrics.Counter(MetricWALFsyncs),
		mWALBytes:    opts.Metrics.Gauge(MetricWALBytes),
		mWALRecords:  opts.Metrics.Gauge(MetricWALRecords),
		mSnapshots:   opts.Metrics.Counter(MetricSnapshotsWritten),
		mDegraded:    opts.Metrics.Gauge(MetricDegraded),
		mQuarantined: opts.Metrics.Counter(MetricQuarantinedFiles),
	}
	s.mDegraded.Set(0)

	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, Recovery{}, fmt.Errorf("durable: creating data dir: %w", err)
	}
	names, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("durable: reading data dir: %w", err)
	}
	var stateGens, walGens []uint64
	for _, name := range names {
		if g, ok := parseGen(name, "state-", ".snap"); ok {
			stateGens = append(stateGens, g)
		}
		if g, ok := parseGen(name, "wal-", ".log"); ok {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(stateGens, func(i, j int) bool { return stateGens[i] > stateGens[j] }) // newest first
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })       // oldest first

	var rec Recovery
	quarantineFile := func(path string, reason error) {
		s.mQuarantined.Inc()
		if dst, qerr := quarantine(fsys, path); qerr != nil {
			logf("durable: quarantining %s: %v (original error: %v)", path, qerr, reason)
		} else {
			logf("durable: quarantined %s as %s: %v", filepath.Base(path), dst, reason)
			rec.Quarantined = append(rec.Quarantined, dst)
		}
	}

	// Newest snapshot whose checksum verifies wins; corrupt ones are
	// quarantined and the next-older one is tried.
	baseGen := uint64(0)
	for _, g := range stateGens {
		path := filepath.Join(opts.Dir, stateName(g))
		data, rerr := fsys.ReadFile(path)
		if rerr != nil {
			logf("durable: reading snapshot %s: %v", stateName(g), rerr)
			continue
		}
		st, derr := decodeState(data)
		if derr != nil {
			quarantineFile(path, derr)
			continue
		}
		rec.State = st
		baseGen = g
		break
	}

	// Replay WAL segments of the snapshot's generation and later, oldest
	// first. A torn record truncates its segment at the last good byte.
	index := make(map[string]int, len(rec.State.Users))
	for i, id := range rec.State.Users {
		index[id] = i
	}
	replayed := obs.Local{C: opts.Metrics.Counter(MetricReplayedRecords)}
	genRecs := make(map[uint64]int64, len(walGens)) // surviving records per segment
	// Graph deltas are collected during the scan and applied onto the
	// epoch snapshot afterwards: their skip rule is the epoch's mutSeq,
	// not the state snapshot's (the epoch file may be older or newer).
	var deltas []Record
	for _, g := range walGens {
		path := filepath.Join(opts.Dir, walName(g))
		if g < baseGen {
			// Fully covered by the snapshot; a crash interrupted the
			// compaction that would have deleted it.
			if rerr := fsys.Remove(path); rerr != nil {
				logf("durable: removing obsolete segment %s: %v", walName(g), rerr)
			}
			continue
		}
		data, rerr := fsys.ReadFile(path)
		if rerr != nil {
			if notExist(rerr) {
				continue
			}
			return nil, Recovery{}, fmt.Errorf("durable: reading WAL %s: %w", walName(g), rerr)
		}
		recs, goodLen, serr := ScanWAL(data)
		genRecs[g] = int64(len(recs))
		for _, r := range recs {
			if r.Kind == KindGraphDelta {
				deltas = append(deltas, r)
				continue
			}
			if r.Kind == KindMigration {
				// Handoff marks are not state mutations and are not covered
				// by snapshots, so they are tracked regardless of the mutSeq
				// skip rule: the latest begin with no matching done leaves a
				// pending migration for the service to resume.
				switch m := r.Mig; m.Phase {
				case MigImportBegin:
					rec.Migration = &PendingMigration{Epoch: m.Epoch, From: m.Peer}
				case MigImportDone:
					if rec.Migration != nil && rec.Migration.Epoch == m.Epoch {
						rec.Migration = nil
					}
				}
				continue
			}
			if r.MutSeq <= rec.State.MutSeq {
				continue // already covered by the snapshot
			}
			switch r.Kind {
			case KindDelete:
				if i, ok := index[r.ID]; ok {
					for len(rec.State.Deleted) < len(rec.State.Users) {
						rec.State.Deleted = append(rec.State.Deleted, false)
					}
					rec.State.Deleted[i] = true
				}
			default: // KindPut (incl. legacy zero kind)
				if i, ok := index[r.ID]; ok {
					rec.State.FPS[i] = r.FP
					if i < len(rec.State.Deleted) {
						rec.State.Deleted[i] = false // a put revives a tombstoned user
					}
				} else {
					index[r.ID] = len(rec.State.Users)
					rec.State.Users = append(rec.State.Users, r.ID)
					rec.State.FPS = append(rec.State.FPS, r.FP)
					if rec.State.Deleted != nil {
						rec.State.Deleted = append(rec.State.Deleted, false)
					}
				}
			}
			rec.State.MutSeq = r.MutSeq
			rec.RecordsReplayed++
			replayed.Inc()
		}
		if serr != nil {
			dropped := int64(len(data) - goodLen)
			rec.BytesDropped += dropped
			logf("durable: WAL %s has a torn tail at byte %d: %v; truncating %d bytes",
				walName(g), goodLen, serr, dropped)
			if terr := fsys.Truncate(path, int64(goodLen)); terr != nil {
				return nil, Recovery{}, fmt.Errorf("durable: truncating torn WAL %s: %w", walName(g), terr)
			}
		}
	}
	replayed.Flush()
	opts.Metrics.Counter(MetricDroppedBytes).Add(rec.BytesDropped)

	// The active segment continues the highest generation seen (WAL or
	// snapshot), so a crash-interrupted compaction resumes cleanly.
	s.gen = baseGen
	if len(walGens) > 0 && walGens[len(walGens)-1] > s.gen {
		s.gen = walGens[len(walGens)-1]
	}
	s.active, err = openWAL(fsys, filepath.Join(opts.Dir, walName(s.gen)), opts.Fsync)
	if err != nil {
		return nil, Recovery{}, err
	}
	s.lastSeq = rec.State.MutSeq
	// The reopened segment continues where the crash left it: seed the
	// record count from the scan so Info and the gauges stay truthful.
	s.active.recs = genRecs[s.gen]
	s.mWALBytes.Set(s.active.bytes)
	s.mWALRecords.Set(s.active.recs)

	// The epoch snapshot is independent of state recovery: if it is corrupt
	// the service simply starts without a built graph.
	epochPath := filepath.Join(opts.Dir, epochName)
	if data, rerr := fsys.ReadFile(epochPath); rerr == nil {
		ep, derr := decodeEpoch(data)
		if derr != nil {
			quarantineFile(epochPath, derr)
		} else {
			rec.Epoch = &ep
		}
	} else if !notExist(rerr) {
		logf("durable: reading epoch snapshot: %v", rerr)
	}

	// Warm the recovered epoch: replay the graph deltas it has not seen, in
	// order. A delta that does not apply cleanly stops the warm-up — the
	// epoch stays consistent at the last good mutation (stale but correct;
	// the service sees MutSeq lag and falls back accordingly).
	if rec.Epoch != nil {
		ep := rec.Epoch
		if ep.Dead == nil {
			ep.Dead = make([]bool, len(ep.Users))
		}
		for _, d := range deltas {
			if d.MutSeq <= ep.MutSeq {
				continue
			}
			// Deltas are dense while the service keeps an epoch warm: every
			// accepted mutation emits exactly one. A gap means the deltas in
			// between are gone (compacted away against an older epoch file,
			// or generated against a newer epoch whose save never landed) —
			// applying across it would reconstruct a graph nobody ever
			// served, so the warm-up stops at the last contiguous mutation.
			if d.MutSeq != ep.MutSeq+1 {
				logf("durable: graph delta sequence jumps from %d to %d; epoch graph stays at mutSeq %d",
					ep.MutSeq, d.MutSeq, ep.MutSeq)
				break
			}
			if err := applyDeltaToEpoch(ep, d.Delta, rec.State.Users); err != nil {
				logf("durable: graph delta at mutSeq %d does not apply: %v; epoch graph stays at mutSeq %d",
					d.MutSeq, err, ep.MutSeq)
				break
			}
			ep.MutSeq = d.MutSeq
			rec.DeltasApplied++
		}
	}

	logf("durable: recovered %d users at mutSeq %d (snapshot gen %d, %d WAL records replayed, %d graph deltas applied, %d bytes dropped, %d files quarantined)",
		len(rec.State.Users), rec.State.MutSeq, baseGen, rec.RecordsReplayed, rec.DeltasApplied, rec.BytesDropped, len(rec.Quarantined))
	return s, rec, nil
}

// applyDeltaToEpoch replays one graph delta onto a recovered epoch:
// verbatim adjacency assignment via knn.ApplyTouched, plus epoch
// bookkeeping (user table growth on insert, tombstone flips). users is the
// recovered state's user table — the identity source for nodes the epoch
// has not seen yet.
func applyDeltaToEpoch(ep *EpochData, d *GraphDelta, users []string) error {
	if d == nil {
		return errors.New("durable: record carries no delta")
	}
	n := len(ep.Graph.Neighbors)
	grow := 0
	switch d.Op {
	case DeltaInsert:
		if int(d.Node) != n {
			return fmt.Errorf("durable: insert delta for node %d, epoch has %d nodes", d.Node, n)
		}
		grow = 1
	case DeltaOverwrite, DeltaDelete:
		if int(d.Node) >= n {
			return fmt.Errorf("durable: delta for node %d, epoch has %d nodes", d.Node, n)
		}
	default:
		return fmt.Errorf("durable: unknown delta op %d", d.Op)
	}
	if n+grow > len(users) {
		return fmt.Errorf("durable: epoch would grow to %d nodes but state has %d users", n+grow, len(users))
	}
	// Pre-validate so ApplyTouched cannot grow past the single node this
	// mutation may add.
	for _, tn := range d.Adj {
		if int(tn.ID) >= n+grow {
			return fmt.Errorf("durable: delta touches node %d beyond %d", tn.ID, n+grow-1)
		}
	}
	if err := knn.ApplyTouched(ep.Graph, d.Adj); err != nil {
		return err
	}
	for len(ep.Users) < len(ep.Graph.Neighbors) {
		ep.Users = append(ep.Users, users[len(ep.Users)])
		ep.Dead = append(ep.Dead, false)
	}
	switch d.Op {
	case DeltaDelete:
		ep.Dead[d.Node] = true
	default:
		if int(d.Node) < len(ep.Dead) {
			ep.Dead[d.Node] = false
		}
	}
	return nil
}

// Append durably logs one mutation. It returns only after the record is
// written (and, under FsyncAlways, fsynced) — the caller acks the client
// after Append returns nil. Any failure flips the store to degraded mode:
// the segment tail must be assumed torn, so no further appends are
// accepted.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded.Load() {
		return ErrDegraded
	}
	if s.active == nil {
		return errors.New("durable: store is closed")
	}
	synced, err := s.active.append(rec)
	if err != nil {
		s.setDegraded(err)
		return err
	}
	s.lastSeq = rec.MutSeq
	s.mAppends.Inc()
	if synced {
		s.mFsyncs.Inc()
	}
	s.mWALBytes.Set(s.active.bytes)
	s.mWALRecords.Set(s.active.recs)
	return nil
}

// ShouldCompact reports whether the active segment has outgrown the
// compaction threshold.
func (s *Store) ShouldCompact() bool {
	if s.compactBytes < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active != nil && s.active.bytes >= s.compactBytes
}

// Compact seals the active WAL segment, starts the next generation, writes
// a state snapshot covering everything sealed, and deletes the segments and
// snapshots the new snapshot supersedes. Appends are blocked only for the
// seal + rotation; the snapshot encode/write happens with appends flowing
// into the new segment.
//
// capture must return the caller's *current* state — and, when one exists,
// the current graph epoch (nil is fine) — and may be invoked more than
// once: a record can be durable in a sealed segment before the caller has
// applied it in memory, so Compact re-captures until the returned MutSeq
// covers every sealed record — deleting a sealed segment on the strength
// of a snapshot that misses one of its records would lose an acked write.
// If the caller's state does not catch up within five seconds, the
// compaction is abandoned (sealed segments are kept; recovery replays
// them) and an error is returned.
//
// The epoch is persisted alongside the state snapshot before any sealed
// segment is deleted: sealed segments carry the graph deltas that keep the
// on-disk epoch warm, so deleting them while epoch.snap lags would silently
// cool recovery. If only the epoch write fails the store degrades but the
// state snapshot stands.
func (s *Store) Compact(capture func() (State, *EpochData)) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.degraded.Load() {
		return ErrDegraded
	}

	s.mu.Lock()
	if s.active == nil {
		s.mu.Unlock()
		return errors.New("durable: store is closed")
	}
	if err := s.active.seal(); err != nil {
		s.setDegraded(err)
		s.mu.Unlock()
		return err
	}
	sealedSeq := s.lastSeq
	newGen := s.gen + 1
	w, err := openWAL(s.fsys, filepath.Join(s.dir, walName(newGen)), s.fsync)
	if err != nil {
		s.setDegraded(err)
		s.mu.Unlock()
		return err
	}
	s.active = w
	s.gen = newGen
	s.mu.Unlock()

	var st State
	var ep *EpochData
	for deadline := time.Now().Add(5 * time.Second); ; {
		st, ep = capture()
		if st.MutSeq >= sealedSeq {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("durable: compaction abandoned: captured state at mutSeq %d never covered sealed mutSeq %d",
				st.MutSeq, sealedSeq)
		}
		time.Sleep(200 * time.Microsecond)
	}

	data, err := encodeState(st)
	if err != nil {
		// Encoding failure is a caller bug, not a storage fault: the sealed
		// segments still hold every record, so the store stays healthy.
		return err
	}
	if err := writeFileAtomic(s.fsys, s.dir, stateName(newGen), data); err != nil {
		// The snapshot did not land but the sealed segments are intact;
		// recovery would still see every acked record. The write failure
		// means the dir is unhealthy, so degrade.
		s.setDegraded(err)
		return err
	}
	s.mSnapshots.Inc()
	s.mWALBytes.Set(0)
	s.mWALRecords.Set(0)

	// Persist the epoch before deleting the sealed segments that carry its
	// deltas — otherwise recovery would find an epoch older than any delta
	// left on disk.
	if ep != nil {
		epData, eerr := encodeEpoch(*ep)
		if eerr != nil {
			s.logf("durable: encoding epoch during compaction: %v", eerr)
		} else if werr := writeFileAtomic(s.fsys, s.dir, epochName, epData); werr != nil {
			s.setDegraded(werr)
			return werr
		} else {
			s.mSnapshots.Inc()
		}
	}

	// Only after the new snapshot is durable: drop what it supersedes.
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		s.logf("durable: listing data dir after compaction: %v", err)
		return nil
	}
	for _, name := range names {
		if g, ok := parseGen(name, "wal-", ".log"); ok && g < newGen {
			if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil {
				s.logf("durable: removing sealed segment %s: %v", name, err)
			}
		}
		if g, ok := parseGen(name, "state-", ".snap"); ok && g < newGen {
			if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil {
				s.logf("durable: removing superseded snapshot %s: %v", name, err)
			}
		}
	}
	return nil
}

// SaveEpoch atomically persists the latest graph epoch. Failure degrades
// the store (the dir refused a write) but the in-memory epoch keeps
// serving.
func (s *Store) SaveEpoch(ep EpochData) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.degraded.Load() {
		return ErrDegraded
	}
	data, err := encodeEpoch(ep)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.fsys, s.dir, epochName, data); err != nil {
		s.setDegraded(err)
		return err
	}
	s.mSnapshots.Inc()
	return nil
}

// Degraded reports whether the store has flipped to read-only mode.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// setDegraded marks the store read-only. Callers hold whatever lock made
// the failing operation exclusive; the flag itself is atomic.
func (s *Store) setDegraded(cause error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.mDegraded.Set(1)
		s.logf("durable: entering degraded read-only mode: %v", cause)
	}
}

// Info is a point-in-time durability summary for /stats.
type Info struct {
	Gen        uint64
	WALBytes   int64
	WALRecords int64
	Degraded   bool
}

// Info returns the current durability summary.
func (s *Store) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := Info{Gen: s.gen, Degraded: s.degraded.Load()}
	if s.active != nil {
		info.WALBytes = s.active.bytes
		info.WALRecords = s.active.recs
	}
	return info
}

// Close seals the active segment. A crash without Close loses nothing that
// was acked — Close only makes the final fsync explicit for FsyncNone.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.seal()
	s.active = nil
	if err != nil && !s.degraded.Load() {
		return err
	}
	return nil
}
