package combin

import (
	"math"
	"math/big"
	"testing"
)

func TestBinomialKnown(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0}, {-1, 0, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("C(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestFactorialKnown(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("%d! = %s, want %d", n, got, w)
		}
	}
	if Factorial(-1).Sign() != 0 {
		t.Error("(-1)! should be 0")
	}
}

func TestStirling2Known(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {3, 2, 3}, {4, 2, 7}, {5, 3, 25},
		{6, 3, 90}, {5, 1, 1}, {5, 5, 1}, {5, 6, 0}, {5, 0, 0}, {0, 1, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("S(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestStirling2SumIsBellNumber(t *testing.T) {
	bell := []int64{1, 1, 2, 5, 15, 52, 203, 877}
	for n, w := range bell {
		sum := big.NewInt(0)
		for k := 0; k <= n; k++ {
			sum.Add(sum, Stirling2(n, k))
		}
		if sum.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("Σ_k S(%d,k) = %s, want Bell %d", n, sum, w)
		}
	}
}

func TestSurjectionsKnown(t *testing.T) {
	// Surjections from 4 elements onto 2: 2^4 − 2 = 14.
	if got := Surjections(4, 2); got.Cmp(big.NewInt(14)) != 0 {
		t.Errorf("Surjections(4,2) = %s, want 14", got)
	}
	// Onto 3 from 3: 3! = 6.
	if got := Surjections(3, 3); got.Cmp(big.NewInt(6)) != 0 {
		t.Errorf("Surjections(3,3) = %s, want 6", got)
	}
}

// naiveXi counts ξ(x, y, z) by enumerating all y^x functions.
func naiveXi(x, y, z int) int64 {
	if x == 0 {
		if z == 0 {
			return 1
		}
		return 0
	}
	var count int64
	f := make([]int, x)
	var rec func(i int)
	rec = func(i int) {
		if i == x {
			covered := map[int]bool{}
			for _, v := range f {
				if v < z {
					covered[v] = true
				}
			}
			if len(covered) == z {
				count++
			}
			return
		}
		for v := 0; v < y; v++ {
			f[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return count
}

func TestXiAgainstEnumeration(t *testing.T) {
	for x := 0; x <= 5; x++ {
		for y := 0; y <= 4; y++ {
			for z := 0; z <= y; z++ {
				want := naiveXi(x, y, z)
				if got := Xi(x, y, z); got.Cmp(big.NewInt(want)) != 0 {
					t.Errorf("ξ(%d,%d,%d) = %s, want %d", x, y, z, got, want)
				}
			}
		}
	}
}

func TestXiDegenerate(t *testing.T) {
	if Xi(3, 2, 3).Sign() != 0 {
		t.Error("ξ with z > y should be 0")
	}
	if Xi(-1, 2, 1).Sign() != 0 {
		t.Error("ξ with negative x should be 0")
	}
	// z > x: cannot be surjective.
	if Xi(1, 3, 2).Sign() != 0 {
		t.Error("ξ(1,3,2) should be 0")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Alpha: 1, Gamma1: 1, Gamma2: 1, B: 8}).Validate(); err != nil {
		t.Error(err)
	}
	for _, p := range []Params{
		{Alpha: -1, B: 8}, {Gamma1: -1, B: 8}, {Gamma2: -1, B: 8}, {B: 0},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestParamsJaccard(t *testing.T) {
	p := Params{Alpha: 2, Gamma1: 3, Gamma2: 3, B: 8}
	if got := p.Jaccard(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Jaccard = %g, want 0.25", got)
	}
	if (Params{B: 8}).Jaccard() != 0 {
		t.Error("empty params Jaccard should be 0")
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	for _, p := range []Params{
		{Alpha: 0, Gamma1: 0, Gamma2: 0, B: 4},
		{Alpha: 2, Gamma1: 0, Gamma2: 0, B: 4},
		{Alpha: 0, Gamma1: 3, Gamma2: 2, B: 5},
		{Alpha: 2, Gamma1: 2, Gamma2: 2, B: 3},
		{Alpha: 3, Gamma1: 4, Gamma2: 2, B: 8},
		{Alpha: 1, Gamma1: 1, Gamma2: 1, B: 64},
	} {
		dist, err := ExactDistribution(p)
		if err != nil {
			t.Fatal(err)
		}
		if total := TotalProbability(dist); total.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("params %+v: Σ P = %s, want 1", p, total.RatString())
		}
	}
}

// enumerate tallies the exact quadruple distribution by iterating over all
// b^n hash functions — the ground truth Theorem 1 must reproduce.
func enumerate(p Params) map[[4]int]*big.Rat {
	n := p.Alpha + p.Gamma1 + p.Gamma2
	total := int64(math.Pow(float64(p.B), float64(n)))
	counts := map[[4]int]int64{}
	h := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i < n {
			for v := 0; v < p.B; v++ {
				h[i] = v
				rec(i + 1)
			}
			return
		}
		// Items [0,α) are shared, [α, α+γ1) only in P1, rest only in P2.
		bShared := map[int]bool{}
		b1 := map[int]bool{}
		b2 := map[int]bool{}
		for j := 0; j < p.Alpha; j++ {
			bShared[h[j]] = true
		}
		for j := p.Alpha; j < p.Alpha+p.Gamma1; j++ {
			b1[h[j]] = true
		}
		for j := p.Alpha + p.Gamma1; j < n; j++ {
			b2[h[j]] = true
		}
		e1, e2, bb := 0, 0, 0
		union := map[int]bool{}
		for v := range bShared {
			union[v] = true
		}
		for v := range b1 {
			union[v] = true
			if !bShared[v] {
				e1++
				if b2[v] {
					bb++
				}
			}
		}
		for v := range b2 {
			union[v] = true
			if !bShared[v] {
				e2++
			}
		}
		counts[[4]int{len(union), len(bShared), e1, e2}]++
		_ = bb
	}
	rec(0)
	out := map[[4]int]*big.Rat{}
	for q, c := range counts {
		out[q] = big.NewRat(c, total)
	}
	return out
}

func TestExactDistributionMatchesEnumeration(t *testing.T) {
	for _, p := range []Params{
		{Alpha: 1, Gamma1: 1, Gamma2: 1, B: 3},
		{Alpha: 2, Gamma1: 1, Gamma2: 2, B: 3},
		{Alpha: 0, Gamma1: 2, Gamma2: 2, B: 4},
		{Alpha: 2, Gamma1: 2, Gamma2: 2, B: 2},
		{Alpha: 3, Gamma1: 2, Gamma2: 1, B: 4},
	} {
		want := enumerate(p)
		dist, err := ExactDistribution(p)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[4]int]*big.Rat{}
		for _, o := range dist {
			got[[4]int{o.U, o.A, o.E1, o.E2}] = o.P
		}
		if len(got) != len(want) {
			t.Errorf("params %+v: %d support points, enumeration has %d", p, len(got), len(want))
		}
		for q, wp := range want {
			gp, ok := got[q]
			if !ok {
				t.Errorf("params %+v: quadruple %v missing (want P=%s)", p, q, wp.RatString())
				continue
			}
			if gp.Cmp(wp) != 0 {
				t.Errorf("params %+v quadruple %v: P = %s, enumeration %s", p, q, gp.RatString(), wp.RatString())
			}
		}
	}
}

func TestOutcomeEstimate(t *testing.T) {
	o := Outcome{U: 4, A: 1, E1: 2, E2: 2} // β̂ = 1+2+2−4 = 1
	if o.BetaHat() != 1 {
		t.Errorf("BetaHat = %d, want 1", o.BetaHat())
	}
	if got := o.Estimate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Estimate = %g, want 0.5 ((1+1)/4)", got)
	}
	if (Outcome{}).Estimate() != 0 {
		t.Error("û=0 estimate should be 0")
	}
}

func TestMeanUpperBoundsTruthForSmallB(t *testing.T) {
	// Collisions bias Ĵ upward (paper §2.4): with b comparable to the
	// profile sizes, E[Ĵ] > J.
	p := Params{Alpha: 2, Gamma1: 3, Gamma2: 3, B: 16}
	mean, err := Mean(p)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= p.Jaccard() {
		t.Errorf("E[Ĵ] = %g not above J = %g", mean, p.Jaccard())
	}
	if mean > 1 {
		t.Errorf("E[Ĵ] = %g above 1", mean)
	}
}

func TestMeanConvergesToTruthForLargeB(t *testing.T) {
	p := Params{Alpha: 2, Gamma1: 2, Gamma2: 2, B: 4096}
	mean, err := Mean(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-p.Jaccard()) > 0.01 {
		t.Errorf("E[Ĵ] = %g, want ≈%g for b=4096", mean, p.Jaccard())
	}
}

func TestIdenticalProfilesEstimateOne(t *testing.T) {
	// γ1 = γ2 = 0: the estimator is exactly 1 whatever the collisions.
	dist, err := ExactDistribution(Params{Alpha: 4, B: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dist {
		if o.Estimate() != 1 {
			t.Errorf("outcome %+v estimates %g, want 1", o, o.Estimate())
		}
	}
}
