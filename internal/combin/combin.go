// Package combin implements the exact combinatorics of the paper's
// Theorem 1: the probability distribution of the quadruple (û, α̂, η̂1, η̂2)
// that determines the SHF Jaccard estimator Ĵ, via binomials, Stirling
// numbers of the second kind and the ξ surjection counts. All quantities
// are exact (math/big); the Monte-Carlo approximation for paper-scale
// parameters lives in package analysis and is validated against this one.
package combin

import (
	"fmt"
	"math/big"
)

// Binomial returns C(n, k), or 0 for out-of-range k.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Factorial returns n!.
func Factorial(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).MulRange(1, int64(n))
}

// Stirling2 returns S(n, k), the number of ways to partition n labeled
// elements into k non-empty unlabeled blocks, by the standard recurrence
// S(n, k) = k·S(n−1, k) + S(n−1, k−1).
func Stirling2(n, k int) *big.Int {
	switch {
	case n < 0 || k < 0:
		return big.NewInt(0)
	case n == 0 && k == 0:
		return big.NewInt(1)
	case n == 0 || k == 0 || k > n:
		return big.NewInt(0)
	}
	// row[j] = S(i, j) built row by row.
	row := make([]*big.Int, k+1)
	for j := range row {
		row[j] = big.NewInt(0)
	}
	row[0] = big.NewInt(1) // S(0,0)
	for i := 1; i <= n; i++ {
		// Update in place right-to-left: S(i,j) = j·S(i−1,j) + S(i−1,j−1).
		for j := min(i, k); j >= 1; j-- {
			t := new(big.Int).Mul(big.NewInt(int64(j)), row[j])
			row[j] = t.Add(t, row[j-1])
		}
		row[0] = big.NewInt(0) // S(i, 0) = 0 for i ≥ 1
	}
	return row[k]
}

// Surjections returns the number of surjections from an x-set onto a y-set:
// y!·S(x, y).
func Surjections(x, y int) *big.Int {
	return new(big.Int).Mul(Factorial(y), Stirling2(x, y))
}

// Xi returns ξ(x, y, z): the number of functions f from an x-element set
// into a y-element set Y that are surjective on a fixed z-element subset
// Z ⊆ Y (paper Theorem 1), by inclusion–exclusion:
//
//	ξ(x, y, z) = Σ_{k=0}^{z} (−1)^k C(z, k) (y−k)^x.
func Xi(x, y, z int) *big.Int {
	if x < 0 || y < 0 || z < 0 || z > y {
		return big.NewInt(0)
	}
	total := big.NewInt(0)
	for k := 0; k <= z; k++ {
		term := new(big.Int).Exp(big.NewInt(int64(y-k)), big.NewInt(int64(x)), nil)
		term.Mul(term, Binomial(z, k))
		if k%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
	}
	if total.Sign() < 0 {
		// Inclusion–exclusion over a valid domain never goes negative;
		// guard against misuse.
		return big.NewInt(0)
	}
	return total
}

// Params are the deterministic inputs of Theorem 1: the profile overlap
// structure (α = |P∩|, γ1 = |P1\P∩|, γ2 = |P2\P∩|) and the fingerprint
// length b.
type Params struct {
	Alpha  int
	Gamma1 int
	Gamma2 int
	B      int
}

// Validate reports whether the parameters make sense.
func (p Params) Validate() error {
	if p.Alpha < 0 || p.Gamma1 < 0 || p.Gamma2 < 0 {
		return fmt.Errorf("combin: negative set size in %+v", p)
	}
	if p.B <= 0 {
		return fmt.Errorf("combin: fingerprint length must be positive, got %d", p.B)
	}
	return nil
}

// Jaccard returns the true Jaccard index α/(α+γ1+γ2) of the profile pair.
func (p Params) Jaccard() float64 {
	n := p.Alpha + p.Gamma1 + p.Gamma2
	if n == 0 {
		return 0
	}
	return float64(p.Alpha) / float64(n)
}

// CardH returns Card_h(û, α̂, η̂1, η̂2, α, γ1, γ2): the number of hash
// functions from P∪ into [0, b) producing exactly the observed quadruple
// (paper Theorem 1).
func CardH(uHat, aHat, e1Hat, e2Hat int, p Params) *big.Int {
	bHat := aHat + e1Hat + e2Hat - uHat // β̂ is determined by the others
	if bHat < 0 || bHat > e1Hat || bHat > e2Hat || uHat > p.B || uHat < 0 {
		return big.NewInt(0)
	}
	out := Binomial(p.B, uHat)
	out.Mul(out, Binomial(uHat, aHat))
	out.Mul(out, Binomial(uHat-aHat, bHat))
	out.Mul(out, Binomial(uHat-aHat-bHat, e1Hat-bHat))
	out.Mul(out, Surjections(p.Alpha, aHat))
	out.Mul(out, Xi(p.Gamma1, e1Hat+aHat, e1Hat))
	out.Mul(out, Xi(p.Gamma2, e2Hat+aHat, e2Hat))
	return out
}

// Outcome is one support point of the Theorem 1 distribution.
type Outcome struct {
	U, A, E1, E2 int
	// P is the exact probability of observing this quadruple.
	P *big.Rat
}

// BetaHat returns β̂ = α̂ + η̂1 + η̂2 − û, the number of collisions between
// the two profiles' private bit images.
func (o Outcome) BetaHat() int { return o.A + o.E1 + o.E2 - o.U }

// Estimate returns the value of Ĵ for this outcome: (α̂+β̂)/û, or 0 when
// û = 0 (both profiles empty).
func (o Outcome) Estimate() float64 {
	if o.U == 0 {
		return 0
	}
	return float64(o.A+o.BetaHat()) / float64(o.U)
}

// ExactDistribution enumerates every quadruple with non-zero probability.
// Complexity is O(α·γ1·γ2·min(γ1,γ2)) big-integer operations: exact
// evaluation is meant for small parameters (it is cross-validated against
// full enumeration of all b^n hash functions in the tests); use the
// Monte-Carlo sampler in package analysis for paper-scale parameters.
func ExactDistribution(p Params) ([]Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	denom := new(big.Int).Exp(big.NewInt(int64(p.B)), big.NewInt(int64(p.Alpha+p.Gamma1+p.Gamma2)), nil)
	var out []Outcome
	aMax := min(p.Alpha, p.B)
	for aHat := boolToInt(p.Alpha > 0); aHat <= aMax; aHat++ {
		for e1 := 0; e1 <= min(p.Gamma1, p.B); e1++ {
			for e2 := 0; e2 <= min(p.Gamma2, p.B); e2++ {
				for bHat := 0; bHat <= min(e1, e2); bHat++ {
					u := aHat + e1 + e2 - bHat
					if u > p.B {
						continue
					}
					card := CardH(u, aHat, e1, e2, p)
					if card.Sign() == 0 {
						continue
					}
					out = append(out, Outcome{
						U: u, A: aHat, E1: e1, E2: e2,
						P: new(big.Rat).SetFrac(card, denom),
					})
				}
			}
		}
	}
	if len(out) == 0 {
		// α = γ1 = γ2 = 0: the empty mapping with probability 1.
		out = append(out, Outcome{P: big.NewRat(1, 1)})
	}
	return out, nil
}

// Mean returns E[Ĵ] under the exact distribution.
func Mean(p Params) (float64, error) {
	dist, err := ExactDistribution(p)
	if err != nil {
		return 0, err
	}
	var mean float64
	for _, o := range dist {
		prob, _ := o.P.Float64()
		mean += prob * o.Estimate()
	}
	return mean, nil
}

// TotalProbability returns Σ P over the distribution — exactly 1 when the
// enumeration is correct; exposed so tests and callers can assert it.
func TotalProbability(dist []Outcome) *big.Rat {
	total := new(big.Rat)
	for _, o := range dist {
		total.Add(total, o.P)
	}
	return total
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
