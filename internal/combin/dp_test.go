package combin

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestOccupancyMatchesClosedForm(t *testing.T) {
	// P(j | n, b) = C(b, j)·Surj(n, j)/b^n; compare for small cases.
	for _, c := range []struct{ n, b int }{{1, 4}, {3, 4}, {5, 3}, {6, 6}} {
		w := occupancy(c.n, c.b)
		var total float64
		for j, got := range w {
			num := new(bigFloat).mulInt(Binomial(c.b, j)).mulInt(Surjections(c.n, j))
			den := math.Pow(float64(c.b), float64(c.n))
			want := num.value / den
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("occupancy(%d,%d)[%d] = %g, want %g", c.n, c.b, j, got, want)
			}
			total += got
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("occupancy(%d,%d) sums to %g", c.n, c.b, total)
		}
	}
}

// bigFloat is a tiny helper multiplying big.Ints into a float64.
type bigFloat struct{ value float64 }

func (b *bigFloat) mulInt(x interface{ Int64() int64 }) *bigFloat {
	if b.value == 0 {
		b.value = 1
	}
	b.value *= float64(x.Int64())
	return b
}

func TestOccupancyOutsideSumsToOne(t *testing.T) {
	for _, c := range []struct{ n, b, blocked int }{{0, 8, 2}, {3, 8, 2}, {5, 8, 8}, {10, 8, 0}} {
		w := occupancyOutside(c.n, c.b, c.blocked)
		var total float64
		for _, p := range w {
			total += p
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("occupancyOutside(%+v) sums to %g", c, total)
		}
	}
}

func TestOccupancyOutsideAllBlocked(t *testing.T) {
	// Every bin blocked: no new bins ever.
	w := occupancyOutside(5, 4, 4)
	if len(w) != 1 || math.Abs(w[0]-1) > 1e-12 {
		t.Errorf("all-blocked distribution = %v, want [1]", w)
	}
}

func TestJointSecondSumsToOne(t *testing.T) {
	for _, c := range []struct{ n, b, a, e1 int }{{0, 8, 2, 3}, {4, 8, 2, 3}, {6, 6, 2, 4}, {5, 10, 0, 0}} {
		joint := jointSecond(c.n, c.b, c.a, c.e1)
		var total float64
		for _, row := range joint {
			for _, p := range row {
				total += p
			}
		}
		if math.Abs(total-1) > 1e-10 {
			t.Errorf("jointSecond(%+v) sums to %g", c, total)
		}
	}
}

// TestDPMatchesCountingFormula is the headline cross-validation: the
// occupancy DP and the big-integer counting formula must assign the same
// probability to every quadruple.
func TestDPMatchesCountingFormula(t *testing.T) {
	for _, p := range []Params{
		{Alpha: 2, Gamma1: 2, Gamma2: 2, B: 4},
		{Alpha: 3, Gamma1: 2, Gamma2: 4, B: 8},
		{Alpha: 0, Gamma1: 3, Gamma2: 3, B: 5},
		{Alpha: 4, Gamma1: 0, Gamma2: 2, B: 6},
		{Alpha: 5, Gamma1: 5, Gamma2: 5, B: 16},
	} {
		exact, err := ExactDistribution(p)
		if err != nil {
			t.Fatal(err)
		}
		want := map[[4]int]float64{}
		for _, o := range exact {
			f, _ := o.P.Float64()
			want[[4]int{o.U, o.A, o.E1, o.E2}] = f
		}
		dp, err := ExactDistributionDP(p)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[4]int]float64{}
		for _, o := range dp {
			f, _ := o.P.Float64()
			got[[4]int{o.U, o.A, o.E1, o.E2}] += f
		}
		for q, wp := range want {
			if math.Abs(got[q]-wp) > 1e-9 {
				t.Errorf("params %+v quadruple %v: DP %.12f, counting %.12f", p, q, got[q], wp)
			}
		}
		for q := range got {
			if _, ok := want[q]; !ok && got[q] > 1e-9 {
				t.Errorf("params %+v: DP has spurious quadruple %v (P=%g)", p, q, got[q])
			}
		}
	}
}

// TestDPPaperScale evaluates the paper's Fig 3 configuration exactly:
// |P1| = |P2| = 100, J = 0.25, b = 1024. The mean must reproduce the
// paper's 0.286 and the run must be fast.
func TestDPPaperScale(t *testing.T) {
	p := Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024}
	start := time.Now()
	stats, err := SummarizeDP(p, []float64{0.01, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("paper-scale DP took %v, should be seconds", elapsed)
	}
	if math.Abs(stats.Mean-0.286) > 0.003 {
		t.Errorf("exact mean Ĵ = %.4f, paper reports ≈0.286", stats.Mean)
	}
	// The 1% quantile near 0.254 (the paper's cut-off value in Fig 3).
	if q01 := stats.Quantiles[0.01]; math.Abs(q01-0.254) > 0.01 {
		t.Errorf("Q1%% = %.4f, paper reports ≈0.254", q01)
	}
	if q99 := stats.Quantiles[0.99]; q99 <= stats.Mean || q99 > 0.40 {
		t.Errorf("Q99%% = %.4f looks wrong", q99)
	}
}

// TestMisorderExactPaperClaim verifies the Fig 4 claim exactly: a pair with
// true J = 0.17 overtakes one with J = 0.25 with probability below 2% at
// b = 1024.
func TestMisorderExactPaperClaim(t *testing.T) {
	pA := Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024} // J = 0.25
	pB := Params{Alpha: 29, Gamma1: 71, Gamma2: 71, B: 1024} // J ≈ 0.17
	mis, err := MisorderExact(pA, pB)
	if err != nil {
		t.Fatal(err)
	}
	if mis >= 0.02 {
		t.Errorf("exact misordering = %.4f, paper claims < 2%%", mis)
	}
	if mis <= 0 {
		t.Errorf("exact misordering = %g, should be small but positive", mis)
	}
}

func TestMisorderExactProperties(t *testing.T) {
	// Identical pairs: P(B ≥ A) includes ties, so it must exceed 1/2.
	p := Params{Alpha: 5, Gamma1: 10, Gamma2: 10, B: 64}
	selfMis, err := MisorderExact(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if selfMis <= 0.5 || selfMis > 1 {
		t.Errorf("P(B ≥ A) for identical distributions = %.4f, want in (0.5, 1]", selfMis)
	}
	// A dominated pair (much lower J) almost never overtakes.
	low := Params{Alpha: 1, Gamma1: 19, Gamma2: 19, B: 1024}
	high := Params{Alpha: 15, Gamma1: 5, Gamma2: 5, B: 1024}
	mis, err := MisorderExact(high, low)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.001 {
		t.Errorf("dominated pair overtakes with P = %.5f", mis)
	}
	// Swapped arguments: the dominant pair overtakes nearly always.
	rev, err := MisorderExact(low, high)
	if err != nil {
		t.Fatal(err)
	}
	if rev < 0.999 {
		t.Errorf("dominant pair wins with only P = %.5f", rev)
	}
}

func TestMisorderExactAgainstMonteCarlo(t *testing.T) {
	pA := Params{Alpha: 6, Gamma1: 14, Gamma2: 14, B: 128}
	pB := Params{Alpha: 4, Gamma1: 16, Gamma2: 16, B: 128}
	exact, err := MisorderExact(pA, pB)
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo oracle with the same ball-throwing model.
	const trials = 200000
	distA := sampleMany(pA, trials, 1)
	distB := sampleMany(pB, trials, 2)
	mc := 0
	for i := 0; i < trials; i++ {
		if distB[i] >= distA[i] {
			mc++
		}
	}
	if math.Abs(exact-float64(mc)/trials) > 0.01 {
		t.Errorf("exact %.4f vs MC %.4f", exact, float64(mc)/trials)
	}
}

// sampleMany draws Ĵ values by direct simulation (duplicated from package
// analysis to avoid an import cycle in tests).
func sampleMany(p Params, trials int, seed int64) []float64 {
	rng := newTestRand(seed)
	out := make([]float64, trials)
	occ := make([]byte, p.B)
	for t := 0; t < trials; t++ {
		for i := range occ {
			occ[i] = 0
		}
		for i := 0; i < p.Alpha; i++ {
			occ[rng.Intn(p.B)] |= 3
		}
		for i := 0; i < p.Gamma1; i++ {
			occ[rng.Intn(p.B)] |= 1
		}
		for i := 0; i < p.Gamma2; i++ {
			occ[rng.Intn(p.B)] |= 2
		}
		inter, c1, c2 := 0, 0, 0
		for _, o := range occ {
			switch o {
			case 3:
				inter, c1, c2 = inter+1, c1+1, c2+1
			case 1:
				c1++
			case 2:
				c2++
			}
		}
		if union := c1 + c2 - inter; union > 0 {
			out[t] = float64(inter) / float64(union)
		}
	}
	return out
}

func TestDPTotalProbabilityAtPaperScale(t *testing.T) {
	dist, err := ExactDistributionDP(Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, o := range dist {
		p, _ := o.P.Float64()
		if p < 0 {
			t.Fatal("negative probability from positive-term DP")
		}
		total += p
	}
	// Truncation drops mass below 1e-15 per cell; the total must still be
	// essentially 1.
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("Σ P = %.9f at paper scale", total)
	}
}

func TestDPValidation(t *testing.T) {
	if _, err := ExactDistributionDP(Params{B: 0}); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := SummarizeDP(Params{B: 0}, nil); err == nil {
		t.Error("b=0 accepted by SummarizeDP")
	}
}

func TestDPEmptyProfiles(t *testing.T) {
	dist, err := ExactDistributionDP(Params{B: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || dist[0].U != 0 {
		t.Errorf("empty params distribution = %+v", dist)
	}
}

func TestDPIdenticalProfiles(t *testing.T) {
	dist, err := ExactDistributionDP(Params{Alpha: 10, B: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dist {
		if o.Estimate() != 1 {
			t.Errorf("identical profiles outcome %+v estimates %g", o, o.Estimate())
		}
	}
}
