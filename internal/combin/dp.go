package combin

import (
	"math/big"
	"sort"
)

// floatRat converts a probability to the *big.Rat the Outcome type carries.
func floatRat(p float64) *big.Rat {
	r := new(big.Rat)
	if r.SetFloat64(p) == nil {
		return new(big.Rat) // NaN/Inf cannot happen for probabilities; be safe
	}
	return r
}

// This file evaluates the Theorem 1 distribution by a different route than
// the counting formula: a ball-throwing occupancy DP. The counting formula
// (CardH) is exact but needs big integers and O(α·γ1·γ2·min(γ1,γ2))
// big-number work, which is only tractable for small parameters. The DP
// below computes the same distribution in stable float64 arithmetic — all
// recurrences have non-negative terms, so there is no cancellation — and
// handles the paper's real configurations (α = 40, γ = 60, b = 1024) in
// well under a second. The two implementations are cross-validated against
// each other (and against full enumeration) in the tests.
//
// Model: hashing n items with a uniform random function is throwing n balls
// into b bins. The quadruple of Theorem 1 decomposes into three stages:
//
//  1. the α shared items occupy â distinct bins — classical occupancy;
//  2. the γ1 items of P1\P2 occupy ê1 distinct bins outside the â;
//  3. the γ2 items of P2\P1 occupy f bins inside the ê1 set (the β̂
//     collisions) and g fresh bins (so η̂2 = f + g).

// occupancy returns P(j distinct bins occupied | n balls, b bins) for
// j = 0..min(n, b), by the stable recurrence
// W(i+1, j) = W(i, j)·j/b + W(i, j−1)·(b−j+1)/b.
func occupancy(n, b int) []float64 {
	maxJ := n
	if maxJ > b {
		maxJ = b
	}
	w := make([]float64, maxJ+1)
	w[0] = 1
	for i := 0; i < n; i++ {
		hi := i + 1
		if hi > maxJ {
			hi = maxJ
		}
		for j := hi; j >= 1; j-- {
			w[j] = w[j]*float64(j)/float64(b) + w[j-1]*float64(b-j+1)/float64(b)
		}
		w[0] = 0 // a ball always occupies some bin
	}
	return w
}

// occupancyOutside returns P(e distinct new bins | n balls, b bins, blocked
// bins already occupied): each ball hits a blocked bin (no change), an
// already-hit new bin (no change) or a fresh bin (e+1).
func occupancyOutside(n, b, blocked int) []float64 {
	free := b - blocked
	maxE := n
	if maxE > free {
		maxE = free
	}
	if maxE < 0 {
		maxE = 0
	}
	w := make([]float64, maxE+1)
	w[0] = 1
	for i := 0; i < n; i++ {
		for e := maxE; e >= 1; e-- {
			stay := (float64(blocked) + float64(e)) / float64(b)
			grow := float64(free-e+1) / float64(b)
			w[e] = w[e]*stay + w[e-1]*grow
		}
		w[0] = w[0] * float64(blocked) / float64(b)
	}
	return w
}

// jointSecond returns P(f, g | γ2 balls, b bins, a blocked shared bins,
// e1 target bins): f counts distinct hits inside the e1 set (collisions β̂),
// g counts distinct fresh bins. Returned as a dense [f][g] matrix.
func jointSecond(n, b, a, e1 int) [][]float64 {
	maxF := n
	if maxF > e1 {
		maxF = e1
	}
	maxG := n
	if maxG > b-a-e1 {
		maxG = b - a - e1
	}
	if maxG < 0 {
		maxG = 0
	}
	// Flat row-major buffers, ping-ponged per ball; after i balls at most
	// i bins are newly occupied, so the live region is the f+g ≤ i
	// triangle.
	stride := maxG + 1
	cur := make([]float64, (maxF+1)*stride)
	next := make([]float64, (maxF+1)*stride)
	cur[0] = 1
	fb := float64(b)
	for i := 0; i < n; i++ {
		clear(next)
		fHi := minDP(i, maxF)
		for f := 0; f <= fHi; f++ {
			gHi := minDP(i-f, maxG)
			base := f * stride
			hitE1 := float64(e1-f) / fb
			for g := 0; g <= gHi; g++ {
				p := cur[base+g]
				if p == 0 {
					continue
				}
				next[base+g] += p * (float64(a) + float64(f) + float64(g)) / fb
				if f < maxF {
					next[base+stride+g] += p * hitE1
				}
				if g < maxG {
					next[base+g+1] += p * float64(b-a-e1-g) / fb
				}
			}
		}
		cur, next = next, cur
	}
	out := make([][]float64, maxF+1)
	for f := range out {
		out[f] = cur[f*stride : (f+1)*stride]
	}
	return out
}

func minDP(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ExactDistributionDP computes the Theorem 1 distribution of
// (û, α̂, η̂1, η̂2) in stable floating point, tractable at the paper's real
// parameters. Probabilities below minProb are dropped (they are far beyond
// the 1%–99% quantile band the paper plots).
func ExactDistributionDP(p Params) ([]Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const minProb = 1e-15

	var out []Outcome
	pa := occupancy(p.Alpha, p.B)
	for a, probA := range pa {
		if probA < minProb || (p.Alpha > 0 && a == 0) {
			continue
		}
		pe1 := occupancyOutside(p.Gamma1, p.B, a)
		for e1, probE1 := range pe1 {
			w := probA * probE1
			if w < minProb {
				continue
			}
			joint := jointSecond(p.Gamma2, p.B, a, e1)
			for f := range joint {
				for g, probFG := range joint[f] {
					prob := w * probFG
					if prob < minProb {
						continue
					}
					out = append(out, Outcome{
						U:  a + e1 + g,
						A:  a,
						E1: e1,
						E2: f + g,
						P:  floatRat(prob),
					})
				}
			}
		}
	}
	return out, nil
}

// MisorderExact computes P(Ĵ_B ≥ Ĵ_A) exactly for two independent profile
// pairs A and B under the same fingerprint length — the probability that a
// KNN algorithm prefers the truly-less-similar pair (the paper's Fig 4
// quantity, which it bounds by 2% for J_A = 0.25 vs J_B = 0.17 at b = 1024).
func MisorderExact(pA, pB Params) (float64, error) {
	distA, err := ExactDistributionDP(pA)
	if err != nil {
		return 0, err
	}
	distB, err := ExactDistributionDP(pB)
	if err != nil {
		return 0, err
	}
	type point struct {
		est  float64
		prob float64
	}
	collapse := func(dist []Outcome) ([]point, float64) {
		byEst := map[float64]float64{}
		var total float64
		for _, o := range dist {
			prob, _ := o.P.Float64()
			byEst[o.Estimate()] += prob
			total += prob
		}
		pts := make([]point, 0, len(byEst))
		for est, prob := range byEst {
			pts = append(pts, point{est: est, prob: prob})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].est < pts[j].est })
		return pts, total
	}
	a, totalA := collapse(distA)
	b, totalB := collapse(distB)
	if totalA == 0 || totalB == 0 {
		return 0, nil
	}

	// P(B ≥ A) = Σ_a P(A = a) · P(B ≥ a), with P(B ≥ a) from B's suffix
	// sums walked in lockstep.
	suffix := make([]float64, len(b)+1)
	for i := len(b) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + b[i].prob
	}
	var mis float64
	j := 0
	for _, pa := range a {
		for j < len(b) && b[j].est < pa.est {
			j++
		}
		mis += pa.prob * suffix[j]
	}
	return mis / (totalA * totalB), nil
}

// DPStats summarizes the DP distribution: the mean of Ĵ and arbitrary
// quantiles of its CDF.
type DPStats struct {
	Mean      float64
	Quantiles map[float64]float64
}

// SummarizeDP computes mean and quantiles of Ĵ under the exact DP
// distribution — the quantities the paper's Fig 3 plots.
func SummarizeDP(p Params, quantiles []float64) (DPStats, error) {
	dist, err := ExactDistributionDP(p)
	if err != nil {
		return DPStats{}, err
	}
	type point struct {
		est  float64
		prob float64
	}
	points := make([]point, 0, len(dist))
	var mean, total float64
	for _, o := range dist {
		prob, _ := o.P.Float64()
		est := o.Estimate()
		mean += prob * est
		total += prob
		points = append(points, point{est: est, prob: prob})
	}
	if total > 0 {
		mean /= total // renormalize the tiny truncated mass away
	}
	sort.Slice(points, func(i, j int) bool { return points[i].est < points[j].est })

	qs := map[float64]float64{}
	for _, q := range quantiles {
		var cum float64
		target := q * total
		val := 0.0
		for _, pt := range points {
			cum += pt.prob
			val = pt.est
			if cum >= target {
				break
			}
		}
		qs[q] = val
	}
	return DPStats{Mean: mean, Quantiles: qs}, nil
}
