package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1024} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if c := s.Count(); c != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, c)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(100)
	s.Set(42)
	s.Set(42)
	if got := s.Count(); got != 1 {
		t.Errorf("Count after double Set = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(64)
	for _, i := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			s.Set(i)
		}()
	}
}

func TestFromWordsTrimsSpareBits(t *testing.T) {
	s := FromWords([]uint64{^uint64(0), ^uint64(0)}, 70)
	if got := s.Count(); got != 70 {
		t.Errorf("Count = %d, want 70 (spare bits must be cleared)", got)
	}
}

func TestFromWordsTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromWords with short slice did not panic")
		}
	}()
	FromWords([]uint64{0}, 65)
}

func TestFromWordsCopies(t *testing.T) {
	w := []uint64{1}
	s := FromWords(w, 64)
	w[0] = 0
	if !s.Test(0) {
		t.Error("FromWords aliased its input")
	}
}

func randomSet(r *rand.Rand, nbits int, density float64) *Set {
	s := New(nbits)
	for i := 0; i < nbits; i++ {
		if r.Float64() < density {
			s.Set(i)
		}
	}
	return s
}

func TestAndOrXorCountAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		a := randomSet(r, n, r.Float64())
		b := randomSet(r, n, r.Float64())
		var and, or, xor int
		for i := 0; i < n; i++ {
			ab, bb := a.Test(i), b.Test(i)
			if ab && bb {
				and++
			}
			if ab || bb {
				or++
			}
			if ab != bb {
				xor++
			}
		}
		if got := AndCount(a, b); got != and {
			t.Fatalf("n=%d AndCount = %d, want %d", n, got, and)
		}
		if got := OrCount(a, b); got != or {
			t.Fatalf("n=%d OrCount = %d, want %d", n, got, or)
		}
		if got := XorCount(a, b); got != xor {
			t.Fatalf("n=%d XorCount = %d, want %d", n, got, xor)
		}
	}
}

func TestInclusionExclusion(t *testing.T) {
	// |A| + |B| = |A∧B| + |A∨B| must hold for all pairs.
	f := func(aw, bw []uint64) bool {
		n := 64 * min(len(aw), len(bw))
		if n == 0 {
			return true
		}
		a := FromWords(aw, n)
		b := FromWords(bw, n)
		return a.Count()+b.Count() == AndCount(a, b)+OrCount(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorIsSymmetricDifference(t *testing.T) {
	f := func(aw, bw []uint64) bool {
		n := 64 * min(len(aw), len(bw))
		if n == 0 {
			return true
		}
		a := FromWords(aw, n)
		b := FromWords(bw, n)
		return XorCount(a, b) == OrCount(a, b)-AndCount(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMismatchedLengthPanics(t *testing.T) {
	a, b := New(64), New(128)
	for name, fn := range map[string]func(){
		"AndCount": func() { AndCount(a, b) },
		"OrCount":  func() { OrCount(a, b) },
		"XorCount": func() { XorCount(a, b) },
		"And":      func() { a.And(b) },
		"Or":       func() { a.Or(b) },
		"AndNot":   func() { a.AndNot(b) },
		"SubsetOf": func() { a.SubsetOf(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAndMatchesAndCount(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(200)
		a := randomSet(r, n, 0.5)
		b := randomSet(r, n, 0.5)
		want := AndCount(a, b)
		c := a.Clone()
		c.And(b)
		if got := c.Count(); got != want {
			t.Fatalf("And then Count = %d, want %d", got, want)
		}
		if !c.SubsetOf(a) || !c.SubsetOf(b) {
			t.Fatal("A∧B not a subset of both operands")
		}
	}
}

func TestOrAndNotAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(200)
		a := randomSet(r, n, 0.3)
		b := randomSet(r, n, 0.3)
		u := a.Clone()
		u.Or(b)
		if got, want := u.Count(), OrCount(a, b); got != want {
			t.Fatalf("Or then Count = %d, want %d", got, want)
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			t.Fatal("operands not subsets of A∨B")
		}
		d := a.Clone()
		d.AndNot(b)
		if got, want := d.Count(), a.Count()-AndCount(a, b); got != want {
			t.Fatalf("AndNot count = %d, want %d", got, want)
		}
		if AndCount(d, b) != 0 {
			t.Fatal("A∧¬B intersects B")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(100)
	a.Set(10)
	c := a.Clone()
	c.Set(20)
	if a.Test(20) {
		t.Error("mutating clone affected original")
	}
	if !c.Test(10) {
		t.Error("clone lost original bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	if !a.Equal(b) {
		t.Error("two empty sets not equal")
	}
	a.Set(5)
	if a.Equal(b) {
		t.Error("different sets reported equal")
	}
	b.Set(5)
	if !a.Equal(b) {
		t.Error("same sets reported unequal")
	}
	if a.Equal(New(101)) {
		t.Error("sets of different lengths reported equal")
	}
}

func TestReset(t *testing.T) {
	s := randomSet(rand.New(rand.NewSource(4)), 200, 0.5)
	s.Reset()
	if s.Count() != 0 {
		t.Error("Reset left bits set")
	}
	if s.Len() != 200 {
		t.Error("Reset changed the length")
	}
}

func TestNextSetAndOnes(t *testing.T) {
	s := New(200)
	want := []int{0, 5, 63, 64, 100, 199}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Ones()
	if len(got) != len(want) {
		t.Fatalf("Ones() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones() = %v, want %v", got, want)
		}
	}
	if s.NextSet(1) != 5 {
		t.Errorf("NextSet(1) = %d, want 5", s.NextSet(1))
	}
	if s.NextSet(-10) != 0 {
		t.Errorf("NextSet(-10) = %d, want 0", s.NextSet(-10))
	}
	if s.NextSet(200) != -1 {
		t.Errorf("NextSet past end = %d, want -1", s.NextSet(200))
	}
	if New(64).NextSet(0) != -1 {
		t.Error("NextSet on empty set should be -1")
	}
}

func TestCountEqualsOnesLength(t *testing.T) {
	f := func(words []uint64) bool {
		n := 64 * len(words)
		if n == 0 {
			return true
		}
		s := FromWords(words, n)
		return s.Count() == len(s.Ones())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordsExposesStorage(t *testing.T) {
	s := New(128)
	s.Set(0)
	s.Set(64)
	w := s.Words()
	if len(w) != 2 || w[0] != 1 || w[1] != 1 {
		t.Errorf("Words() = %v", w)
	}
}

func TestStringSmall(t *testing.T) {
	s := New(16)
	s.Set(1)
	s.Set(9)
	if got := s.String(); got != "{1, 9}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(8).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}
