package bitset

import (
	"fmt"
	"math/bits"
)

// This file holds the raw word-slice kernels behind the packed fingerprint
// corpus (core.PackedCorpus): AND+popcount over contiguous []uint64 rows,
// with no *Set indirection in the inner loops. The slicing patterns are
// chosen so the compiler can prove bounds once per row and eliminate
// per-word checks.

// AndCountWords returns popcount(a AND b) over two word slices of equal
// length — Eq. 4's numerator on raw storage. It panics if the lengths
// differ.
func AndCountWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitset: word-slice length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination for b[i]
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// AndCountWords4 is AndCountWords with a 4-way unrolled inner loop: four
// independent popcount accumulators expose instruction-level parallelism
// that a single serial accumulator chain hides. At b = 1024 (16 words per
// fingerprint) the unrolled body covers the whole row in four iterations.
// It panics if the lengths differ.
func AndCountWords4(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitset: word-slice length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var n0, n1, n2, n3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n0 += bits.OnesCount64(a[i] & b[i])
		n1 += bits.OnesCount64(a[i+1] & b[i+1])
		n2 += bits.OnesCount64(a[i+2] & b[i+2])
		n3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < len(a); i++ {
		n0 += bits.OnesCount64(a[i] & b[i])
	}
	return n0 + n1 + n2 + n3
}

// SuffixCounts returns suf of length len(words)+1 with
// suf[i] = popcount(words[i:]) and suf[len(words)] = 0. A query's suffix
// counts turn a partial AND+popcount into a provable upper bound on the
// full intersection — the remaining intersection can never exceed the
// query bits not yet scanned — which is what AndCountAbandon prunes with.
func SuffixCounts(words []uint64) []int32 {
	suf := make([]int32, len(words)+1)
	for i := len(words) - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + int32(bits.OnesCount64(words[i]))
	}
	return suf
}

// AndCountAbandon computes popcount(query AND row) like AndCountWords, but
// abandons the scan as soon as the running count plus qsuffix[i] — the
// query bits in the words not yet scanned — cannot reach need. It returns
// (count, true) when the scan completed (count is exact, and may still be
// below need: the bound only proves impossibility, not attainment), or
// (partial, false) when it proved count would end below need. qsuffix must
// be SuffixCounts(query); the bound is checked once per 4-word block so
// the unrolled inner loop keeps its instruction-level parallelism. It
// panics if the lengths differ.
func AndCountAbandon(query, row []uint64, qsuffix []int32, need int32) (int32, bool) {
	if len(query) != len(row) {
		panic(fmt.Sprintf("bitset: word-slice length mismatch %d != %d", len(query), len(row)))
	}
	row = row[:len(query)]
	var n int32
	i := 0
	for ; i+4 <= len(query); i += 4 {
		if n+qsuffix[i] < need {
			return n, false
		}
		n += int32(bits.OnesCount64(query[i]&row[i])) +
			int32(bits.OnesCount64(query[i+1]&row[i+1])) +
			int32(bits.OnesCount64(query[i+2]&row[i+2])) +
			int32(bits.OnesCount64(query[i+3]&row[i+3]))
	}
	if i < len(query) {
		if n+qsuffix[i] < need {
			return n, false
		}
		for ; i < len(query); i++ {
			n += int32(bits.OnesCount64(query[i] & row[i]))
		}
	}
	return n, true
}

// AndCountInto is the one-vs-many block kernel: corpus holds len(out)
// fixed-stride rows back to back, and out[r] receives
// popcount(query AND corpus[r*stride : r*stride+len(query)]). The query is
// read once per row while the corpus streams sequentially — the access
// pattern the packed layout exists for. len(query) may be smaller than
// stride (trailing pad words are ignored); it panics if the geometry is
// inconsistent.
func AndCountInto(query, corpus []uint64, stride int, out []int32) {
	rows := len(out)
	if rows == 0 {
		return
	}
	if stride < len(query) {
		panic(fmt.Sprintf("bitset: stride %d shorter than query length %d", stride, len(query)))
	}
	if len(corpus) < rows*stride {
		panic(fmt.Sprintf("bitset: corpus of %d words cannot hold %d rows of stride %d", len(corpus), rows, stride))
	}
	q := len(query)
	if q == 16 && stride == 16 {
		andCountInto16(query, corpus, out)
		return
	}
	for r := 0; r < rows; r++ {
		row := corpus[r*stride : r*stride+q : r*stride+q]
		var n0, n1, n2, n3 int
		i := 0
		for ; i+4 <= q; i += 4 {
			n0 += bits.OnesCount64(query[i] & row[i])
			n1 += bits.OnesCount64(query[i+1] & row[i+1])
			n2 += bits.OnesCount64(query[i+2] & row[i+2])
			n3 += bits.OnesCount64(query[i+3] & row[i+3])
		}
		for ; i < q; i++ {
			n0 += bits.OnesCount64(query[i] & row[i])
		}
		out[r] = int32(n0 + n1 + n2 + n3)
	}
}

// andCountInto16 is AndCountInto specialized for the paper's default
// geometry, b = 1024 (16 words per row, stride 16): the row loop body is
// fully unrolled with four independent accumulator chains and no inner
// loop control, and the query words are loaded into locals once so the
// compiler keeps them in registers across the whole block instead of
// re-reading the slice every row.
func andCountInto16(query, corpus []uint64, out []int32) {
	q := query[:16:16]
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	q4, q5, q6, q7 := q[4], q[5], q[6], q[7]
	q8, q9, q10, q11 := q[8], q[9], q[10], q[11]
	q12, q13, q14, q15 := q[12], q[13], q[14], q[15]
	for r := range out {
		row := corpus[r*16 : r*16+16 : r*16+16]
		n0 := bits.OnesCount64(q0&row[0]) + bits.OnesCount64(q4&row[4]) +
			bits.OnesCount64(q8&row[8]) + bits.OnesCount64(q12&row[12])
		n1 := bits.OnesCount64(q1&row[1]) + bits.OnesCount64(q5&row[5]) +
			bits.OnesCount64(q9&row[9]) + bits.OnesCount64(q13&row[13])
		n2 := bits.OnesCount64(q2&row[2]) + bits.OnesCount64(q6&row[6]) +
			bits.OnesCount64(q10&row[10]) + bits.OnesCount64(q14&row[14])
		n3 := bits.OnesCount64(q3&row[3]) + bits.OnesCount64(q7&row[7]) +
			bits.OnesCount64(q11&row[11]) + bits.OnesCount64(q15&row[15])
		out[r] = int32(n0 + n1 + n2 + n3)
	}
}

// AndCountGather is the one-vs-scattered kernel: out[i] receives
// popcount(query AND corpus[ids[i]*stride : ids[i]*stride+len(query)]).
// Candidate scoring in the refinement sweep picks a few hundred rows by id
// per user — there is no contiguous range to stream, but hoisting the
// query words into locals across the whole id list amortizes the query
// loads exactly like the tiled kernel does per block. len(query) may be
// smaller than stride (trailing pad words are ignored); it panics if the
// geometry is inconsistent. Row ids are bounds-checked by the row slicing.
func AndCountGather(query, corpus []uint64, stride int, ids []int32, out []int32) {
	if len(ids) != len(out) {
		panic(fmt.Sprintf("bitset: %d gather ids but %d outputs", len(ids), len(out)))
	}
	if stride < len(query) {
		panic(fmt.Sprintf("bitset: stride %d shorter than query length %d", stride, len(query)))
	}
	q := len(query)
	if q == 16 && stride == 16 {
		andCountGather16(query, corpus, ids, out)
		return
	}
	for i, id := range ids {
		base := int(id) * stride
		row := corpus[base : base+q : base+q]
		var n0, n1, n2, n3 int
		w := 0
		for ; w+4 <= q; w += 4 {
			n0 += bits.OnesCount64(query[w] & row[w])
			n1 += bits.OnesCount64(query[w+1] & row[w+1])
			n2 += bits.OnesCount64(query[w+2] & row[w+2])
			n3 += bits.OnesCount64(query[w+3] & row[w+3])
		}
		for ; w < q; w++ {
			n0 += bits.OnesCount64(query[w] & row[w])
		}
		out[i] = int32(n0 + n1 + n2 + n3)
	}
}

// andCountGather16 is AndCountGather specialized for the paper's default
// geometry exactly like andCountInto16: fully unrolled row body, four
// independent accumulator chains, query words pinned in registers across
// the whole id list.
func andCountGather16(query, corpus []uint64, ids []int32, out []int32) {
	q := query[:16:16]
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	q4, q5, q6, q7 := q[4], q[5], q[6], q[7]
	q8, q9, q10, q11 := q[8], q[9], q[10], q[11]
	q12, q13, q14, q15 := q[12], q[13], q[14], q[15]
	for i, id := range ids {
		base := int(id) * 16
		row := corpus[base : base+16 : base+16]
		n0 := bits.OnesCount64(q0&row[0]) + bits.OnesCount64(q4&row[4]) +
			bits.OnesCount64(q8&row[8]) + bits.OnesCount64(q12&row[12])
		n1 := bits.OnesCount64(q1&row[1]) + bits.OnesCount64(q5&row[5]) +
			bits.OnesCount64(q9&row[9]) + bits.OnesCount64(q13&row[13])
		n2 := bits.OnesCount64(q2&row[2]) + bits.OnesCount64(q6&row[6]) +
			bits.OnesCount64(q10&row[10]) + bits.OnesCount64(q14&row[14])
		n3 := bits.OnesCount64(q3&row[3]) + bits.OnesCount64(q7&row[7]) +
			bits.OnesCount64(q11&row[11]) + bits.OnesCount64(q15&row[15])
		out[i] = int32(n0 + n1 + n2 + n3)
	}
}
