package bitset

import (
	"fmt"
	"math/bits"
)

// This file holds the raw word-slice kernels behind the packed fingerprint
// corpus (core.PackedCorpus): AND+popcount over contiguous []uint64 rows,
// with no *Set indirection in the inner loops. The slicing patterns are
// chosen so the compiler can prove bounds once per row and eliminate
// per-word checks.

// AndCountWords returns popcount(a AND b) over two word slices of equal
// length — Eq. 4's numerator on raw storage. It panics if the lengths
// differ.
func AndCountWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitset: word-slice length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination for b[i]
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// AndCountWords4 is AndCountWords with a 4-way unrolled inner loop: four
// independent popcount accumulators expose instruction-level parallelism
// that a single serial accumulator chain hides. At b = 1024 (16 words per
// fingerprint) the unrolled body covers the whole row in four iterations.
// It panics if the lengths differ.
func AndCountWords4(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitset: word-slice length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var n0, n1, n2, n3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n0 += bits.OnesCount64(a[i] & b[i])
		n1 += bits.OnesCount64(a[i+1] & b[i+1])
		n2 += bits.OnesCount64(a[i+2] & b[i+2])
		n3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < len(a); i++ {
		n0 += bits.OnesCount64(a[i] & b[i])
	}
	return n0 + n1 + n2 + n3
}

// SuffixCounts returns suf of length len(words)+1 with
// suf[i] = popcount(words[i:]) and suf[len(words)] = 0. A query's suffix
// counts turn a partial AND+popcount into a provable upper bound on the
// full intersection — the remaining intersection can never exceed the
// query bits not yet scanned — which is what AndCountAbandon prunes with.
func SuffixCounts(words []uint64) []int32 {
	suf := make([]int32, len(words)+1)
	for i := len(words) - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + int32(bits.OnesCount64(words[i]))
	}
	return suf
}

// AndCountAbandon computes popcount(query AND row) like AndCountWords, but
// abandons the scan as soon as the running count plus qsuffix[i] — the
// query bits in the words not yet scanned — cannot reach need. It returns
// (count, true) when the scan completed (count is exact, and may still be
// below need: the bound only proves impossibility, not attainment), or
// (partial, false) when it proved count would end below need. qsuffix must
// be SuffixCounts(query); the bound is checked once per 4-word block so
// the unrolled inner loop keeps its instruction-level parallelism. It
// panics if the lengths differ.
func AndCountAbandon(query, row []uint64, qsuffix []int32, need int32) (int32, bool) {
	if len(query) != len(row) {
		panic(fmt.Sprintf("bitset: word-slice length mismatch %d != %d", len(query), len(row)))
	}
	row = row[:len(query)]
	var n int32
	i := 0
	for ; i+4 <= len(query); i += 4 {
		if n+qsuffix[i] < need {
			return n, false
		}
		n += int32(bits.OnesCount64(query[i]&row[i])) +
			int32(bits.OnesCount64(query[i+1]&row[i+1])) +
			int32(bits.OnesCount64(query[i+2]&row[i+2])) +
			int32(bits.OnesCount64(query[i+3]&row[i+3]))
	}
	if i < len(query) {
		if n+qsuffix[i] < need {
			return n, false
		}
		for ; i < len(query); i++ {
			n += int32(bits.OnesCount64(query[i] & row[i]))
		}
	}
	return n, true
}

// AndCountInto is the one-vs-many block kernel: corpus holds len(out)
// fixed-stride rows back to back, and out[r] receives
// popcount(query AND corpus[r*stride : r*stride+len(query)]). The query is
// read once per row while the corpus streams sequentially — the access
// pattern the packed layout exists for. len(query) may be smaller than
// stride (trailing pad words are ignored); it panics if the geometry is
// inconsistent.
func AndCountInto(query, corpus []uint64, stride int, out []int32) {
	rows := len(out)
	if rows == 0 {
		return
	}
	if stride < len(query) {
		panic(fmt.Sprintf("bitset: stride %d shorter than query length %d", stride, len(query)))
	}
	if len(corpus) < rows*stride {
		panic(fmt.Sprintf("bitset: corpus of %d words cannot hold %d rows of stride %d", len(corpus), rows, stride))
	}
	q := len(query)
	for r := 0; r < rows; r++ {
		row := corpus[r*stride : r*stride+q : r*stride+q]
		var n0, n1, n2, n3 int
		i := 0
		for ; i+4 <= q; i += 4 {
			n0 += bits.OnesCount64(query[i] & row[i])
			n1 += bits.OnesCount64(query[i+1] & row[i+1])
			n2 += bits.OnesCount64(query[i+2] & row[i+2])
			n3 += bits.OnesCount64(query[i+3] & row[i+3])
		}
		for ; i < q; i++ {
			n0 += bits.OnesCount64(query[i] & row[i])
		}
		out[r] = int32(n0 + n1 + n2 + n3)
	}
}
