package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPair(nbits int) (*Set, *Set) {
	r := rand.New(rand.NewSource(int64(nbits)))
	a, b := New(nbits), New(nbits)
	for i := 0; i < nbits/10+1; i++ {
		a.Set(r.Intn(nbits))
		b.Set(r.Intn(nbits))
	}
	return a, b
}

func BenchmarkAndCount(b *testing.B) {
	for _, nbits := range []int{64, 256, 1024, 4096, 8192} {
		x, y := benchPair(nbits)
		b.Run(fmt.Sprintf("bits=%d", nbits), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += AndCount(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkCount(b *testing.B) {
	x, _ := benchPair(1024)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Count()
	}
	_ = sink
}

func BenchmarkSet(b *testing.B) {
	s := New(1024)
	for i := 0; i < b.N; i++ {
		s.Set(i & 1023)
	}
}

func BenchmarkOnes(b *testing.B) {
	// Density sweep: the single-pass extraction loop must win at every
	// fill level over the old Count()+NextSet double walk.
	for _, fill := range []int{8, 102, 512} {
		x := New(1024)
		r := rand.New(rand.NewSource(int64(fill)))
		for i := 0; i < fill; i++ {
			x.Set(r.Intn(1024))
		}
		b.Run(fmt.Sprintf("fill=%d", fill), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.Ones()
			}
		})
	}
}

func BenchmarkOnesNextSetWalk(b *testing.B) {
	// The pre-optimization Ones implementation, kept as the baseline the
	// BenchmarkOnes numbers are read against.
	x, _ := benchPair(1024)
	for i := 0; i < b.N; i++ {
		out := make([]int, 0, x.Count())
		for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
			out = append(out, j)
		}
	}
}

func BenchmarkAndCountWords(b *testing.B) {
	for _, nbits := range []int{1024, 8192} {
		x, y := benchPair(nbits)
		xw, yw := x.Words(), y.Words()
		b.Run(fmt.Sprintf("plain/bits=%d", nbits), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += AndCountWords(xw, yw)
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("unrolled4/bits=%d", nbits), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += AndCountWords4(xw, yw)
			}
			_ = sink
		})
	}
}

func BenchmarkAndCountInto(b *testing.B) {
	// One query against a packed block of rows — the inner loop of the
	// brute-force scan. Compared against the same work done through the
	// per-pair *Set kernel.
	const nbits, rows = 1024, 256
	stride := WordsFor(nbits)
	r := rand.New(rand.NewSource(7))
	corpus := make([]uint64, rows*stride)
	sets := make([]*Set, rows)
	for i := range sets {
		s := New(nbits)
		for j := 0; j < nbits/10; j++ {
			s.Set(r.Intn(nbits))
		}
		sets[i] = s
		copy(corpus[i*stride:], s.Words())
	}
	q, _ := benchPair(nbits)
	out := make([]int32, rows)
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AndCountInto(q.Words(), corpus, stride, out)
		}
	})
	b.Run("per-pair", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			for j := 0; j < rows; j++ {
				sink += AndCount(q, sets[j])
			}
		}
		_ = sink
	})
}
