package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPair(nbits int) (*Set, *Set) {
	r := rand.New(rand.NewSource(int64(nbits)))
	a, b := New(nbits), New(nbits)
	for i := 0; i < nbits/10+1; i++ {
		a.Set(r.Intn(nbits))
		b.Set(r.Intn(nbits))
	}
	return a, b
}

func BenchmarkAndCount(b *testing.B) {
	for _, nbits := range []int{64, 256, 1024, 4096, 8192} {
		x, y := benchPair(nbits)
		b.Run(fmt.Sprintf("bits=%d", nbits), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += AndCount(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkCount(b *testing.B) {
	x, _ := benchPair(1024)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Count()
	}
	_ = sink
}

func BenchmarkSet(b *testing.B) {
	s := New(1024)
	for i := 0; i < b.N; i++ {
		s.Set(i & 1023)
	}
}

func BenchmarkOnes(b *testing.B) {
	x, _ := benchPair(1024)
	for i := 0; i < b.N; i++ {
		x.Ones()
	}
}
