package bitset

import (
	"math/rand"
	"testing"
)

func TestSuffixCounts(t *testing.T) {
	words := []uint64{0xF, 0, 1<<63 | 1, 0xFFFF}
	suf := SuffixCounts(words)
	if len(suf) != len(words)+1 {
		t.Fatalf("len = %d, want %d", len(suf), len(words)+1)
	}
	if suf[len(words)] != 0 {
		t.Errorf("suf[last] = %d, want 0", suf[len(words)])
	}
	for i := range words {
		want := int32(0)
		for _, w := range words[i:] {
			want += int32(popcount(w))
		}
		if suf[i] != want {
			t.Errorf("suf[%d] = %d, want %d", i, suf[i], want)
		}
	}
	if got := SuffixCounts(nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("SuffixCounts(nil) = %v, want [0]", got)
	}
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// TestAndCountAbandonAgainstExact drives the early-abandon kernel with
// random vectors and every interesting need threshold, asserting its two
// contracts: a completed scan returns the exact count, and an abandoned
// scan happens only when the exact count really is below need.
func TestAndCountAbandonAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		nw := 1 + rng.Intn(20)
		q := make([]uint64, nw)
		r := make([]uint64, nw)
		for i := range q {
			// Sparse-ish rows so counts vary widely.
			q[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			r[i] = rng.Uint64() & rng.Uint64()
		}
		exact := int32(AndCountWords(q, r))
		suf := SuffixCounts(q)
		for _, need := range []int32{-1, 0, 1, exact - 1, exact, exact + 1, exact + 10, suf[0] + 1} {
			got, done := AndCountAbandon(q, r, suf, need)
			if done {
				if got != exact {
					t.Fatalf("nw=%d need=%d: completed with %d, exact %d", nw, need, got, exact)
				}
			} else if exact >= need {
				t.Fatalf("nw=%d need=%d: abandoned but exact %d >= need", nw, need, exact)
			}
		}
	}
}

func TestAndCountAbandonImpossibleNeed(t *testing.T) {
	q := []uint64{0xFF, 0, 0, 0, 0}
	r := []uint64{0xFF, ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	suf := SuffixCounts(q)
	// The query holds 8 bits total, so need=9 is provably unreachable
	// after the first block.
	if _, done := AndCountAbandon(q, r, suf, 9); done {
		t.Error("need beyond the query cardinality was not abandoned")
	}
	if got, done := AndCountAbandon(q, r, suf, 8); !done || got != 8 {
		t.Errorf("reachable need: got (%d, %v), want (8, true)", got, done)
	}
}

func TestAndCountAbandonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	AndCountAbandon(make([]uint64, 2), make([]uint64, 3), SuffixCounts(make([]uint64, 2)), 1)
}
