package bitset

import (
	"math/rand"
	"testing"
)

// andCountRef is the obvious per-word reference the kernels are checked
// against.
func andCountRef(a, b []uint64) int {
	n := 0
	for i := range a {
		x := a[i] & b[i]
		for x != 0 {
			n++
			x &= x - 1
		}
	}
	return n
}

func randomWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = ^uint64(0)
		default:
			out[i] = rng.Uint64()
		}
	}
	return out
}

func TestAndCountWordsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Lengths around the unroll boundary and typical fingerprint strides
	// (b = 100 → 2 words, b = 1000 → 16, b = 1024 → 16, b = 8192 → 128).
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 128} {
		for trial := 0; trial < 20; trial++ {
			a, b := randomWords(rng, n), randomWords(rng, n)
			want := andCountRef(a, b)
			if got := AndCountWords(a, b); got != want {
				t.Fatalf("AndCountWords(len %d) = %d, want %d", n, got, want)
			}
			if got := AndCountWords4(a, b); got != want {
				t.Fatalf("AndCountWords4(len %d) = %d, want %d", n, got, want)
			}
		}
	}
}

func TestAndCountWordsLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func([]uint64, []uint64) int{
		"AndCountWords": AndCountWords, "AndCountWords4": AndCountWords4,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted mismatched lengths", name)
				}
			}()
			f(make([]uint64, 3), make([]uint64, 4))
		}()
	}
}

func TestAndCountIntoMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ qwords, stride, rows int }{
		{0, 0, 0},    // empty everything
		{1, 1, 1},    // single word, single row
		{2, 2, 7},    // b=100 geometry
		{16, 16, 33}, // b=1024 geometry: the fully-unrolled fast path
		{16, 17, 5},  // q=16 but padded stride: must stay on the generic path
		{5, 8, 10},   // query shorter than stride (padded rows)
	} {
		query := randomWords(rng, tc.qwords)
		corpus := randomWords(rng, tc.rows*tc.stride)
		out := make([]int32, tc.rows)
		AndCountInto(query, corpus, tc.stride, out)
		for r := 0; r < tc.rows; r++ {
			want := int32(andCountRef(query, corpus[r*tc.stride:r*tc.stride+tc.qwords]))
			if out[r] != want {
				t.Fatalf("geometry %+v row %d: got %d, want %d", tc, r, out[r], want)
			}
		}
	}
}

func TestAndCountGatherMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ qwords, stride, rows int }{
		{1, 1, 4},    // single word rows
		{2, 2, 9},    // b=100 geometry
		{16, 16, 40}, // b=1024 geometry: the fully-unrolled fast path
		{16, 17, 6},  // q=16 but padded stride: must stay on the generic path
		{5, 8, 10},   // query shorter than stride (padded rows)
	} {
		query := randomWords(rng, tc.qwords)
		corpus := randomWords(rng, tc.rows*tc.stride)
		// Scattered ids, out of order and with repeats.
		ids := make([]int32, 0, 2*tc.rows)
		for r := tc.rows - 1; r >= 0; r-- {
			ids = append(ids, int32(r), int32((r*7+3)%tc.rows))
		}
		out := make([]int32, len(ids))
		AndCountGather(query, corpus, tc.stride, ids, out)
		for i, id := range ids {
			want := int32(andCountRef(query, corpus[int(id)*tc.stride:int(id)*tc.stride+tc.qwords]))
			if out[i] != want {
				t.Fatalf("geometry %+v id %d: got %d, want %d", tc, id, out[i], want)
			}
		}
	}
}

func TestAndCountGatherBadGeometryPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("stride<query", func() {
		AndCountGather(make([]uint64, 4), make([]uint64, 8), 2, []int32{0}, make([]int32, 1))
	})
	assertPanics("ids/out mismatch", func() {
		AndCountGather(make([]uint64, 2), make([]uint64, 8), 2, []int32{0, 1}, make([]int32, 1))
	})
	assertPanics("id out of range", func() {
		AndCountGather(make([]uint64, 2), make([]uint64, 4), 2, []int32{2}, make([]int32, 1))
	})
}

func TestAndCountIntoBadGeometryPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("stride<query", func() {
		AndCountInto(make([]uint64, 4), make([]uint64, 8), 2, make([]int32, 2))
	})
	assertPanics("corpus too short", func() {
		AndCountInto(make([]uint64, 2), make([]uint64, 5), 2, make([]int32, 3))
	})
}

func TestAndCountIntoAgreesWithSetKernel(t *testing.T) {
	// The raw kernel and the *Set kernel must agree bit for bit on real
	// fingerprint-shaped vectors, including non-multiple-of-64 lengths.
	rng := rand.New(rand.NewSource(3))
	for _, nbits := range []int{1, 63, 64, 100, 1000, 1024} {
		stride := WordsFor(nbits)
		const rows = 9
		corpus := make([]uint64, rows*stride)
		sets := make([]*Set, rows)
		for r := range sets {
			s := New(nbits)
			for i := 0; i < nbits/7+1; i++ {
				s.Set(rng.Intn(nbits))
			}
			sets[r] = s
			copy(corpus[r*stride:], s.Words())
		}
		q := New(nbits)
		for i := 0; i < nbits/5+1; i++ {
			q.Set(rng.Intn(nbits))
		}
		out := make([]int32, rows)
		AndCountInto(q.Words(), corpus, stride, out)
		for r := range sets {
			if want := AndCount(q, sets[r]); int(out[r]) != want {
				t.Fatalf("nbits=%d row %d: kernel %d, AndCount %d", nbits, r, out[r], want)
			}
		}
	}
}

func TestViewSharesStorage(t *testing.T) {
	s := New(100)
	s.Set(3)
	s.Set(99)
	v := View(s.Words(), 100)
	if !v.Equal(s) {
		t.Fatal("view differs from original")
	}
	s.Set(50)
	if !v.Test(50) {
		t.Fatal("view did not observe mutation of the shared storage")
	}
	if v.Count() != 3 {
		t.Fatalf("view Count = %d, want 3", v.Count())
	}
}

func TestViewLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("View accepted a mismatched word count")
		}
	}()
	View(make([]uint64, 3), 100) // needs exactly 2 words
}

func TestOnesSinglePassMatchesNextSetWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, nbits := range []int{0, 1, 64, 100, 129, 1024} {
		for trial := 0; trial < 10; trial++ {
			s := New(nbits)
			for i := 0; nbits > 0 && i < rng.Intn(nbits+1); i++ {
				s.Set(rng.Intn(nbits))
			}
			var want []int
			for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
				want = append(want, i)
			}
			got := s.Ones()
			if len(got) != len(want) {
				t.Fatalf("nbits=%d: Ones len %d, walk len %d", nbits, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("nbits=%d: Ones[%d]=%d, walk=%d", nbits, i, got[i], want[i])
				}
			}
		}
	}
}
