// Package bitset provides fixed-length dense bit vectors tuned for the
// set-similarity kernels used by Single Hash Fingerprints: word-sliced
// storage, branch-free AND/OR population counts, and in-place boolean
// algebra. All operations treat the vector as exactly Len() bits; the spare
// bits of the last word are kept at zero as an invariant so that population
// counts never need masking.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Set is a fixed-length bit vector. The zero value is an empty, zero-length
// vector; use New to create a vector of a given length.
type Set struct {
	words []uint64
	nbits int
}

// New returns a Set of nbits bits, all zero. It panics if nbits is negative.
func New(nbits int) *Set {
	if nbits < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", nbits))
	}
	return &Set{words: make([]uint64, wordsFor(nbits)), nbits: nbits}
}

// FromWords builds a Set of nbits bits backed by a copy of words. Bits of
// words beyond nbits are cleared. It panics if words is too short for nbits.
func FromWords(words []uint64, nbits int) *Set {
	if len(words) < wordsFor(nbits) {
		panic(fmt.Sprintf("bitset: %d words cannot hold %d bits", len(words), nbits))
	}
	s := &Set{words: make([]uint64, wordsFor(nbits)), nbits: nbits}
	copy(s.words, words)
	s.trim()
	return s
}

func wordsFor(nbits int) int { return (nbits + wordMask) >> wordShift }

// WordsFor returns the number of 64-bit words needed to hold nbits bits —
// the row stride of a packed corpus of nbits-bit vectors.
func WordsFor(nbits int) int { return wordsFor(nbits) }

// View wraps words in a Set of nbits bits WITHOUT copying. The caller must
// guarantee that len(words) == WordsFor(nbits), that the spare bits of the
// last word are zero, and that the storage is not mutated for the lifetime
// of the view — the packed corpus hands out such views so the codec and
// service can treat rows as ordinary fingerprints. It panics on a length
// mismatch; the spare-bit invariant is the caller's responsibility (checking
// it would defeat the zero-copy purpose).
func View(words []uint64, nbits int) *Set {
	if len(words) != wordsFor(nbits) {
		panic(fmt.Sprintf("bitset: view of %d words cannot hold exactly %d bits", len(words), nbits))
	}
	return &Set{words: words, nbits: nbits}
}

// trim clears the spare bits of the last word, restoring the invariant.
func (s *Set) trim() {
	if r := s.nbits & wordMask; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}

// Len returns the number of bits in the vector.
func (s *Set) Len() int { return s.nbits }

// Words exposes the underlying storage. The slice must not be resized;
// mutating it directly bypasses the spare-bit invariant.
func (s *Set) Words() []uint64 { return s.words }

// Set turns bit i on. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>wordShift] |= 1 << uint(i&wordMask)
}

// Clear turns bit i off. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>wordShift] &^= 1 << uint(i&wordMask)
}

// Test reports whether bit i is on. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.nbits {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.nbits))
	}
}

// Count returns the number of bits set to one (the L1 norm).
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset clears every bit, keeping the length.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), nbits: s.nbits}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t have the same length and the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.nbits != t.nbits {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// AndCount returns |s AND t|, the size of the bitwise intersection, without
// allocating. It panics if the lengths differ. This is the hot kernel of the
// SHF Jaccard estimator.
func AndCount(s, t *Set) int {
	matchLen(s, t)
	return AndCountWords4(s.words, t.words)
}

// OrCount returns |s OR t| without allocating. It panics if the lengths
// differ.
func OrCount(s, t *Set) int {
	matchLen(s, t)
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w | t.words[i])
	}
	return n
}

// XorCount returns |s XOR t| (the Hamming distance) without allocating. It
// panics if the lengths differ.
func XorCount(s, t *Set) int {
	matchLen(s, t)
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w ^ t.words[i])
	}
	return n
}

// And sets s to s AND t. It panics if the lengths differ.
func (s *Set) And(t *Set) {
	matchLen(s, t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Or sets s to s OR t. It panics if the lengths differ.
func (s *Set) Or(t *Set) {
	matchLen(s, t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// AndNot sets s to s AND NOT t. It panics if the lengths differ.
func (s *Set) AndNot(t *Set) {
	matchLen(s, t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// SubsetOf reports whether every bit of s is also set in t. It panics if the
// lengths differ.
func (s *Set) SubsetOf(t *Set) bool {
	matchLen(s, t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. i may be any value; negative values start from bit zero.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.nbits {
		return -1
	}
	w := i >> wordShift
	cur := s.words[w] >> uint(i&wordMask)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w<<wordShift + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// Ones returns the indices of all set bits, in increasing order. The
// indices are emitted in a single word-streaming loop (clear-lowest-bit
// extraction), not by repeated NextSet probing; the preceding Count pass
// only sizes the allocation exactly.
func (s *Set) Ones() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		base := wi << wordShift
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// String renders the set as {i, j, ...} for debugging. Large sets are
// abbreviated.
func (s *Set) String() string {
	const maxShown = 32
	var b strings.Builder
	b.WriteByte('{')
	shown := 0
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		if shown == maxShown {
			fmt.Fprintf(&b, ", …(%d more)", s.Count()-maxShown)
			break
		}
		if shown > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		shown++
	}
	b.WriteByte('}')
	return b.String()
}

func matchLen(s, t *Set) {
	if s.nbits != t.nbits {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", s.nbits, t.nbits))
	}
}
