// Package router is the scatter-gather tier of the sharded KNN service:
// it places users on shard-cores with a consistent-hash ring, fans /query
// out to every shard and merges the per-shard top-k deterministically,
// routes mutations to the owning shard, and survives slow, dead and
// flapping shards with hedged requests, bounded retries, per-shard
// circuit breakers and partial-result degradation.
//
// The failure contract mirrors how the rest of the system degrades
// (Debatty et al., arXiv:1602.06819 — survive churn by degrading, not
// blocking): when a minority of shards is down a query still answers 200,
// with an X-Partial-Results: served/total header naming the lost
// coverage; only when coverage falls below the configured quorum does the
// router answer 503, and then always with a Retry-After computed from the
// sick shards' breaker half-open deadlines. Recall degrades proportionally
// to the lost coverage — each shard owns a disjoint subset of the users,
// so losing one of N shards loses at most its share of any neighborhood,
// never the whole answer.
package router

import (
	"hash/fnv"
	"sort"
)

// defaultReplicas is the number of virtual nodes per shard on the hash
// ring. 128 points per shard keeps the max/min ownership spread within a
// few percent for small shard counts while the ring stays tiny (N×128
// 12-byte points).
const defaultReplicas = 128

// Placement maps user ids onto shards with a consistent-hash ring: each
// shard projects `replicas` virtual points onto the ring, and a user is
// owned by the shard whose point follows the user's hash clockwise.
// Adding or removing one shard therefore moves only ~1/N of the users —
// the property every later rebalancing feature rides on. Placement is
// deterministic across processes for a fixed shard-name list, so the
// router and every shard-core (which uses it to reject misrouted ids with
// 421) agree on ownership without coordination.
//
// Placement is immutable after construction and safe for concurrent use.
type Placement struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// mix64 is the splitmix64 finalizer. FNV-1a alone avalanches poorly on
// short inputs that differ only in trailing bytes (sequential replica
// counters, "user-<n>" ids), which skews ring ownership badly — measured
// >50% on one of four shards. One multiply-xorshift round restores the
// uniformity consistent hashing needs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewPlacement builds the ring for the given shard names (order matters
// only for the shard indices Owner returns). replicas ≤ 0 selects the
// default.
func NewPlacement(shards []string, replicas int) *Placement {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	p := &Placement{n: len(shards), points: make([]ringPoint, 0, len(shards)*replicas)}
	var buf [8]byte
	for i, name := range shards {
		for r := 0; r < replicas; r++ {
			h := fnv.New64a()
			h.Write([]byte(name))
			buf[0] = '#'
			buf[1] = byte(r)
			buf[2] = byte(r >> 8)
			buf[3] = byte(r >> 16)
			buf[4] = byte(r >> 24)
			h.Write(buf[:5])
			p.points = append(p.points, ringPoint{hash: mix64(h.Sum64()), shard: int32(i)})
		}
	}
	sort.Slice(p.points, func(a, b int) bool {
		if p.points[a].hash != p.points[b].hash {
			return p.points[a].hash < p.points[b].hash
		}
		// Hash collisions between virtual points are broken by shard index
		// so the ring order — and therefore ownership — is deterministic.
		return p.points[a].shard < p.points[b].shard
	})
	return p
}

// NumShards returns the number of shards on the ring.
func (p *Placement) NumShards() int { return p.n }

// Owner returns the index of the shard owning the given user id, or -1
// for an empty ring.
func (p *Placement) Owner(id string) int {
	if len(p.points) == 0 {
		return -1
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	key := mix64(h.Sum64())
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= key })
	if i == len(p.points) {
		i = 0 // wrap: the ring is circular
	}
	return int(p.points[i].shard)
}
