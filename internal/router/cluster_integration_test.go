package router_test

// Integration tests for the dynamic cluster tier: real service.Server
// shard-cores behind httptest servers, a real router in front, and the
// full join → transition → import → cutover → retire machinery driven
// through the router's public HTTP surface. (External test package:
// service imports router, so these tests cannot live in package router.)

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
	"goldfinger/internal/router"
	"goldfinger/internal/service"
)

const clusterBits = 256

func newShardProc(t *testing.T, name string) (*httptest.Server, *service.Server) {
	t.Helper()
	srv, err := service.NewServer(clusterBits)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetShardName(name)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func newClusterRouter(t *testing.T, cfg router.Config) (*router.Router, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front
}

func putUser(t *testing.T, base, id string, fp core.Fingerprint) int {
	t.Helper()
	var body strings.Builder
	if err := core.WriteFingerprint(&body, fp); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/users/"+id+"/fingerprint", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func clusterView(t *testing.T, base string) (epoch uint64, mode string) {
	t.Helper()
	resp, err := http.Get(base + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cv struct {
		RingEpoch uint64 `json:"ring_epoch"`
		RingMode  string `json:"ring_mode"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	return cv.RingEpoch, cv.RingMode
}

func waitForRing(t *testing.T, base string, epoch uint64, mode string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		e, m := clusterView(t, base)
		if e == epoch && m == mode {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not reach epoch %d %s within %v (at epoch %d %s)", epoch, mode, within, e, m)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func shardLiveUsers(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Users - st.DeletedUsers
}

func postJSONBody(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClusterJoinMigratesAndLeaveMigratesBack: a shard joining a loaded
// single-shard cluster receives ~1/N of the users through the migration
// protocol; its clean departure streams them back. No user is ever lost
// or duplicated (live counts across shards always sum to N), and after
// each stable epoch every id answers through the router.
func TestClusterJoinMigratesAndLeaveMigratesBack(t *testing.T) {
	const n = 80
	tsA, _ := newShardProc(t, "shard-0")
	tsB, _ := newShardProc(t, "shard-1")

	_, front := newClusterRouter(t, router.Config{
		Shards:        []router.ShardSpec{{Name: "shard-0", URL: tsA.URL}},
		ProbeInterval: 20 * time.Millisecond,
		QueryTimeout:  2 * time.Second,
	})

	scheme := core.MustScheme(clusterBits, 7)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("user-%04d", i)
		fp := scheme.Fingerprint(testProfile(i))
		if status := putUser(t, front.URL, ids[i], fp); status != http.StatusNoContent {
			t.Fatalf("seed PUT %s: status %d", ids[i], status)
		}
	}

	// Grow: shard-1 joins; the reconcile loop must migrate its slice over
	// and reach stable epoch 2.
	resp := postJSONBody(t, front.URL+"/cluster/join", map[string]string{"name": "shard-1", "url": tsB.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitForRing(t, front.URL, 2, "stable", 15*time.Second)

	moved := 0
	newNames := []string{"shard-0", "shard-1"}
	for _, id := range ids {
		if router.NewPlacement(newNames, 0).OwnerName(newNames, id) == "shard-1" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("degenerate ring: no user moved to the joiner")
	}
	// Retire is asynchronous cleanup after cutover; poll briefly.
	waitFor(t, 5*time.Second, "post-join user split", func() error {
		liveA, liveB := shardLiveUsers(t, tsA), shardLiveUsers(t, tsB)
		if liveA+liveB != n || liveB != moved {
			return fmt.Errorf("live split A=%d B=%d, want total %d with B=%d", liveA, liveB, n, moved)
		}
		return nil
	})

	// Every id still answers through the router (404 would mean lost).
	for _, id := range ids {
		resp, err := http.Get(front.URL + "/users/" + id + "/neighbors")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("user %s lost after join migration", id)
		}
	}

	// Shrink: shard-1 leaves cleanly; its users must stream back.
	resp = postJSONBody(t, front.URL+"/cluster/leave", map[string]string{"name": "shard-1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("leave: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitForRing(t, front.URL, 3, "stable", 15*time.Second)
	waitFor(t, 5*time.Second, "post-leave user split", func() error {
		liveA, liveB := shardLiveUsers(t, tsA), shardLiveUsers(t, tsB)
		if liveA != n || liveB != 0 {
			return fmt.Errorf("live split A=%d B=%d, want %d and 0", liveA, liveB, n)
		}
		return nil
	})
	for _, id := range ids {
		resp, err := http.Get(front.URL + "/users/" + id + "/neighbors")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("user %s lost after leave migration", id)
		}
	}
}

// TestMigrationFencesWritesAndServesReads: during the transition window,
// mutations of moving ids fail fast with 503+Retry-After while reads of
// the same ids keep answering from the old owner; after cutover the
// writes succeed at the gainer.
func TestMigrationFencesWritesAndServesReads(t *testing.T) {
	const n = 60
	tsA, _ := newShardProc(t, "shard-0")
	tsB, srvB := newShardProc(t, "shard-1")
	// Pace the import to ~40 users/s so the transition window is wide
	// enough (hundreds of ms) to observe deterministically.
	srvB.SetMigrateRate(40)

	_, front := newClusterRouter(t, router.Config{
		Shards:        []router.ShardSpec{{Name: "shard-0", URL: tsA.URL}},
		ProbeInterval: 20 * time.Millisecond,
	})
	scheme := core.MustScheme(clusterBits, 7)
	newNames := []string{"shard-0", "shard-1"}
	var movedID string
	var movedFP core.Fingerprint
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("user-%04d", i)
		fp := scheme.Fingerprint(testProfile(i))
		if status := putUser(t, front.URL, id, fp); status != http.StatusNoContent {
			t.Fatalf("seed PUT %s: status %d", id, status)
		}
		if movedID == "" && router.NewPlacement(newNames, 0).OwnerName(newNames, id) == "shard-1" {
			movedID, movedFP = id, fp
		}
	}
	if movedID == "" {
		t.Fatal("no seeded id moves to shard-1")
	}

	resp := postJSONBody(t, front.URL+"/cluster/join", map[string]string{"name": "shard-1", "url": tsB.URL})
	resp.Body.Close()

	// Catch the transition window.
	waitForRing(t, front.URL, 2, "transition", 10*time.Second)

	var body strings.Builder
	if err := core.WriteFingerprint(&body, movedFP); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, front.URL+"/users/"+movedID+"/fingerprint", strings.NewReader(body.String()))
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, wresp.Body)
	wresp.Body.Close()
	if _, mode := clusterView(t, front.URL); mode == "transition" {
		// Only assert if the window is still open — otherwise the write
		// legitimately raced cutover and landed.
		if wresp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("write of moving id during transition: status %d, want 503", wresp.StatusCode)
		} else if wresp.Header.Get("Retry-After") == "" {
			t.Error("fenced write 503 lacks Retry-After")
		}
		// A read of the same id must keep answering (from the old owner).
		rresp, err := http.Get(front.URL + "/users/" + movedID + "/neighbors")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, rresp.Body)
		rresp.Body.Close()
		if rresp.StatusCode == http.StatusNotFound || rresp.StatusCode == http.StatusServiceUnavailable {
			t.Errorf("read of moving id during transition: status %d, want served", rresp.StatusCode)
		}
	} else {
		t.Log("transition closed before the fenced write; skipping window asserts")
	}

	waitForRing(t, front.URL, 2, "stable", 15*time.Second)
	// After cutover the same write lands at the gainer.
	req, _ = http.NewRequest(http.MethodPut, front.URL+"/users/"+movedID+"/fingerprint", strings.NewReader(body.String()))
	wresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusNoContent {
		t.Errorf("write of moved id after cutover: status %d, want 204", wresp.StatusCode)
	}
}

// TestPlacementDriftRedirects: a shard whose installed ring disagrees
// with the router answers 421 naming the owner; the router must count
// the drift and retry once at the named shard.
func TestPlacementDriftRedirects(t *testing.T) {
	tsA, srvA := newShardProc(t, "shard-0")
	tsB, srvB := newShardProc(t, "shard-1")
	// Both shards believe shard-1 owns everything (a ring the router
	// never installed — manufactured drift at a higher epoch so the
	// router's pushes cannot overwrite it mid-test).
	for _, srv := range []*service.Server{srvA, srvB} {
		if err := srv.InstallRing(service.RingInfo{Epoch: 99, Mode: service.RingStable, Names: []string{"shard-1"}}); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	_, front := newClusterRouter(t, router.Config{
		Shards: []router.ShardSpec{
			{Name: "shard-0", URL: tsA.URL},
			{Name: "shard-1", URL: tsB.URL},
		},
		ProbeInterval: -1, // keep the router from pushing its own ring
		Metrics:       reg,
	})

	// Find an id the router routes to shard-0.
	names := []string{"shard-0", "shard-1"}
	var id string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("user-%04d", i)
		if router.NewPlacement(names, 0).OwnerName(names, cand) == "shard-0" {
			id = cand
			break
		}
	}
	scheme := core.MustScheme(clusterBits, 7)
	if status := putUser(t, front.URL, id, scheme.Fingerprint(testProfile(3))); status != http.StatusNoContent {
		t.Fatalf("drift-redirected PUT: status %d, want 204 after one redirect", status)
	}
	if got := reg.Counter("router.placement_drift.total").Value(); got != 1 {
		t.Errorf("placement drift counter = %d, want 1", got)
	}
	// The user must have landed on shard-1 (the shard the 421 named).
	if live := shardLiveUsers(t, tsB); live != 1 {
		t.Errorf("shard-1 live users = %d, want the redirected PUT's 1", live)
	}
}

// TestProberBacksOffAgainstLongDeadShard: probe attempts against a shard
// that stays dead must decay exponentially (capped), not fire at full
// rate forever.
func TestProberBacksOffAgainstLongDeadShard(t *testing.T) {
	var healthProbes atomic.Int64
	counting := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if strings.HasSuffix(req.URL.Path, "/healthz") {
			healthProbes.Add(1)
		}
		return http.DefaultTransport.RoundTrip(req)
	})
	_, front := newClusterRouter(t, router.Config{
		// A dead port: every dial fails instantly with connection refused.
		Shards:        []router.ShardSpec{{Name: "shard-0", URL: "http://127.0.0.1:1"}},
		ProbeInterval: 10 * time.Millisecond,
		Breaker: router.BreakerConfig{
			Window: 8, MinSamples: 1, ErrorRate: 0.5,
			ConsecutiveFails: 1, OpenFor: 10 * time.Millisecond, HalfOpenProbes: 1,
		},
		Transport: counting,
	})

	// Trip the breaker with one real request so the prober takes over.
	resp, err := http.Get(front.URL + "/users/u-1/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	time.Sleep(1 * time.Second)
	probes := healthProbes.Load()
	// Full rate would be ~100 probes (10ms interval, 10ms open window).
	// Exponential backoff from 10ms capped at 100ms allows ~15 plus a few
	// races; 35 is far below linear while immune to scheduler noise.
	if probes == 0 {
		t.Fatal("prober never dialed the dead shard")
	}
	if probes > 35 {
		t.Errorf("%d probes against a dead shard in 1s; backoff is not decaying (linear would be ~100)", probes)
	}
	t.Logf("probes against dead shard in 1s: %d", probes)
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// testProfile derives a small deterministic profile from a seed so each
// user gets a distinct fingerprint.
func testProfile(i int) profile.Profile {
	return profile.New(
		profile.ItemID(i*3+1),
		profile.ItemID(i*7+2),
		profile.ItemID(i*11+5),
		profile.ItemID(i%13),
	)
}

func waitFor(t *testing.T, within time.Duration, what string, fn func() error) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		err := fn()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not reached within %v: %v", what, within, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
