package router

// The router's dynamic side: peer membership, live ring changes, and the
// migration driver that turns a ring delta into WAL-backed data movement.
//
// The router is the membership authority (hub-and-spoke: shards join here
// and learn the ring from here). A ring change runs this state machine,
// serialized in a single reconcile goroutine:
//
//   stable(E) ──ΔMembership──▶ transition(E+1) ──imports done──▶ stable(E+1) ──▶ retire
//
// During transition(E+1):
//   - reads of moved ids route to the OLD owner (it still has everything),
//     falling back to the gainer if the old owner fails mid-handoff;
//   - mutations of moved ids are fenced — fail-fast 503 with Retry-After —
//     so the export stream the gainer pulls is a frozen, authoritative
//     snapshot and an acked write can never race the copy;
//   - /query scatters over the union of both rings' shards and the merge
//     deduplicates by user id, so coverage never has a hole.
//
// Cutover is an atomic pointer swap of the router's ringState; the fence
// lifts and routing follows the new ring in the same instant. Retire (the
// loser tombstoning its handed-off users) runs after cutover and is pure
// cleanup — until it lands, moved users exist on both shards, which the
// query-path dedup already tolerates.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"goldfinger/internal/gossip"
)

// Cluster / migration metric names.
const (
	metricDrift        = "router.placement_drift.total"
	metricFencedWrites = "router.migration.fenced_writes.total"
	metricDualReads    = "router.migration.dual_reads.total"
	metricMigrations   = "router.migration.total"
	metricMigFailed    = "router.migration.failed.total"
	metricMigMovedSecs = "router.migration.seconds"
	metricRingEpoch    = "router.ring.epoch"
)

// ringMsg is the JSON body pushed to every shard's POST /ring. It must
// stay wire-compatible with the service package's RingInfo (the service
// cannot be imported from here — it imports us).
type ringMsg struct {
	Epoch     uint64   `json:"epoch"`
	Mode      string   `json:"mode"` // "stable" or "transition"
	Names     []string `json:"names"`
	PrevNames []string `json:"prev_names,omitempty"`
	Replicas  int      `json:"replicas,omitempty"`
}

// migState is the in-flight migration attached to a transition ringState.
type migState struct {
	delta      *Delta
	prevNames  []string
	prevShards map[string]*shard // old-ring shard runtimes by name
}

// ringState is one immutable routing epoch: the ring, the shard runtimes
// resolved against it, and (in transition) the migration overlay. The
// router swaps it atomically; every request loads it exactly once.
type ringState struct {
	gen    uint64 // distribution generation: bumps on every install, drives re-push
	epoch  uint64 // ring epoch: bumps once per membership change
	names  []string
	place  *Placement
	shards []*shard // aligned with names
	byName map[string]*shard
	mig    *migState // non-nil while a migration streams
}

func (st *ringState) msg() ringMsg {
	m := ringMsg{Epoch: st.epoch, Mode: "stable", Names: st.names}
	if st.mig != nil {
		m.Mode = "transition"
		m.PrevNames = st.mig.prevNames
	}
	return m
}

// ownerShard resolves id's owner under the (new) ring.
func (st *ringState) ownerShard(id string) *shard {
	if st.place == nil || len(st.shards) == 0 {
		return nil
	}
	i := st.place.Owner(id)
	if i < 0 || i >= len(st.shards) {
		return nil
	}
	return st.shards[i]
}

// route resolves where a /users request goes. For moved ids during a
// transition: mutations are fenced (fenced=true, no shard), reads go to
// the old owner with the gainer as fallback. Everything else routes by
// the current ring.
func (st *ringState) route(id string, mutation bool) (primary, fallback *shard, fenced bool) {
	if st.mig != nil {
		if from, to, moved := st.mig.delta.Moved(id); moved {
			if mutation {
				return nil, nil, true
			}
			old := st.mig.prevShards[from]
			gainer := st.byName[to]
			if old == nil {
				return gainer, nil, false
			}
			return old, gainer, false
		}
	}
	return st.ownerShard(id), nil, false
}

// queryShards is the scatter set: the ring's shards plus, during a
// transition, the old ring's shards not on the new ring (a leaving shard
// still holds its users until retire).
func (st *ringState) queryShards() []*shard {
	if st.mig == nil {
		return st.shards
	}
	out := append([]*shard(nil), st.shards...)
	for name, sh := range st.mig.prevShards {
		if _, stays := st.byName[name]; !stays {
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].spec.Name < out[b].spec.Name })
	return out
}

// allShards is queryShards plus nothing today — a distinct name because
// the prober and ring distribution must reach every shard the router
// knows, which during a transition is exactly the scatter set.
func (st *ringState) allShards() []*shard { return st.queryShards() }

// Membership returns the router's member table (the membership authority
// for the cluster).
func (r *Router) Membership() *gossip.Membership { return r.mem }

// kickReconcile nudges the reconcile loop without blocking.
func (r *Router) kickReconcile() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// installRing publishes a new ringState and nudges ring distribution.
func (r *Router) installRing(st *ringState) {
	st.gen = r.ringGen.Add(1)
	r.ring.Store(st)
	r.obs.Gauge(metricRingEpoch).Set(int64(st.epoch))
}

// getShard returns the runtime for spec, creating it on first sight. A
// changed URL for a known name is a replacement process: it gets a fresh
// runtime (fresh breaker — the old process's failure history is not the
// new process's).
func (r *Router) getShard(spec ShardSpec) *shard {
	r.shardsMu.Lock()
	defer r.shardsMu.Unlock()
	if sh, ok := r.byName[spec.Name]; ok && sh.spec.URL == spec.URL {
		return sh
	}
	sh := r.newShard(spec)
	r.byName[spec.Name] = sh
	return sh
}

// reconcileLoop is the single driver of ring changes: every kick, it
// compares the membership table against the installed ring and runs the
// migration state machine when they differ. One goroutine, so changes
// serialize and a queued join during a migration waits its turn.
func (r *Router) reconcileLoop(ctx context.Context) {
	defer close(r.reconDone)
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.kick:
		}
		// Coalesce kicks that piled up while a migration ran.
		for {
			select {
			case <-r.kick:
				continue
			default:
			}
			break
		}
		if err := r.reconcile(ctx); err != nil && ctx.Err() == nil {
			r.logf("router: ring reconcile: %v", err)
		}
	}
}

// reconcile makes the installed ring match the membership table.
func (r *Router) reconcile(ctx context.Context) error {
	peers, _ := r.mem.Snapshot()
	specs := make([]ShardSpec, 0, len(peers))
	for _, p := range peers {
		if p.State != gossip.PeerLeft {
			specs = append(specs, ShardSpec{Name: p.Name, URL: p.URL})
		}
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}

	cur := r.ring.Load()
	sameNames := equalStrings(cur.names, names)
	if sameNames {
		// No membership change — but a member may be a replacement process
		// (same name, new URL). Re-resolve runtimes; if any differ, reinstall
		// the same epoch with the new runtimes and re-push.
		changed := false
		shards := make([]*shard, len(specs))
		for i, spec := range specs {
			shards[i] = r.getShard(spec)
			if i < len(cur.shards) && shards[i] != cur.shards[i] {
				changed = true
			}
		}
		if !changed {
			return nil
		}
		st := &ringState{epoch: cur.epoch, names: names, place: cur.place, shards: shards, byName: shardMap(shards)}
		r.installRing(st)
		r.pushRingAll(ctx, st)
		return nil
	}
	return r.changeRing(ctx, cur, specs, names)
}

// changeRing runs one full migration: transition install, per-pair
// imports, cutover, retire.
func (r *Router) changeRing(ctx context.Context, cur *ringState, specs []ShardSpec, names []string) error {
	epoch := cur.epoch + 1
	shards := make([]*shard, len(specs))
	for i, spec := range specs {
		shards[i] = r.getShard(spec)
	}
	place := NewPlacement(names, r.cfg.Replicas)
	next := &ringState{epoch: epoch, names: names, place: place, shards: shards, byName: shardMap(shards)}

	// An empty old or new ring moves nothing: there is no one to stream
	// from (first join) or to (last leave). Install stable directly.
	delta := ComputeDelta(cur.names, names, r.cfg.Replicas)
	if len(cur.names) == 0 || len(names) == 0 || len(delta.Moves) == 0 {
		r.installRing(next)
		r.pushRingAll(ctx, next)
		r.logf("router: ring epoch %d installed (%d shards, no data movement)", epoch, len(names))
		return nil
	}

	r.logf("router: ring epoch %d: migrating %d segment(s) across %d pair(s): %v",
		epoch, len(delta.Segments), len(delta.Moves), delta.Moves)
	start := time.Now()
	r.obs.Counter(metricMigrations).Inc()

	// 1. Transition: dual-ownership on the shards, fence + dual-read here.
	next.mig = &migState{delta: delta, prevNames: cur.names, prevShards: shardMap(cur.shards)}
	r.installRing(next)
	r.pushRingAll(ctx, next)

	// 2. Imports, one per (from,to) pair. Retried until the gainer answers
	// 200 — a gainer that crashes mid-stream recovers (its WAL holds the
	// un-matched import-begin mark), rejoins, gets the transition ring
	// re-pushed, and the retry re-pulls the same frozen stream.
	importFailed := map[string]bool{} // by losing shard: suppresses its retire
	for _, mv := range delta.Moves {
		if err := r.driveImport(ctx, epoch, mv); err != nil {
			importFailed[mv.From] = true
			r.obs.Counter(metricMigFailed).Inc()
			r.logf("router: migration epoch %d: import %s->%s failed permanently: %v (slice stays on %s, not routed — rejoin %s to retry)",
				epoch, mv.From, mv.To, err, mv.From, mv.To)
		}
	}

	// 3. Cutover: drop the migration overlay — fence lifts, routing flips.
	stable := &ringState{epoch: epoch, names: names, place: place, shards: shards, byName: next.byName}
	r.installRing(stable)
	r.pushRingAll(ctx, stable)

	// 4. Retire each loser whose exports all landed. Pure cleanup: until it
	// runs, moved users live on both shards and query dedup hides it.
	for _, mv := range delta.Moves {
		if importFailed[mv.From] {
			continue
		}
		if done := r.retired[mv.From]; done == epoch {
			continue // this loser already retired at this epoch (multiple gainers)
		}
		if err := r.driveRetire(ctx, epoch, mv.From); err != nil {
			r.logf("router: migration epoch %d: retire of %s failed: %v (harmless duplicates remain)", epoch, mv.From, err)
		} else {
			r.retired[mv.From] = epoch
		}
	}
	r.obs.Histogram(metricMigMovedSecs, nil).ObserveSince(start)
	r.logf("router: ring epoch %d stable after %s", epoch, time.Since(start).Round(time.Millisecond))
	return nil
}

// driveImport tells the gaining shard to pull its slice, retrying with
// backoff until success or the migrate timeout.
func (r *Router) driveImport(ctx context.Context, epoch uint64, mv Move) error {
	deadline := time.Now().Add(r.cfg.migrateTimeout())
	backoff := 200 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Re-resolve both endpoints every attempt: either side may have
		// crashed and rejoined on a new port mid-migration, and /cluster/join
		// refreshes the by-name handles without going through this loop.
		from, okF := r.lookupShard(mv.From)
		to, okT := r.lookupShard(mv.To)
		if !okF || !okT {
			return fmt.Errorf("unknown shard in move %s->%s", mv.From, mv.To)
		}
		body, _ := json.Marshal(map[string]any{"epoch": epoch, "from": mv.From, "from_url": from.spec.URL})
		actx, cancel := context.WithDeadline(ctx, deadline)
		status, respBody, err := r.postJSON(actx, to.spec.URL+"/migrate/import", body)
		cancel()
		switch {
		case err == nil && status == http.StatusOK:
			r.logf("router: migration epoch %d: %s->%s imported: %s", epoch, mv.From, mv.To, bytes.TrimSpace(respBody))
			return nil
		case err != nil:
			lastErr = err
		default:
			lastErr = fmt.Errorf("status %d: %s", status, bytes.TrimSpace(respBody))
		}
		if time.Now().After(deadline) {
			return lastErr
		}
		if attempt == 0 || attempt%8 == 0 {
			r.logf("router: migration epoch %d: import %s->%s retrying: %v", epoch, mv.From, mv.To, lastErr)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// driveRetire tells a losing shard to tombstone its handed-off users.
func (r *Router) driveRetire(ctx context.Context, epoch uint64, loser string) error {
	body, _ := json.Marshal(map[string]any{"epoch": epoch})
	deadline := time.Now().Add(15 * time.Second)
	backoff := 200 * time.Millisecond
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		sh, ok := r.lookupShard(loser)
		if !ok {
			return fmt.Errorf("unknown shard %s", loser)
		}
		// A loser that left the ring is no longer covered by pushRingAll or
		// the prober backfill, yet it must see the stable epoch before it
		// will retire — push to it directly (no-op once acked).
		r.pushRingTo(ctx, sh, r.ring.Load())
		actx, cancel := context.WithDeadline(ctx, deadline)
		status, respBody, err := r.postJSON(actx, sh.spec.URL+"/migrate/retire", body)
		cancel()
		if err == nil && status == http.StatusOK {
			r.logf("router: migration epoch %d: %s retired: %s", epoch, loser, bytes.TrimSpace(respBody))
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("status %d: %s", status, bytes.TrimSpace(respBody))
		}
		if time.Now().After(deadline) {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (r *Router) lookupShard(name string) (*shard, bool) {
	r.shardsMu.Lock()
	defer r.shardsMu.Unlock()
	sh, ok := r.byName[name]
	return sh, ok
}

// pushRingAll distributes a ringState to every shard it references, one
// parallel best-effort attempt each. Shards that miss it (down, slow) are
// backfilled by the prober, which re-pushes until the shard acks the
// current generation — and by /cluster/join, which pushes synchronously.
func (r *Router) pushRingAll(ctx context.Context, st *ringState) {
	shards := st.allShards()
	done := make(chan struct{}, len(shards))
	for _, sh := range shards {
		go func(sh *shard) {
			defer func() { done <- struct{}{} }()
			r.pushRingTo(ctx, sh, st)
		}(sh)
	}
	for range shards {
		<-done
	}
}

// pushRingTo POSTs the ring to one shard and records the acked generation.
func (r *Router) pushRingTo(ctx context.Context, sh *shard, st *ringState) {
	if sh.ringSynced.Load() >= st.gen {
		return
	}
	body, _ := json.Marshal(st.msg())
	pctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	status, respBody, err := r.postJSON(pctx, sh.spec.URL+"/ring", body)
	if err != nil || status != http.StatusOK {
		detail := ""
		if err != nil {
			detail = err.Error()
		} else {
			detail = fmt.Sprintf("status %d: %s", status, bytes.TrimSpace(respBody))
		}
		r.logf("router: ring push to %s (epoch %d): %s", sh.spec.Name, st.epoch, detail)
		return
	}
	// Another goroutine may have pushed a newer generation concurrently —
	// only ratchet forward.
	for {
		old := sh.ringSynced.Load()
		if old >= st.gen || sh.ringSynced.CompareAndSwap(old, st.gen) {
			return
		}
	}
}

func (r *Router) postJSON(ctx context.Context, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, respBody, nil
}

// --- cluster HTTP surface ---

type joinRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// handleClusterJoin registers (or re-registers) a shard process. A brand
// new name triggers a migration; a restart of a known process is a no-op
// beyond re-pushing the current ring so the shard is immediately
// ring-aware again (shards do not persist the ring across a crash).
func (r *Router) handleClusterJoin(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "POST {name, url} to join")
		return
	}
	var jr joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&jr); err != nil {
		httpError(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	if jr.Name == "" || jr.URL == "" {
		httpError(w, http.StatusBadRequest, "join needs name and url")
		return
	}
	changed := r.Join(req.Context(), jr.Name, jr.URL)
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":   r.ring.Load().epoch,
		"members": r.mem.Members(),
		"changed": changed,
	})
}

// Join registers (or re-registers) a shard process programmatically — the
// same operation as POST /cluster/join. Returns whether membership
// changed: a change queues a ring transition on the reconcile loop; no
// change means a restart of a known process, which gets the current ring
// re-pushed synchronously so it knows its slice before taking traffic
// (shards do not necessarily persist the ring across a crash).
func (r *Router) Join(ctx context.Context, name, url string) bool {
	changed := r.mem.Join(name, url)
	r.logf("router: shard %s joined from %s (membership changed=%v)", name, url, changed)
	if changed {
		// Refresh the by-name handle immediately rather than waiting for the
		// reconcile loop: an in-flight migration driver re-resolves its
		// target per attempt, so a crashed gainer that restarts on a new
		// port becomes reachable without unblocking the reconciler first.
		r.getShard(ShardSpec{Name: name, URL: url})
		r.kickReconcile()
	} else {
		st := r.ring.Load()
		if sh, ok := r.lookupShard(name); ok {
			sh.ringSynced.Store(0) // its in-memory ring died with the old process
			r.pushRingTo(ctx, sh, st)
		}
	}
	return changed
}

// handleClusterLeave marks a clean departure; the reconcile loop migrates
// its slice away (pulling from it — it must stay up until the migration
// completes to keep its data).
func (r *Router) handleClusterLeave(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "POST {name} to leave")
		return
	}
	var lr struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&lr); err != nil {
		httpError(w, http.StatusBadRequest, "bad leave body: %v", err)
		return
	}
	if !r.mem.Leave(lr.Name) {
		httpError(w, http.StatusNotFound, "%q is not a member", lr.Name)
		return
	}
	r.logf("router: shard %s leaving; migration queued", lr.Name)
	r.kickReconcile()
	writeJSON(w, http.StatusAccepted, map[string]any{"members": r.mem.Members()})
}

// handleCluster reports the membership table and ring state.
func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	peers, version := r.mem.Snapshot()
	st := r.ring.Load()
	mode := "stable"
	moves := []Move(nil)
	if st.mig != nil {
		mode = "transition"
		moves = st.mig.delta.Moves
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"membership_version": version,
		"ring_epoch":         st.epoch,
		"ring_mode":          mode,
		"ring_names":         st.names,
		"migrating":          moves,
		"peers":              peers,
	})
}

func shardMap(shards []*shard) map[string]*shard {
	m := make(map[string]*shard, len(shards))
	for _, sh := range shards {
		m[sh.spec.Name] = sh
	}
	return m
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testShard returns the i-th ring shard — a test accessor kept here so
// tests survive the ringState indirection.
func (r *Router) testShard(i int) *shard { return r.ring.Load().shards[i] }
