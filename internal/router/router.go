package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/gossip"
	"goldfinger/internal/obs"
)

// ShardSpec names one backend shard-core: a stable name (the placement
// ring hashes it) and the base URL the router dials.
type ShardSpec struct {
	Name string
	URL  string
}

// Config configures a Router. Zero values select the documented defaults.
type Config struct {
	// Shards is the backend set. Placement, scatter width and quorum all
	// derive from it. Must be non-empty.
	Shards []ShardSpec
	// Replicas is the virtual-node count per shard on the placement ring;
	// 0 selects the default (128).
	Replicas int
	// Quorum is the minimum fraction of shards that must contribute to a
	// /query for a 200: served ≥ ceil(Quorum×total), floored at 1 shard.
	// Below it the router answers 503 with a Retry-After computed from
	// the sick shards' breaker deadlines. 0 selects 0.5 — a minority of
	// shards down degrades, a majority down fails.
	Quorum float64
	// QueryTimeout is the default full-request budget for /query and
	// neighbor reads when the client sets no X-Request-Timeout and the
	// request context no deadline. Per-shard deadlines are derived from
	// it (budget minus a merge reserve). 0 selects 10s.
	QueryTimeout time.Duration
	// MutateTimeout is the same budget for PUT/DELETE mutations. 0
	// selects 15s (WAL fsync under load is slower than a read).
	MutateTimeout time.Duration
	// HedgeAfter is how long the router waits on a shard before hedging a
	// duplicate request at it. 0 derives it per shard from the breaker's
	// latency window: 2× the windowed p99, clamped to [10ms, budget/2]
	// (budget/4 while the window is empty) — the hedge fires only for
	// genuine stragglers. Negative disables hedging.
	HedgeAfter time.Duration
	// Retries bounds the extra attempts for idempotent reads after a
	// breaker-relevant failure, with exponential backoff from RetryBase.
	// Mutations are never retried by the router. Default 1; negative
	// disables.
	Retries int
	// RetryBase is the first retry's backoff. 0 selects 25ms.
	RetryBase time.Duration
	// Breaker tunes every shard's circuit breaker.
	Breaker BreakerConfig
	// ProbeInterval paces the active prober that re-tests open shards
	// (GET /healthz) so breakers re-close without waiting for live
	// traffic to volunteer as probes. 0 derives half the breaker's open
	// interval, floored at 100ms. Negative disables active probing.
	// Consecutive probe failures back the cadence off exponentially (per
	// shard, capped at 10× the interval bounded by 10s) so a long-dead
	// shard is not hammered at full rate forever.
	ProbeInterval time.Duration
	// MigrateTimeout bounds how long the migration driver retries one
	// shard-to-shard import before giving up on that slice (the slice
	// then stays on the losing shard, unrouted, until the gainer rejoins
	// and a later ring change retries). 0 selects 120s.
	MigrateTimeout time.Duration
	// MaxBodyBytes bounds the request and response bodies the router
	// buffers (fingerprints in, top-k JSON out). 0 selects 1 MiB.
	MaxBodyBytes int64
	// Metrics receives router and per-shard metrics. May be nil.
	Metrics *obs.Registry
	// Transport overrides the HTTP transport (tests inject faults here).
	Transport http.RoundTripper
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) quorumCount(total int) int {
	q := c.Quorum
	if q <= 0 {
		q = 0.5
	}
	if q > 1 {
		q = 1
	}
	n := int(q * float64(total))
	if float64(n) < q*float64(total) {
		n++ // ceil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}

func (c Config) queryTimeout() time.Duration {
	if c.QueryTimeout <= 0 {
		return 10 * time.Second
	}
	return c.QueryTimeout
}

func (c Config) mutateTimeout() time.Duration {
	if c.MutateTimeout <= 0 {
		return 15 * time.Second
	}
	return c.MutateTimeout
}

func (c Config) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 1
	}
	return c.Retries
}

func (c Config) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 25 * time.Millisecond
	}
	return c.RetryBase
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	iv := c.Breaker.openFor() / 2
	if iv < 100*time.Millisecond {
		iv = 100 * time.Millisecond
	}
	return iv
}

func (c Config) migrateTimeout() time.Duration {
	if c.MigrateTimeout <= 0 {
		return 120 * time.Second
	}
	return c.MigrateTimeout
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

// Router-level metric names.
const (
	metricQueries      = "router.query.total"
	metricQueryPartial = "router.query.partial.total"
	metricQueryFailed  = "router.query.failed.total"
	metricQuerySecs    = "router.query.seconds"
	metricHedges       = "router.hedge.total"
	metricHedgeWins    = "router.hedge.wins.total"
	metricRetries      = "router.retry.total"
)

// HeaderPartialResults reports scatter-gather coverage on every routed
// /query response: "served/total" shards. "3/4" on a 200 is the partial-
// result contract — the answer is missing at most the dead shard's share.
const HeaderPartialResults = "X-Partial-Results"

// HeaderRequestTimeout mirrors the service header: a Go duration or
// integer seconds, lowering (never raising) the request budget. The
// router consumes it for its own budget and re-emits the derived
// per-shard deadline downstream.
const HeaderRequestTimeout = "X-Request-Timeout"

// shard is one backend's runtime state.
type shard struct {
	spec    ShardSpec
	breaker *Breaker
	lats    *obs.Window

	inflight  *obs.Gauge
	requests  *obs.Counter
	failures  *obs.Counter
	sheds     *obs.Counter
	openSkips *obs.Counter

	degraded  atomic.Bool
	lastErr   atomic.Pointer[string]
	lastErrAt atomic.Int64 // unix nanos

	// ringSynced is the highest ringState generation this shard has acked
	// via POST /ring; the prober re-pushes while it lags the current one.
	ringSynced atomic.Uint64

	// Prober backoff state (satellite: a long-down shard is probed at a
	// decaying, capped cadence, not hammered at full rate forever).
	probeMu    sync.Mutex
	probeWait  time.Duration
	probeNext  time.Time
	probeFails int
}

// probeDue reports whether the backoff schedule allows a probe now.
func (s *shard) probeDue(now time.Time) bool {
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	return s.probeNext.IsZero() || !now.Before(s.probeNext)
}

// probeFailed doubles the shard's probe backoff up to the cap and returns
// the consecutive-failure count.
func (s *shard) probeFailed(base, cap time.Duration) int {
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	s.probeFails++
	if s.probeWait == 0 {
		s.probeWait = base
	} else {
		s.probeWait *= 2
	}
	if s.probeWait > cap {
		s.probeWait = cap
	}
	s.probeNext = time.Now().Add(s.probeWait)
	return s.probeFails
}

// probeSucceeded resets the backoff schedule.
func (s *shard) probeSucceeded() {
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	s.probeFails = 0
	s.probeWait = 0
	s.probeNext = time.Time{}
}

func (s *shard) noteError(err string) {
	s.lastErr.Store(&err)
	s.lastErrAt.Store(time.Now().UnixNano())
}

func (s *shard) lastError() string {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// Router is the scatter-gather front tier. Create with New, serve its
// Handler, and Close it on shutdown (stops the active prober and the
// ring-reconcile driver).
type Router struct {
	cfg    Config
	client *http.Client
	obs    *obs.Registry

	// ring is the current routing epoch, swapped atomically on membership
	// change (see cluster.go for the migration state machine around it).
	ring    atomic.Pointer[ringState]
	ringGen atomic.Uint64

	// mem is the cluster membership table; the router is its authority.
	mem *gossip.Membership

	// byName holds every shard runtime ever resolved, so breaker history
	// survives ring changes. A replacement process (same name, new URL)
	// gets a fresh runtime.
	shardsMu sync.Mutex
	byName   map[string]*shard

	// retired maps a losing shard to the last epoch it was retired at —
	// changeRing consults it so a loser feeding two gainers retires once.
	// Touched only from the reconcile goroutine.
	retired map[string]uint64

	kick      chan struct{}
	stop      context.CancelFunc
	probeDone chan struct{}
	reconDone chan struct{}
}

// New builds a router over the configured shards and starts its active
// health prober (disable with ProbeInterval < 0) and its ring-reconcile
// driver. Shards may be empty: a multi-process deployment starts the
// router bare and shard processes register via POST /cluster/join.
func New(cfg Config) (*Router, error) {
	names := make([]string, len(cfg.Shards))
	seen := map[string]bool{}
	for i, s := range cfg.Shards {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("router: shard %d needs a name and a URL", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("router: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		names[i] = s.Name
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	r := &Router{
		cfg:     cfg,
		client:  &http.Client{Transport: transport},
		obs:     cfg.Metrics,
		mem:     gossip.NewMembership(nil),
		byName:  map[string]*shard{},
		retired: map[string]uint64{},
		kick:    make(chan struct{}, 1),
	}
	shards := make([]*shard, len(cfg.Shards))
	for i, spec := range cfg.Shards {
		r.mem.Join(spec.Name, spec.URL)
		shards[i] = r.getShard(spec)
	}
	st := &ringState{epoch: 1, names: names, shards: shards, byName: shardMap(shards)}
	if len(names) > 0 {
		st.place = NewPlacement(names, cfg.Replicas)
	}
	r.installRing(st)

	ctx, stop := context.WithCancel(context.Background())
	r.stop = stop
	r.reconDone = make(chan struct{})
	go r.reconcileLoop(ctx)
	if cfg.ProbeInterval >= 0 {
		r.probeDone = make(chan struct{})
		go r.probeLoop(ctx)
	}
	return r, nil
}

// newShard builds one shard runtime (metrics, breaker). Callers hold no
// lock; getShard is the map-aware entry point.
func (r *Router) newShard(spec ShardSpec) *shard {
	prefix := "router.shard." + spec.Name + "."
	lats := r.obs.Window(prefix+"latency", 128)
	sh := &shard{
		spec:      spec,
		lats:      lats,
		inflight:  r.obs.Gauge(prefix + "inflight"),
		requests:  r.obs.Counter(prefix + "requests.total"),
		failures:  r.obs.Counter(prefix + "failures.total"),
		sheds:     r.obs.Counter(prefix + "shed.total"),
		openSkips: r.obs.Counter(prefix + "open_skips.total"),
	}
	sh.breaker = NewBreaker(r.cfg.Breaker, lats,
		r.obs.Gauge(prefix+"breaker.state"), r.obs.Counter(prefix+"breaker.trips.total"))
	return sh
}

// Close stops the prober and reconcile driver and drops idle connections.
func (r *Router) Close() {
	if r.stop != nil {
		r.stop()
		if r.probeDone != nil {
			<-r.probeDone
		}
		<-r.reconDone
	}
	r.client.CloseIdleConnections()
}

// Placement returns the current ring's consistent-hash placement —
// in-process shard-cores share it so ownership checks agree with routing.
// Nil while no shard has joined.
func (r *Router) Placement() *Placement { return r.ring.Load().place }

// Metrics returns the router's metrics registry (may be nil).
func (r *Router) Metrics() *obs.Registry { return r.obs }

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// probeLoop actively re-tests shards whose breaker is not closed: a GET
// /healthz counts as the half-open probe, so a restarted shard re-closes
// its breaker within one probe interval even with zero live traffic
// willing to be the guinea pig. Consecutive failures back each shard's
// probe cadence off exponentially (capped), so a shard that stays dead
// for an hour is not dialed at full rate for an hour. The loop also
// backfills ring distribution: any shard that has not acked the current
// ring generation gets it re-pushed here.
func (r *Router) probeLoop(ctx context.Context) {
	defer close(r.probeDone)
	iv := r.cfg.probeInterval()
	capWait := 10 * iv
	if capWait > 10*time.Second {
		capWait = 10 * time.Second
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		st := r.ring.Load()
		now := time.Now()
		for _, sh := range st.allShards() {
			// Backfill the ring on shards that missed a push — but only when
			// the shard is believed healthy or its probe backoff has elapsed,
			// so a long-dead shard is not hammered on /ring either.
			if sh.ringSynced.Load() < st.gen &&
				(sh.breaker.State() == BreakerClosed || sh.probeDue(now)) {
				go r.pushRingTo(ctx, sh, st)
			}
			if sh.breaker.State() == BreakerClosed {
				sh.probeSucceeded()
				continue
			}
			if !sh.probeDue(now) {
				continue
			}
			ok, probe := sh.breaker.Allow()
			if !ok {
				continue
			}
			go r.probeShard(ctx, sh, probe, iv, capWait)
		}
	}
}

func (r *Router) probeShard(ctx context.Context, sh *shard, probe bool, iv, capWait time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.spec.URL+"/healthz", nil)
	if err != nil {
		sh.breaker.Forget(probe)
		return
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			sh.breaker.Forget(probe) // router shutting down, not shard sickness
			return
		}
		sh.noteError(err.Error())
		sh.breaker.Record(time.Since(start), true, probe)
		fails := sh.probeFailed(iv, capWait)
		if fails >= 8 {
			r.mem.Observe(sh.spec.Name, gossip.PeerDead)
		} else {
			r.mem.Observe(sh.spec.Name, gossip.PeerSuspect)
		}
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	healthy := resp.StatusCode == http.StatusOK
	sh.degraded.Store(strings.HasPrefix(string(body), "degraded"))
	sh.breaker.Record(time.Since(start), !healthy, probe)
	if healthy {
		sh.probeSucceeded()
		r.mem.Observe(sh.spec.Name, gossip.PeerAlive)
		if probe {
			r.logf("router: shard %s healthy again, breaker %s", sh.spec.Name, sh.breaker.State())
		}
	} else {
		sh.probeFailed(iv, capWait)
	}
}

// outcomeKind classifies one logical shard call.
type outcomeKind int

const (
	// outcomeOK: a 2xx answer with a body.
	outcomeOK outcomeKind = iota
	// outcomeFinal: an honest non-2xx answer to pass through — client
	// errors (4xx) and backpressure (429, or 503 carrying Retry-After).
	// Final answers never feed the breaker's failure side and are never
	// retried or hedged over.
	outcomeFinal
	// outcomeFail: the shard is not answering usefully — transport error,
	// timeout, 5xx without honest backpressure. Feeds the breaker.
	outcomeFail
	// outcomeOpen: the breaker refused the call; the shard was not dialed.
	outcomeOpen
)

// outcome is one logical shard call's result.
type outcome struct {
	kind   outcomeKind
	status int
	header http.Header
	body   []byte
	err    error
	shed   bool // a 429 or 503+Retry-After final answer
}

// isShed reports whether a response is honest backpressure: rate-limit
// 429, or a 503 that carries the Retry-After every admission and
// degraded-mode path computes. Backpressure is a healthy shard saying
// "not now" — it must not trip the breaker (satellite: one shard's shed
// must not fail the scatter-gather) and must not be retried into a storm.
func isShed(status int, header http.Header) bool {
	if status == http.StatusTooManyRequests {
		return true
	}
	return status == http.StatusServiceUnavailable && header.Get("Retry-After") != ""
}

// attemptResult is one physical attempt's classification.
type attemptResult struct {
	out      outcome
	canceled bool // canceled by the logical call settling; says nothing about the shard
	hedge    bool
}

// oneAttempt performs one physical HTTP exchange against sh and classifies
// it. Breaker accounting happens here: failures and successes are
// recorded with the attempt's latency; attempts canceled because a
// sibling won are forgotten, not recorded.
func (r *Router) oneAttempt(ctx context.Context, sh *shard, probe bool, mk func(ctx context.Context) (*http.Request, error), hedge bool) attemptResult {
	req, err := mk(ctx)
	if err != nil {
		sh.breaker.Forget(probe)
		return attemptResult{out: outcome{kind: outcomeFail, err: err}, hedge: hedge}
	}
	sh.requests.Inc()
	sh.inflight.Add(1)
	start := time.Now()
	resp, err := r.client.Do(req)
	lat := time.Since(start)
	sh.inflight.Add(-1)
	if err != nil {
		if errors.Is(ctx.Err(), context.Canceled) {
			sh.breaker.Forget(probe)
			return attemptResult{canceled: true, hedge: hedge}
		}
		sh.failures.Inc()
		sh.noteError(err.Error())
		sh.breaker.Record(lat, true, probe)
		return attemptResult{out: outcome{kind: outcomeFail, err: err}, hedge: hedge}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, r.cfg.maxBodyBytes()+1))
	resp.Body.Close()
	if rerr != nil || int64(len(body)) > r.cfg.maxBodyBytes() {
		if rerr == nil {
			rerr = fmt.Errorf("shard %s response exceeds %d bytes", sh.spec.Name, r.cfg.maxBodyBytes())
		}
		sh.failures.Inc()
		sh.noteError(rerr.Error())
		sh.breaker.Record(lat, true, probe)
		return attemptResult{out: outcome{kind: outcomeFail, err: rerr}, hedge: hedge}
	}
	switch {
	case resp.StatusCode/100 == 2:
		sh.breaker.Record(lat, false, probe)
		return attemptResult{out: outcome{kind: outcomeOK, status: resp.StatusCode, header: resp.Header, body: body}, hedge: hedge}
	case isShed(resp.StatusCode, resp.Header):
		sh.sheds.Inc()
		sh.breaker.Record(lat, false, probe)
		return attemptResult{out: outcome{kind: outcomeFinal, status: resp.StatusCode, header: resp.Header, body: body, shed: true}, hedge: hedge}
	case resp.StatusCode/100 == 4:
		sh.breaker.Record(lat, false, probe)
		return attemptResult{out: outcome{kind: outcomeFinal, status: resp.StatusCode, header: resp.Header, body: body}, hedge: hedge}
	default: // 5xx without honest backpressure
		sh.failures.Inc()
		sh.noteError(fmt.Sprintf("status %d from %s", resp.StatusCode, sh.spec.Name))
		sh.breaker.Record(lat, true, probe)
		return attemptResult{out: outcome{kind: outcomeFail, status: resp.StatusCode, header: resp.Header, body: body}, hedge: hedge}
	}
}

// hedgeDelay resolves when to hedge a call at sh given its budget.
func (r *Router) hedgeDelay(sh *shard, budget time.Duration) time.Duration {
	if r.cfg.HedgeAfter > 0 {
		return r.cfg.HedgeAfter
	}
	if sh.lats.Len() >= 8 {
		d := time.Duration(2 * sh.lats.Quantile(0.99) * float64(time.Second))
		lo, hi := 10*time.Millisecond, budget/2
		if d < lo {
			d = lo
		}
		if hi > 0 && d > hi {
			d = hi
		}
		return d
	}
	return budget / 4
}

// call runs one logical request against sh: breaker check, a first
// attempt, an optional hedged duplicate once the straggler delay elapses
// (idempotent calls only), and bounded exponential-backoff retries after
// failures (idempotent calls only). The first settled answer wins; the
// loser is canceled and its outcome forgotten.
func (r *Router) call(ctx context.Context, sh *shard, idempotent bool, budget time.Duration, mk func(ctx context.Context) (*http.Request, error)) outcome {
	allowed, probe := sh.breaker.Allow()
	if !allowed {
		sh.openSkips.Inc()
		return outcome{kind: outcomeOpen}
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	hedging := idempotent && !probe && r.cfg.HedgeAfter >= 0
	retries := 0
	if idempotent && !probe {
		retries = r.cfg.retries()
	}
	results := make(chan attemptResult, retries+2)
	launch := func(hedge bool) {
		go func() { results <- r.oneAttempt(actx, sh, probe, mk, hedge) }()
	}
	// Only the first Allow carries the probe token; a probe is a single
	// gentle attempt. (probe implies hedging and retries are off above.)
	launch(false)
	inflight := 1

	var hedgeTimer <-chan time.Time
	if hedging {
		hedgeTimer = time.After(r.hedgeDelay(sh, budget))
	}
	var retryTimer <-chan time.Time
	backoff := r.cfg.retryBase()
	hedged := false
	var last outcome
	lastValid := false

	for {
		select {
		case <-ctx.Done():
			if lastValid {
				return last
			}
			return outcome{kind: outcomeFail, err: ctx.Err()}
		case <-hedgeTimer:
			hedgeTimer = nil
			if inflight > 0 && !hedged {
				hedged = true
				r.obs.Counter(metricHedges).Inc()
				inflight++
				launch(true)
			}
		case <-retryTimer:
			retryTimer = nil
			inflight++
			launch(false)
		case res := <-results:
			inflight--
			if res.canceled {
				if inflight == 0 && retryTimer == nil {
					if lastValid {
						return last
					}
					return outcome{kind: outcomeFail, err: ctx.Err()}
				}
				continue
			}
			if res.out.kind != outcomeFail {
				if res.hedge {
					r.obs.Counter(metricHedgeWins).Inc()
				}
				return res.out
			}
			last, lastValid = res.out, true
			// A failure: retry with backoff while attempts and budget
			// remain; otherwise settle once nothing else is in flight.
			if retries > 0 && retryTimer == nil && ctx.Err() == nil {
				retries--
				r.obs.Counter(metricRetries).Inc()
				retryTimer = time.After(backoff)
				backoff *= 2
				continue
			}
			if inflight == 0 && retryTimer == nil {
				return last
			}
		}
	}
}

// Handler returns the router's HTTP routes — the same surface a
// single-node knnserver exposes, so clients and load generators cannot
// tell (except by reading X-Partial-Results) whether they talk to one
// node or a fleet.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", r.handleHealth)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/users/", r.handleUsers)
	mux.HandleFunc("/graph/build", r.handleBuild)
	mux.HandleFunc("/build", r.handleBuild)
	mux.HandleFunc("/cluster", r.handleCluster)
	mux.HandleFunc("/cluster/join", r.handleClusterJoin)
	mux.HandleFunc("/cluster/leave", r.handleClusterLeave)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// budget resolves a request's full time budget: the configured default,
// lowered by the client's X-Request-Timeout and by any deadline already
// on the request context.
func budgetFor(req *http.Request, def time.Duration) (time.Duration, error) {
	b := def
	if hdr := req.Header.Get(HeaderRequestTimeout); hdr != "" {
		d, err := parseClientTimeout(hdr)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q: %w", HeaderRequestTimeout, hdr, err)
		}
		if d < b {
			b = d
		}
	}
	if dl, ok := req.Context().Deadline(); ok {
		if rem := time.Until(dl); rem < b {
			b = rem
		}
	}
	if b <= 0 {
		b = time.Millisecond
	}
	return b, nil
}

// parseClientTimeout parses an X-Request-Timeout value: a Go duration or
// bare positive integer seconds (the service's contract).
func parseClientTimeout(v string) (time.Duration, error) {
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0, errors.New("must be positive")
		}
		return time.Duration(secs) * time.Second, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, errors.New("want a Go duration or integer seconds")
	}
	if d <= 0 {
		return 0, errors.New("must be positive")
	}
	return d, nil
}

// shardDeadline derives the per-shard deadline from the full budget: the
// budget minus a reserve for the merge and response write, floored so a
// tight budget still dials out.
func shardDeadline(budget time.Duration) time.Duration {
	reserve := budget / 10
	if reserve > 250*time.Millisecond {
		reserve = 250 * time.Millisecond
	}
	d := budget - reserve
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// fmtShardTimeout renders a per-shard deadline for the downstream
// X-Request-Timeout header.
func fmtShardTimeout(d time.Duration) string { return d.Round(time.Millisecond).String() }

// handleQuery scatter-gathers POST /query across every shard and merges
// the per-shard top-k deterministically. Coverage is reported on every
// response via X-Partial-Results; below-quorum coverage is a 503 with
// Retry-After from the sick shards' breakers.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	k := 10
	if v := req.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = parsed
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.maxBodyBytes()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "query body exceeds %d bytes", r.cfg.maxBodyBytes())
			return
		}
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	budget, err := budgetFor(req, r.cfg.queryTimeout())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	r.obs.Counter(metricQueries).Inc()

	// The scatter set: the ring's shards, plus — during a migration — the
	// old ring's departing shards, which still hold their users until
	// retire. The merge deduplicates by user id, so a user transiently
	// resident on two shards is counted once. No coverage hole either way.
	st := r.ring.Load()
	scatter := st.queryShards()
	if len(scatter) == 0 {
		setRetryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, "no shards have joined this router")
		return
	}
	perShard := shardDeadline(budget)
	sctx, cancel := context.WithTimeout(context.WithoutCancel(req.Context()), budget)
	defer cancel()
	// Scatter. Each shard call carries the derived deadline both as a
	// context (transport-level) and as the downstream X-Request-Timeout
	// (the shard's admission queue honors it, so work that cannot finish
	// inside our budget is shed there instead of burning a slot).
	path := "/query?" + req.URL.RawQuery
	type gathered struct {
		sh  *shard
		out outcome
	}
	results := make(chan gathered, len(scatter))
	for _, sh := range scatter {
		go func(sh *shard) {
			cctx, ccancel := context.WithTimeout(sctx, perShard)
			defer ccancel()
			out := r.call(cctx, sh, true, perShard, func(ctx context.Context) (*http.Request, error) {
				hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.spec.URL+path, bytes.NewReader(body))
				if err != nil {
					return nil, err
				}
				hreq.Header.Set("Content-Type", "application/octet-stream")
				hreq.Header.Set(HeaderRequestTimeout, fmtShardTimeout(perShard))
				return hreq, nil
			})
			results <- gathered{sh: sh, out: out}
		}(sh)
	}

	lists := make([][]Hit, 0, len(scatter))
	served := 0
	var clientErr *outcome
	for range scatter {
		g := <-results
		switch g.out.kind {
		case outcomeOK:
			var hits []Hit
			if err := json.Unmarshal(g.out.body, &hits); err != nil {
				g.sh.noteError("bad /query body: " + err.Error())
				continue
			}
			lists = append(lists, hits)
			served++
		case outcomeFinal:
			// Backpressure leaves a coverage hole (partial result), a real
			// client error (bad k, bad fingerprint, oversized body) is the
			// same answer every shard would give — relay the first one.
			if !g.out.shed && clientErr == nil {
				o := g.out
				clientErr = &o
			}
		}
	}
	total := len(scatter)
	if clientErr != nil {
		copyHeaders(w.Header(), clientErr.header)
		w.WriteHeader(clientErr.status)
		w.Write(clientErr.body)
		return
	}
	w.Header().Set(HeaderPartialResults, fmt.Sprintf("%d/%d", served, total))
	if served < r.cfg.quorumCount(total) {
		r.obs.Counter(metricQueryFailed).Inc()
		setRetryAfter(w, r.sickRetryAfter())
		httpError(w, http.StatusServiceUnavailable,
			"%d of %d shards answered, quorum is %d; retry later", served, total, r.cfg.quorumCount(total))
		return
	}
	if served < total {
		r.obs.Counter(metricQueryPartial).Inc()
	}
	r.obs.Histogram(metricQuerySecs, obs.DefWaitBuckets).ObserveSince(start)
	writeJSON(w, http.StatusOK, MergeTopK(k, lists))
}

// sickRetryAfter is the Retry-After for below-quorum 503s: the soonest
// half-open deadline among open breakers — the earliest instant at which
// coverage can possibly improve — floored at 1s.
func (r *Router) sickRetryAfter() time.Duration {
	best := time.Duration(0)
	for _, sh := range r.ring.Load().allShards() {
		if sh.breaker.State() != BreakerClosed {
			ra := sh.breaker.RetryAfter()
			if best == 0 || ra < best {
				best = ra
			}
		}
	}
	if best == 0 {
		best = time.Second
	}
	return best
}

// handleUsers routes /users/{id}/... to the owning shard. Neighbor reads
// are idempotent (hedged, retried); mutations are forwarded exactly once
// and the shard's answer — including its durable/degraded 503 and
// Retry-After — passes through verbatim.
//
// During a migration, reads of moving ids go to the old owner (dual-read:
// it still holds everything), falling back to the gainer if the old owner
// fails; mutations of moving ids are fenced with a fail-fast 503 so the
// in-flight export stream stays authoritative. And if a shard answers 421
// (its installed ring disagrees with ours — placement drift), the router
// counts it, logs it, and retries once at the shard the 421 names.
func (r *Router) handleUsers(w http.ResponseWriter, req *http.Request) {
	rest := strings.TrimPrefix(req.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" {
		httpError(w, http.StatusNotFound, "want /users/{id}/fingerprint or /users/{id}/neighbors")
		return
	}
	id := parts[0]
	idempotent := req.Method == http.MethodGet
	st := r.ring.Load()
	sh, fallback, fenced := st.route(id, !idempotent)
	if fenced {
		r.obs.Counter(metricFencedWrites).Inc()
		setRetryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable,
			"user %q is migrating to a new shard; writes resume after cutover", id)
		return
	}
	if sh == nil {
		setRetryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, "no shards have joined this router")
		return
	}
	if fallback != nil {
		r.obs.Counter(metricDualReads).Inc()
	}
	def := r.cfg.mutateTimeout()
	if idempotent {
		def = r.cfg.queryTimeout()
	}
	budget, err := budgetFor(req, def)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var body []byte
	if req.Body != nil {
		body, err = io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.maxBodyBytes()))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", r.cfg.maxBodyBytes())
				return
			}
			httpError(w, http.StatusBadRequest, "reading request body: %v", err)
			return
		}
	}
	perShard := shardDeadline(budget)
	cctx, cancel := context.WithTimeout(context.WithoutCancel(req.Context()), perShard)
	defer cancel()
	path := req.URL.Path
	if req.URL.RawQuery != "" {
		path += "?" + req.URL.RawQuery
	}
	callShard := func(sh *shard) outcome {
		return r.call(cctx, sh, idempotent, perShard, func(ctx context.Context) (*http.Request, error) {
			hreq, err := http.NewRequestWithContext(ctx, req.Method, sh.spec.URL+path, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			hreq.Header.Set(HeaderRequestTimeout, fmtShardTimeout(perShard))
			if ct := req.Header.Get("Content-Type"); ct != "" {
				hreq.Header.Set("Content-Type", ct)
			}
			return hreq, nil
		})
	}
	out := callShard(sh)
	if fallback != nil && (out.kind == outcomeFail || out.kind == outcomeOpen) {
		// Dual-read window: the old owner is sick mid-handoff; the gainer
		// may already hold the imported copy.
		sh = fallback
		out = callShard(sh)
	}
	if out.kind == outcomeFinal && out.status == http.StatusMisdirectedRequest {
		if ownerName := out.header.Get("X-Owner-Shard"); ownerName != "" && ownerName != sh.spec.Name {
			r.obs.Counter(metricDrift).Inc()
			r.logf("router: placement drift: routed %q to %s, shard says owner is %s (epoch %s)",
				id, sh.spec.Name, ownerName, out.header.Get("X-Ring-Epoch"))
			if redirect, ok := r.lookupShard(ownerName); ok && redirect != sh {
				sh = redirect
				out = callShard(sh)
			}
		}
	}
	r.writeOutcome(w, sh, out)
}

// writeOutcome relays one shard's outcome to the client: pass-through for
// answers, honest router-originated errors for the rest — always with a
// Retry-After on 503s (breaker half-open deadline for open shards, 1s
// floor otherwise).
func (r *Router) writeOutcome(w http.ResponseWriter, sh *shard, out outcome) {
	switch out.kind {
	case outcomeOK, outcomeFinal:
		copyHeaders(w.Header(), out.header)
		w.WriteHeader(out.status)
		w.Write(out.body)
	case outcomeOpen:
		setRetryAfter(w, sh.breaker.RetryAfter())
		httpError(w, http.StatusServiceUnavailable,
			"shard %s unavailable (circuit breaker open); retry later", sh.spec.Name)
	default: // outcomeFail
		if out.err != nil && errors.Is(out.err, context.DeadlineExceeded) {
			setRetryAfter(w, time.Second)
			httpError(w, http.StatusGatewayTimeout, "shard %s did not answer in budget", sh.spec.Name)
			return
		}
		detail := ""
		if out.err != nil {
			detail = ": " + out.err.Error()
		} else if out.status != 0 {
			detail = fmt.Sprintf(": status %d", out.status)
		}
		httpError(w, http.StatusBadGateway, "shard %s failed%s", sh.spec.Name, detail)
	}
}

// handleBuild fans POST /graph/build out to every shard (each builds the
// graph over its own user subset) and aggregates the per-shard results;
// DELETE fans the cancel out. Builds bypass the breaker and the latency
// window — a multi-second build is not a straggler, and an operator
// rebuilding a recovering fleet must reach even sick shards.
func (r *Router) handleBuild(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost, http.MethodDelete:
	default:
		w.Header().Set("Allow", "POST, DELETE")
		httpError(w, http.StatusMethodNotAllowed, "POST to build, DELETE to cancel")
		return
	}
	path := "/graph/build"
	if req.URL.RawQuery != "" {
		path += "?" + req.URL.RawQuery
	}
	type buildRes struct {
		name   string
		status int
		body   []byte
		err    error
	}
	shards := r.ring.Load().allShards()
	results := make(chan buildRes, len(shards))
	for _, sh := range shards {
		go func(sh *shard) {
			hreq, err := http.NewRequestWithContext(req.Context(), req.Method, sh.spec.URL+path, nil)
			if err != nil {
				results <- buildRes{name: sh.spec.Name, err: err}
				return
			}
			resp, err := r.client.Do(hreq)
			if err != nil {
				results <- buildRes{name: sh.spec.Name, err: err}
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, r.cfg.maxBodyBytes()))
			resp.Body.Close()
			results <- buildRes{name: sh.spec.Name, status: resp.StatusCode, body: body}
		}(sh)
	}
	shardsOut := map[string]json.RawMessage{}
	errsOut := map[string]string{}
	okCount := 0
	wantStatus := http.StatusOK
	if req.Method == http.MethodDelete {
		wantStatus = http.StatusAccepted
	}
	for range shards {
		res := <-results
		switch {
		case res.err != nil:
			errsOut[res.name] = res.err.Error()
		case res.status == wantStatus:
			okCount++
			if json.Valid(res.body) {
				shardsOut[res.name] = json.RawMessage(res.body)
			} else {
				shardsOut[res.name] = json.RawMessage(strconv.Quote(string(bytes.TrimSpace(res.body))))
			}
		default:
			errsOut[res.name] = fmt.Sprintf("status %d: %s", res.status, bytes.TrimSpace(res.body))
		}
	}
	status := wantStatus
	if okCount < len(shards) {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{
		"shards": shardsOut,
		"errors": errsOut,
		"built":  okCount,
		"total":  len(shards),
	})
}

// ShardStatus is one shard's row in the router's /stats and /healthz
// shards section.
type ShardStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// State summarizes: healthy, degraded (read-only data dir), shedding
	// (admission overload), open-breaker, half-open, or unreachable.
	State    string `json:"state"`
	Breaker  string `json:"breaker"`
	Inflight int64  `json:"inflight"`
	// LastError is the most recent breaker-relevant failure talking to
	// this shard (transport error, timeout, 5xx), with its age.
	LastError      string  `json:"last_error,omitempty"`
	LastErrorAgoMS float64 `json:"last_error_ago_ms,omitempty"`

	// Live fields from the shard's own /stats (absent when unreachable).
	Users      int    `json:"users,omitempty"`
	Epoch      int64  `json:"epoch,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Overloaded bool   `json:"overloaded,omitempty"`
	StatsError string `json:"stats_error,omitempty"`
}

// RouterStats is the router's /stats response.
type RouterStats struct {
	Router        bool          `json:"router"`
	ShardsTotal   int           `json:"shards_total"`
	ShardsHealthy int           `json:"shards_healthy"`
	Quorum        int           `json:"quorum"`
	Shards        []ShardStatus `json:"shards"`

	RingEpoch uint64 `json:"ring_epoch"`
	RingMode  string `json:"ring_mode"`

	Queries        int64 `json:"queries"`
	QueriesPartial int64 `json:"queries_partial"`
	QueriesFailed  int64 `json:"queries_failed"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	Retries        int64 `json:"retries"`
	PlacementDrift int64 `json:"placement_drift"`
	FencedWrites   int64 `json:"fenced_writes"`
	DualReads      int64 `json:"dual_reads"`
	Migrations     int64 `json:"migrations"`
}

// shardStatus assembles one shard's passive status row. The live /stats
// sub-fetch is the caller's business (handleStats does it; handleHealth
// stays passive so probes are cheap).
func (r *Router) shardStatus(sh *shard) ShardStatus {
	st := ShardStatus{
		Name:     sh.spec.Name,
		URL:      sh.spec.URL,
		Breaker:  sh.breaker.State().String(),
		Inflight: sh.inflight.Value(),
	}
	if msg := sh.lastError(); msg != "" {
		st.LastError = msg
		if at := sh.lastErrAt.Load(); at > 0 {
			st.LastErrorAgoMS = float64(time.Since(time.Unix(0, at))) / float64(time.Millisecond)
		}
	}
	switch sh.breaker.State() {
	case BreakerOpen:
		st.State = "open-breaker"
	case BreakerHalfOpen:
		st.State = "half-open"
	default:
		if sh.degraded.Load() {
			st.State = "degraded"
		} else {
			st.State = "healthy"
		}
	}
	return st
}

// healthyCount counts ring shards whose breaker is closed.
func (r *Router) healthyCount() int {
	n := 0
	for _, sh := range r.ring.Load().allShards() {
		if sh.breaker.State() == BreakerClosed {
			n++
		}
	}
	return n
}

// handleStats serves the router's aggregate view: per-shard state
// (breaker, inflight, last error) plus a live sub-fetch of every shard's
// own /stats so one operator curl answers "which shard is sick and why".
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := r.ring.Load()
	shards := st.allShards()
	stats := RouterStats{
		Router:         true,
		ShardsTotal:    len(shards),
		ShardsHealthy:  r.healthyCount(),
		Quorum:         r.cfg.quorumCount(len(shards)),
		RingEpoch:      st.epoch,
		RingMode:       "stable",
		Queries:        r.obs.Counter(metricQueries).Value(),
		QueriesPartial: r.obs.Counter(metricQueryPartial).Value(),
		QueriesFailed:  r.obs.Counter(metricQueryFailed).Value(),
		Hedges:         r.obs.Counter(metricHedges).Value(),
		HedgeWins:      r.obs.Counter(metricHedgeWins).Value(),
		Retries:        r.obs.Counter(metricRetries).Value(),
		PlacementDrift: r.obs.Counter(metricDrift).Value(),
		FencedWrites:   r.obs.Counter(metricFencedWrites).Value(),
		DualReads:      r.obs.Counter(metricDualReads).Value(),
		Migrations:     r.obs.Counter(metricMigrations).Value(),
	}
	if st.mig != nil {
		stats.RingMode = "transition"
	}
	rows := make([]ShardStatus, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			row := r.shardStatus(sh)
			sctx, cancel := context.WithTimeout(req.Context(), time.Second)
			defer cancel()
			hreq, err := http.NewRequestWithContext(sctx, http.MethodGet, sh.spec.URL+"/stats", nil)
			if err == nil {
				var resp *http.Response
				resp, err = r.client.Do(hreq)
				if err == nil {
					var sub struct {
						Users      int   `json:"users"`
						Epoch      int64 `json:"epoch"`
						Degraded   bool  `json:"degraded"`
						Overloaded bool  `json:"overloaded"`
					}
					derr := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.maxBodyBytes())).Decode(&sub)
					resp.Body.Close()
					if derr != nil {
						err = derr
					} else {
						row.Users = sub.Users
						row.Epoch = sub.Epoch
						row.Degraded = sub.Degraded
						row.Overloaded = sub.Overloaded
						sh.degraded.Store(sub.Degraded)
						if sub.Degraded && row.State == "healthy" {
							row.State = "degraded"
						}
						if sub.Overloaded && row.State == "healthy" {
							row.State = "shedding"
						}
					}
				}
			}
			if err != nil {
				row.StatsError = err.Error()
				if row.State == "healthy" {
					row.State = "unreachable"
				}
			}
			rows[i] = row
		}(i, sh)
	}
	wg.Wait()
	stats.Shards = rows
	writeJSON(w, http.StatusOK, stats)
}

// handleHealth is the load-balancer probe: 200 while the router can serve
// queries at quorum (even partially), 503 once it cannot. The body names
// every sick shard so a human reading the probe sees which shard to fix.
// Passive by design — probes must stay cheap and must not dial shards.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	shards := r.ring.Load().allShards()
	healthy := r.healthyCount()
	total := len(shards)
	quorum := r.cfg.quorumCount(total)
	if total == 0 {
		setRetryAfter(w, time.Second)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no shards have joined")
		return
	}
	if healthy < quorum {
		setRetryAfter(w, r.sickRetryAfter())
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "below quorum: %d/%d shards healthy (need %d)\n", healthy, total, quorum)
	} else {
		w.WriteHeader(http.StatusOK)
		if healthy == total {
			fmt.Fprintln(w, "ok")
		} else {
			fmt.Fprintf(w, "partial: serving %d/%d shards\n", healthy, total)
		}
	}
	for _, sh := range shards {
		if st := r.shardStatus(sh); st.State != "healthy" {
			fmt.Fprintf(w, "shard %s: %s", st.Name, st.State)
			if st.LastError != "" {
				fmt.Fprintf(w, " (%s)", st.LastError)
			}
			fmt.Fprintln(w)
		}
	}
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, r.obs.Snapshot())
}

// copyHeaders relays the response headers a shard answer carries that are
// meaningful end-to-end; hop-by-hop and envelope headers stay out.
func copyHeaders(dst, src http.Header) {
	for name, vals := range src {
		switch {
		case name == "Content-Type", name == "Retry-After", name == "Allow",
			strings.HasPrefix(name, "X-"):
			dst[name] = vals
		}
	}
}

// setRetryAfter mirrors the service helper: RFC 9110 integer seconds,
// rounded up, floored at 1.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}
