package router

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func TestMergeTopKOrderAndTrim(t *testing.T) {
	got := MergeTopK(3, [][]Hit{
		{{User: "b", Similarity: 0.9}, {User: "d", Similarity: 0.2}},
		{{User: "a", Similarity: 0.9}, {User: "c", Similarity: 0.5}},
	})
	want := []Hit{{User: "a", Similarity: 0.9}, {User: "b", Similarity: 0.9}, {User: "c", Similarity: 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeTopK = %v, want %v (sim desc, ties user asc, trimmed to k)", got, want)
	}
}

func TestMergeTopKDedupKeepsBest(t *testing.T) {
	got := MergeTopK(10, [][]Hit{
		{{User: "x", Similarity: 0.3}},
		{{User: "x", Similarity: 0.7}, {User: "y", Similarity: 0.1}},
	})
	want := []Hit{{User: "x", Similarity: 0.7}, {User: "y", Similarity: 0.1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeTopK = %v, want %v (duplicate user keeps its best entry)", got, want)
	}
}

func TestMergeTopKEdges(t *testing.T) {
	if got := MergeTopK(5, nil); len(got) != 0 || got == nil {
		t.Errorf("MergeTopK(5, nil) = %#v, want empty non-nil slice", got)
	}
	if got := MergeTopK(0, [][]Hit{{{User: "a", Similarity: 1}}}); len(got) != 0 {
		t.Errorf("MergeTopK(0, ...) = %v, want empty", got)
	}
	if got := MergeTopK(-1, [][]Hit{{{User: "a", Similarity: 1}}}); len(got) != 0 {
		t.Errorf("MergeTopK(-1, ...) = %v, want empty", got)
	}
}

// TestMergeMatchesSingleNode pins the satellite determinism contract: for a
// corpus partitioned disjointly across shards by the placement — seeded so
// registration order equals id order, as the sharded seeder does — merging
// the exact per-shard top-k is bit-identical (floats included) to the
// single-node knn.TopK over the union corpus, tie order and all.
func TestMergeMatchesSingleNode(t *testing.T) {
	const (
		bits  = 512
		users = 200
		k     = 10
	)
	scheme, err := core.NewScheme(bits, 7)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, users)
	fps := make([]core.Fingerprint, users)
	for i := range fps {
		ids[i] = fmt.Sprintf("user-%04d", i)
		fps[i] = scheme.Fingerprint(profile.New(
			profile.ItemID(i%17+1), profile.ItemID(i%5+100), profile.ItemID(i+1000), profile.ItemID(2*i+5000)))
	}
	query := scheme.Fingerprint(profile.New(3, 102, 1042, 5084, 9999))

	// Single-node reference: exact top-k over the union corpus, response
	// order (sim desc, user asc) exactly as service /query emits it.
	corpus, err := core.NewPackedCorpus(bits, fps)
	if err != nil {
		t.Fatal(err)
	}
	ref := knn.TopKRange(users, k, 1, func(lo, hi int, out []float64) {
		corpus.JaccardQueryInto(query, lo, hi, out)
	})
	want := make([]Hit, len(ref))
	for i, nb := range ref {
		want[i] = Hit{User: ids[nb.ID], Similarity: nb.Sim}
	}
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].Similarity != want[j].Similarity {
			return want[i].Similarity > want[j].Similarity
		}
		return want[i].User < want[j].User
	})

	// Shard the corpus with the real placement and compute each shard's
	// exact local top-k over its own packed sub-corpus.
	place := NewPlacement([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 0)
	shardIDs := make([][]string, 4)
	shardFPs := make([][]core.Fingerprint, 4)
	for i := range fps {
		s := place.Owner(ids[i])
		shardIDs[s] = append(shardIDs[s], ids[i])
		shardFPs[s] = append(shardFPs[s], fps[i])
	}
	lists := make([][]Hit, 0, 4)
	for s := 0; s < 4; s++ {
		if len(shardFPs[s]) == 0 {
			continue
		}
		sub, err := core.NewPackedCorpus(bits, shardFPs[s])
		if err != nil {
			t.Fatal(err)
		}
		local := knn.TopKRange(len(shardFPs[s]), k, 1, func(lo, hi int, out []float64) {
			sub.JaccardQueryInto(query, lo, hi, out)
		})
		hits := make([]Hit, len(local))
		for i, nb := range local {
			hits[i] = Hit{User: shardIDs[s][nb.ID], Similarity: nb.Sim}
		}
		lists = append(lists, hits)
	}

	got := MergeTopK(k, lists)
	if len(got) != len(want) {
		t.Fatalf("merged %d hits, single-node %d", len(got), len(want))
	}
	for i := range got {
		if got[i].User != want[i].User ||
			math.Float64bits(got[i].Similarity) != math.Float64bits(want[i].Similarity) {
			t.Errorf("position %d: merged %v, single-node %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

// FuzzMergeTopK cross-checks MergeTopK against an independent reference
// (best-per-user map, then one sort) and its output invariants: sorted by
// (sim desc, user asc), no duplicate users, at most k entries.
func FuzzMergeTopK(f *testing.F) {
	f.Add([]byte{3, 0, 1, 200, 1, 2, 100, 2, 1, 200})
	f.Add([]byte{})
	f.Add([]byte{10, 0, 5, 0, 1, 5, 0, 2, 5, 255, 3, 5, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		k := int(data[0] % 16)
		shards := make([][]Hit, 4)
		for i := 1; i+2 < len(data); i += 3 {
			s := int(data[i] % 4)
			shards[s] = append(shards[s], Hit{
				User:       fmt.Sprintf("u%02x", data[i+1]),
				Similarity: float64(data[i+2]) / 255,
			})
		}
		got := MergeTopK(k, shards)

		best := map[string]float64{}
		for _, sh := range shards {
			for _, h := range sh {
				if b, ok := best[h.User]; !ok || h.Similarity > b {
					best[h.User] = h.Similarity
				}
			}
		}
		want := make([]Hit, 0, len(best))
		for u, s := range best {
			want = append(want, Hit{User: u, Similarity: s})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Similarity != want[j].Similarity {
				return want[i].Similarity > want[j].Similarity
			}
			return want[i].User < want[j].User
		})
		if len(want) > k {
			want = want[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MergeTopK(%d) = %v, reference = %v", k, got, want)
		}
		seen := map[string]bool{}
		for i, h := range got {
			if seen[h.User] {
				t.Fatalf("duplicate user %q in merged output", h.User)
			}
			seen[h.User] = true
			if i > 0 {
				prev := got[i-1]
				if prev.Similarity < h.Similarity ||
					(prev.Similarity == h.Similarity && prev.User > h.User) {
					t.Fatalf("output not in (sim desc, user asc) order at %d: %v", i, got)
				}
			}
		}
	})
}
