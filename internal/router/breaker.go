package router

import (
	"sync"
	"time"

	"goldfinger/internal/obs"
)

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int32

const (
	// BreakerClosed: requests flow; outcomes feed the trip decision.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every request fails fast until the open interval
	// elapses. Open is what turns a dead shard from a per-request timeout
	// into a sub-microsecond skip.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests is let through;
	// a probe success re-closes the breaker, a probe failure re-opens it.
	BreakerHalfOpen
)

// String returns the /stats spelling of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one shard's breaker. The zero value selects the
// defaults documented per field.
type BreakerConfig struct {
	// Window is how many recent outcomes the error-rate and latency
	// decisions look at. Default 32.
	Window int
	// MinSamples is the minimum number of windowed outcomes before the
	// error-rate or latency conditions may trip — a single failure on a
	// cold shard must not open the breaker. Default 8.
	MinSamples int
	// ErrorRate trips the breaker when the windowed failure fraction
	// reaches it (with ≥ MinSamples outcomes). Default 0.5.
	ErrorRate float64
	// ConsecutiveFails trips the breaker unconditionally after this many
	// back-to-back failures — the fast path for a hard-dead shard, which
	// must not wait for a window to fill. Default 5.
	ConsecutiveFails int
	// P99Latency, when > 0, trips the breaker when the windowed p99
	// latency (an obs.Window over the shard's recent request latencies)
	// reaches it — a shard that answers, but too slowly to be worth its
	// slot, is as sick as one that errors. Default 0 (disabled).
	P99Latency time.Duration
	// OpenFor is how long the breaker stays open before admitting
	// half-open probes. Default 2s.
	OpenFor time.Duration
	// HalfOpenProbes bounds the concurrent probes in half-open. Default 1.
	HalfOpenProbes int
}

func (c BreakerConfig) window() int {
	if c.Window <= 0 {
		return 32
	}
	return c.Window
}

func (c BreakerConfig) minSamples() int {
	if c.MinSamples <= 0 {
		return 8
	}
	return c.MinSamples
}

func (c BreakerConfig) errorRate() float64 {
	if c.ErrorRate <= 0 || c.ErrorRate > 1 {
		return 0.5
	}
	return c.ErrorRate
}

func (c BreakerConfig) consecutiveFails() int {
	if c.ConsecutiveFails <= 0 {
		return 5
	}
	return c.ConsecutiveFails
}

func (c BreakerConfig) openFor() time.Duration {
	if c.OpenFor <= 0 {
		return 2 * time.Second
	}
	return c.OpenFor
}

func (c BreakerConfig) halfOpenProbes() int {
	if c.HalfOpenProbes <= 0 {
		return 1
	}
	return c.HalfOpenProbes
}

// Breaker is one shard's circuit breaker. It is fed outcome classifications
// (Record) by the call layer and consulted (Allow) before every logical
// request to the shard. Backpressure answers — a 429 or a 503 that carries
// Retry-After — are deliberately NOT outcomes: a shard saying "not now,
// honestly and fast" is healthy, and counting sheds as failures would let
// one shard's admission control amplify into whole-tier unavailability
// (the classic retry-storm cascade). The call layer records them as
// successes.
type Breaker struct {
	cfg  BreakerConfig
	now  func() time.Time // injectable for tests
	lats *obs.Window      // recent latencies (seconds); shared with /metrics

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring of recent outcomes, true = failure
	count    int    // occupancy of outcomes
	next     int    // ring cursor
	fails    int    // failures currently in the ring
	consec   int    // consecutive failures
	openedAt time.Time
	probing  int // probes in flight while half-open

	stateGauge *obs.Gauge // exported breaker state (0/1/2)
	trips      *obs.Counter
}

// NewBreaker creates a breaker. lats may be nil (latency tripping then
// never fires even if P99Latency is set); reg may be nil.
func NewBreaker(cfg BreakerConfig, lats *obs.Window, stateGauge *obs.Gauge, trips *obs.Counter) *Breaker {
	return &Breaker{
		cfg:        cfg,
		now:        time.Now,
		lats:       lats,
		outcomes:   make([]bool, cfg.window()),
		stateGauge: stateGauge,
		trips:      trips,
	}
}

// Allow reports whether a logical request may proceed. probe is true when
// the request is a half-open probe: the caller must eventually call
// Record (outcome) or Forget (abandoned) with the same probe flag, or the
// probe slot leaks and the breaker sticks half-open.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.openFor() {
			b.setState(BreakerHalfOpen)
			b.probing = 1
			return true, true
		}
		return false, false
	default: // BreakerHalfOpen
		if b.probing < b.cfg.halfOpenProbes() {
			b.probing++
			return true, true
		}
		return false, false
	}
}

// Record feeds one completed request's outcome. latency is observed into
// the shared window for the p99 condition; failed marks a breaker-relevant
// failure (transport error, timeout, 5xx without honest backpressure).
func (b *Breaker) Record(latency time.Duration, failed, probe bool) {
	b.lats.Observe(latency.Seconds())
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe && b.probing > 0 {
		b.probing--
	}
	switch b.state {
	case BreakerHalfOpen:
		// Probe outcomes decide the transition; stragglers from before the
		// trip (probe=false) are ignored — they describe the old regime.
		if !probe {
			return
		}
		if failed {
			b.trip()
		} else {
			b.reset()
		}
	case BreakerClosed:
		if b.count < len(b.outcomes) {
			b.count++
		} else if b.outcomes[b.next] {
			b.fails--
		}
		b.outcomes[b.next] = failed
		b.next = (b.next + 1) % len(b.outcomes)
		if failed {
			b.fails++
			b.consec++
		} else {
			b.consec = 0
		}
		if b.shouldTrip() {
			b.trip()
		}
	case BreakerOpen:
		// Stragglers landing after the trip carry no new information.
	}
}

// Forget releases an Allow the caller abandoned without an outcome (e.g.
// the request was canceled by its sibling hedge winning, which says
// nothing about the shard).
func (b *Breaker) Forget(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	if b.probing > 0 {
		b.probing--
	}
	b.mu.Unlock()
}

// shouldTrip evaluates the closed-state trip conditions. Called with mu
// held.
func (b *Breaker) shouldTrip() bool {
	if b.consec >= b.cfg.consecutiveFails() {
		return true
	}
	if b.count >= b.cfg.minSamples() &&
		float64(b.fails) >= b.cfg.errorRate()*float64(b.count) {
		return true
	}
	if p99 := b.cfg.P99Latency; p99 > 0 && b.lats != nil &&
		b.lats.Len() >= b.cfg.minSamples() &&
		b.lats.Quantile(0.99) >= p99.Seconds() {
		return true
	}
	return false
}

// trip opens the breaker. Called with mu held.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.clearWindow()
	b.trips.Inc()
}

// reset closes the breaker after a successful probe. Called with mu held.
func (b *Breaker) reset() {
	b.setState(BreakerClosed)
	b.clearWindow()
}

func (b *Breaker) clearWindow() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.count, b.next, b.fails, b.consec, b.probing = 0, 0, 0, 0, 0
	b.lats.Reset()
}

func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.stateGauge.Set(int64(s))
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter estimates when retrying the shard is worthwhile: the time
// until the open breaker admits its next half-open probe, floored at 1s.
// Router-originated 503s put this in their Retry-After header.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if rem := b.cfg.openFor() - b.now().Sub(b.openedAt); rem > time.Second {
			return rem
		}
	}
	return time.Second
}
