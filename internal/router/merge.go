package router

import "sort"

// Hit is one entry of a /query response — the router-side mirror of
// service.NeighborJSON, kept separate so the router depends only on the
// shards' wire contract, never on service internals.
type Hit struct {
	User       string  `json:"user"`
	Similarity float64 `json:"similarity"`
}

// MergeTopK merges per-shard top-k lists into the global top-k under the
// single-node response order: similarity descending, ties by user id
// ascending. Duplicate users (possible only transiently, e.g. a re-routed
// user whose old shard still holds a tombstone-revived copy) keep their
// highest-similarity entry.
//
// Determinism contract: the shards partition the corpus disjointly, each
// shard's list is its exact local top-k, and the single-node service
// orders its response by (similarity desc, user asc) — so the merged
// result is bit-identical to the single-node /query over the union
// corpus whenever the boundary tie-break agrees (always when boundary
// similarities are distinct; with boundary ties, when user ids sort in
// registration order, since knn.TopK's internal selection prefers lower
// dense indices). TestMergeMatchesSingleNode pins this.
func MergeTopK(k int, shards [][]Hit) []Hit {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	all := make([]Hit, 0, total)
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Similarity != all[j].Similarity {
			return all[i].Similarity > all[j].Similarity
		}
		return all[i].User < all[j].User
	})
	if k < 0 {
		k = 0
	}
	out := make([]Hit, 0, min(k, len(all)))
	var seen map[string]bool
	for _, h := range all {
		if len(out) == k {
			break
		}
		if seen[h.User] {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool, min(k, len(all)))
		}
		seen[h.User] = true
		out = append(out, h)
	}
	return out
}
