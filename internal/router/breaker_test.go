package router

import (
	"testing"
	"time"

	"goldfinger/internal/obs"
)

// fakeClock lets breaker tests step time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(cfg, obs.NewWindow(cfg.window()), nil, nil)
	b.now = clk.now
	return b, clk
}

func TestBreakerConsecutiveFailsTrip(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{ConsecutiveFails: 3})
	for i := 0; i < 2; i++ {
		b.Record(time.Millisecond, true, false)
		if b.State() != BreakerClosed {
			t.Fatalf("tripped after %d consecutive failures, want 3", i+1)
		}
	}
	b.Record(time.Millisecond, true, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Error("open breaker allowed a request before OpenFor elapsed")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{ConsecutiveFails: 3, MinSamples: 100})
	for i := 0; i < 10; i++ {
		b.Record(time.Millisecond, true, false)
		b.Record(time.Millisecond, true, false)
		b.Record(time.Millisecond, false, false)
	}
	if b.State() != BreakerClosed {
		t.Error("interleaved successes should keep the breaker closed")
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{
		Window: 8, MinSamples: 4, ErrorRate: 0.5, ConsecutiveFails: 100,
	})
	// Alternate ok/fail: at the 4th sample the window holds 2/4 failures —
	// exactly the 0.5 threshold.
	b.Record(time.Millisecond, false, false)
	b.Record(time.Millisecond, true, false)
	b.Record(time.Millisecond, false, false)
	if b.State() != BreakerClosed {
		t.Fatal("tripped below MinSamples")
	}
	b.Record(time.Millisecond, true, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state at 50%% windowed error rate = %v, want open", b.State())
	}
}

func TestBreakerP99LatencyTrip(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{
		Window: 8, MinSamples: 4, ConsecutiveFails: 100, P99Latency: 50 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		b.Record(100*time.Millisecond, false, false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("latency condition tripped below MinSamples")
	}
	b.Record(100*time.Millisecond, false, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state with windowed p99 at 100ms ≥ 50ms threshold = %v, want open", b.State())
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{ConsecutiveFails: 1, OpenFor: 10 * time.Second})
	b.Record(time.Millisecond, true, false)
	if b.State() != BreakerOpen {
		t.Fatal("did not trip")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("allowed while open")
	}
	clk.advance(10 * time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after OpenFor = (%v, %v), want probe admission", ok, probe)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Probes are bounded: a second caller is refused while the probe flies.
	if ok, _ := b.Allow(); ok {
		t.Error("second probe admitted with HalfOpenProbes=1")
	}
	// Probe success re-closes.
	b.Record(time.Millisecond, false, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Errorf("Allow after re-close = (%v, %v), want plain admission", ok, probe)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{ConsecutiveFails: 1, OpenFor: time.Second})
	b.Record(time.Millisecond, true, false)
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("probe not admitted")
	}
	b.Record(time.Millisecond, true, true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	// The open interval restarts: no probe until OpenFor elapses again.
	if ok, _ := b.Allow(); ok {
		t.Error("probe admitted immediately after a failed probe")
	}
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Error("probe not re-admitted after second OpenFor")
	}
}

func TestBreakerForgetReleasesProbeSlot(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{ConsecutiveFails: 1, OpenFor: time.Second})
	b.Record(time.Millisecond, true, false)
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("probe not admitted")
	}
	b.Forget(true)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Error("probe slot not released by Forget; breaker would stick half-open")
	}
}

func TestBreakerStragglersIgnoredAfterTrip(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{ConsecutiveFails: 2, OpenFor: time.Second})
	b.Record(time.Millisecond, true, false)
	b.Record(time.Millisecond, true, false) // trips
	// Stragglers from the pre-trip regime land while open and half-open;
	// neither may decide anything.
	b.Record(time.Millisecond, false, false)
	if b.State() != BreakerOpen {
		t.Fatal("straggler success while open changed state")
	}
	clk.advance(time.Second)
	b.Allow() // half-open, probe out
	b.Record(time.Millisecond, true, false)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("straggler failure decided the half-open transition: %v", b.State())
	}
	b.Record(time.Millisecond, false, true)
	if b.State() != BreakerClosed {
		t.Fatal("probe success did not re-close")
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{ConsecutiveFails: 1, OpenFor: 10 * time.Second})
	if got := b.RetryAfter(); got != time.Second {
		t.Errorf("closed RetryAfter = %v, want the 1s floor", got)
	}
	b.Record(time.Millisecond, true, false)
	if got := b.RetryAfter(); got != 10*time.Second {
		t.Errorf("RetryAfter just after trip = %v, want 10s", got)
	}
	clk.advance(7 * time.Second)
	if got := b.RetryAfter(); got != 3*time.Second {
		t.Errorf("RetryAfter 7s into a 10s open = %v, want 3s", got)
	}
	clk.advance(5 * time.Second)
	if got := b.RetryAfter(); got != time.Second {
		t.Errorf("RetryAfter past the deadline = %v, want the 1s floor", got)
	}
}

func TestBreakerWindowClearedOnReclose(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: 0.5, ConsecutiveFails: 3, OpenFor: time.Second})
	b.Record(time.Millisecond, true, false)
	b.Record(time.Millisecond, true, false)
	b.Record(time.Millisecond, true, false) // trips
	clk.advance(time.Second)
	b.Allow()
	b.Record(time.Millisecond, false, true) // re-closes
	// The pre-trip failures must not count against the recovered shard: two
	// fresh failures (below ConsecutiveFails, and 2/2 < MinSamples) keep it
	// closed.
	b.Record(time.Millisecond, true, false)
	b.Record(time.Millisecond, true, false)
	if b.State() != BreakerClosed {
		t.Error("stale pre-trip window outcomes survived the re-close")
	}
}
