package router

import (
	"fmt"
	"testing"
)

func TestPlacementDeterministic(t *testing.T) {
	names := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	a := NewPlacement(names, 0)
	b := NewPlacement(names, 0)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("user-%d", i)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("placement not deterministic: %s → %d vs %d", id, a.Owner(id), b.Owner(id))
		}
	}
}

func TestPlacementCoversAllShards(t *testing.T) {
	names := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	p := NewPlacement(names, 0)
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	counts := make([]int, 4)
	const n = 10000
	for i := 0; i < n; i++ {
		owner := p.Owner(fmt.Sprintf("user-%d", i))
		if owner < 0 || owner >= 4 {
			t.Fatalf("Owner out of range: %d", owner)
		}
		counts[owner]++
	}
	// 128 virtual nodes per shard keeps the spread tight; assert the loose
	// bound the recall math depends on (no shard owns a wild majority).
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %d owns %.1f%% of users, outside [10%%, 45%%]: %v", i, 100*frac, counts)
		}
	}
}

func TestPlacementStabilityOnGrowth(t *testing.T) {
	four := NewPlacement([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 0)
	five := NewPlacement([]string{"shard-0", "shard-1", "shard-2", "shard-3", "shard-4"}, 0)
	const n = 10000
	moved := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("user-%d", i)
		if four.Owner(id) != five.Owner(id) {
			moved++
		}
	}
	// Consistent hashing moves ~1/5 of the keys when a fifth shard joins;
	// modulo hashing would move ~4/5. Assert we are on the right side.
	if frac := float64(moved) / n; frac > 0.35 {
		t.Errorf("adding one shard moved %.1f%% of users, want ≤ 35%%", 100*frac)
	}
}

func TestPlacementEmptyRing(t *testing.T) {
	p := NewPlacement(nil, 0)
	if got := p.Owner("anyone"); got != -1 {
		t.Errorf("Owner on empty ring = %d, want -1", got)
	}
}
