package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goldfinger/internal/obs"
)

// fakeShard is a scriptable backend: an httptest server whose /query
// answer, failure mode and latency are mutable mid-test.
type fakeShard struct {
	srv   *httptest.Server
	hits  atomic.Pointer[[]Hit]
	mode  atomic.Int32 // 0 ok, 1 http-500, 2 shed-429, 3 shed-503+RA, 4 stall
	delay atomic.Int64 // ns, applied to /query before answering
	puts  chan string  // user ids of received mutations
	calls atomic.Int64
}

const (
	modeOK = iota
	mode500
	mode429
	mode503RA
	modeStall
)

func newFakeShard(t *testing.T, hits []Hit) *fakeShard {
	t.Helper()
	fs := &fakeShard{puts: make(chan string, 256)}
	fs.hits.Store(&hits)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if fs.mode.Load() != modeOK {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"users": %d, "epoch": 1}`, len(*fs.hits.Load()))
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		fs.calls.Add(1)
		if d := fs.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		switch fs.mode.Load() {
		case mode500:
			http.Error(w, "boom", http.StatusInternalServerError)
		case mode429:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
		case mode503RA:
			w.Header().Set("Retry-After", "2")
			http.Error(w, "shedding", http.StatusServiceUnavailable)
		case modeStall:
			// Swallow the request until the router's deadline reaps it. The
			// body must be drained first: net/http only watches for client
			// disconnect once the body is consumed, and without that the
			// context never fires and Server.Close deadlocks on this handler.
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-time.After(5 * time.Second): // test-shutdown backstop
			}
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(*fs.hits.Load())
		}
	})
	mux.HandleFunc("/users/", func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/users/"), "/")
		switch fs.mode.Load() {
		case mode500:
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		case mode503RA:
			w.Header().Set("Retry-After", "2")
			http.Error(w, "degraded (read-only)", http.StatusServiceUnavailable)
			return
		}
		switch r.Method {
		case http.MethodPut:
			fs.puts <- parts[0]
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"user": %q, "neighbors": []}`, parts[0])
		case http.MethodDelete:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	fs.srv = httptest.NewServer(mux)
	t.Cleanup(fs.srv.Close)
	return fs
}

// newTestRouter assembles a router over the given fake shards with tight,
// test-friendly timings. Hedging defaults off for determinism; tests that
// exercise it override cfg.
func newTestRouter(t *testing.T, cfg Config, shards ...*fakeShard) *Router {
	t.Helper()
	for i, fs := range shards {
		cfg.Shards = append(cfg.Shards, ShardSpec{Name: fmt.Sprintf("shard-%d", i), URL: fs.srv.URL})
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1 // deterministic unless a test opts in
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func postQuery(t *testing.T, h http.Handler, k int) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query?k="+strconv.Itoa(k), strings.NewReader("fp"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeHits(t *testing.T, body io.Reader) []Hit {
	t.Helper()
	var hits []Hit
	if err := json.NewDecoder(body).Decode(&hits); err != nil {
		t.Fatalf("decoding hits: %v", err)
	}
	return hits
}

func TestScatterGatherMergesAllShards(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}, {User: "a2", Similarity: 0.3}})
	b := newFakeShard(t, []Hit{{User: "b1", Similarity: 0.7}})
	c := newFakeShard(t, []Hit{{User: "c1", Similarity: 0.5}})
	r := newTestRouter(t, Config{}, a, b, c)
	h := r.Handler()

	rec := postQuery(t, h, 3)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderPartialResults); got != "3/3" {
		t.Errorf("%s = %q, want 3/3", HeaderPartialResults, got)
	}
	hits := decodeHits(t, rec.Body)
	want := []Hit{{User: "a1", Similarity: 0.9}, {User: "b1", Similarity: 0.7}, {User: "c1", Similarity: 0.5}}
	if len(hits) != 3 || hits[0] != want[0] || hits[1] != want[1] || hits[2] != want[2] {
		t.Errorf("merged = %v, want %v", hits, want)
	}
}

func TestPartialResultsWhenMinorityDown(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	b := newFakeShard(t, []Hit{{User: "b1", Similarity: 0.7}})
	c := newFakeShard(t, []Hit{{User: "c1", Similarity: 0.5}})
	d := newFakeShard(t, []Hit{{User: "d1", Similarity: 0.4}})
	r := newTestRouter(t, Config{Retries: -1}, a, b, c, d)
	h := r.Handler()
	d.srv.Close() // hard-kill one of four

	rec := postQuery(t, h, 10)
	if rec.Code != http.StatusOK {
		t.Fatalf("status with 3/4 alive = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderPartialResults); got != "3/4" {
		t.Errorf("%s = %q, want 3/4", HeaderPartialResults, got)
	}
	if hits := decodeHits(t, rec.Body); len(hits) != 3 {
		t.Errorf("got %d hits from the surviving shards, want 3", len(hits))
	}
}

func TestQuorum503CarriesRetryAfter(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	b := newFakeShard(t, []Hit{{User: "b1", Similarity: 0.7}})
	r := newTestRouter(t, Config{Quorum: 0.75, Retries: -1,
		Breaker: BreakerConfig{ConsecutiveFails: 1, OpenFor: 30 * time.Second}}, a, b)
	h := r.Handler()
	b.srv.Close() // 1/2 < quorum 0.75 → must refuse

	rec := postQuery(t, h, 10)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status below quorum = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("below-quorum 503 Retry-After = %q, want integer seconds ≥ 1", ra)
	}
	// The first 503's Retry-After may predate the breaker trip (the failure
	// that trips it is this very request); once the breaker is open the
	// Retry-After must reflect its half-open deadline.
	rec = postQuery(t, h, 10)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second status = %d, want 503", rec.Code)
	}
	secs, err = strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 2 {
		t.Errorf("open-breaker 503 Retry-After = %q, want ≥ 2s (breaker holds 30s)", rec.Header().Get("Retry-After"))
	}
}

// TestShedDoesNotTripBreakerOrFailQuery pins the satellite: one shard
// shedding with 429 must neither trip its breaker nor fail the whole
// scatter-gather — the query still answers 200 from the remaining shards.
func TestShedDoesNotTripBreakerOrFailQuery(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	b := newFakeShard(t, nil)
	b.mode.Store(mode429)
	r := newTestRouter(t, Config{Breaker: BreakerConfig{ConsecutiveFails: 2, MinSamples: 4, ErrorRate: 0.25}}, a, b)
	h := r.Handler()

	for i := 0; i < 20; i++ {
		rec := postQuery(t, h, 5)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d, want 200 despite one shard shedding: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get(HeaderPartialResults); got != "1/2" {
			t.Fatalf("query %d: %s = %q, want 1/2", i, HeaderPartialResults, got)
		}
	}
	if st := r.testShard(1).breaker.State(); st != BreakerClosed {
		t.Errorf("breaker of the shedding shard = %v, want closed — backpressure is not failure", st)
	}
	// Same for an honest 503+Retry-After (admission shed / degraded mode).
	b.mode.Store(mode503RA)
	for i := 0; i < 20; i++ {
		if rec := postQuery(t, h, 5); rec.Code != http.StatusOK {
			t.Fatalf("query %d with 503+RA shard: status %d, want 200", i, rec.Code)
		}
	}
	if st := r.testShard(1).breaker.State(); st != BreakerClosed {
		t.Errorf("breaker after 503+Retry-After sheds = %v, want closed", st)
	}
}

func TestBreakerOpensOnFailuresAndRecovers(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	b := newFakeShard(t, []Hit{{User: "b1", Similarity: 0.7}})
	b.mode.Store(mode500)
	r := newTestRouter(t, Config{
		Retries: -1,
		Breaker: BreakerConfig{ConsecutiveFails: 3, OpenFor: 100 * time.Millisecond},
	}, a, b)
	h := r.Handler()

	for i := 0; i < 5; i++ {
		if rec := postQuery(t, h, 5); rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d, want 200 (partial)", i, rec.Code)
		}
	}
	if st := r.testShard(1).breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker after persistent 500s = %v, want open", st)
	}
	calls := b.calls.Load()
	postQuery(t, h, 5)
	if b.calls.Load() != calls {
		t.Error("open breaker still dialed the sick shard")
	}

	// Shard recovers; the active prober must re-close the breaker without
	// any live traffic volunteering as the probe.
	b.mode.Store(modeOK)
	deadline := time.Now().Add(3 * time.Second)
	for r.testShard(1).breaker.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker did not re-close within one open interval + probe; state %v", r.testShard(1).breaker.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := postQuery(t, h, 5)
	if got := rec.Header().Get(HeaderPartialResults); got != "2/2" {
		t.Errorf("coverage after recovery = %q, want 2/2", got)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	var first atomic.Bool
	first.Store(true)
	// Fail exactly the first /query attempt, then heal.
	orig := a.srv.Config.Handler
	a.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" && first.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		orig.ServeHTTP(w, r)
	})
	r := newTestRouter(t, Config{Retries: 1, RetryBase: 5 * time.Millisecond}, a)
	rec := postQuery(t, r.Handler(), 5)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via retry: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderPartialResults); got != "1/1" {
		t.Errorf("%s = %q, want 1/1", HeaderPartialResults, got)
	}
	if n := r.obs.Counter(metricRetries).Value(); n != 1 {
		t.Errorf("retry counter = %d, want 1", n)
	}
}

func TestHedgingBeatsStraggler(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	var slowOnce atomic.Bool
	slowOnce.Store(true)
	orig := a.srv.Config.Handler
	// First /query attempt stalls 2s; the hedge (and anything after) is
	// fast. Without hedging the query would ride out the stall.
	a.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" && slowOnce.CompareAndSwap(true, false) {
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		orig.ServeHTTP(w, r)
	})
	r := newTestRouter(t, Config{HedgeAfter: 20 * time.Millisecond, QueryTimeout: 5 * time.Second}, a)
	start := time.Now()
	rec := postQuery(t, r.Handler(), 5)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if elapsed > time.Second {
		t.Errorf("hedged query took %v, want well under the 2s straggler stall", elapsed)
	}
	if n := r.obs.Counter(metricHedges).Value(); n < 1 {
		t.Error("no hedge launched for a stalled first attempt")
	}
	if n := r.obs.Counter(metricHedgeWins).Value(); n < 1 {
		t.Error("hedge did not win against a 2s straggler")
	}
}

func TestMutationRoutesToOwner(t *testing.T) {
	a := newFakeShard(t, nil)
	b := newFakeShard(t, nil)
	r := newTestRouter(t, Config{}, a, b)
	h := r.Handler()
	shards := []*fakeShard{a, b}

	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("user-%d", i)
		req := httptest.NewRequest(http.MethodPut, "/users/"+id+"/fingerprint", strings.NewReader("fp"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent {
			t.Fatalf("PUT %s: status %d, want 204", id, rec.Code)
		}
		owner := r.Placement().Owner(id)
		select {
		case got := <-shards[owner].puts:
			if got != id {
				t.Fatalf("owner shard %d received %q, want %q", owner, got, id)
			}
		default:
			t.Fatalf("PUT %s did not reach its owner shard %d", id, owner)
		}
		for s, fs := range shards {
			select {
			case got := <-fs.puts:
				t.Fatalf("non-owner shard %d received %q", s, got)
			default:
			}
		}
	}
}

func TestMutationPassthroughPreservesBackpressure(t *testing.T) {
	a := newFakeShard(t, nil)
	a.mode.Store(mode503RA)
	r := newTestRouter(t, Config{}, a)
	req := httptest.NewRequest(http.MethodPut, "/users/x/fingerprint", strings.NewReader("fp"))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the shard's 503 passed through", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want the shard's own %q relayed verbatim", got, "2")
	}
	if r.testShard(0).breaker.State() != BreakerClosed {
		t.Error("degraded-mode 503+Retry-After tripped the breaker")
	}
}

// TestOpenBreakerMutation503RetryAfter pins the satellite: router-originated
// 503s carry a Retry-After computed from the breaker's half-open deadline.
func TestOpenBreakerMutation503RetryAfter(t *testing.T) {
	a := newFakeShard(t, nil)
	r := newTestRouter(t, Config{ProbeInterval: -1,
		Breaker: BreakerConfig{ConsecutiveFails: 1, OpenFor: 7 * time.Second}}, a)
	b := r.testShard(0).breaker
	b.mu.Lock()
	b.trip()
	b.mu.Unlock()

	req := httptest.NewRequest(http.MethodPut, "/users/x/fingerprint", strings.NewReader("fp"))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 from the open breaker", rec.Code)
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not integer seconds", rec.Header().Get("Retry-After"))
	}
	if secs < 5 || secs > 7 {
		t.Errorf("Retry-After = %ds, want ≈ the breaker's 7s half-open deadline", secs)
	}
}

// TestStatsShardsSection pins the satellite: /stats (and /healthz) carry a
// per-shard section with state, last error and inflight.
func TestStatsShardsSection(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	b := newFakeShard(t, nil)
	r := newTestRouter(t, Config{Retries: -1, ProbeInterval: -1,
		Breaker: BreakerConfig{ConsecutiveFails: 1, OpenFor: time.Minute}}, a, b)
	h := r.Handler()
	b.srv.Close()
	postQuery(t, h, 5) // trips shard-1's breaker

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status %d", rec.Code)
	}
	var st RouterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats does not parse: %v", err)
	}
	if !st.Router || st.ShardsTotal != 2 || len(st.Shards) != 2 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.ShardsHealthy != 1 || st.Quorum != 1 {
		t.Errorf("healthy/quorum = %d/%d, want 1/1", st.ShardsHealthy, st.Quorum)
	}
	if st.Shards[0].State != "healthy" || st.Shards[0].Users != 1 {
		t.Errorf("shard-0 row = %+v, want healthy with live users=1", st.Shards[0])
	}
	if st.Shards[1].State != "open-breaker" {
		t.Errorf("shard-1 state = %q, want open-breaker", st.Shards[1].State)
	}
	if st.Shards[1].LastError == "" {
		t.Error("shard-1 last_error empty; operators need the why")
	}

	// /healthz: one of two shards down meets the default quorum (1) → 200
	// with the sick shard named.
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 at quorum", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "shard-1: open-breaker") {
		t.Errorf("/healthz body does not name the sick shard:\n%s", rec.Body.String())
	}

	// Trip the last shard too → below quorum → 503 with Retry-After.
	ba := r.testShard(0).breaker
	ba.mu.Lock()
	ba.trip()
	ba.mu.Unlock()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz below quorum = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("/healthz 503 missing Retry-After")
	}
}

func TestClientErrorRelayedNotPartial(t *testing.T) {
	a := newFakeShard(t, nil)
	r := newTestRouter(t, Config{}, a)
	req := httptest.NewRequest(http.MethodPost, "/query?k=bogus", strings.NewReader("fp"))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad k = %d, want 400", rec.Code)
	}
}

func TestStalledShardIsDeadlinedNotWaitedFor(t *testing.T) {
	a := newFakeShard(t, []Hit{{User: "a1", Similarity: 0.9}})
	b := newFakeShard(t, nil)
	b.mode.Store(modeStall)
	r := newTestRouter(t, Config{QueryTimeout: 400 * time.Millisecond, Retries: -1}, a, b)
	start := time.Now()
	rec := postQuery(t, r.Handler(), 5)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 partial around the stalled shard", rec.Code)
	}
	if got := rec.Header().Get(HeaderPartialResults); got != "1/2" {
		t.Errorf("%s = %q, want 1/2", HeaderPartialResults, got)
	}
	if elapsed > 2*time.Second {
		t.Errorf("query took %v; the stalled shard was waited for past its budget", elapsed)
	}
}

func TestBuildFansOutToAllShards(t *testing.T) {
	a := newFakeShard(t, nil)
	b := newFakeShard(t, nil)
	var builds atomic.Int64
	for _, fs := range []*fakeShard{a, b} {
		orig := fs.srv.Config.Handler
		fs.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/graph/build" {
				builds.Add(1)
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprint(w, `{"epoch": 1}`)
				return
			}
			orig.ServeHTTP(w, r)
		})
	}
	r := newTestRouter(t, Config{}, a, b)
	req := httptest.NewRequest(http.MethodPost, "/graph/build?k=4&algo=bruteforce", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("build fan-out status = %d: %s", rec.Code, rec.Body.String())
	}
	if builds.Load() != 2 {
		t.Errorf("build reached %d shards, want 2", builds.Load())
	}
	var out struct {
		Built int `json:"built"`
		Total int `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Built != 2 || out.Total != 2 {
		t.Errorf("aggregate = %s (err %v), want built 2/2", rec.Body.String(), err)
	}
}
