package router

import (
	"hash/fnv"
	"sort"
)

// This file computes ring deltas: the exact set of hash-space arcs whose
// owner changes between two placements. Consistent hashing bounds the
// moved fraction to roughly the joining/leaving shard's share (~1/N), and
// the delta is what the migration driver turns into per-(from,to) transfer
// plans. Shard names — not indices — identify owners here, because the two
// placements index their shard lists differently.

// KeyOf maps a user id to its position on the hash ring. It is the same
// hash Placement.Owner applies, exported so migration planning and tests
// can reason about ids and ring arcs interchangeably.
func KeyOf(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return mix64(h.Sum64())
}

// ownerOfKey returns the shard index owning a raw ring position.
func (p *Placement) ownerOfKey(key uint64) int {
	if len(p.points) == 0 {
		return -1
	}
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= key })
	if i == len(p.points) {
		i = 0 // wrap: the ring is circular
	}
	return int(p.points[i].shard)
}

// OwnerName returns the name of the shard owning id under the placement
// built from names (names must be the list the placement was built from).
func (p *Placement) OwnerName(names []string, id string) string {
	i := p.Owner(id)
	if i < 0 || i >= len(names) {
		return ""
	}
	return names[i]
}

// Segment is one moved arc of the ring: every key k with
// Lo < k <= Hi (wrapping through the top of the hash space when Lo >= Hi)
// changes owner From -> To. Segments produced by ComputeDelta are
// pairwise disjoint and together cover exactly the moved keys.
type Segment struct {
	Lo, Hi   uint64
	From, To string
}

// Contains reports whether a ring position falls inside the arc.
func (s Segment) Contains(key uint64) bool {
	if s.Lo < s.Hi {
		return key > s.Lo && key <= s.Hi
	}
	// The arc wraps through the top of the hash space.
	return key > s.Lo || key <= s.Hi
}

// Move is one (losing shard, gaining shard) pair in a migration plan.
type Move struct {
	From, To string
}

// Delta is the full ring change between an old and a new placement.
type Delta struct {
	OldNames []string
	NewNames []string
	Segments []Segment // moved arcs, pairwise disjoint
	Moves    []Move    // unique (From,To) pairs, in first-seen arc order

	oldP, newP *Placement
}

// ComputeDelta diffs the rings built from the two shard-name lists.
// replicas <= 0 selects the default (and must match what the placements
// in service use, which always use the default).
func ComputeDelta(oldNames, newNames []string, replicas int) *Delta {
	oldP := NewPlacement(oldNames, replicas)
	newP := NewPlacement(newNames, replicas)
	d := &Delta{OldNames: oldNames, NewNames: newNames, oldP: oldP, newP: newP}

	// Collect the union of both rings' point hashes. Ownership is constant
	// on every arc between two consecutive union points, in both rings, so
	// evaluating each ring once per arc enumerates every ownership change.
	bounds := make([]uint64, 0, len(oldP.points)+len(newP.points))
	for _, pt := range oldP.points {
		bounds = append(bounds, pt.hash)
	}
	for _, pt := range newP.points {
		bounds = append(bounds, pt.hash)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	bounds = dedupUint64(bounds)
	if len(bounds) == 0 {
		return d
	}

	seenMove := make(map[Move]bool)
	for i := range bounds {
		hi := bounds[i]
		lo := bounds[(i+len(bounds)-1)%len(bounds)] // previous point; wraps for i==0
		if len(bounds) == 1 {
			lo = hi // single point: the arc is the whole ring
		}
		from := nameAt(oldNames, oldP.ownerOfKey(hi))
		to := nameAt(newNames, newP.ownerOfKey(hi))
		if from == to {
			continue
		}
		seg := Segment{Lo: lo, Hi: hi, From: from, To: to}
		// Coalesce with the previous segment when the arcs are adjacent and
		// move between the same pair — keeps the plan compact.
		if n := len(d.Segments); n > 0 && d.Segments[n-1].Hi == lo &&
			d.Segments[n-1].From == from && d.Segments[n-1].To == to {
			d.Segments[n-1].Hi = hi
		} else {
			d.Segments = append(d.Segments, seg)
		}
		mv := Move{From: from, To: to}
		if !seenMove[mv] {
			seenMove[mv] = true
			d.Moves = append(d.Moves, mv)
		}
	}
	return d
}

// Moved reports whether id changes owner under the delta, and between
// which shards.
func (d *Delta) Moved(id string) (from, to string, moved bool) {
	f := nameAt(d.OldNames, d.oldP.Owner(id))
	t := nameAt(d.NewNames, d.newP.Owner(id))
	if f == t {
		return "", "", false
	}
	return f, t, true
}

func nameAt(names []string, i int) string {
	if i < 0 || i >= len(names) {
		return ""
	}
	return names[i]
}

func dedupUint64(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
