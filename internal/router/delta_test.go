package router

import (
	"fmt"
	"testing"
)

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

// Property: growing the ring N -> N+1 moves at most c/N of a 100k-user id
// space, every moved id lands on the newcomer, and the segment plan the
// delta produces covers exactly the moved ids — no overlap, no gaps.
func TestDeltaGrowMovesBoundedFraction(t *testing.T) {
	const users = 100_000
	for _, n := range []int{2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			oldNames := shardNames(n)
			newNames := shardNames(n + 1)
			newcomer := newNames[n]
			d := ComputeDelta(oldNames, newNames, 0)

			oldP := NewPlacement(oldNames, 0)
			newP := NewPlacement(newNames, 0)
			moved := 0
			for u := 0; u < users; u++ {
				id := fmt.Sprintf("user-%07d", u)
				from := oldNames[oldP.Owner(id)]
				to := newNames[newP.Owner(id)]
				key := KeyOf(id)

				inSegs := 0
				for _, s := range d.Segments {
					if s.Contains(key) {
						inSegs++
						if s.From != from || s.To != to {
							t.Fatalf("id %s in segment %v but owners are %s->%s", id, s, from, to)
						}
					}
				}
				if from != to {
					moved++
					if to != newcomer {
						t.Fatalf("id %s moved %s->%s; adding a shard must only move ids to it", id, from, to)
					}
					if inSegs != 1 {
						t.Fatalf("moved id %s covered by %d segments, want exactly 1", id, inSegs)
					}
					if f, to2, ok := d.Moved(id); !ok || f != from || to2 != to {
						t.Fatalf("Delta.Moved(%s) = (%s,%s,%v), want (%s,%s,true)", id, f, to2, ok, from, to)
					}
				} else {
					if inSegs != 0 {
						t.Fatalf("unmoved id %s covered by %d segments, want 0", id, inSegs)
					}
					if _, _, ok := d.Moved(id); ok {
						t.Fatalf("Delta.Moved(%s) reports moved but owners agree", id)
					}
				}
			}

			// Consistent hashing's whole point: the newcomer takes ~1/(N+1)
			// of the space; allow 2x for vnode placement variance.
			bound := int(2.0 / float64(n) * users)
			if moved > bound {
				t.Fatalf("n=%d->%d moved %d of %d ids, above c/N bound %d", n, n+1, moved, users, bound)
			}
			if moved == 0 {
				t.Fatalf("n=%d->%d moved nothing; delta is broken", n, n+1)
			}
			for _, mv := range d.Moves {
				if mv.To != newcomer {
					t.Fatalf("move pair %v gains at a non-newcomer shard", mv)
				}
			}
		})
	}
}

// Property: shrinking the ring only moves ids off the leaver, and the
// delta's segments are pairwise disjoint arcs.
func TestDeltaShrinkMovesOnlyLeaver(t *testing.T) {
	const users = 20_000
	oldNames := shardNames(4)
	newNames := shardNames(3) // shard-3 leaves
	d := ComputeDelta(oldNames, newNames, 0)

	for _, mv := range d.Moves {
		if mv.From != "shard-3" {
			t.Fatalf("move pair %v loses at a non-leaver shard", mv)
		}
	}
	oldP := NewPlacement(oldNames, 0)
	newP := NewPlacement(newNames, 0)
	for u := 0; u < users; u++ {
		id := fmt.Sprintf("user-%06d", u)
		from := oldNames[oldP.Owner(id)]
		to := newNames[newP.Owner(id)]
		if from != to && from != "shard-3" {
			t.Fatalf("id %s moved %s->%s on a shard-3 departure", id, from, to)
		}
	}

	// Segment disjointness, checked structurally: no segment's boundary
	// falls strictly inside another.
	for i, a := range d.Segments {
		for j, b := range d.Segments {
			if i == j {
				continue
			}
			if b.Contains(a.Hi) || (a.Lo != b.Lo && b.Contains(incWrap(a.Lo))) && a.Contains(incWrap(a.Lo)) {
				t.Fatalf("segments %d and %d overlap: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func incWrap(x uint64) uint64 { return x + 1 }

// An unchanged shard list yields an empty delta.
func TestDeltaIdentityIsEmpty(t *testing.T) {
	names := shardNames(5)
	d := ComputeDelta(names, names, 0)
	if len(d.Segments) != 0 || len(d.Moves) != 0 {
		t.Fatalf("identity delta not empty: %d segments, %d moves", len(d.Segments), len(d.Moves))
	}
}
