package obs

import (
	"sort"
	"sync"
)

// Window is a fixed-size ring of the most recent observations, supporting
// quantile reads over exactly that window. Histograms answer "what has the
// distribution been since the process started"; a Window answers "what is
// the distribution right now" — which is what feedback loops like the
// router's circuit breaker need: a shard that was fast for an hour and
// just started timing out must look slow immediately, not after the
// lifetime histogram drifts.
//
// Observe is O(1) under a mutex; Quantile copies and sorts the live
// window, O(size log size) — windows are small (tens to hundreds of
// samples) and quantile reads happen per breaker decision or per metrics
// snapshot, not per event. All methods are safe on a nil *Window.
type Window struct {
	mu  sync.Mutex
	buf []float64
	cap int
	n   int64 // total observations ever; ring holds the last min(n, cap)
}

// NewWindow creates a window holding the last size observations. Size is
// clamped to at least 1.
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{buf: make([]float64, 0, size), cap: size}
}

// Observe records one value, evicting the oldest once the window is full.
func (w *Window) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if len(w.buf) < w.cap {
		w.buf = append(w.buf, v)
	} else {
		w.buf[int(w.n)%w.cap] = v
	}
	w.n++
	w.mu.Unlock()
}

// Count returns the total number of observations ever recorded (not the
// current window occupancy). 0 on nil.
func (w *Window) Count() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Len returns the current window occupancy. 0 on nil.
func (w *Window) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1, nearest-rank) of the
// current window, or 0 when the window is empty or the receiver nil.
func (w *Window) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	tmp := append([]float64(nil), w.buf...)
	w.mu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Float64s(tmp)
	idx := int(q*float64(len(tmp))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Reset discards every buffered observation (the lifetime count is kept).
// The breaker calls it on state transitions so a re-closed shard is judged
// on post-recovery samples only.
func (w *Window) Reset() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.buf = w.buf[:0]
	w.mu.Unlock()
}

// Window returns the named window, creating it with the given size on
// first use (later calls ignore size). Returns nil on a nil registry.
func (r *Registry) Window(name string, size int) *Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.windows == nil {
		r.windows = map[string]*Window{}
	}
	w, ok := r.windows[name]
	if !ok {
		w = NewWindow(size)
		r.windows[name] = w
	}
	return w
}

// WindowSnapshot is one window's exported state: the occupancy and the
// quantiles operators actually look at.
type WindowSnapshot struct {
	Count int64   `json:"count"`
	Len   int     `json:"len"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func (w *Window) snapshot() WindowSnapshot {
	return WindowSnapshot{
		Count: w.Count(),
		Len:   w.Len(),
		P50:   w.Quantile(0.50),
		P90:   w.Quantile(0.90),
		P99:   w.Quantile(0.99),
	}
}
