package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter did not return the existing handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestLocalFoldsIntoCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pairs")
	lc := Local{C: c}
	lc.Add(10)
	lc.Inc()
	if c.Value() != 0 {
		t.Error("local leaked into shared counter before Flush")
	}
	lc.Flush()
	if got := c.Value(); got != 11 {
		t.Errorf("after flush = %d, want 11", got)
	}
	lc.Flush() // idempotent on empty shard
	if got := c.Value(); got != 11 {
		t.Errorf("after second flush = %d, want 11", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 102.565 {
		t.Errorf("sum = %g, want 102.565", got)
	}
	s := r.Snapshot().Histograms["lat"]
	wantCounts := []int64{2, 1, 1, 2} // ≤0.01, ≤0.1, ≤1, +Inf
	wantLE := []string{"0.01", "0.1", "1", "+Inf"}
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] || b.LE != wantLE[i] {
			t.Errorf("bucket %d = {%s %d}, want {%s %d}", i, b.LE, b.Count, wantLE[i], wantCounts[i])
		}
	}
}

func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", DefTimeBuckets)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("ObserveSince recorded count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestText(t *testing.T) {
	r := NewRegistry()
	if got := r.TextValue("phase"); got != "" {
		t.Errorf("unset text = %q", got)
	}
	r.SetText("phase", "scan")
	if got := r.TextValue("phase"); got != "scan" {
		t.Errorf("text = %q, want scan", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	lc := Local{C: c}
	lc.Add(5)
	lc.Flush()
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("h", DefTimeBuckets)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	r.SetText("t", "x")
	if r.TextValue("t") != "" {
		t.Error("nil text accumulated")
	}
	s := r.Snapshot()
	if s.Counters == nil || len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("builds").Add(2)
	r.Gauge("progress").Set(64)
	r.Histogram("seconds", DefTimeBuckets).Observe(0.25)
	r.SetText("phase", "merge")

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["builds"] != 2 || s.Gauges["progress"] != 64 || s.Texts["phase"] != "merge" {
		t.Errorf("round-tripped snapshot = %+v", s)
	}
	if h := s.Histograms["seconds"]; h.Count != 1 || h.Sum != 0.25 {
		t.Errorf("round-tripped histogram = %+v", h)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			lc := Local{C: c}
			h := r.Histogram("h", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				lc.Inc()
				if i%64 == 0 {
					lc.Flush()
				}
				h.Observe(float64(i%2) * 1.0)
				r.Gauge("g").Set(int64(w))
			}
			lc.Flush()
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
