package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON export. Maps marshal with sorted keys, so successive snapshots
// diff cleanly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Texts      map[string]string            `json:"texts"`
	Windows    map[string]WindowSnapshot    `json:"windows,omitempty"`
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative-style bucket: the count of observations
// ≤ LE. LE is a decimal string so the +Inf overflow bucket stays valid
// JSON.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot copies the current state of every metric. It is safe to call
// concurrently with updates; individual values are read atomically. A nil
// registry yields an empty (but fully initialized) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Texts:      map[string]string{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: make([]BucketSnapshot, 0, len(h.counts)),
		}
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: le, Count: h.counts[i].Load()})
		}
		s.Histograms[name] = hs
	}
	for name, t := range r.texts {
		s.Texts[name] = t.Value()
	}
	if len(r.windows) > 0 {
		s.Windows = map[string]WindowSnapshot{}
		for name, w := range r.windows {
			s.Windows[name] = w.snapshot()
		}
	}
	return s
}

// WriteJSON writes the current snapshot to w as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
